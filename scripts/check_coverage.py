#!/usr/bin/env python3
"""Assertions over dmm-fuzz --coverage-json documents.

Shared by the ctest smoke tests (tests/CMakeLists.txt) and the CI
liveness-driven sweep (.github/workflows/ci.yml); docs/TESTING.md
describes the document schema.

Subcommands:
  ratio <report.json> <target> <tolerance>
      The achieved dead-ratio mean must be within tolerance of target.
  min-entries <report.json> <n>
      The boundary-coverage map must hold at least n entries.
  improvement <steered.json> <blind.json> <factor>
      The steered run must reach at least factor x the blind run's
      coverage entries on the same program budget.
"""

import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__.strip())
    cmd = argv[1]

    if cmd == "ratio":
        doc, target, tol = load(argv[2]), float(argv[3]), float(argv[4])
        mean = doc["achieved_dead_ratio"]["mean"]
        if abs(mean - target) > tol:
            raise SystemExit(
                f"achieved mean {mean:.4f} misses target {target} "
                f"by more than {tol}")
        print(f"ratio ok: mean {mean:.4f}, target {target}, "
              f"tolerance {tol}")

    elif cmd == "min-entries":
        doc, n = load(argv[2]), int(argv[3])
        entries = doc["coverage_entries"]
        if entries < n:
            raise SystemExit(f"coverage entries {entries} < required {n}")
        print(f"coverage ok: {entries} entries (>= {n})")

    elif cmd == "improvement":
        steered, blind = load(argv[2]), load(argv[3])
        factor = float(argv[4])
        se, be = steered["coverage_entries"], blind["coverage_entries"]
        if se < factor * be:
            raise SystemExit(
                f"steered coverage {se} < {factor} x blind {be}")
        print(f"improvement ok: steered {se} >= {factor} x blind {be}")

    else:
        raise SystemExit(f"unknown subcommand {cmd!r}\n\n{__doc__.strip()}")


if __name__ == "__main__":
    main(sys.argv)
