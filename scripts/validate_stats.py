#!/usr/bin/env python3
"""Validator for the deadmember observability outputs (docs/OBSERVABILITY.md).

Subcommands:

  validate-stats FILE       check a --stats-json file against the
                            dmm-stats v1 schema (required fields, dense
                            begin-ordered span ids, parents precede
                            children, no orphan spans)
  validate-trace FILE       check a --trace-json file (Chrome trace
                            format; every duration event must carry its
                            span id and parent link)
  compare A B               check that two stats files agree on
                            everything except the run-varying timing
                            fields (jobs, start_ns, wall_ns, cpu_ns,
                            mem_*_bytes) -- the cross---jobs
                            determinism contract
  check-warm-cache FILE     check that a warm --cache-dir run's stats
                            show one summary.file span per source file,
                            each marked cached=1 with a cache.lookup
                            child span carrying hit=1

Exits 0 on success, 1 with a diagnostic on the first violation.
Only the standard library is used.
"""

import json
import sys

SCHEMA_NAME = "dmm-stats"
SCHEMA_VERSION = 1

SPAN_NUMERIC_FIELDS = (
    "id", "parent", "depth", "start_ns", "wall_ns", "cpu_ns",
    "mem_net_bytes", "mem_peak_bytes",
)
# Fields expected to differ between otherwise-identical runs (different
# --jobs, different machine load). Everything else must be bit-equal.
TIMING_FIELDS = frozenset(
    ("start_ns", "wall_ns", "cpu_ns", "mem_net_bytes", "mem_peak_bytes"))


def fail(msg):
    print("error: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("%s: %s" % (path, e))


def check_stats_doc(doc, where):
    if not isinstance(doc, dict):
        fail("%s: top level is not an object" % where)
    if doc.get("schema") != SCHEMA_NAME:
        fail("%s: schema is %r, want %r" % (where, doc.get("schema"),
                                            SCHEMA_NAME))
    if doc.get("version") != SCHEMA_VERSION:
        fail("%s: version is %r, want %d" % (where, doc.get("version"),
                                             SCHEMA_VERSION))
    if not isinstance(doc.get("tool"), str):
        fail("%s: missing string \"tool\"" % where)
    if not isinstance(doc.get("jobs"), int):
        fail("%s: missing integer \"jobs\"" % where)
    if not isinstance(doc.get("memory_accounting"), bool):
        fail("%s: missing boolean \"memory_accounting\"" % where)

    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail("%s: missing array \"phases\"" % where)
    for i, p in enumerate(phases):
        if not isinstance(p, dict) or not isinstance(p.get("name"), str):
            fail("%s: phases[%d] lacks a string name" % (where, i))
        for key in ("wall_ns", "calls"):
            if not isinstance(p.get(key), int):
                fail("%s: phases[%d] (%s) lacks integer %r"
                     % (where, i, p["name"], key))

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail("%s: missing object \"counters\"" % where)
    for name, value in counters.items():
        if not isinstance(value, int):
            fail("%s: counter %r is not an integer" % (where, name))

    spans = doc.get("spans")
    if not isinstance(spans, list):
        fail("%s: missing array \"spans\"" % where)
    for i, s in enumerate(spans):
        label = "%s: spans[%d]" % (where, i)
        if not isinstance(s, dict) or not isinstance(s.get("name"), str):
            fail(label + " lacks a string name")
        for key in SPAN_NUMERIC_FIELDS:
            if not isinstance(s.get(key), int):
                fail("%s (%s) lacks integer %r" % (label, s["name"], key))
        if s["id"] != i + 1:
            fail("%s (%s): id %d is not dense (want %d)"
                 % (label, s["name"], s["id"], i + 1))
        if s["parent"] >= s["id"]:
            fail("%s (%s): parent %d does not precede span %d"
                 % (label, s["name"], s["parent"], s["id"]))
        args = s.get("args", {})
        if not isinstance(args, dict):
            fail(label + ": \"args\" is not an object")
        for k, v in args.items():
            if not isinstance(v, (int, str)):
                fail("%s: arg %r is neither integer nor string" % (label, k))
    return doc


def cmd_validate_stats(path):
    doc = check_stats_doc(load(path), path)
    print("%s: ok (%d phases, %d counters, %d spans)"
          % (path, len(doc["phases"]), len(doc["counters"]),
             len(doc["spans"])))


def cmd_validate_trace(path):
    doc = load(path)
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        fail("%s: missing array \"traceEvents\"" % path)
    spans = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail("%s: traceEvents[%d] is not an object" % (path, i))
        if e.get("ph") != "X":
            continue
        spans += 1
        args = e.get("args")
        if not isinstance(args, dict):
            fail("%s: duration event %d lacks \"args\"" % (path, i))
        for key in ("span_id", "parent", "mem_peak_bytes"):
            if key not in args:
                fail("%s: duration event %r lacks args.%s"
                     % (path, e.get("name"), key))
    if spans == 0:
        fail("%s: no duration events" % path)
    print("%s: ok (%d events, %d spans)" % (path, len(events), spans))


def span_paths(doc):
    """Order-independent span identities: the name path from the root
    plus non-timing args. Span record order varies run to run when
    workers interleave, so ids cannot be compared directly."""
    by_id = {s["id"]: s for s in doc["spans"]}
    paths = []
    for s in doc["spans"]:
        parts = []
        cur = s
        while cur is not None:
            parts.append(cur["name"])
            cur = by_id.get(cur["parent"])
        args = tuple(sorted(s.get("args", {}).items()))
        paths.append(("/".join(reversed(parts)), s["depth"], args))
    return sorted(paths)


def normalized(doc):
    return {
        "schema": doc["schema"],
        "version": doc["version"],
        "tool": doc["tool"],
        "memory_accounting": doc["memory_accounting"],
        "phases": [(p["name"], p["calls"]) for p in doc["phases"]],
        "counters": sorted(doc["counters"].items()),
        "spans": span_paths(doc),
    }


def cmd_compare(path_a, path_b):
    a = check_stats_doc(load(path_a), path_a)
    b = check_stats_doc(load(path_b), path_b)
    na, nb = normalized(a), normalized(b)
    for key in na:
        if na[key] != nb[key]:
            va, vb = na[key], nb[key]
            if isinstance(va, list):
                only_a = [x for x in va if x not in vb]
                only_b = [x for x in vb if x not in va]
                fail("%r differs beyond timing fields:\n  only in %s: %r\n"
                     "  only in %s: %r"
                     % (key, path_a, only_a[:5], path_b, only_b[:5]))
            fail("%r differs beyond timing fields: %r vs %r" % (key, va, vb))
    print("%s and %s agree modulo timing fields (jobs=%d vs jobs=%d)"
          % (path_a, path_b, a["jobs"], b["jobs"]))


def cmd_check_warm_cache(path):
    doc = check_stats_doc(load(path), path)
    spans = doc["spans"]
    files = [s for s in spans if s["name"] == "summary.file"]
    if not files:
        fail("%s: no summary.file spans (was this a --cache-dir run?)"
             % path)
    for s in files:
        name = s.get("args", {}).get("file", "<unknown>")
        if s.get("args", {}).get("cached") != 1:
            fail("%s: summary.file span for %s is not a cache hit"
                 % (path, name))
        lookups = [c for c in spans
                   if c["parent"] == s["id"] and c["name"] == "cache.lookup"]
        if not lookups:
            fail("%s: summary.file span for %s has no cache.lookup child"
                 % (path, name))
        if any(c.get("args", {}).get("hit") != 1 for c in lookups):
            fail("%s: cache.lookup under %s did not record hit=1"
                 % (path, name))
        if s["mem_peak_bytes"] < 0:
            fail("%s: summary.file span for %s has negative peak memory"
                 % (path, name))
    print("%s: ok (%d cached summary.file spans with hit=1 lookups)"
          % (path, len(files)))


def main(argv):
    if len(argv) >= 3 and argv[1] == "validate-stats":
        for path in argv[2:]:
            cmd_validate_stats(path)
    elif len(argv) >= 3 and argv[1] == "validate-trace":
        for path in argv[2:]:
            cmd_validate_trace(path)
    elif len(argv) == 4 and argv[1] == "compare":
        cmd_compare(argv[2], argv[3])
    elif len(argv) >= 3 and argv[1] == "check-warm-cache":
        for path in argv[2:]:
            cmd_check_warm_cache(path)
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
