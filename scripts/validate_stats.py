#!/usr/bin/env python3
"""Validator for the deadmember observability outputs (docs/OBSERVABILITY.md).

Subcommands:

  validate-stats FILE       check a --stats-json file against the
                            dmm-stats schema, v1..v3 (required fields,
                            dense begin-ordered span ids, parents precede
                            children, no orphan spans; for v2 documents
                            with a "profiler" section: per-field types,
                            strictly increasing snapshot events, live
                            bytes bounded by the high-water mark; for v3
                            documents with a "diagnostics" section:
                            per-level log counters and flight-recorder
                            totals, all non-negative integers)
  validate-trace FILE       check a --trace-json file (Chrome trace
                            format; every duration event must carry its
                            span id and parent link)
  compare A B               check that two stats files agree on
                            everything except the run-varying timing
                            fields (jobs, start_ns, wall_ns, cpu_ns,
                            mem_*_bytes) -- the cross---jobs
                            determinism contract
  check-warm-cache FILE     check that a warm --cache-dir run's stats
                            show one summary.file span per source file,
                            each marked cached=1 with a cache.lookup
                            child span carrying hit=1
  check-crash FILE          check a dmm-crash-<pid>.json crash report:
                            dmm-crash schema v1, a non-empty span stack,
                            at least one flight-recorder event with the
                            required fields, and integer counters

Exits 0 on success, 1 with a diagnostic on the first violation.
Only the standard library is used.
"""

import json
import sys

SCHEMA_NAME = "dmm-stats"
# Accepted schema versions; the "profiler" section needs v2+, the
# "diagnostics" section needs v3+.
SCHEMA_MIN_VERSION = 1
SCHEMA_MAX_VERSION = 3

CRASH_SCHEMA_NAME = "dmm-crash"
CRASH_SCHEMA_VERSION = 1

DIAGNOSTICS_FIELDS = (
    "log_error", "log_warn", "log_info", "log_debug", "log_trace",
    "recorder_events", "recorder_dropped", "crashes",
)
# Flight-recorder totals depend on how work distributed across threads
# (ring wrap-around is per-thread), so the cross---jobs compare skips
# them; the log counters and crash count must still match.
DIAGNOSTICS_RUN_VARYING = frozenset(("recorder_events", "recorder_dropped"))

CRASH_COUNTER_FIELDS = DIAGNOSTICS_FIELDS[:-1]  # No "crashes" key.
CRASH_EVENT_STR_FIELDS = ("kind", "level", "text")
CRASH_EVENT_INT_FIELDS = ("seq", "ts_ns", "thread")

PROFILER_SUMMARY_FIELDS = (
    "object_space", "dead_member_space", "high_water_mark",
    "high_water_mark_no_dead", "num_objects", "alloc_events",
    "free_events", "leaked_objects", "peak_alloc_event",
    "snapshot_stride",
)
PROFILER_SNAPSHOT_FIELDS = (
    "event", "live_bytes", "live_bytes_no_dead", "live_objects",
)
PROFILER_SITE_STR_FIELDS = ("file", "class", "member")
PROFILER_SITE_INT_FIELDS = (
    "line", "objects", "alloc_bytes", "written_bytes", "read_bytes",
    "addr_taken_bytes", "never_read_bytes",
)

SPAN_NUMERIC_FIELDS = (
    "id", "parent", "depth", "start_ns", "wall_ns", "cpu_ns",
    "mem_net_bytes", "mem_peak_bytes",
)
# Fields expected to differ between otherwise-identical runs (different
# --jobs, different machine load). Everything else must be bit-equal.
TIMING_FIELDS = frozenset(
    ("start_ns", "wall_ns", "cpu_ns", "mem_net_bytes", "mem_peak_bytes"))


def fail(msg):
    print("error: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("%s: %s" % (path, e))


def check_stats_doc(doc, where):
    if not isinstance(doc, dict):
        fail("%s: top level is not an object" % where)
    if doc.get("schema") != SCHEMA_NAME:
        fail("%s: schema is %r, want %r" % (where, doc.get("schema"),
                                            SCHEMA_NAME))
    version = doc.get("version")
    if (not isinstance(version, int)
            or not SCHEMA_MIN_VERSION <= version <= SCHEMA_MAX_VERSION):
        fail("%s: version is %r, want %d..%d"
             % (where, version, SCHEMA_MIN_VERSION, SCHEMA_MAX_VERSION))
    if not isinstance(doc.get("tool"), str):
        fail("%s: missing string \"tool\"" % where)
    if not isinstance(doc.get("jobs"), int):
        fail("%s: missing integer \"jobs\"" % where)
    if not isinstance(doc.get("memory_accounting"), bool):
        fail("%s: missing boolean \"memory_accounting\"" % where)

    phases = doc.get("phases")
    if not isinstance(phases, list):
        fail("%s: missing array \"phases\"" % where)
    for i, p in enumerate(phases):
        if not isinstance(p, dict) or not isinstance(p.get("name"), str):
            fail("%s: phases[%d] lacks a string name" % (where, i))
        for key in ("wall_ns", "calls"):
            if not isinstance(p.get(key), int):
                fail("%s: phases[%d] (%s) lacks integer %r"
                     % (where, i, p["name"], key))

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail("%s: missing object \"counters\"" % where)
    for name, value in counters.items():
        if not isinstance(value, int):
            fail("%s: counter %r is not an integer" % (where, name))

    if "profiler" in doc:
        check_profiler(doc, where)
    if "diagnostics" in doc:
        check_diagnostics(doc, where)

    spans = doc.get("spans")
    if not isinstance(spans, list):
        fail("%s: missing array \"spans\"" % where)
    for i, s in enumerate(spans):
        label = "%s: spans[%d]" % (where, i)
        if not isinstance(s, dict) or not isinstance(s.get("name"), str):
            fail(label + " lacks a string name")
        for key in SPAN_NUMERIC_FIELDS:
            if not isinstance(s.get(key), int):
                fail("%s (%s) lacks integer %r" % (label, s["name"], key))
        if s["id"] != i + 1:
            fail("%s (%s): id %d is not dense (want %d)"
                 % (label, s["name"], s["id"], i + 1))
        if s["parent"] >= s["id"]:
            fail("%s (%s): parent %d does not precede span %d"
                 % (label, s["name"], s["parent"], s["id"]))
        args = s.get("args", {})
        if not isinstance(args, dict):
            fail(label + ": \"args\" is not an object")
        for k, v in args.items():
            if not isinstance(v, (int, str)):
                fail("%s: arg %r is neither integer nor string" % (label, k))
    return doc


def check_profiler(doc, where):
    """Validates the v2 "profiler" section: field presence and types,
    strictly increasing snapshot events, and the live-byte invariants
    (live <= high-water mark, live-without-dead <= live)."""
    if doc["version"] < 2:
        fail("%s: \"profiler\" section requires version >= 2, got %d"
             % (where, doc["version"]))
    prof = doc["profiler"]
    if not isinstance(prof, dict):
        fail("%s: \"profiler\" is not an object" % where)
    for key in PROFILER_SUMMARY_FIELDS:
        if not isinstance(prof.get(key), int):
            fail("%s: profiler lacks integer %r" % (where, key))
    if prof["snapshot_stride"] < 1:
        fail("%s: profiler snapshot_stride must be >= 1" % where)
    hwm = prof["high_water_mark"]
    if prof["high_water_mark_no_dead"] > hwm:
        fail("%s: profiler high_water_mark_no_dead exceeds "
             "high_water_mark" % where)

    snapshots = prof.get("snapshots")
    if not isinstance(snapshots, list):
        fail("%s: profiler lacks array \"snapshots\"" % where)
    prev_event = 0
    for i, s in enumerate(snapshots):
        label = "%s: profiler.snapshots[%d]" % (where, i)
        if not isinstance(s, dict):
            fail(label + " is not an object")
        for key in PROFILER_SNAPSHOT_FIELDS:
            if not isinstance(s.get(key), int):
                fail("%s lacks integer %r" % (label, key))
        if s["event"] <= prev_event:
            fail("%s: event %d does not increase (previous %d)"
                 % (label, s["event"], prev_event))
        prev_event = s["event"]
        if s["live_bytes"] > hwm:
            fail("%s: live_bytes %d exceeds the high water mark %d"
                 % (label, s["live_bytes"], hwm))
        if s["live_bytes_no_dead"] > s["live_bytes"]:
            fail("%s: live_bytes_no_dead exceeds live_bytes" % label)

    sites = prof.get("sites")
    if not isinstance(sites, list):
        fail("%s: profiler lacks array \"sites\"" % where)
    for i, s in enumerate(sites):
        label = "%s: profiler.sites[%d]" % (where, i)
        if not isinstance(s, dict):
            fail(label + " is not an object")
        for key in PROFILER_SITE_STR_FIELDS:
            if not isinstance(s.get(key), str):
                fail("%s lacks string %r" % (label, key))
        for key in PROFILER_SITE_INT_FIELDS:
            if not isinstance(s.get(key), int):
                fail("%s lacks integer %r" % (label, key))
        if not isinstance(s.get("static_dead"), bool):
            fail("%s lacks boolean \"static_dead\"" % label)
        if s["never_read_bytes"] > s["alloc_bytes"]:
            fail("%s: never_read_bytes exceeds alloc_bytes" % label)


def check_diagnostics(doc, where):
    """Validates the v3 "diagnostics" section: per-level log counters,
    flight-recorder totals, and the crash count, all non-negative
    integers."""
    if doc["version"] < 3:
        fail("%s: \"diagnostics\" section requires version >= 3, got %d"
             % (where, doc["version"]))
    diag = doc["diagnostics"]
    if not isinstance(diag, dict):
        fail("%s: \"diagnostics\" is not an object" % where)
    for key in DIAGNOSTICS_FIELDS:
        value = diag.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            fail("%s: diagnostics lacks integer %r" % (where, key))
        if value < 0:
            fail("%s: diagnostics %r is negative" % (where, key))


def cmd_validate_stats(path):
    doc = check_stats_doc(load(path), path)
    profiler = ""
    if "profiler" in doc:
        profiler = (", profiler: %d snapshots, %d sites"
                    % (len(doc["profiler"]["snapshots"]),
                       len(doc["profiler"]["sites"])))
    print("%s: ok (v%d, %d phases, %d counters, %d spans%s)"
          % (path, doc["version"], len(doc["phases"]),
             len(doc["counters"]), len(doc["spans"]), profiler))


def cmd_validate_trace(path):
    doc = load(path)
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        fail("%s: missing array \"traceEvents\"" % path)
    spans = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail("%s: traceEvents[%d] is not an object" % (path, i))
        if e.get("ph") != "X":
            continue
        spans += 1
        args = e.get("args")
        if not isinstance(args, dict):
            fail("%s: duration event %d lacks \"args\"" % (path, i))
        for key in ("span_id", "parent", "mem_peak_bytes"):
            if key not in args:
                fail("%s: duration event %r lacks args.%s"
                     % (path, e.get("name"), key))
    if spans == 0:
        fail("%s: no duration events" % path)
    print("%s: ok (%d events, %d spans)" % (path, len(events), spans))


def span_paths(doc):
    """Order-independent span identities: the name path from the root
    plus non-timing args. Span record order varies run to run when
    workers interleave, so ids cannot be compared directly."""
    by_id = {s["id"]: s for s in doc["spans"]}
    paths = []
    for s in doc["spans"]:
        parts = []
        cur = s
        while cur is not None:
            parts.append(cur["name"])
            cur = by_id.get(cur["parent"])
        args = tuple(sorted(s.get("args", {}).items()))
        paths.append(("/".join(reversed(parts)), s["depth"], args))
    return sorted(paths)


def normalized(doc):
    return {
        "schema": doc["schema"],
        "version": doc["version"],
        "tool": doc["tool"],
        "memory_accounting": doc["memory_accounting"],
        "phases": [(p["name"], p["calls"]) for p in doc["phases"]],
        "counters": sorted(doc["counters"].items()),
        # The whole profiler section is deterministic (counts and byte
        # totals, no timing), so it must be bit-equal across --jobs.
        "profiler": doc.get("profiler"),
        "diagnostics": diagnostics_normalized(doc.get("diagnostics")),
        "spans": span_paths(doc),
    }


def diagnostics_normalized(diag):
    if not isinstance(diag, dict):
        return diag
    return {k: v for k, v in diag.items()
            if k not in DIAGNOSTICS_RUN_VARYING}


def cmd_compare(path_a, path_b):
    a = check_stats_doc(load(path_a), path_a)
    b = check_stats_doc(load(path_b), path_b)
    na, nb = normalized(a), normalized(b)
    for key in na:
        if na[key] != nb[key]:
            va, vb = na[key], nb[key]
            if isinstance(va, list):
                only_a = [x for x in va if x not in vb]
                only_b = [x for x in vb if x not in va]
                fail("%r differs beyond timing fields:\n  only in %s: %r\n"
                     "  only in %s: %r"
                     % (key, path_a, only_a[:5], path_b, only_b[:5]))
            fail("%r differs beyond timing fields: %r vs %r" % (key, va, vb))
    print("%s and %s agree modulo timing fields (jobs=%d vs jobs=%d)"
          % (path_a, path_b, a["jobs"], b["jobs"]))


def cmd_check_warm_cache(path):
    doc = check_stats_doc(load(path), path)
    spans = doc["spans"]
    files = [s for s in spans if s["name"] == "summary.file"]
    if not files:
        fail("%s: no summary.file spans (was this a --cache-dir run?)"
             % path)
    for s in files:
        name = s.get("args", {}).get("file", "<unknown>")
        if s.get("args", {}).get("cached") != 1:
            fail("%s: summary.file span for %s is not a cache hit"
                 % (path, name))
        lookups = [c for c in spans
                   if c["parent"] == s["id"] and c["name"] == "cache.lookup"]
        if not lookups:
            fail("%s: summary.file span for %s has no cache.lookup child"
                 % (path, name))
        if any(c.get("args", {}).get("hit") != 1 for c in lookups):
            fail("%s: cache.lookup under %s did not record hit=1"
                 % (path, name))
        if s["mem_peak_bytes"] < 0:
            fail("%s: summary.file span for %s has negative peak memory"
                 % (path, name))
    print("%s: ok (%d cached summary.file spans with hit=1 lookups)"
          % (path, len(files)))


def cmd_check_crash(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail("%s: top level is not an object" % path)
    if doc.get("schema") != CRASH_SCHEMA_NAME:
        fail("%s: schema is %r, want %r" % (path, doc.get("schema"),
                                            CRASH_SCHEMA_NAME))
    if doc.get("version") != CRASH_SCHEMA_VERSION:
        fail("%s: version is %r, want %d" % (path, doc.get("version"),
                                             CRASH_SCHEMA_VERSION))
    for key in ("tool", "tool_version", "reason"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail("%s: missing non-empty string %r" % (path, key))
    if not isinstance(doc.get("pid"), int):
        fail("%s: missing integer \"pid\"" % path)

    argv_list = doc.get("argv")
    if (not isinstance(argv_list, list) or not argv_list
            or not all(isinstance(a, str) for a in argv_list)):
        fail("%s: \"argv\" is not a non-empty array of strings" % path)

    spans = doc.get("span_stack")
    if not isinstance(spans, list) or not spans:
        fail("%s: \"span_stack\" is empty -- the handler should see at "
             "least the root pipeline span" % path)
    if not all(isinstance(s, str) and s for s in spans):
        fail("%s: span_stack entries must be non-empty strings" % path)

    events = doc.get("flight_recorder")
    if not isinstance(events, list) or not events:
        fail("%s: \"flight_recorder\" holds no events" % path)
    for i, e in enumerate(events):
        label = "%s: flight_recorder[%d]" % (path, i)
        if not isinstance(e, dict):
            fail(label + " is not an object")
        for key in CRASH_EVENT_INT_FIELDS:
            if not isinstance(e.get(key), int):
                fail("%s lacks integer %r" % (label, key))
        for key in CRASH_EVENT_STR_FIELDS:
            if not isinstance(e.get(key), str):
                fail("%s lacks string %r" % (label, key))
        if e["kind"] not in ("log", "span_begin", "span_end"):
            fail("%s: unknown kind %r" % (label, e["kind"]))

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail("%s: missing object \"counters\"" % path)
    for key in CRASH_COUNTER_FIELDS:
        if not isinstance(counters.get(key), int):
            fail("%s: counters lacks integer %r" % (path, key))

    print("%s: ok (reason: %s, %d spans deep, %d flight-recorder events)"
          % (path, doc["reason"], len(spans), len(events)))


def main(argv):
    if len(argv) >= 3 and argv[1] == "validate-stats":
        for path in argv[2:]:
            cmd_validate_stats(path)
    elif len(argv) >= 3 and argv[1] == "validate-trace":
        for path in argv[2:]:
            cmd_validate_trace(path)
    elif len(argv) == 4 and argv[1] == "compare":
        cmd_compare(argv[2], argv[3])
    elif len(argv) >= 3 and argv[1] == "check-warm-cache":
        for path in argv[2:]:
            cmd_check_warm_cache(path)
    elif len(argv) >= 3 and argv[1] == "check-crash":
        for path in argv[2:]:
            cmd_check_crash(path)
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
