#!/usr/bin/env python3
"""Benchmark-history regression sentinel for BENCH_*.json series.

The repo commits one ``BENCH_<label>.json`` per milestone (written by
scripts/run_bench.sh): google-benchmark's JSON plus the harness's
dmm-stats document under a ``dmm_stats`` key. This tool turns that
series into an actual gate instead of archaeology:

  history [--dir DIR] [--filter SUBSTR]
      Print a per-benchmark wall-time table across every committed
      baseline, oldest first, with the step-over-step ratio.

  compare BASELINE CURRENT [--threshold R] [--stable NAME ...]
      Compare two baseline files benchmark by benchmark. A benchmark
      regresses when current/baseline real_time exceeds 1 + threshold.
      Only *stable* benchmarks (default: the synthetic kernel pair,
      whose workload is deterministic and large enough to damp noise)
      gate the exit status; everything else is reported informationally.
      Exit 1 iff a stable benchmark regressed.

  selftest
      Run the comparator against synthetic documents and verify the
      verdicts, so CI can prove the gate itself works before trusting
      a green result.

Stdlib only; no third-party imports.
"""

import argparse
import glob
import json
import os
import sys

# Benchmarks whose inputs are fully deterministic and whose runtime is
# long enough that machine noise stays inside a few percent. These gate
# compare's exit status; other benchmarks are informational only.
DEFAULT_STABLE = ("interpret/kernel", "interpret_vm/kernel")

# Ratio slack applied on top of 1.0 before a slowdown counts as a
# regression. 0.02 suits same-machine runs; CI across machine
# generations should pass a looser --threshold.
DEFAULT_THRESHOLD = 0.02


def load_times(doc):
    """Map benchmark name -> real_time in ns from a run_bench.sh doc.

    Aggregate rows (``name/repeats:N_mean`` etc.) are skipped so a
    repeated run compares cleanly against a single-shot one.
    """
    times = {}
    for bench in doc.get("benchmarks", ()):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real = bench.get("real_time")
        if not isinstance(name, str) or not isinstance(real, (int, float)):
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise SystemExit(f"error: unknown time_unit {unit!r} for {name}")
        times[name] = float(real) * scale
    return times


def load_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")
    if "benchmarks" not in doc:
        raise SystemExit(f"error: {path} has no 'benchmarks' array; "
                         "was it written by scripts/run_bench.sh?")
    return doc


def series_key(path):
    """Sort key for a baseline series: date from the benchmark context
    (machine-independent), falling back to the file name."""
    try:
        with open(path) as f:
            doc = json.load(f)
        return (doc.get("context", {}).get("date", ""), os.path.basename(path))
    except (OSError, ValueError):
        return ("", os.path.basename(path))


def fmt_ms(ns):
    return f"{ns / 1e6:10.2f}"


def cmd_history(args):
    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")),
                   key=series_key)
    if not paths:
        print(f"error: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 1
    series = [(os.path.basename(p), load_times(load_file(p))) for p in paths]
    names = sorted({n for _, t in series for n in t
                    if args.filter in n})
    if not names:
        print(f"error: no benchmark matches {args.filter!r}", file=sys.stderr)
        return 1

    labels = [label[len("BENCH_"):-len(".json")] for label, _ in series]
    header = f"{'benchmark':32}" + "".join(f"{l:>12}" for l in labels)
    print(header)
    print("-" * len(header))
    for name in names:
        row = f"{name:32}"
        prev = None
        for _, times in series:
            ns = times.get(name)
            if ns is None:
                row += f"{'-':>12}"
                continue
            cell = fmt_ms(ns) + "ms"
            if prev is not None and prev > 0:
                cell = f"{ns / prev:6.2f}x " + f"{ns / 1e6:.1f}ms"
            row += f"{cell:>12}"
            prev = ns
        print(row)
    print(f"\n(wall time per iteration; Nx = ratio vs previous column)")
    return 0


def compare_times(base, cur, threshold, stable):
    """Pure comparator: returns (rows, regressed_stable_names).

    Each row is (name, base_ns, cur_ns, ratio, verdict, gating).
    Verdicts: 'ok', 'faster', 'REGRESSION', 'missing'.
    """
    rows = []
    regressed = []
    for name in sorted(set(base) | set(cur)):
        gating = name in stable
        b, c = base.get(name), cur.get(name)
        if b is None or c is None:
            rows.append((name, b, c, None, "missing", gating))
            # A stable benchmark vanishing is itself a gate failure:
            # silently dropping the gated workload must not pass.
            if gating and c is None:
                regressed.append(name)
            continue
        ratio = c / b if b > 0 else float("inf")
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            if gating:
                regressed.append(name)
        elif ratio < 1.0 - threshold:
            verdict = "faster"
        else:
            verdict = "ok"
        rows.append((name, b, c, ratio, verdict, gating))
    return rows, regressed


def cmd_compare(args):
    base = load_times(load_file(args.baseline))
    cur = load_times(load_file(args.current))
    stable = tuple(args.stable) if args.stable else DEFAULT_STABLE
    rows, regressed = compare_times(base, cur, args.threshold, stable)

    print(f"{'benchmark':32}{'baseline':>12}{'current':>12}"
          f"{'ratio':>8}  verdict")
    print("-" * 76)
    for name, b, c, ratio, verdict, gating in rows:
        mark = "*" if gating else " "
        bs = fmt_ms(b) + "ms" if b is not None else f"{'-':>12}"
        cs = fmt_ms(c) + "ms" if c is not None else f"{'-':>12}"
        rs = f"{ratio:8.3f}" if ratio is not None else f"{'-':>8}"
        print(f"{mark}{name:31}{bs}{cs}{rs}  {verdict}")
    print(f"\n* = stable benchmark gating the exit status "
          f"(threshold {args.threshold:.0%})")
    if regressed:
        print(f"FAIL: stable benchmark regression: {', '.join(regressed)}",
              file=sys.stderr)
        return 1
    print("OK: no stable-benchmark regressions")
    return 0


def cmd_selftest(_args):
    base = {"interpret/kernel": 100.0, "interpret_vm/kernel": 50.0,
            "frontend/richards": 10.0}

    # Within threshold: ok.
    rows, regressed = compare_times(
        base, {"interpret/kernel": 101.0, "interpret_vm/kernel": 50.5,
               "frontend/richards": 10.0}, 0.02, DEFAULT_STABLE)
    assert not regressed, regressed
    assert all(v == "ok" for _, _, _, _, v, _ in rows), rows

    # A gated benchmark over threshold must regress...
    _, regressed = compare_times(
        base, {"interpret/kernel": 103.0, "interpret_vm/kernel": 50.0,
               "frontend/richards": 10.0}, 0.02, DEFAULT_STABLE)
    assert regressed == ["interpret/kernel"], regressed

    # ...while a non-gated one is reported but does not fail the gate.
    rows, regressed = compare_times(
        base, {"interpret/kernel": 100.0, "interpret_vm/kernel": 50.0,
               "frontend/richards": 20.0}, 0.02, DEFAULT_STABLE)
    assert not regressed, regressed
    assert [v for n, _, _, _, v, _ in rows if n == "frontend/richards"] \
        == ["REGRESSION"], rows

    # Speedups are labeled, not failed.
    rows, _ = compare_times(
        base, {"interpret/kernel": 80.0, "interpret_vm/kernel": 50.0,
               "frontend/richards": 10.0}, 0.02, DEFAULT_STABLE)
    assert [v for n, _, _, _, v, _ in rows if n == "interpret/kernel"] \
        == ["faster"], rows

    # A stable benchmark missing from the current run fails the gate.
    _, regressed = compare_times(
        base, {"interpret/kernel": 100.0, "frontend/richards": 10.0},
        0.02, DEFAULT_STABLE)
    assert regressed == ["interpret_vm/kernel"], regressed

    # Custom threshold: 10% slack tolerates an 8% slip.
    _, regressed = compare_times(
        base, {"interpret/kernel": 108.0, "interpret_vm/kernel": 50.0,
               "frontend/richards": 10.0}, 0.10, DEFAULT_STABLE)
    assert not regressed, regressed

    # Unit normalization: ms and ns express the same duration.
    doc = {"benchmarks": [
        {"name": "a/one", "real_time": 2.0, "time_unit": "ms"},
        {"name": "a/two", "real_time": 2e6, "time_unit": "ns"},
        {"name": "a/agg_mean", "real_time": 1.0, "time_unit": "ms",
         "run_type": "aggregate"},
    ]}
    times = load_times(doc)
    assert times == {"a/one": 2e6, "a/two": 2e6}, times

    print("bench_history selftest: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("history", help="table of wall times across series")
    p.add_argument("--dir", default=".", help="directory of BENCH_*.json")
    p.add_argument("--filter", default="", help="substring benchmark filter")
    p.set_defaults(func=cmd_history)

    p = sub.add_parser("compare", help="gate CURRENT against BASELINE")
    p.add_argument("baseline")
    p.add_argument("current")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="relative slowdown tolerated before failing "
                        f"(default {DEFAULT_THRESHOLD})")
    p.add_argument("--stable", action="append", metavar="NAME",
                   help="benchmark gating the exit status (repeatable; "
                        f"default: {', '.join(DEFAULT_STABLE)})")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("selftest", help="verify the comparator itself")
    p.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
