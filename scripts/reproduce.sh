#!/bin/sh
# Rebuilds everything, runs the full test suite, and regenerates every
# paper table/figure into test_output.txt and bench_output.txt.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $b ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo
echo "Examples:"
for e in quickstart library_pruning ide_feedback space_optimizer; do
  echo "--- $e ---"
  ./build/examples/$e
done
