#!/bin/sh
# Runs the google-benchmark pipeline-throughput suite and writes a
# machine-readable baseline to BENCH_baseline.json (repo root), for
# before/after comparison of pipeline optimisations.
#
# Usage: scripts/run_bench.sh [out.json] [extra benchmark args...]
#   DMM_THREADS=N  worker threads for the parallel pipeline stages
set -e
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"
[ $# -gt 0 ] && shift

if [ ! -x build/bench/perf_pipeline ]; then
  echo "building perf_pipeline..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target perf_pipeline >/dev/null
fi

build/bench/perf_pipeline \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT" >&2
