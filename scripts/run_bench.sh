#!/bin/sh
# Runs a google-benchmark suite and writes a machine-readable baseline
# JSON (repo root by default), for before/after comparison of pipeline
# optimisations.
#
# Usage: scripts/run_bench.sh [options] [out.json] [extra benchmark args...]
#   --label <name>   write BENCH_<name>.json instead of BENCH_baseline.json
#   --suite <bench>  which harness to run: perf_pipeline (default) or
#                    perf_incremental
#   DMM_THREADS=N    worker threads for the parallel pipeline stages
set -e
cd "$(dirname "$0")/.."

SUITE=perf_pipeline
LABEL=""
OUT=""

while [ $# -gt 0 ]; do
  case "$1" in
    --label)
      [ $# -ge 2 ] || { echo "error: --label requires a name" >&2; exit 2; }
      LABEL="$2"; shift 2 ;;
    --label=*)
      LABEL="${1#--label=}"; shift ;;
    --suite)
      [ $# -ge 2 ] || { echo "error: --suite requires a name" >&2; exit 2; }
      SUITE="$2"; shift 2 ;;
    --suite=*)
      SUITE="${1#--suite=}"; shift ;;
    *)
      break ;;
  esac
done

if [ -n "$LABEL" ]; then
  OUT="BENCH_${LABEL}.json"
elif [ $# -gt 0 ]; then
  case "$1" in
    -*) ;; # First remaining arg is a benchmark flag, keep the default.
    *) OUT="$1"; shift ;;
  esac
fi
OUT="${OUT:-BENCH_baseline.json}"

if [ ! -f build/CMakeCache.txt ]; then
  echo "error: build/ is not configured; run 'cmake -B build -S .' first" >&2
  exit 2
fi

if [ ! -x "build/bench/$SUITE" ]; then
  echo "building $SUITE..." >&2
  cmake --build build --target "$SUITE" >/dev/null
fi

# google-benchmark does not create missing directories for
# --benchmark_out; make sure the destination exists.
OUT_DIR=$(dirname "$OUT")
[ -d "$OUT_DIR" ] || mkdir -p "$OUT_DIR"

"build/bench/$SUITE" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $OUT" >&2
