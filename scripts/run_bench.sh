#!/bin/sh
# Runs a google-benchmark suite and writes a machine-readable baseline
# JSON (repo root by default), for before/after comparison of pipeline
# optimisations. The output composes google-benchmark's own JSON with
# the harness's dmm-stats document (docs/OBSERVABILITY.md) under a
# "dmm_stats" key, so one file carries both per-benchmark timings and
# whole-run phase/counter aggregates.
#
# Usage: scripts/run_bench.sh [options] [out.json] [extra benchmark args...]
#   --label <name>     write BENCH_<name>.json instead of BENCH_baseline.json
#   --suite <bench>    which harness to run: perf_pipeline (default) or
#                      perf_incremental
#   --compare <base>   after the run, gate the fresh output against an
#                      existing baseline via scripts/bench_history.py
#                      (exit 1 on a stable-benchmark regression)
#   --threshold <r>    relative slowdown tolerated by --compare
#   DMM_THREADS=N      worker threads for the parallel pipeline stages
set -e
cd "$(dirname "$0")/.."

SUITE=perf_pipeline
LABEL=""
OUT=""
COMPARE=""
THRESHOLD=""

while [ $# -gt 0 ]; do
  case "$1" in
    --label)
      [ $# -ge 2 ] || { echo "error: --label requires a name" >&2; exit 2; }
      LABEL="$2"; shift 2 ;;
    --label=*)
      LABEL="${1#--label=}"; shift ;;
    --suite)
      [ $# -ge 2 ] || { echo "error: --suite requires a name" >&2; exit 2; }
      SUITE="$2"; shift 2 ;;
    --suite=*)
      SUITE="${1#--suite=}"; shift ;;
    --compare)
      [ $# -ge 2 ] || { echo "error: --compare requires a baseline" >&2; exit 2; }
      COMPARE="$2"; shift 2 ;;
    --compare=*)
      COMPARE="${1#--compare=}"; shift ;;
    --threshold)
      [ $# -ge 2 ] || { echo "error: --threshold requires a value" >&2; exit 2; }
      THRESHOLD="$2"; shift 2 ;;
    --threshold=*)
      THRESHOLD="${1#--threshold=}"; shift ;;
    *)
      break ;;
  esac
done

if [ -n "$COMPARE" ] && [ ! -f "$COMPARE" ]; then
  echo "error: --compare baseline $COMPARE does not exist" >&2
  exit 2
fi

if [ -n "$LABEL" ]; then
  OUT="BENCH_${LABEL}.json"
elif [ $# -gt 0 ]; then
  case "$1" in
    -*) ;; # First remaining arg is a benchmark flag, keep the default.
    *) OUT="$1"; shift ;;
  esac
fi
OUT="${OUT:-BENCH_baseline.json}"

if [ ! -f build/CMakeCache.txt ]; then
  echo "error: build/ is not configured; run 'cmake -B build -S .' first" >&2
  exit 2
fi

if [ ! -x "build/bench/$SUITE" ]; then
  echo "building $SUITE..." >&2
  cmake --build build --target "$SUITE" >/dev/null
fi

# google-benchmark does not create missing directories for
# --benchmark_out; make sure the destination exists.
OUT_DIR=$(dirname "$OUT")
[ -d "$OUT_DIR" ] || mkdir -p "$OUT_DIR"

GB_TMP="${OUT}.gbench.tmp"
STATS_TMP="${OUT}.stats.tmp"
trap 'rm -f "$GB_TMP" "$STATS_TMP"' EXIT

"build/bench/$SUITE" \
  --stats-json="$STATS_TMP" \
  --benchmark_out="$GB_TMP" \
  --benchmark_out_format=json \
  "$@"

python3 - "$GB_TMP" "$STATS_TMP" "$OUT" <<'EOF'
import json, sys
gb_path, stats_path, out_path = sys.argv[1:4]
with open(gb_path) as f:
    doc = json.load(f)
with open(stats_path) as f:
    doc["dmm_stats"] = json.load(f)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF

echo "wrote $OUT" >&2

if [ -n "$COMPARE" ]; then
  if [ -n "$THRESHOLD" ]; then
    python3 scripts/bench_history.py compare "$COMPARE" "$OUT" \
      --threshold "$THRESHOLD"
  else
    python3 scripts/bench_history.py compare "$COMPARE" "$OUT"
  fi
fi
