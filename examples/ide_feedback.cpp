//===-- examples/ide_feedback.cpp - Programmer feedback -------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's tooling use case: "The detection of dead data members may
/// also be useful in an integrated development environment, by providing
/// feedback to the programmer." This example emits compiler-style
/// warnings (file:line:col) for each dead member, with the *cause
/// chain* a programmer needs: why the member is dead, and — for
/// comparison — what a naive "never accessed" linter would have missed.
///
/// The subject program models the paper's third motivation: a programmer
/// lost track of member usage as the code evolved (a field kept being
/// initialized long after its last reader was deleted).
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "driver/Frontend.h"
#include "support/SourceManager.h"

#include <iostream>

using namespace dmm;

static const char *EvolvedProgram = R"(// order.mcc
class Order {
public:
  int id;
  int quantity;
  int legacyDiscount;  // v1 pricing: every ctor still initializes it,
                       // but the reader was deleted two releases ago.
  int cachedTotal;     // written by recompute(), never read back.
  int *auditTrail;     // only ever passed to free() in the destructor.
  Order(int anId, int aQuantity)
      : id(anId), quantity(aQuantity), legacyDiscount(10),
        cachedTotal(0) {
    auditTrail = new int[4];
  }
  ~Order() { free(auditTrail); }
  void recompute(int price) { cachedTotal = quantity * price; }
  int total(int price) { return quantity * price; }
};
int main() {
  Order *o = new Order(1, 3);
  o->recompute(50);
  int t = o->total(50) + o->id;
  delete o;
  print_int(t);
  return 0;
}
)";

int main() {
  auto Comp = compileString(EvolvedProgram, &std::cerr);
  if (!Comp->Success)
    return 1;

  DeadMemberAnalysis Analysis(Comp->context(), Comp->hierarchy(), {});
  DeadMemberResult Result = Analysis.run(Comp->mainFunction());

  // Editor-style diagnostics.
  for (const FieldDecl *F : Result.deadMembers()) {
    PresumedLoc Loc = Comp->SM.presumedLoc(F->location());
    std::cout << Loc.Filename << ":" << Loc.Line << ":" << Loc.Column
              << ": warning: data member '" << F->qualifiedName()
              << "' is dead: its value never affects observable "
                 "behaviour\n";
  }

  // Show what a naive linter (any access = used) reports instead.
  AnalysisOptions LinterOpts;
  LinterOpts.TreatWritesAsLive = true;
  DeadMemberAnalysis Linter(Comp->context(), Comp->hierarchy(),
                            LinterOpts);
  DeadMemberResult LinterResult = Linter.run(Comp->mainFunction());

  std::cout << "\nthe paper's algorithm finds "
            << Result.deadMembers().size()
            << " dead members; a naive 'unused field' linter finds "
            << LinterResult.deadMembers().size() << ":\n";
  for (const FieldDecl *F : Result.deadMembers()) {
    bool LinterMissed = !LinterResult.isDead(F);
    std::cout << "  " << F->qualifiedName()
              << (LinterMissed
                      ? "  <- missed by the linter (it is written, so "
                        "a write-counting\n     tool believes it is "
                        "used; the paper's insight is that writes "
                        "alone\n     cannot affect behaviour)"
                      : "")
              << "\n";
  }
  return 0;
}
