//===-- examples/library_pruning.cpp - Unused library functionality -------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's first motivation: "When an application uses a class
/// library, it typically uses only part of the library's functionality.
/// Certain members may be accessed only from the unused parts."
///
/// This example builds a small collection library (source available, so
/// its members can be classified) and an application that uses only the
/// stack-like subset. The analysis shows the members that exist solely
/// for the unused queue/statistics functionality. It then re-runs the
/// analysis with the library compiled as an *opaque* library (paper
/// section 3.3) to show the conservative behaviour: opaque library members
/// are not classified at all, and overrides of library virtuals stay
/// reachable.
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/ProgramStats.h"
#include "analysis/Report.h"
#include "driver/Frontend.h"

#include <iostream>

using namespace dmm;

static const char *CollectionLibrary = R"(
// colllib: a general-purpose sequence class. The application below uses
// only push/pop/top; the queue view, iteration statistics, and bounds
// bookkeeping are unused functionality.
class Sequence {
public:
  int items[32];
  int count;      // live: stack depth
  int head;       // dead: only the (unreachable) queue view reads it
  int lastPushed; // dead: event record, written on push, never read
  int lastPopped; // dead: event record, written on pop, never read
  int lastDepth;  // dead: depth record, written only
  Sequence() : count(0), head(0), lastPushed(0), lastPopped(0),
               lastDepth(0) {}
  void push(int v) {
    items[count] = v;
    count = count + 1;
    lastPushed = v;
    lastDepth = count;
  }
  int pop() {
    count = count - 1;
    lastPopped = items[count];
    return items[count];
  }
  int top() { return items[count - 1]; }
  bool empty() { return count == 0; }
  // The queue view: never called by this application.
  int dequeue() {
    int v = items[head];
    head = head + 1;
    return v;
  }
  int lastEvents() { return lastPushed - lastPopped + lastDepth; }
};
)";

static const char *Application = R"(
int main() {
  Sequence s;
  int i;
  for (i = 0; i < 10; i = i + 1) { s.push(i * i); }
  int sum = 0;
  while (!s.empty()) { sum = sum + s.pop(); }
  print_int(sum);
  return 0;
}
)";

static void analyzeWith(bool LibraryIsOpaque) {
  std::vector<SourceFile> Files;
  Files.push_back({"colllib.mcc", CollectionLibrary, LibraryIsOpaque});
  Files.push_back({"app.mcc", Application, false});
  auto Comp = compileProgram(std::move(Files), &std::cerr);
  if (!Comp->Success)
    return;

  DeadMemberAnalysis Analysis(Comp->context(), Comp->hierarchy(), {});
  DeadMemberResult Result = Analysis.run(Comp->mainFunction());

  std::cout << (LibraryIsOpaque
                    ? "--- library compiled as OPAQUE (sec. 3.3) ---\n"
                    : "--- library source available for analysis ---\n");
  printMemberReport(std::cout, Comp->context(), Result, &Comp->SM);

  if (!LibraryIsOpaque) {
    ProgramStats Stats = computeProgramStats(Comp->context(), Result,
                                             &Comp->SM, Comp->UserFileIDs);
    std::cout << "\n";
    printStatsReport(std::cout, Stats);
    // Eliminating the four dead ints shrinks every Sequence object.
    LayoutEngine Layout(Comp->hierarchy());
    for (const ClassDecl *CD : Comp->context().classes()) {
      uint64_t Before = Layout.layout(CD).CompleteSize;
      uint64_t After = Layout.sizeWithoutDead(CD, Result.deadSet());
      std::cout << "sizeof(" << CD->name() << "): " << Before << " -> "
                << After << " bytes\n";
    }
  } else {
    std::cout << "(no Sequence members are classified: the analysis "
                 "cannot prove anything\nabout classes whose source "
                 "might be accessed by unseen library code)\n";
  }
  std::cout << "\n";
}

int main() {
  analyzeWith(/*LibraryIsOpaque=*/false);
  analyzeWith(/*LibraryIsOpaque=*/true);
  return 0;
}
