//===-- examples/quickstart.cpp - Five-minute tour ------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour of the public API, on the paper's own worked
/// example (Figure 1 / section 3.1): compile a MiniC++ program, run the
/// dead-data-member analysis, inspect the classification, and take the
/// dynamic measurements.
///
/// Build and run:
///   cmake --build build && ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/Report.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "trace/DynamicMetrics.h"

#include <iostream>

using namespace dmm;

// The example program of the paper's Figure 1 (class C renamed CC since
// it is an ordinary identifier here).
static const char *Figure1 = R"(
class N {
public:
  int mn1; /* live: accessed and observable */
  int mn2; /* dead: not accessed */
};
class A {
public:
  virtual int f() { return ma1; }
  int ma1; /* live: accessed and observable */
  int ma2; /* dead: not accessed */
  int ma3; /* dead: accessed but not observable */
};
class B : public A {
public:
  virtual int f() { return mb1; }
  int mb1; /* live under RTA: B is instantiated */
  N mb2;   /* live: accessed and observable */
  int mb3; /* live: read in main */
  int mb4; /* live: address taken */
};
class CC : public A {
public:
  virtual int f() { return mc1; }
  int mc1; /* live under RTA: CC is instantiated */
};
int foo(int *x) { return (*x) + 1; }
int main() {
  A a;
  B b;
  CC c;
  A *ap;
  a.ma3 = b.mb3 + 1;
  int i = 10;
  if (i < 20) { ap = &a; } else { ap = &b; }
  return ap->f() + b.mb2.mn1 + foo(&b.mb4);
}
)";

int main() {
  // 1. Compile: lex + parse + resolve + type-check in one call.
  auto Comp = compileString(Figure1, &std::cerr);
  if (!Comp->Success)
    return 1;
  std::cout << "compiled: " << Comp->context().classes().size()
            << " classes, " << Comp->context().fields().size()
            << " data members\n\n";

  // 2. Analyze (paper Figure 2 algorithm; RTA call graph by default).
  DeadMemberAnalysis Analysis(Comp->context(), Comp->hierarchy(), {});
  DeadMemberResult Result = Analysis.run(Comp->mainFunction());

  // 3. Inspect per-member classification with reasons.
  std::cout << "member classification:\n";
  ReportOptions Show;
  Show.ShowLiveMembers = true;
  Show.ShowLocations = false;
  printMemberReport(std::cout, Comp->context(), Result, &Comp->SM, Show);

  // Programmatic access to the same information:
  for (const FieldDecl *F : Result.deadMembers())
    std::cout << "  -> " << F->qualifiedName()
              << " can be removed from the program\n";

  // 4. Execute with instrumentation and compute the dynamic numbers
  //    (Table 2 / Figure 4 of the paper).
  AllocationTrace Trace;
  InterpOptions IO;
  IO.Trace = &Trace;
  Interpreter Interp(Comp->context(), Comp->hierarchy(), IO);
  ExecResult Exec = Interp.run(Comp->mainFunction());
  if (!Exec.Completed) {
    std::cerr << "runtime error: " << Exec.Error << "\n";
    return 1;
  }
  std::cout << "\nprogram returned " << Exec.ExitCode << " after "
            << Exec.Steps << " steps\n";

  LayoutEngine Layout(Comp->hierarchy());
  DynamicMetrics M = computeDynamicMetrics(Trace, Layout, Result.deadSet());
  std::cout << "object space:        " << M.ObjectSpace << " bytes\n"
            << "dead member space:   " << M.DeadMemberSpace << " bytes ("
            << M.deadSpacePercent() << "%)\n"
            << "high water mark:     " << M.HighWaterMark << " -> "
            << M.HighWaterMarkNoDead << " bytes after removing dead "
            << "members\n";

  // 5. The paper's 3.1 refinement: with a points-to based call graph,
  //    `ap` provably never targets a CC object, so CC::mc1 is dead too.
  AnalysisOptions Refined;
  Refined.CallGraph = CallGraphKind::PTA;
  DeadMemberAnalysis PtaAnalysis(Comp->context(), Comp->hierarchy(),
                                 Refined);
  DeadMemberResult PtaResult = PtaAnalysis.run(Comp->mainFunction());
  std::cout << "\nwith the points-to call graph (paper sec. 3.1): "
            << PtaResult.deadMembers().size()
            << " dead members instead of " << Result.deadMembers().size()
            << ":\n";
  for (const FieldDecl *F : PtaResult.deadMembers())
    if (!Result.isDead(F))
      std::cout << "  -> additionally dead: " << F->qualifiedName()
                << "\n";
  return 0;
}
