//===-- examples/space_optimizer.cpp - Compiler optimization view ---------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's optimization use case: "Elimination of unused data
/// members ... reduces the amount of memory consumed by an application."
/// This example plays the role of an optimizing compiler's space pass on
/// the richards benchmark port plus a lightly bloated variant: it runs
/// the analysis under each call-graph algorithm, simulates execution to
/// collect an allocation trace, and reports how much object space a
/// dead-member-elimination pass would reclaim under each configuration —
/// the precision/payoff trade-off of paper section 3.1.
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"
#include "benchgen/Synthesizer.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "trace/DynamicMetrics.h"
#include "transform/DeadMemberEliminator.h"

#include <iostream>
#include <string>

using namespace dmm;

namespace {

// A "maintained for years" variant of the richards port: three fields
// were added for features that no longer exist.
std::string bloatedRichards() {
  std::string Src = richardsSource();
  auto ReplaceOnce = [&](const std::string &From, const std::string &To) {
    size_t Pos = Src.find(From);
    if (Pos != std::string::npos)
      Src.replace(Pos, From.size(), To);
  };
  // Dead weight in the hottest class (Packet) and in the TCB.
  ReplaceOnce("  Packet *link;",
              "  Packet *link;\n"
              "  int retryCount;   // dead: written below, never read\n"
              "  double timestamp; // dead: never accessed\n");
  ReplaceOnce("  link = l;",
              "  link = l;\n  retryCount = 0;\n");
  ReplaceOnce("  TaskControlBlock *link;",
              "  TaskControlBlock *link;\n"
              "  int wakeups;      // dead: maintained, never consumed\n");
  ReplaceOnce("  link = aLink;",
              "  link = aLink;\n  wakeups = 0;\n");
  return Src;
}

void optimize(const std::string &Label, const std::string &Source) {
  auto Comp = compileString(Source, &std::cerr);
  if (!Comp->Success)
    return;

  // One instrumented execution gives the allocation trace.
  AllocationTrace Trace;
  InterpOptions IO;
  IO.Trace = &Trace;
  Interpreter Interp(Comp->context(), Comp->hierarchy(), IO);
  ExecResult Exec = Interp.run(Comp->mainFunction());
  if (!Exec.Completed) {
    std::cerr << "runtime error: " << Exec.Error << "\n";
    return;
  }

  std::cout << Label << "\n";
  LayoutEngine Layout(Comp->hierarchy());
  for (CallGraphKind Kind : {CallGraphKind::Trivial, CallGraphKind::CHA,
                             CallGraphKind::RTA}) {
    AnalysisOptions Opts;
    Opts.CallGraph = Kind;
    DeadMemberAnalysis Analysis(Comp->context(), Comp->hierarchy(), Opts);
    DeadMemberResult Result = Analysis.run(Comp->mainFunction());
    DynamicMetrics M =
        computeDynamicMetrics(Trace, Layout, Result.deadSet());
    std::cout << "  callgraph=" << callGraphKindName(Kind) << ": "
              << Result.deadMembers().size() << " dead members, "
              << M.DeadMemberSpace << " of " << M.ObjectSpace
              << " object bytes reclaimable (" << M.deadSpacePercent()
              << "%), high water mark " << M.HighWaterMark << " -> "
              << M.HighWaterMarkNoDead << "\n";
  }
  std::cout << "\n";
}

} // namespace

// Actually applies the optimization: transform, re-run, compare.
void applyAndVerify(const std::string &Source) {
  auto Comp = compileString(Source, &std::cerr);
  if (!Comp->Success)
    return;
  DeadMemberAnalysis Analysis(Comp->context(), Comp->hierarchy(), {});
  DeadMemberResult Result = Analysis.run(Comp->mainFunction());
  EliminationResult Elim =
      eliminateDeadMembers(Comp->context(), Result, Analysis.callGraph());

  auto After = compileString(Elim.Source, &std::cerr);
  if (!After->Success)
    return;

  Interpreter I1(Comp->context(), Comp->hierarchy(), {});
  Interpreter I2(After->context(), After->hierarchy(), {});
  ExecResult E1 = I1.run(Comp->mainFunction());
  ExecResult E2 = I2.run(After->mainFunction());
  std::cout << "applied the transformation: removed " << Elim.Removed.size()
            << " members, stripped " << Elim.RemovedFunctions.size()
            << " unreachable bodies;\noutput "
            << (E1.Completed && E2.Completed && E1.Output == E2.Output &&
                        E1.ExitCode == E2.ExitCode
                    ? "IDENTICAL"
                    : "DIFFERS (bug!)")
            << " before and after.\n\n";
}

int main() {
  optimize("richards (pristine port; the paper found zero dead members)",
           richardsSource());
  optimize("richards (after simulated maintenance history)",
           bloatedRichards());
  applyAndVerify(bloatedRichards());
  std::cout << "Given the simplicity of the algorithm, 'this "
               "optimization should be\nincorporated in any optimizing "
               "compiler' (paper sec. 4.4).\n";
  return 0;
}
