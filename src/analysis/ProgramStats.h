//===-- analysis/ProgramStats.h - Table 1 / Figure 3 stats ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static program characteristics matching the paper's Table 1 and the
/// percentages of Figure 3:
///
///  - lines of code (non-blank lines of user source files);
///  - number of classes, and of *used* classes — classes for which a
///    constructor call occurs in the application (instantiated directly
///    via locals/globals/new, or as member subobjects of used classes);
///  - number of data members occurring in used classes;
///  - percentage of those members that are dead (unweighted by size,
///    as in the paper §4.2: there is no static way to weight by
///    instantiation counts).
///
/// Members of unused classes are ignored: eliminating them does not
/// shrink any object created at run time.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_ANALYSIS_PROGRAMSTATS_H
#define DMM_ANALYSIS_PROGRAMSTATS_H

#include "analysis/DeadMemberAnalysis.h"

#include <set>

namespace dmm {

class ASTContext;
class SourceManager;

/// Static characteristics of one program.
struct ProgramStats {
  unsigned LinesOfCode = 0;
  unsigned NumClasses = 0;
  unsigned NumUsedClasses = 0;
  unsigned NumMembersInUsedClasses = 0;
  unsigned NumDeadMembersInUsedClasses = 0;

  double percentDead() const {
    return NumMembersInUsedClasses
               ? 100.0 * NumDeadMembersInUsedClasses /
                     NumMembersInUsedClasses
               : 0.0;
  }
};

/// Classes for which a constructor call occurs anywhere in the program
/// text (syntactic, like the paper's Table 1 "used classes" count),
/// closed over member-object classes. Library classes are excluded.
std::set<const ClassDecl *> computeUsedClasses(const ASTContext &Ctx);

/// Computes the full characteristics row. \p UserFileIDs are the
/// non-library source buffers whose lines count toward LoC; pass an
/// empty list to skip line counting.
ProgramStats computeProgramStats(const ASTContext &Ctx,
                                 const DeadMemberResult &Result,
                                 const SourceManager *SM = nullptr,
                                 const std::vector<uint32_t> &UserFileIDs = {});

} // namespace dmm

#endif // DMM_ANALYSIS_PROGRAMSTATS_H
