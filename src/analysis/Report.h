//===-- analysis/Report.h - Human-readable analysis reports -----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering of analysis results for the `deadmember` tool and the
/// examples: a per-class member classification listing and a one-line
/// summary, the "feedback to the programmer" use case the paper's
/// introduction motivates.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_ANALYSIS_REPORT_H
#define DMM_ANALYSIS_REPORT_H

#include "analysis/DeadMemberAnalysis.h"
#include "analysis/ProgramStats.h"
#include "hierarchy/ClassHierarchy.h"

#include <ostream>

namespace dmm {

class SourceManager;

/// Controls report verbosity.
struct ReportOptions {
  bool ShowLiveMembers = false; ///< Also list live members with reasons.
  bool ShowLocations = true;    ///< Append file:line:col per member.
};

/// Writes the member classification report to \p OS.
void printMemberReport(std::ostream &OS, const ASTContext &Ctx,
                       const DeadMemberResult &Result,
                       const SourceManager *SM = nullptr,
                       ReportOptions Options = {});

/// Writes the Table 1-style characteristics line to \p OS.
void printStatsReport(std::ostream &OS, const ProgramStats &Stats);

/// Writes the member classification as a JSON document (one object per
/// classifiable member plus a summary), for editor/CI integration.
void printJsonReport(std::ostream &OS, const ASTContext &Ctx,
                     const DeadMemberResult &Result,
                     const SourceManager *SM = nullptr);

/// Writes every complete class' object layout (size, alignment, vptr,
/// member offsets) to \p OS; dead members per \p Result are marked.
void printLayoutReport(std::ostream &OS, const ASTContext &Ctx,
                       const ClassHierarchy &CH,
                       const DeadMemberResult &Result);

/// Prints the liveness provenance chain for the member named by
/// \p Query (a "Class::member" qualified name): the direct marking
/// expression's source location, or — for propagated marks — the
/// propagation edge (unsafe cast / sizeof sweep, union closure,
/// contained-member sweep) followed back to its root cause. Requires an
/// analysis run with AnalysisOptions::RecordProvenance; degrades to the
/// LivenessReason alone otherwise. Returns false when no classifiable
/// member has that name.
bool printExplainReport(std::ostream &OS, const ASTContext &Ctx,
                        const DeadMemberResult &Result,
                        const std::string &Query,
                        const SourceManager *SM = nullptr);

/// Lists every defined function that is unreachable in \p Graph — the
/// companion "unreachable procedures" optimization the paper cites
/// (refs [5, 19]). Returns the number of dead functions.
unsigned printDeadFunctionReport(std::ostream &OS, const ASTContext &Ctx,
                                 const CallGraph &Graph,
                                 const SourceManager *SM = nullptr);

} // namespace dmm

#endif // DMM_ANALYSIS_REPORT_H
