//===-- analysis/Summary.h - Per-file analysis summaries --------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary-based decomposition of the paper's whole-program
/// analysis. All liveness-relevant facts of Figure 2 are local to a
/// translation unit — member reads and address-takes, pointer-to-member
/// constants, unsafe casts, union and sizeof occurrences, call and
/// override edges — and only reachability propagation is global. A
/// FileSummary captures one file's facts in a *name-keyed*,
/// serializable form:
///
///  - Every name is interned once in the summary's string table and
///    referenced by index, so events and call facts are fixed-width and
///    a cached summary decodes without per-event allocations.
///  - Mark events reference fields as "Class::member" and sweep roots
///    by class name. Functions are keyed by their *stable name*,
///    "qualified-name/arity" (stableFunctionName): the language rejects
///    every other redefinition, but constructors may overload by arity,
///    and the arity suffix keeps those distinct. Stable names therefore
///    resolve unambiguously back to declarations at link time.
///  - Each function carries its call-graph fact transcript
///    (CallGraphBodyFact order), so the link phase rebuilds the call
///    graph by replay instead of re-walking every reachable body —
///    the dominant cost of the monolithic pipeline's graph phase.
///  - Source locations are stored as offsets relative to the summarized
///    file (rebound to the file's FileID in the linking compilation),
///    as "the target field's own location" for constructor-initializer
///    writes (whose location lives in the file that *declares* the
///    class, which may be edited independently), or — defensively — as
///    an explicit (file name, offset) pair.
///
/// Functions are attributed to the file containing their *body* (an
/// out-of-line definition belongs to the defining file, so editing the
/// declaring file never stales it). Extraction is
/// reachability-independent: every function of the file is summarized,
/// and the link phase (DeadMemberAnalysis::runWithSummaries) replays
/// only the ones reachable in the current program, in the same
/// deterministic order as the monolithic pass.
///
/// Cross-file dependencies of a scan (cast safety from the class
/// hierarchy, member resolution, expression types) are guarded by the
/// cache key's program-structure hash, not by the summary itself — see
/// cache/IncrementalAnalysis.h.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_ANALYSIS_SUMMARY_H
#define DMM_ANALYSIS_SUMMARY_H

#include "analysis/DeadMemberAnalysis.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmm {

class SourceManager;

/// A serializable source position. Offsets are only meaningful while
/// the owning file's text is unchanged — which the cache key's content
/// hash guarantees for InFile, and the OfField indirection sidesteps
/// for locations owned by *other* files.
struct SummaryLoc {
  enum class Kind : uint8_t {
    None,      ///< Invalid/unknown location.
    InFile,    ///< Offset within the summarized file itself.
    OfField,   ///< The event's target field's own declaration location
               ///  (constructor-initializer writes), resolved from the
               ///  live AST at link time.
    OtherFile, ///< Offset within another, explicitly named file.
  };

  Kind K = Kind::None;
  uint32_t Offset = 0;
  uint32_t File = 0; ///< String-table ref of the file name; OtherFile only.

  friend bool operator==(const SummaryLoc &A, const SummaryLoc &B) {
    return A.K == B.K && A.Offset == B.Offset && A.File == B.File;
  }
};

/// One liveness cause. Mirrors MarkEvent (Scanner.h) with declarations
/// replaced by string-table refs of their stable spellings.
struct SummaryEvent {
  bool IsSweep = false;
  /// "Class::member" for direct marks; the class name for sweeps.
  uint32_t Target = 0;
  LivenessReason Reason = LivenessReason::NotAccessed;
  SummaryLoc Loc;

  friend bool operator==(const SummaryEvent &A, const SummaryEvent &B) {
    return A.IsSweep == B.IsSweep && A.Target == B.Target &&
           A.Reason == B.Reason && A.Loc == B.Loc;
  }
};

/// One recorded call-graph action (CallGraphBodyFact before name
/// resolution). Name is the callee/function stable name or the class
/// name, Ctor the chosen constructor's stable name (New/VarLifetime; 0
/// when implicit), Arity the argument count of an indirect call.
struct SummaryCallFact {
  CallGraphBodyFact::Kind K = CallGraphBodyFact::Kind::DirectCall;
  uint32_t Name = 0;
  uint32_t Ctor = 0;
  uint32_t Arity = 0;
};

/// Facts of one function whose body (or constructor initializer list)
/// lives in the summarized file.
struct FunctionSummary {
  uint32_t Name = 0; ///< Stable name ref ("f/0", "C::f/2", "C::~C/0").
  uint64_t ExprsVisited = 0;
  std::vector<SummaryEvent> Events; ///< In scan order.
  /// The function's call-graph transcript, in the builder's AST-walk
  /// order: calls, address-takes, allocations, deallocations, then
  /// local variable lifetimes. Replayed by buildCallGraphFromFacts.
  std::vector<SummaryCallFact> CallFacts;
  /// Base-class methods this method overrides (stable name refs).
  std::vector<uint32_t> Overrides;
};

/// Facts of one global variable declared in the summarized file.
struct GlobalSummary {
  uint32_t Name = 0; ///< Plain name ref (globals cannot overload).
  uint64_t ExprsVisited = 0;
  std::vector<SummaryEvent> Events; ///< In scan order.
};

/// Everything the link phase needs from one source file.
struct FileSummary {
  std::string FileName;
  /// The intern table; index 0 is always the empty string, so 0 doubles
  /// as "absent" for optional refs.
  std::vector<std::string> Strings{std::string()};
  std::vector<FunctionSummary> Functions;  ///< In decl order.
  std::vector<GlobalSummary> Globals;      ///< In decl order.
  std::vector<uint32_t> EntryPoints;       ///< main()s defined here.
  std::vector<uint32_t> UnionsDefined;     ///< Union types defined here.

  const std::string &str(uint32_t Ref) const { return Strings[Ref]; }
};

/// The globally unique spelling of a function: "qualified-name/arity".
/// Constructors are the one declaration kind the language lets overload
/// (by arity); the suffix disambiguates them and is harmless noise for
/// everything else.
std::string stableFunctionName(const FunctionDecl *FD);

/// The file a function's facts belong to: its body's file, else (for
/// bodyless constructors with initializer lists) the first
/// initializer's file, else the declaration's file. 0 (no file) for
/// builtins and undefined externals, which contribute no facts.
uint32_t summaryFileOf(const FunctionDecl *FD);

/// Extracts the summary of file \p FileID: scans every function and
/// global attributed to it with the shared LivenessScanner, rewrites
/// the resulting mark events into name-keyed form, and records each
/// function's call-graph transcript.
FileSummary extractFileSummary(const ASTContext &Ctx, const SourceManager &SM,
                               uint32_t FileID,
                               const AnalysisOptions &Options);

} // namespace dmm

#endif // DMM_ANALYSIS_SUMMARY_H
