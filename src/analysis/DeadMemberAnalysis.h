//===-- analysis/DeadMemberAnalysis.h - Paper Fig. 2 algorithm --*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: a whole-program analysis that
/// conservatively detects dead data members. A member is marked live when
/// its value is read or its address is taken in a function reachable from
/// main(); plain writes (including constructor initialization) do not
/// create liveness. Special cases follow paper §3:
///
///  - volatile members are live when written;
///  - values passed (directly) to `delete`/`free` do not create liveness;
///  - pointer-to-member constants `&C::m` mark the member live;
///  - unsafe casts mark all members transitively contained in the source
///    type live (MarkAllContainedMembers);
///  - a union with one live member has all contained members marked live;
///  - `sizeof` is conservative by default, ignorable by user policy
///    (paper §3.2);
///  - members of library classes are never classified (paper §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_ANALYSIS_DEADMEMBERANALYSIS_H
#define DMM_ANALYSIS_DEADMEMBERANALYSIS_H

#include "ast/Decl.h"
#include "callgraph/CallGraph.h"
#include "hierarchy/ObjectLayout.h"
#include "support/BitVector.h"
#include "support/SourceLocation.h"

#include <array>
#include <map>
#include <optional>
#include <string>
#include <set>
#include <utility>
#include <vector>

namespace dmm {

class ASTContext;
class ClassHierarchy;
class Expr;
struct FileSummary;
struct MarkEvent;
struct ScanOutput;

/// How `sizeof` affects liveness (paper §3.2).
enum class SizeofPolicy {
  /// Any sizeof over a class marks all contained members live.
  Conservative,
  /// The user asserts every sizeof is used only for storage allocation
  /// (true for all of the paper's benchmarks).
  IgnoreAll,
};

/// Tunable policies. Defaults reproduce the paper's configuration except
/// where noted.
struct AnalysisOptions {
  /// Call-graph construction algorithm (the paper uses a PVG/RTA-family
  /// algorithm).
  CallGraphKind CallGraph = CallGraphKind::RTA;

  /// The user has verified that all down-casts are safe (the paper's
  /// authors did so for their benchmarks). When false, down-casts are
  /// unsafe and trigger MarkAllContainedMembers.
  bool AssumeDowncastsSafe = true;

  SizeofPolicy Sizeof = SizeofPolicy::IgnoreAll;

  /// Exempt values passed to delete/free from creating liveness
  /// (paper's deallocation special case). Disable for ablation.
  bool ExemptDeallocationArgs = true;

  /// Names of additional functions "known not to affect some of their
  /// parameters" (paper footnote 3 suggests strcpy-style special
  /// cases): member values passed directly to them do not become live.
  /// The user asserts this; it is not verified.
  std::set<std::string> InertFunctions;

  /// Mark all members of a union live when any one of them is
  /// (required for soundness; disable only to demonstrate the loss).
  bool UnionClosure = true;

  /// Baseline mode: any access (including writes) marks a member live —
  /// what a naive "unused field" linter computes. Disables the
  /// deallocation exemption implicitly.
  bool TreatWritesAsLive = false;

  /// Record, per live member, the cause of its classification: the
  /// source location of the marking expression and, for propagated
  /// marks (unsafe cast / sizeof sweep, union closure), the edge back
  /// to the root cause. Off by default (small but nonzero cost per
  /// visited expression).
  bool RecordProvenance = false;
};

/// Why a member was marked live (first cause wins).
enum class LivenessReason {
  NotAccessed, ///< Member is dead.
  Read,
  AddressTaken,
  PointerToMember,
  UnsafeCast,
  SizeofConservative,
  UnionClosure,
  VolatileWrite,
  Written, ///< Baseline mode only.
};

const char *livenessReasonName(LivenessReason Reason);

/// Short machine-friendly identifier for a reason ("read",
/// "unsafe_cast", ...), used for telemetry counter names and JSON keys.
const char *livenessReasonSlug(LivenessReason Reason);

/// Why a live member is live, at one level of detail deeper than the
/// LivenessReason enum (recorded when AnalysisOptions::RecordProvenance
/// is set). Directly-marked members carry the source location of the
/// marking expression. Propagated members carry the propagation edge:
/// the class whose members were swept (cast-source class or closed
/// union) and — for union closure — the already-live member whose
/// liveness forced the sweep, which chains to *its* provenance.
struct LivenessProvenance {
  LivenessReason Reason = LivenessReason::NotAccessed;
  /// The marking expression (reads, address-of, pointer-to-member,
  /// volatile writes) or the unsafe cast / sizeof that triggered a
  /// contained-member sweep. Invalid for union-closure marks, which
  /// have no single source point.
  SourceLocation Loc;
  /// Propagated marks only: the class whose contained members were
  /// swept (the cast-source class, the sizeof operand class, or the
  /// closed union).
  const ClassDecl *Via = nullptr;
  /// Union-closure marks only: the live member that triggered the
  /// closure. Follow its provenance to reach the root cause.
  const FieldDecl *Trigger = nullptr;

  bool isPropagated() const { return Via != nullptr; }
};

/// Analysis output.
class DeadMemberResult {
public:
  /// True if \p F can be classified at all: members of library or
  /// incomplete classes cannot (paper §3.3).
  bool canClassify(const FieldDecl *F) const {
    return !F->parent()->isLibrary() && F->parent()->isComplete();
  }

  /// True if \p F was proven dead. Always false for unclassifiable
  /// members.
  bool isDead(const FieldDecl *F) const {
    return canClassify(F) && !Live.test(F->declID());
  }

  bool isLive(const FieldDecl *F) const { return Live.test(F->declID()); }

  LivenessReason reason(const FieldDecl *F) const {
    unsigned ID = F->declID();
    return ID < Reasons.size() ? static_cast<LivenessReason>(Reasons[ID])
                               : LivenessReason::NotAccessed;
  }

  /// The recorded cause of \p F's liveness; null when \p F is dead or
  /// the analysis ran without AnalysisOptions::RecordProvenance.
  const LivenessProvenance *provenance(const FieldDecl *F) const {
    auto It = Provenance.find(F);
    return It == Provenance.end() ? nullptr : &It->second;
  }

  /// The dead set over classifiable members, as a FieldSet usable by the
  /// layout engine.
  FieldSet deadSet() const;

  /// All classifiable members, in decl order.
  const std::vector<const FieldDecl *> &classifiableMembers() const {
    return Classifiable;
  }

  /// Dead members in decl order.
  std::vector<const FieldDecl *> deadMembers() const;

private:
  friend class DeadMemberAnalysis;
  /// Liveness marks and their reasons, indexed by FieldDecl::declID()
  /// (decl IDs are dense per compilation, so these are flat bit/byte
  /// arrays rather than pointer-keyed trees).
  BitVector Live;
  std::vector<uint8_t> Reasons;
  std::map<const FieldDecl *, LivenessProvenance> Provenance;
  std::vector<const FieldDecl *> Classifiable;
};

/// Runs the detection algorithm of paper Figure 2.
///
/// Execution model: the per-function statement scan is a pure read of
/// the AST (it never consults earlier marks), so scans fan out across
/// the global ThreadPool, each producing an ordered buffer of mark
/// events. The buffers are then replayed on the calling thread in
/// deterministic order (globals, then reachable functions by decl ID),
/// where first-cause-wins marking, sweep dedup, and provenance
/// recording happen exactly as in a sequential walk — so reports,
/// `--explain` chains, and telemetry totals are byte-identical at any
/// `--jobs` level.
class DeadMemberAnalysis {
public:
  DeadMemberAnalysis(const ASTContext &Ctx, const ClassHierarchy &CH,
                     AnalysisOptions Options = {});

  /// Runs the analysis: builds the call graph (unless one is injected
  /// via setCallGraph), walks every reachable function, then applies the
  /// union closure.
  DeadMemberResult run(const FunctionDecl *Main);

  /// Link phase of the summary-based pipeline (analysis/Summary.h):
  /// resolves the name-keyed mark events of per-file summaries back to
  /// declarations in this compilation and replays them in the same
  /// deterministic order as run() — globals in decl order, then
  /// reachable functions by decl ID — producing a byte-identical
  /// result. Each summary is paired with the FileID its file occupies
  /// in the current compilation (used to rebind serialized source
  /// offsets). Returns std::nullopt and sets *Error when a summary
  /// references a name this program does not define or omits a function
  /// that now has a body (a stale summary); callers fall back to run().
  std::optional<DeadMemberResult> runWithSummaries(
      const FunctionDecl *Main,
      const std::vector<std::pair<uint32_t, const FileSummary *>> &Summaries,
      std::string *Error = nullptr);

  /// Injects a pre-built call graph (used by ablation benchmarks to
  /// share graphs); must match Options.CallGraph semantics.
  void setCallGraph(const CallGraph *Graph) { InjectedGraph = Graph; }

  /// The call graph used by the last run().
  const CallGraph &callGraph() const { return *UsedGraph; }

private:
  /// \name Shared phase pieces
  /// run() and runWithSummaries() differ only in where mark events come
  /// from (fresh AST scans vs. replayed summaries). beginRun resets all
  /// state, enumerates classifiable members, and builds the call graph —
  /// from recorded body facts when the summary path supplies \p Facts
  /// (buildCallGraphFromFacts), else by walking the AST; finishRun
  /// applies the union closure, flushes telemetry, and returns the
  /// result.
  /// @{
  void beginRun(const FunctionDecl *Main,
                const CallGraphFactsFn *Facts = nullptr);
  DeadMemberResult finishRun();
  /// @}

  /// Replays a scan buffer through markLive/markAllContainedMembers.
  void applyScan(const ScanOutput &Scan);

  /// The first live member transitively contained in \p CD (the union
  /// closure trigger), or null.
  const FieldDecl *containsLiveMember(const ClassDecl *CD) const;

  void markLive(const FieldDecl *F, LivenessReason Reason);
  void markAllContainedMembers(const ClassDecl *CD, LivenessReason Reason);

  const ASTContext &Ctx;
  const ClassHierarchy &CH;
  AnalysisOptions Options;
  const CallGraph *InjectedGraph = nullptr;
  const CallGraph *UsedGraph = nullptr;
  CallGraph OwnedGraph;

  DeadMemberResult Result;
  BitVector MarkVisited; ///< MarkAllContainedMembers dedup, by declID.

  /// \name Provenance context (valid only while RecordProvenance)
  /// The location of the event being replayed, and the sweep edge
  /// (class + triggering member) during a MarkAllContainedMembers
  /// cascade; markLive() snapshots them.
  /// @{
  SourceLocation ProvLoc;
  const ClassDecl *ProvVia = nullptr;
  const FieldDecl *ProvTrigger = nullptr;
  /// @}

  /// \name Telemetry tallies (flushed to the active Telemetry by run())
  /// @{
  uint64_t NumFunctionsProcessed = 0;
  uint64_t NumExprsVisited = 0;
  uint64_t NumUnionClosurePasses = 0;
  std::array<uint64_t, 9> MarksPerReason{};
  /// @}
};

} // namespace dmm

#endif // DMM_ANALYSIS_DEADMEMBERANALYSIS_H
