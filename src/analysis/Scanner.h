//===-- analysis/Scanner.h - Per-function liveness scan ---------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scan side of the paper's Figure 2 algorithm, factored out of
/// DeadMemberAnalysis so that the monolithic pass and the per-file
/// summary extractor (analysis/Summary.h) walk statements with the
/// *same* code and therefore emit the *same* event streams.
///
/// A Scanner performs a pure read of one function's (or one global
/// initializer's) AST — it never consults earlier liveness marks; every
/// decision depends only on the AST and the immutable AnalysisOptions —
/// so one Scanner per function can run on any thread. Causes are
/// emitted as an ordered MarkEvent buffer; first-cause-wins resolution,
/// sweep dedup, and provenance recording happen later, during the
/// deterministic replay in DeadMemberAnalysis.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_ANALYSIS_SCANNER_H
#define DMM_ANALYSIS_SCANNER_H

#include "analysis/DeadMemberAnalysis.h"
#include "ast/ASTWalker.h"
#include "ast/Expr.h"

#include <utility>
#include <vector>

namespace dmm {

/// One liveness cause observed by a function scan, in scan order.
/// Direct marks carry the field; sweep marks (unsafe cast / sizeof)
/// carry the root class whose contained members are marked at replay.
struct MarkEvent {
  const FieldDecl *Field = nullptr; ///< Direct mark target, or null.
  const ClassDecl *Sweep = nullptr; ///< Sweep root, or null.
  LivenessReason Reason = LivenessReason::NotAccessed;
  SourceLocation Loc; ///< The marking expression's location.
};

/// Output of scanning one function (or one global's initializers).
struct ScanOutput {
  std::vector<MarkEvent> Events;
  uint64_t ExprsVisited = 0;
};

/// The read-only statement/expression walker (paper Fig. 2, scan side).
class LivenessScanner {
public:
  explicit LivenessScanner(const AnalysisOptions &Options)
      : Options(Options) {}

  ScanOutput take() { return std::move(Out); }

  void scanFunction(const FunctionDecl *FD) {
    // Constructor initializer lists: targets are writes; arguments are
    // reads.
    if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD)) {
      for (const CtorInitializer &Init : Ctor->initializers()) {
        if (Init.Field) {
          CurLoc = Init.Field->location();
          noteWrite(Init.Field);
        }
        for (const Expr *Arg : Init.Args)
          visit(Arg);
      }
    }

    if (!FD->body())
      return;
    forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
      forEachDirectExpr(S, [&](const Expr *E) { visit(E); });
    });
  }

  /// Global initializers execute before main: scan ctor arguments and
  /// the initializer expression.
  void scanGlobal(const VarDecl *GV) {
    for (const Expr *Arg : GV->ctorArgs())
      visit(Arg);
    if (const Expr *Init = GV->init())
      visit(Init);
  }

private:
  /// Returns the field accessed by \p E when E is a direct member
  /// access (MemberExpr to a FieldDecl, or an implicit-this DeclRefExpr
  /// naming a field); null otherwise.
  static const FieldDecl *directFieldAccess(const Expr *E) {
    if (const auto *ME = dyn_cast<MemberExpr>(E))
      return dyn_cast_or_null<FieldDecl>(ME->member());
    if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
      return dyn_cast_or_null<FieldDecl>(DRE->referent());
    return nullptr;
  }

  /// Strips casts the analysis can see through when matching
  /// deallocation arguments (`delete (T*)m`).
  static const Expr *stripCasts(const Expr *E) {
    while (const auto *CE = dyn_cast<CastExpr>(E))
      E = CE->sub();
    return E;
  }

  void emitMark(const FieldDecl *F, LivenessReason Reason) {
    Out.Events.push_back({F, nullptr, Reason, CurLoc});
  }

  /// Emits a contained-member sweep of the class named by \p Ty
  /// (stripping pointers/references/arrays), if any.
  void emitSweepOfType(const Type *Ty, LivenessReason Reason) {
    // Strip indirections: an unsafe cast of a C* exposes C's members.
    for (;;) {
      if (const auto *PT = dyn_cast<PointerType>(Ty)) {
        Ty = PT->pointee();
        continue;
      }
      if (const auto *RT = dyn_cast<ReferenceType>(Ty)) {
        Ty = RT->pointee();
        continue;
      }
      if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
        Ty = AT->element();
        continue;
      }
      break;
    }
    if (const ClassDecl *CD = Ty->asClassDecl())
      Out.Events.push_back({nullptr, CD, Reason, CurLoc});
  }

  /// Records a write to \p F (ctor initializers and assignment LHS).
  void noteWrite(const FieldDecl *F) {
    if (F->isVolatile()) {
      emitMark(F, LivenessReason::VolatileWrite);
      return;
    }
    if (Options.TreatWritesAsLive)
      emitMark(F, LivenessReason::Written);
  }

  /// Visits the outermost node of an assignment target (plain `=`).
  void visitWriteTarget(const Expr *E) {
    if (const FieldDecl *F = directFieldAccess(E)) {
      noteWrite(F);
      // The base object expression is still evaluated.
      if (const auto *ME = dyn_cast<MemberExpr>(E))
        visit(ME->base());
      return;
    }
    // Any other target shape (deref, subscript, member-pointer access...)
    // evaluates its operands as reads.
    visit(E);
  }

  /// Handles a deallocation argument: the (cast-stripped) top-level
  /// member value does not become live; everything beneath it does.
  void visitDeallocArg(const Expr *E) {
    // Process casts along the way (an unsafe cast in a delete argument
    // still marks members).
    for (const Expr *Cur = E; const auto *CE = dyn_cast<CastExpr>(Cur);
         Cur = CE->sub()) {
      bool Unsafe = CE->safety() == CastSafety::Unrelated ||
                    (CE->safety() == CastSafety::Downcast &&
                     !Options.AssumeDowncastsSafe);
      if (Unsafe) {
        CurLoc = CE->location();
        emitSweepOfType(CE->sub()->type(), LivenessReason::UnsafeCast);
      }
    }
    const Expr *Stripped = stripCasts(E);
    if (const FieldDecl *F = directFieldAccess(Stripped)) {
      (void)F; // The member's value only feeds deallocation: not live.
      if (const auto *ME = dyn_cast<MemberExpr>(Stripped))
        visit(ME->base());
      return;
    }
    visit(Stripped);
  }

  /// Visits \p E in read context.
  void visit(const Expr *E) {
    ++Out.ExprsVisited;
    CurLoc = E->location();
    switch (E->kind()) {
    case Expr::Kind::Member: {
      const auto *ME = cast<MemberExpr>(E);
      if (const auto *F = dyn_cast_or_null<FieldDecl>(ME->member()))
        emitMark(F, LivenessReason::Read);
      visit(ME->base());
      return;
    }
    case Expr::Kind::DeclRef: {
      const auto *DRE = cast<DeclRefExpr>(E);
      if (const auto *F = dyn_cast_or_null<FieldDecl>(DRE->referent()))
        emitMark(F, LivenessReason::Read);
      return;
    }
    case Expr::Kind::MemberPointerConstant: {
      // Fig. 2 lines 26-28: the member's offset is computed; assume it
      // may be accessed anywhere.
      const auto *MPC = cast<MemberPointerConstantExpr>(E);
      if (const FieldDecl *F = MPC->member())
        emitMark(F, LivenessReason::PointerToMember);
      return;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      if (UE->op() == UnaryOpKind::AddrOf) {
        if (const FieldDecl *F = directFieldAccess(UE->sub())) {
          // &e.m: conservatively live; we do not trace the address.
          emitMark(F, LivenessReason::AddressTaken);
          if (const auto *ME = dyn_cast<MemberExpr>(UE->sub()))
            visit(ME->base());
          return;
        }
      }
      visit(UE->sub());
      return;
    }
    case Expr::Kind::Assign: {
      const auto *AE = cast<AssignExpr>(E);
      if (AE->isCompound()) {
        // Compound assignment reads the target too.
        visit(AE->lhs());
      } else {
        visitWriteTarget(AE->lhs());
      }
      visit(AE->rhs());
      return;
    }
    case Expr::Kind::Delete: {
      const auto *DE = cast<DeleteExpr>(E);
      if (Options.ExemptDeallocationArgs && !Options.TreatWritesAsLive)
        visitDeallocArg(DE->sub());
      else
        visit(DE->sub());
      return;
    }
    case Expr::Kind::Call: {
      const auto *Call = cast<CallExpr>(E);
      const FunctionDecl *Direct = Call->directCallee();
      bool IsFree = Direct && (Direct->builtinKind() == BuiltinKind::Free ||
                               Options.InertFunctions.count(Direct->name()));
      // The callee expression is evaluated: a method callee's base
      // object, or a function-pointer load (possibly from a member,
      // which counts as a read).
      visit(Call->callee());
      for (const Expr *Arg : Call->args()) {
        if (IsFree && Options.ExemptDeallocationArgs &&
            !Options.TreatWritesAsLive)
          visitDeallocArg(Arg);
        else
          visit(Arg);
      }
      return;
    }
    case Expr::Kind::Cast: {
      const auto *CE = cast<CastExpr>(E);
      bool Unsafe = CE->safety() == CastSafety::Unrelated ||
                    (CE->safety() == CastSafety::Downcast &&
                     !Options.AssumeDowncastsSafe);
      if (Unsafe)
        emitSweepOfType(CE->sub()->type(), LivenessReason::UnsafeCast);
      visit(CE->sub());
      return;
    }
    case Expr::Kind::Sizeof: {
      if (Options.Sizeof == SizeofPolicy::Conservative) {
        const auto *SE = cast<SizeofExpr>(E);
        const Type *Ty =
            SE->typeOperand() ? SE->typeOperand() : SE->exprOperand()->type();
        emitSweepOfType(Ty, LivenessReason::SizeofConservative);
      }
      // The operand of sizeof is unevaluated: no reads occur.
      return;
    }
    default:
      forEachChildExpr(E, [&](const Expr *Child) { visit(Child); });
      return;
    }
  }

  const AnalysisOptions &Options;
  /// Mirrors the sequential analysis's provenance location: the
  /// expression currently being visited (or a ctor-initializer field's
  /// location). Every emitted event snapshots it.
  SourceLocation CurLoc;
  ScanOutput Out;
};

} // namespace dmm

#endif // DMM_ANALYSIS_SCANNER_H
