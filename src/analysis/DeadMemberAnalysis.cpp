//===-- analysis/DeadMemberAnalysis.cpp -----------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"

#include "ast/ASTContext.h"
#include "ast/ASTWalker.h"
#include "ast/Expr.h"
#include "hierarchy/ClassHierarchy.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace dmm;

const char *dmm::livenessReasonName(LivenessReason Reason) {
  switch (Reason) {
  case LivenessReason::NotAccessed: return "not accessed (dead)";
  case LivenessReason::Read: return "value read";
  case LivenessReason::AddressTaken: return "address taken";
  case LivenessReason::PointerToMember: return "pointer-to-member constant";
  case LivenessReason::UnsafeCast: return "reached by unsafe cast";
  case LivenessReason::SizeofConservative: return "sizeof (conservative)";
  case LivenessReason::UnionClosure: return "union closure";
  case LivenessReason::VolatileWrite: return "volatile member written";
  case LivenessReason::Written: return "written (baseline mode)";
  }
  return "unknown";
}

const char *dmm::livenessReasonSlug(LivenessReason Reason) {
  switch (Reason) {
  case LivenessReason::NotAccessed: return "not_accessed";
  case LivenessReason::Read: return "read";
  case LivenessReason::AddressTaken: return "address_taken";
  case LivenessReason::PointerToMember: return "pointer_to_member";
  case LivenessReason::UnsafeCast: return "unsafe_cast";
  case LivenessReason::SizeofConservative: return "sizeof";
  case LivenessReason::UnionClosure: return "union_closure";
  case LivenessReason::VolatileWrite: return "volatile_write";
  case LivenessReason::Written: return "written";
  }
  return "unknown";
}

FieldSet DeadMemberResult::deadSet() const {
  FieldSet Dead;
  for (const FieldDecl *F : Classifiable)
    if (!Live.test(F->declID()))
      Dead.insert(F);
  return Dead;
}

std::vector<const FieldDecl *> DeadMemberResult::deadMembers() const {
  std::vector<const FieldDecl *> Dead;
  for (const FieldDecl *F : Classifiable)
    if (!Live.test(F->declID()))
      Dead.push_back(F);
  return Dead;
}

/// Returns the field accessed by \p E when E is a direct member access
/// (MemberExpr to a FieldDecl, or an implicit-this DeclRefExpr naming a
/// field); null otherwise.
static const FieldDecl *directFieldAccess(const Expr *E) {
  if (const auto *ME = dyn_cast<MemberExpr>(E))
    return dyn_cast_or_null<FieldDecl>(ME->member());
  if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
    return dyn_cast_or_null<FieldDecl>(DRE->referent());
  return nullptr;
}

/// Strips casts the analysis can see through when matching deallocation
/// arguments (`delete (T*)m`).
static const Expr *stripCasts(const Expr *E) {
  while (const auto *CE = dyn_cast<CastExpr>(E))
    E = CE->sub();
  return E;
}

//===----------------------------------------------------------------------===//
// Scanner: the read-only statement/expression walker
//===----------------------------------------------------------------------===//
//
// The scan side of the analysis never consults liveness marks — every
// decision below depends only on the AST and the (immutable) options —
// so one Scanner per function can run on any thread. Causes are emitted
// as an ordered MarkEvent buffer; first-cause-wins resolution, sweep
// dedup, and provenance happen later, during the deterministic replay
// in DeadMemberAnalysis::applyScan.

class DeadMemberAnalysis::Scanner {
public:
  explicit Scanner(const AnalysisOptions &Options) : Options(Options) {}

  ScanOutput take() { return std::move(Out); }

  void scanFunction(const FunctionDecl *FD) {
    // Constructor initializer lists: targets are writes; arguments are
    // reads.
    if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD)) {
      for (const CtorInitializer &Init : Ctor->initializers()) {
        if (Init.Field) {
          CurLoc = Init.Field->location();
          noteWrite(Init.Field);
        }
        for (const Expr *Arg : Init.Args)
          visit(Arg);
      }
    }

    if (!FD->body())
      return;
    forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
      forEachDirectExpr(S, [&](const Expr *E) { visit(E); });
    });
  }

  /// Global initializers execute before main: scan ctor arguments and
  /// the initializer expression.
  void scanGlobal(const VarDecl *GV) {
    for (const Expr *Arg : GV->ctorArgs())
      visit(Arg);
    if (const Expr *Init = GV->init())
      visit(Init);
  }

private:
  void emitMark(const FieldDecl *F, LivenessReason Reason) {
    Out.Events.push_back({F, nullptr, Reason, CurLoc});
  }

  /// Emits a contained-member sweep of the class named by \p Ty
  /// (stripping pointers/references/arrays), if any.
  void emitSweepOfType(const Type *Ty, LivenessReason Reason) {
    // Strip indirections: an unsafe cast of a C* exposes C's members.
    for (;;) {
      if (const auto *PT = dyn_cast<PointerType>(Ty)) {
        Ty = PT->pointee();
        continue;
      }
      if (const auto *RT = dyn_cast<ReferenceType>(Ty)) {
        Ty = RT->pointee();
        continue;
      }
      if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
        Ty = AT->element();
        continue;
      }
      break;
    }
    if (const ClassDecl *CD = Ty->asClassDecl())
      Out.Events.push_back({nullptr, CD, Reason, CurLoc});
  }

  /// Records a write to \p F (ctor initializers and assignment LHS).
  void noteWrite(const FieldDecl *F) {
    if (F->isVolatile()) {
      emitMark(F, LivenessReason::VolatileWrite);
      return;
    }
    if (Options.TreatWritesAsLive)
      emitMark(F, LivenessReason::Written);
  }

  /// Visits the outermost node of an assignment target (plain `=`).
  void visitWriteTarget(const Expr *E) {
    if (const FieldDecl *F = directFieldAccess(E)) {
      noteWrite(F);
      // The base object expression is still evaluated.
      if (const auto *ME = dyn_cast<MemberExpr>(E))
        visit(ME->base());
      return;
    }
    // Any other target shape (deref, subscript, member-pointer access...)
    // evaluates its operands as reads.
    visit(E);
  }

  /// Handles a deallocation argument: the (cast-stripped) top-level
  /// member value does not become live; everything beneath it does.
  void visitDeallocArg(const Expr *E) {
    // Process casts along the way (an unsafe cast in a delete argument
    // still marks members).
    for (const Expr *Cur = E; const auto *CE = dyn_cast<CastExpr>(Cur);
         Cur = CE->sub()) {
      bool Unsafe = CE->safety() == CastSafety::Unrelated ||
                    (CE->safety() == CastSafety::Downcast &&
                     !Options.AssumeDowncastsSafe);
      if (Unsafe) {
        CurLoc = CE->location();
        emitSweepOfType(CE->sub()->type(), LivenessReason::UnsafeCast);
      }
    }
    const Expr *Stripped = stripCasts(E);
    if (const FieldDecl *F = directFieldAccess(Stripped)) {
      (void)F; // The member's value only feeds deallocation: not live.
      if (const auto *ME = dyn_cast<MemberExpr>(Stripped))
        visit(ME->base());
      return;
    }
    visit(Stripped);
  }

  /// Visits \p E in read context.
  void visit(const Expr *E) {
    ++Out.ExprsVisited;
    CurLoc = E->location();
    switch (E->kind()) {
    case Expr::Kind::Member: {
      const auto *ME = cast<MemberExpr>(E);
      if (const auto *F = dyn_cast_or_null<FieldDecl>(ME->member()))
        emitMark(F, LivenessReason::Read);
      visit(ME->base());
      return;
    }
    case Expr::Kind::DeclRef: {
      const auto *DRE = cast<DeclRefExpr>(E);
      if (const auto *F = dyn_cast_or_null<FieldDecl>(DRE->referent()))
        emitMark(F, LivenessReason::Read);
      return;
    }
    case Expr::Kind::MemberPointerConstant: {
      // Fig. 2 lines 26-28: the member's offset is computed; assume it
      // may be accessed anywhere.
      const auto *MPC = cast<MemberPointerConstantExpr>(E);
      if (const FieldDecl *F = MPC->member())
        emitMark(F, LivenessReason::PointerToMember);
      return;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(E);
      if (UE->op() == UnaryOpKind::AddrOf) {
        if (const FieldDecl *F = directFieldAccess(UE->sub())) {
          // &e.m: conservatively live; we do not trace the address.
          emitMark(F, LivenessReason::AddressTaken);
          if (const auto *ME = dyn_cast<MemberExpr>(UE->sub()))
            visit(ME->base());
          return;
        }
      }
      visit(UE->sub());
      return;
    }
    case Expr::Kind::Assign: {
      const auto *AE = cast<AssignExpr>(E);
      if (AE->isCompound()) {
        // Compound assignment reads the target too.
        visit(AE->lhs());
      } else {
        visitWriteTarget(AE->lhs());
      }
      visit(AE->rhs());
      return;
    }
    case Expr::Kind::Delete: {
      const auto *DE = cast<DeleteExpr>(E);
      if (Options.ExemptDeallocationArgs && !Options.TreatWritesAsLive)
        visitDeallocArg(DE->sub());
      else
        visit(DE->sub());
      return;
    }
    case Expr::Kind::Call: {
      const auto *Call = cast<CallExpr>(E);
      const FunctionDecl *Direct = Call->directCallee();
      bool IsFree = Direct && (Direct->builtinKind() == BuiltinKind::Free ||
                               Options.InertFunctions.count(Direct->name()));
      // The callee expression is evaluated: a method callee's base
      // object, or a function-pointer load (possibly from a member,
      // which counts as a read).
      visit(Call->callee());
      for (const Expr *Arg : Call->args()) {
        if (IsFree && Options.ExemptDeallocationArgs &&
            !Options.TreatWritesAsLive)
          visitDeallocArg(Arg);
        else
          visit(Arg);
      }
      return;
    }
    case Expr::Kind::Cast: {
      const auto *CE = cast<CastExpr>(E);
      bool Unsafe = CE->safety() == CastSafety::Unrelated ||
                    (CE->safety() == CastSafety::Downcast &&
                     !Options.AssumeDowncastsSafe);
      if (Unsafe)
        emitSweepOfType(CE->sub()->type(), LivenessReason::UnsafeCast);
      visit(CE->sub());
      return;
    }
    case Expr::Kind::Sizeof: {
      if (Options.Sizeof == SizeofPolicy::Conservative) {
        const auto *SE = cast<SizeofExpr>(E);
        const Type *Ty =
            SE->typeOperand() ? SE->typeOperand() : SE->exprOperand()->type();
        emitSweepOfType(Ty, LivenessReason::SizeofConservative);
      }
      // The operand of sizeof is unevaluated: no reads occur.
      return;
    }
    default:
      forEachChildExpr(E, [&](const Expr *Child) { visit(Child); });
      return;
    }
  }

  const AnalysisOptions &Options;
  /// Mirrors the sequential analysis's provenance location: the
  /// expression currently being visited (or a ctor-initializer field's
  /// location). Every emitted event snapshots it.
  SourceLocation CurLoc;
  ScanOutput Out;
};

//===----------------------------------------------------------------------===//
// DeadMemberAnalysis: replay + closure
//===----------------------------------------------------------------------===//

DeadMemberAnalysis::DeadMemberAnalysis(const ASTContext &Ctx,
                                       const ClassHierarchy &CH,
                                       AnalysisOptions Options)
    : Ctx(Ctx), CH(CH), Options(Options) {}

DeadMemberResult DeadMemberAnalysis::run(const FunctionDecl *Main) {
  PhaseTimer Timer("analysis");
  Result = DeadMemberResult();
  MarkVisited.clear();
  ProvLoc = SourceLocation();
  ProvVia = nullptr;
  ProvTrigger = nullptr;
  NumFunctionsProcessed = NumExprsVisited = NumUnionClosurePasses = 0;
  MarksPerReason.fill(0);

  // Line 3 of Fig. 2: all data members start dead. We track the live set;
  // classifiable members are enumerated here.
  for (const FieldDecl *F : Ctx.fields())
    if (Result.canClassify(F))
      Result.Classifiable.push_back(F);

  // Line 5: construct the call graph.
  if (InjectedGraph) {
    UsedGraph = InjectedGraph;
  } else {
    OwnedGraph = buildCallGraph(Ctx, CH, Main, Options.CallGraph);
    UsedGraph = &OwnedGraph;
  }

  // Lines 6-8, scan side: walk the global initializers and every
  // statement of every reachable function, collecting mark events. The
  // per-function scans are independent pure reads, so they fan out
  // across the pool.
  Scanner GlobalScanner(Options);
  for (const VarDecl *GV : Ctx.globals())
    GlobalScanner.scanGlobal(GV);
  ScanOutput GlobalScan = GlobalScanner.take();

  const std::vector<const FunctionDecl *> Fns =
      UsedGraph->reachableFunctions();
  std::vector<ScanOutput> Scans = globalThreadPool().parallelMap<ScanOutput>(
      Fns.size(), [&](size_t I) {
        Scanner S(Options);
        S.scanFunction(Fns[I]);
        return S.take();
      });

  // Replay in deterministic order — globals first, then functions in
  // the (decl-ID sorted) reachable order — so first-cause-wins marks,
  // sweep dedup, and provenance are identical at any --jobs level.
  applyScan(GlobalScan);
  for (const ScanOutput &Scan : Scans) {
    ++NumFunctionsProcessed;
    applyScan(Scan);
  }

  // Lines 9-11: union closure. A union must be closed when any member it
  // (transitively) contains is live: a write through one alternative can
  // otherwise change a live member's value unnoticed. Iterate to a fixed
  // point since closing one union may enliven members of another.
  if (Options.UnionClosure) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++NumUnionClosurePasses;
      for (const ClassDecl *CD : Ctx.classes()) {
        if (!CD->isUnion() || MarkVisited.test(CD->declID()))
          continue;
        const FieldDecl *Trigger = containsLiveMember(CD);
        if (!Trigger)
          continue;
        if (Options.RecordProvenance) {
          ProvLoc = SourceLocation();
          ProvVia = CD;
          ProvTrigger = Trigger;
        }
        markAllContainedMembers(CD, LivenessReason::UnionClosure);
        ProvVia = nullptr;
        ProvTrigger = nullptr;
        Changed = true;
      }
    }
  }

  if (Telemetry *T = Telemetry::active()) {
    T->addCounter("analysis.functions_processed", NumFunctionsProcessed);
    T->addCounter("analysis.exprs_visited", NumExprsVisited);
    T->addCounter("analysis.union_closure_passes", NumUnionClosurePasses);
    T->addCounter("analysis.classifiable_members",
                  Result.Classifiable.size());
    T->addCounter("analysis.live_members", Result.Live.count());
    for (size_t I = 0; I != MarksPerReason.size(); ++I)
      if (MarksPerReason[I])
        T->addCounter(std::string("analysis.live.") +
                          livenessReasonSlug(static_cast<LivenessReason>(I)),
                      MarksPerReason[I]);
  }

  return Result;
}

void DeadMemberAnalysis::applyScan(const ScanOutput &Scan) {
  NumExprsVisited += Scan.ExprsVisited;
  for (const MarkEvent &E : Scan.Events) {
    if (Options.RecordProvenance) {
      ProvLoc = E.Loc;
      ProvVia = nullptr;
      ProvTrigger = nullptr;
    }
    if (E.Field) {
      markLive(E.Field, E.Reason);
      continue;
    }
    if (Options.RecordProvenance)
      ProvVia = E.Sweep;
    markAllContainedMembers(E.Sweep, E.Reason);
    ProvVia = nullptr;
  }
}

const FieldDecl *
DeadMemberAnalysis::containsLiveMember(const ClassDecl *CD) const {
  std::set<const ClassDecl *> Seen;
  struct Walker {
    const DeadMemberResult &Result;
    std::set<const ClassDecl *> &Seen;
    const FieldDecl *walk(const ClassDecl *C) const {
      if (!Seen.insert(C).second)
        return nullptr;
      for (const FieldDecl *F : C->fields()) {
        if (Result.isLive(F))
          return F;
        const Type *Ty = F->type();
        if (const auto *AT = dyn_cast<ArrayType>(Ty))
          Ty = AT->element();
        if (const ClassDecl *Nested = Ty->asClassDecl())
          if (const FieldDecl *Found = walk(Nested))
            return Found;
      }
      for (const BaseSpecifier &BS : C->bases())
        if (const FieldDecl *Found = walk(BS.Base))
          return Found;
      return nullptr;
    }
  };
  return Walker{Result, Seen}.walk(CD);
}

void DeadMemberAnalysis::markLive(const FieldDecl *F,
                                  LivenessReason Reason) {
  unsigned ID = F->declID();
  if (!Result.Live.set(ID))
    return; // First cause wins.
  if (Result.Reasons.size() <= ID)
    Result.Reasons.resize(ID + 1, 0);
  Result.Reasons[ID] = static_cast<uint8_t>(Reason);
  ++MarksPerReason[static_cast<size_t>(Reason)];
  if (Options.RecordProvenance)
    Result.Provenance[F] = {Reason, ProvLoc, ProvVia, ProvTrigger};
}

void DeadMemberAnalysis::markAllContainedMembers(const ClassDecl *CD,
                                                 LivenessReason Reason) {
  // Paper Fig. 2 lines 36-50, with the not-visited guard.
  if (!MarkVisited.set(CD->declID()))
    return;
  for (const FieldDecl *F : CD->fields()) {
    markLive(F, Reason);
    if (const ClassDecl *Nested = F->type()->asClassDecl())
      markAllContainedMembers(Nested, Reason);
    else if (const auto *AT = dyn_cast<ArrayType>(F->type()))
      if (const ClassDecl *Elem = AT->element()->asClassDecl())
        markAllContainedMembers(Elem, Reason);
  }
  for (const BaseSpecifier &BS : CD->bases())
    markAllContainedMembers(BS.Base, Reason);
}
