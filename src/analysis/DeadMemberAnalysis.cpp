//===-- analysis/DeadMemberAnalysis.cpp -----------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadMemberAnalysis.h"

#include "analysis/Scanner.h"
#include "ast/ASTContext.h"
#include "hierarchy/ClassHierarchy.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace dmm;

const char *dmm::livenessReasonName(LivenessReason Reason) {
  switch (Reason) {
  case LivenessReason::NotAccessed: return "not accessed (dead)";
  case LivenessReason::Read: return "value read";
  case LivenessReason::AddressTaken: return "address taken";
  case LivenessReason::PointerToMember: return "pointer-to-member constant";
  case LivenessReason::UnsafeCast: return "reached by unsafe cast";
  case LivenessReason::SizeofConservative: return "sizeof (conservative)";
  case LivenessReason::UnionClosure: return "union closure";
  case LivenessReason::VolatileWrite: return "volatile member written";
  case LivenessReason::Written: return "written (baseline mode)";
  }
  return "unknown";
}

const char *dmm::livenessReasonSlug(LivenessReason Reason) {
  switch (Reason) {
  case LivenessReason::NotAccessed: return "not_accessed";
  case LivenessReason::Read: return "read";
  case LivenessReason::AddressTaken: return "address_taken";
  case LivenessReason::PointerToMember: return "pointer_to_member";
  case LivenessReason::UnsafeCast: return "unsafe_cast";
  case LivenessReason::SizeofConservative: return "sizeof";
  case LivenessReason::UnionClosure: return "union_closure";
  case LivenessReason::VolatileWrite: return "volatile_write";
  case LivenessReason::Written: return "written";
  }
  return "unknown";
}

FieldSet DeadMemberResult::deadSet() const {
  FieldSet Dead;
  for (const FieldDecl *F : Classifiable)
    if (!Live.test(F->declID()))
      Dead.insert(F);
  return Dead;
}

std::vector<const FieldDecl *> DeadMemberResult::deadMembers() const {
  std::vector<const FieldDecl *> Dead;
  for (const FieldDecl *F : Classifiable)
    if (!Live.test(F->declID()))
      Dead.push_back(F);
  return Dead;
}

//===----------------------------------------------------------------------===//
// DeadMemberAnalysis: replay + closure
//===----------------------------------------------------------------------===//
//
// The statement/expression walker lives in analysis/Scanner.h
// (LivenessScanner), shared with the per-file summary extractor.

DeadMemberAnalysis::DeadMemberAnalysis(const ASTContext &Ctx,
                                       const ClassHierarchy &CH,
                                       AnalysisOptions Options)
    : Ctx(Ctx), CH(CH), Options(Options) {}

void DeadMemberAnalysis::beginRun(const FunctionDecl *Main,
                                  const CallGraphFactsFn *Facts) {
  Result = DeadMemberResult();
  MarkVisited.clear();
  ProvLoc = SourceLocation();
  ProvVia = nullptr;
  ProvTrigger = nullptr;
  NumFunctionsProcessed = NumExprsVisited = NumUnionClosurePasses = 0;
  MarksPerReason.fill(0);

  // Line 3 of Fig. 2: all data members start dead. We track the live set;
  // classifiable members are enumerated here.
  for (const FieldDecl *F : Ctx.fields())
    if (Result.canClassify(F))
      Result.Classifiable.push_back(F);

  // Line 5: construct the call graph.
  if (InjectedGraph) {
    UsedGraph = InjectedGraph;
  } else {
    OwnedGraph = Facts ? buildCallGraphFromFacts(Ctx, CH, Main,
                                                 Options.CallGraph, *Facts)
                       : buildCallGraph(Ctx, CH, Main, Options.CallGraph);
    UsedGraph = &OwnedGraph;
  }
}

DeadMemberResult DeadMemberAnalysis::run(const FunctionDecl *Main) {
  Span Timer("analysis");
  beginRun(Main);

  // Lines 6-8, scan side: walk the global initializers and every
  // statement of every reachable function, collecting mark events. The
  // per-function scans are independent pure reads, so they fan out
  // across the pool.
  ScanOutput GlobalScan;
  std::vector<const FunctionDecl *> Fns;
  std::vector<ScanOutput> Scans;
  {
    Span ScanSpan("analysis.scan");
    LivenessScanner GlobalScanner(Options);
    for (const VarDecl *GV : Ctx.globals())
      GlobalScanner.scanGlobal(GV);
    GlobalScan = GlobalScanner.take();

    Fns = UsedGraph->reachableFunctions();
    Scans = globalThreadPool().parallelMap<ScanOutput>(
        Fns.size(), [&](size_t I) {
          LivenessScanner S(Options);
          S.scanFunction(Fns[I]);
          return S.take();
        });
    ScanSpan.arg("functions", Fns.size());
  }

  // Replay in deterministic order — globals first, then functions in
  // the (decl-ID sorted) reachable order — so first-cause-wins marks,
  // sweep dedup, and provenance are identical at any --jobs level.
  {
    Span ReplaySpan("analysis.replay");
    applyScan(GlobalScan);
    for (const ScanOutput &Scan : Scans) {
      ++NumFunctionsProcessed;
      applyScan(Scan);
    }
  }

  return finishRun();
}

DeadMemberResult DeadMemberAnalysis::finishRun() {
  // Lines 9-11: union closure. A union must be closed when any member it
  // (transitively) contains is live: a write through one alternative can
  // otherwise change a live member's value unnoticed. Iterate to a fixed
  // point since closing one union may enliven members of another.
  if (Options.UnionClosure) {
    Span ClosureSpan("analysis.closure");
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++NumUnionClosurePasses;
      for (const ClassDecl *CD : Ctx.classes()) {
        if (!CD->isUnion() || MarkVisited.test(CD->declID()))
          continue;
        const FieldDecl *Trigger = containsLiveMember(CD);
        if (!Trigger)
          continue;
        if (Options.RecordProvenance) {
          ProvLoc = SourceLocation();
          ProvVia = CD;
          ProvTrigger = Trigger;
        }
        markAllContainedMembers(CD, LivenessReason::UnionClosure);
        ProvVia = nullptr;
        ProvTrigger = nullptr;
        Changed = true;
      }
    }
  }

  if (Telemetry *T = Telemetry::active()) {
    T->addCounter("analysis.functions_processed", NumFunctionsProcessed);
    T->addCounter("analysis.exprs_visited", NumExprsVisited);
    T->addCounter("analysis.union_closure_passes", NumUnionClosurePasses);
    T->addCounter("analysis.classifiable_members",
                  Result.Classifiable.size());
    T->addCounter("analysis.live_members", Result.Live.count());
    for (size_t I = 0; I != MarksPerReason.size(); ++I)
      if (MarksPerReason[I])
        T->addCounter(std::string("analysis.live.") +
                          livenessReasonSlug(static_cast<LivenessReason>(I)),
                      MarksPerReason[I]);
  }

  return Result;
}

void DeadMemberAnalysis::applyScan(const ScanOutput &Scan) {
  NumExprsVisited += Scan.ExprsVisited;
  for (const MarkEvent &E : Scan.Events) {
    if (Options.RecordProvenance) {
      ProvLoc = E.Loc;
      ProvVia = nullptr;
      ProvTrigger = nullptr;
    }
    if (E.Field) {
      markLive(E.Field, E.Reason);
      continue;
    }
    if (Options.RecordProvenance)
      ProvVia = E.Sweep;
    markAllContainedMembers(E.Sweep, E.Reason);
    ProvVia = nullptr;
  }
}

const FieldDecl *
DeadMemberAnalysis::containsLiveMember(const ClassDecl *CD) const {
  std::set<const ClassDecl *> Seen;
  struct Walker {
    const DeadMemberResult &Result;
    std::set<const ClassDecl *> &Seen;
    const FieldDecl *walk(const ClassDecl *C) const {
      if (!Seen.insert(C).second)
        return nullptr;
      for (const FieldDecl *F : C->fields()) {
        if (Result.isLive(F))
          return F;
        const Type *Ty = F->type();
        if (const auto *AT = dyn_cast<ArrayType>(Ty))
          Ty = AT->element();
        if (const ClassDecl *Nested = Ty->asClassDecl())
          if (const FieldDecl *Found = walk(Nested))
            return Found;
      }
      for (const BaseSpecifier &BS : C->bases())
        if (const FieldDecl *Found = walk(BS.Base))
          return Found;
      return nullptr;
    }
  };
  return Walker{Result, Seen}.walk(CD);
}

void DeadMemberAnalysis::markLive(const FieldDecl *F,
                                  LivenessReason Reason) {
  unsigned ID = F->declID();
  if (!Result.Live.set(ID))
    return; // First cause wins.
  if (Result.Reasons.size() <= ID)
    Result.Reasons.resize(ID + 1, 0);
  Result.Reasons[ID] = static_cast<uint8_t>(Reason);
  ++MarksPerReason[static_cast<size_t>(Reason)];
  if (Options.RecordProvenance)
    Result.Provenance[F] = {Reason, ProvLoc, ProvVia, ProvTrigger};
}

void DeadMemberAnalysis::markAllContainedMembers(const ClassDecl *CD,
                                                 LivenessReason Reason) {
  // Paper Fig. 2 lines 36-50, with the not-visited guard.
  if (!MarkVisited.set(CD->declID()))
    return;
  for (const FieldDecl *F : CD->fields()) {
    markLive(F, Reason);
    if (const ClassDecl *Nested = F->type()->asClassDecl())
      markAllContainedMembers(Nested, Reason);
    else if (const auto *AT = dyn_cast<ArrayType>(F->type()))
      if (const ClassDecl *Elem = AT->element()->asClassDecl())
        markAllContainedMembers(Elem, Reason);
  }
  for (const BaseSpecifier &BS : CD->bases())
    markAllContainedMembers(BS.Base, Reason);
}
