//===-- analysis/Summary.cpp - Summary extraction and linking -------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Summary.h"

#include "analysis/Scanner.h"
#include "ast/ASTContext.h"
#include "ast/ASTWalker.h"
#include "ast/Expr.h"
#include "hierarchy/ClassHierarchy.h"
#include "support/SourceManager.h"
#include "telemetry/Telemetry.h"

#include <set>
#include <string_view>
#include <unordered_map>

using namespace dmm;

std::string dmm::stableFunctionName(const FunctionDecl *FD) {
  std::string Name = FD->qualifiedName();
  Name += '/';
  Name += std::to_string(FD->params().size());
  return Name;
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

uint32_t dmm::summaryFileOf(const FunctionDecl *FD) {
  if (FD->isBuiltin())
    return 0;
  if (const Stmt *Body = FD->body())
    if (Body->location().isValid())
      return Body->location().fileID();
  // A constructor's initializer list is spelled at its definition, so
  // it identifies the defining file even without a body location.
  if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD))
    for (const CtorInitializer &Init : Ctor->initializers())
      if (Init.Loc.isValid())
        return Init.Loc.fileID();
  return FD->location().fileID();
}

/// True if scanning \p FD can contribute anything to a summary.
static bool hasScannableContent(const FunctionDecl *FD) {
  if (FD->body())
    return true;
  if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD))
    return !Ctor->initializers().empty();
  return false;
}

static bool hasScannableContent(const VarDecl *GV) {
  return GV->init() != nullptr || !GV->ctorArgs().empty();
}

namespace {

/// Builds a FileSummary's string table: each distinct spelling is
/// stored once and referenced by index (index 0 is the empty string).
class StringInterner {
public:
  explicit StringInterner(FileSummary &Summary) : Summary(Summary) {
    Refs.emplace(std::string(), 0);
  }

  uint32_t intern(std::string S) {
    auto [It, Inserted] =
        Refs.emplace(std::move(S), static_cast<uint32_t>(Summary.Strings.size()));
    if (Inserted)
      Summary.Strings.push_back(It->first);
    return It->second;
  }

private:
  FileSummary &Summary;
  std::unordered_map<std::string, uint32_t> Refs;
};

} // namespace

/// Rewrites one MarkEvent location into serializable form. Events whose
/// location *is* the target field's declaration (constructor-initializer
/// writes) are stored symbolically: the field may be declared in a
/// different file whose text — and therefore offsets — can change
/// without invalidating this summary.
static SummaryLoc encodeLoc(const MarkEvent &E, const SourceManager &SM,
                            uint32_t FileID, StringInterner &Strings) {
  SummaryLoc Loc;
  if (!E.Loc.isValid())
    return Loc;
  if (E.Field && E.Loc == E.Field->location()) {
    Loc.K = SummaryLoc::Kind::OfField;
    return Loc;
  }
  Loc.Offset = E.Loc.offset();
  if (E.Loc.fileID() == FileID) {
    Loc.K = SummaryLoc::Kind::InFile;
  } else {
    Loc.K = SummaryLoc::Kind::OtherFile;
    Loc.File = Strings.intern(std::string(SM.bufferName(E.Loc.fileID())));
  }
  return Loc;
}

static std::vector<SummaryEvent> encodeEvents(const ScanOutput &Scan,
                                              const SourceManager &SM,
                                              uint32_t FileID,
                                              StringInterner &Strings) {
  std::vector<SummaryEvent> Events;
  Events.reserve(Scan.Events.size());
  for (const MarkEvent &E : Scan.Events) {
    SummaryEvent SE;
    SE.IsSweep = E.Sweep != nullptr;
    SE.Target = Strings.intern(E.Field ? E.Field->qualifiedName()
                                       : std::string(E.Sweep->name()));
    SE.Reason = E.Reason;
    SE.Loc = encodeLoc(E, SM, FileID, Strings);
    Events.push_back(SE);
  }
  return Events;
}

/// Records the call-graph transcript of \p FD in the exact order the
/// builder's AST walk (CallGraphBuilder::processFunction) observes it:
/// a callee-position pre-pass, then every expression in preorder, then
/// local variable lifetimes in statement preorder. Constructor
/// initializer and implicit subobject edges are decl-derived and
/// re-created from the live AST at link time, so they need no facts.
static std::vector<SummaryCallFact> collectCallFacts(const FunctionDecl *FD,
                                                     StringInterner &Strings) {
  std::vector<SummaryCallFact> Facts;
  std::set<const Expr *> CalleePositions;
  forEachExprInFunction(FD, [&](const Expr *E) {
    if (const auto *Call = dyn_cast<CallExpr>(E))
      CalleePositions.insert(Call->callee());
  });

  forEachExprInFunction(FD, [&](const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Call: {
      const auto *Call = cast<CallExpr>(E);
      SummaryCallFact F;
      if (const FunctionDecl *Direct = Call->directCallee()) {
        F.K = Call->isVirtualCall() ? CallGraphBodyFact::Kind::VirtualCall
                                    : CallGraphBodyFact::Kind::DirectCall;
        F.Name = Strings.intern(stableFunctionName(Direct));
      } else {
        F.K = CallGraphBodyFact::Kind::IndirectCall;
        F.Arity = static_cast<uint32_t>(Call->args().size());
      }
      Facts.push_back(F);
      return;
    }
    case Expr::Kind::DeclRef: {
      const auto *DRE = cast<DeclRefExpr>(E);
      const auto *Fn = dyn_cast_or_null<FunctionDecl>(DRE->referent());
      if (!Fn || CalleePositions.count(E))
        return;
      SummaryCallFact F;
      F.K = CallGraphBodyFact::Kind::AddressTaken;
      F.Name = Strings.intern(stableFunctionName(Fn));
      Facts.push_back(F);
      return;
    }
    case Expr::Kind::New: {
      const auto *N = cast<NewExpr>(E);
      const ClassDecl *CD = N->allocType()->asClassDecl();
      if (!CD)
        return;
      SummaryCallFact F;
      F.K = CallGraphBodyFact::Kind::New;
      F.Name = Strings.intern(std::string(CD->name()));
      if (const ConstructorDecl *Ctor = N->constructor())
        F.Ctor = Strings.intern(stableFunctionName(Ctor));
      Facts.push_back(F);
      return;
    }
    case Expr::Kind::Delete: {
      const auto *D = cast<DeleteExpr>(E);
      const Type *SubTy = D->sub()->type();
      const ClassDecl *CD = nullptr;
      if (const auto *PT = dyn_cast_or_null<PointerType>(SubTy))
        CD = PT->pointee()->asClassDecl();
      if (!CD)
        return;
      SummaryCallFact F;
      F.K = CallGraphBodyFact::Kind::DeleteObject;
      F.Name = Strings.intern(std::string(CD->name()));
      Facts.push_back(F);
      return;
    }
    default:
      return;
    }
  });

  if (FD->body())
    forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
      const auto *DS = dyn_cast<DeclStmt>(S);
      if (!DS)
        return;
      for (const VarDecl *V : DS->vars()) {
        const Type *Ty = V->type()->nonReferenceType();
        if (const auto *AT = dyn_cast<ArrayType>(Ty))
          Ty = AT->element();
        const ClassDecl *CD = Ty->asClassDecl();
        if (!CD || V->type()->isReference())
          continue;
        SummaryCallFact F;
        F.K = CallGraphBodyFact::Kind::VarLifetime;
        F.Name = Strings.intern(std::string(CD->name()));
        if (const ConstructorDecl *Ctor = V->ctor())
          F.Ctor = Strings.intern(stableFunctionName(Ctor));
        Facts.push_back(F);
      }
    });

  return Facts;
}

/// Base-class methods overridden by \p FD (virtual methods and
/// destructors), walking the transitive base closure.
static std::vector<uint32_t> collectOverrides(const FunctionDecl *FD,
                                              StringInterner &Strings) {
  std::vector<uint32_t> Overrides;
  const auto *MD = dyn_cast<MethodDecl>(FD);
  if (!MD || !MD->isVirtual() || isa<ConstructorDecl>(MD))
    return Overrides;
  std::set<const ClassDecl *> Seen;
  std::vector<const ClassDecl *> Work;
  for (const BaseSpecifier &BS : MD->parent()->bases())
    Work.push_back(BS.Base);
  while (!Work.empty()) {
    const ClassDecl *Base = Work.back();
    Work.pop_back();
    if (!Seen.insert(Base).second)
      continue;
    if (isa<DestructorDecl>(MD)) {
      if (const DestructorDecl *Dtor = Base->destructor())
        Overrides.push_back(Strings.intern(stableFunctionName(Dtor)));
    } else if (const MethodDecl *BaseMD = Base->findMethod(MD->name())) {
      Overrides.push_back(Strings.intern(stableFunctionName(BaseMD)));
    }
    for (const BaseSpecifier &BS : Base->bases())
      Work.push_back(BS.Base);
  }
  return Overrides;
}

FileSummary dmm::extractFileSummary(const ASTContext &Ctx,
                                    const SourceManager &SM, uint32_t FileID,
                                    const AnalysisOptions &Options) {
  FileSummary Summary;
  Summary.FileName = std::string(SM.bufferName(FileID));
  StringInterner Strings(Summary);

  // Reachability-independent: every function whose body lives here is
  // summarized; the link phase selects the ones reachable in the
  // program being analyzed.
  for (const FunctionDecl *FD : Ctx.functions()) {
    if (summaryFileOf(FD) != FileID || !hasScannableContent(FD))
      continue;
    LivenessScanner S(Options);
    S.scanFunction(FD);
    ScanOutput Scan = S.take();

    FunctionSummary FS;
    FS.Name = Strings.intern(stableFunctionName(FD));
    FS.ExprsVisited = Scan.ExprsVisited;
    FS.Events = encodeEvents(Scan, SM, FileID, Strings);
    FS.CallFacts = collectCallFacts(FD, Strings);
    FS.Overrides = collectOverrides(FD, Strings);
    Summary.Functions.push_back(std::move(FS));

    if (FD->kind() == Decl::Kind::Function && FD->name() == "main")
      Summary.EntryPoints.push_back(Strings.intern(stableFunctionName(FD)));
  }

  for (const VarDecl *GV : Ctx.globals()) {
    if (GV->location().fileID() != FileID || !hasScannableContent(GV))
      continue;
    LivenessScanner S(Options);
    S.scanGlobal(GV);
    ScanOutput Scan = S.take();

    GlobalSummary GS;
    GS.Name = Strings.intern(std::string(GV->name()));
    GS.ExprsVisited = Scan.ExprsVisited;
    GS.Events = encodeEvents(Scan, SM, FileID, Strings);
    Summary.Globals.push_back(std::move(GS));
  }

  for (const ClassDecl *CD : Ctx.classes())
    if (CD->isUnion() && CD->location().fileID() == FileID)
      Summary.UnionsDefined.push_back(Strings.intern(std::string(CD->name())));

  return Summary;
}

//===----------------------------------------------------------------------===//
// Linking
//===----------------------------------------------------------------------===//

namespace {

/// Resolves name-keyed summary refs back to declarations of the
/// current compilation. Stable names are globally unique (the language
/// rejects redefinitions, and the arity suffix separates overloaded
/// constructors), so resolution is an injection over the program's
/// declarations. Member names are *parsed* — "Class::member/arity"
/// resolves through the (small) class table and a scan of that class's
/// own member lists — so no map over every field and function in the
/// program is ever built; link-time setup is proportional to the class
/// count and the summary contents, not to program size. Per-file
/// resolutions are memoized by string-table index: each distinct name
/// is parsed at most once per file.
class SummaryLinker {
public:
  SummaryLinker(
      const ASTContext &Ctx,
      const std::vector<std::pair<uint32_t, const FileSummary *>> &Summaries) {
    Span Timer("summary.link.maps");
    for (const ClassDecl *CD : Ctx.classes())
      ClassByName.emplace(CD->name(), CD);

    // The remaining maps key string_views into summary-owned storage
    // (FileSummary outlives the linker), so building them copies no
    // strings.
    Files.reserve(Summaries.size());
    std::vector<size_t> IdxByFileID; // FileID -> Files index + 1.
    for (const auto &[FileID, Summary] : Summaries) {
      FileIDByName.emplace(Summary->FileName, FileID);
      PerFile PF;
      PF.Summary = Summary;
      PF.FileID = FileID;
      if (FileID >= IdxByFileID.size())
        IdxByFileID.resize(FileID + 1, 0);
      IdxByFileID[FileID] = Files.size() + 1;
      Files.push_back(std::move(PF));
    }

    // One pass over the program's functions feeds both the free-
    // function map (bare names identify them — the language rejects
    // redefinitions — with the arity suffix verified at lookup) and
    // the per-file extraction-order candidate lists used below.
    std::vector<std::vector<const FunctionDecl *>> Cands(Files.size());
    FreeFnByName.reserve(Ctx.functions().size());
    for (std::vector<const FunctionDecl *> &C : Cands)
      C.reserve(Ctx.functions().size() / Files.size() * 2 + 16);
    for (const FunctionDecl *FD : Ctx.functions()) {
      if (!isa<MethodDecl>(FD))
        FreeFnByName.emplace(FD->name(), FD);
      if (!hasScannableContent(FD))
        continue;
      const uint32_t FileID = summaryFileOf(FD);
      if (FileID < IdxByFileID.size())
        if (const size_t Idx1 = IdxByFileID[FileID])
          Cands[Idx1 - 1].push_back(FD);
    }

    // Attribute each function summary to its declaration up front,
    // indexed by dense decl ID: replay lookups are then a vector read,
    // with no per-function name rebuild. Extraction emits summaries in
    // Ctx.functions() order filtered to the file, and a cache hit
    // implies identical file content, so the pairing is positional —
    // verified per function by an allocation-free name/arity check,
    // with full parse-based resolution as the fallback (then names the
    // program no longer declares are simply never consulted).
    FnSummaryByDecl.resize(Ctx.numDecls());
    for (size_t Idx = 0; Idx != Files.size(); ++Idx) {
      const FileSummary *Summary = Files[Idx].Summary;
      const std::vector<const FunctionDecl *> &C = Cands[Idx];
      bool Paired = C.size() == Summary->Functions.size();
      for (size_t K = 0; Paired && K != C.size(); ++K)
        Paired = matchesStableName(C[K],
                                   Summary->str(Summary->Functions[K].Name));
      if (Paired) {
        for (size_t K = 0; K != C.size(); ++K)
          FnSummaryByDecl[C[K]->declID()] = {&Summary->Functions[K], Idx};
      } else {
        for (const FunctionSummary &FS : Summary->Functions)
          if (const FunctionDecl *FD = resolveFunction(Summary->str(FS.Name)))
            FnSummaryByDecl[FD->declID()] = {&FS, Idx};
      }
      for (const GlobalSummary &GS : Summary->Globals)
        GlobalByName.emplace(Summary->str(GS.Name), std::make_pair(&GS, Idx));
    }
  }

  const std::string &error() const { return Error; }

  /// Rebuilds the ScanOutput of a summaried declaration as the
  /// monolithic scan would have produced it. Returns false (with
  /// error() set) on unresolvable names — the summary is stale for this
  /// program.
  bool decodeEvents(const std::vector<SummaryEvent> &Events, size_t FileIdx,
                    ScanOutput &Out) {
    PerFile &PF = Files[FileIdx];
    Out.Events.reserve(Events.size());
    for (const SummaryEvent &SE : Events) {
      MarkEvent E;
      E.Reason = SE.Reason;
      if (SE.IsSweep) {
        E.Sweep = classRef(PF, SE.Target);
        if (!E.Sweep)
          return fail("unknown class '" + PF.Summary->str(SE.Target) + "'");
      } else {
        E.Field = fieldRef(PF, SE.Target);
        if (!E.Field)
          return fail("unknown member '" + PF.Summary->str(SE.Target) + "'");
      }
      switch (SE.Loc.K) {
      case SummaryLoc::Kind::None:
        break;
      case SummaryLoc::Kind::InFile:
        E.Loc = SourceLocation(PF.FileID, SE.Loc.Offset);
        break;
      case SummaryLoc::Kind::OfField:
        if (!E.Field)
          return fail("field-relative location on a sweep event");
        E.Loc = E.Field->location();
        break;
      case SummaryLoc::Kind::OtherFile: {
        uint32_t FileID = fileRef(PF, SE.Loc.File);
        if (!FileID)
          return fail("unknown file '" + PF.Summary->str(SE.Loc.File) + "'");
        E.Loc = SourceLocation(FileID, SE.Loc.Offset);
        break;
      }
      }
      Out.Events.push_back(E);
    }
    return true;
  }

  const FunctionSummary *findFunction(const FunctionDecl *FD,
                                      size_t &FileIdx) const {
    const auto &Entry = FnSummaryByDecl[FD->declID()];
    if (!Entry.first)
      return nullptr;
    FileIdx = Entry.second;
    return Entry.first;
  }

  const GlobalSummary *findGlobal(const std::string &Name,
                                  size_t &FileIdx) const {
    auto It = GlobalByName.find(std::string_view(Name));
    if (It == GlobalByName.end())
      return nullptr;
    FileIdx = It->second.second;
    return It->second.first;
  }

  /// The resolved call-graph transcript of \p FD, or null when no
  /// summary covers it or a fact fails to resolve — the builder then
  /// walks the function's AST instead, which is always sound. The
  /// returned vector is a scratch buffer reused by the next call: the
  /// builder replays it immediately, once per function, so caching
  /// per-function copies would only buy allocations.
  const std::vector<CallGraphBodyFact> *factsFor(const FunctionDecl *FD) {
    size_t FileIdx = 0;
    const FunctionSummary *FS = findFunction(FD, FileIdx);
    if (!FS)
      return nullptr;
    PerFile &PF = Files[FileIdx];
    FactsScratch.clear();
    FactsScratch.reserve(FS->CallFacts.size());
    for (const SummaryCallFact &F : FS->CallFacts) {
      CallGraphBodyFact B;
      B.K = F.K;
      switch (F.K) {
      case CallGraphBodyFact::Kind::DirectCall:
      case CallGraphBodyFact::Kind::AddressTaken:
        B.Callee = funcRef(PF, F.Name);
        if (!B.Callee)
          return nullptr;
        break;
      case CallGraphBodyFact::Kind::VirtualCall:
        B.Callee = funcRef(PF, F.Name);
        if (!B.Callee || !isa<MethodDecl>(B.Callee))
          return nullptr;
        break;
      case CallGraphBodyFact::Kind::New:
      case CallGraphBodyFact::Kind::VarLifetime:
        B.Class = classRef(PF, F.Name);
        if (!B.Class)
          return nullptr;
        if (F.Ctor) {
          B.Callee = funcRef(PF, F.Ctor);
          if (!B.Callee || !isa<ConstructorDecl>(B.Callee))
            return nullptr;
        }
        break;
      case CallGraphBodyFact::Kind::DeleteObject:
        B.Class = classRef(PF, F.Name);
        if (!B.Class)
          return nullptr;
        break;
      case CallGraphBodyFact::Kind::IndirectCall:
        B.Arity = F.Arity;
        break;
      }
      FactsScratch.push_back(B);
    }
    return &FactsScratch;
  }

  bool fail(std::string Message) {
    if (Error.empty())
      Error = std::move(Message);
    return false;
  }

private:
  /// One linked summary plus its per-string resolution memos (null /
  /// zero = not yet resolved or unresolvable; failed resolutions are
  /// rare and immediately fatal or fact-invalidating, so they need no
  /// separate "known bad" state).
  struct PerFile {
    const FileSummary *Summary = nullptr;
    uint32_t FileID = 0;
    std::vector<const FieldDecl *> Fields;
    std::vector<const ClassDecl *> Classes;
    std::vector<const FunctionDecl *> Funcs;
    std::vector<uint32_t> FileIDs;
  };

  /// Splits "Class::member" on the first "::" (member names are plain
  /// identifiers, so the first occurrence is the only one).
  static bool splitQualified(std::string_view Name, std::string_view &Cls,
                             std::string_view &Member) {
    const size_t Pos = Name.find("::");
    if (Pos == std::string_view::npos)
      return false;
    Cls = Name.substr(0, Pos);
    Member = Name.substr(Pos + 2);
    return true;
  }

  /// Parses the arity suffix of "Qualified/arity"; npos on malformed
  /// names.
  static size_t parseArity(std::string_view Digits) {
    if (Digits.empty())
      return std::string_view::npos;
    size_t Arity = 0;
    for (char C : Digits) {
      if (C < '0' || C > '9')
        return std::string_view::npos;
      Arity = Arity * 10 + static_cast<size_t>(C - '0');
    }
    return Arity;
  }

  /// True when \p SN is exactly stableFunctionName(FD), checked without
  /// building the string: constructor and destructor decl names already
  /// equal their member spelling ("X" and "~X").
  static bool matchesStableName(const FunctionDecl *FD, std::string_view SN) {
    const size_t Slash = SN.rfind('/');
    if (Slash == std::string_view::npos ||
        parseArity(SN.substr(Slash + 1)) != FD->params().size())
      return false;
    const std::string_view Qual = SN.substr(0, Slash);
    std::string_view Cls, Member;
    if (splitQualified(Qual, Cls, Member)) {
      const auto *MD = dyn_cast<MethodDecl>(FD);
      return MD && Cls == MD->parent()->name() && Member == FD->name();
    }
    return !isa<MethodDecl>(FD) && Qual == FD->name();
  }

  /// Resolves "Class::field" by scanning the class's own field list.
  const FieldDecl *resolveField(std::string_view Name) const {
    std::string_view Cls, Member;
    if (!splitQualified(Name, Cls, Member))
      return nullptr;
    auto It = ClassByName.find(Cls);
    if (It == ClassByName.end())
      return nullptr;
    for (const FieldDecl *F : It->second->fields())
      if (F->name() == Member)
        return F;
    return nullptr;
  }

  /// Resolves a stable function name "Qualified/arity". Free functions
  /// come from the bare-name map; members resolve within their class:
  /// "~Class" is the destructor, "Class::Class" a constructor selected
  /// by arity (the one overload the language permits), anything else a
  /// scan of the class's methods.
  const FunctionDecl *resolveFunction(std::string_view Name) const {
    const size_t Slash = Name.rfind('/');
    if (Slash == std::string_view::npos)
      return nullptr;
    const size_t Arity = parseArity(Name.substr(Slash + 1));
    if (Arity == std::string_view::npos)
      return nullptr;
    const std::string_view Qual = Name.substr(0, Slash);
    std::string_view Cls, Member;
    if (!splitQualified(Qual, Cls, Member)) {
      auto It = FreeFnByName.find(Qual);
      if (It == FreeFnByName.end() || It->second->params().size() != Arity)
        return nullptr;
      return It->second;
    }
    auto It = ClassByName.find(Cls);
    if (It == ClassByName.end())
      return nullptr;
    const ClassDecl *CD = It->second;
    if (!Member.empty() && Member[0] == '~') {
      if (Arity != 0 || Member.substr(1) != CD->name())
        return nullptr;
      return CD->destructor();
    }
    if (Member == CD->name()) {
      for (const ConstructorDecl *Ctor : CD->constructors())
        if (Ctor->params().size() == Arity)
          return Ctor;
      return nullptr;
    }
    for (const MethodDecl *M : CD->methods())
      if (M->params().size() == Arity && M->name() == Member)
        return M;
    return nullptr;
  }

  const FieldDecl *fieldRef(PerFile &PF, uint32_t Ref) {
    if (Ref >= PF.Summary->Strings.size())
      return nullptr;
    if (PF.Fields.empty())
      PF.Fields.resize(PF.Summary->Strings.size());
    if (const FieldDecl *F = PF.Fields[Ref])
      return F;
    return PF.Fields[Ref] = resolveField(PF.Summary->str(Ref));
  }

  const ClassDecl *classRef(PerFile &PF, uint32_t Ref) {
    if (Ref >= PF.Summary->Strings.size())
      return nullptr;
    if (PF.Classes.empty())
      PF.Classes.resize(PF.Summary->Strings.size());
    if (const ClassDecl *CD = PF.Classes[Ref])
      return CD;
    auto It = ClassByName.find(std::string_view(PF.Summary->str(Ref)));
    return It == ClassByName.end() ? nullptr : (PF.Classes[Ref] = It->second);
  }

  const FunctionDecl *funcRef(PerFile &PF, uint32_t Ref) {
    if (Ref >= PF.Summary->Strings.size())
      return nullptr;
    if (PF.Funcs.empty())
      PF.Funcs.resize(PF.Summary->Strings.size());
    if (const FunctionDecl *FD = PF.Funcs[Ref])
      return FD;
    return PF.Funcs[Ref] = resolveFunction(PF.Summary->str(Ref));
  }

  uint32_t fileRef(PerFile &PF, uint32_t Ref) {
    if (Ref >= PF.Summary->Strings.size())
      return 0;
    if (PF.FileIDs.empty())
      PF.FileIDs.resize(PF.Summary->Strings.size());
    if (uint32_t ID = PF.FileIDs[Ref])
      return ID;
    auto It = FileIDByName.find(std::string_view(PF.Summary->str(Ref)));
    return It == FileIDByName.end() ? 0 : (PF.FileIDs[Ref] = It->second);
  }

  std::vector<PerFile> Files;
  std::unordered_map<std::string_view, const ClassDecl *> ClassByName;
  std::unordered_map<std::string_view, const FunctionDecl *> FreeFnByName;
  std::unordered_map<std::string_view, uint32_t> FileIDByName;
  std::vector<std::pair<const FunctionSummary *, size_t>> FnSummaryByDecl;
  std::unordered_map<std::string_view,
                     std::pair<const GlobalSummary *, size_t>>
      GlobalByName;
  std::vector<CallGraphBodyFact> FactsScratch;
  std::string Error;
};

} // namespace

std::optional<DeadMemberResult> DeadMemberAnalysis::runWithSummaries(
    const FunctionDecl *Main,
    const std::vector<std::pair<uint32_t, const FileSummary *>> &Summaries,
    std::string *Error) {
  Span Timer("summary.link");
  auto Fail = [&](const std::string &Message) -> std::optional<DeadMemberResult> {
    if (Error)
      *Error = Message;
    return std::nullopt;
  };

  SummaryLinker Linker(Ctx, Summaries);

  // Build the call graph by fact replay where possible: the non-PTA
  // kinds never consult receiver expressions, so the recorded
  // transcripts reconstruct the identical graph without re-walking
  // every reachable body. PTA (and an injected graph) keep the classic
  // path.
  CallGraphFactsFn FactsFn = [&Linker](const FunctionDecl *FD) {
    return Linker.factsFor(FD);
  };
  bool UseFacts = !InjectedGraph && Options.CallGraph != CallGraphKind::PTA;
  beginRun(Main, UseFacts ? &FactsFn : nullptr);

  // Globals replay first, in declaration order — the monolithic pass
  // scans them all into one buffer before any function, and per-global
  // replay in the same order produces the identical event sequence.
  for (const VarDecl *GV : Ctx.globals()) {
    size_t FileIdx = 0;
    const GlobalSummary *GS = Linker.findGlobal(GV->name(), FileIdx);
    if (!GS) {
      if (GV->init() || !GV->ctorArgs().empty()) {
        if (GV->location().isValid())
          return Fail("no summary covers global '" + GV->name() + "'");
        // Unattributable synthesized global: scan it live.
        LivenessScanner S(Options);
        S.scanGlobal(GV);
        applyScan(S.take());
      }
      continue;
    }
    ScanOutput Scan;
    Scan.ExprsVisited = GS->ExprsVisited;
    if (!Linker.decodeEvents(GS->Events, FileIdx, Scan))
      return Fail(Linker.error());
    applyScan(Scan);
  }

  // Then reachable functions by decl ID, exactly as run() replays them.
  for (const FunctionDecl *FD : UsedGraph->reachableFunctions()) {
    ++NumFunctionsProcessed;
    size_t FileIdx = 0;
    const FunctionSummary *FS = Linker.findFunction(FD, FileIdx);
    if (!FS) {
      if (!hasScannableContent(FD))
        continue; // Nothing to replay; builtins and externs land here.
      if (summaryFileOf(FD) != 0)
        return Fail("no summary covers function '" + FD->qualifiedName() +
                    "'");
      // Unattributable synthesized function: scan it live.
      LivenessScanner S(Options);
      S.scanFunction(FD);
      applyScan(S.take());
      continue;
    }
    ScanOutput Scan;
    Scan.ExprsVisited = FS->ExprsVisited;
    if (!Linker.decodeEvents(FS->Events, FileIdx, Scan))
      return Fail(Linker.error());
    applyScan(Scan);
  }

  return finishRun();
}
