//===-- analysis/ProgramStats.cpp -----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProgramStats.h"

#include "ast/ASTContext.h"
#include "ast/ASTWalker.h"
#include "ast/Expr.h"
#include "support/SourceManager.h"

using namespace dmm;

/// Adds \p CD and (transitively) the classes of its member objects.
static void addUsedClass(const ClassDecl *CD,
                         std::set<const ClassDecl *> &Used) {
  if (!CD || !CD->isComplete() || !Used.insert(CD).second)
    return;
  auto VisitFields = [&](const ClassDecl *Cls) {
    for (const FieldDecl *F : Cls->fields()) {
      const Type *Ty = F->type();
      if (const auto *AT = dyn_cast<ArrayType>(Ty))
        Ty = AT->element();
      if (const ClassDecl *Member = Ty->asClassDecl())
        addUsedClass(Member, Used);
    }
  };
  VisitFields(CD);
  // Base subobjects are constructed along with CD.
  for (const BaseSpecifier &BS : CD->bases())
    addUsedClass(BS.Base, Used);
}

static void addVarClass(const VarDecl *V, std::set<const ClassDecl *> &Used) {
  const Type *Ty = V->type()->nonReferenceType();
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    Ty = AT->element();
  if (V->type()->isReference())
    return;
  if (const ClassDecl *CD = Ty->asClassDecl())
    addUsedClass(CD, Used);
}

std::set<const ClassDecl *> dmm::computeUsedClasses(const ASTContext &Ctx) {
  std::set<const ClassDecl *> Used;

  for (const VarDecl *GV : Ctx.globals())
    addVarClass(GV, Used);

  for (const FunctionDecl *FD : Ctx.functions()) {
    forEachExprInFunction(FD, [&](const Expr *E) {
      if (const auto *N = dyn_cast<NewExpr>(E))
        if (const ClassDecl *CD = N->allocType()->asClassDecl())
          addUsedClass(CD, Used);
    });
    if (!FD->body())
      continue;
    forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
      if (const auto *DS = dyn_cast<DeclStmt>(S))
        for (const VarDecl *V : DS->vars())
          addVarClass(V, Used);
    });
  }

  // Library classes are excluded from the application's statistics.
  std::set<const ClassDecl *> Result;
  for (const ClassDecl *CD : Used)
    if (!CD->isLibrary())
      Result.insert(CD);
  return Result;
}

ProgramStats dmm::computeProgramStats(
    const ASTContext &Ctx, const DeadMemberResult &Result,
    const SourceManager *SM, const std::vector<uint32_t> &UserFileIDs) {
  ProgramStats Stats;

  if (SM)
    for (uint32_t ID : UserFileIDs)
      Stats.LinesOfCode += SM->countCodeLines(ID);

  std::set<const ClassDecl *> Used = computeUsedClasses(Ctx);
  for (const ClassDecl *CD : Ctx.classes()) {
    if (CD->isLibrary() || !CD->isComplete())
      continue;
    ++Stats.NumClasses;
    if (!Used.count(CD))
      continue;
    ++Stats.NumUsedClasses;
    for (const FieldDecl *F : CD->fields()) {
      ++Stats.NumMembersInUsedClasses;
      if (Result.isDead(F))
        ++Stats.NumDeadMembersInUsedClasses;
    }
  }
  return Stats;
}
