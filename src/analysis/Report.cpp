//===-- analysis/Report.cpp -----------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"

#include "ast/ASTContext.h"
#include "callgraph/CallGraph.h"
#include "hierarchy/ObjectLayout.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <iomanip>

using namespace dmm;

static void printLocation(std::ostream &OS, const SourceManager *SM,
                          SourceLocation Loc) {
  if (!SM)
    return;
  PresumedLoc P = SM->presumedLoc(Loc);
  if (!P.isValid())
    return;
  OS << " [" << P.Filename << ":" << P.Line << ":" << P.Column << "]";
}

void dmm::printMemberReport(std::ostream &OS, const ASTContext &Ctx,
                            const DeadMemberResult &Result,
                            const SourceManager *SM, ReportOptions Options) {
  unsigned NumDead = 0;
  unsigned NumTotal = 0;
  for (const ClassDecl *CD : Ctx.classes()) {
    if (CD->isLibrary() || !CD->isComplete() || CD->fields().empty())
      continue;
    bool PrintedHeader = false;
    for (const FieldDecl *F : CD->fields()) {
      ++NumTotal;
      bool Dead = Result.isDead(F);
      if (Dead)
        ++NumDead;
      if (!Dead && !Options.ShowLiveMembers)
        continue;
      if (!PrintedHeader) {
        OS << CD->name() << ":\n";
        PrintedHeader = true;
      }
      OS << "  " << (Dead ? "dead" : "live") << "  " << F->name() << " : "
         << F->type()->str();
      if (!Dead)
        OS << "  (" << livenessReasonName(Result.reason(F)) << ")";
      printLocation(OS, SM, F->location());
      OS << "\n";
    }
  }
  OS << NumDead << " of " << NumTotal << " data members are dead";
  if (NumTotal)
    OS << " (" << std::fixed << std::setprecision(1)
       << 100.0 * NumDead / NumTotal << "%)";
  OS << "\n";
}

void dmm::printStatsReport(std::ostream &OS, const ProgramStats &Stats) {
  OS << "lines of code:            " << Stats.LinesOfCode << "\n"
     << "classes:                  " << Stats.NumClasses << " ("
     << Stats.NumUsedClasses << " used)\n"
     << "members in used classes:  " << Stats.NumMembersInUsedClasses << "\n"
     << "dead members:             " << Stats.NumDeadMembersInUsedClasses
     << " (" << std::fixed << std::setprecision(1) << Stats.percentDead()
     << "%)\n";
}

//===----------------------------------------------------------------------===//
// JSON report
//===----------------------------------------------------------------------===//

static void printJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"': OS << "\\\""; break;
    case '\\': OS << "\\\\"; break;
    case '\n': OS << "\\n"; break;
    case '\t': OS << "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void dmm::printJsonReport(std::ostream &OS, const ASTContext &Ctx,
                          const DeadMemberResult &Result,
                          const SourceManager *SM) {
  unsigned Total = 0;
  unsigned Dead = 0;
  OS << "{\n  \"members\": [\n";
  bool First = true;
  for (const ClassDecl *CD : Ctx.classes()) {
    if (CD->isLibrary() || !CD->isComplete())
      continue;
    for (const FieldDecl *F : CD->fields()) {
      ++Total;
      bool IsDead = Result.isDead(F);
      if (IsDead)
        ++Dead;
      if (!First)
        OS << ",\n";
      First = false;
      OS << "    {\"class\": ";
      printJsonString(OS, CD->name());
      OS << ", \"name\": ";
      printJsonString(OS, F->name());
      OS << ", \"type\": ";
      printJsonString(OS, F->type()->str());
      OS << ", \"dead\": " << (IsDead ? "true" : "false");
      if (!IsDead) {
        OS << ", \"reason\": ";
        printJsonString(OS, livenessReasonName(Result.reason(F)));
      }
      if (SM) {
        PresumedLoc P = SM->presumedLoc(F->location());
        if (P.isValid()) {
          OS << ", \"file\": ";
          printJsonString(OS, std::string(P.Filename));
          OS << ", \"line\": " << P.Line << ", \"column\": " << P.Column;
        }
      }
      if (const LivenessProvenance *Prov = Result.provenance(F)) {
        if (SM && Prov->Loc.isValid()) {
          PresumedLoc P = SM->presumedLoc(Prov->Loc);
          if (P.isValid()) {
            OS << ", \"causeFile\": ";
            printJsonString(OS, std::string(P.Filename));
            OS << ", \"causeLine\": " << P.Line
               << ", \"causeColumn\": " << P.Column;
          }
        }
        if (Prov->Via) {
          OS << ", \"via\": ";
          printJsonString(OS, Prov->Via->name());
        }
        if (Prov->Trigger) {
          OS << ", \"propagatedFrom\": ";
          printJsonString(OS, Prov->Trigger->qualifiedName());
        }
      }
      OS << "}";
    }
  }
  OS << "\n  ],\n  \"summary\": {\"total\": " << Total
     << ", \"dead\": " << Dead << ", \"percentDead\": "
     << (Total ? 100.0 * Dead / Total : 0.0) << "}\n}\n";
}

//===----------------------------------------------------------------------===//
// Layout report
//===----------------------------------------------------------------------===//

void dmm::printLayoutReport(std::ostream &OS, const ASTContext &Ctx,
                            const ClassHierarchy &CH,
                            const DeadMemberResult &Result) {
  LayoutEngine Engine(CH);
  FieldSet Dead = Result.deadSet();
  for (const ClassDecl *CD : Ctx.classes()) {
    if (!CD->isComplete())
      continue;
    const ClassLayout &L = Engine.layout(CD);
    OS << (CD->isUnion() ? "union " : "class ") << CD->name()
       << " (size " << L.CompleteSize << ", align " << L.Align;
    if (L.HasOwnVPtr)
      OS << ", vptr";
    if (L.OverheadBytes)
      OS << ", " << L.OverheadBytes << " overhead bytes";
    OS << ")\n";
    for (const FieldSlot &Slot : L.AllFields) {
      OS << "  +" << Slot.Offset << "\t" << Slot.Field->qualifiedName()
         << " : " << Slot.Field->type()->str() << " (" << Slot.Size
         << " bytes)";
      if (Dead.count(Slot.Field))
        OS << "  [dead]";
      OS << "\n";
    }
    uint64_t Shrunk = Engine.sizeWithoutDead(CD, Dead);
    if (Shrunk != L.CompleteSize)
      OS << "  without dead members: " << Shrunk << " bytes\n";
  }
}

//===----------------------------------------------------------------------===//
// Provenance (--explain) report
//===----------------------------------------------------------------------===//

namespace {

/// Prints "\n  at file:line:col" or nothing when the location is
/// unavailable.
void printCauseLocation(std::ostream &OS, const SourceManager *SM,
                        SourceLocation Loc, unsigned Indent) {
  if (!SM || !Loc.isValid())
    return;
  PresumedLoc P = SM->presumedLoc(Loc);
  if (!P.isValid())
    return;
  OS << std::string(Indent, ' ') << "at " << P.Filename << ":" << P.Line
     << ":" << P.Column << "\n";
}

void explainMember(std::ostream &OS, const DeadMemberResult &Result,
                   const FieldDecl *F, const SourceManager *SM,
                   unsigned Indent, std::set<const FieldDecl *> &Seen) {
  std::string Pad(Indent, ' ');
  if (Result.isDead(F)) {
    OS << Pad << F->qualifiedName() << ": dead ("
       << livenessReasonName(LivenessReason::NotAccessed) << ")";
    printLocation(OS, SM, F->location());
    OS << "\n";
    return;
  }
  LivenessReason Reason = Result.reason(F);
  OS << Pad << F->qualifiedName() << ": live ("
     << livenessReasonName(Reason) << ")\n";
  const LivenessProvenance *Prov = Result.provenance(F);
  if (!Prov) {
    OS << Pad << "  (no provenance recorded; re-run with --explain to "
          "enable it)\n";
    return;
  }
  if (!Seen.insert(F).second) {
    OS << Pad << "  (cycle: already explained above)\n";
    return;
  }
  switch (Reason) {
  case LivenessReason::UnsafeCast:
    OS << Pad << "  swept: transitively contained in '"
       << (Prov->Via ? Prov->Via->name() : std::string("?"))
       << "', reached by an unsafe cast\n";
    printCauseLocation(OS, SM, Prov->Loc, Indent + 2);
    break;
  case LivenessReason::SizeofConservative:
    OS << Pad << "  swept: transitively contained in '"
       << (Prov->Via ? Prov->Via->name() : std::string("?"))
       << "', operand of a conservative sizeof\n";
    printCauseLocation(OS, SM, Prov->Loc, Indent + 2);
    break;
  case LivenessReason::UnionClosure:
    OS << Pad << "  swept: closing union '"
       << (Prov->Via ? Prov->Via->name() : std::string("?")) << "'\n";
    if (Prov->Trigger) {
      OS << Pad << "  triggered by live member '"
         << Prov->Trigger->qualifiedName() << "':\n";
      explainMember(OS, Result, Prov->Trigger, SM, Indent + 4, Seen);
    }
    break;
  default:
    // Direct marks: the marking expression's location is the root
    // cause; fall back to the declaration when unavailable.
    if (Prov->Loc.isValid())
      printCauseLocation(OS, SM, Prov->Loc, Indent + 2);
    else
      printCauseLocation(OS, SM, F->location(), Indent + 2);
    break;
  }
}

} // namespace

bool dmm::printExplainReport(std::ostream &OS, const ASTContext &Ctx,
                             const DeadMemberResult &Result,
                             const std::string &Query,
                             const SourceManager *SM) {
  for (const ClassDecl *CD : Ctx.classes()) {
    if (CD->isLibrary() || !CD->isComplete())
      continue;
    for (const FieldDecl *F : CD->fields()) {
      if (F->qualifiedName() != Query)
        continue;
      std::set<const FieldDecl *> Seen;
      explainMember(OS, Result, F, SM, 0, Seen);
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Dead function report
//===----------------------------------------------------------------------===//

unsigned dmm::printDeadFunctionReport(std::ostream &OS,
                                      const ASTContext &Ctx,
                                      const CallGraph &Graph,
                                      const SourceManager *SM) {
  unsigned NumDead = 0;
  unsigned NumTotal = 0;
  for (const FunctionDecl *FD : Ctx.functions()) {
    if (FD->isBuiltin() || !FD->isDefined())
      continue;
    ++NumTotal;
    if (Graph.isReachable(FD))
      continue;
    ++NumDead;
    OS << "dead function: " << FD->qualifiedName();
    printLocation(OS, SM, FD->location());
    OS << "\n";
  }
  OS << NumDead << " of " << NumTotal
     << " defined functions are unreachable\n";
  return NumDead;
}
