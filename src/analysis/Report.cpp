//===-- analysis/Report.cpp -----------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"

#include "ast/ASTContext.h"
#include "callgraph/CallGraph.h"
#include "hierarchy/ObjectLayout.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <iomanip>

using namespace dmm;

static void printLocation(std::ostream &OS, const SourceManager *SM,
                          SourceLocation Loc) {
  if (!SM)
    return;
  PresumedLoc P = SM->presumedLoc(Loc);
  if (!P.isValid())
    return;
  OS << " [" << P.Filename << ":" << P.Line << ":" << P.Column << "]";
}

void dmm::printMemberReport(std::ostream &OS, const ASTContext &Ctx,
                            const DeadMemberResult &Result,
                            const SourceManager *SM, ReportOptions Options) {
  unsigned NumDead = 0;
  unsigned NumTotal = 0;
  for (const ClassDecl *CD : Ctx.classes()) {
    if (CD->isLibrary() || !CD->isComplete() || CD->fields().empty())
      continue;
    bool PrintedHeader = false;
    for (const FieldDecl *F : CD->fields()) {
      ++NumTotal;
      bool Dead = Result.isDead(F);
      if (Dead)
        ++NumDead;
      if (!Dead && !Options.ShowLiveMembers)
        continue;
      if (!PrintedHeader) {
        OS << CD->name() << ":\n";
        PrintedHeader = true;
      }
      OS << "  " << (Dead ? "dead" : "live") << "  " << F->name() << " : "
         << F->type()->str();
      if (!Dead)
        OS << "  (" << livenessReasonName(Result.reason(F)) << ")";
      printLocation(OS, SM, F->location());
      OS << "\n";
    }
  }
  OS << NumDead << " of " << NumTotal << " data members are dead";
  if (NumTotal)
    OS << " (" << std::fixed << std::setprecision(1)
       << 100.0 * NumDead / NumTotal << "%)";
  OS << "\n";
}

void dmm::printStatsReport(std::ostream &OS, const ProgramStats &Stats) {
  OS << "lines of code:            " << Stats.LinesOfCode << "\n"
     << "classes:                  " << Stats.NumClasses << " ("
     << Stats.NumUsedClasses << " used)\n"
     << "members in used classes:  " << Stats.NumMembersInUsedClasses << "\n"
     << "dead members:             " << Stats.NumDeadMembersInUsedClasses
     << " (" << std::fixed << std::setprecision(1) << Stats.percentDead()
     << "%)\n";
}

//===----------------------------------------------------------------------===//
// JSON report
//===----------------------------------------------------------------------===//

static void printJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"': OS << "\\\""; break;
    case '\\': OS << "\\\\"; break;
    case '\n': OS << "\\n"; break;
    case '\t': OS << "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

void dmm::printJsonReport(std::ostream &OS, const ASTContext &Ctx,
                          const DeadMemberResult &Result,
                          const SourceManager *SM) {
  unsigned Total = 0;
  unsigned Dead = 0;
  OS << "{\n  \"members\": [\n";
  bool First = true;
  for (const ClassDecl *CD : Ctx.classes()) {
    if (CD->isLibrary() || !CD->isComplete())
      continue;
    for (const FieldDecl *F : CD->fields()) {
      ++Total;
      bool IsDead = Result.isDead(F);
      if (IsDead)
        ++Dead;
      if (!First)
        OS << ",\n";
      First = false;
      OS << "    {\"class\": ";
      printJsonString(OS, CD->name());
      OS << ", \"name\": ";
      printJsonString(OS, F->name());
      OS << ", \"type\": ";
      printJsonString(OS, F->type()->str());
      OS << ", \"dead\": " << (IsDead ? "true" : "false");
      if (!IsDead) {
        OS << ", \"reason\": ";
        printJsonString(OS, livenessReasonName(Result.reason(F)));
      }
      if (SM) {
        PresumedLoc P = SM->presumedLoc(F->location());
        if (P.isValid()) {
          OS << ", \"file\": ";
          printJsonString(OS, std::string(P.Filename));
          OS << ", \"line\": " << P.Line << ", \"column\": " << P.Column;
        }
      }
      OS << "}";
    }
  }
  OS << "\n  ],\n  \"summary\": {\"total\": " << Total
     << ", \"dead\": " << Dead << ", \"percentDead\": "
     << (Total ? 100.0 * Dead / Total : 0.0) << "}\n}\n";
}

//===----------------------------------------------------------------------===//
// Layout report
//===----------------------------------------------------------------------===//

void dmm::printLayoutReport(std::ostream &OS, const ASTContext &Ctx,
                            const ClassHierarchy &CH,
                            const DeadMemberResult &Result) {
  LayoutEngine Engine(CH);
  FieldSet Dead = Result.deadSet();
  for (const ClassDecl *CD : Ctx.classes()) {
    if (!CD->isComplete())
      continue;
    const ClassLayout &L = Engine.layout(CD);
    OS << (CD->isUnion() ? "union " : "class ") << CD->name()
       << " (size " << L.CompleteSize << ", align " << L.Align;
    if (L.HasOwnVPtr)
      OS << ", vptr";
    if (L.OverheadBytes)
      OS << ", " << L.OverheadBytes << " overhead bytes";
    OS << ")\n";
    for (const FieldSlot &Slot : L.AllFields) {
      OS << "  +" << Slot.Offset << "\t" << Slot.Field->qualifiedName()
         << " : " << Slot.Field->type()->str() << " (" << Slot.Size
         << " bytes)";
      if (Dead.count(Slot.Field))
        OS << "  [dead]";
      OS << "\n";
    }
    uint64_t Shrunk = Engine.sizeWithoutDead(CD, Dead);
    if (Shrunk != L.CompleteSize)
      OS << "  without dead members: " << Shrunk << " bytes\n";
  }
}

//===----------------------------------------------------------------------===//
// Dead function report
//===----------------------------------------------------------------------===//

unsigned dmm::printDeadFunctionReport(std::ostream &OS,
                                      const ASTContext &Ctx,
                                      const CallGraph &Graph,
                                      const SourceManager *SM) {
  unsigned NumDead = 0;
  unsigned NumTotal = 0;
  for (const FunctionDecl *FD : Ctx.functions()) {
    if (FD->isBuiltin() || !FD->isDefined())
      continue;
    ++NumTotal;
    if (Graph.isReachable(FD))
      continue;
    ++NumDead;
    OS << "dead function: " << FD->qualifiedName();
    printLocation(OS, SM, FD->location());
    OS << "\n";
  }
  OS << NumDead << " of " << NumTotal
     << " defined functions are unreachable\n";
  return NumDead;
}
