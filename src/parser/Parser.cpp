//===-- parser/Parser.cpp -------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "lexer/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace dmm;

Parser::Parser(ASTContext &Ctx, const SourceManager &SM,
               DiagnosticsEngine &Diags)
    : Ctx(Ctx), SM(SM), Diags(Diags) {}

//===----------------------------------------------------------------------===//
// Token stream helpers
//===----------------------------------------------------------------------===//

const Token &Parser::tok(unsigned LookAhead) const {
  size_t Index = Pos + LookAhead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile token.
  return Tokens[Index];
}

void Parser::consume() {
  if (Pos + 1 < Tokens.size())
    ++Pos;
}

bool Parser::tryConsume(TokenKind K) {
  if (cur().isNot(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (tryConsume(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + tokenKindName(K) +
                             " " + Context + ", found " +
                             tokenKindName(cur().Kind));
  return false;
}

void Parser::synchronize() {
  unsigned Depth = 0;
  while (cur().isNot(TokenKind::EndOfFile)) {
    if (cur().is(TokenKind::LBrace))
      ++Depth;
    else if (cur().is(TokenKind::RBrace)) {
      if (Depth == 0) {
        consume();
        return;
      }
      --Depth;
    } else if (cur().is(TokenKind::Semi) && Depth == 0) {
      consume();
      return;
    }
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Type-name tracking
//===----------------------------------------------------------------------===//

bool Parser::isTypeName(const Token &T) const {
  return T.is(TokenKind::Identifier) &&
         ClassNames.count(std::string(T.Text)) != 0;
}

bool Parser::startsType(unsigned At) const {
  const Token &T = tok(At);
  switch (T.Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwBool:
  case TokenKind::KwChar:
  case TokenKind::KwInt:
  case TokenKind::KwDouble:
  case TokenKind::KwConst:
  case TokenKind::KwVolatile:
    return true;
  case TokenKind::Identifier:
    return isTypeName(T);
  default:
    return false;
  }
}

ClassDecl *Parser::lookupClass(const std::string &Name) const {
  auto It = ClassNames.find(Name);
  return It == ClassNames.end() ? nullptr : It->second;
}

ClassDecl *Parser::getOrCreateClass(TagKind Tag, const std::string &Name,
                                    SourceLocation Loc) {
  if (ClassDecl *Existing = lookupClass(Name))
    return Existing;
  ClassDecl *CD = Ctx.create<ClassDecl>(Tag, Name, Loc);
  ClassNames[Name] = CD;
  return CD;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

const Type *Parser::parseType() {
  // Ignored qualifiers.
  while (cur().isOneOf(TokenKind::KwConst, TokenKind::KwVolatile))
    consume();

  const Type *Ty = nullptr;
  switch (cur().Kind) {
  case TokenKind::KwVoid: Ty = Ctx.voidType(); break;
  case TokenKind::KwBool: Ty = Ctx.boolType(); break;
  case TokenKind::KwChar: Ty = Ctx.charType(); break;
  case TokenKind::KwInt: Ty = Ctx.intType(); break;
  case TokenKind::KwDouble: Ty = Ctx.doubleType(); break;
  case TokenKind::Identifier: {
    ClassDecl *CD = lookupClass(std::string(cur().Text));
    if (!CD) {
      Diags.error(cur().Loc,
                  "unknown type name '" + std::string(cur().Text) + "'");
      return nullptr;
    }
    Ty = Ctx.classType(CD);
    break;
  }
  default:
    Diags.error(cur().Loc, std::string("expected type, found ") +
                               tokenKindName(cur().Kind));
    return nullptr;
  }
  consume();

  for (;;) {
    while (cur().isOneOf(TokenKind::KwConst, TokenKind::KwVolatile))
      consume();
    if (tryConsume(TokenKind::Star)) {
      Ty = Ctx.pointerType(Ty);
      continue;
    }
    // Member-pointer suffix: `int A::* pm`.
    if (cur().is(TokenKind::Identifier) && tok(1).is(TokenKind::ColonColon) &&
        tok(2).is(TokenKind::Star)) {
      ClassDecl *CD = lookupClass(std::string(cur().Text));
      if (!CD) {
        Diags.error(cur().Loc, "unknown class name '" +
                                   std::string(cur().Text) +
                                   "' in member pointer type");
        return nullptr;
      }
      consume(); // class name
      consume(); // ::
      consume(); // *
      Ty = Ctx.memberPointerType(CD, Ty);
      continue;
    }
    break;
  }

  if (tryConsume(TokenKind::Amp))
    Ty = Ctx.referenceType(Ty);
  return Ty;
}

const Type *Parser::parseDeclarator(const Type *Ty, std::string &Name,
                                    SourceLocation &NameLoc) {
  // Function-pointer declarator: `(*name)(param-types)`.
  if (cur().is(TokenKind::LParen) && tok(1).is(TokenKind::Star)) {
    consume(); // (
    consume(); // *
    if (cur().is(TokenKind::Identifier)) {
      Name = std::string(cur().Text);
      NameLoc = cur().Loc;
      consume();
    }
    expect(TokenKind::RParen, "after function pointer name");
    expect(TokenKind::LParen, "to begin function pointer parameter list");
    std::vector<const Type *> Params;
    if (cur().isNot(TokenKind::RParen)) {
      do {
        const Type *ParamTy = parseType();
        if (!ParamTy)
          return nullptr;
        // Optional parameter name inside the function-pointer type.
        if (cur().is(TokenKind::Identifier))
          consume();
        Params.push_back(ParamTy);
      } while (tryConsume(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to end function pointer parameter list");
    return Ctx.pointerType(Ctx.functionType(Ty, std::move(Params)));
  }

  if (cur().is(TokenKind::Identifier)) {
    Name = std::string(cur().Text);
    NameLoc = cur().Loc;
    consume();
  }

  // Array suffixes; collect extents, then build innermost-last.
  std::vector<uint64_t> Extents;
  while (tryConsume(TokenKind::LBracket)) {
    if (cur().is(TokenKind::IntLiteral)) {
      Extents.push_back(static_cast<uint64_t>(cur().IntValue));
      consume();
    } else {
      Diags.error(cur().Loc, "expected integer array extent");
      Extents.push_back(1);
    }
    expect(TokenKind::RBracket, "after array extent");
  }
  for (auto It = Extents.rbegin(), E = Extents.rend(); It != E; ++It)
    Ty = Ctx.arrayType(Ty, *It);
  return Ty;
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

bool Parser::parseBuffer(uint32_t FileID) {
  std::vector<Token> Lexed;
  {
    Span Timer("lex");
    Lexer Lex(SM, FileID, Diags);
    Lexed = Lex.lexAll();
  }
  Telemetry::count("lex.tokens", Lexed.size());
  Telemetry::count("lex.buffers");
  return parseTokens(std::move(Lexed));
}

bool Parser::parseTokens(std::vector<Token> NewTokens) {
  Span Timer("parse");
  Tokens = std::move(NewTokens);
  Pos = 0;
  unsigned ErrorsBefore = Diags.errorCount();
  while (cur().isNot(TokenKind::EndOfFile))
    parseTopLevelDecl();
  return Diags.errorCount() == ErrorsBefore;
}

void Parser::parseTopLevelDecl() {
  unsigned ErrorsBefore = Diags.errorCount();
  switch (cur().Kind) {
  case TokenKind::KwClass:
    consume();
    parseClass(TagKind::Class);
    break;
  case TokenKind::KwStruct:
    consume();
    parseClass(TagKind::Struct);
    break;
  case TokenKind::KwUnion:
    consume();
    parseClass(TagKind::Union);
    break;
  case TokenKind::Identifier:
    // `C::C(...)` or `C::~C(...)` out-of-line special members.
    if (tok(1).is(TokenKind::ColonColon) &&
        (tok(2).is(TokenKind::Tilde) ||
         (tok(2).is(TokenKind::Identifier) && tok(2).Text == cur().Text))) {
      parseOutOfLineMember(/*ReturnTy=*/nullptr);
      break;
    }
    [[fallthrough]];
  default: {
    if (!startsType()) {
      Diags.error(cur().Loc, std::string("expected declaration, found ") +
                                 tokenKindName(cur().Kind));
      synchronize();
      return;
    }
    const Type *Ty = parseType();
    if (!Ty) {
      synchronize();
      return;
    }
    // `T C::name(...)` out-of-line method.
    if (cur().is(TokenKind::Identifier) && tok(1).is(TokenKind::ColonColon) &&
        tok(2).is(TokenKind::Identifier)) {
      parseOutOfLineMember(Ty);
      break;
    }
    parseFunctionOrGlobal(Ty);
    break;
  }
  }
  if (Diags.errorCount() != ErrorsBefore)
    synchronize();
}

void Parser::parseClass(TagKind Tag) {
  if (cur().isNot(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected class name");
    return;
  }
  std::string Name(cur().Text);
  SourceLocation Loc = cur().Loc;
  consume();

  ClassDecl *CD = getOrCreateClass(Tag, Name, Loc);

  if (tryConsume(TokenKind::Semi))
    return; // Forward declaration.

  if (CD->isComplete()) {
    Diags.error(Loc, "redefinition of '" + Name + "'");
    synchronize();
    return;
  }

  // Base clause.
  if (tryConsume(TokenKind::Colon)) {
    do {
      BaseSpecifier BS;
      for (;;) {
        if (tryConsume(TokenKind::KwVirtual)) {
          BS.IsVirtual = true;
          continue;
        }
        if (cur().isOneOf(TokenKind::KwPublic, TokenKind::KwPrivate,
                          TokenKind::KwProtected)) {
          consume();
          continue;
        }
        break;
      }
      if (cur().isNot(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected base class name");
        return;
      }
      BS.Loc = cur().Loc;
      BS.Base = lookupClass(std::string(cur().Text));
      if (!BS.Base) {
        Diags.error(cur().Loc,
                    "unknown base class '" + std::string(cur().Text) + "'");
        return;
      }
      consume();
      CD->addBase(BS);
    } while (tryConsume(TokenKind::Comma));
  }

  if (!expect(TokenKind::LBrace, "to begin class body"))
    return;
  parseClassBody(CD);
  CD->setComplete();
  Ctx.translationUnit()->addDecl(CD);
  expect(TokenKind::Semi, "after class definition");
}

void Parser::parseClassBody(ClassDecl *CD) {
  while (cur().isNot(TokenKind::RBrace) &&
         cur().isNot(TokenKind::EndOfFile)) {
    // Access specifier labels are parsed and ignored.
    if (cur().isOneOf(TokenKind::KwPublic, TokenKind::KwPrivate,
                      TokenKind::KwProtected) &&
        tok(1).is(TokenKind::Colon)) {
      consume();
      consume();
      continue;
    }
    unsigned ErrorsBefore = Diags.errorCount();
    parseMember(CD);
    if (Diags.errorCount() != ErrorsBefore)
      synchronize();
  }
  expect(TokenKind::RBrace, "to end class body");
}

void Parser::parseMember(ClassDecl *CD) {
  // Destructor.
  bool IsVirtual = false;
  if (cur().is(TokenKind::KwVirtual)) {
    IsVirtual = true;
    consume();
  }
  if (cur().is(TokenKind::Tilde)) {
    consume();
    if (cur().isNot(TokenKind::Identifier) || cur().Text != CD->name()) {
      Diags.error(cur().Loc, "destructor name must match class name");
      return;
    }
    SourceLocation Loc = cur().Loc;
    consume();
    auto *Dtor =
        Ctx.create<DestructorDecl>(CD, Ctx.voidType(), IsVirtual, Loc);
    expect(TokenKind::LParen, "after destructor name");
    expect(TokenKind::RParen, "after destructor name");
    if (CD->destructor())
      Diags.error(Loc, "redefinition of destructor for '" + CD->name() + "'");
    CD->setDestructor(Dtor);
    if (tryConsume(TokenKind::Semi))
      return;
    Dtor->setBody(parseCompoundStmt());
    tryConsume(TokenKind::Semi);
    return;
  }

  // Constructor: `ClassName ( ... )`.
  if (cur().is(TokenKind::Identifier) && cur().Text == CD->name() &&
      tok(1).is(TokenKind::LParen)) {
    SourceLocation Loc = cur().Loc;
    consume();
    auto *Ctor = Ctx.create<ConstructorDecl>(CD, Ctx.voidType(), Loc);
    parseParamList(Ctor);
    CD->addConstructor(Ctor);
    if (tryConsume(TokenKind::Semi))
      return;
    if (cur().is(TokenKind::Colon))
      parseCtorInitList(Ctor, CD);
    Ctor->setBody(parseCompoundStmt());
    tryConsume(TokenKind::Semi);
    return;
  }

  bool IsVolatile = false;
  while (cur().isOneOf(TokenKind::KwConst, TokenKind::KwVolatile)) {
    if (cur().is(TokenKind::KwVolatile))
      IsVolatile = true;
    consume();
  }

  const Type *Ty = parseType();
  if (!Ty)
    return;

  // Method: `T name ( ... )`.
  if (cur().is(TokenKind::Identifier) && tok(1).is(TokenKind::LParen)) {
    std::string Name(cur().Text);
    SourceLocation Loc = cur().Loc;
    consume();
    if (CD->findMethod(Name) || CD->findField(Name)) {
      Diags.error(Loc, "redeclaration of member '" + Name + "' (MiniC++ has "
                       "no overloading)");
      return;
    }
    auto *M = Ctx.create<MethodDecl>(Name, Ty, CD, IsVirtual, Loc);
    parseParamList(M);
    CD->addMethod(M);
    if (tryConsume(TokenKind::Semi))
      return;
    // Pure virtual: `= 0 ;`.
    if (cur().is(TokenKind::Equal) && tok(1).is(TokenKind::IntLiteral) &&
        tok(1).IntValue == 0) {
      consume();
      consume();
      expect(TokenKind::Semi, "after pure-virtual specifier");
      return;
    }
    M->setBody(parseCompoundStmt());
    tryConsume(TokenKind::Semi);
    return;
  }

  // Data member(s): `T name [N]? (, name...)* ;` (function-pointer
  // members also come through parseDeclarator).
  do {
    std::string Name;
    SourceLocation NameLoc = cur().Loc;
    const Type *FieldTy = parseDeclarator(Ty, Name, NameLoc);
    if (!FieldTy)
      return;
    if (Name.empty()) {
      Diags.error(cur().Loc, "expected data member name");
      return;
    }
    if (CD->findField(Name) || CD->findMethod(Name)) {
      Diags.error(NameLoc, "duplicate member '" + Name + "'");
      return;
    }
    auto *F = Ctx.create<FieldDecl>(
        Name, FieldTy, IsVolatile, CD,
        static_cast<unsigned>(CD->fields().size()), NameLoc);
    CD->addField(F);
  } while (tryConsume(TokenKind::Comma));
  expect(TokenKind::Semi, "after data member declaration");
}

void Parser::parseCtorInitList(ConstructorDecl *Ctor, ClassDecl *CD) {
  (void)CD;
  expect(TokenKind::Colon, "to begin constructor initializer list");
  do {
    if (cur().isNot(TokenKind::Identifier)) {
      Diags.error(cur().Loc, "expected member or base name in initializer "
                             "list");
      return;
    }
    CtorInitializer Init;
    Init.Name = std::string(cur().Text);
    Init.Loc = cur().Loc;
    consume();
    expect(TokenKind::LParen, "in constructor initializer");
    if (cur().isNot(TokenKind::RParen)) {
      do
        Init.Args.push_back(parseAssign());
      while (tryConsume(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "in constructor initializer");
    Ctor->addInitializer(std::move(Init));
  } while (tryConsume(TokenKind::Comma));
}

void Parser::parseParamList(FunctionDecl *FD) {
  expect(TokenKind::LParen, "to begin parameter list");
  if (cur().isNot(TokenKind::RParen)) {
    do {
      const Type *Ty = parseType();
      if (!Ty)
        return;
      std::string Name;
      SourceLocation NameLoc = cur().Loc;
      const Type *ParamTy = parseDeclarator(Ty, Name, NameLoc);
      if (!ParamTy)
        return;
      FD->addParam(Ctx.create<ParamDecl>(Name, ParamTy, NameLoc));
    } while (tryConsume(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end parameter list");
}

void Parser::parseOutOfLineMember(const Type *ReturnTy) {
  assert(cur().is(TokenKind::Identifier) && "caller checked class name");
  std::string ClassName(cur().Text);
  SourceLocation ClassLoc = cur().Loc;
  ClassDecl *CD = lookupClass(ClassName);
  consume();
  expect(TokenKind::ColonColon, "in out-of-line member definition");
  if (!CD) {
    Diags.error(ClassLoc, "unknown class '" + ClassName + "'");
    return;
  }

  if (!ReturnTy) {
    // Constructor or destructor definition.
    if (tryConsume(TokenKind::Tilde)) {
      if (cur().isNot(TokenKind::Identifier) || cur().Text != ClassName) {
        Diags.error(cur().Loc, "destructor name must match class name");
        return;
      }
      consume();
      expect(TokenKind::LParen, "after destructor name");
      expect(TokenKind::RParen, "after destructor name");
      DestructorDecl *Dtor = CD->destructor();
      if (!Dtor) {
        Diags.error(ClassLoc,
                    "out-of-line destructor for class without declared "
                    "destructor");
        return;
      }
      if (Dtor->isDefined()) {
        Diags.error(ClassLoc, "redefinition of destructor");
        return;
      }
      Dtor->setBody(parseCompoundStmt());
      tryConsume(TokenKind::Semi);
      return;
    }
    // Constructor.
    assert(cur().is(TokenKind::Identifier) && cur().Text == ClassName &&
           "caller checked constructor name");
    SourceLocation Loc = cur().Loc;
    consume();
    // Parse params into a scratch ctor, then match an in-class
    // declaration by arity (MiniC++ constructor overloads differ in
    // arity).
    auto *Scratch = Ctx.create<ConstructorDecl>(CD, Ctx.voidType(), Loc);
    parseParamList(Scratch);
    ConstructorDecl *Def = nullptr;
    for (ConstructorDecl *C : CD->constructors())
      if (C != Scratch && C->params().size() == Scratch->params().size())
        Def = C;
    if (Def) {
      // Adopt the definition's parameter names.
      Def->setParams(Scratch->params());
    } else {
      // No in-class declaration: the scratch decl is the definition.
      CD->addConstructor(Scratch);
      Def = Scratch;
    }
    if (Def->isDefined()) {
      Diags.error(Loc, "redefinition of constructor");
      return;
    }
    if (cur().is(TokenKind::Colon))
      parseCtorInitList(Def, CD);
    Def->setBody(parseCompoundStmt());
    tryConsume(TokenKind::Semi);
    return;
  }

  // Method definition: `T C::name(params) { ... }`.
  if (cur().isNot(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected method name");
    return;
  }
  std::string Name(cur().Text);
  SourceLocation Loc = cur().Loc;
  consume();
  MethodDecl *M = CD->findMethod(Name);
  if (!M) {
    Diags.error(Loc, "out-of-line definition of '" + Name +
                         "' does not match any declaration in '" + ClassName +
                         "'");
    return;
  }
  if (M->isDefined()) {
    Diags.error(Loc, "redefinition of method '" + Name + "'");
    return;
  }
  // Re-parse the parameter list; adopt the definition's names.
  auto *Scratch = Ctx.createDetached<MethodDecl>(Name, ReturnTy, CD,
                                                 /*IsVirtual=*/false, Loc);
  parseParamList(Scratch);
  if (Scratch->params().size() != M->params().size())
    Diags.error(Loc, "parameter count mismatch in out-of-line definition of "
                     "'" + Name + "'");
  M->setParams(Scratch->params());
  M->setBody(parseCompoundStmt());
  tryConsume(TokenKind::Semi);
}

void Parser::parseFunctionOrGlobal(const Type *Ty) {
  if (cur().isNot(TokenKind::Identifier) &&
      !(cur().is(TokenKind::LParen) && tok(1).is(TokenKind::Star))) {
    Diags.error(cur().Loc, "expected declarator");
    return;
  }

  // Function prototype or definition: `T name ( ...`. A parenthesized
  // list that does not start with a type is a global object with
  // constructor arguments (`Cfg g(level + 1);`), not a function — the
  // classic most-vexing-parse disambiguation.
  if (cur().is(TokenKind::Identifier) && tok(1).is(TokenKind::LParen) &&
      (tok(2).is(TokenKind::RParen) || startsType(2))) {
    std::string Name(cur().Text);
    SourceLocation Loc = cur().Loc;
    consume();
    auto It = FunctionNames.find(Name);
    FunctionDecl *FD = nullptr;
    if (It != FunctionNames.end()) {
      FD = It->second;
      // Re-parse params into a detached scratch decl and adopt its
      // names (a registered scratch would shadow FD in Sema's global
      // scope).
      auto *Scratch = Ctx.createDetached<FunctionDecl>(Name, Ty, Loc);
      parseParamList(Scratch);
      if (Scratch->params().size() != FD->params().size())
        Diags.error(Loc, "parameter count mismatch with earlier declaration "
                         "of '" + Name + "'");
      FD->setParams(Scratch->params());
    } else {
      FD = Ctx.create<FunctionDecl>(Name, Ty, Loc);
      parseParamList(FD);
      FunctionNames[Name] = FD;
      Ctx.translationUnit()->addDecl(FD);
    }
    if (tryConsume(TokenKind::Semi))
      return; // Prototype.
    if (FD->isDefined()) {
      Diags.error(Loc, "redefinition of function '" + Name + "'");
      synchronize();
      return;
    }
    FD->setBody(parseCompoundStmt());
    tryConsume(TokenKind::Semi);
    return;
  }

  // Global variable(s).
  do {
    std::string Name;
    SourceLocation NameLoc = cur().Loc;
    const Type *VarTy = parseDeclarator(Ty, Name, NameLoc);
    if (!VarTy)
      return;
    if (Name.empty()) {
      Diags.error(cur().Loc, "expected variable name");
      return;
    }
    auto *V = Ctx.create<VarDecl>(Name, VarTy, NameLoc);
    V->setGlobal();
    if (tryConsume(TokenKind::Equal))
      V->setInit(parseAssign());
    else if (tryConsume(TokenKind::LParen)) {
      std::vector<Expr *> Args;
      if (cur().isNot(TokenKind::RParen)) {
        do
          Args.push_back(parseAssign());
        while (tryConsume(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after constructor arguments");
      V->setCtorArgs(std::move(Args));
    }
    Ctx.registerGlobal(V);
    Ctx.translationUnit()->addDecl(V);
  } while (tryConsume(TokenKind::Comma));
  expect(TokenKind::Semi, "after variable declaration");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompoundStmt() {
  SourceLocation Loc = cur().Loc;
  expect(TokenKind::LBrace, "to begin block");
  auto *CS = Ctx.create<CompoundStmt>(Loc);
  while (cur().isNot(TokenKind::RBrace) &&
         cur().isNot(TokenKind::EndOfFile)) {
    unsigned ErrorsBefore = Diags.errorCount();
    CS->addStmt(parseStmt());
    if (Diags.errorCount() != ErrorsBefore)
      synchronize();
  }
  expect(TokenKind::RBrace, "to end block");
  return CS;
}

Stmt *Parser::parseStmt() {
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseCompoundStmt();
  case TokenKind::KwIf:
    return parseIfStmt();
  case TokenKind::KwWhile:
    return parseWhileStmt();
  case TokenKind::KwFor:
    return parseForStmt();
  case TokenKind::KwReturn:
    return parseReturnStmt();
  case TokenKind::KwBreak: {
    SourceLocation Loc = cur().Loc;
    consume();
    expect(TokenKind::Semi, "after 'break'");
    return Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLocation Loc = cur().Loc;
    consume();
    expect(TokenKind::Semi, "after 'continue'");
    return Ctx.create<ContinueStmt>(Loc);
  }
  case TokenKind::Semi: {
    SourceLocation Loc = cur().Loc;
    consume();
    return Ctx.create<NullStmt>(Loc);
  }
  default:
    break;
  }

  // Declaration statements: a type name followed by a declarator. A bare
  // class name followed by an identifier, `*`, `&`, or `(` (function
  // pointer) starts a declaration; anything else is an expression.
  if (startsType())
    return parseDeclStmt();

  SourceLocation Loc = cur().Loc;
  Expr *E = parseExpr();
  expect(TokenKind::Semi, "after expression statement");
  return Ctx.create<ExprStmt>(E, Loc);
}

Stmt *Parser::parseDeclStmt() {
  SourceLocation Loc = cur().Loc;
  const Type *Ty = parseType();
  auto *DS = Ctx.create<DeclStmt>(Loc);
  if (!Ty)
    return DS;
  do {
    std::string Name;
    SourceLocation NameLoc = cur().Loc;
    const Type *VarTy = parseDeclarator(Ty, Name, NameLoc);
    if (!VarTy)
      return DS;
    if (Name.empty()) {
      Diags.error(cur().Loc, "expected variable name");
      return DS;
    }
    auto *V = Ctx.create<VarDecl>(Name, VarTy, NameLoc);
    if (tryConsume(TokenKind::Equal))
      V->setInit(parseAssign());
    else if (tryConsume(TokenKind::LParen)) {
      std::vector<Expr *> Args;
      if (cur().isNot(TokenKind::RParen)) {
        do
          Args.push_back(parseAssign());
        while (tryConsume(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after constructor arguments");
      V->setCtorArgs(std::move(Args));
    }
    DS->addVar(V);
  } while (tryConsume(TokenKind::Comma));
  expect(TokenKind::Semi, "after declaration");
  return DS;
}

Stmt *Parser::parseIfStmt() {
  SourceLocation Loc = cur().Loc;
  consume(); // if
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (tryConsume(TokenKind::KwElse))
    Else = parseStmt();
  return Ctx.create<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseWhileStmt() {
  SourceLocation Loc = cur().Loc;
  consume(); // while
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  Stmt *Body = parseStmt();
  return Ctx.create<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseForStmt() {
  SourceLocation Loc = cur().Loc;
  consume(); // for
  expect(TokenKind::LParen, "after 'for'");
  Stmt *Init = nullptr;
  if (cur().is(TokenKind::Semi)) {
    SourceLocation SemiLoc = cur().Loc;
    consume();
    Init = Ctx.create<NullStmt>(SemiLoc);
  } else if (startsType()) {
    Init = parseDeclStmt();
  } else {
    SourceLocation ExprLoc = cur().Loc;
    Expr *E = parseExpr();
    expect(TokenKind::Semi, "after for-init expression");
    Init = Ctx.create<ExprStmt>(E, ExprLoc);
  }
  Expr *Cond = nullptr;
  if (cur().isNot(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for condition");
  Expr *Step = nullptr;
  if (cur().isNot(TokenKind::RParen))
    Step = parseExpr();
  expect(TokenKind::RParen, "after for clauses");
  Stmt *Body = parseStmt();
  return Ctx.create<ForStmt>(Init, Cond, Step, Body, Loc);
}

Stmt *Parser::parseReturnStmt() {
  SourceLocation Loc = cur().Loc;
  consume(); // return
  Expr *Value = nullptr;
  if (cur().isNot(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "after return statement");
  return Ctx.create<ReturnStmt>(Value, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() {
  Expr *LHS = parseAssign();
  while (cur().is(TokenKind::Comma)) {
    SourceLocation Loc = cur().Loc;
    consume();
    Expr *RHS = parseAssign();
    LHS = Ctx.create<CommaExpr>(LHS, RHS, Loc);
  }
  return LHS;
}

static bool isAssignOp(TokenKind K, AssignOpKind &Op) {
  switch (K) {
  case TokenKind::Equal: Op = AssignOpKind::Assign; return true;
  case TokenKind::PlusEqual: Op = AssignOpKind::AddAssign; return true;
  case TokenKind::MinusEqual: Op = AssignOpKind::SubAssign; return true;
  case TokenKind::StarEqual: Op = AssignOpKind::MulAssign; return true;
  case TokenKind::SlashEqual: Op = AssignOpKind::DivAssign; return true;
  case TokenKind::PercentEqual: Op = AssignOpKind::RemAssign; return true;
  default: return false;
  }
}

Expr *Parser::parseAssign() {
  Expr *LHS = parseBinary(0);
  AssignOpKind Op;
  if (isAssignOp(cur().Kind, Op)) {
    SourceLocation Loc = cur().Loc;
    consume();
    Expr *RHS = parseAssign(); // Right-associative.
    return Ctx.create<AssignExpr>(Op, LHS, RHS, Loc);
  }
  if (cur().is(TokenKind::Question)) {
    SourceLocation Loc = cur().Loc;
    consume();
    Expr *Then = parseExpr();
    expect(TokenKind::Colon, "in conditional expression");
    Expr *Else = parseAssign();
    return Ctx.create<ConditionalExpr>(LHS, Then, Else, Loc);
  }
  return LHS;
}

namespace {
struct BinOpInfo {
  BinaryOpKind Op;
  int Prec;
};
} // namespace

static bool binaryOpInfo(TokenKind K, BinOpInfo &Info) {
  switch (K) {
  case TokenKind::PipePipe: Info = {BinaryOpKind::LOr, 1}; return true;
  case TokenKind::AmpAmp: Info = {BinaryOpKind::LAnd, 2}; return true;
  case TokenKind::Pipe: Info = {BinaryOpKind::BitOr, 3}; return true;
  case TokenKind::Caret: Info = {BinaryOpKind::BitXor, 4}; return true;
  case TokenKind::Amp: Info = {BinaryOpKind::BitAnd, 5}; return true;
  case TokenKind::EqualEqual: Info = {BinaryOpKind::EQ, 6}; return true;
  case TokenKind::ExclaimEqual: Info = {BinaryOpKind::NE, 6}; return true;
  case TokenKind::Less: Info = {BinaryOpKind::LT, 7}; return true;
  case TokenKind::Greater: Info = {BinaryOpKind::GT, 7}; return true;
  case TokenKind::LessEqual: Info = {BinaryOpKind::LE, 7}; return true;
  case TokenKind::GreaterEqual: Info = {BinaryOpKind::GE, 7}; return true;
  case TokenKind::LessLess: Info = {BinaryOpKind::Shl, 8}; return true;
  case TokenKind::GreaterGreater: Info = {BinaryOpKind::Shr, 8}; return true;
  case TokenKind::Plus: Info = {BinaryOpKind::Add, 9}; return true;
  case TokenKind::Minus: Info = {BinaryOpKind::Sub, 9}; return true;
  case TokenKind::Star: Info = {BinaryOpKind::Mul, 10}; return true;
  case TokenKind::Slash: Info = {BinaryOpKind::Div, 10}; return true;
  case TokenKind::Percent: Info = {BinaryOpKind::Rem, 10}; return true;
  default: return false;
  }
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  for (;;) {
    BinOpInfo Info;
    if (!binaryOpInfo(cur().Kind, Info) || Info.Prec < MinPrec)
      return LHS;
    SourceLocation Loc = cur().Loc;
    consume();
    Expr *RHS = parseBinary(Info.Prec + 1);
    LHS = Ctx.create<BinaryExpr>(Info.Op, LHS, RHS, Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::Minus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Minus, parseUnary(), Loc);
  case TokenKind::Exclaim:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Not, parseUnary(), Loc);
  case TokenKind::Tilde:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::BitNot, parseUnary(), Loc);
  case TokenKind::Star:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::Deref, parseUnary(), Loc);
  case TokenKind::PlusPlus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::PreInc, parseUnary(), Loc);
  case TokenKind::MinusMinus:
    consume();
    return Ctx.create<UnaryExpr>(UnaryOpKind::PreDec, parseUnary(), Loc);
  case TokenKind::Amp: {
    consume();
    // Pointer-to-member constant `&C::m`.
    if (cur().is(TokenKind::Identifier) && tok(1).is(TokenKind::ColonColon) &&
        tok(2).is(TokenKind::Identifier) && isTypeName(cur()) &&
        tok(3).isNot(TokenKind::LParen)) {
      std::string ClassName(cur().Text);
      consume();
      consume();
      std::string MemberName(cur().Text);
      consume();
      return Ctx.create<MemberPointerConstantExpr>(std::move(ClassName),
                                                   std::move(MemberName),
                                                   Loc);
    }
    return Ctx.create<UnaryExpr>(UnaryOpKind::AddrOf, parseUnary(), Loc);
  }
  case TokenKind::KwNew:
    return parseNew();
  case TokenKind::KwDelete: {
    consume();
    bool IsArray = false;
    if (tryConsume(TokenKind::LBracket)) {
      expect(TokenKind::RBracket, "in 'delete[]'");
      IsArray = true;
    }
    return Ctx.create<DeleteExpr>(parseUnary(), IsArray, Loc);
  }
  case TokenKind::KwSizeof: {
    consume();
    expect(TokenKind::LParen, "after 'sizeof'");
    Expr *Result = nullptr;
    if (startsType()) {
      const Type *Ty = parseType();
      Result = Ctx.create<SizeofExpr>(Ty, nullptr, Loc);
    } else {
      Expr *Operand = parseExpr();
      Result = Ctx.create<SizeofExpr>(nullptr, Operand, Loc);
    }
    expect(TokenKind::RParen, "after 'sizeof' operand");
    return Result;
  }
  case TokenKind::KwStaticCast:
  case TokenKind::KwReinterpretCast: {
    CastStyle Style = cur().is(TokenKind::KwStaticCast)
                          ? CastStyle::Static
                          : CastStyle::Reinterpret;
    consume();
    expect(TokenKind::Less, "after cast keyword");
    const Type *Ty = parseType();
    expect(TokenKind::Greater, "after cast target type");
    expect(TokenKind::LParen, "in named cast");
    Expr *Sub = parseExpr();
    expect(TokenKind::RParen, "in named cast");
    if (!Ty)
      return Sub;
    return Ctx.create<CastExpr>(Style, Ty, Sub, Loc);
  }
  case TokenKind::LParen:
    // C-style cast: `(T)unary`.
    if (startsType(1)) {
      consume();
      const Type *Ty = parseType();
      expect(TokenKind::RParen, "after cast type");
      Expr *Sub = parseUnary();
      if (!Ty)
        return Sub;
      return Ctx.create<CastExpr>(CastStyle::CStyle, Ty, Sub, Loc);
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  for (;;) {
    SourceLocation Loc = cur().Loc;
    switch (cur().Kind) {
    case TokenKind::Period:
    case TokenKind::Arrow: {
      bool IsArrow = cur().is(TokenKind::Arrow);
      consume();
      if (cur().isNot(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected member name");
        return E;
      }
      std::string Name(cur().Text);
      consume();
      std::string Qualifier;
      if (cur().is(TokenKind::ColonColon) &&
          tok(1).is(TokenKind::Identifier)) {
        // Qualified access `e.C::m`: the first identifier was the
        // qualifier.
        Qualifier = std::move(Name);
        consume(); // ::
        Name = std::string(cur().Text);
        consume();
      }
      E = Ctx.create<MemberExpr>(E, IsArrow, std::move(Name),
                                 std::move(Qualifier), Loc);
      break;
    }
    case TokenKind::PeriodStar:
    case TokenKind::ArrowStar: {
      bool IsArrow = cur().is(TokenKind::ArrowStar);
      consume();
      Expr *Pointer = parseUnary();
      E = Ctx.create<MemberPointerAccessExpr>(E, Pointer, IsArrow, Loc);
      break;
    }
    case TokenKind::LBracket: {
      consume();
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "after subscript");
      E = Ctx.create<SubscriptExpr>(E, Index, Loc);
      break;
    }
    case TokenKind::LParen: {
      std::vector<Expr *> Args = parseCallArgs();
      E = Ctx.create<CallExpr>(E, std::move(Args), Loc);
      break;
    }
    case TokenKind::PlusPlus:
      consume();
      E = Ctx.create<UnaryExpr>(UnaryOpKind::PostInc, E, Loc);
      break;
    case TokenKind::MinusMinus:
      consume();
      E = Ctx.create<UnaryExpr>(UnaryOpKind::PostDec, E, Loc);
      break;
    default:
      return E;
    }
  }
}

std::vector<Expr *> Parser::parseCallArgs() {
  std::vector<Expr *> Args;
  expect(TokenKind::LParen, "to begin argument list");
  if (cur().isNot(TokenKind::RParen)) {
    do
      Args.push_back(parseAssign());
    while (tryConsume(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end argument list");
  return Args;
}

Expr *Parser::parseNew() {
  SourceLocation Loc = cur().Loc;
  consume(); // new

  const Type *Ty = nullptr;
  switch (cur().Kind) {
  case TokenKind::KwBool: Ty = Ctx.boolType(); consume(); break;
  case TokenKind::KwChar: Ty = Ctx.charType(); consume(); break;
  case TokenKind::KwInt: Ty = Ctx.intType(); consume(); break;
  case TokenKind::KwDouble: Ty = Ctx.doubleType(); consume(); break;
  case TokenKind::Identifier: {
    ClassDecl *CD = lookupClass(std::string(cur().Text));
    if (!CD) {
      Diags.error(cur().Loc,
                  "unknown type '" + std::string(cur().Text) + "' in new");
      return Ctx.create<NullptrLiteralExpr>(Loc);
    }
    Ty = Ctx.classType(CD);
    consume();
    break;
  }
  default:
    Diags.error(cur().Loc, "expected type after 'new'");
    return Ctx.create<NullptrLiteralExpr>(Loc);
  }
  while (tryConsume(TokenKind::Star))
    Ty = Ctx.pointerType(Ty);

  Expr *ArraySize = nullptr;
  std::vector<Expr *> CtorArgs;
  if (tryConsume(TokenKind::LBracket)) {
    ArraySize = parseExpr();
    expect(TokenKind::RBracket, "after array-new extent");
  } else if (cur().is(TokenKind::LParen)) {
    CtorArgs = parseCallArgs();
  }
  return Ctx.create<NewExpr>(Ty, std::move(CtorArgs), ArraySize, Loc);
}

Expr *Parser::parsePrimary() {
  SourceLocation Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLiteral: {
    long long Value = cur().IntValue;
    consume();
    return Ctx.create<IntLiteralExpr>(Value, Loc);
  }
  case TokenKind::DoubleLiteral: {
    double Value = cur().DoubleValue;
    consume();
    return Ctx.create<DoubleLiteralExpr>(Value, Loc);
  }
  case TokenKind::CharLiteral: {
    char Value = static_cast<char>(cur().IntValue);
    consume();
    return Ctx.create<CharLiteralExpr>(Value, Loc);
  }
  case TokenKind::StringLiteral: {
    std::string Value = cur().StringValue;
    consume();
    return Ctx.create<StringLiteralExpr>(std::move(Value), Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return Ctx.create<BoolLiteralExpr>(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return Ctx.create<BoolLiteralExpr>(false, Loc);
  case TokenKind::KwNullptr:
    consume();
    return Ctx.create<NullptrLiteralExpr>(Loc);
  case TokenKind::KwThis:
    consume();
    return Ctx.create<ThisExpr>(Loc);
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  case TokenKind::Identifier: {
    std::string Name(cur().Text);
    consume();
    return Ctx.create<DeclRefExpr>(std::move(Name), Loc);
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(cur().Kind));
    consume();
    return Ctx.create<IntLiteralExpr>(0, Loc);
  }
}
