//===-- parser/Parser.h - MiniC++ parser ------------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC++. The parser is purely syntactic:
/// it resolves class names (needed to disambiguate declarations from
/// expressions and casts from parenthesized expressions) but leaves
/// variable references, member lookups, and types of expressions to Sema.
///
/// Classes must be declared (at least forward-declared) before their names
/// are used as types; functions called before their definition need a
/// prototype. Method bodies may reference members declared later in their
/// class because resolution happens in the later Sema pass.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_PARSER_PARSER_H
#define DMM_PARSER_PARSER_H

#include "ast/ASTContext.h"
#include "lexer/Token.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace dmm {

class DiagnosticsEngine;
class SourceManager;

/// Parses one or more source buffers into an ASTContext's translation
/// unit.
class Parser {
public:
  Parser(ASTContext &Ctx, const SourceManager &SM, DiagnosticsEngine &Diags);

  /// Parses buffer \p FileID, appending top-level declarations to the
  /// translation unit. Returns false if any syntax error was reported.
  bool parseBuffer(uint32_t FileID);

  /// Parses a pre-lexed token stream (the lexer runs per-file in
  /// parallel; parsing stays sequential because it appends to the
  /// shared ASTContext and accumulates the class-name table across
  /// files). \p Tokens must end with EndOfFile. Returns false if any
  /// syntax error was reported.
  bool parseTokens(std::vector<Token> Tokens);

private:
  /// \name Token stream helpers
  /// @{
  const Token &tok(unsigned LookAhead = 0) const;
  const Token &cur() const { return tok(0); }
  void consume();
  bool tryConsume(TokenKind K);
  /// Consumes a token of kind \p K or reports an error. Returns success.
  bool expect(TokenKind K, const char *Context);
  /// Skips tokens until a likely statement/declaration boundary.
  void synchronize();
  /// @}

  /// \name Type-name tracking
  /// @{
  bool isTypeName(const Token &T) const;
  /// True if a type starts at lookahead \p At (builtin keyword or known
  /// class name).
  bool startsType(unsigned At = 0) const;
  ClassDecl *lookupClass(const std::string &Name) const;
  ClassDecl *getOrCreateClass(TagKind Tag, const std::string &Name,
                              SourceLocation Loc);
  /// @}

  /// \name Declarations
  /// @{
  void parseTopLevelDecl();
  void parseClass(TagKind Tag);
  void parseClassBody(ClassDecl *CD);
  void parseMember(ClassDecl *CD);
  void parseCtorInitList(ConstructorDecl *Ctor, ClassDecl *CD);
  /// Parses an out-of-line definition `C::name(...)`, `C::C(...)`, or
  /// `C::~C(...)`. \p ReturnTy is null for ctors/dtors.
  void parseOutOfLineMember(const Type *ReturnTy);
  /// Parses a function prototype/definition or global variable(s) once
  /// the leading type has been parsed.
  void parseFunctionOrGlobal(const Type *Ty);
  void parseParamList(FunctionDecl *FD);
  /// @}

  /// \name Types
  /// @{
  /// Parses a type: specifiers, base type, pointer/reference suffixes,
  /// member-pointer suffix. Returns null and diagnoses on failure.
  const Type *parseType();
  /// Parses optional declarator suffixes for a variable of base type
  /// \p Ty named at the current token: function-pointer form
  /// `(*name)(params)` or `name[N]` arrays. Emits the variable name in
  /// \p Name. Returns the final type.
  const Type *parseDeclarator(const Type *Ty, std::string &Name,
                              SourceLocation &NameLoc);
  /// @}

  /// \name Statements
  /// @{
  Stmt *parseStmt();
  CompoundStmt *parseCompoundStmt();
  Stmt *parseDeclStmt();
  Stmt *parseIfStmt();
  Stmt *parseWhileStmt();
  Stmt *parseForStmt();
  Stmt *parseReturnStmt();
  /// @}

  /// \name Expressions
  /// @{
  Expr *parseExpr();       ///< Includes comma.
  Expr *parseAssign();     ///< Assignment / conditional and below.
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  Expr *parseNew();
  std::vector<Expr *> parseCallArgs();
  /// @}

  ASTContext &Ctx;
  const SourceManager &SM;
  DiagnosticsEngine &Diags;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  unsigned StartErrors = 0;

  /// Class names visible so far (forward declarations included).
  std::unordered_map<std::string, ClassDecl *> ClassNames;

  /// Free-function names seen so far (prototypes and definitions), used
  /// to merge a definition into its earlier prototype.
  std::unordered_map<std::string, FunctionDecl *> FunctionNames;
};

} // namespace dmm

#endif // DMM_PARSER_PARSER_H
