//===-- trace/DynamicMetrics.h - Table 2 / Figure 4 metrics -----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the paper's dynamic measurements from an allocation trace,
/// the object-layout model, and a dead-member set:
///
///  - Object Space: bytes occupied by objects throughout execution
///    (Table 2 col. 1);
///  - Dead Data Member Space: bytes within those objects occupied by dead
///    members (Table 2 col. 2, Figure 4 light bars);
///  - High Water Mark: maximum bytes occupied by simultaneously live
///    objects (Table 2 col. 3);
///  - High Water Mark without dead members: the maximum after re-laying
///    objects out without their dead members (Table 2 col. 4, Figure 4
///    dark bars). The two maxima may occur at different execution points
///    (paper §4.3).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TRACE_DYNAMICMETRICS_H
#define DMM_TRACE_DYNAMICMETRICS_H

#include "hierarchy/ObjectLayout.h"
#include "trace/AllocationTrace.h"

namespace dmm {

/// The dynamic measurements for one execution.
struct DynamicMetrics {
  uint64_t ObjectSpace = 0;
  uint64_t DeadMemberSpace = 0;
  uint64_t HighWaterMark = 0;
  uint64_t HighWaterMarkNoDead = 0;
  uint64_t NumObjects = 0;

  double deadSpacePercent() const {
    return ObjectSpace ? 100.0 * static_cast<double>(DeadMemberSpace) /
                             static_cast<double>(ObjectSpace)
                       : 0.0;
  }
  double highWaterMarkReductionPercent() const {
    return HighWaterMark
               ? 100.0 *
                     static_cast<double>(HighWaterMark -
                                         HighWaterMarkNoDead) /
                     static_cast<double>(HighWaterMark)
               : 0.0;
  }

  /// Exact equality across all measurements. The shadow profiler
  /// (profiler/ShadowProfiler.h) must reproduce the trace-replay
  /// numbers byte-for-byte; this is the comparison the driver, the
  /// corpus tests, and the fuzzing oracle use.
  friend bool operator==(const DynamicMetrics &A, const DynamicMetrics &B) {
    return A.ObjectSpace == B.ObjectSpace &&
           A.DeadMemberSpace == B.DeadMemberSpace &&
           A.HighWaterMark == B.HighWaterMark &&
           A.HighWaterMarkNoDead == B.HighWaterMarkNoDead &&
           A.NumObjects == B.NumObjects;
  }
  friend bool operator!=(const DynamicMetrics &A, const DynamicMetrics &B) {
    return !(A == B);
  }
};

/// Replays \p Trace against \p Layout and \p Dead.
DynamicMetrics computeDynamicMetrics(const AllocationTrace &Trace,
                                     const LayoutEngine &Layout,
                                     const FieldSet &Dead);

} // namespace dmm

#endif // DMM_TRACE_DYNAMICMETRICS_H
