//===-- trace/AllocationTrace.h - Object allocation trace -------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-trace substrate. The paper obtained its dynamic numbers
/// "by a combination of code instrumentation and analysis of a dynamic
/// trace of the execution" (§4, ref [14]); our interpreter records an
/// equivalent trace of object allocations and deallocations, with logical
/// timestamps, which trace/DynamicMetrics.h analyzes.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TRACE_ALLOCATIONTRACE_H
#define DMM_TRACE_ALLOCATIONTRACE_H

#include "ast/Decl.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dmm {

/// One allocation or deallocation of a (possibly array of) complete
/// object(s).
struct TraceEvent {
  enum class EK { Alloc, Free };
  EK Kind;
  uint64_t ObjectID;
  const ClassDecl *Class;
  uint64_t Count; ///< Number of complete objects (array-new extent).
  uint64_t Bytes; ///< Total bytes = Count * sizeof(complete object).
  uint64_t Time;  ///< Logical timestamp (event order).
};

/// An append-only execution trace.
class AllocationTrace {
public:
  /// Records an allocation and returns its object ID.
  uint64_t recordAlloc(const ClassDecl *CD, uint64_t Count, uint64_t Bytes) {
    uint64_t ID = NextID++;
    Events.push_back(
        {TraceEvent::EK::Alloc, ID, CD, Count, Bytes, NextTime++});
    LiveIndex[ID] = Events.size() - 1;
    return ID;
  }

  /// Records the deallocation of \p ObjectID. Double frees and unknown
  /// IDs are ignored (the interpreter reports them separately).
  void recordFree(uint64_t ObjectID) {
    auto It = LiveIndex.find(ObjectID);
    if (It == LiveIndex.end())
      return;
    const TraceEvent &Alloc = Events[It->second];
    Events.push_back({TraceEvent::EK::Free, ObjectID, Alloc.Class,
                      Alloc.Count, Alloc.Bytes, NextTime++});
    LiveIndex.erase(It);
  }

  const std::vector<TraceEvent> &events() const { return Events; }

  /// Number of objects never freed (alive at end of execution).
  size_t numLeaked() const { return LiveIndex.size(); }

private:
  std::vector<TraceEvent> Events;
  std::unordered_map<uint64_t, size_t> LiveIndex;
  uint64_t NextID = 1;
  uint64_t NextTime = 0;
};

} // namespace dmm

#endif // DMM_TRACE_ALLOCATIONTRACE_H
