//===-- trace/DynamicMetrics.cpp ------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/DynamicMetrics.h"

#include <algorithm>

using namespace dmm;

DynamicMetrics dmm::computeDynamicMetrics(const AllocationTrace &Trace,
                                          const LayoutEngine &Layout,
                                          const FieldSet &Dead) {
  DynamicMetrics M;
  uint64_t LiveBytes = 0;
  uint64_t LiveShrunkBytes = 0;

  for (const TraceEvent &E : Trace.events()) {
    uint64_t DeadPer = Layout.deadBytes(E.Class, Dead);
    uint64_t ShrunkPer = Layout.sizeWithoutDead(E.Class, Dead);
    uint64_t Shrunk = E.Count * ShrunkPer;

    if (E.Kind == TraceEvent::EK::Alloc) {
      M.ObjectSpace += E.Bytes;
      M.DeadMemberSpace += E.Count * DeadPer;
      M.NumObjects += E.Count;
      LiveBytes += E.Bytes;
      LiveShrunkBytes += Shrunk;
      M.HighWaterMark = std::max(M.HighWaterMark, LiveBytes);
      M.HighWaterMarkNoDead =
          std::max(M.HighWaterMarkNoDead, LiveShrunkBytes);
      continue;
    }
    LiveBytes -= std::min(LiveBytes, E.Bytes);
    LiveShrunkBytes -= std::min(LiveShrunkBytes, Shrunk);
  }
  return M;
}
