//===-- callgraph/PointsTo.h - Steensgaard-style points-to ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A unification-based (Steensgaard) points-to analysis, field-based and
/// flow-insensitive, in the style of the alias analyses the paper cites
/// ([15, 17, 20]) when discussing how "a more accurate call graph" can
/// improve the results (§3.1): knowing that `ap` never points to a `C`
/// object excludes `C::f` from the graph and lets `C::mc1` be classified
/// dead.
///
/// The abstraction:
///  - one node per variable, per data member (field-based: all instances
///    of a member share a node), per allocation site, per function
///    value, and per method receiver (`this`);
///  - assignments unify the pointees of both sides; `&x` makes the LHS
///    pointee the node of `x`;
///  - nodes carry *class tags* (the dynamic classes of the objects they
///    may denote) and *function tags* (for function pointers), merged on
///    unification.
///
/// Tag sets are hash-consed through support/InternedSetPool.h (the
/// set-deduplication technique of MDE-style points-to): each node holds
/// a 32-bit SetID instead of its own std::set, so the many nodes that
/// share identical tag content share one stored set, and merging on
/// unification is a pooled union that usually returns an existing ID.
/// The pools' dedup hit-rates are exported as `pointsto.*` telemetry
/// counters by run().
///
/// Constructs the abstraction cannot track (pointer-to-member accesses,
/// unsafe casts' sources) conservatively taint the involved nodes as
/// "unknown", and queries on tainted nodes return no information — the
/// call-graph builder then falls back to RTA behaviour for that site.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CALLGRAPH_POINTSTO_H
#define DMM_CALLGRAPH_POINTSTO_H

#include "ast/ASTContext.h"
#include "support/InternedSetPool.h"

#include <map>
#include <set>
#include <vector>

namespace dmm {

class ClassHierarchy;

/// Whole-program Steensgaard points-to information.
class PointsToAnalysis {
public:
  PointsToAnalysis(const ASTContext &Ctx, const ClassHierarchy &CH);

  /// Runs the analysis over the whole program (including unreachable
  /// code: extra flows only make the result more conservative).
  void run();

  /// The dynamic classes the *value* of \p E (a pointer expression) may
  /// reference. Empty optional-style contract: when the second member
  /// of the pair is false, nothing is known (caller must fall back).
  std::pair<std::set<const ClassDecl *>, bool>
  pointeeClasses(const Expr *E) const;

  /// The dynamic classes of the object denoted by lvalue \p E (e.g. the
  /// base of an `obj.f()` call, which may be a reference binding a
  /// derived object).
  std::pair<std::set<const ClassDecl *>, bool>
  locationClasses(const Expr *E) const;

  /// The dynamic classes `this` may have inside \p Method.
  std::pair<std::set<const ClassDecl *>, bool>
  receiverClasses(const FunctionDecl *Method) const;

  /// The functions the value of \p E may address.
  std::pair<std::set<const FunctionDecl *>, bool>
  pointeeFunctions(const Expr *E) const;

private:
  /// \name Union-find nodes
  /// @{
  unsigned makeNode();
  unsigned find(unsigned N) const;
  void unify(unsigned A, unsigned B);
  /// The node a location node's content points to (created on demand).
  unsigned pointeeOf(unsigned Loc);
  void tagClass(unsigned N, const ClassDecl *CD);
  void tagFunction(unsigned N, const FunctionDecl *FD);
  void taint(unsigned N);
  /// @}

  /// \name Program model nodes
  /// @{
  unsigned varNode(const VarDecl *V);
  unsigned fieldNode(const FieldDecl *F);
  unsigned siteNode(const Expr *AllocSite, const ClassDecl *CD);
  unsigned thisNode(const FunctionDecl *Method);
  unsigned returnNode(const FunctionDecl *FD);
  /// @}

  /// \name Constraint generation
  /// @{
  void processFunction(const FunctionDecl *FD);
  void processStmtTree(const Stmt *S);
  void processExprTree(const Expr *E);
  void processVarDecl(const VarDecl *V);
  /// Location node of an lvalue expression (fresh tainted node when the
  /// shape is untrackable). Cached per expression for later queries.
  unsigned locOf(const Expr *E);
  unsigned locOfUncached(const Expr *E);
  /// Node describing what \p E's value may point to (cached per node).
  unsigned valueNodeOf(const Expr *E);
  /// Connects location \p L so its content may be \p RHS's value.
  void assignInto(unsigned L, const Expr *RHS);
  void processCall(const CallExpr *Call);
  /// Receivers for implicit base/member construction of \p CD objects.
  void bindImplicitConstruction(unsigned ObjectNode, const ClassDecl *CD);
  /// Conservative callee set used while generating constraints.
  std::vector<const FunctionDecl *>
  possibleCallees(const CallExpr *Call) const;
  /// @}

  const ASTContext &Ctx;
  const ClassHierarchy &CH;

  mutable std::vector<unsigned> Parent;
  std::vector<unsigned> Pointee; ///< 0 = none (indexed by root, lazily).
  /// Per-node tag sets, as handles into the hash-consing pools.
  InternedSetPool<const ClassDecl *> ClassSets;
  InternedSetPool<const FunctionDecl *> FunctionSets;
  std::vector<InternedSetPool<const ClassDecl *>::SetID> ClassTags;
  std::vector<InternedSetPool<const FunctionDecl *>::SetID> FunctionTags;
  std::vector<bool> Tainted;

  std::map<const Decl *, unsigned> DeclNodes;
  std::map<const Expr *, unsigned> SiteNodes;
  std::map<const FunctionDecl *, unsigned> ThisNodes;
  std::map<const FunctionDecl *, unsigned> ReturnNodes;
  /// Caches answering post-hoc queries about expressions.
  std::map<const Expr *, unsigned> ExprValueNodes;
  std::map<const Expr *, unsigned> ExprLocNodes;

  const FunctionDecl *CurrentFunction = nullptr;
};

} // namespace dmm

#endif // DMM_CALLGRAPH_POINTSTO_H
