//===-- callgraph/PointsTo.cpp --------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callgraph/PointsTo.h"

#include "ast/ASTWalker.h"
#include "hierarchy/ClassHierarchy.h"
#include "telemetry/Telemetry.h"

#include <cassert>

using namespace dmm;

PointsToAnalysis::PointsToAnalysis(const ASTContext &Ctx,
                                   const ClassHierarchy &CH)
    : Ctx(Ctx), CH(CH) {}

//===----------------------------------------------------------------------===//
// Union-find with tag and pointee merging
//===----------------------------------------------------------------------===//

unsigned PointsToAnalysis::makeNode() {
  unsigned N = static_cast<unsigned>(Parent.size());
  Parent.push_back(N);
  Pointee.push_back(0); // 0 = "no pointee yet" (node 0 is a sentinel).
  ClassTags.push_back(InternedSetPool<const ClassDecl *>::Empty);
  FunctionTags.push_back(InternedSetPool<const FunctionDecl *>::Empty);
  Tainted.push_back(false);
  return N;
}

unsigned PointsToAnalysis::find(unsigned N) const {
  while (Parent[N] != N) {
    Parent[N] = Parent[Parent[N]];
    N = Parent[N];
  }
  return N;
}

void PointsToAnalysis::unify(unsigned A, unsigned B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  Parent[B] = A;
  ClassTags[A] = ClassSets.unionSets(ClassTags[A], ClassTags[B]);
  FunctionTags[A] = FunctionSets.unionSets(FunctionTags[A], FunctionTags[B]);
  Tainted[A] = Tainted[A] || Tainted[B];
  unsigned PA = Pointee[A];
  unsigned PB = Pointee[B];
  if (PA && PB)
    unify(PA, PB); // Steensgaard's conditional join.
  else if (PB)
    Pointee[A] = PB;
}

unsigned PointsToAnalysis::pointeeOf(unsigned Loc) {
  Loc = find(Loc);
  if (!Pointee[Loc]) {
    unsigned Fresh = makeNode();
    Loc = find(Loc); // makeNode may not move roots, but stay safe.
    Pointee[Loc] = Fresh;
  }
  return find(Pointee[find(Loc)]);
}

void PointsToAnalysis::tagClass(unsigned N, const ClassDecl *CD) {
  unsigned Root = find(N);
  ClassTags[Root] = ClassSets.insert(ClassTags[Root], CD);
}

void PointsToAnalysis::tagFunction(unsigned N, const FunctionDecl *FD) {
  unsigned Root = find(N);
  FunctionTags[Root] = FunctionSets.insert(FunctionTags[Root], FD);
}

void PointsToAnalysis::taint(unsigned N) { Tainted[find(N)] = true; }

//===----------------------------------------------------------------------===//
// Program model nodes
//===----------------------------------------------------------------------===//

unsigned PointsToAnalysis::varNode(const VarDecl *V) {
  auto It = DeclNodes.find(V);
  if (It != DeclNodes.end())
    return find(It->second);
  unsigned N = makeNode();
  DeclNodes[V] = N;
  // A class-typed variable *is* an object of that (dynamic) class.
  const Type *Ty = V->type()->nonReferenceType();
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    Ty = AT->element();
  if (const ClassDecl *CD = Ty->asClassDecl())
    tagClass(N, CD);
  return N;
}

unsigned PointsToAnalysis::fieldNode(const FieldDecl *F) {
  auto It = DeclNodes.find(F);
  if (It != DeclNodes.end())
    return find(It->second);
  unsigned N = makeNode();
  DeclNodes[F] = N;
  const Type *Ty = F->type();
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    Ty = AT->element();
  if (const ClassDecl *CD = Ty->asClassDecl())
    tagClass(N, CD);
  return N;
}

unsigned PointsToAnalysis::siteNode(const Expr *AllocSite,
                                    const ClassDecl *CD) {
  auto It = SiteNodes.find(AllocSite);
  if (It != SiteNodes.end())
    return find(It->second);
  unsigned N = makeNode();
  SiteNodes[AllocSite] = N;
  if (CD)
    tagClass(N, CD);
  return N;
}

unsigned PointsToAnalysis::thisNode(const FunctionDecl *Method) {
  auto It = ThisNodes.find(Method);
  if (It != ThisNodes.end())
    return find(It->second);
  unsigned N = makeNode();
  ThisNodes[Method] = N;
  return N;
}

unsigned PointsToAnalysis::returnNode(const FunctionDecl *FD) {
  auto It = ReturnNodes.find(FD);
  if (It != ReturnNodes.end())
    return find(It->second);
  unsigned N = makeNode();
  ReturnNodes[FD] = N;
  return N;
}

//===----------------------------------------------------------------------===//
// Locations and values
//===----------------------------------------------------------------------===//

unsigned PointsToAnalysis::locOf(const Expr *E) {
  auto Cached = ExprLocNodes.find(E);
  if (Cached != ExprLocNodes.end())
    return find(Cached->second);
  unsigned Result = locOfUncached(E);
  ExprLocNodes[E] = Result;
  return Result;
}

unsigned PointsToAnalysis::locOfUncached(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (const auto *V = dyn_cast_or_null<VarDecl>(DRE->referent()))
      return varNode(V);
    if (const auto *F = dyn_cast_or_null<FieldDecl>(DRE->referent()))
      return fieldNode(F);
    break;
  }
  case Expr::Kind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    if (const auto *F = dyn_cast_or_null<FieldDecl>(ME->member()))
      return fieldNode(F);
    break;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() == UnaryOpKind::Deref)
      return valueNodeOf(UE->sub());
    break;
  }
  case Expr::Kind::Subscript: {
    const auto *SE = cast<SubscriptExpr>(E);
    const Type *BaseTy = SE->base()->type();
    if (BaseTy && BaseTy->isArray())
      return locOf(SE->base()); // Elements conflated with the array.
    return valueNodeOf(SE->base());
  }
  case Expr::Kind::Cast:
    return locOf(cast<CastExpr>(E)->sub());
  default:
    break;
  }
  unsigned Fresh = makeNode();
  taint(Fresh);
  return Fresh;
}

unsigned PointsToAnalysis::valueNodeOf(const Expr *E) {
  auto It = ExprValueNodes.find(E);
  if (It != ExprValueNodes.end())
    return find(It->second);

  unsigned N = 0;
  switch (E->kind()) {
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() == UnaryOpKind::AddrOf) {
      // &f for a function.
      if (const auto *DRE = dyn_cast<DeclRefExpr>(UE->sub()))
        if (const auto *FD =
                dyn_cast_or_null<FunctionDecl>(DRE->referent())) {
          N = makeNode();
          tagFunction(N, FD);
          break;
        }
      N = locOf(UE->sub());
      break;
    }
    if (UE->op() == UnaryOpKind::Deref || UE->isIncDec()) {
      if (UE->op() == UnaryOpKind::Deref)
        N = pointeeOf(locOf(E));
      else
        N = valueNodeOf(UE->sub());
      break;
    }
    N = makeNode();
    break;
  }
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (const auto *FD = dyn_cast_or_null<FunctionDecl>(DRE->referent())) {
      N = makeNode();
      tagFunction(N, FD);
      break;
    }
    N = pointeeOf(locOf(E));
    break;
  }
  case Expr::Kind::Member:
  case Expr::Kind::Subscript:
    N = pointeeOf(locOf(E));
    break;
  case Expr::Kind::MemberPointerAccess: {
    N = makeNode();
    taint(N);
    break;
  }
  case Expr::Kind::This:
    N = thisNode(CurrentFunction);
    break;
  case Expr::Kind::New: {
    const auto *NE = cast<NewExpr>(E);
    const Type *Ty = NE->allocType();
    N = siteNode(E, Ty->asClassDecl());
    break;
  }
  case Expr::Kind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    N = valueNodeOf(CE->sub());
    if (CE->safety() == CastSafety::Unrelated)
      taint(N);
    break;
  }
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    N = makeNode();
    unify(N, valueNodeOf(CE->thenExpr()));
    unify(N, valueNodeOf(CE->elseExpr()));
    break;
  }
  case Expr::Kind::Comma:
    N = valueNodeOf(cast<CommaExpr>(E)->rhs());
    break;
  case Expr::Kind::Assign:
    N = valueNodeOf(cast<AssignExpr>(E)->rhs());
    break;
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    N = makeNode();
    for (const FunctionDecl *Callee : possibleCallees(Call))
      unify(N, returnNode(Callee));
    if (!Call->directCallee() && possibleCallees(Call).empty())
      taint(N);
    break;
  }
  case Expr::Kind::Binary: {
    // Pointer arithmetic (only): the result aliases the pointer
    // operand(s). Comparisons must NOT unify their operands.
    const auto *BE = cast<BinaryExpr>(E);
    N = makeNode();
    if (BE->op() == BinaryOpKind::Add || BE->op() == BinaryOpKind::Sub) {
      if (BE->lhs()->type() && (BE->lhs()->type()->isPointer() ||
                                BE->lhs()->type()->isArray()))
        unify(N, valueNodeOf(BE->lhs()));
      if (BE->rhs()->type() && (BE->rhs()->type()->isPointer() ||
                                BE->rhs()->type()->isArray()))
        unify(N, valueNodeOf(BE->rhs()));
    }
    break;
  }
  default:
    N = makeNode(); // Literals, sizeof, ...: point to nothing.
    break;
  }

  ExprValueNodes[E] = N;
  return find(N);
}

//===----------------------------------------------------------------------===//
// Constraints
//===----------------------------------------------------------------------===//

std::vector<const FunctionDecl *>
PointsToAnalysis::possibleCallees(const CallExpr *Call) const {
  std::vector<const FunctionDecl *> Callees;
  if (const FunctionDecl *Direct = Call->directCallee()) {
    Callees.push_back(Direct);
    if (Call->isVirtualCall())
      if (const auto *M = dyn_cast<MethodDecl>(Direct))
        for (MethodDecl *Override : CH.overriders(M))
          Callees.push_back(Override);
    return Callees;
  }
  // Indirect: any defined function of matching arity (conservative; the
  // refined target set is computed from function tags at query time).
  for (const FunctionDecl *FD : Ctx.functions())
    if (FD->kind() == Decl::Kind::Function && FD->isDefined() &&
        FD->params().size() == Call->args().size())
      Callees.push_back(FD);
  return Callees;
}

void PointsToAnalysis::assignInto(unsigned L, const Expr *RHS) {
  unify(pointeeOf(L), valueNodeOf(RHS));
}

void PointsToAnalysis::processCall(const CallExpr *Call) {
  // Evaluate the callee so later pointeeFunctions queries on this call
  // site have a cached node (function-pointer loads flow through here).
  valueNodeOf(Call->callee());

  // Receiver binding.
  const Expr *ReceiverBase = nullptr;
  bool Arrow = false;
  if (const auto *ME = dyn_cast<MemberExpr>(Call->callee())) {
    ReceiverBase = ME->base();
    Arrow = ME->isArrow();
  }

  for (const FunctionDecl *Callee : possibleCallees(Call)) {
    // Arguments to parameters.
    for (size_t I = 0;
         I < Call->args().size() && I < Callee->params().size(); ++I) {
      const ParamDecl *P = Callee->params()[I];
      if (P->type()->isReference() || P->type()->asClassDecl())
        unify(varNode(P), locOf(Call->args()[I]));
      else
        assignInto(varNode(P), Call->args()[I]);
    }
    // Receiver to `this`.
    if (const auto *M = dyn_cast<MethodDecl>(Callee)) {
      (void)M;
      if (ReceiverBase) {
        if (Arrow)
          unify(thisNode(Callee), valueNodeOf(ReceiverBase));
        else
          unify(thisNode(Callee), locOf(ReceiverBase));
      } else if (CurrentFunction &&
                 isa<MethodDecl>(CurrentFunction)) {
        // Implicit this call: same receiver as the caller.
        unify(thisNode(Callee), thisNode(CurrentFunction));
      }
    }
  }
}

void PointsToAnalysis::processExprTree(const Expr *Root) {
  forEachExprPreorder(Root, [&](const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Assign: {
      const auto *AE = cast<AssignExpr>(E);
      assignInto(locOf(AE->lhs()), AE->rhs());
      return;
    }
    case Expr::Kind::Call:
      processCall(cast<CallExpr>(E));
      return;
    case Expr::Kind::New: {
      const auto *NE = cast<NewExpr>(E);
      const ClassDecl *CD = NE->allocType()->asClassDecl();
      if (!CD)
        return;
      unsigned Site = siteNode(E, CD);
      const ConstructorDecl *Ctor = NE->constructor();
      if (Ctor) {
        unify(thisNode(Ctor), Site);
        for (size_t I = 0; I < NE->ctorArgs().size() &&
                           I < Ctor->params().size();
             ++I) {
          const ParamDecl *P = Ctor->params()[I];
          if (P->type()->isReference() || P->type()->asClassDecl())
            unify(varNode(P), locOf(NE->ctorArgs()[I]));
          else
            assignInto(varNode(P), NE->ctorArgs()[I]);
        }
      } else {
        bindImplicitConstruction(Site, CD);
      }
      return;
    }
    case Expr::Kind::Delete: {
      // Destructors of every possible dynamic class receive the object.
      const auto *DE = cast<DeleteExpr>(E);
      const Type *SubTy = DE->sub()->type();
      const ClassDecl *Static = nullptr;
      if (const auto *PT = dyn_cast_or_null<PointerType>(SubTy))
        Static = PT->pointee()->asClassDecl();
      if (!Static)
        return;
      unsigned V = valueNodeOf(DE->sub());
      for (const ClassDecl *Dyn : CH.selfAndSubclasses(Static))
        if (DestructorDecl *Dtor = Dyn->destructor())
          unify(thisNode(Dtor), V);
      return;
    }
    default:
      return;
    }
  });
}

void PointsToAnalysis::bindImplicitConstruction(unsigned ObjectNode,
                                                const ClassDecl *CD) {
  // Default construction without a declared constructor still runs base
  // and member constructors; their `this` sees the same object (for
  // member objects: the member's field node).
  for (const BaseSpecifier &BS : CD->bases()) {
    for (ConstructorDecl *BC : BS.Base->constructors())
      if (BC->params().empty())
        unify(thisNode(BC), ObjectNode);
    if (BS.Base->constructors().empty())
      bindImplicitConstruction(ObjectNode, BS.Base);
  }
  for (const FieldDecl *F : CD->fields()) {
    const Type *Ty = F->type();
    if (const auto *AT = dyn_cast<ArrayType>(Ty))
      Ty = AT->element();
    if (const ClassDecl *Member = Ty->asClassDecl()) {
      unsigned FieldObj = fieldNode(F);
      for (ConstructorDecl *MC : Member->constructors())
        if (MC->params().empty())
          unify(thisNode(MC), FieldObj);
      if (Member->constructors().empty())
        bindImplicitConstruction(FieldObj, Member);
    }
  }
}

void PointsToAnalysis::processStmtTree(const Stmt *Root) {
  forEachStmtPreorder(Root, [&](const Stmt *S) {
    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *V : DS->vars())
        processVarDecl(V);
      return;
    }
    if (const auto *RS = dyn_cast<ReturnStmt>(S)) {
      if (RS->value() && CurrentFunction)
        unify(returnNode(CurrentFunction), valueNodeOf(RS->value()));
    }
    forEachDirectExpr(S, [&](const Expr *E) { processExprTree(E); });
  });
}

void PointsToAnalysis::processVarDecl(const VarDecl *V) {
  unsigned N = varNode(V);
  if (V->type()->isReference()) {
    if (V->init())
      unify(N, locOf(V->init()));
    return;
  }
  if (const Expr *Init = V->init()) {
    processExprTree(Init);
    assignInto(N, Init);
  }
  const Type *Ty = V->type();
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    Ty = AT->element();
  if (const ClassDecl *CD = Ty->asClassDecl()) {
    const ConstructorDecl *Ctor = V->ctor();
    if (Ctor) {
      unify(thisNode(Ctor), N);
      for (size_t I = 0;
           I < V->ctorArgs().size() && I < Ctor->params().size(); ++I) {
        processExprTree(V->ctorArgs()[I]);
        const ParamDecl *P = Ctor->params()[I];
        if (P->type()->isReference() || P->type()->asClassDecl())
          unify(varNode(P), locOf(V->ctorArgs()[I]));
        else
          assignInto(varNode(P), V->ctorArgs()[I]);
      }
    } else {
      for (const Expr *Arg : V->ctorArgs())
        processExprTree(Arg);
      bindImplicitConstruction(N, CD);
    }
    // Local/global objects are also destroyed.
    if (DestructorDecl *Dtor = CD->destructor())
      unify(thisNode(Dtor), N);
  }
}

void PointsToAnalysis::processFunction(const FunctionDecl *FD) {
  CurrentFunction = FD;

  if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD)) {
    for (const CtorInitializer &Init : Ctor->initializers()) {
      for (const Expr *Arg : Init.Args)
        processExprTree(Arg);
      if (Init.Base && Init.TargetCtor) {
        unify(thisNode(Init.TargetCtor), thisNode(Ctor));
        for (size_t I = 0; I < Init.Args.size() &&
                           I < Init.TargetCtor->params().size();
             ++I) {
          const ParamDecl *P = Init.TargetCtor->params()[I];
          if (P->type()->isReference() || P->type()->asClassDecl())
            unify(varNode(P), locOf(Init.Args[I]));
          else
            assignInto(varNode(P), Init.Args[I]);
        }
      } else if (Init.Field) {
        if (Init.TargetCtor) {
          unify(thisNode(Init.TargetCtor), fieldNode(Init.Field));
          for (size_t I = 0; I < Init.Args.size() &&
                             I < Init.TargetCtor->params().size();
               ++I)
            assignInto(varNode(Init.TargetCtor->params()[I]),
                       Init.Args[I]);
        } else if (Init.Args.size() == 1) {
          assignInto(fieldNode(Init.Field), Init.Args[0]);
        }
      }
    }
    // Implicitly-constructed bases/members share this object.
    bindImplicitConstruction(thisNode(Ctor), Ctor->parent());
  }

  if (const auto *M = dyn_cast<MethodDecl>(FD)) {
    // A destructor's receiver is whatever its class' constructors saw
    // (same objects die as were created).
    if (isa<DestructorDecl>(M))
      for (ConstructorDecl *Ctor : M->parent()->constructors())
        unify(thisNode(M), thisNode(Ctor));
  }

  if (FD->body())
    processStmtTree(FD->body());
  CurrentFunction = nullptr;
}

void PointsToAnalysis::run() {
  makeNode(); // Node 0: sentinel so "no pointee" can be encoded as 0.

  CurrentFunction = nullptr;
  for (const VarDecl *GV : Ctx.globals())
    processVarDecl(GV);

  for (const FunctionDecl *FD : Ctx.functions())
    processFunction(FD);

  if (Telemetry *T = Telemetry::active()) {
    T->addCounter("pointsto.nodes", Parent.size());
    T->addCounter("pointsto.class_sets.unique", ClassSets.numUniqueSets());
    T->addCounter("pointsto.class_sets.lookups", ClassSets.lookups());
    T->addCounter("pointsto.class_sets.hits", ClassSets.hits());
    T->addCounter("pointsto.function_sets.unique",
                  FunctionSets.numUniqueSets());
    T->addCounter("pointsto.function_sets.lookups", FunctionSets.lookups());
    T->addCounter("pointsto.function_sets.hits", FunctionSets.hits());
    // Occupancy snapshots of the intern pools (approximate heap bytes;
    // deterministic — the analysis runs sequentially).
    T->addCounter("pointsto.class_sets.bytes", ClassSets.occupancyBytes());
    T->addCounter("pointsto.function_sets.bytes",
                  FunctionSets.occupancyBytes());
  }
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

/// Materializes a pooled set handle into the std::set the query API
/// exposes.
template <typename T>
static std::set<T> materialize(const InternedSetPool<T> &Pool,
                               typename InternedSetPool<T>::SetID S) {
  std::set<T> Out;
  Pool.forEach(S, [&](T V) { Out.insert(V); });
  return Out;
}

std::pair<std::set<const ClassDecl *>, bool>
PointsToAnalysis::locationClasses(const Expr *E) const {
  auto It = ExprLocNodes.find(E);
  if (It == ExprLocNodes.end())
    return {{}, false};
  unsigned N = find(It->second);
  if (Tainted[N])
    return {{}, false};
  return {materialize(ClassSets, ClassTags[N]), true};
}

std::pair<std::set<const ClassDecl *>, bool>
PointsToAnalysis::pointeeClasses(const Expr *E) const {
  auto It = ExprValueNodes.find(E);
  if (It == ExprValueNodes.end())
    return {{}, false};
  unsigned N = find(It->second);
  if (Tainted[N])
    return {{}, false};
  return {materialize(ClassSets, ClassTags[N]), true};
}

std::pair<std::set<const ClassDecl *>, bool>
PointsToAnalysis::receiverClasses(const FunctionDecl *Method) const {
  auto It = ThisNodes.find(Method);
  if (It == ThisNodes.end())
    return {{}, false};
  unsigned N = find(It->second);
  if (Tainted[N])
    return {{}, false};
  return {materialize(ClassSets, ClassTags[N]), true};
}

std::pair<std::set<const FunctionDecl *>, bool>
PointsToAnalysis::pointeeFunctions(const Expr *E) const {
  auto It = ExprValueNodes.find(E);
  if (It == ExprValueNodes.end())
    return {{}, false};
  unsigned N = find(It->second);
  if (Tainted[N])
    return {{}, false};
  return {materialize(FunctionSets, FunctionTags[N]), true};
}
