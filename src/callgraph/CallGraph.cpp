//===-- callgraph/CallGraph.cpp -------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraph.h"

#include "callgraph/PointsTo.h"

#include "ast/ASTContext.h"
#include "ast/ASTWalker.h"
#include "ast/Expr.h"
#include "hierarchy/ClassHierarchy.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_set>

using namespace dmm;

const std::vector<const FunctionDecl *> CallGraph::Empty;

const char *dmm::callGraphKindName(CallGraphKind Kind) {
  switch (Kind) {
  case CallGraphKind::Trivial: return "trivial";
  case CallGraphKind::CHA: return "CHA";
  case CallGraphKind::RTA: return "RTA";
  case CallGraphKind::PTA: return "PTA";
  }
  return "unknown";
}

const std::vector<const FunctionDecl *> &
CallGraph::callees(const FunctionDecl *FD) const {
  auto It = Edges.find(FD);
  return It == Edges.end() ? Empty : It->second;
}

std::vector<const FunctionDecl *> CallGraph::reachableFunctions() const {
  std::vector<const FunctionDecl *> Result = ReachableList;
  std::sort(Result.begin(), Result.end(),
            [](const FunctionDecl *A, const FunctionDecl *B) {
              return A->declID() < B->declID();
            });
  return Result;
}

size_t CallGraph::numEdges() const {
  size_t N = 0;
  for (const auto &[Caller, Callees] : Edges)
    N += Callees.size();
  return N;
}

namespace dmm {

/// Worklist-driven builder shared by the Trivial, CHA, and RTA
/// configurations.
class CallGraphBuilder {
public:
  CallGraphBuilder(const ASTContext &Ctx, const ClassHierarchy &CH,
                   CallGraphKind Kind, const PointsToAnalysis *PTA,
                   const CallGraphFactsFn *FactsFor = nullptr)
      : Ctx(Ctx), CH(CH), Kind(Kind), PTA(PTA), FactsFor(FactsFor) {}

  CallGraph build(const FunctionDecl *Main) {
    if (Kind == CallGraphKind::Trivial) {
      // Everything defined is reachable; all classes are assumed
      // instantiated.
      for (const ClassDecl *CD : Ctx.classes())
        if (CD->isComplete())
          G.Instantiated.insert(CD);
      for (const FunctionDecl *FD : Ctx.functions())
        if (FD->isDefined())
          enqueue(FD);
    }

    if (Main) {
      enqueue(Main);
      // Globals are constructed before and destroyed after main; model
      // their constructor/destructor calls — and any calls made by
      // their initializer expressions — as edges from main.
      for (const VarDecl *GV : Ctx.globals()) {
        handleVarLifetime(Main, GV);
        processGlobalInit(Main, GV);
      }
    }

    uint64_t WorklistIterations = 0;
    while (!Worklist.empty()) {
      const FunctionDecl *FD = Worklist.back();
      Worklist.pop_back();
      ++WorklistIterations;
      processFunction(FD);
    }
    if (Telemetry *T = Telemetry::active()) {
      std::string Prefix = std::string("callgraph.") + callGraphKindName(Kind);
      T->addCounter(Prefix + ".builds", 1);
      T->addCounter(Prefix + ".edges", G.numEdges());
      T->addCounter(Prefix + ".reachable", G.ReachableList.size());
      T->addCounter(Prefix + ".worklist_iterations", WorklistIterations);
      T->addCounter(Prefix + ".virtual_sites", VirtualSites.size());
      T->addCounter(Prefix + ".instantiated_classes", G.Instantiated.size());
    }
    return std::move(G);
  }

private:
  //===--------------------------------------------------------------------===//
  // Core worklist operations
  //===--------------------------------------------------------------------===//

  void enqueue(const FunctionDecl *FD) {
    if (G.ReachableBits.set(FD->declID())) {
      G.ReachableList.push_back(FD);
      Worklist.push_back(FD);
    }
  }

  void addEdge(const FunctionDecl *Caller, const FunctionDecl *Callee) {
    // Decl IDs are dense per compilation, so a caller/callee pair packs
    // into one hashed word — measurably cheaper than an ordered set of
    // pointer pairs on edge-heavy programs.
    const uint64_t Key = (static_cast<uint64_t>(Caller->declID()) << 32) |
                         Callee->declID();
    if (EdgeSet.insert(Key).second)
      G.Edges[Caller].push_back(Callee);
    enqueue(Callee);
  }

  /// Records that objects whose dynamic class is \p CD exist. Under RTA
  /// this unlocks dispatch targets; under CHA/Trivial it only feeds the
  /// statistics and the library-callback rule.
  void instantiate(const FunctionDecl *Caller, const ClassDecl *CD) {
    if (!CD->isComplete() || !G.Instantiated.insert(CD).second)
      return;

    // Member objects are constructed along with CD (their dynamic types
    // exist too). Fields of base subobjects included.
    forEachMemberObjectClass(CD, [&](const ClassDecl *Member) {
      instantiate(Caller, Member);
    });

    // Library-callback rule (paper §3.3): if CD overrides virtual
    // methods of a library base class, the library may invoke those
    // overrides.
    for (const ClassDecl *Base : CH.transitiveBases(CD)) {
      if (!Base->isLibrary())
        continue;
      for (const MethodDecl *BaseM : Base->methods()) {
        if (!BaseM->isVirtual())
          continue;
        if (MethodDecl *Override = CD->findMethod(BaseM->name()))
          enqueue(Override);
      }
    }

    if (Kind != CallGraphKind::RTA && Kind != CallGraphKind::PTA)
      return;
    // Re-resolve pending virtual sites against the new dynamic type.
    for (const VirtualSite &Site : VirtualSites)
      resolveSiteForClass(Site, CD);
  }

  /// Applies \p Fn to the class of every class-typed field (directly or
  /// via arrays) of \p CD and its base subobjects.
  template <typename Fn>
  void forEachMemberObjectClass(const ClassDecl *CD, Fn &&F) {
    auto Visit = [&](const ClassDecl *Cls) {
      for (const FieldDecl *Field : Cls->fields()) {
        const Type *Ty = Field->type();
        if (const auto *AT = dyn_cast<ArrayType>(Ty))
          Ty = AT->element();
        if (const ClassDecl *Member = Ty->asClassDecl())
          F(Member);
      }
    };
    Visit(CD);
    for (const ClassDecl *Base : CH.transitiveBases(CD))
      Visit(Base);
  }

  //===--------------------------------------------------------------------===//
  // Virtual dispatch
  //===--------------------------------------------------------------------===//

  struct VirtualSite {
    const FunctionDecl *Caller;
    /// Dispatch on a method, or (when Method is null) on the destructor
    /// of StaticClass.
    const MethodDecl *Method;
    const ClassDecl *StaticClass;
    /// The receiver expression (method sites: the `->` base or `.`
    /// base; destructor sites: the delete operand); null for
    /// implicit-this calls.
    const Expr *Receiver = nullptr;
    /// True when Receiver is an object lvalue (`.` base) rather than a
    /// pointer value (`->` base / delete operand).
    bool ReceiverIsLocation = false;
  };

  /// Attempts points-to-refined dispatch. Returns true when the site
  /// was fully resolved (no RTA fallback needed).
  bool resolveSiteWithPointsTo(const VirtualSite &Site) {
    if (!PTA)
      return false;
    std::pair<std::set<const ClassDecl *>, bool> Info{{}, false};
    if (Site.Receiver)
      Info = Site.ReceiverIsLocation
                 ? PTA->locationClasses(Site.Receiver)
                 : PTA->pointeeClasses(Site.Receiver);
    else
      Info = PTA->receiverClasses(Site.Caller);
    if (!Info.second)
      return false;
    for (const ClassDecl *Dyn : Info.first)
      resolveSiteForClass(Site, Dyn);
    return true;
  }

  void resolveSiteForClass(const VirtualSite &Site, const ClassDecl *Dyn) {
    if (Site.Method) {
      if (!CH.isDerivedFrom(Dyn, Site.Method->parent()))
        return;
      if (MethodDecl *Target = CH.resolveVirtualCall(Dyn, Site.Method)) {
        if (Target->isDefined() || Target->isBuiltin())
          addEdge(Site.Caller, Target);
      }
      return;
    }
    if (!CH.isDerivedFrom(Dyn, Site.StaticClass))
      return;
    addDestructionEdges(Site.Caller, Dyn);
  }

  void addVirtualSite(VirtualSite Site) {
    switch (Kind) {
    case CallGraphKind::Trivial:
    case CallGraphKind::CHA: {
      const ClassDecl *Root =
          Site.Method ? Site.Method->parent() : Site.StaticClass;
      for (const ClassDecl *Dyn : CH.selfAndSubclasses(Root))
        resolveSiteForClass(Site, Dyn);
      return;
    }
    case CallGraphKind::PTA:
      if (resolveSiteWithPointsTo(Site))
        return;
      [[fallthrough]];
    case CallGraphKind::RTA:
      for (const ClassDecl *Dyn : G.Instantiated)
        resolveSiteForClass(Site, Dyn);
      VirtualSites.push_back(Site);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Construction / destruction edges
  //===--------------------------------------------------------------------===//

  static ConstructorDecl *ctorByArity(const ClassDecl *CD, size_t Arity) {
    for (ConstructorDecl *C : CD->constructors())
      if (C->params().size() == Arity)
        return C;
    return nullptr;
  }

  /// Adds the calls performed to construct a \p CD object when \p Ctor
  /// (possibly null for implicit default construction) runs on behalf of
  /// \p Caller.
  void addConstructionEdges(const FunctionDecl *Caller, const ClassDecl *CD,
                            const ConstructorDecl *Ctor) {
    instantiate(Caller, CD);
    if (!Ctor)
      Ctor = ctorByArity(CD, 0);
    if (Ctor) {
      addEdge(Caller, Ctor);
      return;
    }
    // No constructor declaration: the implicit default constructor
    // directly constructs bases and class-typed members.
    addImplicitConstruction(Caller, CD);
  }

  void addImplicitConstruction(const FunctionDecl *Caller,
                               const ClassDecl *CD) {
    for (const BaseSpecifier &BS : CD->bases()) {
      if (ConstructorDecl *BC = ctorByArity(BS.Base, 0))
        addEdge(Caller, BC);
      else
        addImplicitConstruction(Caller, BS.Base);
    }
    for (const FieldDecl *Field : CD->fields()) {
      const Type *Ty = Field->type();
      if (const auto *AT = dyn_cast<ArrayType>(Ty))
        Ty = AT->element();
      if (const ClassDecl *Member = Ty->asClassDecl()) {
        if (ConstructorDecl *MC = ctorByArity(Member, 0))
          addEdge(Caller, MC);
        else
          addImplicitConstruction(Caller, Member);
      }
    }
  }

  /// Adds the calls performed to destroy a \p CD object (static dispatch).
  void addDestructionEdges(const FunctionDecl *Caller, const ClassDecl *CD) {
    if (DestructorDecl *Dtor = CD->destructor()) {
      addEdge(Caller, Dtor);
      return;
    }
    // Implicit destructor destroys members and bases.
    for (const FieldDecl *Field : CD->fields()) {
      const Type *Ty = Field->type();
      if (const auto *AT = dyn_cast<ArrayType>(Ty))
        Ty = AT->element();
      if (const ClassDecl *Member = Ty->asClassDecl())
        addDestructionEdges(Caller, Member);
    }
    for (const BaseSpecifier &BS : CD->bases())
      addDestructionEdges(Caller, BS.Base);
  }

  /// Walks a global variable's initializer expressions for calls,
  /// address-taken functions, and allocations (they execute before
  /// main).
  void processGlobalInit(const FunctionDecl *Caller, const VarDecl *GV) {
    std::set<const Expr *> CalleePositions;
    std::vector<const Expr *> Roots;
    if (GV->init())
      Roots.push_back(GV->init());
    for (const Expr *Arg : GV->ctorArgs())
      Roots.push_back(Arg);
    for (const Expr *Root : Roots)
      forEachExprPreorder(Root, [&](const Expr *E) {
        if (const auto *Call = dyn_cast<CallExpr>(E))
          CalleePositions.insert(Call->callee());
      });
    for (const Expr *Root : Roots)
      forEachExprPreorder(Root, [&](const Expr *E) {
        processExpr(Caller, E, CalleePositions);
      });
  }

  /// Construction + destruction induced by a variable's lifetime.
  void handleVarLifetime(const FunctionDecl *Caller, const VarDecl *V) {
    const Type *Ty = V->type()->nonReferenceType();
    if (const auto *AT = dyn_cast<ArrayType>(Ty))
      Ty = AT->element();
    const ClassDecl *CD = Ty->asClassDecl();
    if (!CD || V->type()->isReference())
      return;
    addConstructionEdges(Caller, CD, V->ctor());
    addDestructionEdges(Caller, CD);
  }

  //===--------------------------------------------------------------------===//
  // Per-function processing
  //===--------------------------------------------------------------------===//

  void processFunction(const FunctionDecl *FD) {
    // Implicit member/base construction calls of constructors.
    if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD))
      processCtorImplicits(Ctor);
    if (const auto *Dtor = dyn_cast<DestructorDecl>(FD))
      processDtorImplicits(Dtor);

    if (!FD->body() && !isa<ConstructorDecl>(FD))
      return;

    // Recorded body facts replace the AST walk when available.
    if (FactsFor)
      if (const std::vector<CallGraphBodyFact> *Facts = (*FactsFor)(FD)) {
        replayFacts(FD, *Facts);
        return;
      }

    // First pass: identify callee-position expressions so that other
    // uses of function names count as address-taken.
    std::set<const Expr *> CalleePositions;
    forEachExprInFunction(FD, [&](const Expr *E) {
      if (const auto *Call = dyn_cast<CallExpr>(E))
        CalleePositions.insert(Call->callee());
    });

    forEachExprInFunction(FD, [&](const Expr *E) {
      processExpr(FD, E, CalleePositions);
    });

    // Local variable lifetimes.
    if (FD->body())
      forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
        if (const auto *DS = dyn_cast<DeclStmt>(S))
          for (const VarDecl *V : DS->vars())
            handleVarLifetime(FD, V);
      });
  }

  void processCtorImplicits(const ConstructorDecl *Ctor) {
    const ClassDecl *CD = Ctor->parent();
    std::set<const ClassDecl *> InitializedBases;
    std::set<const FieldDecl *> InitializedFields;

    for (const CtorInitializer &Init : Ctor->initializers()) {
      if (Init.Base) {
        InitializedBases.insert(Init.Base);
        if (Init.TargetCtor)
          addEdge(Ctor, Init.TargetCtor);
        else
          addImplicitConstruction(Ctor, Init.Base);
        continue;
      }
      if (!Init.Field)
        continue;
      InitializedFields.insert(Init.Field);
      const Type *Ty = Init.Field->type();
      if (const ClassDecl *Member = Ty->asClassDecl()) {
        if (Init.TargetCtor)
          addEdge(Ctor, Init.TargetCtor);
        else
          addConstructionEdges(Ctor, Member, nullptr);
      }
    }

    // Bases and members without explicit initializers are
    // default-constructed.
    for (const BaseSpecifier &BS : CD->bases())
      if (!InitializedBases.count(BS.Base))
        addConstructionEdges(Ctor, BS.Base, nullptr);
    for (const ClassDecl *VB : CH.virtualBases(CD)) {
      bool Direct = false;
      for (const BaseSpecifier &BS : CD->bases())
        if (BS.Base == VB)
          Direct = true;
      if (!Direct && !InitializedBases.count(VB))
        addConstructionEdges(Ctor, VB, nullptr);
    }
    for (const FieldDecl *Field : CD->fields()) {
      if (InitializedFields.count(Field))
        continue;
      const Type *Ty = Field->type();
      if (const auto *AT = dyn_cast<ArrayType>(Ty))
        Ty = AT->element();
      if (const ClassDecl *Member = Ty->asClassDecl())
        addConstructionEdges(Ctor, Member, nullptr);
    }
  }

  void processDtorImplicits(const DestructorDecl *Dtor) {
    const ClassDecl *CD = Dtor->parent();
    for (const FieldDecl *Field : CD->fields()) {
      const Type *Ty = Field->type();
      if (const auto *AT = dyn_cast<ArrayType>(Ty))
        Ty = AT->element();
      if (const ClassDecl *Member = Ty->asClassDecl())
        addDestructionEdges(Dtor, Member);
    }
    for (const BaseSpecifier &BS : CD->bases())
      addDestructionEdges(Dtor, BS.Base);
    for (const ClassDecl *VB : CH.virtualBases(CD))
      addDestructionEdges(Dtor, VB);
  }

  void processExpr(const FunctionDecl *FD, const Expr *E,
                   const std::set<const Expr *> &CalleePositions) {
    switch (E->kind()) {
    case Expr::Kind::Call: {
      const auto *Call = cast<CallExpr>(E);
      if (const FunctionDecl *Direct = Call->directCallee()) {
        if (Call->isVirtualCall()) {
          const Expr *Receiver = nullptr;
          bool IsLocation = false;
          if (const auto *ME = dyn_cast<MemberExpr>(Call->callee())) {
            Receiver = ME->base();
            IsLocation = !ME->isArrow();
          }
          addVirtualSite({FD, cast<MethodDecl>(Direct), nullptr, Receiver,
                          IsLocation});
        } else if (Direct->isDefined() || Direct->isBuiltin()) {
          addEdge(FD, Direct);
        } else {
          addEdge(FD, Direct); // Undefined: leaf (library function).
        }
        return;
      }
      // Indirect call through a function pointer.
      if (PTA) {
        auto Info = PTA->pointeeFunctions(Call->callee());
        if (Info.second && !Info.first.empty()) {
          for (const FunctionDecl *Target : Info.first)
            if (Target->params().size() == Call->args().size())
              addEdge(FD, Target);
          return;
        }
      }
      IndirectSite Site{FD, Call->args().size()};
      for (const FunctionDecl *Taken : G.AddressTaken)
        if (Taken->params().size() == Site.Arity)
          addEdge(FD, Taken);
      IndirectSites.push_back(Site);
      return;
    }
    case Expr::Kind::DeclRef: {
      const auto *DRE = cast<DeclRefExpr>(E);
      const auto *Fn = dyn_cast_or_null<FunctionDecl>(DRE->referent());
      if (!Fn || CalleePositions.count(E))
        return;
      // A function name used as a value: its address escapes; assume it
      // is reachable (paper §3.3) and feed pending indirect sites.
      if (G.AddressTaken.insert(Fn).second) {
        enqueue(Fn);
        for (const IndirectSite &Site : IndirectSites)
          if (Fn->params().size() == Site.Arity)
            addEdge(Site.Caller, Fn);
      }
      return;
    }
    case Expr::Kind::New: {
      const auto *N = cast<NewExpr>(E);
      const Type *Ty = N->allocType();
      if (const ClassDecl *CD = Ty->asClassDecl())
        addConstructionEdges(FD, CD, N->constructor());
      return;
    }
    case Expr::Kind::Delete: {
      const auto *D = cast<DeleteExpr>(E);
      const Type *SubTy = D->sub()->type();
      const ClassDecl *CD = nullptr;
      if (const auto *PT = dyn_cast_or_null<PointerType>(SubTy))
        CD = PT->pointee()->asClassDecl();
      if (!CD)
        return;
      if (CD->destructor() && CD->destructor()->isVirtual())
        addVirtualSite({FD, nullptr, CD, D->sub(), false});
      else
        addDestructionEdges(FD, CD);
      return;
    }
    default:
      return;
    }
  }

  /// Replays a recorded fact transcript through the same operations the
  /// AST walk of \p FD would perform, in the same order. Receiver
  /// expressions are unavailable (and unneeded: facts replay is gated to
  /// the non-PTA kinds, whose dispatch ignores them).
  void replayFacts(const FunctionDecl *FD,
                   const std::vector<CallGraphBodyFact> &Facts) {
    for (const CallGraphBodyFact &F : Facts) {
      switch (F.K) {
      case CallGraphBodyFact::Kind::DirectCall:
        addEdge(FD, F.Callee);
        break;
      case CallGraphBodyFact::Kind::VirtualCall:
        addVirtualSite({FD, cast<MethodDecl>(F.Callee), nullptr, nullptr,
                        false});
        break;
      case CallGraphBodyFact::Kind::AddressTaken:
        if (G.AddressTaken.insert(F.Callee).second) {
          enqueue(F.Callee);
          for (const IndirectSite &Site : IndirectSites)
            if (F.Callee->params().size() == Site.Arity)
              addEdge(Site.Caller, F.Callee);
        }
        break;
      case CallGraphBodyFact::Kind::New:
        addConstructionEdges(FD, F.Class,
                             dyn_cast_or_null<ConstructorDecl>(F.Callee));
        break;
      case CallGraphBodyFact::Kind::DeleteObject:
        if (F.Class->destructor() && F.Class->destructor()->isVirtual())
          addVirtualSite({FD, nullptr, F.Class, nullptr, false});
        else
          addDestructionEdges(FD, F.Class);
        break;
      case CallGraphBodyFact::Kind::VarLifetime:
        addConstructionEdges(FD, F.Class,
                             dyn_cast_or_null<ConstructorDecl>(F.Callee));
        addDestructionEdges(FD, F.Class);
        break;
      case CallGraphBodyFact::Kind::IndirectCall: {
        IndirectSite Site{FD, F.Arity};
        for (const FunctionDecl *Taken : G.AddressTaken)
          if (Taken->params().size() == Site.Arity)
            addEdge(FD, Taken);
        IndirectSites.push_back(Site);
        break;
      }
      }
    }
  }

  struct IndirectSite {
    const FunctionDecl *Caller;
    size_t Arity;
  };

  const ASTContext &Ctx;
  const ClassHierarchy &CH;
  CallGraphKind Kind;
  const PointsToAnalysis *PTA;
  const CallGraphFactsFn *FactsFor;
  CallGraph G;
  std::vector<const FunctionDecl *> Worklist;
  std::unordered_set<uint64_t> EdgeSet;
  std::vector<VirtualSite> VirtualSites;
  std::vector<IndirectSite> IndirectSites;
};

} // namespace dmm

CallGraph dmm::buildCallGraph(const ASTContext &Ctx,
                              const ClassHierarchy &CH,
                              const FunctionDecl *Main,
                              CallGraphKind Kind) {
  Span Timer("callgraph");
  std::unique_ptr<PointsToAnalysis> PTA;
  if (Kind == CallGraphKind::PTA) {
    Span PointsToTimer("callgraph.points_to");
    PTA = std::make_unique<PointsToAnalysis>(Ctx, CH);
    PTA->run();
  }
  CallGraphBuilder Builder(Ctx, CH, Kind, PTA.get());
  return Builder.build(Main);
}

CallGraph dmm::buildCallGraphFromFacts(const ASTContext &Ctx,
                                       const ClassHierarchy &CH,
                                       const FunctionDecl *Main,
                                       CallGraphKind Kind,
                                       const CallGraphFactsFn &FactsFor) {
  Span Timer("callgraph");
  assert(Kind != CallGraphKind::PTA &&
         "facts carry no receiver expressions; PTA must walk the AST");
  CallGraphBuilder Builder(Ctx, CH, Kind, /*PTA=*/nullptr, &FactsFor);
  return Builder.build(Main);
}
