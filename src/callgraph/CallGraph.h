//===-- callgraph/CallGraph.h - Whole-program call graph --------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-graph construction. The paper builds its graph with a variant of
/// the Program Virtual-call Graph algorithm (Bacon & Sweeney's RTA
/// family) and notes that "the accuracy of the call graph may have an
/// impact on the precision of the analysis". We provide four builders:
///
///  - Trivial: every defined function is reachable (the weakest baseline;
///    corresponds to running the analysis without reachability).
///  - CHA: Class Hierarchy Analysis; virtual calls dispatch to every
///    override in the static receiver's subtree.
///  - RTA: Rapid Type Analysis; dispatch is restricted to classes
///    instantiated in reachable code (the paper's configuration).
///  - PTA: RTA plus a Steensgaard points-to analysis (callgraph/
///    PointsTo.h); virtual sites dispatch only to classes the receiver
///    may actually reference, and indirect calls only to functions the
///    pointer may address, falling back to RTA where nothing is known.
///
/// All builders handle: implicit constructor/destructor calls (locals,
/// globals, new/delete, base and member subobjects), address-taken
/// functions (assumed reachable, paper §3.3), indirect calls through
/// function pointers (conservatively matched by arity), and library-class
/// callbacks (user overrides of a library class' virtual methods are
/// assumed reachable when the user class is instantiated).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CALLGRAPH_CALLGRAPH_H
#define DMM_CALLGRAPH_CALLGRAPH_H

#include "ast/Decl.h"
#include "support/BitVector.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

namespace dmm {

class ASTContext;
class ClassHierarchy;

/// Which call-graph construction algorithm to run. PTA refines RTA's
/// virtual dispatch with Steensgaard points-to receiver sets (the
/// refinement the paper sketches in section 3.1).
enum class CallGraphKind { Trivial, CHA, RTA, PTA };

/// Returns a display name ("trivial", "CHA", "RTA", "PTA").
const char *callGraphKindName(CallGraphKind Kind);

/// The result of call-graph construction.
class CallGraph {
public:
  /// True if \p FD is reachable from main().
  bool isReachable(const FunctionDecl *FD) const {
    return ReachableBits.test(FD->declID());
  }

  /// Direct + resolved-virtual + implicit callees of \p FD.
  const std::vector<const FunctionDecl *> &
  callees(const FunctionDecl *FD) const;

  /// All reachable functions, deterministically ordered by decl ID.
  std::vector<const FunctionDecl *> reachableFunctions() const;

  /// Classes instantiated in reachable code (drives RTA dispatch; also
  /// reported by the statistics layer).
  const std::set<const ClassDecl *> &instantiatedClasses() const {
    return Instantiated;
  }

  /// Functions whose address is taken in reachable code.
  const std::set<const FunctionDecl *> &addressTaken() const {
    return AddressTaken;
  }

  size_t numEdges() const;

private:
  friend class CallGraphBuilder;
  /// The reachable set, as a decl-ID-indexed bit vector (membership
  /// tests run on every worklist enqueue) plus the discovery-order list
  /// (enumeration); decl IDs are dense per compilation.
  BitVector ReachableBits;
  std::vector<const FunctionDecl *> ReachableList;
  std::map<const FunctionDecl *, std::vector<const FunctionDecl *>> Edges;
  std::set<const ClassDecl *> Instantiated;
  std::set<const FunctionDecl *> AddressTaken;
  static const std::vector<const FunctionDecl *> Empty;
};

/// Builds the call graph of the program rooted at `main`.
CallGraph buildCallGraph(const ASTContext &Ctx, const ClassHierarchy &CH,
                         const FunctionDecl *Main, CallGraphKind Kind);

/// One call-graph-relevant action of a function body, pre-resolved to
/// declarations. A function's fact list is a faithful transcript of
/// what the builder's AST walk would observe, in the same order
/// (expression preorder, then local variable lifetimes), so replaying
/// it yields the identical graph without touching the body again. The
/// summary-based pipeline records facts at extraction time and replays
/// them at link time (analysis/Summary.h).
struct CallGraphBodyFact {
  enum class Kind : uint8_t {
    DirectCall,   ///< Non-virtual call; Callee is the target.
    VirtualCall,  ///< Virtual call; Callee is the *static* method.
    AddressTaken, ///< Callee's name used as a value.
    New,          ///< `new Class(...)`; Class + chosen Callee ctor (or null).
    DeleteObject, ///< `delete p` where *p has class type Class.
    VarLifetime,  ///< Local of type Class; Callee is its ctor (or null).
    IndirectCall, ///< Call through a function pointer of arity Arity.
  };
  Kind K = Kind::DirectCall;
  const FunctionDecl *Callee = nullptr;
  const ClassDecl *Class = nullptr;
  uint32_t Arity = 0;
};

/// Supplies the recorded body facts of a function, or null to make the
/// builder fall back to walking that function's AST (functions the
/// supplier has no transcript for: builtins, synthesized definitions).
using CallGraphFactsFn =
    std::function<const std::vector<CallGraphBodyFact> *(const FunctionDecl *)>;

/// Builds the call graph from recorded body facts, walking the AST only
/// for functions \p FactsFor cannot supply. Produces the identical
/// graph to buildCallGraph for the Trivial/CHA/RTA kinds; PTA is not
/// supported (points-to refinement needs the receiver expressions,
/// which facts do not carry).
CallGraph buildCallGraphFromFacts(const ASTContext &Ctx,
                                  const ClassHierarchy &CH,
                                  const FunctionDecl *Main, CallGraphKind Kind,
                                  const CallGraphFactsFn &FactsFor);

} // namespace dmm

#endif // DMM_CALLGRAPH_CALLGRAPH_H
