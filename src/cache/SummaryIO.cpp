//===-- cache/SummaryIO.cpp - FileSummary binary format -------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Layout: file name, then the string table, then functions, globals,
// entry points, and unions. Every name is a u32 index into the string
// table, so events (15 bytes) and call facts (13 bytes) are fixed-width
// and a warm decode allocates only the table itself. The decoder
// validates every index against the table size — a corrupt ref degrades
// to a decode failure (cache miss), never an out-of-bounds access.
//
//===----------------------------------------------------------------------===//

#include "cache/SummaryIO.h"

using namespace dmm;

namespace {

/// Decode-side validation context: the number of interned strings.
struct RefCheck {
  uint32_t NumStrings = 0;

  bool valid(ByteReader &R, uint32_t Ref) const {
    if (Ref < NumStrings)
      return true;
    R.fail();
    return false;
  }
};

} // namespace

static void encodeEvent(const SummaryEvent &E, ByteWriter &W) {
  W.u8(E.IsSweep ? 1 : 0);
  W.u32(E.Target);
  W.u8(static_cast<uint8_t>(E.Reason));
  W.u8(static_cast<uint8_t>(E.Loc.K));
  W.u32(E.Loc.Offset);
  W.u32(E.Loc.File);
}

static bool decodeEvent(ByteReader &R, const RefCheck &Refs, SummaryEvent &E) {
  E.IsSweep = R.u8() != 0;
  E.Target = R.u32();
  uint8_t Reason = R.u8();
  // LivenessReason has 9 enumerators (NotAccessed..Written).
  if (Reason > static_cast<uint8_t>(LivenessReason::Written)) {
    R.fail();
    return false;
  }
  E.Reason = static_cast<LivenessReason>(Reason);
  uint8_t Kind = R.u8();
  if (Kind > static_cast<uint8_t>(SummaryLoc::Kind::OtherFile)) {
    R.fail();
    return false;
  }
  E.Loc.K = static_cast<SummaryLoc::Kind>(Kind);
  E.Loc.Offset = R.u32();
  E.Loc.File = R.u32();
  return Refs.valid(R, E.Target) && Refs.valid(R, E.Loc.File) && R.ok();
}

static void encodeFact(const SummaryCallFact &F, ByteWriter &W) {
  W.u8(static_cast<uint8_t>(F.K));
  W.u32(F.Name);
  W.u32(F.Ctor);
  W.u32(F.Arity);
}

static bool decodeFact(ByteReader &R, const RefCheck &Refs,
                       SummaryCallFact &F) {
  uint8_t Kind = R.u8();
  if (Kind > static_cast<uint8_t>(CallGraphBodyFact::Kind::IndirectCall)) {
    R.fail();
    return false;
  }
  F.K = static_cast<CallGraphBodyFact::Kind>(Kind);
  F.Name = R.u32();
  F.Ctor = R.u32();
  F.Arity = R.u32();
  return Refs.valid(R, F.Name) && Refs.valid(R, F.Ctor) && R.ok();
}

static void encodeRefs(const std::vector<uint32_t> &Refs, ByteWriter &W) {
  W.u32(static_cast<uint32_t>(Refs.size()));
  for (uint32_t Ref : Refs)
    W.u32(Ref);
}

static bool decodeRefs(ByteReader &R, const RefCheck &Refs,
                       std::vector<uint32_t> &Out) {
  uint32_t N = R.count(/*MinElementSize=*/4);
  Out.reserve(N);
  for (uint32_t I = 0; I != N && R.ok(); ++I) {
    uint32_t Ref = R.u32();
    if (!Refs.valid(R, Ref))
      return false;
    Out.push_back(Ref);
  }
  return R.ok();
}

void dmm::encodeFileSummary(const FileSummary &Summary, ByteWriter &W) {
  W.str(Summary.FileName);

  W.u32(static_cast<uint32_t>(Summary.Strings.size()));
  for (const std::string &S : Summary.Strings)
    W.str(S);

  W.u32(static_cast<uint32_t>(Summary.Functions.size()));
  for (const FunctionSummary &FS : Summary.Functions) {
    W.u32(FS.Name);
    W.u64(FS.ExprsVisited);
    W.u32(static_cast<uint32_t>(FS.Events.size()));
    for (const SummaryEvent &E : FS.Events)
      encodeEvent(E, W);
    W.u32(static_cast<uint32_t>(FS.CallFacts.size()));
    for (const SummaryCallFact &F : FS.CallFacts)
      encodeFact(F, W);
    encodeRefs(FS.Overrides, W);
  }

  W.u32(static_cast<uint32_t>(Summary.Globals.size()));
  for (const GlobalSummary &GS : Summary.Globals) {
    W.u32(GS.Name);
    W.u64(GS.ExprsVisited);
    W.u32(static_cast<uint32_t>(GS.Events.size()));
    for (const SummaryEvent &E : GS.Events)
      encodeEvent(E, W);
  }

  encodeRefs(Summary.EntryPoints, W);
  encodeRefs(Summary.UnionsDefined, W);
}

bool dmm::decodeFileSummary(ByteReader &R, FileSummary &Out) {
  Out = FileSummary();
  Out.FileName = R.str();

  uint32_t NumStrings = R.count(/*MinElementSize=*/4);
  if (NumStrings == 0) {
    // A well-formed table always holds at least the empty string.
    R.fail();
    return false;
  }
  Out.Strings.clear();
  Out.Strings.reserve(NumStrings);
  for (uint32_t I = 0; I != NumStrings && R.ok(); ++I)
    Out.Strings.push_back(R.str());
  if (!R.ok())
    return false;
  RefCheck Refs{NumStrings};

  // A FunctionSummary occupies >= 4 (name) + 8 + 4 + 4 + 4 bytes.
  uint32_t NumFunctions = R.count(/*MinElementSize=*/24);
  Out.Functions.reserve(NumFunctions);
  for (uint32_t I = 0; I != NumFunctions && R.ok(); ++I) {
    FunctionSummary FS;
    FS.Name = R.u32();
    if (!Refs.valid(R, FS.Name))
      return false;
    FS.ExprsVisited = R.u64();
    uint32_t NumEvents = R.count(/*MinElementSize=*/15);
    FS.Events.reserve(NumEvents);
    for (uint32_t J = 0; J != NumEvents && R.ok(); ++J) {
      SummaryEvent E;
      if (!decodeEvent(R, Refs, E))
        return false;
      FS.Events.push_back(E);
    }
    uint32_t NumFacts = R.count(/*MinElementSize=*/13);
    FS.CallFacts.reserve(NumFacts);
    for (uint32_t J = 0; J != NumFacts && R.ok(); ++J) {
      SummaryCallFact F;
      if (!decodeFact(R, Refs, F))
        return false;
      FS.CallFacts.push_back(F);
    }
    if (!decodeRefs(R, Refs, FS.Overrides))
      return false;
    Out.Functions.push_back(std::move(FS));
  }

  uint32_t NumGlobals = R.count(/*MinElementSize=*/16);
  Out.Globals.reserve(NumGlobals);
  for (uint32_t I = 0; I != NumGlobals && R.ok(); ++I) {
    GlobalSummary GS;
    GS.Name = R.u32();
    if (!Refs.valid(R, GS.Name))
      return false;
    GS.ExprsVisited = R.u64();
    uint32_t NumEvents = R.count(/*MinElementSize=*/15);
    GS.Events.reserve(NumEvents);
    for (uint32_t J = 0; J != NumEvents && R.ok(); ++J) {
      SummaryEvent E;
      if (!decodeEvent(R, Refs, E))
        return false;
      GS.Events.push_back(E);
    }
    Out.Globals.push_back(std::move(GS));
  }

  if (!decodeRefs(R, Refs, Out.EntryPoints) ||
      !decodeRefs(R, Refs, Out.UnionsDefined))
    return false;

  // Trailing garbage means the payload is not what we wrote.
  if (R.remaining() != 0)
    R.fail();
  return R.ok();
}
