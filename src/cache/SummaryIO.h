//===-- cache/SummaryIO.h - FileSummary binary format -----------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary encoding of analysis/Summary.h FileSummary values.
/// The format version participates in the cache environment fingerprint
/// (cache/IncrementalAnalysis.h), so bumping kSummaryFormatVersion
/// orphans every existing entry rather than risking a misparse; decode
/// additionally bounds-checks everything via ByteReader so corrupt
/// payloads fail cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CACHE_SUMMARYIO_H
#define DMM_CACHE_SUMMARYIO_H

#include "analysis/Summary.h"
#include "cache/Serialization.h"

namespace dmm {

/// Bump on ANY change to the encoded layout of FileSummary.
inline constexpr uint32_t kSummaryFormatVersion = 1;

void encodeFileSummary(const FileSummary &Summary, ByteWriter &W);

/// Returns false (leaving \p Out unspecified) on malformed input.
bool decodeFileSummary(ByteReader &R, FileSummary &Out);

} // namespace dmm

#endif // DMM_CACHE_SUMMARYIO_H
