//===-- cache/IncrementalAnalysis.h - Summary-based pipeline ----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates the summary-based analysis pipeline: per-file summary
/// extraction (optionally backed by the persistent SummaryCache),
/// followed by the global link/propagate phase
/// (DeadMemberAnalysis::runWithSummaries).
///
/// Cache key derivation (docs/CACHING.md): an entry for file F is valid
/// when BOTH
///   - the content hash of F's text is unchanged (F itself did not
///     change), and
///   - the environment hash is unchanged. The environment hash folds in
///     the analysis configuration fingerprint (sizeof/downcasts/
///     callgraph/deallocation/union-closure/baseline policy, inert
///     functions, tool version, summary format version) and the
///     *program structure hash* — a digest of every class definition,
///     function signature, and global declaration in the program.
///
/// The structure hash is what makes per-file reuse sound despite
/// cross-file semantic dependencies: a scan of F consults other files'
/// class hierarchies (cast safety), member declarations, and signatures
/// (expression types). Editing only a function body anywhere keeps the
/// structure hash stable, so every other file's summary stays valid —
/// the common incremental case costs one re-extraction. Editing any
/// declaration changes the structure hash and refreshes all summaries.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CACHE_INCREMENTALANALYSIS_H
#define DMM_CACHE_INCREMENTALANALYSIS_H

#include "analysis/DeadMemberAnalysis.h"

#include <cstdint>
#include <optional>
#include <string>

namespace dmm {

class SourceManager;
class SummaryCache;

/// Reported by --version and folded into cache keys, so upgrading the
/// tool can never replay summaries written by different analysis code.
inline constexpr const char kToolVersion[] = "0.3.0";

/// Digest of the analysis configuration knobs a scan depends on.
/// RecordProvenance is deliberately excluded: summaries always carry
/// event locations, so provenance on/off replays the same entries.
uint64_t analysisConfigFingerprint(const AnalysisOptions &Options,
                                   uint32_t FormatVersion);

/// Digest of every class definition (name, tag, library/completeness,
/// bases, fields with types and volatility, methods with signatures),
/// function signature, and global declaration in \p Ctx.
uint64_t programStructureHash(const ASTContext &Ctx);

/// The full cache-key environment: config fingerprint + structure hash.
uint64_t environmentHash(const ASTContext &Ctx, const AnalysisOptions &Options,
                         uint32_t FormatVersion);

/// Runs the two-phase pipeline: extracts one summary per source buffer
/// of \p SM in parallel (consulting \p Cache when non-null — hits skip
/// extraction, misses extract and store), then links them through \p
/// Analysis. Returns std::nullopt with *Error set when linking rejects
/// a summary; the caller should fall back to Analysis.run(Main).
std::optional<DeadMemberResult>
runSummaryAnalysis(const ASTContext &Ctx, const SourceManager &SM,
                   DeadMemberAnalysis &Analysis, const FunctionDecl *Main,
                   const AnalysisOptions &Options, SummaryCache *Cache,
                   std::string *Error = nullptr);

} // namespace dmm

#endif // DMM_CACHE_INCREMENTALANALYSIS_H
