//===-- cache/Hash.h - Streaming FNV-1a hashing -----------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming 64-bit hasher (word-at-a-time FNV-1a variant with
/// a murmur-style finalizer) used for cache keys and entry checksums.
/// Not cryptographic: a colliding adversarial entry can at worst
/// produce a wrong report from a cache the user controls anyway.
/// Length-prefixing every string keeps field boundaries unambiguous so
/// ("ab","c") and ("a","bc") hash differently.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CACHE_HASH_H
#define DMM_CACHE_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace dmm {

class Hasher {
public:
  /// Mixes one 64-bit word — the FNV-1a step applied to the word as a
  /// unit. Every input funnels through here, so throughput is one
  /// multiply per 8 bytes instead of per byte; structure hashes over
  /// every declaration in a program are rebuilt on each cached run,
  /// so this path is warm-analysis-critical.
  void word(uint64_t V) { H = (H ^ V) * 0x100000001b3ull; }

  void bytes(const void *Data, size_t Size) {
    const char *P = static_cast<const char *>(Data);
    size_t N = Size;
    while (N >= 8) {
      uint64_t W;
      std::memcpy(&W, P, 8);
      word(W);
      P += 8;
      N -= 8;
    }
    if (N != 0) {
      uint64_t Tail = 0;
      std::memcpy(&Tail, P, N);
      word(Tail);
    }
  }

  void u8(uint8_t V) { word(V); }
  void u32(uint32_t V) { word(V); }
  void u64(uint64_t V) { word(V); }

  void str(std::string_view S) {
    word(S.size());
    bytes(S.data(), S.size());
  }

  uint64_t value() const {
    // FNV's multiply only diffuses upward, so fold the high bits back
    // down before the value is compared or truncated.
    uint64_t V = H;
    V ^= V >> 33;
    V *= 0xff51afd7ed558ccdull;
    V ^= V >> 33;
    return V;
  }

private:
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a 64-bit offset basis.
};

/// One-shot hash for bulk buffers (file contents, cache payloads).
/// Word-at-a-time FNV-1a variant with a murmur-style finalizer: one
/// multiply per 8 bytes instead of per byte, which matters because
/// every warm cache run re-hashes all source text to build its keys.
/// Produces different values than the streaming Hasher — the two are
/// never mixed on the same datum.
inline uint64_t hashBytes(std::string_view Data) {
  uint64_t H = 0xcbf29ce484222325ull ^ (Data.size() * 0x100000001b3ull);
  const char *P = Data.data();
  size_t N = Data.size();
  while (N >= 8) {
    uint64_t Word;
    std::memcpy(&Word, P, 8);
    H = (H ^ Word) * 0x100000001b3ull;
    P += 8;
    N -= 8;
  }
  uint64_t Tail = 0;
  if (N != 0) {
    std::memcpy(&Tail, P, N);
    H = (H ^ Tail) * 0x100000001b3ull;
  }
  // Finalizer: FNV's multiply only diffuses upward, so fold the high
  // bits back down before the value is truncated or compared.
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  return H;
}

} // namespace dmm

#endif // DMM_CACHE_HASH_H
