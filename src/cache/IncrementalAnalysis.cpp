//===-- cache/IncrementalAnalysis.cpp - Summary-based pipeline ------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/IncrementalAnalysis.h"

#include "analysis/Summary.h"
#include "ast/ASTContext.h"
#include "cache/Hash.h"
#include "cache/SummaryCache.h"
#include "support/SourceManager.h"
#include "support/ThreadPool.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <unordered_map>

using namespace dmm;

uint64_t dmm::analysisConfigFingerprint(const AnalysisOptions &Options,
                                        uint32_t FormatVersion) {
  Hasher H;
  H.str(kToolVersion);
  H.u32(FormatVersion);
  H.u8(static_cast<uint8_t>(Options.CallGraph));
  H.u8(Options.AssumeDowncastsSafe ? 1 : 0);
  H.u8(static_cast<uint8_t>(Options.Sizeof));
  H.u8(Options.ExemptDeallocationArgs ? 1 : 0);
  H.u8(Options.UnionClosure ? 1 : 0);
  H.u8(Options.TreatWritesAsLive ? 1 : 0);
  H.u64(Options.InertFunctions.size());
  for (const std::string &Name : Options.InertFunctions) // std::set: sorted
    H.str(Name);
  return H.value();
}

uint64_t dmm::programStructureHash(const ASTContext &Ctx) {
  Hasher H;

  // Type spellings repeat heavily across parameter lists and fields;
  // Type::str() allocates, so hash each distinct Type object once and
  // feed the value. Object identity under-approximates type equality,
  // which only means an occasional duplicate spelling gets re-hashed —
  // the contribution stays deterministic.
  std::unordered_map<const Type *, uint64_t> TypeHashes;
  auto typeHash = [&](const Type *Ty) -> uint64_t {
    if (!Ty)
      return 0;
    auto [It, Inserted] = TypeHashes.try_emplace(Ty, 0);
    if (Inserted) {
      Hasher TH;
      TH.str(Ty->str());
      It->second = TH.value();
    }
    return It->second;
  };

  H.u64(Ctx.classes().size());
  for (const ClassDecl *CD : Ctx.classes()) {
    H.str(CD->name());
    H.u8(static_cast<uint8_t>(CD->tagKind()));
    H.u8(CD->isComplete() ? 1 : 0);
    H.u8(CD->isLibrary() ? 1 : 0);
    H.u64(CD->bases().size());
    for (const BaseSpecifier &BS : CD->bases()) {
      H.str(BS.Base->name());
      H.u8(BS.IsVirtual ? 1 : 0);
    }
    H.u64(CD->fields().size());
    for (const FieldDecl *F : CD->fields()) {
      H.str(F->name());
      H.u64(typeHash(F->type()));
      H.u8(F->isVolatile() ? 1 : 0);
    }
    H.u64(CD->methods().size());
    for (const MethodDecl *MD : CD->methods()) {
      H.str(MD->name());
      H.u8(MD->isVirtual() ? 1 : 0);
    }
  }

  H.u64(Ctx.functions().size());
  for (const FunctionDecl *FD : Ctx.functions()) {
    // The qualified name, without building it: owner and spelling are
    // length-prefixed separately, so the boundary stays unambiguous.
    const auto *MD = dyn_cast<MethodDecl>(FD);
    H.str(MD ? MD->parent()->name() : std::string_view());
    H.str(FD->name());
    H.u8(static_cast<uint8_t>(FD->builtinKind()));
    H.u64(typeHash(FD->returnType()));
    H.u64(FD->params().size());
    for (const ParamDecl *P : FD->params())
      H.u64(typeHash(P->type()));
  }

  H.u64(Ctx.globals().size());
  for (const VarDecl *GV : Ctx.globals()) {
    H.str(GV->name());
    H.u64(typeHash(GV->type()));
  }

  return H.value();
}

uint64_t dmm::environmentHash(const ASTContext &Ctx,
                              const AnalysisOptions &Options,
                              uint32_t FormatVersion) {
  Hasher H;
  H.u64(analysisConfigFingerprint(Options, FormatVersion));
  H.u64(programStructureHash(Ctx));
  return H.value();
}

std::optional<DeadMemberResult>
dmm::runSummaryAnalysis(const ASTContext &Ctx, const SourceManager &SM,
                        DeadMemberAnalysis &Analysis, const FunctionDecl *Main,
                        const AnalysisOptions &Options, SummaryCache *Cache,
                        std::string *Error) {
  const size_t NumFiles = SM.numBuffers();
  std::vector<FileSummary> Summaries;
  {
    Span Timer("summary.extract");
    const uint64_t EnvHash = environmentHash(
        Ctx, Options,
        Cache ? Cache->formatVersion() : kSummaryFormatVersion);
    // Per-file extraction is independent (pure AST reads), so files fan
    // out across the pool just like per-function scans do in run().
    Summaries = globalThreadPool().parallelMap<FileSummary>(
        NumFiles, [&](size_t I) {
          const uint32_t FileID = static_cast<uint32_t>(I + 1);
          Span FileSpan("summary.file");
          FileSpan.arg("file", std::string(SM.bufferName(FileID)));
          if (Cache) {
            const uint64_t ContentHash = hashBytes(SM.bufferText(FileID));
            FileSummary Summary;
            if (Cache->lookup(ContentHash, EnvHash, Summary)) {
              // Content-identical file under a new name: the facts are
              // name-keyed and unaffected, only the label needs fixing.
              Summary.FileName = std::string(SM.bufferName(FileID));
              FileSpan.arg("cached", uint64_t(1));
              return Summary;
            }
            Summary = extractFileSummary(Ctx, SM, FileID, Options);
            Cache->store(ContentHash, EnvHash, Summary);
            FileSpan.arg("cached", uint64_t(0));
            return Summary;
          }
          FileSpan.arg("cached", uint64_t(0));
          return extractFileSummary(Ctx, SM, FileID, Options);
        });
  }

  if (Cache) {
    const SummaryCache::Stats CS = Cache->stats();
    logDebug("summary extraction complete",
             {kv("files", NumFiles), kv("cache_hits", CS.Hits),
              kv("cache_misses", CS.Misses)});
  } else {
    logDebug("summary extraction complete", {kv("files", NumFiles)});
  }

  std::vector<std::pair<uint32_t, const FileSummary *>> Pairs;
  Pairs.reserve(NumFiles);
  for (size_t I = 0; I != NumFiles; ++I)
    Pairs.emplace_back(static_cast<uint32_t>(I + 1), &Summaries[I]);
  return Analysis.runWithSummaries(Main, Pairs, Error);
}
