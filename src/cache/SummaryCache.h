//===-- cache/SummaryCache.h - Persistent summary cache ---------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk cache of per-file analysis summaries (docs/CACHING.md).
///
/// Entries are keyed by (content hash of the file's text, environment
/// hash) — the environment hash folds in the analysis configuration,
/// tool and format versions, and the program structure hash (see
/// cache/IncrementalAnalysis.h). Both halves of the key appear in the
/// entry file name, so distinct configurations coexist in one
/// directory, and again in the entry header, so renamed or damaged
/// files are rejected. Every failure mode (missing file, bad magic,
/// version skew, checksum mismatch, truncation, decode error) degrades
/// to a miss; the caller re-extracts and overwrites.
///
/// Writes go to a per-process temporary file followed by an atomic
/// rename, so a crashed or concurrent writer can never publish a
/// partial entry. When the directory exceeds Config::MaxBytes after a
/// store, oldest entries (by modification time) are evicted until it
/// fits.
///
/// Counters (lookups/hits/misses/evictions/bytes) are kept internally
/// and flushed to the active Telemetry as cache.* by flushTelemetry().
/// All methods are thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CACHE_SUMMARYCACHE_H
#define DMM_CACHE_SUMMARYCACHE_H

#include "analysis/Summary.h"
#include "cache/SummaryIO.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace dmm {

class SummaryCache {
public:
  struct Config {
    std::string Dir;
    /// Evict oldest entries once the directory grows past this.
    uint64_t MaxBytes = 256ull << 20;
    /// Format version folded into entry headers. Overridable so tests
    /// can simulate a version bump without recompiling.
    uint32_t FormatVersion = kSummaryFormatVersion;
  };

  /// Counter snapshot (also exported as cache.* telemetry).
  struct Stats {
    uint64_t Lookups = 0;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    uint64_t Evictions = 0;
    uint64_t Bytes = 0; ///< Directory size after the last operation.
  };

  /// Creates \p C.Dir (and parents) if needed and sizes the existing
  /// contents. A directory that cannot be created disables the cache:
  /// every lookup misses and stores are dropped.
  explicit SummaryCache(Config C);

  /// Loads the entry keyed by (ContentHash, EnvHash) into \p Out.
  /// Returns false — a miss — if absent, stale, or corrupt.
  bool lookup(uint64_t ContentHash, uint64_t EnvHash, FileSummary &Out);

  /// Publishes \p Summary under (ContentHash, EnvHash). Failures (e.g.
  /// disk full) are silently dropped: the cache is an accelerator, not
  /// a store of record.
  void store(uint64_t ContentHash, uint64_t EnvHash,
             const FileSummary &Summary);

  Stats stats() const;

  /// Adds cache.{lookups,hits,misses,stores,evictions,bytes} to the
  /// active Telemetry, if any. Individual operations also record
  /// cache.lookup / cache.store / cache.evict spans with hit and byte
  /// attributes when telemetry is on.
  void flushTelemetry() const;

  const std::string &dir() const { return Cfg.Dir; }
  uint32_t formatVersion() const { return Cfg.FormatVersion; }

private:
  std::string entryPath(uint64_t ContentHash, uint64_t EnvHash) const;
  void evictIfOverBudget();

  Config Cfg;
  bool Usable = false;
  std::atomic<uint64_t> Lookups{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> Bytes{0};
  std::atomic<uint64_t> TmpCounter{0};
  std::mutex EvictionMutex;
};

} // namespace dmm

#endif // DMM_CACHE_SUMMARYCACHE_H
