//===-- cache/SummaryCache.cpp - Persistent summary cache -----------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/SummaryCache.h"

#include "cache/Hash.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#ifdef _WIN32
#include <process.h>
#define DMM_GETPID _getpid
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define DMM_GETPID getpid
#endif

using namespace dmm;

namespace fs = std::filesystem;

/// Reads a whole file into \p Out. POSIX builds use raw descriptors —
/// the warm path opens one cache entry per source file and iostream
/// setup dominates small reads; elsewhere, fall back to ifstream.
static bool readEntireFile(const std::string &Path, std::string &Out) {
#ifndef _WIN32
  const int FD = ::open(Path.c_str(), O_RDONLY);
  if (FD < 0)
    return false;
  struct stat St;
  if (::fstat(FD, &St) != 0 || St.st_size < 0) {
    ::close(FD);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done != Out.size()) {
    const ssize_t N = ::read(FD, Out.data() + Done, Out.size() - Done);
    if (N <= 0) {
      ::close(FD);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  ::close(FD);
  return true;
#else
  std::ifstream In(Path, std::ios::in | std::ios::binary);
  if (!In.is_open())
    return false;
  In.seekg(0, std::ios::end);
  const std::streamoff Size = In.tellg();
  if (Size < 0)
    return false;
  In.seekg(0, std::ios::beg);
  Out.resize(static_cast<size_t>(Size));
  In.read(Out.data(), Size);
  return In.gcount() == Size;
#endif
}

/// Entry header: magic, format version, both key hashes, payload
/// checksum, payload size. 40 bytes, followed by the payload.
static constexpr char kMagic[4] = {'D', 'M', 'S', 'C'};
static constexpr const char *kEntryExtension = ".dms";

static std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

SummaryCache::SummaryCache(Config C) : Cfg(std::move(C)) {
  std::error_code EC;
  fs::create_directories(Cfg.Dir, EC);
  Usable = !EC && fs::is_directory(Cfg.Dir, EC) && !EC;
  if (!Usable) {
    logWarn("summary cache directory unusable; caching disabled",
            {kv("dir", Cfg.Dir)});
    return;
  }
  uint64_t Total = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Cfg.Dir, EC)) {
    if (EC)
      break;
    if (Entry.path().extension() == kEntryExtension) {
      std::error_code SizeEC;
      uint64_t Size = Entry.file_size(SizeEC);
      if (!SizeEC)
        Total += Size;
    }
  }
  Bytes.store(Total);
}

std::string SummaryCache::entryPath(uint64_t ContentHash,
                                    uint64_t EnvHash) const {
  return (fs::path(Cfg.Dir) /
          (hex16(ContentHash) + "-" + hex16(EnvHash) + kEntryExtension))
      .string();
}

bool SummaryCache::lookup(uint64_t ContentHash, uint64_t EnvHash,
                          FileSummary &Out) {
  Span LookupSpan("cache.lookup");
  ++Lookups;
  auto Miss = [&] {
    ++Misses;
    LookupSpan.arg("hit", uint64_t(0));
    return false;
  };
  if (!Usable)
    return Miss();

  // Raw read, not iostreams: a warm run opens one entry per source
  // file, and stream construction alone costs several microseconds.
  std::string Data;
  if (!readEntireFile(entryPath(ContentHash, EnvHash), Data))
    return Miss();

  // Corrupt entries (bad magic, checksum, or payload) are abnormal —
  // they indicate torn writes or disk damage — so they warrant a log
  // event; a format-version mismatch just means an older tool wrote
  // the entry, which is routine after upgrades.
  auto Corrupt = [&](const char *Why) {
    logWarn("discarding corrupt summary cache entry",
            {kv("path", entryPath(ContentHash, EnvHash)), kv("why", Why)});
    return Miss();
  };

  ByteReader R(Data);
  char Magic[4];
  Magic[0] = static_cast<char>(R.u8());
  Magic[1] = static_cast<char>(R.u8());
  Magic[2] = static_cast<char>(R.u8());
  Magic[3] = static_cast<char>(R.u8());
  if (!R.ok() || !std::equal(Magic, Magic + 4, kMagic))
    return Corrupt("bad magic");
  if (R.u32() != Cfg.FormatVersion) {
    logDebug("ignoring summary cache entry with old format version",
             {kv("path", entryPath(ContentHash, EnvHash))});
    return Miss();
  }
  if (R.u64() != ContentHash || R.u64() != EnvHash)
    return Corrupt("key mismatch");
  const uint64_t Checksum = R.u64();
  const uint64_t PayloadSize = R.u64();
  if (!R.ok() || PayloadSize != R.remaining())
    return Corrupt("truncated payload");
  const std::string_view Payload(Data.data() + (Data.size() - PayloadSize),
                                 PayloadSize);
  if (hashBytes(Payload) != Checksum)
    return Corrupt("checksum mismatch");

  ByteReader PayloadReader(Payload);
  if (!decodeFileSummary(PayloadReader, Out))
    return Corrupt("undecodable payload");
  ++Hits;
  LookupSpan.arg("hit", uint64_t(1));
  LookupSpan.arg("bytes", Data.size());
  return true;
}

void SummaryCache::store(uint64_t ContentHash, uint64_t EnvHash,
                         const FileSummary &Summary) {
  if (!Usable)
    return;
  Span StoreSpan("cache.store");

  ByteWriter PayloadWriter;
  encodeFileSummary(Summary, PayloadWriter);
  const std::string Payload = PayloadWriter.take();

  ByteWriter W;
  for (char C : kMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(Cfg.FormatVersion);
  W.u64(ContentHash);
  W.u64(EnvHash);
  W.u64(hashBytes(Payload));
  W.u64(Payload.size());
  std::string Entry = W.take();
  Entry += Payload;

  // Write-to-temp + rename: readers and concurrent writers only ever
  // observe complete entries.
  const std::string TmpName = (fs::path(Cfg.Dir) /
                               ("tmp-" + std::to_string(DMM_GETPID()) + "-" +
                                std::to_string(TmpCounter.fetch_add(1)) +
                                ".part"))
                                  .string();
  {
    std::ofstream Tmp(TmpName, std::ios::out | std::ios::binary |
                                   std::ios::trunc);
    if (!Tmp.is_open()) {
      logWarn("summary cache store failed; cannot open temp file",
              {kv("path", TmpName)});
      return;
    }
    Tmp.write(Entry.data(), static_cast<std::streamsize>(Entry.size()));
    if (!Tmp.good()) {
      Tmp.close();
      std::error_code EC;
      fs::remove(TmpName, EC);
      logWarn("summary cache store failed; short write",
              {kv("path", TmpName)});
      return;
    }
  }
  std::error_code EC;
  fs::rename(TmpName, entryPath(ContentHash, EnvHash), EC);
  if (EC) {
    fs::remove(TmpName, EC);
    logWarn("summary cache store failed; rename failed",
            {kv("path", entryPath(ContentHash, EnvHash)),
             kv("error", EC.message())});
    return;
  }
  ++Stores;
  StoreSpan.arg("bytes", Entry.size());
  Bytes.fetch_add(Entry.size());
  if (Bytes.load() > Cfg.MaxBytes)
    evictIfOverBudget();
}

void SummaryCache::evictIfOverBudget() {
  Span EvictSpan("cache.evict");
  std::lock_guard<std::mutex> Lock(EvictionMutex);

  struct EntryInfo {
    fs::path Path;
    fs::file_time_type MTime;
    uint64_t Size = 0;
  };
  std::vector<EntryInfo> Entries;
  uint64_t Total = 0;
  std::error_code EC;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Cfg.Dir, EC)) {
    if (EC)
      return;
    if (Entry.path().extension() != kEntryExtension)
      continue;
    std::error_code StatEC;
    EntryInfo Info{Entry.path(), Entry.last_write_time(StatEC),
                   Entry.file_size(StatEC)};
    if (StatEC)
      continue;
    Total += Info.Size;
    Entries.push_back(std::move(Info));
  }
  // Rebase the running size on the real directory contents (concurrent
  // processes may have added or evicted entries since we last scanned).
  Bytes.store(Total);
  if (Total <= Cfg.MaxBytes)
    return;

  std::sort(Entries.begin(), Entries.end(),
            [](const EntryInfo &A, const EntryInfo &B) {
              return A.MTime < B.MTime;
            });
  uint64_t Removed = 0;
  for (const EntryInfo &Info : Entries) {
    if (Total <= Cfg.MaxBytes)
      break;
    std::error_code RemoveEC;
    if (fs::remove(Info.Path, RemoveEC) && !RemoveEC) {
      Total -= Info.Size;
      ++Evictions;
      ++Removed;
    }
  }
  EvictSpan.arg("removed", Removed);
  EvictSpan.arg("bytes", Total);
  Bytes.store(Total);
  logDebug("summary cache evicted entries",
           {kv("removed", Removed), kv("bytes", Total)});
}

SummaryCache::Stats SummaryCache::stats() const {
  Stats S;
  S.Lookups = Lookups.load();
  S.Hits = Hits.load();
  S.Misses = Misses.load();
  S.Stores = Stores.load();
  S.Evictions = Evictions.load();
  S.Bytes = Bytes.load();
  return S;
}

void SummaryCache::flushTelemetry() const {
  Telemetry *T = Telemetry::active();
  if (!T)
    return;
  const Stats S = stats();
  T->addCounter("cache.lookups", S.Lookups);
  T->addCounter("cache.hits", S.Hits);
  T->addCounter("cache.misses", S.Misses);
  T->addCounter("cache.stores", S.Stores);
  T->addCounter("cache.evictions", S.Evictions);
  T->addCounter("cache.bytes", S.Bytes);
}
