//===-- cache/Serialization.h - Bounded binary (de)serialization -*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian fixed-width binary encoding used by the summary cache.
/// The reader is defensive: every read is bounds-checked and element
/// counts are sanity-checked against the remaining payload, so a
/// truncated or bit-flipped cache entry degrades to a decode failure
/// (treated as a cache miss) rather than undefined behaviour or an
/// attempted multi-gigabyte allocation.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_CACHE_SERIALIZATION_H
#define DMM_CACHE_SERIALIZATION_H

#include <cstdint>
#include <string>
#include <string_view>

namespace dmm {

/// Appends fixed-width little-endian values to a byte string.
class ByteWriter {
public:
  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }

  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }

  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S.data(), S.size());
  }

  const std::string &data() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

/// Bounds-checked reader over a byte buffer. After any failed read the
/// reader is sticky-failed and every subsequent read returns zero
/// values, so decode loops terminate promptly; callers check ok() once
/// at the end (or before trusting a count).
class ByteReader {
public:
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  bool ok() const { return !Failed; }
  size_t remaining() const { return Data.size() - Pos; }

  uint8_t u8() {
    if (!require(1))
      return 0;
    return static_cast<uint8_t>(Data[Pos++]);
  }

  uint32_t u32() {
    uint32_t V = 0;
    if (!require(4))
      return 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
    return V;
  }

  uint64_t u64() {
    uint64_t Lo = u32();
    uint64_t Hi = u32();
    return Lo | (Hi << 32);
  }

  std::string str() {
    uint32_t Size = u32();
    if (!require(Size))
      return {};
    std::string S(Data.substr(Pos, Size));
    Pos += Size;
    return S;
  }

  /// Reads an element count and rejects values that could not possibly
  /// fit in the remaining payload (each element occupies at least
  /// \p MinElementSize bytes) — the guard against corrupt counts.
  uint32_t count(size_t MinElementSize) {
    uint32_t N = u32();
    if (MinElementSize != 0 && N > remaining() / MinElementSize) {
      Failed = true;
      return 0;
    }
    return N;
  }

  void fail() { Failed = true; }

private:
  bool require(size_t N) {
    if (Failed || N > remaining()) {
      Failed = true;
      return false;
    }
    return true;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace dmm

#endif // DMM_CACHE_SERIALIZATION_H
