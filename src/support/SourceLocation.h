//===-- support/SourceLocation.h - Source positions -------------*- C++ -*-==//
//
// Part of the deadmember project: a reproduction of Sweeney & Tip,
// "A Study of Dead Data Members in C++ Applications", PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source coordinates used by the lexer, parser, diagnostics,
/// and analysis reports. A SourceLocation identifies a (file, offset) pair;
/// the SourceManager maps it back to line/column for display.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_SOURCELOCATION_H
#define DMM_SUPPORT_SOURCELOCATION_H

#include <cstdint>

namespace dmm {

/// Identifies a position in a source file registered with a SourceManager.
///
/// FileID 0 with Offset 0 is the invalid (unknown) location, used for
/// synthesized constructs such as generated benchmark programs' implicit
/// declarations.
class SourceLocation {
public:
  SourceLocation() = default;
  SourceLocation(uint32_t FileID, uint32_t Offset)
      : File(FileID), Off(Offset) {}

  bool isValid() const { return File != 0; }
  uint32_t fileID() const { return File; }
  uint32_t offset() const { return Off; }

  friend bool operator==(SourceLocation A, SourceLocation B) {
    return A.File == B.File && A.Off == B.Off;
  }
  friend bool operator!=(SourceLocation A, SourceLocation B) {
    return !(A == B);
  }

private:
  uint32_t File = 0;
  uint32_t Off = 0;
};

/// A half-open range [Begin, End) of source text.
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;

  SourceRange() = default;
  SourceRange(SourceLocation B, SourceLocation E) : Begin(B), End(E) {}
  explicit SourceRange(SourceLocation Loc) : Begin(Loc), End(Loc) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace dmm

#endif // DMM_SUPPORT_SOURCELOCATION_H
