//===-- support/SourceFile.h - Named source buffer --------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A named in-memory source buffer, produced by file loading or by the
/// benchmark synthesizer and consumed by the frontend.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_SOURCEFILE_H
#define DMM_SUPPORT_SOURCEFILE_H

#include <string>

namespace dmm {

/// One named source buffer.
struct SourceFile {
  std::string Name;
  std::string Text;
  /// Classes defined in this file are library classes (paper sec. 3.3):
  /// the analysis will not classify their members.
  bool IsLibrary = false;
};

} // namespace dmm

#endif // DMM_SUPPORT_SOURCEFILE_H
