//===-- support/SourceManager.h - Source buffer registry --------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns source buffers and decodes SourceLocations into human-readable
/// (file, line, column) triples.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_SOURCEMANAGER_H
#define DMM_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace dmm {

/// Decoded position for display in diagnostics.
struct PresumedLoc {
  std::string_view Filename;
  unsigned Line = 0;   ///< 1-based.
  unsigned Column = 0; ///< 1-based.
  bool isValid() const { return Line != 0; }
};

/// Registry of in-memory source buffers.
///
/// Buffers are addressed by 1-based FileIDs; FileID 0 is reserved for the
/// invalid location. Buffers are stored by value so the manager is the
/// single owner of all source text for a compilation.
class SourceManager {
public:
  /// Registers \p Text under \p Name and returns its FileID.
  uint32_t addBuffer(std::string Name, std::string Text);

  /// Returns the full text of the buffer \p FileID. Asserts on bad IDs.
  std::string_view bufferText(uint32_t FileID) const;

  /// Returns the registered name of buffer \p FileID.
  std::string_view bufferName(uint32_t FileID) const;

  /// Number of registered buffers.
  size_t numBuffers() const { return Buffers.size(); }

  /// Decodes \p Loc into file/line/column. Returns an invalid PresumedLoc
  /// for the invalid location.
  PresumedLoc presumedLoc(SourceLocation Loc) const;

  /// Counts non-empty source lines in buffer \p FileID. Used by the
  /// Table 1 "lines of code" characteristic.
  unsigned countCodeLines(uint32_t FileID) const;

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    /// Byte offsets at which each line starts; computed on registration.
    std::vector<uint32_t> LineStarts;
  };
  std::vector<Buffer> Buffers;
};

} // namespace dmm

#endif // DMM_SUPPORT_SOURCEMANAGER_H
