//===-- support/Casting.h - isa/cast/dyn_cast -------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style checked casting templates over classes that implement the
/// `static bool classof(const Base *)` protocol. Used by the AST node
/// hierarchies (Type, Decl, Stmt, Expr).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_CASTING_H
#define DMM_SUPPORT_CASTING_H

#include <cassert>

namespace dmm {

/// Returns true if \p Val is an instance of To (or a subclass).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace dmm

#endif // DMM_SUPPORT_CASTING_H
