//===-- support/BitVector.h - Grow-on-demand dense bitset -------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, grow-on-demand bit set indexed by small integers (decl IDs).
/// Replaces pointer-keyed std::set on the analysis hot paths: liveness
/// marks, call-graph reachability, and sweep-visited sets are all "is
/// this decl in the set" queries, which a bitset answers with one load
/// instead of a red-black-tree walk.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_BITVECTOR_H
#define DMM_SUPPORT_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmm {

/// Dense bit set over unsigned indices. test() of an index beyond the
/// current size is false; set() grows as needed.
class BitVector {
public:
  bool test(size_t I) const {
    size_t W = I >> 6;
    return W < Words.size() && (Words[W] >> (I & 63)) & 1;
  }

  /// Sets bit \p I; returns true if it was newly set.
  bool set(size_t I) {
    size_t W = I >> 6;
    if (W >= Words.size())
      Words.resize(W + 1, 0);
    uint64_t Mask = uint64_t(1) << (I & 63);
    bool WasSet = Words[W] & Mask;
    Words[W] |= Mask;
    if (!WasSet)
      ++NumSet;
    return !WasSet;
  }

  /// Number of set bits.
  size_t count() const { return NumSet; }
  bool empty() const { return NumSet == 0; }

  void clear() {
    Words.clear();
    NumSet = 0;
  }

  /// Pre-sizes the backing store for indices < \p N (avoids regrowth in
  /// hot loops; not required for correctness).
  void reserve(size_t N) {
    size_t W = (N + 63) >> 6;
    if (W > Words.size())
      Words.resize(W, 0);
  }

private:
  std::vector<uint64_t> Words;
  size_t NumSet = 0;
};

} // namespace dmm

#endif // DMM_SUPPORT_BITVECTOR_H
