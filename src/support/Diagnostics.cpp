//===-- support/Diagnostics.cpp -------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <sstream>

using namespace dmm;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticsEngine::format(const Diagnostic &D) const {
  std::ostringstream SS;
  PresumedLoc P = SM.presumedLoc(D.Loc);
  if (P.isValid())
    SS << P.Filename << ":" << P.Line << ":" << P.Column << ": ";
  SS << kindName(D.Kind) << ": " << D.Message;
  return SS.str();
}

void DiagnosticsEngine::report(DiagKind Kind, SourceLocation Loc,
                               std::string Message) {
  Diagnostic D{Kind, Loc, std::move(Message)};
  if (Kind == DiagKind::Error)
    ++NumErrors;
  else if (Kind == DiagKind::Warning)
    ++NumWarnings;
  if (OS)
    *OS << format(D) << "\n";
  Diags.push_back(std::move(D));
}
