//===-- support/SourceManager.cpp -----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace dmm;

uint32_t SourceManager::addBuffer(std::string Name, std::string Text) {
  Buffer B;
  B.Name = std::move(Name);
  B.Text = std::move(Text);
  B.LineStarts.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(B.Text.size()); I != E; ++I)
    if (B.Text[I] == '\n')
      B.LineStarts.push_back(I + 1);
  Buffers.push_back(std::move(B));
  return static_cast<uint32_t>(Buffers.size()); // 1-based.
}

std::string_view SourceManager::bufferText(uint32_t FileID) const {
  assert(FileID >= 1 && FileID <= Buffers.size() && "bad FileID");
  return Buffers[FileID - 1].Text;
}

std::string_view SourceManager::bufferName(uint32_t FileID) const {
  assert(FileID >= 1 && FileID <= Buffers.size() && "bad FileID");
  return Buffers[FileID - 1].Name;
}

PresumedLoc SourceManager::presumedLoc(SourceLocation Loc) const {
  if (!Loc.isValid() || Loc.fileID() > Buffers.size())
    return PresumedLoc();
  const Buffer &B = Buffers[Loc.fileID() - 1];
  // Find the last line start <= offset.
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(),
                             Loc.offset());
  assert(It != B.LineStarts.begin() && "line table starts at offset 0");
  unsigned Line = static_cast<unsigned>(It - B.LineStarts.begin());
  uint32_t LineStart = *(It - 1);
  PresumedLoc P;
  P.Filename = B.Name;
  P.Line = Line;
  P.Column = Loc.offset() - LineStart + 1;
  return P;
}

unsigned SourceManager::countCodeLines(uint32_t FileID) const {
  std::string_view Text = bufferText(FileID);
  unsigned Count = 0;
  bool LineHasCode = false;
  for (char C : Text) {
    if (C == '\n') {
      if (LineHasCode)
        ++Count;
      LineHasCode = false;
      continue;
    }
    if (C != ' ' && C != '\t' && C != '\r')
      LineHasCode = true;
  }
  if (LineHasCode)
    ++Count;
  return Count;
}
