//===-- support/ThreadPool.cpp --------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

using namespace dmm;

namespace {
thread_local bool InPoolWorker = false;

// Context hooks (see PoolTaskContext in the header). Stored as three
// atomics so registration can race with pool startup; a loop uses the
// hooks only when all three were visible when it was published.
std::atomic<uint64_t (*)()> CtxCapture{nullptr};
std::atomic<uint64_t (*)(uint64_t)> CtxInstall{nullptr};
std::atomic<void (*)(uint64_t)> CtxRestore{nullptr};
} // namespace

void dmm::setPoolTaskContext(const PoolTaskContext &Hooks) {
  CtxCapture.store(Hooks.Capture, std::memory_order_relaxed);
  CtxInstall.store(Hooks.Install, std::memory_order_relaxed);
  CtxRestore.store(Hooks.Restore, std::memory_order_release);
}

/// One active parallelFor: an atomic index dispenser plus completion
/// accounting. Workers and the calling thread all pull from Next until
/// it reaches N.
struct ThreadPool::Loop {
  size_t N = 0;
  const std::function<void(size_t)> *Body = nullptr;

  std::atomic<size_t> Next{0};
  std::atomic<unsigned> ActiveWorkers{0};

  /// Context captured on the submitting thread (PoolTaskContext);
  /// installed on workers while they execute this loop's body.
  uint64_t Ctx = 0;
  bool HasCtx = false;

  std::mutex ErrMu;
  size_t FirstErrorIndex = ~size_t(0);
  std::exception_ptr FirstError;

  std::mutex DoneMu;
  std::condition_variable Done;
};

ThreadPool::ThreadPool(unsigned Jobs) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  NumJobs = Jobs;
  for (unsigned I = 1; I < NumJobs; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

bool ThreadPool::inWorker() { return InPoolWorker; }

void ThreadPool::runLoop(Loop &L) {
  for (;;) {
    size_t I = L.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= L.N)
      return;
    try {
      (*L.Body)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(L.ErrMu);
      if (I < L.FirstErrorIndex) {
        L.FirstErrorIndex = I;
        L.FirstError = std::current_exception();
      }
    }
  }
}

void ThreadPool::workerMain() {
  InPoolWorker = true;
  Loop *Joined = nullptr;
  for (;;) {
    Loop *L;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || (Current && Current != Joined);
      });
      if (ShuttingDown)
        return;
      L = Current;
      Joined = L; // Never re-join a loop this worker already drained.
      L->ActiveWorkers.fetch_add(1, std::memory_order_relaxed);
    }
    if (L->HasCtx) {
      // Inherit the submitting thread's context (innermost span) for
      // the duration of this loop, then restore the worker's own.
      uint64_t Saved = CtxInstall.load(std::memory_order_relaxed)(L->Ctx);
      runLoop(*L);
      CtxRestore.load(std::memory_order_relaxed)(Saved);
    } else {
      runLoop(*L);
    }
    // Decrement under DoneMu: the caller owns the Loop on its stack and
    // may destroy it the moment it observes ActiveWorkers == 0, so the
    // zero-crossing store and the notify must be inside the lock.
    {
      std::lock_guard<std::mutex> Lock(L->DoneMu);
      L->ActiveWorkers.fetch_sub(1, std::memory_order_acq_rel);
      L->Done.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  // Sequential pool, tiny loop, or nested call from a worker: run
  // inline. Exceptions propagate naturally.
  if (NumJobs == 1 || N == 1 || InPoolWorker) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }

  Loop L;
  L.N = N;
  L.Body = &Body;
  if (auto *Restore = CtxRestore.load(std::memory_order_acquire)) {
    (void)Restore;
    auto *Capture = CtxCapture.load(std::memory_order_relaxed);
    auto *Install = CtxInstall.load(std::memory_order_relaxed);
    if (Capture && Install) {
      L.Ctx = Capture();
      L.HasCtx = true;
    }
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Current = &L;
  }
  WakeWorkers.notify_all();

  // The calling thread is a worker too.
  runLoop(L);

  // Detach the loop so no further workers can join (joins happen under
  // Mu while Current == &L), then wait for the joined ones to drain.
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Current = nullptr;
  }
  {
    std::unique_lock<std::mutex> Lock(L.DoneMu);
    L.Done.wait(Lock, [&] {
      return L.ActiveWorkers.load(std::memory_order_acquire) == 0;
    });
  }

  if (L.FirstError)
    std::rethrow_exception(L.FirstError);
}

//===----------------------------------------------------------------------===//
// Global pool
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<ThreadPool> &globalPoolSlot() {
  static std::unique_ptr<ThreadPool> Pool;
  return Pool;
}

unsigned defaultJobs() {
  if (const char *Env = std::getenv("DMM_THREADS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return 0; // hardware concurrency
}

} // namespace

ThreadPool &dmm::globalThreadPool() {
  auto &Slot = globalPoolSlot();
  if (!Slot)
    Slot = std::make_unique<ThreadPool>(defaultJobs());
  return *Slot;
}

void dmm::setGlobalJobs(unsigned Jobs) {
  globalPoolSlot() = std::make_unique<ThreadPool>(Jobs ? Jobs : 0);
}
