//===-- support/Arena.h - Bump-pointer allocator ----------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena used by ASTContext. AST nodes are allocated
/// here and destroyed all at once when the context dies; nodes must be
/// trivially destructible or own no resources beyond arena memory.
/// (Our AST nodes hold std::string/std::vector, so the arena tracks and
/// runs destructors for registered objects.)
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_ARENA_H
#define DMM_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace dmm {

/// Bump allocator with destructor tracking.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    // Run destructors in reverse allocation order.
    for (auto It = Dtors.rbegin(), E = Dtors.rend(); It != E; ++It)
      It->Fn(It->Obj);
  }

  /// Allocates and constructs a T; its destructor runs when the arena dies.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Total bytes handed out (for statistics).
  size_t bytesAllocated() const { return Allocated; }

private:
  void *allocate(size_t Size, size_t Align) {
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    if (Aligned + Size > End) {
      size_t SlabSize = std::max<size_t>(DefaultSlabSize, Size + Align);
      Slabs.push_back(std::make_unique<char[]>(SlabSize));
      Cur = reinterpret_cast<uintptr_t>(Slabs.back().get());
      End = Cur + SlabSize;
      Aligned = (Cur + Align - 1) & ~(Align - 1);
    }
    Cur = Aligned + Size;
    Allocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  static constexpr size_t DefaultSlabSize = 64 * 1024;

  struct DtorRecord {
    void *Obj;
    void (*Fn)(void *);
  };

  std::vector<std::unique_ptr<char[]>> Slabs;
  std::vector<DtorRecord> Dtors;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t Allocated = 0;
};

} // namespace dmm

#endif // DMM_SUPPORT_ARENA_H
