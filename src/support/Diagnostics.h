//===-- support/Diagnostics.h - Diagnostic engine ---------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error/warning/note reporting for the MiniC++ frontend and the analysis
/// driver. Diagnostics are collected and optionally echoed to a stream so
/// tests can assert on exact messages.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_DIAGNOSTICS_H
#define DMM_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <ostream>
#include <string>
#include <vector>

namespace dmm {

class SourceManager;

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLocation Loc;
  std::string Message;
};

/// Collects diagnostics for a compilation.
///
/// Messages follow the LLVM style: lowercase first letter, no trailing
/// period.
class DiagnosticsEngine {
public:
  explicit DiagnosticsEngine(const SourceManager &SM, std::ostream *OS = nullptr)
      : SM(SM), OS(OS) {}

  void error(SourceLocation Loc, std::string Message) {
    report(DiagKind::Error, Loc, std::move(Message));
  }
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagKind::Warning, Loc, std::move(Message));
  }
  void note(SourceLocation Loc, std::string Message) {
    report(DiagKind::Note, Loc, std::move(Message));
  }

  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders \p D as "file:line:col: severity: message".
  std::string format(const Diagnostic &D) const;

private:
  void report(DiagKind Kind, SourceLocation Loc, std::string Message);

  const SourceManager &SM;
  std::ostream *OS;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace dmm

#endif // DMM_SUPPORT_DIAGNOSTICS_H
