//===-- support/InternedSetPool.h - Hash-consed small sets ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing for the repetitive sets a unification-based points-to
/// analysis produces (the set-deduplication idea from "Points-to
/// Analysis Using MDE": most nodes carry one of a handful of distinct
/// tag sets, so identical sets should share one canonical
/// representation). Values are interned to dense IDs; a set is a
/// canonical sorted vector of those IDs stored once and addressed by a
/// 32-bit SetID. Union and insert return an existing SetID when the
/// resulting content was seen before, so equality is an integer compare
/// and memory stays proportional to the number of *distinct* sets.
///
/// The pool tracks lookup/hit statistics so callers can export a dedup
/// hit-rate to telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_INTERNEDSETPOOL_H
#define DMM_SUPPORT_INTERNEDSETPOOL_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dmm {

/// Interns sets of T (a pointer-like value type). SetID 0 is the empty
/// set.
template <typename T> class InternedSetPool {
public:
  using SetID = uint32_t;
  static constexpr SetID Empty = 0;

  InternedSetPool() {
    Sets.emplace_back(); // SetID 0: the canonical empty set.
  }

  /// The set {V}.
  SetID singleton(T V) { return insert(Empty, V); }

  /// The set S ∪ {V}.
  SetID insert(SetID S, T V) {
    uint32_t Id = valueId(V);
    const std::vector<uint32_t> &Cur = Sets[S];
    if (std::binary_search(Cur.begin(), Cur.end(), Id))
      return S;
    std::vector<uint32_t> Next;
    Next.reserve(Cur.size() + 1);
    auto Pos = std::lower_bound(Cur.begin(), Cur.end(), Id);
    Next.insert(Next.end(), Cur.begin(), Pos);
    Next.push_back(Id);
    Next.insert(Next.end(), Pos, Cur.end());
    return intern(std::move(Next));
  }

  /// The set A ∪ B.
  SetID unionSets(SetID A, SetID B) {
    if (A == B || B == Empty)
      return A;
    if (A == Empty)
      return B;
    const std::vector<uint32_t> &SA = Sets[A];
    const std::vector<uint32_t> &SB = Sets[B];
    std::vector<uint32_t> Merged;
    Merged.reserve(SA.size() + SB.size());
    std::set_union(SA.begin(), SA.end(), SB.begin(), SB.end(),
                   std::back_inserter(Merged));
    if (Merged.size() == SA.size())
      return A; // B ⊆ A
    if (Merged.size() == SB.size())
      return B; // A ⊆ B
    return intern(std::move(Merged));
  }

  size_t size(SetID S) const { return Sets[S].size(); }

  /// Applies \p Fn to every member of \p S, in interning order of the
  /// values (deterministic per run).
  template <typename Fn> void forEach(SetID S, Fn &&F) const {
    for (uint32_t Id : Sets[S])
      F(Values[Id]);
  }

  /// \name Dedup statistics
  /// @{
  /// Number of distinct non-empty sets ever interned.
  size_t numUniqueSets() const { return Sets.size() - 1; }
  /// Times a union/insert asked for a set by content.
  uint64_t lookups() const { return Lookups; }
  /// Times the content already existed (shared instead of allocated).
  uint64_t hits() const { return Hits; }
  /// Approximate heap bytes held by the pool: vector capacities plus a
  /// node-based estimate for the two hash indexes. An occupancy
  /// snapshot for telemetry, not an exact measure.
  size_t occupancyBytes() const {
    size_t B = Values.capacity() * sizeof(T) +
               Sets.capacity() * sizeof(std::vector<uint32_t>);
    for (const std::vector<uint32_t> &S : Sets)
      B += S.capacity() * sizeof(uint32_t);
    B += ValueIds.bucket_count() * sizeof(void *) +
         ValueIds.size() * (sizeof(std::pair<T, uint32_t>) + sizeof(void *));
    B += SetIndex.bucket_count() * sizeof(void *) +
         SetIndex.size() *
             (sizeof(std::pair<uint64_t, SetID>) + sizeof(void *));
    return B;
  }
  /// @}

private:
  uint32_t valueId(T V) {
    auto [It, New] = ValueIds.try_emplace(V, Values.size());
    if (New)
      Values.push_back(V);
    return It->second;
  }

  SetID intern(std::vector<uint32_t> Content) {
    ++Lookups;
    uint64_t H = 1469598103934665603ull; // FNV-1a over the id words.
    for (uint32_t Id : Content) {
      H ^= Id;
      H *= 1099511628211ull;
    }
    auto Range = SetIndex.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It)
      if (Sets[It->second] == Content) {
        ++Hits;
        return It->second;
      }
    SetID New = static_cast<SetID>(Sets.size());
    Sets.push_back(std::move(Content));
    SetIndex.emplace(H, New);
    return New;
  }

  std::vector<T> Values;               ///< Dense value id -> value.
  std::unordered_map<T, uint32_t> ValueIds;
  std::vector<std::vector<uint32_t>> Sets; ///< SetID -> sorted value ids.
  std::unordered_multimap<uint64_t, SetID> SetIndex;
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
};

} // namespace dmm

#endif // DMM_SUPPORT_INTERNEDSETPOOL_H
