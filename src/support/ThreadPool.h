//===-- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool with a parallelFor/parallelMap API,
/// used to parallelize the embarrassingly-parallel pipeline stages
/// (per-file lexing, per-function analysis scans, per-benchmark
/// fan-out). Design constraints:
///
///  - Determinism is the caller's job: parallelFor only promises that
///    every index runs exactly once; callers produce per-index results
///    and merge them in index order so output is byte-identical to a
///    sequential run.
///  - A pool with jobs() == 1 never spawns threads and runs every body
///    inline on the calling thread — `--jobs=1` is exactly the
///    sequential pipeline.
///  - Nested parallelFor calls from inside a worker run inline (no
///    deadlock, no oversubscription).
///  - The first exception (by lowest index) thrown by a body is
///    rethrown on the calling thread after all workers drain.
///
/// The process-wide pool is configured once via setGlobalJobs() (driver
/// `--jobs=N` flag) or the DMM_THREADS environment variable, and
/// defaults to the hardware concurrency.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SUPPORT_THREADPOOL_H
#define DMM_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dmm {

/// Hooks that propagate a per-thread context value (the telemetry
/// layer's current span id) from the thread submitting a parallelFor to
/// the workers executing its body. The pool itself is context-agnostic:
/// it calls Capture() on the submitting thread when a loop is
/// published, Install(ctx) on each worker before it pulls indices
/// (returning the worker's previous value), and Restore(saved) after
/// the worker drains the loop. All three must be set or none; unset
/// hooks cost nothing. Registered once, before the first parallelFor
/// that should carry context (support/ cannot depend on telemetry/, so
/// the telemetry layer registers these at startup).
struct PoolTaskContext {
  uint64_t (*Capture)() = nullptr;
  uint64_t (*Install)(uint64_t Ctx) = nullptr;
  void (*Restore)(uint64_t Saved) = nullptr;
};

/// Installs the process-wide context hooks (see PoolTaskContext).
void setPoolTaskContext(const PoolTaskContext &Hooks);

/// Fixed set of worker threads executing parallelFor loops.
class ThreadPool {
public:
  /// \p Jobs total workers including the calling thread; 0 means
  /// hardware concurrency. The pool spawns Jobs-1 threads.
  explicit ThreadPool(unsigned Jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned jobs() const { return NumJobs; }

  /// Invokes \p Body(I) for every I in [0, N), distributing indices
  /// across the workers and the calling thread. Blocks until all
  /// indices completed. Rethrows the lowest-index exception, if any.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// parallelFor that collects one result per index, in index order.
  template <typename T, typename Fn>
  std::vector<T> parallelMap(size_t N, Fn &&Body) {
    std::vector<T> Results(N);
    parallelFor(N, [&](size_t I) { Results[I] = Body(I); });
    return Results;
  }

  /// True when called from one of this process' pool worker threads
  /// (any pool); nested parallel regions run inline.
  static bool inWorker();

private:
  struct Loop; ///< One active parallelFor (shared by its workers).

  void workerMain();
  /// Pulls indices from \p L until exhausted; records the first error.
  static void runLoop(Loop &L);

  unsigned NumJobs = 1;
  std::vector<std::thread> Workers;

  std::mutex Mu;
  std::condition_variable WakeWorkers;
  Loop *Current = nullptr; ///< Loop workers should join, or null.
  bool ShuttingDown = false;
};

/// The process-wide pool (lazily constructed). Pipeline stages pull
/// their parallelism from here so one `--jobs=N` flag governs all of
/// them.
ThreadPool &globalThreadPool();

/// Reconfigures the global pool's worker count (1 = sequential).
/// Replaces the pool; must not be called while a parallelFor is
/// running.
void setGlobalJobs(unsigned Jobs);

} // namespace dmm

#endif // DMM_SUPPORT_THREADPOOL_H
