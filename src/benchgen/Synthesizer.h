//===-- benchgen/Synthesizer.h - Benchmark program generator ----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generation of MiniC++ benchmark programs from a
/// BenchmarkSpec. The generated program reproduces the spec's *measured
/// characteristics* end to end:
///
///  - exactly NumClasses classes, NumUsedClasses of which are
///    instantiated, carrying exactly NumMembers data members;
///  - exactly round(TargetStaticDeadPct% * NumMembers) of those members
///    are dead, realized through the paper's dead-member causes:
///    write-only members (initialized in constructors), members that are
///    never accessed, members read only from unreachable functions, and
///    pointer members whose only use is being passed to delete;
///  - instantiation counts per class are calibrated (by bisection over a
///    size model) so that the dynamic dead-space percentage approximates
///    the spec's Table 2 profile, and a heap-retention fraction shapes
///    the high-water mark;
///  - filler functions pad the program to the spec's lines-of-code
///    count, exercising frontend throughput at realistic scale.
///
/// Generation is fully deterministic given Spec.Seed.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_BENCHGEN_SYNTHESIZER_H
#define DMM_BENCHGEN_SYNTHESIZER_H

#include "benchgen/BenchmarkSpec.h"
#include "support/SourceFile.h"

#include <vector>

namespace dmm {

/// A spec together with its program text.
struct GeneratedBenchmark {
  BenchmarkSpec Spec;
  std::vector<SourceFile> Files;
};

/// Synthesizes the program for \p Spec. \p Scale multiplies the object
/// counts (use < 1.0 for fast test runs; percentages are scale-invariant
/// by construction).
GeneratedBenchmark synthesizeBenchmark(const BenchmarkSpec &Spec,
                                       double Scale = 1.0);

/// The full eleven-program suite (synthesized + hand-written ports).
std::vector<GeneratedBenchmark> paperBenchmarkPrograms(double Scale = 1.0);

/// Hand-written MiniC++ ports of the two public-domain benchmarks.
const char *richardsSource();
const char *deltablueSource();

} // namespace dmm

#endif // DMM_BENCHGEN_SYNTHESIZER_H
