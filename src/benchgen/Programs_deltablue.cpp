//===-- benchgen/Programs_deltablue.cpp -----------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MiniC++ port of the DeltaBlue incremental dataflow constraint
/// solver (Freeman-Benson & Maloney), the paper's second small benchmark
/// (1,250 LoC, 10 classes, 23 data members, zero dead members). The port
/// follows the classic structure: a strength-ordered constraint graph
/// over variables, an incremental planner, and plan extraction/execution
/// over a chain of equality constraints. Every data member of a used
/// class is read on a reachable path; ScaleConstraint is deliberately
/// never instantiated (the paper reports two of deltablue's ten classes
/// as unused).
///
//===----------------------------------------------------------------------===//

#include "benchgen/Synthesizer.h"

const char *dmm::deltablueSource() {
  return R"MCC(// deltablue: incremental dataflow constraint solver (MiniC++ port).

// Strengths are small integers; lower value = stronger.
int REQUIRED = 0;
int STRONG_PREFERRED = 1;
int PREFERRED = 2;
int STRONG_DEFAULT = 3;
int NORMAL = 4;
int WEAK_DEFAULT = 5;
int WEAKEST = 6;

// Binary constraint directions.
int DIR_NONE = 0;
int DIR_FORWARD = 1;
int DIR_BACKWARD = 2;

bool stronger(int s1, int s2) { return s1 < s2; }
bool weaker(int s1, int s2) { return s1 > s2; }
int weakestOf(int s1, int s2) {
  if (weaker(s1, s2)) {
    return s1;
  }
  return s2;
}
int nextWeaker(int s) { return s + 1; }

class Constraint;
class Planner;

int g_nextCid = 0;

// A constrainable variable in the dataflow graph.
class Variable {
public:
  int value;
  Constraint *constraints[8];
  int nconstraints;
  Constraint *determinedBy;
  int mark;
  int walkStrength;
  bool stay;
  int id;
  int updateCount;

  Variable(int anId, int initial);
  void addConstraint(Constraint *c);
  void removeConstraint(Constraint *c);
};

Variable::Variable(int anId, int initial) {
  value = initial;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    constraints[i] = nullptr;
  }
  nconstraints = 0;
  determinedBy = nullptr;
  mark = 0;
  walkStrength = WEAKEST;
  stay = true;
  id = anId;
  updateCount = 0;
}

void Variable::addConstraint(Constraint *c) {
  constraints[nconstraints] = c;
  nconstraints = nconstraints + 1;
}

void Variable::removeConstraint(Constraint *c) {
  int i;
  int j = 0;
  for (i = 0; i < nconstraints; i = i + 1) {
    if (constraints[i] != c) {
      constraints[j] = constraints[i];
      j = j + 1;
    }
  }
  nconstraints = j;
  if (determinedBy == c) {
    determinedBy = nullptr;
  }
}

// Abstract base of all constraints.
class Constraint {
public:
  int strength;
  int cid;

  Constraint(int s);
  virtual bool isSatisfied();
  virtual void markUnsatisfied();
  virtual void addToGraph();
  virtual void removeFromGraph();
  virtual void chooseMethod(int mark);
  virtual void markInputs(int mark);
  virtual bool inputsKnown(int mark);
  virtual Variable *output();
  virtual void execute();
  virtual void recalculate();
  virtual bool isInput();
  void addConstraint(Planner *planner);
  Constraint *satisfy(int mark, Planner *planner);
  void destroyConstraint(Planner *planner);
};

Constraint::Constraint(int s) {
  strength = s;
  cid = g_nextCid;
  g_nextCid = g_nextCid + 1;
}

bool Constraint::isSatisfied() { return false; }
void Constraint::markUnsatisfied() {}
void Constraint::addToGraph() {}
void Constraint::removeFromGraph() {}
void Constraint::chooseMethod(int mark) {
  if (mark < 0) {
    print_int(mark);
  }
}
void Constraint::markInputs(int mark) {
  if (mark < 0) {
    print_int(mark);
  }
}
bool Constraint::inputsKnown(int mark) { return mark >= 0; }
Variable *Constraint::output() { return nullptr; }
void Constraint::execute() {}
void Constraint::recalculate() {}
bool Constraint::isInput() { return false; }

// Constraints over a single variable.
class UnaryConstraint : public Constraint {
public:
  Variable *myOutput;
  bool satisfied;

  UnaryConstraint(Variable *v, int s);
  virtual bool isSatisfied();
  virtual void markUnsatisfied();
  virtual void addToGraph();
  virtual void removeFromGraph();
  virtual void chooseMethod(int mark);
  virtual void markInputs(int mark);
  virtual bool inputsKnown(int mark);
  virtual Variable *output();
  virtual void recalculate();
};

UnaryConstraint::UnaryConstraint(Variable *v, int s) : Constraint(s) {
  myOutput = v;
  satisfied = false;
}

bool UnaryConstraint::isSatisfied() { return satisfied; }
void UnaryConstraint::markUnsatisfied() { satisfied = false; }

void UnaryConstraint::addToGraph() {
  myOutput->addConstraint(this);
  satisfied = false;
}

void UnaryConstraint::removeFromGraph() {
  if (myOutput != nullptr) {
    myOutput->removeConstraint(this);
  }
  satisfied = false;
}

void UnaryConstraint::chooseMethod(int mark) {
  satisfied = (myOutput->mark != mark) &&
              stronger(strength, myOutput->walkStrength);
}

void UnaryConstraint::markInputs(int mark) {
  if (mark < 0) {
    print_int(mark);
  }
}

bool UnaryConstraint::inputsKnown(int mark) { return mark >= 0; }

Variable *UnaryConstraint::output() { return myOutput; }

void UnaryConstraint::recalculate() {
  myOutput->walkStrength = strength;
  myOutput->stay = !isInput();
  if (myOutput->stay) {
    execute();
  }
}

// Marks a variable as wanting to keep its current value.
class StayConstraint : public UnaryConstraint {
public:
  StayConstraint(Variable *v, int s);
  virtual void execute();
};

StayConstraint::StayConstraint(Variable *v, int s) : UnaryConstraint(v, s) {}

// Stay constraints do nothing when executed: the output value is
// already correct.
void StayConstraint::execute() {}

// An input constraint: forces a variable to an externally chosen value.
class EditConstraint : public UnaryConstraint {
public:
  int pendingValue;

  EditConstraint(Variable *v, int s);
  virtual bool isInput();
  virtual void execute();
};

EditConstraint::EditConstraint(Variable *v, int s) : UnaryConstraint(v, s) {
  pendingValue = 0;
}

bool EditConstraint::isInput() { return true; }

void EditConstraint::execute() { myOutput->value = pendingValue; }

// Constraints over two variables.
class BinaryConstraint : public Constraint {
public:
  Variable *v1;
  Variable *v2;
  int direction;

  BinaryConstraint(Variable *a, Variable *b, int s);
  Variable *input();
  virtual bool isSatisfied();
  virtual void markUnsatisfied();
  virtual void addToGraph();
  virtual void removeFromGraph();
  virtual void chooseMethod(int mark);
  virtual void markInputs(int mark);
  virtual bool inputsKnown(int mark);
  virtual Variable *output();
  virtual void recalculate();
};

BinaryConstraint::BinaryConstraint(Variable *a, Variable *b, int s)
    : Constraint(s) {
  v1 = a;
  v2 = b;
  direction = DIR_NONE;
}

bool BinaryConstraint::isSatisfied() { return direction != DIR_NONE; }
void BinaryConstraint::markUnsatisfied() { direction = DIR_NONE; }

void BinaryConstraint::addToGraph() {
  v1->addConstraint(this);
  v2->addConstraint(this);
  direction = DIR_NONE;
}

void BinaryConstraint::removeFromGraph() {
  if (v1 != nullptr) {
    v1->removeConstraint(this);
  }
  if (v2 != nullptr) {
    v2->removeConstraint(this);
  }
  direction = DIR_NONE;
}

void BinaryConstraint::chooseMethod(int mark) {
  if (v1->mark == mark) {
    if (v2->mark != mark && stronger(strength, v2->walkStrength)) {
      direction = DIR_FORWARD;
    } else {
      direction = DIR_NONE;
    }
    return;
  }
  if (v2->mark == mark) {
    if (v1->mark != mark && stronger(strength, v1->walkStrength)) {
      direction = DIR_BACKWARD;
    } else {
      direction = DIR_NONE;
    }
    return;
  }
  if (weaker(v1->walkStrength, v2->walkStrength)) {
    if (stronger(strength, v1->walkStrength)) {
      direction = DIR_BACKWARD;
    } else {
      direction = DIR_NONE;
    }
  } else {
    if (stronger(strength, v2->walkStrength)) {
      direction = DIR_FORWARD;
    } else {
      direction = DIR_NONE;
    }
  }
}

Variable *BinaryConstraint::input() {
  if (direction == DIR_FORWARD) {
    return v1;
  }
  return v2;
}

Variable *BinaryConstraint::output() {
  if (direction == DIR_FORWARD) {
    return v2;
  }
  return v1;
}

void BinaryConstraint::markInputs(int mark) { input()->mark = mark; }

bool BinaryConstraint::inputsKnown(int mark) {
  Variable *i = input();
  return i->mark == mark || i->stay || i->determinedBy == nullptr;
}

void BinaryConstraint::recalculate() {
  Variable *ihn = input();
  Variable *out = output();
  out->walkStrength = weakestOf(strength, ihn->walkStrength);
  out->stay = ihn->stay;
  if (out->stay) {
    execute();
  }
}

// v1 == v2.
class EqualityConstraint : public BinaryConstraint {
public:
  EqualityConstraint(Variable *a, Variable *b, int s);
  virtual void execute();
};

EqualityConstraint::EqualityConstraint(Variable *a, Variable *b, int s)
    : BinaryConstraint(a, b, s) {}

void EqualityConstraint::execute() { output()->value = input()->value; }

// v2 == v1 * scale + offset. Present in the library but never
// instantiated by this application (the projection test is not run),
// mirroring the paper's two unused deltablue classes.
class ScaleConstraint : public BinaryConstraint {
public:
  Variable *scale;
  Variable *offset;

  ScaleConstraint(Variable *a, Variable *b, Variable *sc, Variable *o,
                  int s);
  virtual void execute();
  virtual void recalculate();
};

ScaleConstraint::ScaleConstraint(Variable *a, Variable *b, Variable *sc,
                                 Variable *o, int s)
    : BinaryConstraint(a, b, s) {
  scale = sc;
  offset = o;
}

void ScaleConstraint::execute() {
  if (direction == DIR_FORWARD) {
    v2->value = v1->value * scale->value + offset->value;
  } else {
    v1->value = (v2->value - offset->value) / scale->value;
  }
}

void ScaleConstraint::recalculate() {
  Variable *ihn = input();
  Variable *out = output();
  out->walkStrength = weakestOf(strength, ihn->walkStrength);
  out->stay = ihn->stay && scale->stay && offset->stay;
  if (out->stay) {
    execute();
  }
}

// An ordered list of constraints to execute.
class Plan {
public:
  Constraint *steps[128];
  int nsteps;
  int executed;

  Plan();
  void addConstraint(Constraint *c);
  void execute();
};

Plan::Plan() {
  nsteps = 0;
  executed = 0;
}

void Plan::addConstraint(Constraint *c) {
  steps[nsteps] = c;
  nsteps = nsteps + 1;
}

void Plan::execute() {
  int i;
  for (i = 0; i < nsteps; i = i + 1) {
    steps[i]->execute();
    executed = executed + 1;
  }
}

// The incremental planner.
class Planner {
public:
  int currentMark;
  int plansMade;
  int cidSum;

  Planner();
  int newMark();
  void incrementalAdd(Constraint *c);
  void incrementalRemove(Constraint *c);
  bool addPropagate(Constraint *c, int mark);
  void addConstraintsConsumingTo(Variable *v, Constraint **coll,
                                 int *ncoll);
  Plan *makePlan(Constraint **sources, int nsources);
  Plan *extractPlanFromConstraints(Constraint **constraints, int n);
};

Planner::Planner() {
  currentMark = 0;
  plansMade = 0;
  cidSum = 0;
}

int Planner::newMark() {
  currentMark = currentMark + 1;
  return currentMark;
}

void Planner::incrementalAdd(Constraint *c) {
  cidSum = cidSum + c->cid;
  int mark = newMark();
  Constraint *overridden = c->satisfy(mark, this);
  while (overridden != nullptr) {
    overridden = overridden->satisfy(newMark(), this);
  }
}

void Planner::addConstraintsConsumingTo(Variable *v, Constraint **coll,
                                        int *ncoll) {
  Constraint *determining = v->determinedBy;
  int i;
  for (i = 0; i < v->nconstraints; i = i + 1) {
    Constraint *c = v->constraints[i];
    if (c != determining && c->isSatisfied()) {
      coll[*ncoll] = c;
      *ncoll = *ncoll + 1;
    }
  }
}

bool Planner::addPropagate(Constraint *c, int mark) {
  Constraint *todo[128];
  int ntodo = 0;
  todo[ntodo] = c;
  ntodo = ntodo + 1;
  while (ntodo > 0) {
    ntodo = ntodo - 1;
    Constraint *d = todo[ntodo];
    if (d->output()->mark == mark) {
      incrementalRemove(c);
      return false;
    }
    d->recalculate();
    addConstraintsConsumingTo(d->output(), todo, &ntodo);
  }
  return true;
}

void Planner::incrementalRemove(Constraint *c) {
  Variable *out = c->output();
  c->markUnsatisfied();
  c->removeFromGraph();

  // removePropagateFrom(out):
  Constraint *unsatisfied[128];
  int nunsatisfied = 0;
  out->determinedBy = nullptr;
  out->walkStrength = WEAKEST;
  out->stay = true;
  Variable *todo[128];
  int ntodo = 0;
  todo[ntodo] = out;
  ntodo = ntodo + 1;
  while (ntodo > 0) {
    ntodo = ntodo - 1;
    Variable *v = todo[ntodo];
    int i;
    for (i = 0; i < v->nconstraints; i = i + 1) {
      Constraint *d = v->constraints[i];
      if (!d->isSatisfied()) {
        unsatisfied[nunsatisfied] = d;
        nunsatisfied = nunsatisfied + 1;
      }
    }
    Constraint *determining = v->determinedBy;
    for (i = 0; i < v->nconstraints; i = i + 1) {
      Constraint *next = v->constraints[i];
      if (next != determining && next->isSatisfied()) {
        next->recalculate();
        todo[ntodo] = next->output();
        ntodo = ntodo + 1;
      }
    }
  }

  int strength = REQUIRED;
  while (strength <= WEAKEST) {
    int i;
    for (i = 0; i < nunsatisfied; i = i + 1) {
      if (unsatisfied[i]->strength == strength) {
        incrementalAdd(unsatisfied[i]);
      }
    }
    strength = nextWeaker(strength);
  }
}

Plan *Planner::makePlan(Constraint **sources, int nsources) {
  plansMade = plansMade + 1;
  int mark = newMark();
  Plan *plan = new Plan();
  Constraint *todo[128];
  int ntodo = 0;
  int i;
  for (i = 0; i < nsources; i = i + 1) {
    todo[ntodo] = sources[i];
    ntodo = ntodo + 1;
  }
  while (ntodo > 0) {
    ntodo = ntodo - 1;
    Constraint *c = todo[ntodo];
    if (c->output()->mark != mark && c->inputsKnown(mark)) {
      plan->addConstraint(c);
      c->output()->mark = mark;
      addConstraintsConsumingTo(c->output(), todo, &ntodo);
    }
  }
  return plan;
}

Plan *Planner::extractPlanFromConstraints(Constraint **constraints, int n) {
  Constraint *sources[128];
  int nsources = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    Constraint *c = constraints[i];
    if (c->isInput() && c->isSatisfied()) {
      sources[nsources] = c;
      nsources = nsources + 1;
    }
  }
  return makePlan(sources, nsources);
}

void Constraint::addConstraint(Planner *planner) {
  addToGraph();
  planner->incrementalAdd(this);
}

Constraint *Constraint::satisfy(int mark, Planner *planner) {
  chooseMethod(mark);
  if (!isSatisfied()) {
    if (strength == REQUIRED) {
      print_str("failure: could not satisfy a required constraint");
    }
    return nullptr;
  }
  markInputs(mark);
  Variable *out = output();
  Constraint *overridden = out->determinedBy;
  if (overridden != nullptr) {
    overridden->markUnsatisfied();
  }
  out->determinedBy = this;
  if (!planner->addPropagate(this, mark)) {
    print_str("failure: cycle encountered");
    return nullptr;
  }
  out->mark = mark;
  return overridden;
}

void Constraint::destroyConstraint(Planner *planner) {
  if (isSatisfied()) {
    planner->incrementalRemove(this);
  } else {
    removeFromGraph();
  }
}

Planner *planner;

// Builds a chain of n equality constraints with an edit at the head and
// a stay at the tail, extracts a plan, and pumps values through it.
int chainTest(int n) {
  planner = new Planner();
  Variable *vars[64];
  int i;
  for (i = 0; i <= n; i = i + 1) {
    vars[i] = new Variable(i, 0);
  }
  for (i = 0; i < n; i = i + 1) {
    EqualityConstraint *eq =
        new EqualityConstraint(vars[i], vars[i + 1], REQUIRED);
    eq->addConstraint(planner);
  }
  Variable *first = vars[0];
  Variable *last = vars[n];

  StayConstraint *stay = new StayConstraint(last, STRONG_DEFAULT);
  stay->addConstraint(planner);

  EditConstraint *edit = new EditConstraint(first, PREFERRED);
  edit->addConstraint(planner);

  Constraint *editList[1];
  editList[0] = edit;
  Plan *plan = planner->extractPlanFromConstraints(editList, 1);

  int errors = 0;
  for (i = 0; i < 100; i = i + 1) {
    edit->pendingValue = i;
    first->updateCount = first->updateCount + 1;
    plan->execute();
    if (last->value != i) {
      errors = errors + 1;
    }
  }
  edit->destroyConstraint(planner);

  print_str("chain errors=");
  print_int(errors);
  print_str("last var id=");
  print_int(last->id);
  print_str("updates=");
  print_int(first->updateCount);
  print_str("plan steps=");
  print_int(plan->nsteps);
  print_str("plan executed=");
  print_int(plan->executed);
  print_str("plans made=");
  print_int(planner->plansMade);
  print_str("cid sum=");
  print_int(planner->cidSum);
  return errors;
}

int main() {
  int errors = 0;
  int round;
  for (round = 0; round < 3; round = round + 1) {
    errors = errors + chainTest(40);
  }
  print_str("deltablue errors=");
  print_int(errors);
  if (errors == 0) {
    return 0;
  }
  return 1;
}
)MCC";
}
