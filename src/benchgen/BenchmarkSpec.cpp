//===-- benchgen/BenchmarkSpec.cpp ----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchgen/BenchmarkSpec.h"

#include <cassert>
#include <cstdlib>

using namespace dmm;

std::vector<BenchmarkSpec> dmm::paperBenchmarks() {
  std::vector<BenchmarkSpec> Specs;
  auto Add = [&](BenchmarkSpec S) { Specs.push_back(std::move(S)); };

  {
    BenchmarkSpec S;
    S.Name = "jikes";
    S.Description = "Java source-to-bytecode compiler";
    S.TargetLoC = 58296;
    S.NumClasses = 268;
    S.NumUsedClasses = 161;
    S.NumMembers = 1052;
    S.TargetStaticDeadPct = 8.0; // Reconstructed.
    S.PaperObjectSpace = 2921490;
    S.PaperDeadSpace = 87645;    // Reconstructed (~3%).
    S.PaperHighWaterMark = 2179730;
    S.PaperHighWaterMarkNoDead = 2113000; // Reconstructed.
    S.Seed = 101;
    S.HeapRetention = 0.72;
    S.DeadInHotFraction = 0.35;
    S.TargetObjects = 20000;
    S.InheritanceFraction = 0.45;
    S.StructFraction = 0.1;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "idl";
    S.Description = "SunSoft IDL compiler front end (heavy virtual "
                    "inheritance)";
    S.TargetLoC = 30941; // Reconstructed.
    S.NumClasses = 82;
    S.NumUsedClasses = 48;
    S.NumMembers = 312;
    S.TargetStaticDeadPct = 7.0; // Reconstructed.
    S.PaperObjectSpace = 708249;
    S.PaperDeadSpace = 15388;
    S.PaperHighWaterMark = 701273;
    S.PaperHighWaterMarkNoDead = 686886;
    S.Seed = 102;
    S.HeapRetention = 0.99;
    S.DeadInHotFraction = 0.3;
    S.TargetObjects = 8000;
    S.InheritanceFraction = 0.6;
    S.StructFraction = 0.05;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "npic";
    S.Description = "Numerical particle-in-cell simulation (reconstructed "
                    "description)";
    S.TargetLoC = 12000; // Reconstructed.
    S.NumClasses = 31;   // Reconstructed.
    S.NumUsedClasses = 22;
    S.NumMembers = 150;
    S.TargetStaticDeadPct = 9.0; // Reconstructed.
    S.PaperObjectSpace = 115248;
    S.PaperDeadSpace = 5616;
    S.PaperHighWaterMark = 24972;
    S.PaperHighWaterMarkNoDead = 23840;
    S.Seed = 103;
    S.HeapRetention = 0.18;
    S.DeadInHotFraction = 0.5;
    S.TargetObjects = 2500;
    S.InheritanceFraction = 0.3;
    S.StructFraction = 0.25;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "lcom";
    S.Description = "Compiler for the L hardware description language";
    S.TargetLoC = 17278; // Reconstructed.
    S.NumClasses = 72;   // Reconstructed.
    S.NumUsedClasses = 51;
    S.NumMembers = 362;
    S.TargetStaticDeadPct = 10.0; // Reconstructed.
    S.PaperObjectSpace = 2274956;
    S.PaperDeadSpace = 241435;
    S.PaperHighWaterMark = 1652828;
    S.PaperHighWaterMarkNoDead = 1491048;
    S.Seed = 104;
    S.HeapRetention = 0.70;
    S.DeadInHotFraction = 0.75;
    S.TargetObjects = 15000;
    S.InheritanceFraction = 0.4;
    S.StructFraction = 0.15;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "taldict";
    S.Description = "Taligent dictionary benchmark (general-purpose "
                    "collection class library)";
    S.TargetLoC = 8566; // Reconstructed.
    S.NumClasses = 56;  // Reconstructed.
    S.NumUsedClasses = 30;
    S.NumMembers = 290;
    S.TargetStaticDeadPct = 27.3; // The paper's maximum.
    S.UsesClassLibrary = true;
    S.PaperObjectSpace = 7080;
    S.PaperDeadSpace = 36;
    S.PaperHighWaterMark = 6998; // Reconstructed (garbled in the copy).
    S.PaperHighWaterMarkNoDead = 6972;
    S.Seed = 105;
    S.HeapRetention = 0.97;
    S.DeadInHotFraction = 0.02;
    S.TargetObjects = 9000;
    S.InheritanceFraction = 0.5;
    S.StructFraction = 0.0;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "ixx";
    S.Description = "IDL-to-C++ stub-code generator (Fresco)";
    S.TargetLoC = 11600; // Reconstructed.
    S.NumClasses = 90;   // Reconstructed.
    S.NumUsedClasses = 60;
    S.NumMembers = 420;
    S.TargetStaticDeadPct = 6.0; // Reconstructed.
    S.PaperObjectSpace = 551160;
    S.PaperDeadSpace = 29745;
    S.PaperHighWaterMark = 299516;
    S.PaperHighWaterMarkNoDead = 269775;
    S.Seed = 106;
    S.HeapRetention = 0.52;
    S.DeadInHotFraction = 0.8;
    S.TargetObjects = 6000;
    S.InheritanceFraction = 0.4;
    S.StructFraction = 0.1;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "simulate";
    S.Description = "Simula-style simulation class library and application";
    S.TargetLoC = 6400; // Reconstructed.
    S.NumClasses = 46;  // Reconstructed.
    S.NumUsedClasses = 24;
    S.NumMembers = 220;
    S.TargetStaticDeadPct = 24.0; // Reconstructed (library-using: high).
    S.UsesClassLibrary = true;
    S.PaperObjectSpace = 64869;
    S.PaperDeadSpace = 41;
    S.PaperHighWaterMark = 11586;
    S.PaperHighWaterMarkNoDead = 11544; // Reconstructed (garbled).
    S.Seed = 107;
    S.HeapRetention = 0.15;
    S.DeadInHotFraction = 0.0;
    S.TargetObjects = 8000;
    S.InheritanceFraction = 0.55;
    S.StructFraction = 0.0;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "sched";
    S.Description = "RS/6000 instruction scheduler (struct-heavy, little "
                    "inheritance)";
    S.TargetLoC = 5712; // Reconstructed.
    S.NumClasses = 24;  // Reconstructed.
    S.NumUsedClasses = 18;
    S.NumMembers = 140;
    S.TargetStaticDeadPct = 3.0; // The paper's minimum.
    S.PaperObjectSpace = 9032676;
    S.PaperDeadSpace = 1049148; // 11.6%: the paper's dynamic maximum.
    S.PaperHighWaterMark = 9032676; // == object space (allocate and hold).
    S.PaperHighWaterMarkNoDead = 7983528;
    S.Seed = 108;
    S.HeapRetention = 1.0;
    S.DeadInHotFraction = 1.0;
    S.TargetObjects = 40000;
    S.InheritanceFraction = 0.05;
    S.StructFraction = 0.8;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "hotwire";
    S.Description = "Scriptable graphical presentation builder";
    S.TargetLoC = 5355;
    S.NumClasses = 37;
    S.NumUsedClasses = 21;
    S.NumMembers = 166;
    S.TargetStaticDeadPct = 18.2; // Reconstructed (library-using: high).
    S.UsesClassLibrary = true;
    S.PaperObjectSpace = 10780;
    S.PaperDeadSpace = 284;
    S.PaperHighWaterMark = 10780; // == object space.
    S.PaperHighWaterMarkNoDead = 10496;
    S.Seed = 109;
    S.HeapRetention = 1.0;
    S.DeadInHotFraction = 0.1;
    S.TargetObjects = 2200;
    S.InheritanceFraction = 0.45;
    S.StructFraction = 0.0;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "deltablue";
    S.Description = "Incremental dataflow constraint solver";
    S.HandWritten = true;
    S.TargetLoC = 1250;
    S.NumClasses = 10;
    S.NumUsedClasses = 8;
    S.NumMembers = 23;
    S.TargetStaticDeadPct = 0.0;
    S.PaperObjectSpace = 276364;
    S.PaperDeadSpace = 0;
    S.PaperHighWaterMark = 196212;
    S.PaperHighWaterMarkNoDead = 196212;
    Add(S);
  }
  {
    BenchmarkSpec S;
    S.Name = "richards";
    S.Description = "Simple operating system simulator";
    S.HandWritten = true;
    S.TargetLoC = 606;
    S.NumClasses = 12;
    S.NumUsedClasses = 12;
    S.NumMembers = 28;
    S.TargetStaticDeadPct = 0.0;
    S.PaperObjectSpace = 4889;
    S.PaperDeadSpace = 0;
    S.PaperHighWaterMark = 4880;
    S.PaperHighWaterMarkNoDead = 4880;
    Add(S);
  }

  return Specs;
}

BenchmarkSpec dmm::benchmarkByName(const std::string &Name) {
  for (BenchmarkSpec &S : paperBenchmarks())
    if (S.Name == Name)
      return S;
  assert(false && "unknown benchmark name");
  std::abort();
}
