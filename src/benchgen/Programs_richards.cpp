//===-- benchgen/Programs_richards.cpp ------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MiniC++ port of Martin Richards' operating-system simulation
/// benchmark (the paper's smallest program: 606 LoC, 12 classes, 28 data
/// members, zero dead members). The port follows the classic structure:
/// a scheduler multiplexes idle/worker/handler/device tasks exchanging
/// packets. Every data member is read on a path reachable from main, so
/// the analysis must classify all 28 as live.
///
//===----------------------------------------------------------------------===//

#include "benchgen/Synthesizer.h"

const char *dmm::richardsSource() {
  return R"MCC(// richards: simple operating system simulator (MiniC++ port).
// Martin Richards' benchmark, following the widely used OO adaptation.

int ID_IDLE = 0;
int ID_WORKER = 1;
int ID_HANDLER_A = 2;
int ID_HANDLER_B = 3;
int ID_DEVICE_A = 4;
int ID_DEVICE_B = 5;
int NUMBER_OF_IDS = 6;

int KIND_DEVICE = 0;
int KIND_WORK = 1;

int STATE_RUNNING = 0;
int STATE_RUNNABLE = 1;
int STATE_SUSPENDED = 2;
int STATE_HELD = 4;

int DATA_SIZE = 4;
int COUNT = 1000;

// Expected results for COUNT == 1000.
int EXPECTED_QUEUE_COUNT = 2322;
int EXPECTED_HOLD_COUNT = 928;

class Scheduler;
class TaskControlBlock;
class Packet;

// A unit of work flowing between tasks.
class Packet {
public:
  Packet *link;
  int id;
  int kind;
  int a1;
  int a2[4];

  Packet(Packet *l, int anId, int aKind);
  Packet *addTo(Packet *queue);
};

Packet::Packet(Packet *l, int anId, int aKind) {
  link = l;
  id = anId;
  kind = aKind;
  a1 = 0;
  int i;
  for (i = 0; i < DATA_SIZE; i = i + 1) {
    a2[i] = 0;
  }
}

// Appends this packet at the end of the given queue.
Packet *Packet::addTo(Packet *queue) {
  link = nullptr;
  if (queue == nullptr) {
    return this;
  }
  Packet *peek;
  Packet *next = queue;
  peek = next->link;
  while (peek != nullptr) {
    next = peek;
    peek = next->link;
  }
  next->link = this;
  return queue;
}

// Holds a task's scheduling state word.
class TaskState {
public:
  int state;

  TaskState();
  void setRunning();
  void setRunnable();
  void markAsSuspended();
  void markAsRunnable();
  void markAsHeld();
  void markAsNotHeld();
  bool isHeldOrSuspended();
  bool isSuspendedRunnable();
  bool isSuspended();
};

TaskState::TaskState() { state = STATE_SUSPENDED; }
void TaskState::setRunning() { state = STATE_RUNNING; }
void TaskState::setRunnable() { state = STATE_RUNNABLE; }
void TaskState::markAsSuspended() { state = state | STATE_SUSPENDED; }
void TaskState::markAsRunnable() { state = state | STATE_RUNNABLE; }
void TaskState::markAsHeld() { state = state | STATE_HELD; }
void TaskState::markAsNotHeld() { state = state & (~STATE_HELD); }
bool TaskState::isHeldOrSuspended() {
  return ((state & STATE_HELD) != 0) ||
         (state == STATE_SUSPENDED);
}
bool TaskState::isSuspendedRunnable() {
  return state == (STATE_SUSPENDED | STATE_RUNNABLE);
}
bool TaskState::isSuspended() { return state == STATE_SUSPENDED; }

// The behaviour attached to a task control block.
class Task {
public:
  virtual TaskControlBlock *run(Packet *packet);
};

// Prints scheduler trace events when enabled.
class Tracer {
public:
  int enabled;

  Tracer();
  void trace(int id);
};

Tracer::Tracer() { enabled = 0; }

void Tracer::trace(int id) {
  if (enabled != 0) {
    print_int(id);
  }
}

// Scrambles worker payload data deterministically.
class SeedGenerator {
public:
  int seed;

  SeedGenerator(int s);
  int nextValue(int limit);
};

SeedGenerator::SeedGenerator(int s) { seed = s; }

int SeedGenerator::nextValue(int limit) {
  seed = (seed * 131 + 7) % 1009;
  return seed % limit;
}

// One schedulable entity: links the state word with a Task behaviour.
class TaskControlBlock : public TaskState {
public:
  TaskControlBlock *link;
  int id;
  int priority;
  Packet *queue;
  Task *task;

  TaskControlBlock(TaskControlBlock *aLink, int anId, int aPriority,
                   Packet *aQueue, Task *aTask);
  TaskControlBlock *run();
  TaskControlBlock *checkPriorityAdd(TaskControlBlock *other,
                                     Packet *packet);
};

TaskControlBlock::TaskControlBlock(TaskControlBlock *aLink, int anId,
                                   int aPriority, Packet *aQueue,
                                   Task *aTask) {
  link = aLink;
  id = anId;
  priority = aPriority;
  queue = aQueue;
  task = aTask;
  if (queue == nullptr) {
    state = STATE_SUSPENDED;
  } else {
    state = STATE_SUSPENDED | STATE_RUNNABLE;
  }
}

TaskControlBlock *TaskControlBlock::run() {
  Packet *packet;
  if (isSuspendedRunnable()) {
    packet = queue;
    queue = packet->link;
    if (queue == nullptr) {
      setRunning();
    } else {
      setRunnable();
    }
  } else {
    packet = nullptr;
  }
  return task->run(packet);
}

// Adds a packet to this task's queue; preempts when this task has a
// higher priority than the other (currently running) task.
TaskControlBlock *
TaskControlBlock::checkPriorityAdd(TaskControlBlock *other,
                                   Packet *packet) {
  if (queue == nullptr) {
    queue = packet;
    markAsRunnable();
    if (priority > other->priority) {
      return this;
    }
  } else {
    queue = packet->addTo(queue);
  }
  return other;
}

// The round-robin scheduler.
class Scheduler {
public:
  TaskControlBlock *tcbList;
  TaskControlBlock *currentTcb;
  int currentId;
  int queueCount;
  int holdCount;
  TaskControlBlock *table[6];
  Tracer *tracer;

  Scheduler();
  void addTask(int id, int priority, Packet *queue, Task *task);
  void schedule();
  TaskControlBlock *release(int id);
  TaskControlBlock *holdCurrent();
  TaskControlBlock *suspendCurrent();
  TaskControlBlock *queuePacket(Packet *packet);
};

Scheduler::Scheduler() {
  tcbList = nullptr;
  currentTcb = nullptr;
  currentId = 0;
  queueCount = 0;
  holdCount = 0;
  int i;
  for (i = 0; i < NUMBER_OF_IDS; i = i + 1) {
    table[i] = nullptr;
  }
  tracer = new Tracer();
}

void Scheduler::addTask(int id, int priority, Packet *queue, Task *task) {
  tcbList = new TaskControlBlock(tcbList, id, priority, queue, task);
  table[id] = tcbList;
}

void Scheduler::schedule() {
  currentTcb = tcbList;
  while (currentTcb != nullptr) {
    if (currentTcb->isHeldOrSuspended()) {
      currentTcb = currentTcb->link;
    } else {
      currentId = currentTcb->id;
      tracer->trace(currentId);
      currentTcb = currentTcb->run();
    }
  }
}

TaskControlBlock *Scheduler::release(int id) {
  TaskControlBlock *tcb = table[id];
  if (tcb == nullptr) {
    return tcb;
  }
  tcb->markAsNotHeld();
  if (tcb->priority > currentTcb->priority) {
    return tcb;
  }
  return currentTcb;
}

TaskControlBlock *Scheduler::holdCurrent() {
  holdCount = holdCount + 1;
  currentTcb->markAsHeld();
  return currentTcb->link;
}

TaskControlBlock *Scheduler::suspendCurrent() {
  currentTcb->markAsSuspended();
  return currentTcb;
}

TaskControlBlock *Scheduler::queuePacket(Packet *packet) {
  TaskControlBlock *t = table[packet->id];
  if (t == nullptr) {
    return t;
  }
  queueCount = queueCount + 1;
  packet->link = nullptr;
  packet->id = currentId;
  return t->checkPriorityAdd(currentTcb, packet);
}

Scheduler *g_sched;

// The idle task repeatedly releases one of the two devices.
class IdleTask : public Task {
public:
  int control;
  int count;

  IdleTask(int c, int n);
  virtual TaskControlBlock *run(Packet *packet);
};

IdleTask::IdleTask(int c, int n) {
  control = c;
  count = n;
}

TaskControlBlock *IdleTask::run(Packet *packet) {
  if (packet != nullptr) {
    packet->link = nullptr;
  }
  count = count - 1;
  if (count == 0) {
    return g_sched->holdCurrent();
  }
  if ((control & 1) == 0) {
    control = control / 2;
    return g_sched->release(ID_DEVICE_A);
  }
  control = (control / 2) ^ 53256;
  return g_sched->release(ID_DEVICE_B);
}

// The worker task fills packets with data and ships them to handlers.
class WorkerTask : public Task {
public:
  int destination;
  int count;

  WorkerTask(int d, int n);
  virtual TaskControlBlock *run(Packet *packet);
};

WorkerTask::WorkerTask(int d, int n) {
  destination = d;
  count = n;
}

TaskControlBlock *WorkerTask::run(Packet *packet) {
  if (packet == nullptr) {
    return g_sched->suspendCurrent();
  }
  if (destination == ID_HANDLER_A) {
    destination = ID_HANDLER_B;
  } else {
    destination = ID_HANDLER_A;
  }
  packet->id = destination;
  packet->a1 = 0;
  int i;
  for (i = 0; i < DATA_SIZE; i = i + 1) {
    count = count + 1;
    if (count > 26) {
      count = 1;
    }
    packet->a2[i] = 97 + count - 1;
  }
  return g_sched->queuePacket(packet);
}

// Handler tasks route work packets through device packets.
class HandlerTask : public Task {
public:
  Packet *workIn;
  Packet *deviceIn;

  HandlerTask();
  virtual TaskControlBlock *run(Packet *packet);
};

HandlerTask::HandlerTask() {
  workIn = nullptr;
  deviceIn = nullptr;
}

TaskControlBlock *HandlerTask::run(Packet *packet) {
  if (packet != nullptr) {
    if (packet->kind == KIND_WORK) {
      workIn = packet->addTo(workIn);
    } else {
      deviceIn = packet->addTo(deviceIn);
    }
  }
  if (workIn != nullptr) {
    Packet *workPacket = workIn;
    int count = workPacket->a1;
    if (count >= DATA_SIZE) {
      workIn = workPacket->link;
      return g_sched->queuePacket(workPacket);
    }
    if (deviceIn != nullptr) {
      Packet *devicePacket = deviceIn;
      deviceIn = devicePacket->link;
      devicePacket->a1 = workPacket->a2[count];
      workPacket->a1 = count + 1;
      return g_sched->queuePacket(devicePacket);
    }
  }
  return g_sched->suspendCurrent();
}

// Device tasks hand packets back to the idle loop.
class DeviceTask : public Task {
public:
  Packet *pending;

  DeviceTask();
  virtual TaskControlBlock *run(Packet *packet);
};

DeviceTask::DeviceTask() { pending = nullptr; }

TaskControlBlock *DeviceTask::run(Packet *packet) {
  if (packet == nullptr) {
    if (pending == nullptr) {
      return g_sched->suspendCurrent();
    }
    Packet *v = pending;
    pending = nullptr;
    return g_sched->queuePacket(v);
  }
  pending = packet;
  return g_sched->holdCurrent();
}

// The benchmark harness: builds the task graph and checks the counters.
class RBench {
public:
  int result;

  RBench();
  int runBenchmark();
};

RBench::RBench() { result = 0; }

int RBench::runBenchmark() {
  g_sched = new Scheduler();

  g_sched->addTask(ID_IDLE, 0, nullptr,
                   new IdleTask(1, COUNT));
  // The idle task starts out running (addRunningTask in the original).
  g_sched->tcbList->setRunning();

  Packet *queue = new Packet(nullptr, ID_WORKER, KIND_WORK);
  queue = new Packet(queue, ID_WORKER, KIND_WORK);
  g_sched->addTask(ID_WORKER, 1000, queue,
                   new WorkerTask(ID_HANDLER_A, 0));

  queue = new Packet(nullptr, ID_DEVICE_A, KIND_DEVICE);
  queue = new Packet(queue, ID_DEVICE_A, KIND_DEVICE);
  queue = new Packet(queue, ID_DEVICE_A, KIND_DEVICE);
  g_sched->addTask(ID_HANDLER_A, 2000, queue, new HandlerTask());

  queue = new Packet(nullptr, ID_DEVICE_B, KIND_DEVICE);
  queue = new Packet(queue, ID_DEVICE_B, KIND_DEVICE);
  queue = new Packet(queue, ID_DEVICE_B, KIND_DEVICE);
  g_sched->addTask(ID_HANDLER_B, 3000, queue, new HandlerTask());

  g_sched->addTask(ID_DEVICE_A, 4000, nullptr, new DeviceTask());
  g_sched->addTask(ID_DEVICE_B, 5000, nullptr, new DeviceTask());

  g_sched->schedule();

  SeedGenerator *gen = new SeedGenerator(42);
  int fuzz = gen->nextValue(2);

  result = 0;
  if (g_sched->queueCount == EXPECTED_QUEUE_COUNT) {
    if (g_sched->holdCount == EXPECTED_HOLD_COUNT) {
      result = 1;
    }
  }
  print_str("queueCount=");
  print_int(g_sched->queueCount);
  print_str("holdCount=");
  print_int(g_sched->holdCount);
  print_str("fuzz=");
  print_int(fuzz);
  return result;
}

int main() {
  RBench *bench = new RBench();
  int ok = bench->runBenchmark();
  print_str("richards ok=");
  print_int(ok);
  delete bench;
  if (ok == 1) {
    return 0;
  }
  return 1;
}
)MCC";
}
