//===-- benchgen/Synthesizer.cpp ------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "benchgen/Synthesizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace dmm;

namespace {

/// xorshift64* deterministic RNG.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ULL) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }
  /// Uniform in [0, Bound).
  uint64_t below(uint64_t Bound) { return Bound ? next() % Bound : 0; }
  /// Uniform in [0, 1).
  double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }
  bool chance(double P) { return unit() < P; }

private:
  uint64_t State;
};

enum class FieldTy { Int, Double, Char, Ptr };

enum class FieldRole {
  Live,             ///< Read in work()/process().
  LiveAddr,         ///< Address passed to a reading helper.
  DeadWriteOnly,    ///< Initialized in the constructor, never read.
  DeadNever,        ///< Never accessed at all.
  DeadUnreachRead,  ///< Read only in a never-called method.
  DeadPtrDeleted,   ///< Pointer passed only to delete in the destructor.
};

struct FieldPlan {
  std::string Name;
  FieldTy Ty = FieldTy::Int;
  int PtrClass = -1; ///< Target class index for Ptr fields.
  FieldRole Role = FieldRole::Live;

  bool isDead() const {
    return Role != FieldRole::Live && Role != FieldRole::LiveAddr;
  }
  unsigned size() const {
    switch (Ty) {
    case FieldTy::Int: return 4;
    case FieldTy::Double: return 8;
    case FieldTy::Char: return 4; // Padded estimate.
    case FieldTy::Ptr: return 8;
    }
    return 4;
  }
};

struct ClassPlan {
  std::string Name;
  bool IsStruct = false;
  bool Used = false;
  int Base = -1; ///< Index of the base class, or -1.
  bool HasDtor = false;
  std::vector<FieldPlan> Fields;
  uint64_t Count = 0;    ///< Objects allocated by main().
  uint64_t Retained = 0; ///< Kept until program end.

  unsigned ownSize() const {
    unsigned S = 0;
    for (const FieldPlan &F : Fields)
      S += F.size();
    return S;
  }
  unsigned ownDead() const {
    unsigned S = 0;
    for (const FieldPlan &F : Fields)
      if (F.isDead())
        S += F.size();
    return S;
  }
};

/// Whole-object size/dead estimates including base chains and vptr.
struct SizeModel {
  const std::vector<ClassPlan> &Classes;

  unsigned size(int I) const {
    const ClassPlan &C = Classes[static_cast<size_t>(I)];
    unsigned S = C.IsStruct ? 0 : 8; // vptr estimate.
    for (int Cur = I; Cur >= 0;
         Cur = Classes[static_cast<size_t>(Cur)].Base)
      S += Classes[static_cast<size_t>(Cur)].ownSize();
    return std::max(S, 1u);
  }
  unsigned dead(int I) const {
    unsigned S = 0;
    for (int Cur = I; Cur >= 0;
         Cur = Classes[static_cast<size_t>(Cur)].Base)
      S += Classes[static_cast<size_t>(Cur)].ownDead();
    return S;
  }
};

/// Emits the program text.
class Emitter {
public:
  Emitter(const BenchmarkSpec &Spec, std::vector<ClassPlan> Classes)
      : Spec(Spec), Classes(std::move(Classes)) {}

  std::string emit();

private:
  void line(const std::string &S) {
    Out += S;
    Out += '\n';
    ++Lines;
  }
  void blank() { line(""); }

  std::string fieldType(const FieldPlan &F) const {
    switch (F.Ty) {
    case FieldTy::Int: return "int";
    case FieldTy::Double: return "double";
    case FieldTy::Char: return "char";
    case FieldTy::Ptr:
      return Classes[static_cast<size_t>(F.PtrClass)].Name + " *";
    }
    return "int";
  }

  void emitClassDef(size_t I);
  void emitClassImpl(size_t I);
  void emitStructHelpers(size_t I);
  void emitExercise(size_t I);
  void emitMain();
  void emitFiller();

  const BenchmarkSpec &Spec;
  std::vector<ClassPlan> Classes;
  std::string Out;
  unsigned Lines = 0;
};

void Emitter::emitClassDef(size_t I) {
  ClassPlan &C = Classes[I];
  std::string Head =
      std::string(C.IsStruct ? "struct " : "class ") + C.Name;
  if (C.Base >= 0)
    Head += " : public " + Classes[static_cast<size_t>(C.Base)].Name;
  line(Head + " {");
  if (!C.IsStruct)
    line("public:");
  for (const FieldPlan &F : C.Fields)
    line("  " + fieldType(F) + " " + F.Name + ";");
  if (!C.IsStruct) {
    line("  " + C.Name + "(int s);");
    if (C.HasDtor)
      line("  ~" + C.Name + "();");
    line("  virtual int work();");
    bool HasUnreach = false;
    for (const FieldPlan &F : C.Fields)
      if (F.Role == FieldRole::DeadUnreachRead)
        HasUnreach = true;
    if (HasUnreach)
      line("  int unused_feature();");
  }
  line("};");
  blank();
}

void Emitter::emitClassImpl(size_t I) {
  ClassPlan &C = Classes[I];
  if (C.IsStruct) {
    emitStructHelpers(I);
    return;
  }

  // Constructor: writes every field (the paper's canonical write-only
  // pattern for dead members).
  std::string CtorHead = C.Name + "::" + C.Name + "(int s)";
  if (C.Base >= 0)
    CtorHead += " : " + Classes[static_cast<size_t>(C.Base)].Name + "(s)";
  line(CtorHead + " {");
  unsigned K = 0;
  for (const FieldPlan &F : C.Fields) {
    ++K;
    if (F.Role == FieldRole::DeadNever)
      continue; // Not even initialized.
    switch (F.Ty) {
    case FieldTy::Int:
      line("  " + F.Name + " = s + " + std::to_string(K) + ";");
      break;
    case FieldTy::Double:
      line("  " + F.Name + " = 0.5 + " + std::to_string(K) + ";");
      break;
    case FieldTy::Char:
      line("  " + F.Name + " = 'a';");
      break;
    case FieldTy::Ptr:
      line("  " + F.Name + " = nullptr;");
      break;
    }
  }
  line("}");
  blank();

  if (C.HasDtor) {
    line(C.Name + "::~" + C.Name + "() {");
    for (const FieldPlan &F : C.Fields)
      if (F.Role == FieldRole::DeadPtrDeleted)
        line("  delete " + F.Name + ";");
    line("}");
    blank();
  }

  // work(): reads every live field.
  line("int " + C.Name + "::work() {");
  line("  int acc = 0;");
  for (const FieldPlan &F : C.Fields) {
    if (F.Role == FieldRole::LiveAddr) {
      line("  acc = acc + absorb(&" + F.Name + ");");
      continue;
    }
    if (F.Role != FieldRole::Live)
      continue;
    switch (F.Ty) {
    case FieldTy::Int:
      line("  acc = acc + " + F.Name + ";");
      break;
    case FieldTy::Double:
      line("  acc = acc + (int)" + F.Name + ";");
      break;
    case FieldTy::Char:
      line("  acc = acc + (int)" + F.Name + ";");
      break;
    case FieldTy::Ptr:
      line("  if (" + F.Name + " != nullptr) { acc = acc + 1; }");
      break;
    }
  }
  if (C.Base >= 0)
    line("  acc = acc + this->" +
         Classes[static_cast<size_t>(C.Base)].Name + "::work();");
  line("  return acc;");
  line("}");
  blank();

  bool HasUnreach = false;
  for (const FieldPlan &F : C.Fields)
    if (F.Role == FieldRole::DeadUnreachRead)
      HasUnreach = true;
  if (HasUnreach) {
    line("int " + C.Name + "::unused_feature() {");
    line("  int t = 0;");
    for (const FieldPlan &F : C.Fields) {
      if (F.Role != FieldRole::DeadUnreachRead)
        continue;
      if (F.Ty == FieldTy::Ptr)
        line("  if (" + F.Name + " != nullptr) { t = t + 1; }");
      else
        line("  t = t + (int)" + F.Name + ";");
    }
    line("  return t;");
    line("}");
    blank();
  }
}

void Emitter::emitStructHelpers(size_t I) {
  ClassPlan &C = Classes[I];
  line("void init_" + C.Name + "(" + C.Name + " *s, int seed) {");
  unsigned K = 0;
  for (const FieldPlan &F : C.Fields) {
    ++K;
    if (F.Role == FieldRole::DeadNever)
      continue;
    switch (F.Ty) {
    case FieldTy::Int:
      line("  s->" + F.Name + " = seed + " + std::to_string(K) + ";");
      break;
    case FieldTy::Double:
      line("  s->" + F.Name + " = 0.25 + " + std::to_string(K) + ";");
      break;
    case FieldTy::Char:
      line("  s->" + F.Name + " = 'z';");
      break;
    case FieldTy::Ptr:
      line("  s->" + F.Name + " = nullptr;");
      break;
    }
  }
  line("}");
  blank();
  line("int process_" + C.Name + "(" + C.Name + " *s) {");
  line("  int acc = 0;");
  for (const FieldPlan &F : C.Fields) {
    if (F.Role == FieldRole::LiveAddr) {
      line("  acc = acc + absorb(&s->" + F.Name + ");");
      continue;
    }
    if (F.Role != FieldRole::Live)
      continue;
    if (F.Ty == FieldTy::Ptr)
      line("  if (s->" + F.Name + " != nullptr) { acc = acc + 1; }");
    else
      line("  acc = acc + (int)s->" + F.Name + ";");
  }
  line("  return acc;");
  line("}");
  blank();

  bool HasUnreach = false;
  for (const FieldPlan &F : C.Fields)
    if (F.Role == FieldRole::DeadUnreachRead)
      HasUnreach = true;
  if (HasUnreach) {
    line("int unused_" + C.Name + "(" + C.Name + " *s) {");
    line("  int t = 0;");
    for (const FieldPlan &F : C.Fields) {
      if (F.Role != FieldRole::DeadUnreachRead)
        continue;
      if (F.Ty == FieldTy::Ptr)
        line("  if (s->" + F.Name + " != nullptr) { t = t + 1; }");
      else
        line("  t = t + (int)s->" + F.Name + ";");
    }
    line("  return t;");
    line("}");
    blank();
  }
}

void Emitter::emitExercise(size_t I) {
  ClassPlan &C = Classes[I];
  if (!C.Used || C.Count == 0)
    return;
  const std::string N = std::to_string(C.Count);
  const std::string R = std::to_string(C.Retained);

  line(C.Name + " **g_keep_" + C.Name + ";");
  line("int g_kept_" + C.Name + ";");
  line("int exercise_" + C.Name + "() {");
  line("  int acc = 0;");
  line("  g_keep_" + C.Name + " = new " + C.Name + "*[" + R + " + 1];");
  line("  g_kept_" + C.Name + " = 0;");
  line("  int i;");
  line("  for (i = 0; i < " + N + "; i = i + 1) {");
  if (C.IsStruct) {
    line("    " + C.Name + " *o = new " + C.Name + ";");
    line("    init_" + C.Name + "(o, i);");
    line("    acc = acc + process_" + C.Name + "(o);");
  } else {
    line("    " + C.Name + " *o = new " + C.Name + "(i);");
    line("    acc = acc + o->work();");
  }
  line("    if (g_kept_" + C.Name + " < " + R + ") {");
  line("      g_keep_" + C.Name + "[g_kept_" + C.Name + "] = o;");
  line("      g_kept_" + C.Name + " = g_kept_" + C.Name + " + 1;");
  line("    } else {");
  line("      delete o;");
  line("    }");
  line("  }");
  line("  return acc;");
  line("}");
  line("void release_" + C.Name + "() {");
  line("  int i;");
  line("  for (i = 0; i < g_kept_" + C.Name + "; i = i + 1) {");
  line("    delete g_keep_" + C.Name + "[i];");
  line("  }");
  line("  delete[] g_keep_" + C.Name + ";");
  line("}");
  blank();
}

void Emitter::emitMain() {
  line("int main() {");
  line("  int checksum = 0;");
  for (const ClassPlan &C : Classes)
    if (C.Used && C.Count > 0)
      line("  checksum = checksum + exercise_" + C.Name + "();");
  for (const ClassPlan &C : Classes)
    if (C.Used && C.Count > 0)
      line("  release_" + C.Name + "();");
  line("  print_int(checksum);");
  line("  return 0;");
  line("}");
}

void Emitter::emitFiller() {
  // Pad to the spec's lines-of-code target with self-contained helper
  // functions (local arithmetic only: no effect on member liveness and
  // no interpretation cost, since they are never called).
  unsigned FillerIndex = 0;
  while (Lines + 12 <= Spec.TargetLoC) {
    ++FillerIndex;
    std::string N = std::to_string(FillerIndex);
    line("int filler_" + N + "(int x) {");
    line("  int a = x + " + N + ";");
    line("  int b = a * 3;");
    line("  int c = b - a;");
    line("  a = a + b * c;");
    line("  b = a % 17 + c;");
    line("  c = c + a - b * 2;");
    line("  a = a ^ (b & c);");
    line("  b = b | (a >> 2);");
    line("  c = c + (a << 1);");
    line("  return a + b + c;");
    line("}");
    blank();
  }
}

std::string Emitter::emit() {
  line("// " + Spec.Name + ": " + Spec.Description);
  line("// Synthesized benchmark (deterministic, seed " +
       std::to_string(Spec.Seed) + "); see DESIGN.md for the profile.");
  blank();
  line("int absorb(int *p) { return (*p); }");
  blank();
  for (size_t I = 0; I != Classes.size(); ++I)
    emitClassDef(I);
  for (size_t I = 0; I != Classes.size(); ++I)
    emitClassImpl(I);
  for (size_t I = 0; I != Classes.size(); ++I)
    emitExercise(I);
  emitMain();
  emitFiller();
  return std::move(Out);
}

/// Splits \p Text into ~\p Parts source files, cutting only at blank
/// lines between top-level declarations (brace depth 0, outside string
/// and character literals and comments). The concatenation of the parts
/// is the original text verbatim, and files parse in order sharing one
/// name table, so a split program is semantically identical to the
/// single-file form — it just gives the per-file parallel lex stage
/// units of work.
std::vector<SourceFile> splitTopLevel(const std::string &BaseName,
                                      std::string Text, size_t Parts = 8) {
  std::vector<size_t> Boundaries;
  int Depth = 0;
  bool InString = false, InChar = false, InLine = false, InBlock = false;
  for (size_t I = 0; I + 1 < Text.size(); ++I) {
    char C = Text[I];
    if (InLine) {
      if (C == '\n')
        InLine = false;
    } else if (InBlock) {
      if (C == '*' && Text[I + 1] == '/') {
        InBlock = false;
        ++I;
      }
    } else if (InString || InChar) {
      if (C == '\\')
        ++I;
      else if (C == (InString ? '"' : '\''))
        InString = InChar = false;
    } else {
      switch (C) {
      case '"': InString = true; break;
      case '\'': InChar = true; break;
      case '{': ++Depth; break;
      case '}': --Depth; break;
      case '/':
        if (Text[I + 1] == '/') InLine = true;
        else if (Text[I + 1] == '*') InBlock = true;
        break;
      case '\n':
        if (Text[I + 1] == '\n' && Depth == 0)
          Boundaries.push_back(I + 2); // Cut after the blank line.
        break;
      default: break;
      }
    }
  }

  // Pick the boundary nearest each equal-size target offset; dedup to
  // keep cuts strictly increasing.
  std::vector<size_t> Cuts;
  for (size_t P = 1; P < Parts; ++P) {
    size_t Target = Text.size() * P / Parts;
    const size_t *Best = nullptr;
    for (const size_t &B : Boundaries) {
      size_t Dist = B > Target ? B - Target : Target - B;
      if (!Best || Dist < (*Best > Target ? *Best - Target : Target - *Best))
        Best = &B;
    }
    if (Best && (Cuts.empty() || *Best > Cuts.back()) && *Best < Text.size())
      Cuts.push_back(*Best);
  }

  std::vector<SourceFile> Files;
  size_t Start = 0;
  for (size_t Index = 0; Index <= Cuts.size(); ++Index) {
    size_t End = Index < Cuts.size() ? Cuts[Index] : Text.size();
    std::string Name =
        Cuts.empty() ? BaseName + ".mcc"
                     : BaseName + ".part" + std::to_string(Index) + ".mcc";
    Files.push_back({std::move(Name), Text.substr(Start, End - Start),
                     /*IsLibrary=*/false});
    Start = End;
  }
  return Files;
}

} // namespace

//===----------------------------------------------------------------------===//
// Planning
//===----------------------------------------------------------------------===//

GeneratedBenchmark dmm::synthesizeBenchmark(const BenchmarkSpec &Spec,
                                            double Scale) {
  assert(!Spec.HandWritten && "use richardsSource()/deltablueSource()");
  Rng R(Spec.Seed);

  std::vector<ClassPlan> Classes;
  Classes.reserve(Spec.NumClasses);

  // Used classes first, then unused ones.
  for (unsigned I = 0; I != Spec.NumClasses; ++I) {
    ClassPlan C;
    C.Used = I < Spec.NumUsedClasses;
    C.Name = (C.Used ? "C" : "U") + std::to_string(I);
    C.IsStruct = C.Used && R.chance(Spec.StructFraction);
    Classes.push_back(std::move(C));
  }

  // Inheritance among used non-struct classes (chains of depth <= 3).
  std::vector<unsigned> Depth(Spec.NumClasses, 0);
  for (unsigned I = 1; I < Spec.NumUsedClasses; ++I) {
    if (Classes[I].IsStruct || !R.chance(Spec.InheritanceFraction))
      continue;
    // Pick an earlier non-struct used class with remaining depth budget.
    unsigned Tries = 8;
    while (Tries--) {
      unsigned B = static_cast<unsigned>(R.below(I));
      if (!Classes[B].IsStruct && Depth[B] < 3) {
        Classes[I].Base = static_cast<int>(B);
        Depth[I] = Depth[B] + 1;
        break;
      }
    }
  }

  // Distribute NumMembers over used classes (each gets at least one).
  {
    std::vector<double> W(Spec.NumUsedClasses);
    double Total = 0;
    for (double &X : W)
      Total += (X = 0.5 + R.unit());
    unsigned Assigned = 0;
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I) {
      unsigned N = std::max(
          1u, static_cast<unsigned>(Spec.NumMembers * W[I] / Total));
      if (Assigned + N > Spec.NumMembers)
        N = Spec.NumMembers - Assigned;
      if (I + 1 == Spec.NumUsedClasses)
        N = Spec.NumMembers - Assigned; // Remainder.
      Assigned += N;
      for (unsigned K = 0; K != N; ++K) {
        FieldPlan F;
        F.Name = "f" + std::to_string(K);
        double T = R.unit();
        if (T < 0.60) {
          F.Ty = FieldTy::Int;
        } else if (T < 0.75) {
          F.Ty = FieldTy::Double;
        } else if (T < 0.85) {
          F.Ty = FieldTy::Char;
        } else if (I > 0) {
          F.Ty = FieldTy::Ptr;
          F.PtrClass = static_cast<int>(R.below(I));
        } else {
          F.Ty = FieldTy::Int;
        }
        Classes[I].Fields.push_back(std::move(F));
      }
    }
  }
  // A few members for unused classes (not counted in the Table 1 column).
  for (unsigned I = Spec.NumUsedClasses; I != Spec.NumClasses; ++I)
    for (unsigned K = 0; K != 3; ++K) {
      FieldPlan F;
      F.Name = "f" + std::to_string(K);
      F.Role = FieldRole::DeadNever;
      Classes[I].Fields.push_back(std::move(F));
    }

  // Zipf-ish instantiation counts over used classes.
  {
    std::vector<unsigned> Order(Spec.NumUsedClasses);
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
      Order[I] = I;
    // Deterministic shuffle.
    for (unsigned I = Spec.NumUsedClasses; I > 1; --I)
      std::swap(Order[I - 1], Order[R.below(I)]);
    double Total = 0;
    std::vector<double> W(Spec.NumUsedClasses);
    for (unsigned Rank = 0; Rank != Spec.NumUsedClasses; ++Rank)
      Total += (W[Order[Rank]] = 1.0 / std::pow(Rank + 1.0, 0.8));
    uint64_t Objects = std::max<uint64_t>(
        static_cast<uint64_t>(Spec.TargetObjects * Scale),
        Spec.NumUsedClasses);
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
      Classes[I].Count = std::max<uint64_t>(
          1, static_cast<uint64_t>(Objects * W[I] / Total));
  }

  // Place the dead members: hot classes are the most-instantiated half.
  {
    unsigned D = static_cast<unsigned>(
        std::lround(Spec.TargetStaticDeadPct / 100.0 * Spec.NumMembers));
    std::vector<unsigned> ByCount;
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
      ByCount.push_back(I);
    std::sort(ByCount.begin(), ByCount.end(), [&](unsigned A, unsigned B) {
      return Classes[A].Count > Classes[B].Count;
    });
    std::vector<FieldPlan *> HotPool, ColdPool;
    for (unsigned Rank = 0; Rank != ByCount.size(); ++Rank) {
      ClassPlan &C = Classes[ByCount[Rank]];
      bool Hot = Rank < ByCount.size() / 2;
      for (FieldPlan &F : C.Fields)
        (Hot ? HotPool : ColdPool).push_back(&F);
    }
    unsigned WantHot = static_cast<unsigned>(
        std::lround(D * Spec.DeadInHotFraction));
    unsigned Marked = 0;
    unsigned RoleCycle = 0;
    auto MarkFrom = [&](std::vector<FieldPlan *> &Pool, unsigned Want) {
      // Prefer 8-byte fields: removing them saves their full size after
      // re-layout, while a lone 4-byte hole often survives as padding.
      std::stable_sort(Pool.begin(), Pool.end(),
                       [](const FieldPlan *A, const FieldPlan *B) {
                         return A->size() > B->size();
                       });
      for (FieldPlan *F : Pool) {
        if (Want == 0 || Marked == D)
          return;
        if (F->isDead())
          continue;
        switch (RoleCycle++ % 4) {
        case 0:
          F->Role = FieldRole::DeadWriteOnly;
          break;
        case 1:
          F->Role = FieldRole::DeadNever;
          break;
        case 2:
          F->Role = FieldRole::DeadUnreachRead;
          break;
        case 3:
          if (F->Ty == FieldTy::Ptr)
            F->Role = FieldRole::DeadPtrDeleted;
          else
            F->Role = FieldRole::DeadWriteOnly;
          break;
        }
        ++Marked;
        --Want;
      }
    };
    MarkFrom(HotPool, WantHot);
    MarkFrom(ColdPool, D - Marked);
    MarkFrom(HotPool, D - Marked); // Spill if the cold pool ran out.

    // Sprinkle address-taken liveness over a few surviving live fields.
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
      for (FieldPlan &F : Classes[I].Fields)
        if (F.Role == FieldRole::Live && F.Ty == FieldTy::Int &&
            R.chance(0.08))
          F.Role = FieldRole::LiveAddr;
  }

  // Destructors: needed wherever a DeadPtrDeleted field lives; plus a
  // random sprinkling for realism.
  for (unsigned I = 0; I != Spec.NumUsedClasses; ++I) {
    ClassPlan &C = Classes[I];
    if (C.IsStruct)
      continue;
    for (const FieldPlan &F : C.Fields)
      if (F.Role == FieldRole::DeadPtrDeleted)
        C.HasDtor = true;
    if (!C.HasDtor && R.chance(0.25))
      C.HasDtor = true;
  }

  // Calibrate counts so the modeled dynamic dead-space percentage
  // approaches the Table 2 target: scale the counts of classes whose
  // dead ratio exceeds the target by a bisected multiplier.
  {
    double Target = Spec.targetDynamicDeadPct() / 100.0;
    SizeModel Model{Classes};
    double HiS = 0, HiD = 0, LoS = 0, LoD = 0;
    std::vector<bool> IsHigh(Spec.NumUsedClasses, false);
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I) {
      double S = static_cast<double>(Classes[I].Count) *
                 Model.size(static_cast<int>(I));
      double Dd = static_cast<double>(Classes[I].Count) *
                  Model.dead(static_cast<int>(I));
      double Ratio = S > 0 ? Dd / S : 0;
      if (Ratio > Target) {
        IsHigh[I] = true;
        HiS += S;
        HiD += Dd;
      } else {
        LoS += S;
        LoD += Dd;
      }
    }
    if (Target > 0 && HiS > 0 && LoS > 0) {
      auto RatioAt = [&](double X) {
        return (X * HiD + LoD) / (X * HiS + LoS);
      };
      double Lo = 1e-4, Hi = 1e4;
      for (int Iter = 0; Iter != 60; ++Iter) {
        double Mid = std::sqrt(Lo * Hi);
        if (RatioAt(Mid) < Target)
          Lo = Mid;
        else
          Hi = Mid;
      }
      double X = std::sqrt(Lo * Hi);
      for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
        if (IsHigh[I])
          Classes[I].Count = std::max<uint64_t>(
              1, static_cast<uint64_t>(Classes[I].Count * X));
    }
  }

  // Rescale to the requested total object count (calibration may have
  // inflated the high-dead classes), then apply retention to shape the
  // high-water mark.
  {
    uint64_t Total = 0;
    for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
      Total += Classes[I].Count;
    uint64_t Want = std::max<uint64_t>(
        static_cast<uint64_t>(Spec.TargetObjects * Scale),
        Spec.NumUsedClasses);
    if (Total > 0) {
      double Factor = static_cast<double>(Want) / static_cast<double>(Total);
      for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
        Classes[I].Count = std::max<uint64_t>(
            1, static_cast<uint64_t>(Classes[I].Count * Factor));
    }
  }
  for (unsigned I = 0; I != Spec.NumUsedClasses; ++I)
    Classes[I].Retained = static_cast<uint64_t>(
        std::lround(Classes[I].Count * Spec.HeapRetention));

  Emitter E(Spec, std::move(Classes));
  GeneratedBenchmark Result;
  Result.Spec = Spec;
  Result.Files.push_back({Spec.Name + ".mcc", E.emit(), false});
  return Result;
}

std::vector<GeneratedBenchmark>
dmm::paperBenchmarkPrograms(double Scale) {
  std::vector<GeneratedBenchmark> Result;
  for (const BenchmarkSpec &Spec : paperBenchmarks()) {
    GeneratedBenchmark G;
    if (Spec.HandWritten) {
      G.Spec = Spec;
      const char *Text =
          Spec.Name == "richards" ? richardsSource() : deltablueSource();
      G.Files.push_back({Spec.Name + ".mcc", Text, false});
    } else {
      G = synthesizeBenchmark(Spec, Scale);
    }
    // Split each program at top-level boundaries so the per-file
    // parallel lex stage has units of work (semantically identical:
    // the parts concatenate back to the original text and parse in
    // order into one name table).
    G.Files = splitTopLevel(G.Spec.Name, std::move(G.Files[0].Text));
    Result.push_back(std::move(G));
  }
  return Result;
}
