//===-- benchgen/BenchmarkSpec.h - Paper benchmark profiles -----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profiles of the paper's eleven benchmark programs (Table 1, Figure 3,
/// Table 2). The original sources of nine of them are proprietary or
/// unavailable; per the reproduction's substitution rule (DESIGN.md §2)
/// the synthesizer generates MiniC++ programs with matching measured
/// characteristics, while `richards` and `deltablue` are hand-written
/// ports of the classic public-domain programs (the paper found zero
/// dead members in both; our ports preserve that).
///
/// Values marked *reconstructed* were unreadable in the available copy
/// of the paper and are chosen to satisfy every constraint its prose
/// states: LoC range 606-58,296; classes 10-268; members 22-1052; static
/// dead percentages 3.0%-27.3% with a 12.5% average over the nine
/// non-trivial programs and the library-using programs (taldict,
/// simulate, hotwire) at the top; dynamic dead space up to 11.6% with a
/// 4.4% average; sched/hotwire/richards with high-water marks (nearly)
/// equal to total object space.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_BENCHGEN_BENCHMARKSPEC_H
#define DMM_BENCHGEN_BENCHMARKSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace dmm {

/// Targets and generation knobs for one synthesized benchmark.
struct BenchmarkSpec {
  std::string Name;
  std::string Description;

  /// True for richards/deltablue: the suite uses the hand-written port
  /// instead of the synthesizer.
  bool HandWritten = false;

  /// \name Table 1 characteristics
  /// @{
  unsigned TargetLoC = 0;
  unsigned NumClasses = 0;
  unsigned NumUsedClasses = 0;
  unsigned NumMembers = 0; ///< Data members in used classes.
  /// @}

  /// \name Figure 3 target
  /// @{
  double TargetStaticDeadPct = 0.0;
  /// Programs built on a (source-available) class library, where unused
  /// library functionality concentrates dead members (paper §4.4).
  bool UsesClassLibrary = false;
  /// @}

  /// \name Table 2 / Figure 4 targets
  /// @{
  uint64_t PaperObjectSpace = 0;
  uint64_t PaperDeadSpace = 0;
  uint64_t PaperHighWaterMark = 0;
  uint64_t PaperHighWaterMarkNoDead = 0;

  double targetDynamicDeadPct() const {
    return PaperObjectSpace
               ? 100.0 * static_cast<double>(PaperDeadSpace) /
                     static_cast<double>(PaperObjectSpace)
               : 0.0;
  }
  double targetHWMReductionPct() const {
    return PaperHighWaterMark
               ? 100.0 *
                     static_cast<double>(PaperHighWaterMark -
                                         PaperHighWaterMarkNoDead) /
                     static_cast<double>(PaperHighWaterMark)
               : 0.0;
  }
  /// @}

  /// \name Generation knobs
  /// @{
  unsigned Seed = 1;
  /// Fraction of heap objects retained until program end (1.0 produces
  /// HWM == total object space, the allocate-and-hold behaviour the
  /// paper observed for several benchmarks).
  double HeapRetention = 1.0;
  /// 1.0 places dead members in frequently instantiated classes (high
  /// dynamic dead space, e.g. sched); 0.0 places them in rarely
  /// instantiated ones (library style: high static %, low dynamic %).
  double DeadInHotFraction = 0.5;
  /// Approximate number of objects main() allocates (scales the trace;
  /// the reported *percentages* are count-invariant).
  unsigned TargetObjects = 2000;
  /// Fraction of classes participating in inheritance clusters.
  double InheritanceFraction = 0.35;
  /// Fraction of used classes that are plain structs (sched style).
  double StructFraction = 0.2;
  /// @}
};

/// The paper's eleven benchmarks, in the order of Table 1's narrative.
std::vector<BenchmarkSpec> paperBenchmarks();

/// Finds a spec by name; aborts if absent (programmer error).
BenchmarkSpec benchmarkByName(const std::string &Name);

} // namespace dmm

#endif // DMM_BENCHGEN_BENCHMARKSPEC_H
