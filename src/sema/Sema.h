//===-- sema/Sema.h - Resolution and type checking --------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis over the parsed AST: builds the class hierarchy,
/// propagates virtualness to overriding methods, resolves every name
/// (variables, implicit-this members, globals, functions), performs the
/// paper's Lookup operation for member accesses, selects constructors,
/// classifies cast safety, and computes the type of every expression.
///
/// Sema is lenient where full C++ conformance does not matter to the
/// analysis (implicit numeric conversions are accepted; argument types
/// are checked by count, not type), and strict where the analysis
/// depends on it (member resolution, cast classification, virtual
/// dispatch identification).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_SEMA_SEMA_H
#define DMM_SEMA_SEMA_H

#include "ast/ASTContext.h"
#include "hierarchy/ClassHierarchy.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dmm {

class DiagnosticsEngine;

/// Resolves and checks one program.
class Sema {
public:
  Sema(ASTContext &Ctx, DiagnosticsEngine &Diags);

  /// Runs the whole pass. Returns true if no errors were reported.
  bool run();

  /// The hierarchy built for this program (valid after run()).
  const ClassHierarchy &hierarchy() const { return *CH; }

  /// The program's `main` function; null if missing (diagnosed).
  FunctionDecl *mainFunction() const { return MainFn; }

  /// The compiler-provided builtins (created by run()).
  const std::vector<FunctionDecl *> &builtins() const { return Builtins; }

private:
  void createBuiltins();
  void computeVirtualFlags();

  ClassDecl *findClassByName(const std::string &Name) const;
  ConstructorDecl *findCtorByArity(const ClassDecl *CD, size_t Arity) const;

  /// Resolves constructor selection for a variable declaration (local or
  /// global) and checks its initializer.
  void checkVarInit(VarDecl *V);

  void checkFunction(FunctionDecl *FD);
  void resolveCtorInitializers(ConstructorDecl *Ctor);

  /// \name Scopes
  /// @{
  void pushScope();
  void popScope();
  void declareLocal(VarDecl *V);
  VarDecl *lookupLocal(const std::string &Name) const;
  /// @}

  /// \name Statement / expression checking
  /// @{
  void checkStmt(Stmt *S);
  /// Computes and stores the type of \p E (and of its children).
  /// Returns the stored type; never null (error recovery yields int).
  const Type *checkExpr(Expr *E);
  const Type *checkDeclRef(DeclRefExpr *E);
  const Type *checkMember(MemberExpr *E);
  const Type *checkCall(CallExpr *E);
  const Type *checkCast(CastExpr *E);
  const Type *checkUnary(UnaryExpr *E);
  const Type *checkBinary(BinaryExpr *E);
  /// @}

  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  std::unique_ptr<ClassHierarchy> CH;

  std::unordered_map<std::string, ClassDecl *> ClassByName;
  std::unordered_map<std::string, Decl *> GlobalScope;
  std::vector<FunctionDecl *> Builtins;
  FunctionDecl *MainFn = nullptr;

  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
  ClassDecl *CurClass = nullptr;
  FunctionDecl *CurFunction = nullptr;
};

} // namespace dmm

#endif // DMM_SEMA_SEMA_H
