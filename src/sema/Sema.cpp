//===-- sema/Sema.cpp -----------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sema/Sema.h"

#include "ast/ASTWalker.h"
#include "support/Diagnostics.h"

#include <cassert>

using namespace dmm;

Sema::Sema(ASTContext &Ctx, DiagnosticsEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {}

bool Sema::run() {
  unsigned ErrorsBefore = Diags.errorCount();

  CH = std::make_unique<ClassHierarchy>(Ctx);
  for (ClassDecl *CD : Ctx.classes()) {
    ClassByName[CD->name()] = CD;
    if (!CD->isComplete() && !CD->isLibrary())
      Diags.warning(CD->location(), "class '" + CD->name() +
                                        "' is declared but never defined; "
                                        "treating it as a library class");
  }

  computeVirtualFlags();
  createBuiltins();

  // Global scope: functions then global variables.
  for (FunctionDecl *FD : Ctx.functions())
    if (FD->kind() == Decl::Kind::Function)
      GlobalScope[FD->name()] = FD;
  for (VarDecl *GV : Ctx.globals()) {
    if (GlobalScope.count(GV->name()))
      Diags.error(GV->location(),
                  "redefinition of global '" + GV->name() + "'");
    GlobalScope[GV->name()] = GV;
  }

  // Global variable initializers are checked in a file-level context.
  CurClass = nullptr;
  CurFunction = nullptr;
  pushScope();
  for (VarDecl *GV : Ctx.globals())
    checkVarInit(GV);
  popScope();

  // Check every function with a body (and ctor initializer lists).
  for (FunctionDecl *FD : Ctx.functions())
    checkFunction(FD);

  // main().
  auto It = GlobalScope.find("main");
  if (It != GlobalScope.end())
    MainFn = dyn_cast<FunctionDecl>(It->second);
  if (!MainFn || !MainFn->isDefined())
    Diags.error(SourceLocation(), "program has no defined 'main' function");

  return Diags.errorCount() == ErrorsBefore;
}

void Sema::createBuiltins() {
  struct Spec {
    const char *Name;
    BuiltinKind Kind;
    const Type *ParamTy;
  };
  const Type *CharPtr = Ctx.pointerType(Ctx.charType());
  const Type *VoidPtr = Ctx.pointerType(Ctx.voidType());
  const Spec Specs[] = {
      {"print_int", BuiltinKind::PrintInt, Ctx.intType()},
      {"print_char", BuiltinKind::PrintChar, Ctx.charType()},
      {"print_double", BuiltinKind::PrintDouble, Ctx.doubleType()},
      {"print_str", BuiltinKind::PrintStr, CharPtr},
      {"print_bool", BuiltinKind::PrintBool, Ctx.boolType()},
      {"free", BuiltinKind::Free, VoidPtr},
  };
  for (const Spec &S : Specs) {
    auto *FD =
        Ctx.create<FunctionDecl>(S.Name, Ctx.voidType(), SourceLocation());
    FD->setBuiltinKind(S.Kind);
    FD->addParam(Ctx.create<ParamDecl>("value", S.ParamTy, SourceLocation()));
    GlobalScope[S.Name] = FD;
    Builtins.push_back(FD);
  }
}

void Sema::computeVirtualFlags() {
  for (ClassDecl *CD : Ctx.classes()) {
    for (MethodDecl *M : CD->methods())
      if (!M->isVirtual() && CH->isVirtualMethod(M))
        M->setVirtual();
    if (DestructorDecl *Dtor = CD->destructor())
      if (!Dtor->isVirtual())
        for (const ClassDecl *Base : CH->transitiveBases(CD))
          if (Base->destructor() && Base->destructor()->isVirtual())
            Dtor->setVirtual();
  }
}

ClassDecl *Sema::findClassByName(const std::string &Name) const {
  auto It = ClassByName.find(Name);
  return It == ClassByName.end() ? nullptr : It->second;
}

ConstructorDecl *Sema::findCtorByArity(const ClassDecl *CD,
                                       size_t Arity) const {
  for (ConstructorDecl *C : CD->constructors())
    if (C->params().size() == Arity)
      return C;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() {
  assert(!Scopes.empty() && "scope underflow");
  Scopes.pop_back();
}

void Sema::declareLocal(VarDecl *V) {
  assert(!Scopes.empty() && "no active scope");
  auto &Top = Scopes.back();
  if (!Top.emplace(V->name(), V).second)
    Diags.error(V->location(),
                "redefinition of variable '" + V->name() + "'");
}

VarDecl *Sema::lookupLocal(const std::string &Name) const {
  for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Sema::checkVarInit(VarDecl *V) {
  for (Expr *Arg : V->ctorArgs())
    checkExpr(Arg);
  if (Expr *Init = V->init())
    checkExpr(Init);

  const Type *Ty = V->type()->nonReferenceType();
  const ClassDecl *CD = Ty->asClassDecl();
  if (!CD) {
    if (const auto *AT = dyn_cast<ArrayType>(Ty))
      CD = AT->element()->asClassDecl();
    if (!CD)
      return;
  }
  if (!CD->isComplete()) {
    Diags.error(V->location(), "variable '" + V->name() +
                                   "' has incomplete type '" + CD->name() +
                                   "'");
    return;
  }
  if (V->type()->isReference())
    return; // References bind; no construction.

  ConstructorDecl *Ctor = findCtorByArity(CD, V->ctorArgs().size());
  if (!Ctor && !V->ctorArgs().empty()) {
    Diags.error(V->location(), "no constructor of '" + CD->name() +
                                   "' takes " +
                                   std::to_string(V->ctorArgs().size()) +
                                   " arguments");
    return;
  }
  if (!Ctor && !CD->constructors().empty() && !V->init()) {
    Diags.error(V->location(),
                "class '" + CD->name() + "' has no default constructor");
    return;
  }
  V->setCtor(Ctor);
}

void Sema::checkFunction(FunctionDecl *FD) {
  if (!FD->body() && !isa<ConstructorDecl>(FD))
    return;

  CurFunction = FD;
  CurClass = nullptr;
  if (auto *M = dyn_cast<MethodDecl>(FD))
    CurClass = M->parent();

  pushScope();
  for (ParamDecl *P : FD->params())
    declareLocal(P);

  if (auto *Ctor = dyn_cast<ConstructorDecl>(FD))
    resolveCtorInitializers(Ctor);

  if (FD->body())
    checkStmt(FD->body());
  popScope();
  CurFunction = nullptr;
  CurClass = nullptr;
}

void Sema::resolveCtorInitializers(ConstructorDecl *Ctor) {
  ClassDecl *CD = Ctor->parent();
  for (CtorInitializer &Init : Ctor->initializers()) {
    for (Expr *Arg : Init.Args)
      checkExpr(Arg);

    // Direct (or virtual) base initializer?
    ClassDecl *Base = nullptr;
    for (const BaseSpecifier &BS : CD->bases())
      if (BS.Base->name() == Init.Name)
        Base = BS.Base;
    if (!Base) {
      // Virtual bases are initialized by the most-derived class even if
      // indirect.
      for (const ClassDecl *VB : CH->virtualBases(CD))
        if (VB->name() == Init.Name)
          Base = const_cast<ClassDecl *>(VB);
    }
    if (Base) {
      Init.Base = Base;
      Init.TargetCtor = findCtorByArity(Base, Init.Args.size());
      if (!Init.TargetCtor && !Init.Args.empty())
        Diags.error(Init.Loc, "no constructor of base '" + Base->name() +
                                  "' takes " +
                                  std::to_string(Init.Args.size()) +
                                  " arguments");
      continue;
    }

    FieldDecl *F = CD->findField(Init.Name);
    if (!F) {
      Diags.error(Init.Loc, "'" + Init.Name +
                                "' is not a member or base of '" +
                                CD->name() + "'");
      continue;
    }
    Init.Field = F;
    if (const ClassDecl *FieldClass = F->type()->asClassDecl()) {
      Init.TargetCtor = findCtorByArity(FieldClass, Init.Args.size());
      if (!Init.TargetCtor && !Init.Args.empty())
        Diags.error(Init.Loc, "no constructor of '" + FieldClass->name() +
                                  "' takes " +
                                  std::to_string(Init.Args.size()) +
                                  " arguments");
    } else if (Init.Args.size() > 1) {
      Diags.error(Init.Loc, "scalar member '" + Init.Name +
                                "' initialized with multiple values");
    }
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    pushScope();
    for (Stmt *Child : cast<CompoundStmt>(S)->stmts())
      checkStmt(Child);
    popScope();
    return;
  case Stmt::Kind::Decl:
    for (VarDecl *V : cast<DeclStmt>(S)->vars()) {
      checkVarInit(V);
      declareLocal(V);
    }
    return;
  case Stmt::Kind::Expr:
    checkExpr(cast<ExprStmt>(S)->expr());
    return;
  case Stmt::Kind::If: {
    auto *IS = cast<IfStmt>(S);
    checkExpr(IS->cond());
    checkStmt(IS->thenStmt());
    if (IS->elseStmt())
      checkStmt(IS->elseStmt());
    return;
  }
  case Stmt::Kind::While: {
    auto *WS = cast<WhileStmt>(S);
    checkExpr(WS->cond());
    checkStmt(WS->body());
    return;
  }
  case Stmt::Kind::For: {
    auto *FS = cast<ForStmt>(S);
    pushScope();
    if (FS->init())
      checkStmt(FS->init());
    if (FS->cond())
      checkExpr(FS->cond());
    if (FS->step())
      checkExpr(FS->step());
    checkStmt(FS->body());
    popScope();
    return;
  }
  case Stmt::Kind::Return:
    if (Expr *Value = cast<ReturnStmt>(S)->value())
      checkExpr(Value);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Null:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Type *Sema::checkExpr(Expr *E) {
  if (E->type())
    return E->type(); // Already checked (shared ctor-init args, etc.).

  const Type *Ty = nullptr;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    Ty = Ctx.intType();
    break;
  case Expr::Kind::DoubleLiteral:
    Ty = Ctx.doubleType();
    break;
  case Expr::Kind::BoolLiteral:
    Ty = Ctx.boolType();
    break;
  case Expr::Kind::CharLiteral:
    Ty = Ctx.charType();
    break;
  case Expr::Kind::StringLiteral:
    Ty = Ctx.pointerType(Ctx.charType());
    break;
  case Expr::Kind::NullptrLiteral:
    Ty = Ctx.nullPtrType();
    break;
  case Expr::Kind::DeclRef:
    Ty = checkDeclRef(cast<DeclRefExpr>(E));
    break;
  case Expr::Kind::This:
    if (!CurClass) {
      Diags.error(E->location(), "'this' outside of a method");
      Ty = Ctx.intType();
      break;
    }
    Ty = Ctx.pointerType(Ctx.classType(CurClass));
    break;
  case Expr::Kind::Member:
    Ty = checkMember(cast<MemberExpr>(E));
    break;
  case Expr::Kind::MemberPointerConstant: {
    auto *MPC = cast<MemberPointerConstantExpr>(E);
    ClassDecl *CD = findClassByName(MPC->className());
    if (!CD) {
      Diags.error(E->location(),
                  "unknown class '" + MPC->className() + "'");
      Ty = Ctx.intType();
      break;
    }
    FieldDecl *F = CH->lookupField(CD, MPC->memberName());
    if (!F) {
      Diags.error(E->location(), "class '" + MPC->className() +
                                     "' has no data member '" +
                                     MPC->memberName() + "'");
      Ty = Ctx.intType();
      break;
    }
    MPC->setMember(F);
    Ty = Ctx.memberPointerType(CD, F->type());
    break;
  }
  case Expr::Kind::MemberPointerAccess: {
    auto *MPA = cast<MemberPointerAccessExpr>(E);
    const Type *BaseTy = checkExpr(MPA->base());
    const Type *PtrTy = checkExpr(MPA->pointer());
    const ClassDecl *BaseClass = nullptr;
    if (MPA->isArrow()) {
      if (const auto *PT = dyn_cast<PointerType>(BaseTy))
        BaseClass = PT->pointee()->asClassDecl();
    } else {
      BaseClass = BaseTy->asClassDecl();
    }
    if (!BaseClass)
      Diags.error(E->location(),
                  "left side of pointer-to-member access is not a class");
    const auto *MPT = dyn_cast<MemberPointerType>(PtrTy);
    if (!MPT) {
      Diags.error(E->location(),
                  "right side of '.*' is not a pointer to member");
      Ty = Ctx.intType();
      break;
    }
    if (BaseClass && !CH->isDerivedFrom(BaseClass, MPT->classDecl()))
      Diags.error(E->location(),
                  "pointer to member of unrelated class");
    E->setLValue();
    Ty = MPT->pointee();
    break;
  }
  case Expr::Kind::Unary:
    Ty = checkUnary(cast<UnaryExpr>(E));
    break;
  case Expr::Kind::Binary:
    Ty = checkBinary(cast<BinaryExpr>(E));
    break;
  case Expr::Kind::Assign: {
    auto *A = cast<AssignExpr>(E);
    const Type *LHSTy = checkExpr(A->lhs());
    checkExpr(A->rhs());
    if (!A->lhs()->isLValue())
      Diags.error(E->location(), "assignment to non-lvalue");
    Ty = LHSTy;
    break;
  }
  case Expr::Kind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    checkExpr(C->cond());
    const Type *ThenTy = checkExpr(C->thenExpr());
    const Type *ElseTy = checkExpr(C->elseExpr());
    // Prefer the non-nullptr branch type for pointer conditionals.
    Ty = ThenTy;
    if (isa<BuiltinType>(ThenTy) &&
        cast<BuiltinType>(ThenTy)->builtinKind() == BuiltinType::BK::NullPtr)
      Ty = ElseTy;
    break;
  }
  case Expr::Kind::Comma: {
    auto *C = cast<CommaExpr>(E);
    checkExpr(C->lhs());
    Ty = checkExpr(C->rhs());
    break;
  }
  case Expr::Kind::Subscript: {
    auto *S = cast<SubscriptExpr>(E);
    const Type *BaseTy = checkExpr(S->base());
    checkExpr(S->index());
    if (const auto *PT = dyn_cast<PointerType>(BaseTy))
      Ty = PT->pointee();
    else if (const auto *AT = dyn_cast<ArrayType>(BaseTy))
      Ty = AT->element();
    else {
      Diags.error(E->location(), "subscripted value is not a pointer or "
                                 "array");
      Ty = Ctx.intType();
    }
    E->setLValue();
    break;
  }
  case Expr::Kind::Call:
    Ty = checkCall(cast<CallExpr>(E));
    break;
  case Expr::Kind::New: {
    auto *N = cast<NewExpr>(E);
    if (N->arraySize())
      checkExpr(N->arraySize());
    for (Expr *Arg : N->ctorArgs())
      checkExpr(Arg);
    if (const ClassDecl *CD = N->allocType()->asClassDecl()) {
      if (!CD->isComplete()) {
        Diags.error(E->location(),
                    "allocation of incomplete type '" + CD->name() + "'");
      } else {
        ConstructorDecl *Ctor = findCtorByArity(CD, N->ctorArgs().size());
        if (!Ctor && !N->ctorArgs().empty())
          Diags.error(E->location(),
                      "no constructor of '" + CD->name() + "' takes " +
                          std::to_string(N->ctorArgs().size()) +
                          " arguments");
        N->setConstructor(Ctor);
      }
    } else if (!N->ctorArgs().empty() && N->ctorArgs().size() != 1) {
      Diags.error(E->location(),
                  "scalar 'new' initializer takes at most one value");
    }
    Ty = Ctx.pointerType(N->allocType());
    break;
  }
  case Expr::Kind::Delete: {
    auto *D = cast<DeleteExpr>(E);
    const Type *SubTy = checkExpr(D->sub());
    if (!SubTy->isPointer() && !isa<BuiltinType>(SubTy))
      Diags.error(E->location(), "'delete' operand is not a pointer");
    Ty = Ctx.voidType();
    break;
  }
  case Expr::Kind::Cast:
    Ty = checkCast(cast<CastExpr>(E));
    break;
  case Expr::Kind::Sizeof: {
    auto *SE = cast<SizeofExpr>(E);
    if (SE->exprOperand())
      checkExpr(SE->exprOperand());
    Ty = Ctx.intType();
    break;
  }
  }

  assert(Ty && "expression kind not handled");
  E->setType(Ty);
  return Ty;
}

const Type *Sema::checkDeclRef(DeclRefExpr *E) {
  const std::string &Name = E->declName();

  // Locals and parameters.
  if (VarDecl *V = lookupLocal(Name)) {
    E->setReferent(V);
    E->setLValue();
    return V->type()->nonReferenceType();
  }

  // Implicit-this members.
  if (CurClass) {
    bool Ambiguous = false;
    if (FieldDecl *F = CH->lookupField(CurClass, Name, &Ambiguous)) {
      E->setReferent(F);
      E->setLValue();
      return F->type();
    }
    if (Ambiguous) {
      Diags.error(E->location(),
                  "ambiguous member reference '" + Name + "'");
      return Ctx.intType();
    }
    if (MethodDecl *M = CH->lookupMethod(CurClass, Name)) {
      E->setReferent(M);
      std::vector<const Type *> Params;
      for (const ParamDecl *P : M->params())
        Params.push_back(P->type());
      return Ctx.functionType(M->returnType(), std::move(Params));
    }
  }

  // Globals and functions.
  auto It = GlobalScope.find(Name);
  if (It != GlobalScope.end()) {
    E->setReferent(It->second);
    if (auto *GV = dyn_cast<VarDecl>(It->second)) {
      E->setLValue();
      return GV->type()->nonReferenceType();
    }
    auto *FD = cast<FunctionDecl>(It->second);
    std::vector<const Type *> Params;
    for (const ParamDecl *P : FD->params())
      Params.push_back(P->type());
    return Ctx.functionType(FD->returnType(), std::move(Params));
  }

  Diags.error(E->location(), "use of undeclared identifier '" + Name + "'");
  return Ctx.intType();
}

const Type *Sema::checkMember(MemberExpr *E) {
  const Type *BaseTy = checkExpr(E->base());

  const ClassDecl *BaseClass = nullptr;
  if (E->isArrow()) {
    if (const auto *PT = dyn_cast<PointerType>(BaseTy))
      BaseClass = PT->pointee()->asClassDecl();
    if (!BaseClass) {
      Diags.error(E->location(),
                  "'->' applied to non-pointer-to-class type '" +
                      BaseTy->str() + "'");
      return Ctx.intType();
    }
  } else {
    BaseClass = BaseTy->asClassDecl();
    if (!BaseClass) {
      Diags.error(E->location(), "member access on non-class type '" +
                                     BaseTy->str() + "'");
      return Ctx.intType();
    }
  }

  // Qualified access `e.C::m`: look up in the named class (which must be
  // a base of, or equal to, the object's class).
  const ClassDecl *LookupClass = BaseClass;
  if (E->isQualified()) {
    ClassDecl *Q = findClassByName(E->qualifier());
    if (!Q) {
      Diags.error(E->location(),
                  "unknown class '" + E->qualifier() + "' in qualified "
                  "member access");
      return Ctx.intType();
    }
    if (!CH->isDerivedFrom(BaseClass, Q))
      Diags.error(E->location(), "'" + Q->name() + "' is not a base of '" +
                                     BaseClass->name() + "'");
    LookupClass = Q;
  }

  bool Ambiguous = false;
  if (FieldDecl *F = CH->lookupField(LookupClass, E->memberName(),
                                     &Ambiguous)) {
    E->setMember(F);
    E->setLValue();
    return F->type();
  }
  if (Ambiguous) {
    Diags.error(E->location(),
                "ambiguous member '" + E->memberName() + "' in '" +
                    LookupClass->name() + "'");
    return Ctx.intType();
  }
  if (MethodDecl *M = CH->lookupMethod(LookupClass, E->memberName())) {
    E->setMember(M);
    std::vector<const Type *> Params;
    for (const ParamDecl *P : M->params())
      Params.push_back(P->type());
    return Ctx.functionType(M->returnType(), std::move(Params));
  }

  Diags.error(E->location(), "no member named '" + E->memberName() +
                                 "' in '" + LookupClass->name() + "'");
  return Ctx.intType();
}

const Type *Sema::checkCall(CallExpr *E) {
  for (Expr *Arg : E->args())
    checkExpr(Arg);

  const Type *CalleeTy = checkExpr(E->callee());

  // Identify a direct callee when the callee names a function or method.
  FunctionDecl *Direct = nullptr;
  bool Qualified = false;
  if (auto *DRE = dyn_cast<DeclRefExpr>(E->callee()))
    Direct = dyn_cast_or_null<FunctionDecl>(DRE->referent());
  else if (auto *ME = dyn_cast<MemberExpr>(E->callee())) {
    Direct = dyn_cast_or_null<MethodDecl>(ME->member());
    Qualified = ME->isQualified();
  }

  if (Direct) {
    E->setDirectCallee(Direct);
    if (E->args().size() != Direct->params().size())
      Diags.error(E->location(),
                  "call to '" + Direct->name() + "' expects " +
                      std::to_string(Direct->params().size()) +
                      " arguments, got " +
                      std::to_string(E->args().size()));
    if (auto *M = dyn_cast<MethodDecl>(Direct))
      if (M->isVirtual() && !Qualified)
        E->setVirtualCall();
    return Direct->returnType();
  }

  // Indirect call through a function pointer (or a function-typed
  // expression).
  const Type *Fn = CalleeTy;
  if (const auto *PT = dyn_cast<PointerType>(Fn))
    Fn = PT->pointee();
  if (const auto *FT = dyn_cast<FunctionType>(Fn)) {
    if (E->args().size() != FT->params().size())
      Diags.error(E->location(),
                  "indirect call expects " +
                      std::to_string(FT->params().size()) +
                      " arguments, got " + std::to_string(E->args().size()));
    return FT->result();
  }

  Diags.error(E->location(), "called object is not a function");
  return Ctx.intType();
}

const Type *Sema::checkCast(CastExpr *E) {
  const Type *SrcTy = checkExpr(E->sub());
  const Type *DstTy = E->targetType();

  CastSafety Safety = CastSafety::Safe;
  if (SrcTy == DstTy || (SrcTy->isArithmetic() && DstTy->isArithmetic())) {
    Safety = CastSafety::Safe;
  } else if (const auto *DstPtr = dyn_cast<PointerType>(DstTy)) {
    if (isa<BuiltinType>(SrcTy) &&
        cast<BuiltinType>(SrcTy)->builtinKind() == BuiltinType::BK::NullPtr) {
      Safety = CastSafety::Safe;
    } else if (const auto *SrcPtr = dyn_cast<PointerType>(SrcTy)) {
      const ClassDecl *SrcClass = SrcPtr->pointee()->asClassDecl();
      const ClassDecl *DstClass = DstPtr->pointee()->asClassDecl();
      if (SrcClass && DstClass) {
        if (CH->isDerivedFrom(SrcClass, DstClass))
          Safety = CastSafety::Safe; // Up-cast (or identity).
        else if (CH->isDerivedFrom(DstClass, SrcClass))
          Safety = CastSafety::Downcast;
        else
          Safety = CastSafety::Unrelated;
      } else if (SrcPtr->pointee() == DstPtr->pointee() ||
                 SrcPtr->pointee()->isVoid() || DstPtr->pointee()->isVoid()) {
        Safety = CastSafety::Safe; // void* conversions.
      } else {
        Safety = CastSafety::Unrelated;
      }
    } else if (SrcTy->isInteger()) {
      Safety = CastSafety::Unrelated; // Integer reinterpreted as pointer.
    } else {
      Safety = CastSafety::Unrelated;
    }
  } else if (DstTy->isArithmetic() && SrcTy->isPointer()) {
    // Pointer observed as integer: does not grant access to members.
    Safety = CastSafety::Safe;
  } else if (DstTy->asClassDecl() || SrcTy->asClassDecl()) {
    Safety = DstTy == SrcTy ? CastSafety::Safe : CastSafety::Unrelated;
  } else {
    Safety = CastSafety::Safe;
  }

  E->setSafety(Safety);
  return DstTy;
}

const Type *Sema::checkUnary(UnaryExpr *E) {
  const Type *SubTy = checkExpr(E->sub());
  switch (E->op()) {
  case UnaryOpKind::Minus:
  case UnaryOpKind::BitNot:
    if (!SubTy->isArithmetic())
      Diags.error(E->location(), "operand of unary arithmetic operator is "
                                 "not numeric");
    return SubTy->isInteger() ? Ctx.intType() : SubTy;
  case UnaryOpKind::Not:
    return Ctx.boolType();
  case UnaryOpKind::Deref: {
    if (const auto *PT = dyn_cast<PointerType>(SubTy)) {
      E->setLValue();
      return PT->pointee();
    }
    if (const auto *AT = dyn_cast<ArrayType>(SubTy)) {
      E->setLValue();
      return AT->element();
    }
    Diags.error(E->location(), "dereference of non-pointer type '" +
                                   SubTy->str() + "'");
    return Ctx.intType();
  }
  case UnaryOpKind::AddrOf:
    if (!E->sub()->isLValue() && !isa<FunctionType>(SubTy))
      Diags.error(E->location(), "address of non-lvalue");
    return Ctx.pointerType(SubTy);
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostInc:
  case UnaryOpKind::PostDec:
    if (!E->sub()->isLValue())
      Diags.error(E->location(), "increment/decrement of non-lvalue");
    if (E->op() == UnaryOpKind::PreInc || E->op() == UnaryOpKind::PreDec)
      E->setLValue();
    return SubTy;
  }
  return Ctx.intType();
}

const Type *Sema::checkBinary(BinaryExpr *E) {
  const Type *L = checkExpr(E->lhs());
  const Type *R = checkExpr(E->rhs());
  switch (E->op()) {
  case BinaryOpKind::LAnd:
  case BinaryOpKind::LOr:
  case BinaryOpKind::EQ:
  case BinaryOpKind::NE:
  case BinaryOpKind::LT:
  case BinaryOpKind::GT:
  case BinaryOpKind::LE:
  case BinaryOpKind::GE:
    return Ctx.boolType();
  case BinaryOpKind::Add:
  case BinaryOpKind::Sub:
    // Pointer arithmetic.
    if (L->isPointer() || L->isArray()) {
      if (L->isArray())
        return Ctx.pointerType(cast<ArrayType>(L)->element());
      if (E->op() == BinaryOpKind::Sub && R->isPointer())
        return Ctx.intType(); // Pointer difference.
      return L;
    }
    [[fallthrough]];
  case BinaryOpKind::Mul:
  case BinaryOpKind::Div: {
    const Type *DoubleTy = Ctx.doubleType();
    if (L == DoubleTy || R == DoubleTy)
      return DoubleTy;
    return Ctx.intType();
  }
  case BinaryOpKind::Rem:
  case BinaryOpKind::Shl:
  case BinaryOpKind::Shr:
  case BinaryOpKind::BitAnd:
  case BinaryOpKind::BitOr:
  case BinaryOpKind::BitXor:
    if (!L->isInteger() || !R->isInteger())
      Diags.error(E->location(), "bitwise operator requires integer "
                                 "operands");
    return Ctx.intType();
  }
  return Ctx.intType();
}
