//===-- hierarchy/ClassHierarchy.h - Class graph & lookup -------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program's class hierarchy: derivation queries, transitive base
/// enumeration, virtual-method override sets, and the member Lookup
/// operation the analysis relies on ("m may occur in a base class of X",
/// paper Fig. 2). Lookup follows C++ hiding rules: a member found in the
/// class itself hides base members; among bases, a member is ambiguous if
/// two distinct declarations are visible (the paper assumes programs
/// contain no ambiguous member lookups).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_HIERARCHY_CLASSHIERARCHY_H
#define DMM_HIERARCHY_CLASSHIERARCHY_H

#include "ast/Decl.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dmm {

class ASTContext;

/// Immutable view of the hierarchy of one program.
class ClassHierarchy {
public:
  explicit ClassHierarchy(const ASTContext &Ctx);

  /// True if \p Derived equals \p Base or transitively derives from it.
  bool isDerivedFrom(const ClassDecl *Derived, const ClassDecl *Base) const;

  /// Direct subclasses of \p CD.
  const std::vector<const ClassDecl *> &
  directSubclasses(const ClassDecl *CD) const;

  /// \p CD and all transitive subclasses.
  std::vector<const ClassDecl *>
  selfAndSubclasses(const ClassDecl *CD) const;

  /// All transitive bases of \p CD (each once; virtual bases deduped),
  /// not including \p CD itself.
  std::vector<const ClassDecl *> transitiveBases(const ClassDecl *CD) const;

  /// Transitive virtual bases of \p CD (each once).
  std::vector<const ClassDecl *> virtualBases(const ClassDecl *CD) const;

  /// Member lookup: finds the data member named \p Name visible in
  /// \p CD, searching \p CD then its bases with hiding. Returns null if
  /// not found or ambiguous (sets \p Ambiguous when provided).
  FieldDecl *lookupField(const ClassDecl *CD, const std::string &Name,
                         bool *Ambiguous = nullptr) const;

  /// Same as lookupField, for methods.
  MethodDecl *lookupMethod(const ClassDecl *CD, const std::string &Name,
                           bool *Ambiguous = nullptr) const;

  /// True if \p CD has any virtual method (declared or inherited) or any
  /// virtual base — i.e. its objects carry a vptr / vbase pointers.
  bool isPolymorphic(const ClassDecl *CD) const;

  /// True if \p M overrides a virtual method of a base class (or is
  /// itself declared virtual).
  bool isVirtualMethod(const MethodDecl *M) const;

  /// Resolves a virtual dispatch: the method that executes when \p M is
  /// invoked on an object whose dynamic class is \p DynamicClass.
  /// Returns \p M itself when no override exists; null when
  /// \p DynamicClass does not derive from \p M's class.
  MethodDecl *resolveVirtualCall(const ClassDecl *DynamicClass,
                                 const MethodDecl *M) const;

  /// All methods that override \p M in subclasses of \p M's class,
  /// excluding \p M itself.
  std::vector<MethodDecl *> overriders(const MethodDecl *M) const;

  /// Resolves the destructor executed for dynamic class \p CD (which is
  /// simply \p CD's destructor, if any).
  DestructorDecl *destructorFor(const ClassDecl *CD) const {
    return CD->destructor();
  }

  const std::vector<ClassDecl *> &allClasses() const { return Classes; }

private:
  void collectBases(const ClassDecl *CD,
                    std::vector<const ClassDecl *> &Out,
                    std::unordered_set<const ClassDecl *> &Seen) const;

  /// Collects the set of visible declarations of member \p Name in
  /// \p CD's scope (after hiding). Results are FieldDecl or MethodDecl.
  void lookupVisible(const ClassDecl *CD, const std::string &Name,
                     std::unordered_set<Decl *> &Out) const;

  std::vector<ClassDecl *> Classes;
  std::unordered_map<const ClassDecl *, std::vector<const ClassDecl *>>
      Subclasses;
  static const std::vector<const ClassDecl *> Empty;
};

} // namespace dmm

#endif // DMM_HIERARCHY_CLASSHIERARCHY_H
