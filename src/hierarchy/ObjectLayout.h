//===-- hierarchy/ObjectLayout.h - Object layout model ----------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VisualAge-style object layout model: natural alignment, a vptr in
/// dynamic classes, one vbase pointer per direct virtual base, non-virtual
/// base subobjects in declaration order, and virtual base subobjects
/// appended once at the end of the complete object. Unions overlap all
/// members at offset zero.
///
/// The dynamic measurements of the paper (Table 2 / Figure 4) are
/// computed from this model: per-object dead-member bytes and re-laid-out
/// object sizes with dead members removed.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_HIERARCHY_OBJECTLAYOUT_H
#define DMM_HIERARCHY_OBJECTLAYOUT_H

#include "ast/Decl.h"
#include "ast/Type.h"

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

namespace dmm {

class ClassHierarchy;

/// A set of data members (e.g. the analysis' dead set).
using FieldSet = std::unordered_set<const FieldDecl *>;

/// One directly declared field placed within a class' own layout region.
struct FieldSlot {
  const FieldDecl *Field = nullptr;
  uint64_t Offset = 0; ///< Within the complete object.
  uint64_t Size = 0;
};

/// Layout summary of a class.
struct ClassLayout {
  /// sizeof a complete (most-derived) object, padding included.
  uint64_t CompleteSize = 0;
  /// Size of the non-virtual subobject region (used when this class is a
  /// non-virtual base of another).
  uint64_t NonVirtualSize = 0;
  uint64_t Align = 1;
  bool HasOwnVPtr = false;
  /// vptr + vbase-pointer bytes across all subobjects of the complete
  /// object.
  uint64_t OverheadBytes = 0;
  /// All fields of the complete object (own + all base subobjects;
  /// virtual bases once), with their offsets.
  std::vector<FieldSlot> AllFields;
};

/// Computes sizes, alignments, and class layouts; caches per class.
class LayoutEngine {
public:
  explicit LayoutEngine(const ClassHierarchy &CH) : CH(CH) {}

  /// Size in bytes of any sizeof-able type. Class types use the complete
  /// object size. Incomplete classes yield 0.
  uint64_t sizeOf(const Type *T) const;
  uint64_t alignOf(const Type *T) const;

  /// Full layout of class \p CD (cached).
  const ClassLayout &layout(const ClassDecl *CD) const;

  /// Bytes of a complete \p CD object occupied by members in \p Dead,
  /// including dead members nested inside live class-typed members. For
  /// unions, occupancy is the size reduction achievable by removing the
  /// dead alternatives (overlapped bytes cannot be double-counted).
  uint64_t deadBytes(const ClassDecl *CD, const FieldSet &Dead) const;

  /// sizeof a complete \p CD object after removing all members in
  /// \p Dead and re-laying out (recursively, including members of
  /// member classes). Never larger than CompleteSize.
  uint64_t sizeWithoutDead(const ClassDecl *CD, const FieldSet &Dead) const;

  static constexpr uint64_t PointerSize = 8;

private:
  struct ShrinkKey {
    const ClassDecl *CD;
    const FieldSet *Dead;
    bool operator<(const ShrinkKey &O) const {
      return CD < O.CD || (CD == O.CD && Dead < O.Dead);
    }
  };

  /// Lays out \p CD's non-virtual region starting at \p Base offset,
  /// appending field slots to \p L. Returns the region size.
  uint64_t layoutNonVirtual(const ClassDecl *CD, uint64_t Base,
                            ClassLayout &L) const;

  uint64_t sizeOfField(const FieldDecl *F, const FieldSet &Dead) const;

  const ClassHierarchy &CH;
  mutable std::map<const ClassDecl *, ClassLayout> Cache;
  mutable std::map<ShrinkKey, uint64_t> ShrinkCache;
};

} // namespace dmm

#endif // DMM_HIERARCHY_OBJECTLAYOUT_H
