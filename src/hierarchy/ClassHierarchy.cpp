//===-- hierarchy/ClassHierarchy.cpp --------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/ClassHierarchy.h"

#include "ast/ASTContext.h"

#include <cassert>

using namespace dmm;

const std::vector<const ClassDecl *> ClassHierarchy::Empty;

ClassHierarchy::ClassHierarchy(const ASTContext &Ctx)
    : Classes(Ctx.classes()) {
  for (const ClassDecl *CD : Classes)
    for (const BaseSpecifier &BS : CD->bases())
      Subclasses[BS.Base].push_back(CD);
}

bool ClassHierarchy::isDerivedFrom(const ClassDecl *Derived,
                                   const ClassDecl *Base) const {
  if (Derived == Base)
    return true;
  for (const BaseSpecifier &BS : Derived->bases())
    if (isDerivedFrom(BS.Base, Base))
      return true;
  return false;
}

const std::vector<const ClassDecl *> &
ClassHierarchy::directSubclasses(const ClassDecl *CD) const {
  auto It = Subclasses.find(CD);
  return It == Subclasses.end() ? Empty : It->second;
}

std::vector<const ClassDecl *>
ClassHierarchy::selfAndSubclasses(const ClassDecl *CD) const {
  std::vector<const ClassDecl *> Result;
  std::unordered_set<const ClassDecl *> Seen;
  std::vector<const ClassDecl *> Work{CD};
  while (!Work.empty()) {
    const ClassDecl *Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    Result.push_back(Cur);
    for (const ClassDecl *Sub : directSubclasses(Cur))
      Work.push_back(Sub);
  }
  return Result;
}

void ClassHierarchy::collectBases(
    const ClassDecl *CD, std::vector<const ClassDecl *> &Out,
    std::unordered_set<const ClassDecl *> &Seen) const {
  for (const BaseSpecifier &BS : CD->bases()) {
    if (Seen.insert(BS.Base).second)
      Out.push_back(BS.Base);
    collectBases(BS.Base, Out, Seen);
  }
}

std::vector<const ClassDecl *>
ClassHierarchy::transitiveBases(const ClassDecl *CD) const {
  std::vector<const ClassDecl *> Out;
  std::unordered_set<const ClassDecl *> Seen;
  collectBases(CD, Out, Seen);
  return Out;
}

std::vector<const ClassDecl *>
ClassHierarchy::virtualBases(const ClassDecl *CD) const {
  std::vector<const ClassDecl *> Out;
  std::unordered_set<const ClassDecl *> Seen;
  // Walk all bases; a base reached through a virtual edge anywhere is a
  // virtual base of the complete object.
  std::vector<const ClassDecl *> Work{CD};
  std::unordered_set<const ClassDecl *> Visited;
  while (!Work.empty()) {
    const ClassDecl *Cur = Work.back();
    Work.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    for (const BaseSpecifier &BS : Cur->bases()) {
      if (BS.IsVirtual && Seen.insert(BS.Base).second)
        Out.push_back(BS.Base);
      Work.push_back(BS.Base);
    }
  }
  return Out;
}

void ClassHierarchy::lookupVisible(const ClassDecl *CD,
                                   const std::string &Name,
                                   std::unordered_set<Decl *> &Out) const {
  if (FieldDecl *F = CD->findField(Name)) {
    Out.insert(F);
    return; // Hides base members.
  }
  if (MethodDecl *M = CD->findMethod(Name)) {
    Out.insert(M);
    return;
  }
  for (const BaseSpecifier &BS : CD->bases())
    lookupVisible(BS.Base, Name, Out);
}

FieldDecl *ClassHierarchy::lookupField(const ClassDecl *CD,
                                       const std::string &Name,
                                       bool *Ambiguous) const {
  if (Ambiguous)
    *Ambiguous = false;
  std::unordered_set<Decl *> Found;
  lookupVisible(CD, Name, Found);
  if (Found.size() > 1) {
    if (Ambiguous)
      *Ambiguous = true;
    return nullptr;
  }
  if (Found.empty())
    return nullptr;
  return dyn_cast<FieldDecl>(*Found.begin());
}

MethodDecl *ClassHierarchy::lookupMethod(const ClassDecl *CD,
                                         const std::string &Name,
                                         bool *Ambiguous) const {
  if (Ambiguous)
    *Ambiguous = false;
  std::unordered_set<Decl *> Found;
  lookupVisible(CD, Name, Found);
  if (Found.size() > 1) {
    if (Ambiguous)
      *Ambiguous = true;
    return nullptr;
  }
  if (Found.empty())
    return nullptr;
  return dyn_cast<MethodDecl>(*Found.begin());
}

bool ClassHierarchy::isPolymorphic(const ClassDecl *CD) const {
  for (const MethodDecl *M : CD->methods())
    if (isVirtualMethod(M))
      return true;
  if (CD->destructor() && CD->destructor()->isVirtual())
    return true;
  for (const BaseSpecifier &BS : CD->bases()) {
    if (BS.IsVirtual || isPolymorphic(BS.Base))
      return true;
  }
  return false;
}

bool ClassHierarchy::isVirtualMethod(const MethodDecl *M) const {
  if (M->isVirtual())
    return true;
  // Overriding a virtual base method makes a method virtual even without
  // the keyword.
  for (const ClassDecl *Base : transitiveBases(M->parent()))
    if (MethodDecl *BaseM = Base->findMethod(M->name()))
      if (BaseM->isVirtual())
        return true;
  return false;
}

MethodDecl *
ClassHierarchy::resolveVirtualCall(const ClassDecl *DynamicClass,
                                   const MethodDecl *M) const {
  if (!isDerivedFrom(DynamicClass, M->parent()))
    return nullptr;
  // The most-derived override is found by ordinary lookup from the
  // dynamic class (MiniC++ has no overloading, so names identify
  // methods).
  if (MethodDecl *Found = lookupMethod(DynamicClass, M->name()))
    return Found;
  return const_cast<MethodDecl *>(M);
}

std::vector<MethodDecl *>
ClassHierarchy::overriders(const MethodDecl *M) const {
  std::vector<MethodDecl *> Result;
  for (const ClassDecl *Sub : selfAndSubclasses(M->parent())) {
    if (Sub == M->parent())
      continue;
    if (MethodDecl *Override = Sub->findMethod(M->name()))
      Result.push_back(Override);
  }
  return Result;
}
