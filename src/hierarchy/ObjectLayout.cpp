//===-- hierarchy/ObjectLayout.cpp ----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "hierarchy/ObjectLayout.h"

#include "hierarchy/ClassHierarchy.h"

#include <algorithm>
#include <cassert>

using namespace dmm;

static uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && "zero alignment");
  return (Value + Align - 1) / Align * Align;
}

/// True if \p CD has a virtual method or virtual destructor, declared or
/// inherited: its objects need a vptr somewhere.
static bool isDynamicClass(const ClassHierarchy &CH, const ClassDecl *CD) {
  for (const MethodDecl *M : CD->methods())
    if (CH.isVirtualMethod(M))
      return true;
  if (CD->destructor() && CD->destructor()->isVirtual())
    return true;
  for (const BaseSpecifier &BS : CD->bases())
    if (isDynamicClass(CH, BS.Base))
      return true;
  return false;
}

uint64_t LayoutEngine::sizeOf(const Type *T) const {
  switch (T->kind()) {
  case Type::Kind::Builtin:
    switch (cast<BuiltinType>(T)->builtinKind()) {
    case BuiltinType::BK::Void: return 0;
    case BuiltinType::BK::Bool: return 1;
    case BuiltinType::BK::Char: return 1;
    case BuiltinType::BK::Int: return 4;
    case BuiltinType::BK::Double: return 8;
    case BuiltinType::BK::NullPtr: return PointerSize;
    }
    return 0;
  case Type::Kind::Class: {
    const ClassDecl *CD = cast<ClassType>(T)->decl();
    if (!CD->isComplete())
      return 0;
    return layout(CD).CompleteSize;
  }
  case Type::Kind::Pointer:
  case Type::Kind::Reference:
  case Type::Kind::MemberPointer:
    return PointerSize;
  case Type::Kind::Array: {
    const auto *AT = cast<ArrayType>(T);
    return AT->size() * sizeOf(AT->element());
  }
  case Type::Kind::Function:
    return 0; // Not an object type.
  }
  return 0;
}

uint64_t LayoutEngine::alignOf(const Type *T) const {
  switch (T->kind()) {
  case Type::Kind::Builtin:
    return std::max<uint64_t>(1, sizeOf(T));
  case Type::Kind::Class: {
    const ClassDecl *CD = cast<ClassType>(T)->decl();
    if (!CD->isComplete())
      return 1;
    return layout(CD).Align;
  }
  case Type::Kind::Pointer:
  case Type::Kind::Reference:
  case Type::Kind::MemberPointer:
    return PointerSize;
  case Type::Kind::Array:
    return alignOf(cast<ArrayType>(T)->element());
  case Type::Kind::Function:
    return 1;
  }
  return 1;
}

uint64_t LayoutEngine::layoutNonVirtual(const ClassDecl *CD, uint64_t Base,
                                        ClassLayout &L) const {
  uint64_t Offset = Base;

  if (CD->isUnion()) {
    uint64_t Size = 0;
    for (const FieldDecl *F : CD->fields()) {
      uint64_t FieldSize = sizeOf(F->type());
      L.AllFields.push_back({F, Base, FieldSize});
      Size = std::max(Size, FieldSize);
    }
    return Size;
  }

  bool Dynamic = isDynamicClass(CH, CD);
  bool BaseProvidesVPtr = false;
  for (const BaseSpecifier &BS : CD->bases())
    if (!BS.IsVirtual && isDynamicClass(CH, BS.Base))
      BaseProvidesVPtr = true;

  if (Dynamic && !BaseProvidesVPtr) {
    Offset += PointerSize; // vptr
    L.OverheadBytes += PointerSize;
  }

  // Non-virtual base subobjects, declaration order.
  for (const BaseSpecifier &BS : CD->bases()) {
    if (BS.IsVirtual)
      continue;
    Offset = alignTo(Offset, layout(BS.Base).Align);
    Offset += layoutNonVirtual(BS.Base, Offset, L);
  }

  // One vbase pointer per direct virtual base.
  for (const BaseSpecifier &BS : CD->bases()) {
    if (!BS.IsVirtual)
      continue;
    Offset = alignTo(Offset, PointerSize);
    Offset += PointerSize;
    L.OverheadBytes += PointerSize;
  }

  // Own fields.
  for (const FieldDecl *F : CD->fields()) {
    uint64_t FieldSize = sizeOf(F->type());
    Offset = alignTo(Offset, alignOf(F->type()));
    L.AllFields.push_back({F, Offset, FieldSize});
    Offset += FieldSize;
  }

  return Offset - Base;
}

const ClassLayout &LayoutEngine::layout(const ClassDecl *CD) const {
  auto It = Cache.find(CD);
  if (It != Cache.end())
    return It->second;

  ClassLayout L;

  // Alignment: max over vptr presence, bases, and fields.
  uint64_t Align = 1;
  if (isDynamicClass(CH, CD) || !CH.virtualBases(CD).empty())
    Align = PointerSize;
  for (const BaseSpecifier &BS : CD->bases())
    Align = std::max(Align, layout(BS.Base).Align);
  for (const FieldDecl *F : CD->fields())
    Align = std::max(Align, alignOf(F->type()));
  L.Align = Align;

  bool BaseProvidesVPtr = false;
  for (const BaseSpecifier &BS : CD->bases())
    if (!BS.IsVirtual && isDynamicClass(CH, BS.Base))
      BaseProvidesVPtr = true;
  L.HasOwnVPtr = isDynamicClass(CH, CD) && !BaseProvidesVPtr;

  uint64_t NVSize = layoutNonVirtual(CD, 0, L);
  L.NonVirtualSize = alignTo(std::max<uint64_t>(NVSize, 1), Align);

  // Virtual base subobjects at the end of the complete object.
  uint64_t Offset = NVSize;
  for (const ClassDecl *VB : CH.virtualBases(CD)) {
    Offset = alignTo(Offset, layout(VB).Align);
    Offset += layoutNonVirtual(VB, Offset, L);
  }
  L.CompleteSize = alignTo(std::max<uint64_t>(Offset, 1), Align);

  return Cache.emplace(CD, std::move(L)).first->second;
}

uint64_t LayoutEngine::deadBytes(const ClassDecl *CD,
                                 const FieldSet &Dead) const {
  if (CD->isUnion()) {
    uint64_t Full = layout(CD).CompleteSize;
    uint64_t Shrunk = sizeWithoutDead(CD, Dead);
    return Full - Shrunk;
  }
  uint64_t Bytes = 0;
  for (const FieldSlot &Slot : layout(CD).AllFields) {
    const Type *Ty = Slot.Field->type();
    if (Dead.count(Slot.Field)) {
      Bytes += Slot.Size;
      continue;
    }
    if (const ClassDecl *Nested = Ty->asClassDecl()) {
      Bytes += deadBytes(Nested, Dead);
      continue;
    }
    if (const auto *AT = dyn_cast<ArrayType>(Ty))
      if (const ClassDecl *Elem = AT->element()->asClassDecl())
        Bytes += AT->size() * deadBytes(Elem, Dead);
  }
  return Bytes;
}

uint64_t LayoutEngine::sizeOfField(const FieldDecl *F,
                                   const FieldSet &Dead) const {
  const Type *Ty = F->type();
  if (const ClassDecl *Nested = Ty->asClassDecl())
    return sizeWithoutDead(Nested, Dead);
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    if (const ClassDecl *Elem = AT->element()->asClassDecl())
      return AT->size() * sizeWithoutDead(Elem, Dead);
  return sizeOf(Ty);
}

uint64_t LayoutEngine::sizeWithoutDead(const ClassDecl *CD,
                                       const FieldSet &Dead) const {
  ShrinkKey Key{CD, &Dead};
  auto It = ShrinkCache.find(Key);
  if (It != ShrinkCache.end())
    return It->second;

  // Re-lay out with the same rules as layout()/layoutNonVirtual but
  // skipping dead fields, shrinking nested member objects, and
  // recomputing alignment from the surviving parts.
  struct Relayouter {
    const LayoutEngine &Engine;
    const ClassHierarchy &CH;
    const FieldSet &Dead;

    uint64_t align(const ClassDecl *C) const {
      uint64_t A = 1;
      if (isDynamicClass(CH, C) || !CH.virtualBases(C).empty())
        A = LayoutEngine::PointerSize;
      for (const BaseSpecifier &BS : C->bases())
        A = std::max(A, align(BS.Base));
      for (const FieldDecl *F : C->fields()) {
        if (Dead.count(F))
          continue;
        if (const ClassDecl *Member = F->type()->asClassDecl())
          A = std::max(A, align(Member));
        else if (const auto *AT = dyn_cast<ArrayType>(F->type());
                 AT && AT->element()->asClassDecl())
          A = std::max(A, align(AT->element()->asClassDecl()));
        else
          A = std::max(A, Engine.alignOf(F->type()));
      }
      return A;
    }

    uint64_t fieldAlign(const FieldDecl *F) const {
      if (const ClassDecl *Member = F->type()->asClassDecl())
        return align(Member);
      if (const auto *AT = dyn_cast<ArrayType>(F->type()))
        if (const ClassDecl *Elem = AT->element()->asClassDecl())
          return align(Elem);
      return Engine.alignOf(F->type());
    }

    uint64_t nonVirtual(const ClassDecl *C, uint64_t Base) const {
      if (C->isUnion()) {
        uint64_t Size = 0;
        for (const FieldDecl *F : C->fields())
          if (!Dead.count(F))
            Size = std::max(Size, Engine.sizeOfField(F, Dead));
        return Size;
      }
      uint64_t Offset = Base;
      bool BaseProvidesVPtr = false;
      for (const BaseSpecifier &BS : C->bases())
        if (!BS.IsVirtual && isDynamicClass(CH, BS.Base))
          BaseProvidesVPtr = true;
      if (isDynamicClass(CH, C) && !BaseProvidesVPtr)
        Offset += LayoutEngine::PointerSize;
      for (const BaseSpecifier &BS : C->bases()) {
        if (BS.IsVirtual)
          continue;
        Offset = alignTo(Offset, align(BS.Base));
        Offset += nonVirtual(BS.Base, Offset);
      }
      for (const BaseSpecifier &BS : C->bases()) {
        if (!BS.IsVirtual)
          continue;
        Offset = alignTo(Offset, LayoutEngine::PointerSize);
        Offset += LayoutEngine::PointerSize;
      }
      for (const FieldDecl *F : C->fields()) {
        if (Dead.count(F))
          continue;
        Offset = alignTo(Offset, fieldAlign(F));
        Offset += Engine.sizeOfField(F, Dead);
      }
      return Offset - Base;
    }
  };

  Relayouter R{*this, CH, Dead};
  uint64_t Offset = R.nonVirtual(CD, 0);
  for (const ClassDecl *VB : CH.virtualBases(CD)) {
    Offset = alignTo(Offset, R.align(VB));
    Offset += R.nonVirtual(VB, Offset);
  }
  uint64_t Size = alignTo(std::max<uint64_t>(Offset, 1), R.align(CD));
  Size = std::min(Size, layout(CD).CompleteSize);
  ShrinkCache[Key] = Size;
  return Size;
}
