//===-- profiler/ShadowProfiler.cpp - Per-byte shadow memory --------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "profiler/ShadowProfiler.h"

#include "ast/Decl.h"
#include "ast/Type.h"
#include "support/Casting.h"
#include "support/SourceManager.h"
#include "telemetry/Stats.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace dmm;

namespace {

/// Snapshot buffer cap: when a new snapshot would exceed this, every
/// other snapshot is dropped and the stride doubles (massif's scheme).
constexpr size_t kMaxSnapshots = 256;

} // namespace

ShadowProfiler::ShadowProfiler(const ClassHierarchy &CH, FieldSet DeadSet)
    : Layout(CH), Dead(std::move(DeadSet)) {}

ShadowProfiler::~ShadowProfiler() = default;

//===----------------------------------------------------------------------===//
// Layout expansion
//===----------------------------------------------------------------------===//

void ShadowProfiler::expandClass(const ClassDecl *CD, uint64_t Base,
                                 bool DeadCtx, ClassInfo &CI) {
  for (const FieldSlot &S : Layout.layout(CD).AllFields) {
    const bool FieldDead = DeadCtx || Dead.count(S.Field) != 0;
    const Type *Ty = S.Field->type();
    if (const ClassDecl *Member = Ty->asClassDecl()) {
      // A by-value class member embeds the member class' complete
      // object; its leaves are the nested class' own leaves.
      expandClass(Member, Base + S.Offset, FieldDead, CI);
      continue;
    }
    if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
      if (const ClassDecl *Elem = AT->element()->asClassDecl()) {
        const uint64_t Stride = Layout.sizeOf(AT->element());
        for (uint64_t I = 0; I < AT->size(); ++I)
          expandClass(Elem, Base + S.Offset + I * Stride, FieldDead, CI);
        continue;
      }
      // Scalar arrays fall through: one leaf covering the whole array
      // (element accesses attribute to the array member as a unit).
    }
    // Leaf: scalar member or scalar array. Merge ranges into an
    // existing leaf for the same field at the same nesting only when
    // produced by repeated non-virtual bases (same FieldDecl appears in
    // AllFields twice); distinct leaves otherwise.
    LeafInfo Leaf;
    Leaf.Field = S.Field;
    Leaf.Ranges.push_back({Base + S.Offset, S.Size});
    Leaf.Bytes = S.Size;
    Leaf.StaticDead = FieldDead;
    CI.LeafIndex[S.Field].push_back(static_cast<uint32_t>(CI.Leaves.size()));
    CI.Leaves.push_back(std::move(Leaf));
  }
}

const ShadowProfiler::ClassInfo &
ShadowProfiler::classInfo(const ClassDecl *CD) {
  auto It = Classes.find(CD);
  if (It != Classes.end())
    return *It->second;
  auto CI = std::make_unique<ClassInfo>();
  CI->CD = CD;
  CI->Size = Layout.layout(CD).CompleteSize;
  CI->DeadPer = Layout.deadBytes(CD, Dead);
  CI->ShrunkPer = Layout.sizeWithoutDead(CD, Dead);
  expandClass(CD, 0, /*DeadCtx=*/false, *CI);
  return *Classes.emplace(CD, std::move(CI)).first->second;
}

//===----------------------------------------------------------------------===//
// Allocation / deallocation events
//===----------------------------------------------------------------------===//

void ShadowProfiler::registerObjects(const ClassDecl *CD, uint64_t Count,
                                     uint64_t FirstID, SourceLocation Site) {
  if (Finalized || Count == 0)
    return;
  const ClassInfo &CI = classInfo(CD);
  AllocRecord R;
  R.Site = Site;
  R.CI = &CI;
  R.FirstID = FirstID;
  R.Count = Count;
  const auto Index = static_cast<uint32_t>(Records.size());
  Records.push_back(R);
  LiveGroups[FirstID] = Index;
  for (uint64_t I = 0; I < Count; ++I) {
    ShadowObject &SO = Shadows[FirstID + I];
    SO.CI = &CI;
    SO.Record = Index;
    SO.Bytes.assign(CI.Size, SB_Allocated);
  }
}

void ShadowProfiler::recordAllocEvent(uint64_t FirstID) {
  if (Finalized)
    return;
  auto It = LiveGroups.find(FirstID);
  if (It == LiveGroups.end())
    return;
  AllocRecord &R = Records[It->second];
  if (R.Counted)
    return;
  R.Counted = true;

  // Mirror computeDynamicMetrics' Alloc case exactly: the trace and the
  // shadow profiler see the same events in the same order, so the
  // running aggregates match the replayed ones byte-for-byte.
  const uint64_t Bytes = R.Count * R.CI->Size;
  DynamicMetrics &M = Sum.Metrics;
  M.ObjectSpace += Bytes;
  M.DeadMemberSpace += R.Count * R.CI->DeadPer;
  M.NumObjects += R.Count;
  LiveBytes += Bytes;
  LiveShrunkBytes += R.Count * R.CI->ShrunkPer;
  LiveObjects += R.Count;
  ++Sum.AllocEvents;
  if (LiveBytes > M.HighWaterMark) {
    M.HighWaterMark = LiveBytes;
    Sum.PeakAllocEvent = Sum.AllocEvents;
  }
  M.HighWaterMarkNoDead = std::max(M.HighWaterMarkNoDead, LiveShrunkBytes);

  if (Sum.AllocEvents % Sum.SnapshotStride == 0)
    takeSnapshot();
}

void ShadowProfiler::takeSnapshot() {
  if (Sum.Snapshots.size() >= kMaxSnapshots) {
    // Massif-style compaction: double the stride, keep the snapshots
    // that fall on the new schedule. Deterministic for a given event
    // sequence.
    Sum.SnapshotStride *= 2;
    const uint64_t Stride = Sum.SnapshotStride;
    Sum.Snapshots.erase(
        std::remove_if(Sum.Snapshots.begin(), Sum.Snapshots.end(),
                       [Stride](const ProfileSnapshot &S) {
                         return S.AllocEvent % Stride != 0;
                       }),
        Sum.Snapshots.end());
    if (Sum.AllocEvents % Stride != 0)
      return; // This event is no longer on the schedule.
  }
  Sum.Snapshots.push_back(
      {Sum.AllocEvents, LiveBytes, LiveShrunkBytes, LiveObjects});
  // An instant span puts the snapshot on the Chrome trace timeline and
  // into the stats span tree. All args are deterministic.
  Span S("profiler.snapshot");
  S.arg("event", Sum.AllocEvents);
  S.arg("live_bytes", LiveBytes);
  S.arg("live_bytes_no_dead", LiveShrunkBytes);
  S.arg("live_objects", LiveObjects);
}

void ShadowProfiler::recordFree(uint64_t FirstID) {
  if (Finalized)
    return;
  auto It = LiveGroups.find(FirstID);
  if (It == LiveGroups.end())
    return;
  const uint32_t Index = It->second;
  AllocRecord &R = Records[Index];
  if (!R.Counted)
    return; // The matching alloc event was never recorded; neither is
            // the free (mirrors the trace's TraceIDs guard).

  const uint64_t Bytes = R.Count * R.CI->Size;
  const uint64_t Shrunk = R.Count * R.CI->ShrunkPer;
  LiveBytes -= std::min(LiveBytes, Bytes);
  LiveShrunkBytes -= std::min(LiveShrunkBytes, Shrunk);
  LiveObjects -= std::min(LiveObjects, R.Count);
  ++Sum.FreeEvents;

  foldGroup(Index);
  LiveGroups.erase(It);
}

//===----------------------------------------------------------------------===//
// Member access marking
//===----------------------------------------------------------------------===//

void ShadowProfiler::mark(uint64_t ObjectID, const FieldDecl *F,
                          uint8_t Bits) {
  if (Finalized || ObjectID == 0 || !F)
    return;
  auto It = Shadows.find(ObjectID);
  if (It == Shadows.end())
    return;
  ShadowObject &SO = It->second;
  auto LI = SO.CI->LeafIndex.find(F);
  if (LI == SO.CI->LeafIndex.end())
    return;
  for (uint32_t LeafIdx : LI->second) {
    const LeafInfo &Leaf = SO.CI->Leaves[LeafIdx];
    for (const Range &R : Leaf.Ranges) {
      // Check the first byte: marks always cover whole ranges, so if it
      // already carries the bits the rest of the range does too.
      if (R.Size == 0 || (SO.Bytes[R.Offset] & Bits) == Bits)
        continue;
      for (uint64_t B = 0; B < R.Size; ++B)
        SO.Bytes[R.Offset + B] |= Bits;
    }
  }
}

void ShadowProfiler::recordRead(uint64_t ObjectID, const FieldDecl *F) {
  mark(ObjectID, F, SB_Read);
}

void ShadowProfiler::recordWrite(uint64_t ObjectID, const FieldDecl *F) {
  mark(ObjectID, F, SB_Written);
}

void ShadowProfiler::recordAddrTaken(uint64_t ObjectID, const FieldDecl *F) {
  mark(ObjectID, F, SB_AddrTaken);
}

//===----------------------------------------------------------------------===//
// Folding and finalization
//===----------------------------------------------------------------------===//

void ShadowProfiler::foldObject(const AllocRecord &R, uint64_t ObjectID) {
  auto It = Shadows.find(ObjectID);
  if (It == Shadows.end())
    return;
  const ShadowObject &SO = It->second;
  const SourceLocation Site = R.Site;
  for (const LeafInfo &Leaf : SO.CI->Leaves) {
    SiteKey Key{Site.fileID(), Site.offset(), SO.CI->CD, Leaf.Field};
    SiteAccum &A = Cells[Key];
    uint8_t Flags = 0;
    for (const Range &Rg : Leaf.Ranges)
      for (uint64_t B = 0; B < Rg.Size; ++B)
        Flags |= SO.Bytes[Rg.Offset + B];
    ++A.Objects;
    A.AllocBytes += Leaf.Bytes;
    A.StaticDead = Leaf.StaticDead;
    if (Flags & SB_Written) {
      A.WrittenBytes += Leaf.Bytes;
      Sum.WrittenBytes += Leaf.Bytes;
    }
    if (Flags & SB_Read) {
      A.ReadBytes += Leaf.Bytes;
      Sum.ReadBytes += Leaf.Bytes;
    } else {
      A.NeverReadBytes += Leaf.Bytes;
      Sum.NeverReadBytes += Leaf.Bytes;
    }
    if (Flags & SB_AddrTaken) {
      A.AddrTakenBytes += Leaf.Bytes;
      Sum.AddrTakenBytes += Leaf.Bytes;
    }
  }
  Shadows.erase(It);
}

void ShadowProfiler::foldGroup(uint32_t RecordIndex) {
  const AllocRecord &R = Records[RecordIndex];
  for (uint64_t I = 0; I < R.Count; ++I)
    foldObject(R, R.FirstID + I);
}

const ProfileSummary &ShadowProfiler::finalize(const SourceManager *SM) {
  if (Finalized)
    return Sum;

  // Objects still live at exit leaked; their shadow state still counts
  // toward the attribution table.
  for (const auto &[FirstID, Index] : LiveGroups) {
    const AllocRecord &R = Records[Index];
    if (!R.Counted)
      continue;
    Sum.LeakedObjects += R.Count;
    foldGroup(Index);
  }
  LiveGroups.clear();
  Finalized = true;

  // Resolve cells into display rows and order them deterministically.
  Sum.Sites.reserve(Cells.size());
  for (const auto &[Key, A] : Cells) {
    ProfileSiteRow Row;
    PresumedLoc Loc;
    if (SM)
      Loc = SM->presumedLoc(SourceLocation(Key.File, Key.Offset));
    if (Loc.isValid()) {
      Row.File = std::string(Loc.Filename);
      Row.Line = Loc.Line;
    } else {
      Row.File = "<unknown>";
      Row.Line = 0;
    }
    Row.Class = Key.CD->name();
    Row.Member = Key.Field->qualifiedName();
    Row.Objects = A.Objects;
    Row.AllocBytes = A.AllocBytes;
    Row.WrittenBytes = A.WrittenBytes;
    Row.ReadBytes = A.ReadBytes;
    Row.AddrTakenBytes = A.AddrTakenBytes;
    Row.NeverReadBytes = A.NeverReadBytes;
    Row.StaticDead = A.StaticDead;
    Sum.Sites.push_back(std::move(Row));
  }
  std::sort(Sum.Sites.begin(), Sum.Sites.end(),
            [](const ProfileSiteRow &L, const ProfileSiteRow &R) {
              if (L.File != R.File)
                return L.File < R.File;
              if (L.Line != R.Line)
                return L.Line < R.Line;
              if (L.Class != R.Class)
                return L.Class < R.Class;
              return L.Member < R.Member;
            });
  return Sum;
}

const ProfileSummary &ShadowProfiler::summary() const {
  assert(Finalized && "summary() before finalize()");
  return Sum;
}

void ShadowProfiler::emitCounters() const {
  const DynamicMetrics &M = Sum.Metrics;
  Telemetry::count("profiler.allocs", Sum.AllocEvents);
  Telemetry::count("profiler.frees", Sum.FreeEvents);
  Telemetry::count("profiler.objects", M.NumObjects);
  Telemetry::count("profiler.object_bytes", M.ObjectSpace);
  Telemetry::count("profiler.dead_member_bytes", M.DeadMemberSpace);
  Telemetry::count("profiler.high_water_mark", M.HighWaterMark);
  Telemetry::count("profiler.high_water_mark_no_dead", M.HighWaterMarkNoDead);
  Telemetry::count("profiler.leaked_objects", Sum.LeakedObjects);
  Telemetry::count("profiler.snapshots", Sum.Snapshots.size());
  Telemetry::count("profiler.snapshot_stride", Sum.SnapshotStride);
  Telemetry::count("profiler.sites", Sum.Sites.size());
  Telemetry::count("profiler.read_bytes", Sum.ReadBytes);
  Telemetry::count("profiler.written_bytes", Sum.WrittenBytes);
  Telemetry::count("profiler.addr_taken_bytes", Sum.AddrTakenBytes);
  Telemetry::count("profiler.never_read_bytes", Sum.NeverReadBytes);
}

stats::ProfilerSection dmm::toProfilerSection(const ProfileSummary &P) {
  stats::ProfilerSection S;
  S.Present = true;
  S.ObjectSpace = P.Metrics.ObjectSpace;
  S.DeadMemberSpace = P.Metrics.DeadMemberSpace;
  S.HighWaterMark = P.Metrics.HighWaterMark;
  S.HighWaterMarkNoDead = P.Metrics.HighWaterMarkNoDead;
  S.NumObjects = P.Metrics.NumObjects;
  S.AllocEvents = P.AllocEvents;
  S.FreeEvents = P.FreeEvents;
  S.LeakedObjects = P.LeakedObjects;
  S.PeakAllocEvent = P.PeakAllocEvent;
  S.SnapshotStride = P.SnapshotStride;
  S.Snapshots.reserve(P.Snapshots.size());
  for (const ProfileSnapshot &Snap : P.Snapshots)
    S.Snapshots.push_back(
        {Snap.AllocEvent, Snap.LiveBytes, Snap.LiveBytesNoDead,
         Snap.LiveObjects});
  S.Sites.reserve(P.Sites.size());
  for (const ProfileSiteRow &Row : P.Sites) {
    stats::ProfilerSiteRow Out;
    Out.File = Row.File;
    Out.Line = Row.Line;
    Out.Class = Row.Class;
    Out.Member = Row.Member;
    Out.Objects = Row.Objects;
    Out.AllocBytes = Row.AllocBytes;
    Out.WrittenBytes = Row.WrittenBytes;
    Out.ReadBytes = Row.ReadBytes;
    Out.AddrTakenBytes = Row.AddrTakenBytes;
    Out.NeverReadBytes = Row.NeverReadBytes;
    Out.StaticDead = Row.StaticDead;
    S.Sites.push_back(std::move(Out));
  }
  return S;
}
