//===-- profiler/ShadowProfiler.h - Per-byte shadow memory ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A valgrind-memcheck/massif-style shadow-memory layer driven by the
/// interpreter. Every traced complete object gets a per-byte shadow
/// vector over its layout (allocated / written / read / address-taken
/// bits), keyed by object identity (the interpreter's ObjectID) and the
/// LayoutEngine's member layout. From the shadow state the profiler
/// derives, exactly and online:
///
///  - the paper's dynamic measurements (object space, dead data member
///    space, high-water mark with and without dead members) — these are
///    updated at the same event points as the AllocationTrace, so on any
///    execution they equal trace/DynamicMetrics.h's replayed numbers
///    byte-for-byte (the profiler doubles as a differential oracle for
///    the trace path);
///  - massif-style high-water-mark snapshots on a deterministic
///    allocation-count schedule (stride starts at 1 and doubles whenever
///    the snapshot buffer would exceed its cap, halving the buffer);
///  - per-allocation-site (file:line x class x member) byte attribution:
///    allocated / written / read / address-taken / never-read bytes for
///    every leaf data member, with dead members flagged.
///
/// Read/write attribution mirrors the interpreter's ReadSet/WriteSet
/// semantics, including the paper's footnote-3 deallocation exemption
/// (a member loaded only to be freed is not marked read). Member-level
/// marks are expanded to byte ranges through the layout; a member of a
/// repeated non-virtual base shares storage, so a mark sets the bytes of
/// every subobject copy, and union members overlap, so reading one
/// alternative marks the shared bytes of all of them.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_PROFILER_SHADOWPROFILER_H
#define DMM_PROFILER_SHADOWPROFILER_H

#include "hierarchy/ObjectLayout.h"
#include "support/SourceLocation.h"
#include "trace/DynamicMetrics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace dmm {

class ClassHierarchy;
class SourceManager;

namespace stats {
struct ProfilerSection;
}

/// Per-byte shadow states. A byte may carry any combination.
enum ShadowBits : uint8_t {
  SB_Allocated = 1u << 0,
  SB_Written = 1u << 1,
  SB_Read = 1u << 2,
  SB_AddrTaken = 1u << 3,
};

/// One point on the high-water-mark timeline.
struct ProfileSnapshot {
  uint64_t AllocEvent = 0; ///< 1-based allocation-event index.
  uint64_t LiveBytes = 0;
  uint64_t LiveBytesNoDead = 0; ///< Live bytes after removing dead members.
  uint64_t LiveObjects = 0;     ///< Live complete objects.
};

/// Byte attribution for one (allocation site, class, leaf member) cell.
struct ProfileSiteRow {
  std::string File; ///< "<unknown>" when the site has no location.
  unsigned Line = 0;
  std::string Class;  ///< Name of the allocated class.
  std::string Member; ///< Qualified name of the leaf data member.
  uint64_t Objects = 0;
  uint64_t AllocBytes = 0;
  uint64_t WrittenBytes = 0;
  uint64_t ReadBytes = 0;
  uint64_t AddrTakenBytes = 0;
  uint64_t NeverReadBytes = 0; ///< Allocated but never read.
  bool StaticDead = false;     ///< Member (or an enclosing member) is in
                               ///< the analysis dead set.
};

/// Everything the profiler learned about one execution.
struct ProfileSummary {
  /// Identical to computeDynamicMetrics() on the same execution.
  DynamicMetrics Metrics;
  uint64_t AllocEvents = 0;
  uint64_t FreeEvents = 0;
  uint64_t LeakedObjects = 0;  ///< Complete objects alive at exit.
  uint64_t PeakAllocEvent = 0; ///< Event at which the HWM was first hit.
  uint64_t SnapshotStride = 1;
  uint64_t ReadBytes = 0; ///< Distinct object bytes marked read.
  uint64_t WrittenBytes = 0;
  uint64_t AddrTakenBytes = 0;
  uint64_t NeverReadBytes = 0; ///< Leaf member bytes never read.
  std::vector<ProfileSnapshot> Snapshots;
  /// Sorted by (File, Line, Class, Member).
  std::vector<ProfileSiteRow> Sites;
};

/// The shadow-memory profiler. Construct one per execution with the
/// hierarchy and the analysis dead set, point InterpOptions::Profiler at
/// it, run, then finalize(). All hooks are no-ops for IDs the profiler
/// never registered (untraced objects), so the interpreter can call them
/// unconditionally whenever a profiler is installed.
class ShadowProfiler {
public:
  ShadowProfiler(const ClassHierarchy &CH, FieldSet Dead);
  ~ShadowProfiler();

  /// \name Interpreter hooks
  /// @{

  /// Creates shadow state for \p Count complete \p CD objects with
  /// consecutive IDs starting at \p FirstID, allocated at \p Site.
  /// Called as soon as IDs are assigned (before construction, so
  /// constructor stores are captured).
  void registerObjects(const ClassDecl *CD, uint64_t Count, uint64_t FirstID,
                       SourceLocation Site);

  /// Accounts the allocation event for the registered group \p FirstID.
  /// Called adjacent to AllocationTrace::recordAlloc so the profiler
  /// sees events in exactly the trace's order.
  void recordAllocEvent(uint64_t FirstID);

  /// Accounts the deallocation of group \p FirstID and folds its shadow
  /// state into the site table. Double frees and unknown IDs are
  /// ignored, mirroring AllocationTrace::recordFree.
  void recordFree(uint64_t FirstID);

  void recordRead(uint64_t ObjectID, const FieldDecl *F);
  void recordWrite(uint64_t ObjectID, const FieldDecl *F);
  void recordAddrTaken(uint64_t ObjectID, const FieldDecl *F);
  /// @}

  /// Folds leaked objects, resolves sites through \p SM (may be null),
  /// and freezes the summary. Idempotent; hooks become no-ops after.
  const ProfileSummary &finalize(const SourceManager *SM);

  /// The frozen summary; finalize() must have run.
  const ProfileSummary &summary() const;

  /// The dynamic measurements so far (usable before finalize()).
  const DynamicMetrics &metrics() const { return Sum.Metrics; }

  /// Emits profiler.* counters into the active telemetry registry.
  /// Every value is deterministic for a given program, so stats
  /// documents compare equal across --jobs levels.
  void emitCounters() const;

private:
  struct Range {
    uint64_t Offset = 0;
    uint64_t Size = 0;
  };
  /// One leaf member (scalar or scalar-array) of a class' complete
  /// layout, with every byte range it occupies (several for members of
  /// repeated non-virtual bases).
  struct LeafInfo {
    const FieldDecl *Field = nullptr;
    std::vector<Range> Ranges;
    uint64_t Bytes = 0;
    bool StaticDead = false;
  };
  /// Cached expansion of one class' complete layout.
  struct ClassInfo {
    const ClassDecl *CD = nullptr;
    uint64_t Size = 0;      ///< CompleteSize.
    uint64_t DeadPer = 0;   ///< deadBytes() per object.
    uint64_t ShrunkPer = 0; ///< sizeWithoutDead() per object.
    std::vector<LeafInfo> Leaves;
    /// FieldDecl -> indices into Leaves (a field nested via two members
    /// of the same class type yields several leaves).
    std::unordered_map<const FieldDecl *, std::vector<uint32_t>> LeafIndex;
  };
  /// Shadow state of one live complete object.
  struct ShadowObject {
    const ClassInfo *CI = nullptr;
    uint32_t Record = 0;        ///< Index into Records.
    std::vector<uint8_t> Bytes; ///< ShadowBits per object byte.
  };
  /// One allocation group (one alloc event; Count objects).
  struct AllocRecord {
    SourceLocation Site;
    const ClassInfo *CI = nullptr;
    uint64_t FirstID = 0;
    uint64_t Count = 0;
    bool Counted = false; ///< Alloc event recorded.
  };
  /// Accumulator for one (site, class, member) cell.
  struct SiteAccum {
    uint64_t Objects = 0;
    uint64_t AllocBytes = 0;
    uint64_t WrittenBytes = 0;
    uint64_t ReadBytes = 0;
    uint64_t AddrTakenBytes = 0;
    uint64_t NeverReadBytes = 0;
    bool StaticDead = false;
  };
  struct SiteKey {
    uint32_t File = 0;
    uint32_t Offset = 0;
    const ClassDecl *CD = nullptr;
    const FieldDecl *Field = nullptr;
    bool operator==(const SiteKey &O) const {
      return File == O.File && Offset == O.Offset && CD == O.CD &&
             Field == O.Field;
    }
  };
  struct SiteKeyHash {
    size_t operator()(const SiteKey &K) const {
      size_t H = K.File;
      H = H * 1000003u + K.Offset;
      H = H * 1000003u + std::hash<const void *>()(K.CD);
      H = H * 1000003u + std::hash<const void *>()(K.Field);
      return H;
    }
  };

  const ClassInfo &classInfo(const ClassDecl *CD);
  void expandClass(const ClassDecl *CD, uint64_t Base, bool DeadCtx,
                   ClassInfo &CI);
  void mark(uint64_t ObjectID, const FieldDecl *F, uint8_t Bits);
  void takeSnapshot();
  void foldObject(const AllocRecord &R, uint64_t ObjectID);
  void foldGroup(uint32_t RecordIndex);

  LayoutEngine Layout;
  FieldSet Dead;
  std::unordered_map<const ClassDecl *, std::unique_ptr<ClassInfo>> Classes;
  std::vector<AllocRecord> Records;
  std::unordered_map<uint64_t, uint32_t> LiveGroups; ///< FirstID -> record.
  std::unordered_map<uint64_t, ShadowObject> Shadows; ///< By ObjectID.
  std::unordered_map<SiteKey, SiteAccum, SiteKeyHash> Cells;

  ProfileSummary Sum;
  uint64_t LiveBytes = 0;
  uint64_t LiveShrunkBytes = 0;
  uint64_t LiveObjects = 0;
  bool Finalized = false;
};

/// Converts a finalized summary into the stats document's "profiler"
/// section (telemetry/Stats.h, schema version 2).
stats::ProfilerSection toProfilerSection(const ProfileSummary &P);

} // namespace dmm

#endif // DMM_PROFILER_SHADOWPROFILER_H
