//===-- ast/SourcePrinter.h - AST-to-source printer -------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an AST back to parseable MiniC++ source. The output is
/// normalized, not a byte-for-byte copy: class bodies carry member
/// declarations only, every function body is emitted out-of-line after
/// all classes and prototypes (so forward references always resolve),
/// and expressions are parenthesized by structure.
///
/// Subclasses override the keep*/rewrite hooks to produce transformed
/// programs; the DeadMemberEliminator (src/transform) uses this to
/// implement the paper's space optimization as a source-to-source pass.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_SOURCEPRINTER_H
#define DMM_AST_SOURCEPRINTER_H

#include "ast/ASTContext.h"

#include <string>

namespace dmm {

/// Prints (optionally filtered) MiniC++ source from an AST.
class SourcePrinter {
public:
  virtual ~SourcePrinter() = default;

  /// Prints the whole program.
  std::string print(const ASTContext &Ctx);

  /// How to emit one statement (used by the actOnStmt hook).
  enum class StmtAction {
    Keep,    ///< Print as is.
    Drop,    ///< Omit entirely.
    RhsOnly, ///< For assignment statements: keep only the RHS
             ///< (preserves its side effects).
  };

protected:
  /// \name Filtering hooks (default: keep everything)
  /// @{
  /// False removes the data member declaration.
  virtual bool keepField(const FieldDecl * /*F*/) { return true; }
  /// False removes the function/method/ctor/dtor entirely (declaration
  /// and body).
  virtual bool keepFunction(const FunctionDecl * /*FD*/) { return true; }
  /// False drops only the body, leaving the declaration (used to strip
  /// unreachable code without breaking static references).
  virtual bool keepBody(const FunctionDecl * /*FD*/) { return true; }
  /// False removes one constructor initializer.
  virtual bool keepCtorInit(const ConstructorDecl * /*Ctor*/,
                            const CtorInitializer & /*Init*/) {
    return true;
  }

  virtual StmtAction actOnStmt(const Stmt *S) {
    (void)S;
    return StmtAction::Keep;
  }
  /// @}

  /// \name Emission helpers (available to subclasses)
  /// @{
  void emit(const std::string &Text) { Out += Text; }
  void emitLine(const std::string &Text);
  void printExpr(const Expr *E);
  void printStmt(const Stmt *S, unsigned Indent);
  /// @}

private:
  void printClassHead(const ClassDecl *CD);
  void printMethodHead(const MethodDecl *M, bool InClass);
  void printParams(const FunctionDecl *FD);
  /// Prints "type name" handling array / function-pointer / member
  /// pointer declarator forms.
  std::string declarator(const Type *Ty, const std::string &Name);
  void printVarDecl(const VarDecl *V, unsigned Indent, bool AsStatement);
  void printFunctionBody(const FunctionDecl *FD, bool Qualified);
  void printCompound(const CompoundStmt *CS, unsigned Indent);
  void indent(unsigned Levels);

  std::string Out;
};

} // namespace dmm

#endif // DMM_AST_SOURCEPRINTER_H
