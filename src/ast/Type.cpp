//===-- ast/Type.cpp ------------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"
#include "ast/Decl.h"

#include <sstream>

using namespace dmm;

bool Type::isVoid() const {
  const auto *B = dyn_cast<BuiltinType>(this);
  return B && B->builtinKind() == BuiltinType::BK::Void;
}

bool Type::isBool() const {
  const auto *B = dyn_cast<BuiltinType>(this);
  return B && B->builtinKind() == BuiltinType::BK::Bool;
}

bool Type::isArithmetic() const {
  const auto *B = dyn_cast<BuiltinType>(this);
  if (!B)
    return false;
  switch (B->builtinKind()) {
  case BuiltinType::BK::Bool:
  case BuiltinType::BK::Char:
  case BuiltinType::BK::Int:
  case BuiltinType::BK::Double:
    return true;
  default:
    return false;
  }
}

bool Type::isInteger() const {
  const auto *B = dyn_cast<BuiltinType>(this);
  if (!B)
    return false;
  switch (B->builtinKind()) {
  case BuiltinType::BK::Bool:
  case BuiltinType::BK::Char:
  case BuiltinType::BK::Int:
    return true;
  default:
    return false;
  }
}

const ClassDecl *Type::asClassDecl() const {
  if (const auto *CT = dyn_cast<ClassType>(this))
    return CT->decl();
  return nullptr;
}

const Type *Type::nonReferenceType() const {
  if (const auto *RT = dyn_cast<ReferenceType>(this))
    return RT->pointee();
  return this;
}

std::string Type::str() const {
  switch (kind()) {
  case Kind::Builtin:
    switch (cast<BuiltinType>(this)->builtinKind()) {
    case BuiltinType::BK::Void: return "void";
    case BuiltinType::BK::Bool: return "bool";
    case BuiltinType::BK::Char: return "char";
    case BuiltinType::BK::Int: return "int";
    case BuiltinType::BK::Double: return "double";
    case BuiltinType::BK::NullPtr: return "nullptr_t";
    }
    return "<builtin>";
  case Kind::Class:
    return cast<ClassType>(this)->decl()->name();
  case Kind::Pointer:
    return cast<PointerType>(this)->pointee()->str() + "*";
  case Kind::Reference:
    return cast<ReferenceType>(this)->pointee()->str() + "&";
  case Kind::Array: {
    // C spelling lists extents outermost-first: `int[3][4]` is an array
    // of 3 arrays of 4 ints.
    const Type *Elem = this;
    std::ostringstream Dims;
    while (const auto *AT = dyn_cast<ArrayType>(Elem)) {
      Dims << "[" << AT->size() << "]";
      Elem = AT->element();
    }
    return Elem->str() + Dims.str();
  }
  case Kind::MemberPointer: {
    const auto *MPT = cast<MemberPointerType>(this);
    return MPT->pointee()->str() + " " + MPT->classDecl()->name() + "::*";
  }
  case Kind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = FT->result()->str() + "(";
    for (size_t I = 0; I != FT->params().size(); ++I) {
      if (I)
        S += ", ";
      S += FT->params()[I]->str();
    }
    return S + ")";
  }
  }
  return "<type>";
}
