//===-- ast/Stmt.h - MiniC++ statements -------------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes. The analysis of paper Figure 2 iterates over "each
/// statement s in each function f", then over "each expression e in s";
/// see ast/ASTWalker.h for the corresponding traversal helpers.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_STMT_H
#define DMM_AST_STMT_H

#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <vector>

namespace dmm {

class Expr;
class VarDecl;

/// Base of the statement hierarchy.
class Stmt {
public:
  enum class Kind {
    Compound,
    Decl,
    Expr,
    If,
    While,
    For,
    Break,
    Continue,
    Return,
    Null,
  };

  Kind kind() const { return K; }
  SourceLocation location() const { return Loc; }

protected:
  Stmt(Kind K, SourceLocation Loc) : K(K), Loc(Loc) {}
  ~Stmt() = default;

private:
  Kind K;
  SourceLocation Loc;
};

/// `{ stmt... }`.
class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(SourceLocation Loc) : Stmt(Kind::Compound, Loc) {}

  void addStmt(Stmt *S) { Stmts.push_back(S); }
  const std::vector<Stmt *> &stmts() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<Stmt *> Stmts;
};

/// A local variable declaration statement; may declare several variables
/// (`int a = 1, b = 2;`).
class DeclStmt : public Stmt {
public:
  explicit DeclStmt(SourceLocation Loc) : Stmt(Kind::Decl, Loc) {}

  void addVar(VarDecl *V) { Vars.push_back(V); }
  const std::vector<VarDecl *> &vars() const { return Vars; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::vector<VarDecl *> Vars;
};

/// An expression evaluated for its effects.
class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLocation Loc) : Stmt(Kind::Expr, Loc), E(E) {}

  Expr *expr() const { return E; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  Expr *E;
};

/// `if (Cond) Then else Else`.
class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLocation Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

/// `while (Cond) Body`.
class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLocation Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

/// `for (Init; Cond; Step) Body`. Init is a DeclStmt, ExprStmt, or
/// NullStmt; Cond/Step may be null.
class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Step, Stmt *Body, SourceLocation Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step), Body(Body) {
  }

  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Expr *step() const { return Step; }
  Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
};

/// `break;`.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLocation Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

/// `continue;`.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLocation Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

/// `return;` or `return E;`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLocation Loc)
      : Stmt(Kind::Return, Loc), Value(Value) {}

  Expr *value() const { return Value; } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  Expr *Value;
};

/// `;`.
class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLocation Loc) : Stmt(Kind::Null, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Null; }
};

} // namespace dmm

#endif // DMM_AST_STMT_H
