//===-- ast/ASTContext.h - AST ownership and type uniquing ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns every AST node for a compilation (arena-allocated) and uniques
/// types so that pointer equality is type equality. Also maintains dense
/// registries of classes and functions for whole-program iteration.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_ASTCONTEXT_H
#define DMM_AST_ASTCONTEXT_H

#include "ast/Decl.h"
#include "ast/Expr.h"
#include "ast/Stmt.h"
#include "ast/Type.h"
#include "support/Arena.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dmm {

/// The allocation and uniquing context for one program's AST.
class ASTContext {
public:
  ASTContext();
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  /// \name Node creation
  /// All AST nodes must be created through this factory so they live in
  /// the arena and (for decls) receive dense IDs.
  /// @{
  template <typename T, typename... Args> T *create(Args &&...A) {
    T *Node = Alloc.create<T>(std::forward<Args>(A)...);
    if constexpr (std::is_base_of_v<Decl, T>)
      registerDecl(Node);
    return Node;
  }

  /// Creates a node that is arena-owned but not registered in the
  /// class/function/field indices. Used for the parser's scratch decls
  /// (re-parsed parameter lists of out-of-line definitions), which must
  /// not shadow the real declarations during Sema.
  template <typename T, typename... Args> T *createDetached(Args &&...A) {
    return Alloc.create<T>(std::forward<Args>(A)...);
  }
  /// @}

  /// \name Builtin types
  /// @{
  const Type *voidType() const { return &VoidTy; }
  const Type *boolType() const { return &BoolTy; }
  const Type *charType() const { return &CharTy; }
  const Type *intType() const { return &IntTy; }
  const Type *doubleType() const { return &DoubleTy; }
  const Type *nullPtrType() const { return &NullPtrTy; }
  /// @}

  /// \name Derived types (uniqued)
  /// @{
  const Type *classType(const ClassDecl *CD);
  const PointerType *pointerType(const Type *Pointee);
  const ReferenceType *referenceType(const Type *Pointee);
  const ArrayType *arrayType(const Type *Element, uint64_t Size);
  const MemberPointerType *memberPointerType(const ClassDecl *Class,
                                             const Type *Pointee);
  const FunctionType *functionType(const Type *Result,
                                   std::vector<const Type *> Params);
  /// @}

  /// The root declaration.
  TranslationUnitDecl *translationUnit() { return TU; }
  const TranslationUnitDecl *translationUnit() const { return TU; }

  /// All class declarations, in creation order.
  const std::vector<ClassDecl *> &classes() const { return Classes; }
  /// All functions (free functions, methods, ctors, dtors), in creation
  /// order.
  const std::vector<FunctionDecl *> &functions() const { return Functions; }
  /// All data members, in creation order.
  const std::vector<FieldDecl *> &fields() const { return Fields; }
  /// All global variables.
  const std::vector<VarDecl *> &globals() const { return Globals; }
  void registerGlobal(VarDecl *V) { Globals.push_back(V); }

  unsigned numDecls() const { return NextDeclID; }

private:
  void registerDecl(Decl *D);

  Arena Alloc;

  BuiltinType VoidTy;
  BuiltinType BoolTy;
  BuiltinType CharTy;
  BuiltinType IntTy;
  BuiltinType DoubleTy;
  BuiltinType NullPtrTy;

  std::map<const ClassDecl *, const ClassType *> ClassTypes;
  std::map<const Type *, const PointerType *> PointerTypes;
  std::map<const Type *, const ReferenceType *> ReferenceTypes;
  std::map<std::pair<const Type *, uint64_t>, const ArrayType *> ArrayTypes;
  std::map<std::pair<const ClassDecl *, const Type *>,
           const MemberPointerType *>
      MemberPointerTypes;
  std::vector<const FunctionType *> FunctionTypes;

  TranslationUnitDecl *TU = nullptr;
  std::vector<ClassDecl *> Classes;
  std::vector<FunctionDecl *> Functions;
  std::vector<FieldDecl *> Fields;
  std::vector<VarDecl *> Globals;
  unsigned NextDeclID = 0;
};

} // namespace dmm

#endif // DMM_AST_ASTCONTEXT_H
