//===-- ast/ASTContext.cpp ------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/ASTContext.h"

using namespace dmm;

ASTContext::ASTContext()
    : VoidTy(BuiltinType::BK::Void), BoolTy(BuiltinType::BK::Bool),
      CharTy(BuiltinType::BK::Char), IntTy(BuiltinType::BK::Int),
      DoubleTy(BuiltinType::BK::Double), NullPtrTy(BuiltinType::BK::NullPtr) {
  TU = create<TranslationUnitDecl>();
}

void ASTContext::registerDecl(Decl *D) {
  D->setDeclID(NextDeclID++);
  switch (D->kind()) {
  case Decl::Kind::Class:
    Classes.push_back(static_cast<ClassDecl *>(D));
    break;
  case Decl::Kind::Field:
    Fields.push_back(static_cast<FieldDecl *>(D));
    break;
  case Decl::Kind::Function:
  case Decl::Kind::Method:
  case Decl::Kind::Constructor:
  case Decl::Kind::Destructor:
    Functions.push_back(static_cast<FunctionDecl *>(D));
    break;
  default:
    break;
  }
}

const Type *ASTContext::classType(const ClassDecl *CD) {
  auto It = ClassTypes.find(CD);
  if (It != ClassTypes.end())
    return It->second;
  const ClassType *T = Alloc.create<ClassType>(CD);
  ClassTypes[CD] = T;
  return T;
}

const PointerType *ASTContext::pointerType(const Type *Pointee) {
  auto It = PointerTypes.find(Pointee);
  if (It != PointerTypes.end())
    return It->second;
  const PointerType *T = Alloc.create<PointerType>(Pointee);
  PointerTypes[Pointee] = T;
  return T;
}

const ReferenceType *ASTContext::referenceType(const Type *Pointee) {
  auto It = ReferenceTypes.find(Pointee);
  if (It != ReferenceTypes.end())
    return It->second;
  const ReferenceType *T = Alloc.create<ReferenceType>(Pointee);
  ReferenceTypes[Pointee] = T;
  return T;
}

const ArrayType *ASTContext::arrayType(const Type *Element, uint64_t Size) {
  auto Key = std::make_pair(Element, Size);
  auto It = ArrayTypes.find(Key);
  if (It != ArrayTypes.end())
    return It->second;
  const ArrayType *T = Alloc.create<ArrayType>(Element, Size);
  ArrayTypes[Key] = T;
  return T;
}

const MemberPointerType *
ASTContext::memberPointerType(const ClassDecl *Class, const Type *Pointee) {
  auto Key = std::make_pair(Class, Pointee);
  auto It = MemberPointerTypes.find(Key);
  if (It != MemberPointerTypes.end())
    return It->second;
  const MemberPointerType *T =
      Alloc.create<MemberPointerType>(Class, Pointee);
  MemberPointerTypes[Key] = T;
  return T;
}

const FunctionType *
ASTContext::functionType(const Type *Result,
                         std::vector<const Type *> Params) {
  // Linear search: programs have few distinct function-pointer signatures.
  for (const FunctionType *FT : FunctionTypes)
    if (FT->result() == Result && FT->params() == Params)
      return FT;
  const FunctionType *T =
      Alloc.create<FunctionType>(Result, std::move(Params));
  FunctionTypes.push_back(T);
  return T;
}
