//===-- ast/SourcePrinter.cpp ---------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/SourcePrinter.h"

#include "ast/ASTWalker.h"

#include <cassert>
#include <cstdio>

using namespace dmm;

void SourcePrinter::indent(unsigned Levels) {
  for (unsigned I = 0; I != Levels; ++I)
    Out += "  ";
}

void SourcePrinter::emitLine(const std::string &Text) {
  Out += Text;
  Out += '\n';
}

//===----------------------------------------------------------------------===//
// Declarators and types
//===----------------------------------------------------------------------===//

std::string SourcePrinter::declarator(const Type *Ty,
                                      const std::string &Name) {
  // Function pointer: `ret (*name)(params)`.
  if (const auto *PT = dyn_cast<PointerType>(Ty))
    if (const auto *FT = dyn_cast<FunctionType>(PT->pointee())) {
      std::string S = FT->result()->str() + " (*" + Name + ")(";
      for (size_t I = 0; I != FT->params().size(); ++I) {
        if (I)
          S += ", ";
        S += FT->params()[I]->str();
      }
      return S + ")";
    }
  // Array: `elem name[d0][d1]...`.
  if (Ty->isArray()) {
    std::string Dims;
    const Type *Elem = Ty;
    while (const auto *AT = dyn_cast<ArrayType>(Elem)) {
      Dims += "[" + std::to_string(AT->size()) + "]";
      Elem = AT->element();
    }
    return Elem->str() + " " + Name + Dims;
  }
  return Ty->str() + " " + Name;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {

bool isAtomicExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::DoubleLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::CharLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::NullptrLiteral:
  case Expr::Kind::DeclRef:
  case Expr::Kind::This:
  case Expr::Kind::Member:
  case Expr::Kind::Subscript:
  case Expr::Kind::Call:
  case Expr::Kind::MemberPointerConstant:
    return true;
  default:
    return false;
  }
}

std::string escapeChar(char C) {
  switch (C) {
  case '\n': return "\\n";
  case '\t': return "\\t";
  case '\r': return "\\r";
  case '\0': return "\\0";
  case '\\': return "\\\\";
  case '\'': return "\\'";
  case '"': return "\\\"";
  default: return std::string(1, C);
  }
}

const char *unaryOpSpelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Minus: return "-";
  case UnaryOpKind::Not: return "!";
  case UnaryOpKind::BitNot: return "~";
  case UnaryOpKind::Deref: return "*";
  case UnaryOpKind::AddrOf: return "&";
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PostInc: return "++";
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostDec: return "--";
  }
  return "?";
}

const char *binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add: return "+";
  case BinaryOpKind::Sub: return "-";
  case BinaryOpKind::Mul: return "*";
  case BinaryOpKind::Div: return "/";
  case BinaryOpKind::Rem: return "%";
  case BinaryOpKind::Shl: return "<<";
  case BinaryOpKind::Shr: return ">>";
  case BinaryOpKind::BitAnd: return "&";
  case BinaryOpKind::BitOr: return "|";
  case BinaryOpKind::BitXor: return "^";
  case BinaryOpKind::LT: return "<";
  case BinaryOpKind::GT: return ">";
  case BinaryOpKind::LE: return "<=";
  case BinaryOpKind::GE: return ">=";
  case BinaryOpKind::EQ: return "==";
  case BinaryOpKind::NE: return "!=";
  case BinaryOpKind::LAnd: return "&&";
  case BinaryOpKind::LOr: return "||";
  }
  return "?";
}

const char *assignOpSpelling(AssignOpKind Op) {
  switch (Op) {
  case AssignOpKind::Assign: return "=";
  case AssignOpKind::AddAssign: return "+=";
  case AssignOpKind::SubAssign: return "-=";
  case AssignOpKind::MulAssign: return "*=";
  case AssignOpKind::DivAssign: return "/=";
  case AssignOpKind::RemAssign: return "%=";
  }
  return "?";
}

} // namespace

void SourcePrinter::printExpr(const Expr *E) {
  auto Paren = [&](const Expr *Sub) {
    if (isAtomicExpr(Sub)) {
      printExpr(Sub);
      return;
    }
    emit("(");
    printExpr(Sub);
    emit(")");
  };

  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    emit(std::to_string(cast<IntLiteralExpr>(E)->value()));
    return;
  case Expr::Kind::DoubleLiteral: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%g",
                  cast<DoubleLiteralExpr>(E)->value());
    std::string S = Buf;
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos)
      S += ".0";
    emit(S);
    return;
  }
  case Expr::Kind::BoolLiteral:
    emit(cast<BoolLiteralExpr>(E)->value() ? "true" : "false");
    return;
  case Expr::Kind::CharLiteral:
    emit("'" + escapeChar(cast<CharLiteralExpr>(E)->value()) + "'");
    return;
  case Expr::Kind::StringLiteral: {
    std::string S = "\"";
    for (char C : cast<StringLiteralExpr>(E)->value())
      S += escapeChar(C);
    emit(S + "\"");
    return;
  }
  case Expr::Kind::NullptrLiteral:
    emit("nullptr");
    return;
  case Expr::Kind::DeclRef:
    emit(cast<DeclRefExpr>(E)->declName());
    return;
  case Expr::Kind::This:
    emit("this");
    return;
  case Expr::Kind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    Paren(ME->base());
    emit(ME->isArrow() ? "->" : ".");
    if (ME->isQualified())
      emit(ME->qualifier() + "::");
    emit(ME->memberName());
    return;
  }
  case Expr::Kind::MemberPointerConstant: {
    const auto *MPC = cast<MemberPointerConstantExpr>(E);
    emit("&" + MPC->className() + "::" + MPC->memberName());
    return;
  }
  case Expr::Kind::MemberPointerAccess: {
    const auto *MPA = cast<MemberPointerAccessExpr>(E);
    Paren(MPA->base());
    emit(MPA->isArrow() ? "->*" : ".*");
    Paren(MPA->pointer());
    return;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    bool Postfix = UE->op() == UnaryOpKind::PostInc ||
                   UE->op() == UnaryOpKind::PostDec;
    if (!Postfix)
      emit(unaryOpSpelling(UE->op()));
    Paren(UE->sub());
    if (Postfix)
      emit(unaryOpSpelling(UE->op()));
    return;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    Paren(BE->lhs());
    emit(std::string(" ") + binaryOpSpelling(BE->op()) + " ");
    Paren(BE->rhs());
    return;
  }
  case Expr::Kind::Assign: {
    const auto *AE = cast<AssignExpr>(E);
    Paren(AE->lhs());
    emit(std::string(" ") + assignOpSpelling(AE->op()) + " ");
    Paren(AE->rhs());
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    Paren(CE->cond());
    emit(" ? ");
    Paren(CE->thenExpr());
    emit(" : ");
    Paren(CE->elseExpr());
    return;
  }
  case Expr::Kind::Comma: {
    const auto *CE = cast<CommaExpr>(E);
    emit("(");
    printExpr(CE->lhs());
    emit(", ");
    printExpr(CE->rhs());
    emit(")");
    return;
  }
  case Expr::Kind::Subscript: {
    const auto *SE = cast<SubscriptExpr>(E);
    Paren(SE->base());
    emit("[");
    printExpr(SE->index());
    emit("]");
    return;
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    Paren(Call->callee());
    emit("(");
    for (size_t I = 0; I != Call->args().size(); ++I) {
      if (I)
        emit(", ");
      printExpr(Call->args()[I]);
    }
    emit(")");
    return;
  }
  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    emit("new " + N->allocType()->str());
    if (N->isArrayNew()) {
      emit("[");
      printExpr(N->arraySize());
      emit("]");
      return;
    }
    emit("(");
    for (size_t I = 0; I != N->ctorArgs().size(); ++I) {
      if (I)
        emit(", ");
      printExpr(N->ctorArgs()[I]);
    }
    emit(")");
    return;
  }
  case Expr::Kind::Delete: {
    const auto *D = cast<DeleteExpr>(E);
    emit(D->isArrayDelete() ? "delete[] " : "delete ");
    Paren(D->sub());
    return;
  }
  case Expr::Kind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    switch (CE->style()) {
    case CastStyle::CStyle:
      emit("(" + CE->targetType()->str() + ")");
      Paren(CE->sub());
      return;
    case CastStyle::Static:
      emit("static_cast<" + CE->targetType()->str() + ">(");
      printExpr(CE->sub());
      emit(")");
      return;
    case CastStyle::Reinterpret:
      emit("reinterpret_cast<" + CE->targetType()->str() + ">(");
      printExpr(CE->sub());
      emit(")");
      return;
    }
    return;
  }
  case Expr::Kind::Sizeof: {
    const auto *SE = cast<SizeofExpr>(E);
    emit("sizeof(");
    if (SE->typeOperand())
      emit(SE->typeOperand()->str());
    else
      printExpr(SE->exprOperand());
    emit(")");
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void SourcePrinter::printVarDecl(const VarDecl *V, unsigned Indent,
                                 bool AsStatement) {
  if (AsStatement)
    indent(Indent);
  emit(declarator(V->type(), V->name()));
  if (V->init()) {
    emit(" = ");
    printExpr(V->init());
  } else if (!V->ctorArgs().empty()) {
    emit("(");
    for (size_t I = 0; I != V->ctorArgs().size(); ++I) {
      if (I)
        emit(", ");
      printExpr(V->ctorArgs()[I]);
    }
    emit(")");
  }
  if (AsStatement)
    emitLine(";");
}

void SourcePrinter::printCompound(const CompoundStmt *CS, unsigned Indent) {
  emitLine("{");
  for (const Stmt *Child : CS->stmts())
    printStmt(Child, Indent + 1);
  indent(Indent);
  emit("}");
}

void SourcePrinter::printStmt(const Stmt *S, unsigned Indent) {
  switch (actOnStmt(S)) {
  case StmtAction::Keep:
    break;
  case StmtAction::Drop:
    return;
  case StmtAction::RhsOnly: {
    const auto *ES = dyn_cast<ExprStmt>(S);
    const auto *AE = ES ? dyn_cast<AssignExpr>(ES->expr()) : nullptr;
    if (AE) {
      indent(Indent);
      printExpr(AE->rhs());
      emitLine(";");
      return;
    }
    break; // Fall back to keeping the statement.
  }
  }

  switch (S->kind()) {
  case Stmt::Kind::Compound:
    indent(Indent);
    printCompound(cast<CompoundStmt>(S), Indent);
    emitLine("");
    return;
  case Stmt::Kind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->vars())
      printVarDecl(V, Indent, /*AsStatement=*/true);
    return;
  case Stmt::Kind::Expr:
    indent(Indent);
    printExpr(cast<ExprStmt>(S)->expr());
    emitLine(";");
    return;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    indent(Indent);
    emit("if (");
    printExpr(IS->cond());
    emitLine(") {");
    printStmt(IS->thenStmt(), Indent + 1);
    indent(Indent);
    if (IS->elseStmt()) {
      emitLine("} else {");
      printStmt(IS->elseStmt(), Indent + 1);
      indent(Indent);
    }
    emitLine("}");
    return;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    indent(Indent);
    emit("while (");
    printExpr(WS->cond());
    emitLine(") {");
    printStmt(WS->body(), Indent + 1);
    indent(Indent);
    emitLine("}");
    return;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    indent(Indent);
    emit("for (");
    if (const auto *DS = dyn_cast_or_null<DeclStmt>(FS->init())) {
      for (size_t I = 0; I != DS->vars().size(); ++I) {
        const VarDecl *V = DS->vars()[I];
        if (I)
          emit(", " + V->name()); // Same base type assumed.
        else
          printVarDecl(V, 0, /*AsStatement=*/false);
        if (I && V->init()) {
          emit(" = ");
          printExpr(V->init());
        }
      }
      emit("; ");
    } else if (const auto *ES = dyn_cast_or_null<ExprStmt>(FS->init())) {
      printExpr(ES->expr());
      emit("; ");
    } else {
      emit("; ");
    }
    if (FS->cond())
      printExpr(FS->cond());
    emit("; ");
    if (FS->step())
      printExpr(FS->step());
    emitLine(") {");
    printStmt(FS->body(), Indent + 1);
    indent(Indent);
    emitLine("}");
    return;
  }
  case Stmt::Kind::Break:
    indent(Indent);
    emitLine("break;");
    return;
  case Stmt::Kind::Continue:
    indent(Indent);
    emitLine("continue;");
    return;
  case Stmt::Kind::Return: {
    const auto *RS = cast<ReturnStmt>(S);
    indent(Indent);
    if (RS->value()) {
      emit("return ");
      printExpr(RS->value());
      emitLine(";");
    } else {
      emitLine("return;");
    }
    return;
  }
  case Stmt::Kind::Null:
    indent(Indent);
    emitLine(";");
    return;
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void SourcePrinter::printParams(const FunctionDecl *FD) {
  emit("(");
  for (size_t I = 0; I != FD->params().size(); ++I) {
    if (I)
      emit(", ");
    const ParamDecl *P = FD->params()[I];
    std::string Name =
        P->name().empty() ? "p" + std::to_string(I) : P->name();
    emit(declarator(P->type(), Name));
  }
  emit(")");
}

void SourcePrinter::printMethodHead(const MethodDecl *M, bool InClass) {
  if (InClass && M->isVirtual() && !isa<ConstructorDecl>(M))
    emit("virtual ");
  if (const auto *Dtor = dyn_cast<DestructorDecl>(M)) {
    emit(InClass ? Dtor->name()
                 : M->parent()->name() + "::" + Dtor->name());
    emit("()");
    return;
  }
  if (isa<ConstructorDecl>(M)) {
    emit(InClass ? M->name() : M->parent()->name() + "::" + M->name());
    printParams(M);
    return;
  }
  emit(M->returnType()->str() + " ");
  emit(InClass ? M->name() : M->parent()->name() + "::" + M->name());
  printParams(M);
}

void SourcePrinter::printClassHead(const ClassDecl *CD) {
  switch (CD->tagKind()) {
  case TagKind::Class: emit("class "); break;
  case TagKind::Struct: emit("struct "); break;
  case TagKind::Union: emit("union "); break;
  }
  emit(CD->name());
  bool First = true;
  for (const BaseSpecifier &BS : CD->bases()) {
    emit(First ? " : " : ", ");
    First = false;
    if (BS.IsVirtual)
      emit("virtual ");
    emit("public " + BS.Base->name());
  }
}

void SourcePrinter::printFunctionBody(const FunctionDecl *FD,
                                      bool Qualified) {
  if (const auto *M = dyn_cast<MethodDecl>(FD)) {
    printMethodHead(M, /*InClass=*/!Qualified);
  } else {
    emit(FD->returnType()->str() + " " + FD->name());
    printParams(FD);
  }
  if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD)) {
    bool First = true;
    for (const CtorInitializer &Init : Ctor->initializers()) {
      if (!keepCtorInit(Ctor, Init))
        continue;
      emit(First ? " : " : ", ");
      First = false;
      emit(Init.Name + "(");
      for (size_t I = 0; I != Init.Args.size(); ++I) {
        if (I)
          emit(", ");
        printExpr(Init.Args[I]);
      }
      emit(")");
    }
  }
  emit(" ");
  printCompound(FD->body(), 0);
  emitLine("");
  emitLine("");
}

std::string SourcePrinter::print(const ASTContext &Ctx) {
  Out.clear();

  // Forward declarations so pointer members may reference any class.
  for (const ClassDecl *CD : Ctx.classes()) {
    const char *Tag = "class ";
    if (CD->tagKind() == TagKind::Struct)
      Tag = "struct ";
    else if (CD->tagKind() == TagKind::Union)
      Tag = "union ";
    emitLine(Tag + CD->name() + ";");
  }
  emitLine("");

  // Class definitions: members and method heads only.
  for (const ClassDecl *CD : Ctx.classes()) {
    if (!CD->isComplete())
      continue;
    printClassHead(CD);
    emitLine(" {");
    emitLine("public:");
    for (const FieldDecl *F : CD->fields()) {
      if (!keepField(F))
        continue;
      indent(1);
      emit(F->isVolatile() ? "volatile " : "");
      emit(declarator(F->type(), F->name()));
      emitLine(";");
    }
    for (const ConstructorDecl *Ctor : CD->constructors()) {
      if (!keepFunction(Ctor))
        continue;
      indent(1);
      printMethodHead(Ctor, true);
      emitLine(";");
    }
    if (CD->destructor() && keepFunction(CD->destructor())) {
      indent(1);
      printMethodHead(CD->destructor(), true);
      emitLine(";");
    }
    for (const MethodDecl *M : CD->methods()) {
      if (!keepFunction(M))
        continue;
      indent(1);
      printMethodHead(M, true);
      emitLine(";");
    }
    emitLine("};");
    emitLine("");
  }

  // Free-function prototypes (so definitions may call forward).
  for (const FunctionDecl *FD : Ctx.functions()) {
    if (FD->kind() != Decl::Kind::Function || FD->isBuiltin())
      continue;
    if (!keepFunction(FD))
      continue;
    emit(FD->returnType()->str() + " " + FD->name());
    printParams(FD);
    emitLine(";");
  }
  emitLine("");

  // Globals.
  for (const VarDecl *GV : Ctx.globals())
    printVarDecl(GV, 0, /*AsStatement=*/true);
  emitLine("");

  // Method bodies (out of line), then free-function bodies.
  for (const ClassDecl *CD : Ctx.classes()) {
    for (const ConstructorDecl *Ctor : CD->constructors())
      if (Ctor->isDefined() && keepFunction(Ctor) && keepBody(Ctor))
        printFunctionBody(Ctor, /*Qualified=*/true);
    if (CD->destructor() && CD->destructor()->isDefined() &&
        keepFunction(CD->destructor()) && keepBody(CD->destructor()))
      printFunctionBody(CD->destructor(), /*Qualified=*/true);
    for (const MethodDecl *M : CD->methods())
      if (M->isDefined() && keepFunction(M) && keepBody(M))
        printFunctionBody(M, /*Qualified=*/true);
  }
  for (const FunctionDecl *FD : Ctx.functions())
    if (FD->kind() == Decl::Kind::Function && !FD->isBuiltin() &&
        FD->isDefined() && keepFunction(FD) && keepBody(FD))
      printFunctionBody(FD, /*Qualified=*/false);

  return Out;
}
