//===-- ast/Decl.cpp ------------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Decl.h"
#include "ast/Stmt.h"

using namespace dmm;

FieldDecl *ClassDecl::findField(const std::string &FieldName) const {
  for (FieldDecl *F : Fields)
    if (F->name() == FieldName)
      return F;
  return nullptr;
}

MethodDecl *ClassDecl::findMethod(const std::string &MethodName) const {
  for (MethodDecl *M : Methods)
    if (M->name() == MethodName)
      return M;
  return nullptr;
}

std::string FunctionDecl::qualifiedName() const {
  if (const auto *M = dyn_cast<MethodDecl>(this))
    return M->parent()->name() + "::" + name();
  return name();
}
