//===-- ast/Type.h - MiniC++ type representations ---------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniC++ type system: builtin types, class types, pointers,
/// references, fixed-size arrays, pointer-to-member types, and function
/// types. Types are immutable and uniqued by ASTContext, so pointer
/// equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_TYPE_H
#define DMM_AST_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmm {

class ClassDecl;

/// Base of the type hierarchy. Uniqued; compare with pointer equality.
class Type {
public:
  enum class Kind {
    Builtin,
    Class,
    Pointer,
    Reference,
    Array,
    MemberPointer,
    Function,
  };

  Kind kind() const { return K; }

  bool isVoid() const;
  bool isBool() const;
  bool isArithmetic() const; ///< bool, char, int, or double.
  bool isInteger() const;    ///< bool, char, or int.
  bool isClass() const { return K == Kind::Class; }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isReference() const { return K == Kind::Reference; }
  bool isArray() const { return K == Kind::Array; }
  bool isMemberPointer() const { return K == Kind::MemberPointer; }
  bool isFunction() const { return K == Kind::Function; }
  /// Usable in a boolean context: arithmetic or pointer.
  bool isScalar() const { return isArithmetic() || isPointer(); }

  /// If this is a class type, its declaration; otherwise null.
  const ClassDecl *asClassDecl() const;

  /// Strips one level of reference, if any.
  const Type *nonReferenceType() const;

  /// Human-readable spelling, e.g. "int", "B*", "int A::*".
  std::string str() const;

protected:
  explicit Type(Kind K) : K(K) {}
  ~Type() = default;

private:
  Kind K;
};

/// The builtin scalar types.
class BuiltinType : public Type {
public:
  enum class BK { Void, Bool, Char, Int, Double, NullPtr };

  explicit BuiltinType(BK B) : Type(Kind::Builtin), B(B) {}

  BK builtinKind() const { return B; }

  static bool classof(const Type *T) { return T->kind() == Kind::Builtin; }

private:
  BK B;
};

/// A class, struct, or union type; identified by its declaration.
class ClassType : public Type {
public:
  explicit ClassType(const ClassDecl *Decl) : Type(Kind::Class), Decl(Decl) {}

  const ClassDecl *decl() const { return Decl; }

  static bool classof(const Type *T) { return T->kind() == Kind::Class; }

private:
  const ClassDecl *Decl;
};

/// T*.
class PointerType : public Type {
public:
  explicit PointerType(const Type *Pointee)
      : Type(Kind::Pointer), Pointee(Pointee) {}

  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->kind() == Kind::Pointer; }

private:
  const Type *Pointee;
};

/// T&. Only valid for parameters and locals.
class ReferenceType : public Type {
public:
  explicit ReferenceType(const Type *Pointee)
      : Type(Kind::Reference), Pointee(Pointee) {}

  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->kind() == Kind::Reference; }

private:
  const Type *Pointee;
};

/// T[N] with a compile-time constant extent.
class ArrayType : public Type {
public:
  ArrayType(const Type *Element, uint64_t Size)
      : Type(Kind::Array), Element(Element), Size(Size) {}

  const Type *element() const { return Element; }
  uint64_t size() const { return Size; }

  static bool classof(const Type *T) { return T->kind() == Kind::Array; }

private:
  const Type *Element;
  uint64_t Size;
};

/// T C::* — pointer to a data member of class C with type T.
class MemberPointerType : public Type {
public:
  MemberPointerType(const ClassDecl *Class, const Type *Pointee)
      : Type(Kind::MemberPointer), Class(Class), Pointee(Pointee) {}

  const ClassDecl *classDecl() const { return Class; }
  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->kind() == Kind::MemberPointer;
  }

private:
  const ClassDecl *Class;
  const Type *Pointee;
};

/// Function type: return type and parameter types. Used through function
/// pointers for indirect calls (callbacks).
class FunctionType : public Type {
public:
  FunctionType(const Type *Result, std::vector<const Type *> Params)
      : Type(Kind::Function), Result(Result), Params(std::move(Params)) {}

  const Type *result() const { return Result; }
  const std::vector<const Type *> &params() const { return Params; }

  static bool classof(const Type *T) { return T->kind() == Kind::Function; }

private:
  const Type *Result;
  std::vector<const Type *> Params;
};

} // namespace dmm

#endif // DMM_AST_TYPE_H
