//===-- ast/Decl.h - MiniC++ declarations -----------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declaration nodes: translation unit, classes/structs/unions, data
/// members, functions, methods, constructors/destructors, variables, and
/// parameters. Declarations are created by the Parser and completed
/// (resolved, type-checked) by Sema. All nodes live in an ASTContext arena.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_DECL_H
#define DMM_AST_DECL_H

#include "ast/Type.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <cassert>
#include <string>
#include <vector>

namespace dmm {

class ClassDecl;
class CompoundStmt;
class Expr;
class FieldDecl;
class MethodDecl;
class ConstructorDecl;
class DestructorDecl;

/// Base of the declaration hierarchy.
class Decl {
public:
  enum class Kind {
    TranslationUnit,
    Class,
    Field,
    Var,
    Param,
    // [functionsBegin, functionsEnd]
    Function,
    Method,
    Constructor,
    Destructor,
  };

  Kind kind() const { return K; }
  const std::string &name() const { return Name; }
  SourceLocation location() const { return Loc; }

  /// Dense per-context ID, assigned at creation; usable as a vector index.
  unsigned declID() const { return ID; }
  void setDeclID(unsigned NewID) { ID = NewID; }

protected:
  Decl(Kind K, std::string Name, SourceLocation Loc)
      : K(K), Name(std::move(Name)), Loc(Loc) {}
  ~Decl() = default;

private:
  Kind K;
  std::string Name;
  SourceLocation Loc;
  unsigned ID = 0;
};

/// The root of a parsed program: all top-level declarations in source
/// order.
class TranslationUnitDecl : public Decl {
public:
  TranslationUnitDecl() : Decl(Kind::TranslationUnit, "<program>", {}) {}

  void addDecl(Decl *D) { Decls.push_back(D); }
  const std::vector<Decl *> &decls() const { return Decls; }

  static bool classof(const Decl *D) {
    return D->kind() == Kind::TranslationUnit;
  }

private:
  std::vector<Decl *> Decls;
};

/// How a class was introduced. Unions get special treatment in the
/// analysis (live-member closure) and in object layout (overlapping
/// members).
enum class TagKind { Class, Struct, Union };

/// A base-class specifier on a ClassDecl.
struct BaseSpecifier {
  ClassDecl *Base = nullptr;
  bool IsVirtual = false;
  SourceLocation Loc;
};

/// A class, struct, or union definition.
class ClassDecl : public Decl {
public:
  ClassDecl(TagKind Tag, std::string Name, SourceLocation Loc)
      : Decl(Kind::Class, std::move(Name), Loc), Tag(Tag) {}

  TagKind tagKind() const { return Tag; }
  bool isUnion() const { return Tag == TagKind::Union; }

  /// True once the body has been parsed (forward declarations are
  /// incomplete until their definition is seen).
  bool isComplete() const { return Complete; }
  void setComplete() { Complete = true; }

  /// A library class: its full source is unavailable, so the analysis
  /// must not classify its members and must treat overrides of its
  /// virtual methods as reachable (paper §3.3).
  bool isLibrary() const { return Library; }
  void setLibrary(bool B = true) { Library = B; }

  void addBase(BaseSpecifier B) { Bases.push_back(B); }
  const std::vector<BaseSpecifier> &bases() const { return Bases; }

  void addField(FieldDecl *F) { Fields.push_back(F); }
  const std::vector<FieldDecl *> &fields() const { return Fields; }

  void addMethod(MethodDecl *M) { Methods.push_back(M); }
  const std::vector<MethodDecl *> &methods() const { return Methods; }

  void addConstructor(ConstructorDecl *C) { Ctors.push_back(C); }
  const std::vector<ConstructorDecl *> &constructors() const { return Ctors; }

  void setDestructor(DestructorDecl *D) { Dtor = D; }
  DestructorDecl *destructor() const { return Dtor; }

  /// Looks up a direct field of this class by name; no base lookup.
  FieldDecl *findField(const std::string &FieldName) const;

  /// Looks up a direct method of this class by name; no base lookup.
  MethodDecl *findMethod(const std::string &MethodName) const;

  static bool classof(const Decl *D) { return D->kind() == Kind::Class; }

private:
  TagKind Tag;
  bool Complete = false;
  bool Library = false;
  std::vector<BaseSpecifier> Bases;
  std::vector<FieldDecl *> Fields;
  std::vector<MethodDecl *> Methods;
  std::vector<ConstructorDecl *> Ctors;
  DestructorDecl *Dtor = nullptr;
};

/// A data member (instance variable) of a class — the subject of the
/// analysis.
class FieldDecl : public Decl {
public:
  FieldDecl(std::string Name, const Type *Ty, bool IsVolatile,
            ClassDecl *Parent, unsigned Index, SourceLocation Loc)
      : Decl(Kind::Field, std::move(Name), Loc), Ty(Ty),
        Volatile(IsVolatile), Parent(Parent), Index(Index) {}

  const Type *type() const { return Ty; }
  bool isVolatile() const { return Volatile; }
  ClassDecl *parent() const { return Parent; }
  /// Position among the parent's direct fields (declaration order).
  unsigned index() const { return Index; }

  /// "C::m" spelling for reports.
  std::string qualifiedName() const {
    return Parent->name() + "::" + name();
  }

  static bool classof(const Decl *D) { return D->kind() == Kind::Field; }

private:
  const Type *Ty;
  bool Volatile;
  ClassDecl *Parent;
  unsigned Index;
};

/// A variable: global or local. Parameters use the ParamDecl subclass.
class VarDecl : public Decl {
public:
  VarDecl(std::string Name, const Type *Ty, SourceLocation Loc)
      : Decl(Kind::Var, std::move(Name), Loc), Ty(Ty) {}

  const Type *type() const { return Ty; }

  Expr *init() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  /// Constructor-call arguments for class-typed variables declared with
  /// parenthesized initializers, e.g. `B b(1, 2);`.
  const std::vector<Expr *> &ctorArgs() const { return CtorArgs; }
  void setCtorArgs(std::vector<Expr *> Args) { CtorArgs = std::move(Args); }

  bool isGlobal() const { return Global; }
  void setGlobal(bool B = true) { Global = B; }

  /// For class-typed variables: the constructor Sema selected (default
  /// constructor when ctorArgs is empty; null if the class has none).
  ConstructorDecl *ctor() const { return Ctor; }
  void setCtor(ConstructorDecl *C) { Ctor = C; }

  static bool classof(const Decl *D) {
    return D->kind() == Kind::Var || D->kind() == Kind::Param;
  }

protected:
  VarDecl(Kind K, std::string Name, const Type *Ty, SourceLocation Loc)
      : Decl(K, std::move(Name), Loc), Ty(Ty) {}

private:
  const Type *Ty;
  Expr *Init = nullptr;
  std::vector<Expr *> CtorArgs;
  bool Global = false;
  ConstructorDecl *Ctor = nullptr;
};

/// A function parameter.
class ParamDecl : public VarDecl {
public:
  ParamDecl(std::string Name, const Type *Ty, SourceLocation Loc)
      : VarDecl(Kind::Param, std::move(Name), Ty, Loc) {}

  static bool classof(const Decl *D) { return D->kind() == Kind::Param; }
};

/// Identifies the compiler-provided builtin functions. `print_*` produce
/// observable output (so their arguments affect behaviour); `free` is the
/// deallocation special case of the analysis.
enum class BuiltinKind {
  None,
  PrintInt,
  PrintChar,
  PrintDouble,
  PrintStr,
  PrintBool,
  Free,
};

/// A free function. Methods, constructors, and destructors are
/// subclasses.
class FunctionDecl : public Decl {
public:
  FunctionDecl(std::string Name, const Type *ReturnTy, SourceLocation Loc)
      : FunctionDecl(Kind::Function, std::move(Name), ReturnTy, Loc) {}

  const Type *returnType() const { return ReturnTy; }

  BuiltinKind builtinKind() const { return Builtin; }
  void setBuiltinKind(BuiltinKind B) { Builtin = B; }
  bool isBuiltin() const { return Builtin != BuiltinKind::None; }

  void addParam(ParamDecl *P) { Params.push_back(P); }
  const std::vector<ParamDecl *> &params() const { return Params; }
  /// Replaces the parameter list; used when an out-of-line definition
  /// renames the parameters of an earlier declaration.
  void setParams(std::vector<ParamDecl *> NewParams) {
    Params = std::move(NewParams);
  }

  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }
  bool isDefined() const { return Body != nullptr; }

  /// "f" or "C::f" spelling for reports and call-graph dumps.
  std::string qualifiedName() const;

  static bool classof(const Decl *D) {
    return D->kind() >= Kind::Function && D->kind() <= Kind::Destructor;
  }

protected:
  FunctionDecl(Kind K, std::string Name, const Type *ReturnTy,
               SourceLocation Loc)
      : Decl(K, std::move(Name), Loc), ReturnTy(ReturnTy) {}

private:
  const Type *ReturnTy;
  std::vector<ParamDecl *> Params;
  CompoundStmt *Body = nullptr;
  BuiltinKind Builtin = BuiltinKind::None;
};

/// A member function.
class MethodDecl : public FunctionDecl {
public:
  MethodDecl(std::string Name, const Type *ReturnTy, ClassDecl *Parent,
             bool IsVirtual, SourceLocation Loc)
      : MethodDecl(Kind::Method, std::move(Name), ReturnTy, Parent, IsVirtual,
                   Loc) {}

  ClassDecl *parent() const { return Parent; }

  /// True if declared `virtual` here or overriding a virtual base method
  /// (the latter is computed by Sema).
  bool isVirtual() const { return Virtual; }
  void setVirtual(bool B = true) { Virtual = B; }

  static bool classof(const Decl *D) {
    return D->kind() >= Kind::Method && D->kind() <= Kind::Destructor;
  }

protected:
  MethodDecl(Kind K, std::string Name, const Type *ReturnTy,
             ClassDecl *Parent, bool IsVirtual, SourceLocation Loc)
      : FunctionDecl(K, std::move(Name), ReturnTy, Loc), Parent(Parent),
        Virtual(IsVirtual) {}

private:
  ClassDecl *Parent;
  bool Virtual;
};

/// One element of a constructor initializer list: either a member
/// initializer `m(args)` or a base initializer `Base(args)`. The parser
/// records the spelled name; Sema resolves it to a field or base.
struct CtorInitializer {
  std::string Name;
  FieldDecl *Field = nullptr; ///< Set for member initializers (by Sema).
  ClassDecl *Base = nullptr;  ///< Set for base initializers (by Sema).
  /// For base initializers and class-typed member initializers: the
  /// constructor invoked (resolved by arity; null for default
  /// construction of a ctor-less class).
  ConstructorDecl *TargetCtor = nullptr;
  std::vector<Expr *> Args;
  SourceLocation Loc;
};

/// A constructor.
class ConstructorDecl : public MethodDecl {
public:
  ConstructorDecl(ClassDecl *Parent, const Type *VoidTy, SourceLocation Loc)
      : MethodDecl(Kind::Constructor, Parent->name(), VoidTy, Parent,
                   /*IsVirtual=*/false, Loc) {}

  void addInitializer(CtorInitializer Init) {
    Inits.push_back(std::move(Init));
  }
  const std::vector<CtorInitializer> &initializers() const { return Inits; }
  /// Mutable access for Sema's initializer resolution.
  std::vector<CtorInitializer> &initializers() { return Inits; }

  static bool classof(const Decl *D) {
    return D->kind() == Kind::Constructor;
  }

private:
  std::vector<CtorInitializer> Inits;
};

/// A destructor.
class DestructorDecl : public MethodDecl {
public:
  DestructorDecl(ClassDecl *Parent, const Type *VoidTy, bool IsVirtual,
                 SourceLocation Loc)
      : MethodDecl(Kind::Destructor, "~" + Parent->name(), VoidTy, Parent,
                   IsVirtual, Loc) {}

  static bool classof(const Decl *D) {
    return D->kind() == Kind::Destructor;
  }
};

} // namespace dmm

#endif // DMM_AST_DECL_H
