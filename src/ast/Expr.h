//===-- ast/Expr.h - MiniC++ expressions ------------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes. Expressions carry a type (filled in by Sema) and an
/// lvalue flag. The dead-member analysis dispatches on MemberExpr,
/// MemberPointerConstantExpr, MemberPointerAccessExpr, UnaryExpr(AddrOf),
/// AssignExpr, CallExpr (delete/free exemption), CastExpr (unsafe casts),
/// and SizeofExpr — exactly the cases of paper Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_EXPR_H
#define DMM_AST_EXPR_H

#include "ast/Type.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace dmm {

class ConstructorDecl;
class Decl;
class FieldDecl;
class FunctionDecl;
class MethodDecl;

/// Base of the expression hierarchy.
class Expr {
public:
  enum class Kind {
    IntLiteral,
    DoubleLiteral,
    BoolLiteral,
    CharLiteral,
    StringLiteral,
    NullptrLiteral,
    DeclRef,
    This,
    Member,
    MemberPointerConstant,
    MemberPointerAccess,
    Unary,
    Binary,
    Assign,
    Conditional,
    Comma,
    Subscript,
    Call,
    New,
    Delete,
    Cast,
    Sizeof,
  };

  Kind kind() const { return K; }
  SourceLocation location() const { return Loc; }

  /// The expression's type; null until Sema has run.
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  bool isLValue() const { return LValue; }
  void setLValue(bool B = true) { LValue = B; }

protected:
  Expr(Kind K, SourceLocation Loc) : K(K), Loc(Loc) {}
  ~Expr() = default;

private:
  Kind K;
  SourceLocation Loc;
  const Type *Ty = nullptr;
  bool LValue = false;
};

/// Integer literal.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(long long Value, SourceLocation Loc)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}
  long long value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  long long Value;
};

/// Floating-point literal.
class DoubleLiteralExpr : public Expr {
public:
  DoubleLiteralExpr(double Value, SourceLocation Loc)
      : Expr(Kind::DoubleLiteral, Loc), Value(Value) {}
  double value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::DoubleLiteral;
  }

private:
  double Value;
};

/// `true` / `false`.
class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(bool Value, SourceLocation Loc)
      : Expr(Kind::BoolLiteral, Loc), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::BoolLiteral;
  }

private:
  bool Value;
};

/// Character literal.
class CharLiteralExpr : public Expr {
public:
  CharLiteralExpr(char Value, SourceLocation Loc)
      : Expr(Kind::CharLiteral, Loc), Value(Value) {}
  char value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::CharLiteral;
  }

private:
  char Value;
};

/// String literal; has type char[N+1].
class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(std::string Value, SourceLocation Loc)
      : Expr(Kind::StringLiteral, Loc), Value(std::move(Value)) {}
  const std::string &value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == Kind::StringLiteral;
  }

private:
  std::string Value;
};

/// `nullptr`.
class NullptrLiteralExpr : public Expr {
public:
  explicit NullptrLiteralExpr(SourceLocation Loc)
      : Expr(Kind::NullptrLiteral, Loc) {}
  static bool classof(const Expr *E) {
    return E->kind() == Kind::NullptrLiteral;
  }
};

/// A use of a named variable or function.
class DeclRefExpr : public Expr {
public:
  DeclRefExpr(std::string Name, SourceLocation Loc)
      : Expr(Kind::DeclRef, Loc), Name(std::move(Name)) {}

  const std::string &declName() const { return Name; }

  /// The referenced VarDecl or FunctionDecl; null until resolved by Sema.
  Decl *referent() const { return Referent; }
  void setReferent(Decl *D) { Referent = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::DeclRef; }

private:
  std::string Name;
  Decl *Referent = nullptr;
};

/// `this` inside a method body.
class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLocation Loc) : Expr(Kind::This, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == Kind::This; }
};

/// Member access: `e.m`, `e->m`, and qualified forms `e.C::m` / `e->C::m`.
class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, bool IsArrow, std::string MemberName,
             std::string Qualifier, SourceLocation Loc)
      : Expr(Kind::Member, Loc), Base(Base), Arrow(IsArrow),
        MemberName(std::move(MemberName)), Qualifier(std::move(Qualifier)) {}

  Expr *base() const { return Base; }
  bool isArrow() const { return Arrow; }
  const std::string &memberName() const { return MemberName; }

  /// Spelled qualifier for `e.C::m` forms; empty when unqualified.
  const std::string &qualifier() const { return Qualifier; }
  bool isQualified() const { return !Qualifier.empty(); }

  /// The member found by Lookup (a FieldDecl or MethodDecl); null until
  /// Sema runs. The declaring class may be a base of the base
  /// expression's class.
  Decl *member() const { return Member; }
  void setMember(Decl *D) { Member = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Member; }

private:
  Expr *Base;
  bool Arrow;
  std::string MemberName;
  std::string Qualifier;
  Decl *Member = nullptr;
};

/// Pointer-to-member constant `&C::m` (paper Fig. 2 lines 26-28: "the
/// offset of member m within class Z is computed").
class MemberPointerConstantExpr : public Expr {
public:
  MemberPointerConstantExpr(std::string ClassName, std::string MemberName,
                            SourceLocation Loc)
      : Expr(Kind::MemberPointerConstant, Loc),
        ClassName(std::move(ClassName)), MemberName(std::move(MemberName)) {}

  const std::string &className() const { return ClassName; }
  const std::string &memberName() const { return MemberName; }

  /// The member resolved by Lookup; null until Sema runs.
  FieldDecl *member() const { return Member; }
  void setMember(FieldDecl *F) { Member = F; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::MemberPointerConstant;
  }

private:
  std::string ClassName;
  std::string MemberName;
  FieldDecl *Member = nullptr;
};

/// Indirect member access through a pointer-to-member: `e.*pm`, `e->*pm`.
class MemberPointerAccessExpr : public Expr {
public:
  MemberPointerAccessExpr(Expr *Base, Expr *Pointer, bool IsArrow,
                          SourceLocation Loc)
      : Expr(Kind::MemberPointerAccess, Loc), Base(Base), Pointer(Pointer),
        Arrow(IsArrow) {}

  Expr *base() const { return Base; }
  Expr *pointer() const { return Pointer; }
  bool isArrow() const { return Arrow; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::MemberPointerAccess;
  }

private:
  Expr *Base;
  Expr *Pointer;
  bool Arrow;
};

/// Unary operator kinds.
enum class UnaryOpKind {
  Minus,
  Not,
  BitNot,
  Deref,
  AddrOf,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

/// A unary operation. AddrOf on a MemberExpr is the `&e.m` case of the
/// analysis.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, Expr *Sub, SourceLocation Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(Sub) {}

  UnaryOpKind op() const { return Op; }
  Expr *sub() const { return Sub; }

  bool isIncDec() const {
    return Op == UnaryOpKind::PreInc || Op == UnaryOpKind::PreDec ||
           Op == UnaryOpKind::PostInc || Op == UnaryOpKind::PostDec;
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOpKind Op;
  Expr *Sub;
};

/// Binary operator kinds (excluding assignments).
enum class BinaryOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  LT,
  GT,
  LE,
  GE,
  EQ,
  NE,
  LAnd,
  LOr,
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOpKind Op, Expr *LHS, Expr *RHS, SourceLocation Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOpKind op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOpKind Op;
  Expr *LHS;
  Expr *RHS;
};

/// Assignment operator kinds.
enum class AssignOpKind {
  Assign,
  AddAssign,
  SubAssign,
  MulAssign,
  DivAssign,
  RemAssign,
};

/// An assignment. Kept distinct from BinaryExpr because the analysis
/// classifies the LHS of a plain `=` as a write access (not live), while
/// compound assignments also read.
class AssignExpr : public Expr {
public:
  AssignExpr(AssignOpKind Op, Expr *LHS, Expr *RHS, SourceLocation Loc)
      : Expr(Kind::Assign, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  AssignOpKind op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }
  bool isCompound() const { return Op != AssignOpKind::Assign; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Assign; }

private:
  AssignOpKind Op;
  Expr *LHS;
  Expr *RHS;
};

/// `Cond ? Then : Else`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(Expr *Cond, Expr *Then, Expr *Else, SourceLocation Loc)
      : Expr(Kind::Conditional, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *cond() const { return Cond; }
  Expr *thenExpr() const { return Then; }
  Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) {
    return E->kind() == Kind::Conditional;
  }

private:
  Expr *Cond;
  Expr *Then;
  Expr *Else;
};

/// `LHS, RHS`.
class CommaExpr : public Expr {
public:
  CommaExpr(Expr *LHS, Expr *RHS, SourceLocation Loc)
      : Expr(Kind::Comma, Loc), LHS(LHS), RHS(RHS) {}

  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Comma; }

private:
  Expr *LHS;
  Expr *RHS;
};

/// `Base[Index]`.
class SubscriptExpr : public Expr {
public:
  SubscriptExpr(Expr *Base, Expr *Index, SourceLocation Loc)
      : Expr(Kind::Subscript, Loc), Base(Base), Index(Index) {}

  Expr *base() const { return Base; }
  Expr *index() const { return Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Subscript; }

private:
  Expr *Base;
  Expr *Index;
};

/// A call: free function, method (callee is a MemberExpr), builtin, or
/// indirect through a function pointer.
class CallExpr : public Expr {
public:
  CallExpr(Expr *Callee, std::vector<Expr *> Args, SourceLocation Loc)
      : Expr(Kind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}

  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  /// The statically known callee, if any; for virtual calls this is the
  /// statically resolved method (the dispatch target set comes from the
  /// call graph).
  FunctionDecl *directCallee() const { return Direct; }
  void setDirectCallee(FunctionDecl *F) { Direct = F; }

  /// True for unqualified calls to virtual methods through an object,
  /// pointer, or reference — subject to dynamic dispatch.
  bool isVirtualCall() const { return Virtual; }
  void setVirtualCall(bool B = true) { Virtual = B; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
  FunctionDecl *Direct = nullptr;
  bool Virtual = false;
};

/// `new T(args)`, `new T`, `new T[n]`.
class NewExpr : public Expr {
public:
  NewExpr(const Type *AllocType, std::vector<Expr *> CtorArgs,
          Expr *ArraySize, SourceLocation Loc)
      : Expr(Kind::New, Loc), AllocType(AllocType),
        CtorArgs(std::move(CtorArgs)), ArraySize(ArraySize) {}

  const Type *allocType() const { return AllocType; }
  const std::vector<Expr *> &ctorArgs() const { return CtorArgs; }
  Expr *arraySize() const { return ArraySize; } ///< Null if not an array.
  bool isArrayNew() const { return ArraySize != nullptr; }

  /// The constructor selected by Sema (null for non-class or ctor-less
  /// allocations).
  ConstructorDecl *constructor() const { return Ctor; }
  void setConstructor(ConstructorDecl *C) { Ctor = C; }

  static bool classof(const Expr *E) { return E->kind() == Kind::New; }

private:
  const Type *AllocType;
  std::vector<Expr *> CtorArgs;
  Expr *ArraySize;
  ConstructorDecl *Ctor = nullptr;
};

/// `delete e` / `delete[] e`. The analysis exempts member reads that
/// merely feed a delete operand (paper footnote: delete/free cannot
/// affect observable behaviour).
class DeleteExpr : public Expr {
public:
  DeleteExpr(Expr *Sub, bool IsArray, SourceLocation Loc)
      : Expr(Kind::Delete, Loc), Sub(Sub), Array(IsArray) {}

  Expr *sub() const { return Sub; }
  bool isArrayDelete() const { return Array; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Delete; }

private:
  Expr *Sub;
  bool Array;
};

/// Spelling of a cast.
enum class CastStyle { CStyle, Static, Reinterpret };

/// Structural safety of a cast, computed by Sema. The paper (§3) calls a
/// cast from S to T unsafe "if T is a derived class of S and the object
/// being cast cannot be guaranteed to be of type T at run-time"; the tool
/// user may assert that all down-casts are in fact safe (as the paper's
/// authors verified for their benchmarks), which is a policy knob of the
/// analysis, not of Sema.
enum class CastSafety {
  Safe,      ///< Identity, numeric, or pointer up-cast.
  Downcast,  ///< Pointer down-cast: unsafe unless the user asserts safety.
  Unrelated, ///< Reinterpretation between unrelated types: always unsafe.
};

/// An explicit cast. Unsafe casts trigger MarkAllContainedMembers on the
/// operand's type (paper Fig. 2 lines 29-32).
class CastExpr : public Expr {
public:
  CastExpr(CastStyle Style, const Type *TargetType, Expr *Sub,
           SourceLocation Loc)
      : Expr(Kind::Cast, Loc), Style(Style), TargetType(TargetType),
        Sub(Sub) {}

  CastStyle style() const { return Style; }
  const Type *targetType() const { return TargetType; }
  Expr *sub() const { return Sub; }

  CastSafety safety() const { return Safety; }
  void setSafety(CastSafety S) { Safety = S; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }

private:
  CastStyle Style;
  const Type *TargetType;
  Expr *Sub;
  CastSafety Safety = CastSafety::Safe;
};

/// `sizeof(T)` or `sizeof e`.
class SizeofExpr : public Expr {
public:
  SizeofExpr(const Type *TypeOperand, Expr *ExprOperand, SourceLocation Loc)
      : Expr(Kind::Sizeof, Loc), TypeOperand(TypeOperand),
        ExprOperand(ExprOperand) {}

  /// Exactly one of these is non-null.
  const Type *typeOperand() const { return TypeOperand; }
  Expr *exprOperand() const { return ExprOperand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Sizeof; }

private:
  const Type *TypeOperand;
  Expr *ExprOperand;
};

} // namespace dmm

#endif // DMM_AST_EXPR_H
