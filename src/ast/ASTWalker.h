//===-- ast/ASTWalker.h - AST traversal helpers -----------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Header-only traversal helpers. The dead-member analysis (paper Fig. 2)
/// iterates "each statement s in each function f", then "each expression e
/// in statement s"; these templates implement exactly those loops,
/// including the places expressions hide outside statement bodies:
/// variable initializers and constructor initializer lists.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_AST_ASTWALKER_H
#define DMM_AST_ASTWALKER_H

#include "ast/Decl.h"
#include "ast/Expr.h"
#include "ast/Stmt.h"

namespace dmm {

/// Invokes \p Fn on each direct sub-expression of \p E (not on E itself).
template <typename Fn> void forEachChildExpr(const Expr *E, Fn &&F) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::DoubleLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::CharLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::NullptrLiteral:
  case Expr::Kind::DeclRef:
  case Expr::Kind::This:
  case Expr::Kind::MemberPointerConstant:
    return;
  case Expr::Kind::Member:
    F(cast<MemberExpr>(E)->base());
    return;
  case Expr::Kind::MemberPointerAccess: {
    const auto *MPA = cast<MemberPointerAccessExpr>(E);
    F(MPA->base());
    F(MPA->pointer());
    return;
  }
  case Expr::Kind::Unary:
    F(cast<UnaryExpr>(E)->sub());
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    F(B->lhs());
    F(B->rhs());
    return;
  }
  case Expr::Kind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    F(A->lhs());
    F(A->rhs());
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    F(C->cond());
    F(C->thenExpr());
    F(C->elseExpr());
    return;
  }
  case Expr::Kind::Comma: {
    const auto *C = cast<CommaExpr>(E);
    F(C->lhs());
    F(C->rhs());
    return;
  }
  case Expr::Kind::Subscript: {
    const auto *S = cast<SubscriptExpr>(E);
    F(S->base());
    F(S->index());
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    F(C->callee());
    for (const Expr *Arg : C->args())
      F(Arg);
    return;
  }
  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    if (N->arraySize())
      F(N->arraySize());
    for (const Expr *Arg : N->ctorArgs())
      F(Arg);
    return;
  }
  case Expr::Kind::Delete:
    F(cast<DeleteExpr>(E)->sub());
    return;
  case Expr::Kind::Cast:
    F(cast<CastExpr>(E)->sub());
    return;
  case Expr::Kind::Sizeof:
    if (const Expr *Operand = cast<SizeofExpr>(E)->exprOperand())
      F(Operand);
    return;
  }
}

/// Invokes \p Fn on \p E and every transitive sub-expression, preorder.
template <typename Fn> void forEachExprPreorder(const Expr *E, Fn &&F) {
  F(E);
  forEachChildExpr(E, [&](const Expr *Child) { forEachExprPreorder(Child, F); });
}

/// Invokes \p Fn on each expression directly owned by statement \p S
/// (conditions, values, variable initializers) without descending into
/// nested statements or into sub-expressions.
template <typename Fn> void forEachDirectExpr(const Stmt *S, Fn &&F) {
  switch (S->kind()) {
  case Stmt::Kind::Compound:
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Null:
    return;
  case Stmt::Kind::Decl:
    for (const VarDecl *V : cast<DeclStmt>(S)->vars()) {
      if (const Expr *Init = V->init())
        F(Init);
      for (const Expr *Arg : V->ctorArgs())
        F(Arg);
    }
    return;
  case Stmt::Kind::Expr:
    F(cast<ExprStmt>(S)->expr());
    return;
  case Stmt::Kind::If:
    F(cast<IfStmt>(S)->cond());
    return;
  case Stmt::Kind::While:
    F(cast<WhileStmt>(S)->cond());
    return;
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    if (FS->cond())
      F(FS->cond());
    if (FS->step())
      F(FS->step());
    return;
  }
  case Stmt::Kind::Return:
    if (const Expr *Value = cast<ReturnStmt>(S)->value())
      F(Value);
    return;
  }
}

/// Invokes \p Fn on \p S and every transitively nested statement,
/// preorder.
template <typename Fn> void forEachStmtPreorder(const Stmt *S, Fn &&F) {
  F(S);
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->stmts())
      forEachStmtPreorder(Child, F);
    return;
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    forEachStmtPreorder(IS->thenStmt(), F);
    if (IS->elseStmt())
      forEachStmtPreorder(IS->elseStmt(), F);
    return;
  }
  case Stmt::Kind::While:
    forEachStmtPreorder(cast<WhileStmt>(S)->body(), F);
    return;
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    if (FS->init())
      forEachStmtPreorder(FS->init(), F);
    forEachStmtPreorder(FS->body(), F);
    return;
  }
  default:
    return;
  }
}

/// Invokes \p Fn on every top-level expression tree in \p F's body and,
/// for constructors, in the initializer list. "Top-level" means the roots
/// handed out by forEachDirectExpr; use forEachExprPreorder on each to
/// reach sub-expressions.
template <typename Fn>
void forEachTopLevelExprInFunction(const FunctionDecl *FD, Fn &&F) {
  if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD))
    for (const CtorInitializer &Init : Ctor->initializers())
      for (const Expr *Arg : Init.Args)
        F(Arg);
  if (!FD->body())
    return;
  forEachStmtPreorder(FD->body(), [&](const Stmt *S) {
    forEachDirectExpr(S, [&](const Expr *E) { F(E); });
  });
}

/// Invokes \p Fn on every expression (preorder, including nested) in \p
/// FD: body statements, variable initializers, and constructor
/// initializer arguments.
template <typename Fn>
void forEachExprInFunction(const FunctionDecl *FD, Fn &&F) {
  forEachTopLevelExprInFunction(
      FD, [&](const Expr *E) { forEachExprPreorder(E, F); });
}

} // namespace dmm

#endif // DMM_AST_ASTWALKER_H
