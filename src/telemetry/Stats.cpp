//===-- telemetry/Stats.cpp -----------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Stats.h"

#include "telemetry/CrashHandler.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Json.h"
#include "telemetry/Log.h"
#include "telemetry/MemoryAccounting.h"
#include "telemetry/Telemetry.h"

#include <algorithm>

using namespace dmm;
using namespace dmm::stats;

uint64_t SpanStat::intArg(std::string_view Key, uint64_t Default) const {
  for (const auto &[K, V] : IntArgs)
    if (K == Key)
      return V;
  return Default;
}

std::string SpanStat::strArg(std::string_view Key) const {
  for (const auto &[K, V] : StrArgs)
    if (K == Key)
      return V;
  return std::string();
}

namespace {

std::pair<std::string_view, std::string_view>
splitNamespace(std::string_view Name) {
  size_t Dot = Name.find('.');
  if (Dot == std::string_view::npos)
    return {Name, std::string_view()};
  return {Name.substr(0, Dot), Name.substr(Dot + 1)};
}

bool namespaceKeyLess(std::string_view A, std::string_view B) {
  auto [NsA, KeyA] = splitNamespace(A);
  auto [NsB, KeyB] = splitNamespace(B);
  if (NsA != NsB)
    return NsA < NsB;
  return KeyA < KeyB;
}

void printEscaped(std::ostream &OS, std::string_view S) {
  static const char *Hex = "0123456789abcdef";
  OS << '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (U < 0x20)
      OS << "\\u00" << Hex[U >> 4] << Hex[U & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

} // namespace

StatsDocument stats::buildStats(const Telemetry &T, std::string Tool,
                                unsigned Jobs) {
  StatsDocument D;
  D.Tool = std::move(Tool);
  D.Jobs = Jobs;
  D.MemAccounting = memacct::available();

  // The v3 diagnostics section reflects process-wide observability
  // state (the logger and flight recorder are global, not per
  // registry), snapshotted at build time.
  Logger &Log = Logger::instance();
  D.Diagnostics.Present = true;
  D.Diagnostics.LogError = Log.count(LogLevel::Error);
  D.Diagnostics.LogWarn = Log.count(LogLevel::Warn);
  D.Diagnostics.LogInfo = Log.count(LogLevel::Info);
  D.Diagnostics.LogDebug = Log.count(LogLevel::Debug);
  D.Diagnostics.LogTrace = Log.count(LogLevel::Trace);
  if (const FlightRecorder *R = FlightRecorder::active()) {
    D.Diagnostics.RecorderEvents = R->eventsRecorded();
    D.Diagnostics.RecorderDropped = R->eventsDropped();
  }
  D.Diagnostics.Crashes = crashReportsWritten();

  for (const PhaseStat &P : T.phases())
    D.Phases.push_back({P.Name, P.Nanos, P.Invocations});
  std::stable_sort(D.Phases.begin(), D.Phases.end(),
                   [](const PhaseRow &A, const PhaseRow &B) {
                     return namespaceKeyLess(A.Name, B.Name);
                   });

  for (const auto &[Name, Value] : T.counters())
    D.Counters.emplace_back(Name, Value);
  std::stable_sort(D.Counters.begin(), D.Counters.end(),
                   [](const auto &A, const auto &B) {
                     return namespaceKeyLess(A.first, B.first);
                   });

  D.Spans.reserve(T.spans().size());
  for (const SpanRecord &R : T.spans()) {
    SpanStat S;
    S.Id = R.Id;
    S.Parent = R.Parent;
    S.Name = R.Name;
    S.StartNanos = R.StartNanos;
    S.DurNanos = R.DurNanos;
    S.CpuNanos = R.CpuNanos;
    S.MemNetBytes = R.MemNetBytes;
    S.MemPeakBytes = R.MemPeakBytes;
    S.Depth = R.Depth;
    for (const SpanArg &A : R.Args) {
      if (A.IsString)
        S.StrArgs.emplace_back(A.Key, A.StrValue);
      else
        S.IntArgs.emplace_back(A.Key, A.IntValue);
    }
    D.Spans.push_back(std::move(S));
  }
  return D;
}

void stats::printStats(const StatsDocument &D, std::ostream &OS) {
  OS << "{\n";
  OS << "  \"schema\": \"" << kSchemaName << "\",\n";
  OS << "  \"version\": " << D.Version << ",\n";
  OS << "  \"tool\": ";
  printEscaped(OS, D.Tool);
  OS << ",\n";
  OS << "  \"jobs\": " << D.Jobs << ",\n";
  OS << "  \"memory_accounting\": " << (D.MemAccounting ? "true" : "false")
     << ",\n";

  if (D.Diagnostics.Present) {
    const DiagnosticsSection &G = D.Diagnostics;
    OS << "  \"diagnostics\": {\n";
    OS << "    \"log_error\": " << G.LogError << ",\n";
    OS << "    \"log_warn\": " << G.LogWarn << ",\n";
    OS << "    \"log_info\": " << G.LogInfo << ",\n";
    OS << "    \"log_debug\": " << G.LogDebug << ",\n";
    OS << "    \"log_trace\": " << G.LogTrace << ",\n";
    OS << "    \"recorder_events\": " << G.RecorderEvents << ",\n";
    OS << "    \"recorder_dropped\": " << G.RecorderDropped << ",\n";
    OS << "    \"crashes\": " << G.Crashes << "\n";
    OS << "  },\n";
  }

  if (D.Profiler.Present) {
    const ProfilerSection &P = D.Profiler;
    OS << "  \"profiler\": {\n";
    OS << "    \"object_space\": " << P.ObjectSpace << ",\n";
    OS << "    \"dead_member_space\": " << P.DeadMemberSpace << ",\n";
    OS << "    \"high_water_mark\": " << P.HighWaterMark << ",\n";
    OS << "    \"high_water_mark_no_dead\": " << P.HighWaterMarkNoDead
       << ",\n";
    OS << "    \"num_objects\": " << P.NumObjects << ",\n";
    OS << "    \"alloc_events\": " << P.AllocEvents << ",\n";
    OS << "    \"free_events\": " << P.FreeEvents << ",\n";
    OS << "    \"leaked_objects\": " << P.LeakedObjects << ",\n";
    OS << "    \"peak_alloc_event\": " << P.PeakAllocEvent << ",\n";
    OS << "    \"snapshot_stride\": " << P.SnapshotStride << ",\n";
    OS << "    \"snapshots\": [";
    for (size_t I = 0; I != P.Snapshots.size(); ++I) {
      const ProfilerSnapshotRow &S = P.Snapshots[I];
      OS << (I ? "," : "") << "\n      {\"event\": " << S.Event
         << ", \"live_bytes\": " << S.LiveBytes
         << ", \"live_bytes_no_dead\": " << S.LiveBytesNoDead
         << ", \"live_objects\": " << S.LiveObjects << "}";
    }
    OS << (P.Snapshots.empty() ? "" : "\n    ") << "],\n";
    OS << "    \"sites\": [";
    for (size_t I = 0; I != P.Sites.size(); ++I) {
      const ProfilerSiteRow &S = P.Sites[I];
      OS << (I ? "," : "") << "\n      {\"file\": ";
      printEscaped(OS, S.File);
      OS << ", \"line\": " << S.Line << ", \"class\": ";
      printEscaped(OS, S.Class);
      OS << ", \"member\": ";
      printEscaped(OS, S.Member);
      OS << ", \"objects\": " << S.Objects
         << ", \"alloc_bytes\": " << S.AllocBytes
         << ", \"written_bytes\": " << S.WrittenBytes
         << ", \"read_bytes\": " << S.ReadBytes
         << ", \"addr_taken_bytes\": " << S.AddrTakenBytes
         << ", \"never_read_bytes\": " << S.NeverReadBytes
         << ", \"static_dead\": " << (S.StaticDead ? "true" : "false")
         << "}";
    }
    OS << (P.Sites.empty() ? "" : "\n    ") << "]\n";
    OS << "  },\n";
  }

  OS << "  \"phases\": [";
  for (size_t I = 0; I != D.Phases.size(); ++I) {
    const PhaseRow &P = D.Phases[I];
    OS << (I ? "," : "") << "\n    {\"name\": ";
    printEscaped(OS, P.Name);
    OS << ", \"wall_ns\": " << P.Nanos << ", \"calls\": " << P.Invocations
       << "}";
  }
  OS << (D.Phases.empty() ? "" : "\n  ") << "],\n";

  OS << "  \"counters\": {";
  for (size_t I = 0; I != D.Counters.size(); ++I) {
    OS << (I ? "," : "") << "\n    ";
    printEscaped(OS, D.Counters[I].first);
    OS << ": " << D.Counters[I].second;
  }
  OS << (D.Counters.empty() ? "" : "\n  ") << "},\n";

  OS << "  \"spans\": [";
  for (size_t I = 0; I != D.Spans.size(); ++I) {
    const SpanStat &S = D.Spans[I];
    OS << (I ? "," : "") << "\n    {\"id\": " << S.Id
       << ", \"parent\": " << S.Parent << ", \"name\": ";
    printEscaped(OS, S.Name);
    OS << ", \"depth\": " << S.Depth << ", \"start_ns\": " << S.StartNanos
       << ", \"wall_ns\": " << S.DurNanos << ", \"cpu_ns\": " << S.CpuNanos
       << ", \"mem_net_bytes\": " << S.MemNetBytes
       << ", \"mem_peak_bytes\": " << S.MemPeakBytes;
    if (!S.IntArgs.empty() || !S.StrArgs.empty()) {
      OS << ", \"args\": {";
      bool First = true;
      for (const auto &[K, V] : S.IntArgs) {
        OS << (First ? "" : ", ");
        First = false;
        printEscaped(OS, K);
        OS << ": " << V;
      }
      for (const auto &[K, V] : S.StrArgs) {
        OS << (First ? "" : ", ");
        First = false;
        printEscaped(OS, K);
        OS << ": ";
        printEscaped(OS, V);
      }
      OS << "}";
    }
    OS << "}";
  }
  OS << (D.Spans.empty() ? "" : "\n  ") << "]\n";
  OS << "}\n";
}

namespace {

bool failParse(std::string &Error, const std::string &Msg) {
  Error = Msg;
  return false;
}

bool requireNumber(const json::Value &Obj, const char *Key,
                   const std::string &Where, std::string &Error) {
  const json::Value *V = Obj.get(Key);
  if (!V || !V->isNumber())
    return failParse(Error, Where + ": missing or non-numeric field \"" +
                                Key + "\"");
  return true;
}

} // namespace

bool stats::parseStats(std::string_view Text, StatsDocument &Out,
                       std::string &Error) {
  json::Value Root;
  if (!json::parse(Text, Root, Error)) {
    Error = "invalid JSON: " + Error;
    return false;
  }
  if (!Root.isObject())
    return failParse(Error, "top-level value is not an object");

  const json::Value *Schema = Root.get("schema");
  if (!Schema || !Schema->isString() || Schema->str() != kSchemaName)
    return failParse(Error, "missing or unexpected \"schema\" (want \"" +
                                std::string(kSchemaName) + "\")");
  const json::Value *Version = Root.get("version");
  if (!Version || !Version->isNumber())
    return failParse(Error, "missing numeric \"version\"");
  if (Version->asInt() < kMinSchemaVersion ||
      Version->asInt() > kSchemaVersion)
    return failParse(Error, "unsupported stats version " +
                                std::to_string(Version->asInt()) +
                                " (this tool reads versions " +
                                std::to_string(kMinSchemaVersion) + ".." +
                                std::to_string(kSchemaVersion) + ")");
  Out.Version = static_cast<int>(Version->asInt());

  const json::Value *Tool = Root.get("tool");
  if (!Tool || !Tool->isString())
    return failParse(Error, "missing string \"tool\"");
  Out.Tool = Tool->str();

  if (!requireNumber(Root, "jobs", "top level", Error))
    return false;
  Out.Jobs = static_cast<unsigned>(Root.getNumber("jobs"));

  const json::Value *MemAcct = Root.get("memory_accounting");
  if (!MemAcct || !MemAcct->isBool())
    return failParse(Error, "missing boolean \"memory_accounting\"");
  Out.MemAccounting = MemAcct->boolean();

  if (const json::Value *Diag = Root.get("diagnostics")) {
    if (Out.Version < 3)
      return failParse(
          Error, "\"diagnostics\" section requires stats version >= 3");
    if (!Diag->isObject())
      return failParse(Error, "\"diagnostics\" is not an object");
    DiagnosticsSection &G = Out.Diagnostics;
    G.Present = true;
    for (const char *Key :
         {"log_error", "log_warn", "log_info", "log_debug", "log_trace",
          "recorder_events", "recorder_dropped", "crashes"})
      if (!requireNumber(*Diag, Key, "diagnostics", Error))
        return false;
    G.LogError = static_cast<uint64_t>(Diag->getNumber("log_error"));
    G.LogWarn = static_cast<uint64_t>(Diag->getNumber("log_warn"));
    G.LogInfo = static_cast<uint64_t>(Diag->getNumber("log_info"));
    G.LogDebug = static_cast<uint64_t>(Diag->getNumber("log_debug"));
    G.LogTrace = static_cast<uint64_t>(Diag->getNumber("log_trace"));
    G.RecorderEvents =
        static_cast<uint64_t>(Diag->getNumber("recorder_events"));
    G.RecorderDropped =
        static_cast<uint64_t>(Diag->getNumber("recorder_dropped"));
    G.Crashes = static_cast<uint64_t>(Diag->getNumber("crashes"));
  }

  if (const json::Value *Prof = Root.get("profiler")) {
    if (Out.Version < 2)
      return failParse(Error,
                       "\"profiler\" section requires stats version >= 2");
    if (!Prof->isObject())
      return failParse(Error, "\"profiler\" is not an object");
    ProfilerSection &P = Out.Profiler;
    P.Present = true;
    for (const char *Key :
         {"object_space", "dead_member_space", "high_water_mark",
          "high_water_mark_no_dead", "num_objects", "alloc_events",
          "free_events", "leaked_objects", "peak_alloc_event",
          "snapshot_stride"})
      if (!requireNumber(*Prof, Key, "profiler", Error))
        return false;
    P.ObjectSpace = static_cast<uint64_t>(Prof->getNumber("object_space"));
    P.DeadMemberSpace =
        static_cast<uint64_t>(Prof->getNumber("dead_member_space"));
    P.HighWaterMark =
        static_cast<uint64_t>(Prof->getNumber("high_water_mark"));
    P.HighWaterMarkNoDead =
        static_cast<uint64_t>(Prof->getNumber("high_water_mark_no_dead"));
    P.NumObjects = static_cast<uint64_t>(Prof->getNumber("num_objects"));
    P.AllocEvents = static_cast<uint64_t>(Prof->getNumber("alloc_events"));
    P.FreeEvents = static_cast<uint64_t>(Prof->getNumber("free_events"));
    P.LeakedObjects =
        static_cast<uint64_t>(Prof->getNumber("leaked_objects"));
    P.PeakAllocEvent =
        static_cast<uint64_t>(Prof->getNumber("peak_alloc_event"));
    P.SnapshotStride =
        static_cast<uint64_t>(Prof->getNumber("snapshot_stride"));

    const json::Value *Snaps = Prof->get("snapshots");
    if (!Snaps || !Snaps->isArray())
      return failParse(Error, "profiler: missing array \"snapshots\"");
    for (size_t I = 0; I != Snaps->array().size(); ++I) {
      const json::Value &SV = Snaps->array()[I];
      std::string Where = "profiler.snapshots[" + std::to_string(I) + "]";
      if (!SV.isObject())
        return failParse(Error, Where + ": not an object");
      for (const char *Key :
           {"event", "live_bytes", "live_bytes_no_dead", "live_objects"})
        if (!requireNumber(SV, Key, Where, Error))
          return false;
      ProfilerSnapshotRow Row;
      Row.Event = static_cast<uint64_t>(SV.getNumber("event"));
      Row.LiveBytes = static_cast<uint64_t>(SV.getNumber("live_bytes"));
      Row.LiveBytesNoDead =
          static_cast<uint64_t>(SV.getNumber("live_bytes_no_dead"));
      Row.LiveObjects =
          static_cast<uint64_t>(SV.getNumber("live_objects"));
      // The snapshot schedule is monotone in allocation events, and
      // allocation events are numbered from 1.
      if (Row.Event == 0)
        return failParse(Error, Where + ": event must be >= 1");
      if (!P.Snapshots.empty() && Row.Event <= P.Snapshots.back().Event)
        return failParse(Error, Where + ": event " +
                                    std::to_string(Row.Event) +
                                    " does not increase");
      if (Row.LiveBytes > P.HighWaterMark)
        return failParse(Error,
                         Where + ": live_bytes exceeds high_water_mark");
      P.Snapshots.push_back(Row);
    }

    const json::Value *Sites = Prof->get("sites");
    if (!Sites || !Sites->isArray())
      return failParse(Error, "profiler: missing array \"sites\"");
    for (size_t I = 0; I != Sites->array().size(); ++I) {
      const json::Value &SV = Sites->array()[I];
      std::string Where = "profiler.sites[" + std::to_string(I) + "]";
      if (!SV.isObject())
        return failParse(Error, Where + ": not an object");
      ProfilerSiteRow Row;
      for (const char *Key : {"file", "class", "member"}) {
        const json::Value *V = SV.get(Key);
        if (!V || !V->isString())
          return failParse(Error, Where + ": missing string \"" +
                                      std::string(Key) + "\"");
      }
      for (const char *Key :
           {"line", "objects", "alloc_bytes", "written_bytes",
            "read_bytes", "addr_taken_bytes", "never_read_bytes"})
        if (!requireNumber(SV, Key, Where, Error))
          return false;
      const json::Value *Dead = SV.get("static_dead");
      if (!Dead || !Dead->isBool())
        return failParse(Error,
                         Where + ": missing boolean \"static_dead\"");
      Row.File = SV.get("file")->str();
      Row.Line = static_cast<uint64_t>(SV.getNumber("line"));
      Row.Class = SV.get("class")->str();
      Row.Member = SV.get("member")->str();
      Row.Objects = static_cast<uint64_t>(SV.getNumber("objects"));
      Row.AllocBytes = static_cast<uint64_t>(SV.getNumber("alloc_bytes"));
      Row.WrittenBytes =
          static_cast<uint64_t>(SV.getNumber("written_bytes"));
      Row.ReadBytes = static_cast<uint64_t>(SV.getNumber("read_bytes"));
      Row.AddrTakenBytes =
          static_cast<uint64_t>(SV.getNumber("addr_taken_bytes"));
      Row.NeverReadBytes =
          static_cast<uint64_t>(SV.getNumber("never_read_bytes"));
      Row.StaticDead = Dead->boolean();
      P.Sites.push_back(std::move(Row));
    }
  }

  const json::Value *Phases = Root.get("phases");
  if (!Phases || !Phases->isArray())
    return failParse(Error, "missing array \"phases\"");
  for (size_t I = 0; I != Phases->array().size(); ++I) {
    const json::Value &P = Phases->array()[I];
    std::string Where = "phases[" + std::to_string(I) + "]";
    if (!P.isObject())
      return failParse(Error, Where + ": not an object");
    const json::Value *Name = P.get("name");
    if (!Name || !Name->isString())
      return failParse(Error, Where + ": missing string \"name\"");
    if (!requireNumber(P, "wall_ns", Where, Error) ||
        !requireNumber(P, "calls", Where, Error))
      return false;
    Out.Phases.push_back({Name->str(),
                          static_cast<uint64_t>(P.getNumber("wall_ns")),
                          static_cast<uint64_t>(P.getNumber("calls"))});
  }

  const json::Value *Counters = Root.get("counters");
  if (!Counters || !Counters->isObject())
    return failParse(Error, "missing object \"counters\"");
  for (const auto &[Name, V] : Counters->members()) {
    if (!V.isNumber())
      return failParse(Error, "counter \"" + Name + "\" is not numeric");
    Out.Counters.emplace_back(Name, V.asUInt());
  }

  const json::Value *Spans = Root.get("spans");
  if (!Spans || !Spans->isArray())
    return failParse(Error, "missing array \"spans\"");
  for (size_t I = 0; I != Spans->array().size(); ++I) {
    const json::Value &SV = Spans->array()[I];
    std::string Where = "spans[" + std::to_string(I) + "]";
    if (!SV.isObject())
      return failParse(Error, Where + ": not an object");
    const json::Value *Name = SV.get("name");
    if (!Name || !Name->isString())
      return failParse(Error, Where + ": missing string \"name\"");
    for (const char *Key : {"id", "parent", "depth", "start_ns", "wall_ns",
                            "cpu_ns", "mem_net_bytes", "mem_peak_bytes"})
      if (!requireNumber(SV, Key, Where, Error))
        return false;
    SpanStat S;
    S.Id = static_cast<uint64_t>(SV.getNumber("id"));
    S.Parent = static_cast<uint64_t>(SV.getNumber("parent"));
    S.Name = Name->str();
    S.Depth = static_cast<unsigned>(SV.getNumber("depth"));
    S.StartNanos = static_cast<uint64_t>(SV.getNumber("start_ns"));
    S.DurNanos = static_cast<uint64_t>(SV.getNumber("wall_ns"));
    S.CpuNanos = static_cast<uint64_t>(SV.getNumber("cpu_ns"));
    S.MemNetBytes = static_cast<int64_t>(SV.getNumber("mem_net_bytes"));
    S.MemPeakBytes = static_cast<int64_t>(SV.getNumber("mem_peak_bytes"));
    if (const json::Value *Args = SV.get("args")) {
      if (!Args->isObject())
        return failParse(Error, Where + ": \"args\" is not an object");
      for (const auto &[K, V] : Args->members()) {
        if (V.isNumber())
          S.IntArgs.emplace_back(K, V.asUInt());
        else if (V.isString())
          S.StrArgs.emplace_back(K, V.str());
        else
          return failParse(Error, Where + ": arg \"" + K +
                                      "\" is neither number nor string");
      }
    }

    // Structural invariants: ids are dense and begin-ordered, so a
    // parent always precedes its children. No orphans.
    if (S.Id != I + 1)
      return failParse(Error, Where + ": id " + std::to_string(S.Id) +
                                  " is not dense (want " +
                                  std::to_string(I + 1) + ")");
    if (S.Parent >= S.Id)
      return failParse(Error, Where + ": parent " +
                                  std::to_string(S.Parent) +
                                  " does not precede span " +
                                  std::to_string(S.Id));
    Out.Spans.push_back(std::move(S));
  }

  return true;
}
