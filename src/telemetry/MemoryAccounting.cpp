//===-- telemetry/MemoryAccounting.cpp - Per-span heap accounting ---------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The global operator new/delete replacements live here, in the same
// object file as push()/pop(), so linking any telemetry user pulls them
// in (a static-archive member is only extracted when one of its symbols
// is referenced — the Span implementation references push/pop, and the
// allocator replacements ride along).
//
//===----------------------------------------------------------------------===//

#include "telemetry/MemoryAccounting.h"

#include <cstdlib>
#include <new>

// The build probes for malloc_usable_size (and honors the
// DMM_ENABLE_MEMACCT option) and defines DMM_MEMACCT_PLATFORM to 0/1;
// see src/telemetry/CMakeLists.txt. Builds that bypass CMake fall back
// to a glibc test. Either way a disabled build compiles this file to
// plain push/pop bookkeeping with no allocator replacement, and
// available() reports the gate so consumers (the stats document's
// "memory_accounting" field, the telemetry.memacct.enabled counter)
// can distinguish "zero bytes" from "not measured".
#if defined(DMM_MEMACCT_PLATFORM)
#define DMM_MEMACCT_ENABLED DMM_MEMACCT_PLATFORM
#elif defined(__GLIBC__)
#define DMM_MEMACCT_ENABLED 1
#else
#define DMM_MEMACCT_ENABLED 0
#endif

#if DMM_MEMACCT_ENABLED
#include <malloc.h>
#endif

namespace {

/// Per-thread frame stack. Plain zero-initialized storage: the
/// allocation hooks may run before any constructor and after any
/// destructor, so this must need neither.
struct ThreadState {
  int Depth;
  int64_t Cur[dmm::memacct::kMaxDepth];
  int64_t Peak[dmm::memacct::kMaxDepth];
};

thread_local ThreadState TS;

#if DMM_MEMACCT_ENABLED

inline void charge(int64_t Bytes) {
  for (int I = 0; I != TS.Depth; ++I) {
    TS.Cur[I] += Bytes;
    if (TS.Cur[I] > TS.Peak[I])
      TS.Peak[I] = TS.Cur[I];
  }
}

inline void onAlloc(void *P) {
  if (TS.Depth && P)
    charge(static_cast<int64_t>(malloc_usable_size(P)));
}

inline void onFree(void *P) {
  if (TS.Depth && P)
    charge(-static_cast<int64_t>(malloc_usable_size(P)));
}

#endif // DMM_MEMACCT_ENABLED

} // namespace

bool dmm::memacct::available() { return DMM_MEMACCT_ENABLED != 0; }

bool dmm::memacct::push() {
  if (TS.Depth >= kMaxDepth)
    return false;
  TS.Cur[TS.Depth] = 0;
  TS.Peak[TS.Depth] = 0;
  ++TS.Depth;
  return true;
}

dmm::memacct::Frame dmm::memacct::pop() {
  Frame F;
  if (TS.Depth == 0)
    return F;
  --TS.Depth;
  F.NetBytes = TS.Cur[TS.Depth];
  F.PeakBytes = TS.Peak[TS.Depth];
  return F;
}

#if DMM_MEMACCT_ENABLED

//===----------------------------------------------------------------------===//
// Global allocator replacements
//===----------------------------------------------------------------------===//
//
// Every variant funnels through allocOrThrow/allocAligned + free so the
// accounting sees one usable-size per pointer on both sides. Sized
// operator delete intentionally ignores the size argument and measures
// the pointer instead: usable size is what malloc actually reserved,
// and it keeps alloc/free symmetric.

namespace {

void *allocOrThrow(std::size_t N) {
  void *P = std::malloc(N ? N : 1);
  if (!P)
    throw std::bad_alloc();
  onAlloc(P);
  return P;
}

void *allocNoThrow(std::size_t N) noexcept {
  void *P = std::malloc(N ? N : 1);
  onAlloc(P);
  return P;
}

void *allocAligned(std::size_t N, std::size_t Align) noexcept {
  if (Align < sizeof(void *))
    Align = sizeof(void *);
  void *P = nullptr;
  if (posix_memalign(&P, Align, N ? N : 1) != 0)
    return nullptr;
  onAlloc(P);
  return P;
}

void accountedFree(void *P) noexcept {
  if (!P)
    return;
  onFree(P);
  std::free(P);
}

} // namespace

void *operator new(std::size_t N) { return allocOrThrow(N); }
void *operator new[](std::size_t N) { return allocOrThrow(N); }
void *operator new(std::size_t N, const std::nothrow_t &) noexcept {
  return allocNoThrow(N);
}
void *operator new[](std::size_t N, const std::nothrow_t &) noexcept {
  return allocNoThrow(N);
}
void *operator new(std::size_t N, std::align_val_t A) {
  void *P = allocAligned(N, static_cast<std::size_t>(A));
  if (!P)
    throw std::bad_alloc();
  return P;
}
void *operator new[](std::size_t N, std::align_val_t A) {
  void *P = allocAligned(N, static_cast<std::size_t>(A));
  if (!P)
    throw std::bad_alloc();
  return P;
}
void *operator new(std::size_t N, std::align_val_t A,
                   const std::nothrow_t &) noexcept {
  return allocAligned(N, static_cast<std::size_t>(A));
}
void *operator new[](std::size_t N, std::align_val_t A,
                     const std::nothrow_t &) noexcept {
  return allocAligned(N, static_cast<std::size_t>(A));
}

void operator delete(void *P) noexcept { accountedFree(P); }
void operator delete[](void *P) noexcept { accountedFree(P); }
void operator delete(void *P, std::size_t) noexcept { accountedFree(P); }
void operator delete[](void *P, std::size_t) noexcept { accountedFree(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  accountedFree(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  accountedFree(P);
}
void operator delete(void *P, std::align_val_t) noexcept { accountedFree(P); }
void operator delete[](void *P, std::align_val_t) noexcept {
  accountedFree(P);
}
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  accountedFree(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  accountedFree(P);
}
void operator delete(void *P, std::align_val_t,
                     const std::nothrow_t &) noexcept {
  accountedFree(P);
}
void operator delete[](void *P, std::align_val_t,
                       const std::nothrow_t &) noexcept {
  accountedFree(P);
}

#endif // DMM_MEMACCT_ENABLED
