//===-- telemetry/FlightRecorder.h - Per-thread event rings -----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity in-memory flight recorder: every thread that emits
/// log events or opens spans writes into its own lock-free ring buffer,
/// so the most recent activity of each thread survives to a crash and
/// can be dumped by the async-signal-safe crash handler
/// (telemetry/CrashHandler.h) without taking locks or allocating.
///
/// Design mirrors the TelemetryShard pattern from PR-5: per-thread
/// single-writer state registered in a global table. Each ring is
/// written only by its owning thread (a plain store plus a release
/// store of the head index), so recording is wait-free and never
/// contends. All ring memory is allocated once at install() time; after
/// that the recorder performs no allocation, which is what makes the
/// crash-time walk safe.
///
/// Alongside the rings, the recorder keeps each thread's stack of open
/// span names (pushed/popped by the Span RAII class in Telemetry.cpp,
/// independent of whether a Telemetry registry is active) so a crash
/// report can say *where in the pipeline* the process died even on runs
/// with no --metrics/--stats-json.
///
/// Events beyond a ring's capacity overwrite the oldest entry (that is
/// the point of a flight recorder); the number of overwritten events is
/// reported as "recorder_dropped" in the stats v3 diagnostics section.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_FLIGHTRECORDER_H
#define DMM_TELEMETRY_FLIGHTRECORDER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmm {

enum class FlightEventKind : uint8_t {
  Log = 0,       ///< A log event that passed the logger's level filter.
  SpanBegin = 1, ///< A Span opened (Text = span name).
  SpanEnd = 2,   ///< A Span closed (Text = span name).
};

/// Returns "log", "span_begin", or "span_end". Async-signal-safe.
const char *flightEventKindName(FlightEventKind Kind);

/// One recorded event. POD with a fixed-size text payload so rings can
/// be walked from a signal handler.
struct FlightEvent {
  uint64_t Seq = 0;       ///< Global 1-based sequence number.
  uint64_t TimeNanos = 0; ///< Nanoseconds since the recorder's epoch.
  uint32_t Thread = 0;    ///< Dense recorder thread index (0-based).
  FlightEventKind Kind = FlightEventKind::Log;
  uint8_t Level = 0; ///< LogLevel for Kind == Log; 0 otherwise.
  char Text[102];    ///< NUL-terminated, truncated message / span name.
};

/// The process-wide recorder. Install once near the top of main();
/// instrumentation sites reach it through the free helpers below, which
/// cost one atomic load when no recorder is installed.
class FlightRecorder {
public:
  /// Per-thread ring state; opaque outside FlightRecorder.cpp. Public
  /// only so the implementation's thread_local cache can name it.
  struct Ring;

  static constexpr size_t kDefaultCapacity = 256; ///< Events per thread.
  static constexpr size_t kMaxThreads = 64;
  static constexpr size_t kMaxSpanDepth = 64;
  static constexpr size_t kCrashTailEvents = 64; ///< Per-thread dump cap.

  /// The installed recorder, or null. One atomic load.
  static FlightRecorder *active() {
    return Active.load(std::memory_order_acquire);
  }

  /// Installs the process-wide recorder with \p Capacity event slots
  /// per thread (rounded up to 8). Idempotent: the first call wins and
  /// the recorder lives for the rest of the process.
  static void install(size_t Capacity = kDefaultCapacity);

  /// Records an event on the calling thread's ring. Wait-free; never
  /// allocates. Threads beyond kMaxThreads count into dropped().
  void record(FlightEventKind Kind, uint8_t Level, const char *Text);

  /// \name Span-stack maintenance (called by the Span RAII class).
  /// @{
  void spanBegin(const char *Name);
  void spanEnd();
  /// @}

  /// Copies the calling thread's open-span names, outermost first, into
  /// \p Names (at most \p Max). Returns the count. Async-signal-safe
  /// when called from the owning thread.
  size_t currentSpanStack(const char **Names, size_t Max) const;

  /// Total events ever recorded.
  uint64_t eventsRecorded() const {
    return NextSeq.load(std::memory_order_relaxed);
  }
  /// Events lost: overwritten by ring wrap-around plus events from
  /// threads that arrived after all kMaxThreads slots were taken.
  uint64_t eventsDropped() const;

  size_t capacity() const { return Capacity; }

  /// Copies the retained events of every ring, sorted by Seq. Takes no
  /// locks but allocates — for tests and post-run reporting, not for
  /// signal context. Concurrent writers may tear entries mid-copy;
  /// call after worker threads are quiescent for exact results.
  std::vector<FlightEvent> snapshot() const;

  /// \name Crash-handler access (async-signal-safe)
  /// Raw views over the per-thread state for the write()-only JSON
  /// emitter in CrashHandler.cpp.
  /// @{
  size_t threadCount() const;
  /// Ring \p Thread's next write index (entries [Head-retained, Head)).
  uint64_t ringHead(size_t Thread) const;
  const FlightEvent *ringEntries(size_t Thread) const;
  /// The calling thread's recorder index, or SIZE_MAX if it never
  /// recorded.
  size_t currentThreadIndex() const;
  /// @}

private:
  explicit FlightRecorder(size_t Capacity);

  Ring *myRing();

  static std::atomic<FlightRecorder *> Active;

  size_t Capacity;
  Ring *Rings; ///< kMaxThreads rings, allocated once at install().
  std::atomic<uint32_t> NextThread{0};
  std::atomic<uint64_t> NextSeq{0};
  std::atomic<uint64_t> NoSlotDrops{0};
  uint64_t EpochNanos = 0; ///< steady_clock epoch for TimeNanos.

  uint64_t nowNanos() const;
};

/// \name Instrumentation helpers
/// No-ops (one atomic load) when no recorder is installed.
/// @{
inline void flightRecordLog(uint8_t Level, const char *Msg) {
  if (FlightRecorder *R = FlightRecorder::active())
    R->record(FlightEventKind::Log, Level, Msg);
}
inline void flightSpanBegin(const char *Name) {
  if (FlightRecorder *R = FlightRecorder::active())
    R->spanBegin(Name);
}
inline void flightSpanEnd() {
  if (FlightRecorder *R = FlightRecorder::active())
    R->spanEnd();
}
/// @}

} // namespace dmm

#endif // DMM_TELEMETRY_FLIGHTRECORDER_H
