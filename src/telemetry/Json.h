//===-- telemetry/Json.h - Minimal strict JSON DOM --------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, strict JSON parser producing an immutable DOM. Used to read
/// back the tool's own machine-readable outputs (--stats-json files for
/// --report, schema-validation tests) without external dependencies.
///
/// Strictness: the full input must be exactly one JSON value (trailing
/// non-whitespace rejected), escapes must be legal, strings must be
/// valid UTF-8 (no overlong forms, surrogates, or stray continuation
/// bytes), object keys must be unique, and numbers must match the JSON
/// grammar and fit a finite double. Numbers are stored as double —
/// adequate for every field the tool emits (all below 2^53). Nesting
/// is capped at 200 levels.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_JSON_H
#define DMM_TELEMETRY_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dmm {
namespace json {

/// One JSON value. Object member order is preserved.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  uint64_t asUInt() const { return static_cast<uint64_t>(Num); }
  const std::string &str() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// Object member lookup; null when absent or not an object.
  const Value *get(std::string_view Key) const;
  /// Typed lookups returning \p Default when the member is absent or of
  /// the wrong kind.
  double getNumber(std::string_view Key, double Default = 0) const;
  std::string getString(std::string_view Key,
                        std::string Default = std::string()) const;

private:
  friend class Parser;
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text into \p Out. On failure returns false and sets
/// \p Error to "offset N: message".
bool parse(std::string_view Text, Value &Out, std::string &Error);

} // namespace json
} // namespace dmm

#endif // DMM_TELEMETRY_JSON_H
