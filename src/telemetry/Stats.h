//===-- telemetry/Stats.h - Versioned stats document ------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool's stable machine-readable performance output: a versioned
/// document (schema "dmm-stats") holding per-span wall/cpu time and
/// memory peaks, the flat phase aggregates, and every counter. Written
/// by `--stats-json=FILE`, consumed by `scripts/run_bench.sh` (to
/// compose BENCH_<label>.json), by `--report` (HTML rendering), and by
/// the schema-validation tests.
///
/// Compatibility policy (see docs/OBSERVABILITY.md): within a major
/// version, fields are only ever added, never removed or retyped;
/// consumers must ignore unknown fields. A breaking change increments
/// "version". Timing/memory fields (start_ns, wall_ns, cpu_ns,
/// mem_net_bytes, mem_peak_bytes, and "jobs") vary run to run; all
/// other fields are deterministic for a given input and cache state.
///
/// StatsDocument is deliberately decoupled from the live Telemetry
/// registry: it can be built from a registry (buildStats) or parsed
/// back from a file (parseStats), so `--report --from-stats=FILE`
/// works without re-running the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_STATS_H
#define DMM_TELEMETRY_STATS_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dmm {

class Telemetry;

namespace stats {

inline constexpr const char kSchemaName[] = "dmm-stats";
/// Version history: 1 — phases/counters/spans (PR-5); 2 — adds the
/// optional "profiler" section (shadow-memory profiler summary,
/// snapshots, and per-site byte attribution); 3 — adds the optional
/// "diagnostics" section (per-level log counts, flight-recorder
/// totals, crash-report count). Documents without the optional
/// sections are valid at any version that permits them; parseStats
/// accepts every version in [kMinSchemaVersion, kSchemaVersion].
inline constexpr int kSchemaVersion = 3;
inline constexpr int kMinSchemaVersion = 1;

/// One span in the document (self-contained mirror of SpanRecord).
struct SpanStat {
  uint64_t Id = 0;
  uint64_t Parent = 0;
  std::string Name;
  uint64_t StartNanos = 0;
  uint64_t DurNanos = 0;
  uint64_t CpuNanos = 0;
  int64_t MemNetBytes = 0;
  int64_t MemPeakBytes = 0;
  unsigned Depth = 0;
  std::vector<std::pair<std::string, uint64_t>> IntArgs;
  std::vector<std::pair<std::string, std::string>> StrArgs;

  /// Integer arg lookup; \p Default when absent.
  uint64_t intArg(std::string_view Key, uint64_t Default = 0) const;
  /// String arg lookup; empty when absent.
  std::string strArg(std::string_view Key) const;
};

/// One row of the flat phase aggregate.
struct PhaseRow {
  std::string Name;
  uint64_t Nanos = 0;
  uint64_t Invocations = 0;
};

/// One point of the shadow profiler's high-water-mark timeline (v2).
struct ProfilerSnapshotRow {
  uint64_t Event = 0; ///< 1-based allocation-event index.
  uint64_t LiveBytes = 0;
  uint64_t LiveBytesNoDead = 0;
  uint64_t LiveObjects = 0;
};

/// One (allocation site, class, leaf member) attribution cell (v2).
struct ProfilerSiteRow {
  std::string File;
  uint64_t Line = 0;
  std::string Class;
  std::string Member;
  uint64_t Objects = 0;
  uint64_t AllocBytes = 0;
  uint64_t WrittenBytes = 0;
  uint64_t ReadBytes = 0;
  uint64_t AddrTakenBytes = 0;
  uint64_t NeverReadBytes = 0;
  bool StaticDead = false;
};

/// The optional "profiler" object introduced in schema version 2. All
/// fields are deterministic for a given program (no timing), so whole
/// sections compare equal across --jobs levels.
struct ProfilerSection {
  bool Present = false; ///< Section exists in the document.
  uint64_t ObjectSpace = 0;
  uint64_t DeadMemberSpace = 0;
  uint64_t HighWaterMark = 0;
  uint64_t HighWaterMarkNoDead = 0;
  uint64_t NumObjects = 0;
  uint64_t AllocEvents = 0;
  uint64_t FreeEvents = 0;
  uint64_t LeakedObjects = 0;
  uint64_t PeakAllocEvent = 0;
  uint64_t SnapshotStride = 1;
  std::vector<ProfilerSnapshotRow> Snapshots; ///< Event ascending.
  std::vector<ProfilerSiteRow> Sites; ///< (File, Line, Class, Member).
};

/// The optional "diagnostics" object introduced in schema version 3:
/// the run's own observability health. Log counts are per-level event
/// totals (post level-filter); recorder fields mirror the flight
/// recorder (telemetry/FlightRecorder.h); Crashes counts crash
/// reports written by this process (nonzero only if a signal handler
/// fired and the process somehow lived to emit stats — it exists so
/// batch drivers folding many registries surface half-died runs).
struct DiagnosticsSection {
  bool Present = false; ///< Section exists in the document.
  uint64_t LogError = 0;
  uint64_t LogWarn = 0;
  uint64_t LogInfo = 0;
  uint64_t LogDebug = 0;
  uint64_t LogTrace = 0;
  uint64_t RecorderEvents = 0;
  uint64_t RecorderDropped = 0;
  uint64_t Crashes = 0;
};

/// The parsed/built document.
struct StatsDocument {
  int Version = kSchemaVersion;
  std::string Tool; ///< e.g. "deadmember 0.3.0".
  unsigned Jobs = 0;
  bool MemAccounting = false; ///< Platform supports heap accounting.
  ProfilerSection Profiler; ///< Present only when --profile ran (v2).
  DiagnosticsSection Diagnostics; ///< Filled by buildStats (v3).
  std::vector<PhaseRow> Phases; ///< Sorted by (namespace, key).
  std::vector<std::pair<std::string, uint64_t>> Counters; ///< Sorted.
  std::vector<SpanStat> Spans; ///< In begin order; Spans[I].Id == I+1.
};

/// Snapshots \p T into a document. Call after parallel regions have
/// completed.
StatsDocument buildStats(const Telemetry &T, std::string Tool,
                         unsigned Jobs);

/// Writes the document as schema-versioned JSON.
void printStats(const StatsDocument &D, std::ostream &OS);

/// Parses and validates a stats JSON document: strict JSON, schema
/// name/version, required fields with correct types, span parent ids
/// resolving to earlier spans. On failure returns false and sets
/// \p Error.
bool parseStats(std::string_view Text, StatsDocument &Out,
                std::string &Error);

} // namespace stats
} // namespace dmm

#endif // DMM_TELEMETRY_STATS_H
