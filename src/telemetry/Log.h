//===-- telemetry/Log.h - Leveled structured logging ------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured, leveled logging for every dmm tool. A log event is a
/// level, a constant message, and zero or more key/value fields; sinks
/// render it either as a human-readable stderr line
///
///   error: cannot open input file path=missing.mcc
///
/// or as one JSON object per line in a JSONL file (--log-json). The
/// human prefixes ("error:", "warning:") deliberately match the ad-hoc
/// prints this layer replaced, so scripts grepping stderr keep working.
///
/// The level filter (default: warn, i.e. errors and warnings only) is
/// one relaxed atomic load; disabled events build no fields and touch
/// no locks. Sink writes are serialized by a mutex — log events are
/// operational messages, not per-expression tracing, so contention is
/// irrelevant. Every emitted event also lands in the flight recorder
/// (telemetry/FlightRecorder.h) and bumps a per-level atomic counter;
/// both feed crash reports and the stats v3 "diagnostics" section.
///
/// Configure with --log-level=LEVEL / --log-json=FILE or the
/// DMM_LOG_LEVEL environment variable (flag wins).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_LOG_H
#define DMM_TELEMETRY_LOG_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace dmm {

enum class LogLevel : uint8_t {
  Error = 0,
  Warn = 1,
  Info = 2,
  Debug = 3,
  Trace = 4,
};
inline constexpr unsigned kNumLogLevels = 5;

/// Canonical spelling used by --log-level, JSONL, and the stats
/// diagnostics section: "error", "warn", "info", "debug", "trace".
const char *logLevelName(LogLevel L);
/// The human stderr prefix: like logLevelName but Warn renders as
/// "warning" to match the tool's historical message format.
const char *logLevelLabel(LogLevel L);
/// Accepts the canonical names plus "warning"; case-sensitive.
bool parseLogLevel(std::string_view Text, LogLevel &Out);

/// One key/value field. Build with the kv() overloads.
struct LogField {
  const char *Key = "";
  bool IsInt = false;
  int64_t Int = 0;
  std::string Str;
};

template <typename T,
          std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>, int> = 0>
LogField kv(const char *Key, T Value) {
  LogField F;
  F.Key = Key;
  F.IsInt = true;
  F.Int = static_cast<int64_t>(Value);
  return F;
}
inline LogField kv(const char *Key, std::string Value) {
  LogField F;
  F.Key = Key;
  F.Str = std::move(Value);
  return F;
}
inline LogField kv(const char *Key, std::string_view Value) {
  return kv(Key, std::string(Value));
}
inline LogField kv(const char *Key, const char *Value) {
  return kv(Key, std::string(Value ? Value : ""));
}

/// The process-wide logger. Tools normally touch it only through
/// configuration (setLevel/openJsonSink) and the logError/logWarn/...
/// helpers below.
class Logger {
public:
  /// The singleton. First use reads DMM_LOG_LEVEL; the default level
  /// is Warn and the default human sink is std::cerr.
  static Logger &instance();

  void setLevel(LogLevel L) {
    Level.store(static_cast<int>(L), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(Level.load(std::memory_order_relaxed));
  }
  /// The entire disabled-event cost: one relaxed load and a compare.
  bool enabled(LogLevel L) const {
    return static_cast<int>(L) <= Level.load(std::memory_order_relaxed);
  }

  /// Redirects the human-readable sink (default std::cerr); null
  /// silences it. The stream must outlive subsequent events.
  void setHumanSink(std::ostream *OS);

  /// Opens (truncates) \p Path as a JSONL sink: one JSON object per
  /// emitted event. Returns false and sets \p Error on failure.
  bool openJsonSink(const std::string &Path, std::string &Error);
  void closeJsonSink();

  /// Renders \p Msg with \p Fields to the active sinks, records it in
  /// the flight recorder, and bumps the level counter. Callers should
  /// test enabled() first (the helpers below do).
  void emit(LogLevel L, const char *Msg, const LogField *Fields,
            size_t NumFields);

  /// Events emitted (post-filter) at \p L since process start.
  uint64_t count(LogLevel L) const {
    return Counts[static_cast<unsigned>(L)].load(std::memory_order_relaxed);
  }

  /// The per-level counter array — plain atomics, readable from the
  /// async-signal-safe crash handler.
  static const std::atomic<uint64_t> *countsForCrash();

  /// Restores defaults (level Warn unless DMM_LOG_LEVEL is set, human
  /// sink std::cerr, no JSONL sink). Counters keep accumulating — they
  /// are process totals. For tests.
  void resetForTest();

private:
  Logger();

  std::atomic<int> Level;
  std::atomic<uint64_t> Counts[kNumLogLevels] = {};
  std::mutex Mu; ///< Serializes sink writes and sink reconfiguration.
  std::ostream *Human;
  std::unique_ptr<std::ostream> Json;
  uint64_t EpochNanos; ///< steady_clock epoch for JSONL timestamps.
};

/// \name Event helpers
/// logError("cannot open input file", {kv("path", Path)});
/// @{
void logEvent(LogLevel L, const char *Msg,
              std::initializer_list<LogField> Fields = {});
inline void logError(const char *Msg,
                     std::initializer_list<LogField> Fields = {}) {
  logEvent(LogLevel::Error, Msg, Fields);
}
inline void logWarn(const char *Msg,
                    std::initializer_list<LogField> Fields = {}) {
  logEvent(LogLevel::Warn, Msg, Fields);
}
inline void logInfo(const char *Msg,
                    std::initializer_list<LogField> Fields = {}) {
  logEvent(LogLevel::Info, Msg, Fields);
}
inline void logDebug(const char *Msg,
                     std::initializer_list<LogField> Fields = {}) {
  logEvent(LogLevel::Debug, Msg, Fields);
}
inline void logTrace(const char *Msg,
                     std::initializer_list<LogField> Fields = {}) {
  logEvent(LogLevel::Trace, Msg, Fields);
}
/// @}

} // namespace dmm

#endif // DMM_TELEMETRY_LOG_H
