//===-- telemetry/HtmlReport.cpp ------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/HtmlReport.h"

#include "telemetry/Stats.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string_view>
#include <vector>

using namespace dmm;
using namespace dmm::stats;

namespace {

/// Rows rendered in the waterfall before truncating (keeps the page
/// readable and small for span-heavy warm-cache runs).
constexpr size_t kMaxWaterfallRows = 600;
constexpr size_t kTopHotSpans = 10;
/// Dead-byte heat rows rendered before truncating.
constexpr size_t kMaxHeatRows = 50;

void escape(std::ostream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '&':
      OS << "&amp;";
      break;
    case '<':
      OS << "&lt;";
      break;
    case '>':
      OS << "&gt;";
      break;
    case '"':
      OS << "&quot;";
      break;
    default:
      OS << C;
    }
  }
}

std::string ms(uint64_t Nanos) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(3) << Nanos / 1e6;
  return OS.str();
}

std::string bytes(int64_t B) {
  std::ostringstream OS;
  const char *Unit = "B";
  double V = static_cast<double>(B);
  double A = V < 0 ? -V : V;
  if (A >= 1024.0 * 1024.0) {
    V /= 1024.0 * 1024.0;
    Unit = "MiB";
  } else if (A >= 1024.0) {
    V /= 1024.0;
    Unit = "KiB";
  }
  OS << std::fixed << std::setprecision(A >= 1024.0 ? 1 : 0) << V << "&nbsp;"
     << Unit;
  return OS.str();
}

/// Self time = wall time minus the wall time of direct children.
std::vector<uint64_t> selfTimes(const StatsDocument &D) {
  std::vector<uint64_t> ChildNanos(D.Spans.size(), 0);
  for (const SpanStat &S : D.Spans)
    if (S.Parent)
      ChildNanos[S.Parent - 1] += S.DurNanos;
  std::vector<uint64_t> Self(D.Spans.size(), 0);
  for (size_t I = 0; I != D.Spans.size(); ++I) {
    uint64_t Dur = D.Spans[I].DurNanos;
    Self[I] = Dur > ChildNanos[I] ? Dur - ChildNanos[I] : 0;
  }
  return Self;
}

uint64_t counterOrZero(const StatsDocument &D, std::string_view Name) {
  for (const auto &[K, V] : D.Counters)
    if (K == Name)
      return V;
  return 0;
}

bool hasCounterPrefix(const StatsDocument &D, std::string_view Prefix) {
  for (const auto &[K, V] : D.Counters) {
    (void)V;
    if (K.size() > Prefix.size() && K.compare(0, Prefix.size(), Prefix) == 0)
      return true;
  }
  return false;
}

} // namespace

void stats::renderHtmlReport(const StatsDocument &D, std::ostream &OS) {
  OS << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n<title>deadmember run report</title>\n"
        "<style>\n"
        "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;"
        "max-width:72em;padding:0 1em;color:#1c2430;}\n"
        "h1{font-size:1.4em;} h2{font-size:1.1em;margin-top:2em;"
        "border-bottom:1px solid #d4dae3;padding-bottom:.2em;}\n"
        "table{border-collapse:collapse;min-width:30em;}\n"
        "th,td{padding:.25em .8em;text-align:left;border-bottom:"
        "1px solid #e4e8ee;} th{background:#f2f5f9;}\n"
        "td.num,th.num{text-align:right;font-variant-numeric:"
        "tabular-nums;}\n"
        ".meta{color:#5a6675;}\n"
        ".wf{position:relative;border-left:1px solid #d4dae3;}\n"
        ".wfrow{position:relative;height:18px;}\n"
        ".wfbar{position:absolute;top:2px;height:14px;background:#4c7fd0;"
        "border-radius:2px;min-width:2px;opacity:.85;}\n"
        ".wfbar.d1{background:#6aa36f;} .wfbar.d2{background:#c98a3d;}\n"
        ".wfbar.d3{background:#a66bbf;} .wfbar.d4{background:#c05a5a;}\n"
        ".wflabel{position:absolute;left:.4em;top:0;font-size:11px;"
        "white-space:nowrap;pointer-events:none;color:#1c2430;}\n"
        "</style>\n</head>\n<body>\n";

  OS << "<h1>deadmember run report</h1>\n<p class=\"meta\">tool: ";
  escape(OS, D.Tool);
  OS << " &middot; jobs: " << D.Jobs << " &middot; memory accounting: "
     << (D.MemAccounting ? "on" : "unavailable") << " &middot; spans: "
     << D.Spans.size() << "</p>\n";

  // --- Top hot spans -----------------------------------------------------
  std::vector<uint64_t> Self = selfTimes(D);
  std::vector<size_t> Order(D.Spans.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Self[A] > Self[B];
  });
  size_t TopN = std::min(kTopHotSpans, Order.size());

  OS << "<h2>Top " << TopN << " hot spans (by self time)</h2>\n"
        "<table>\n<tr><th>span</th><th class=\"num\">self ms</th>"
        "<th class=\"num\">wall ms</th><th class=\"num\">cpu ms</th>"
        "<th class=\"num\">peak mem</th><th>detail</th></tr>\n";
  for (size_t I = 0; I != TopN; ++I) {
    const SpanStat &S = D.Spans[Order[I]];
    OS << "<tr><td>";
    escape(OS, S.Name);
    OS << "</td><td class=\"num\">" << ms(Self[Order[I]])
       << "</td><td class=\"num\">" << ms(S.DurNanos)
       << "</td><td class=\"num\">" << ms(S.CpuNanos)
       << "</td><td class=\"num\">" << bytes(S.MemPeakBytes) << "</td><td>";
    bool First = true;
    for (const auto &[K, V] : S.StrArgs) {
      OS << (First ? "" : ", ");
      First = false;
      escape(OS, K);
      OS << "=";
      escape(OS, V);
    }
    for (const auto &[K, V] : S.IntArgs) {
      OS << (First ? "" : ", ");
      First = false;
      escape(OS, K);
      OS << "=" << V;
    }
    OS << "</td></tr>\n";
  }
  OS << "</table>\n";

  // --- Waterfall ---------------------------------------------------------
  uint64_t End = 0;
  for (const SpanStat &S : D.Spans)
    End = std::max(End, S.StartNanos + S.DurNanos);
  size_t Rows = std::min(kMaxWaterfallRows, D.Spans.size());
  OS << "<h2>Span waterfall</h2>\n";
  if (Rows < D.Spans.size())
    OS << "<p class=\"meta\">showing the first " << Rows << " of "
       << D.Spans.size() << " spans.</p>\n";
  OS << "<div class=\"wf\">\n";
  for (size_t I = 0; I != Rows; ++I) {
    const SpanStat &S = D.Spans[I];
    double Left = End ? 100.0 * S.StartNanos / End : 0;
    double Width = End ? 100.0 * S.DurNanos / End : 0;
    OS << "<div class=\"wfrow\"><div class=\"wfbar d"
       << (S.Depth > 4 ? 4u : S.Depth) << "\" style=\"left:" << std::fixed
       << std::setprecision(3) << Left << "%;width:" << Width
       << "%\"></div><span class=\"wflabel\" style=\"padding-left:"
       << S.Depth * 1.2 << "em\">";
    escape(OS, S.Name);
    OS << " &middot; " << ms(S.DurNanos) << " ms</span></div>\n";
  }
  OS << "</div>\n";

  // --- Cache hit table ---------------------------------------------------
  if (hasCounterPrefix(D, "cache.")) {
    OS << "<h2>Summary cache</h2>\n<table>\n"
          "<tr><th>metric</th><th class=\"num\">value</th></tr>\n";
    for (const char *Key :
         {"cache.lookups", "cache.hits", "cache.misses", "cache.stores",
          "cache.evictions", "cache.bytes"})
      OS << "<tr><td>" << Key << "</td><td class=\"num\">"
         << counterOrZero(D, Key) << "</td></tr>\n";
    OS << "</table>\n";

    // Per-file rows from the summary.file spans, when present.
    bool Header = false;
    for (const SpanStat &S : D.Spans) {
      if (S.Name != "summary.file")
        continue;
      if (!Header) {
        OS << "<h2>Per-file summaries</h2>\n<table>\n"
              "<tr><th>file</th><th>cache</th><th class=\"num\">wall ms"
              "</th><th class=\"num\">peak mem</th></tr>\n";
        Header = true;
      }
      OS << "<tr><td>";
      escape(OS, S.strArg("file"));
      OS << "</td><td>" << (S.intArg("cached") ? "hit" : "miss")
         << "</td><td class=\"num\">" << ms(S.DurNanos)
         << "</td><td class=\"num\">" << bytes(S.MemPeakBytes)
         << "</td></tr>\n";
    }
    if (Header)
      OS << "</table>\n";
  }

  // --- Shadow profiler ---------------------------------------------------
  if (D.Profiler.Present) {
    const ProfilerSection &P = D.Profiler;
    OS << "<h2>Shadow profiler</h2>\n<table>\n"
          "<tr><th>metric</th><th class=\"num\">value</th></tr>\n"
          "<tr><td>object space</td><td class=\"num\">" << P.ObjectSpace
       << "</td></tr>\n<tr><td>dead data member space</td>"
          "<td class=\"num\">" << P.DeadMemberSpace
       << "</td></tr>\n<tr><td>high water mark</td><td class=\"num\">"
       << P.HighWaterMark
       << "</td></tr>\n<tr><td>high water mark w/o dead members</td>"
          "<td class=\"num\">" << P.HighWaterMarkNoDead
       << "</td></tr>\n<tr><td>objects</td><td class=\"num\">"
       << P.NumObjects
       << "</td></tr>\n<tr><td>allocation events</td><td class=\"num\">"
       << P.AllocEvents
       << "</td></tr>\n<tr><td>free events</td><td class=\"num\">"
       << P.FreeEvents
       << "</td></tr>\n<tr><td>leaked objects</td><td class=\"num\">"
       << P.LeakedObjects
       << "</td></tr>\n<tr><td>peak at allocation event</td>"
          "<td class=\"num\">" << P.PeakAllocEvent
       << "</td></tr>\n<tr><td>snapshot stride</td><td class=\"num\">"
       << P.SnapshotStride << "</td></tr>\n</table>\n";

    // High-water-mark timeline: one bar per snapshot, full bar = live
    // bytes, darker inner bar = live bytes without dead members. The
    // gap between the two is the recoverable dead-member space at that
    // point of the execution.
    if (!P.Snapshots.empty()) {
      uint64_t MaxLive = 1;
      for (const ProfilerSnapshotRow &S : P.Snapshots)
        MaxLive = std::max(MaxLive, S.LiveBytes);
      OS << "<h2>High-water-mark timeline</h2>\n<p class=\"meta\">"
         << P.Snapshots.size()
         << " snapshots (allocation-count stride " << P.SnapshotStride
         << "); light bar: live bytes, dark bar: live bytes without "
            "dead members.</p>\n<div class=\"wf\">\n";
      for (const ProfilerSnapshotRow &S : P.Snapshots) {
        double Full = 100.0 * static_cast<double>(S.LiveBytes) /
                      static_cast<double>(MaxLive);
        double NoDead = 100.0 * static_cast<double>(S.LiveBytesNoDead) /
                        static_cast<double>(MaxLive);
        OS << "<div class=\"wfrow\"><div class=\"wfbar d2\" style=\""
              "left:0;width:" << std::fixed << std::setprecision(3)
           << Full << "%\"></div><div class=\"wfbar\" style=\"left:0;"
              "width:" << NoDead
           << "%\"></div><span class=\"wflabel\">event " << S.Event
           << " &middot; " << S.LiveBytes << " B live &middot; "
           << S.LiveBytesNoDead << " B w/o dead &middot; "
           << S.LiveObjects << " objects</span></div>\n";
      }
      OS << "</div>\n";
    }

    // Dead-byte heat: allocation sites ranked by never-read bytes.
    std::vector<const ProfilerSiteRow *> Heat;
    for (const ProfilerSiteRow &S : P.Sites)
      Heat.push_back(&S);
    std::stable_sort(Heat.begin(), Heat.end(),
                     [](const ProfilerSiteRow *A, const ProfilerSiteRow *B) {
                       return A->NeverReadBytes > B->NeverReadBytes;
                     });
    size_t HeatRows = std::min(kMaxHeatRows, Heat.size());
    OS << "<h2>Dead-byte heat (by allocation site)</h2>\n";
    if (HeatRows < Heat.size())
      OS << "<p class=\"meta\">showing the top " << HeatRows << " of "
         << Heat.size() << " site cells.</p>\n";
    OS << "<table>\n<tr><th>site</th><th>class</th><th>member</th>"
          "<th class=\"num\">objects</th><th class=\"num\">alloc B</th>"
          "<th class=\"num\">written B</th><th class=\"num\">read B</th>"
          "<th class=\"num\">addr-taken B</th>"
          "<th class=\"num\">never-read B</th><th>dead?</th></tr>\n";
    for (size_t I = 0; I != HeatRows; ++I) {
      const ProfilerSiteRow &S = *Heat[I];
      OS << "<tr><td>";
      escape(OS, S.File);
      OS << ":" << S.Line << "</td><td>";
      escape(OS, S.Class);
      OS << "</td><td>";
      escape(OS, S.Member);
      OS << "</td><td class=\"num\">" << S.Objects
         << "</td><td class=\"num\">" << S.AllocBytes
         << "</td><td class=\"num\">" << S.WrittenBytes
         << "</td><td class=\"num\">" << S.ReadBytes
         << "</td><td class=\"num\">" << S.AddrTakenBytes
         << "</td><td class=\"num\">" << S.NeverReadBytes << "</td><td>"
         << (S.StaticDead ? "dead" : "") << "</td></tr>\n";
    }
    OS << "</table>\n";
  }

  // --- Diagnostics --------------------------------------------------------
  if (D.Diagnostics.Present) {
    const DiagnosticsSection &G = D.Diagnostics;
    OS << "<h2>Diagnostics</h2>\n<table>\n"
          "<tr><th>metric</th><th class=\"num\">value</th></tr>\n"
          "<tr><td>log events (error)</td><td class=\"num\">" << G.LogError
       << "</td></tr>\n<tr><td>log events (warn)</td><td class=\"num\">"
       << G.LogWarn
       << "</td></tr>\n<tr><td>log events (info)</td><td class=\"num\">"
       << G.LogInfo
       << "</td></tr>\n<tr><td>log events (debug)</td><td class=\"num\">"
       << G.LogDebug
       << "</td></tr>\n<tr><td>log events (trace)</td><td class=\"num\">"
       << G.LogTrace
       << "</td></tr>\n<tr><td>flight-recorder events</td>"
          "<td class=\"num\">" << G.RecorderEvents
       << "</td></tr>\n<tr><td>flight-recorder dropped</td>"
          "<td class=\"num\">" << G.RecorderDropped
       << "</td></tr>\n<tr><td>crash reports</td><td class=\"num\">"
       << G.Crashes << "</td></tr>\n</table>\n";
  }

  // --- Phases and counters ----------------------------------------------
  OS << "<h2>Phases</h2>\n<table>\n<tr><th>phase</th>"
        "<th class=\"num\">wall ms</th><th class=\"num\">calls</th></tr>\n";
  for (const PhaseRow &P : D.Phases) {
    OS << "<tr><td>";
    escape(OS, P.Name);
    OS << "</td><td class=\"num\">" << ms(P.Nanos) << "</td><td class=\"num\">"
       << P.Invocations << "</td></tr>\n";
  }
  OS << "</table>\n";

  OS << "<h2>Counters</h2>\n<table>\n<tr><th>counter</th>"
        "<th class=\"num\">value</th></tr>\n";
  for (const auto &[K, V] : D.Counters) {
    OS << "<tr><td>";
    escape(OS, K);
    OS << "</td><td class=\"num\">" << V << "</td></tr>\n";
  }
  OS << "</table>\n</body>\n</html>\n";
}
