//===-- telemetry/Log.cpp -------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Log.h"

#include "telemetry/FlightRecorder.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace dmm;

const char *dmm::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Trace:
    return "trace";
  }
  return "error";
}

const char *dmm::logLevelLabel(LogLevel L) {
  return L == LogLevel::Warn ? "warning" : logLevelName(L);
}

bool dmm::parseLogLevel(std::string_view Text, LogLevel &Out) {
  if (Text == "error")
    Out = LogLevel::Error;
  else if (Text == "warn" || Text == "warning")
    Out = LogLevel::Warn;
  else if (Text == "info")
    Out = LogLevel::Info;
  else if (Text == "debug")
    Out = LogLevel::Debug;
  else if (Text == "trace")
    Out = LogLevel::Trace;
  else
    return false;
  return true;
}

namespace {

LogLevel defaultLevel() {
  LogLevel L = LogLevel::Warn;
  if (const char *Env = std::getenv("DMM_LOG_LEVEL"))
    if (*Env)
      parseLogLevel(Env, L); // Unparsable values keep the default.
  return L;
}

uint64_t steadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True when a string field value renders unambiguously without
/// quoting: non-empty, printable ASCII, no spaces/quotes/escapes.
bool fieldValueIsBare(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (U <= 0x20 || U >= 0x7f || C == '"' || C == '\\' || C == '=')
      return false;
  }
  return true;
}

void printQuoted(std::ostream &OS, const std::string &S) {
  static const char *Hex = "0123456789abcdef";
  OS << '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (U < 0x20)
      OS << "\\u00" << Hex[U >> 4] << Hex[U & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

} // namespace

Logger::Logger()
    : Level(static_cast<int>(defaultLevel())), Human(&std::cerr),
      EpochNanos(steadyNowNanos()) {}

Logger &Logger::instance() {
  // Leaked deliberately: log events may fire from destructors running
  // after static teardown would have destroyed a function-local static.
  static Logger *L = new Logger();
  return *L;
}

const std::atomic<uint64_t> *Logger::countsForCrash() {
  return instance().Counts;
}

void Logger::setHumanSink(std::ostream *OS) {
  std::lock_guard<std::mutex> Lock(Mu);
  Human = OS;
}

bool Logger::openJsonSink(const std::string &Path, std::string &Error) {
  auto File = std::make_unique<std::ofstream>(Path, std::ios::trunc);
  if (!*File) {
    Error = "cannot open log file '" + Path + "'";
    return false;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Json = std::move(File);
  return true;
}

void Logger::closeJsonSink() {
  std::lock_guard<std::mutex> Lock(Mu);
  Json.reset();
}

void Logger::resetForTest() {
  std::lock_guard<std::mutex> Lock(Mu);
  Level.store(static_cast<int>(defaultLevel()), std::memory_order_relaxed);
  Human = &std::cerr;
  Json.reset();
}

void Logger::emit(LogLevel L, const char *Msg, const LogField *Fields,
                  size_t NumFields) {
  if (!Msg)
    Msg = "";
  Counts[static_cast<unsigned>(L)].fetch_add(1, std::memory_order_relaxed);
  flightRecordLog(static_cast<uint8_t>(L), Msg);

  std::lock_guard<std::mutex> Lock(Mu);
  if (Human) {
    std::ostream &OS = *Human;
    OS << logLevelLabel(L) << ": " << Msg;
    for (size_t I = 0; I < NumFields; ++I) {
      const LogField &F = Fields[I];
      OS << ' ' << F.Key << '=';
      if (F.IsInt)
        OS << F.Int;
      else if (fieldValueIsBare(F.Str))
        OS << F.Str;
      else
        printQuoted(OS, F.Str);
    }
    OS << '\n';
  }
  if (Json) {
    std::ostream &OS = *Json;
    OS << "{\"ts_ns\":" << (steadyNowNanos() - EpochNanos)
       << ",\"level\":\"" << logLevelName(L) << "\",\"msg\":";
    printQuoted(OS, Msg);
    if (NumFields) {
      OS << ",\"fields\":{";
      for (size_t I = 0; I < NumFields; ++I) {
        const LogField &F = Fields[I];
        if (I)
          OS << ',';
        printQuoted(OS, F.Key);
        OS << ':';
        if (F.IsInt)
          OS << F.Int;
        else
          printQuoted(OS, F.Str);
      }
      OS << '}';
    }
    OS << "}\n";
    OS.flush(); // A crash must not lose buffered JSONL lines.
  }
}

void dmm::logEvent(LogLevel L, const char *Msg,
                   std::initializer_list<LogField> Fields) {
  Logger &Log = Logger::instance();
  if (!Log.enabled(L))
    return;
  Log.emit(L, Msg, Fields.begin(), Fields.size());
}
