//===-- telemetry/HtmlReport.h - Self-contained HTML report -----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a stats document (telemetry/Stats.h) as a single
/// self-contained HTML page — no external assets, no script
/// dependencies — with a span waterfall, the top-N hot spans by self
/// time, the cache hit table, and all counters. Driven by the driver's
/// `--report=FILE.html` flag, either from the live run or from a
/// previously written stats file (`--from-stats=FILE`).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_HTMLREPORT_H
#define DMM_TELEMETRY_HTMLREPORT_H

#include <ostream>

namespace dmm {
namespace stats {

struct StatsDocument;

/// Writes the report page for \p D to \p OS.
void renderHtmlReport(const StatsDocument &D, std::ostream &OS);

} // namespace stats
} // namespace dmm

#endif // DMM_TELEMETRY_HTMLREPORT_H
