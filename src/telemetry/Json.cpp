//===-- telemetry/Json.cpp ------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Json.h"

#include <cmath>
#include <cstdlib>

using namespace dmm;
using namespace dmm::json;

const Value *Value::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

double Value::getNumber(std::string_view Key, double Default) const {
  const Value *V = get(Key);
  return V && V->isNumber() ? V->number() : Default;
}

std::string Value::getString(std::string_view Key,
                             std::string Default) const {
  const Value *V = get(Key);
  return V && V->isString() ? V->str() : std::move(Default);
}

namespace dmm {
namespace json {

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int kMaxDepth = 200;

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;

  bool fail(const char *Msg) {
    Error = "offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        return;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = 0;
    while (Word[Len])
      ++Len;
    if (Text.size() - Pos < Len || Text.substr(Pos, Len) != Word)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = Value::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, int Depth) {
    Out.K = Value::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return true;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      // Duplicate keys are ambiguous (which value wins?); the tool's
      // own emitters never produce them, so strictness costs nothing.
      for (const auto &[Name, Existing] : Out.Obj)
        if (Name == Key)
          return fail("duplicate object key");
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, int Depth) {
    Out.K = Value::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return true;
    for (;;) {
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool hexDigit(unsigned &Out) {
    if (Pos >= Text.size())
      return fail("unterminated \\u escape");
    char C = Text[Pos++];
    if (C >= '0' && C <= '9')
      Out = Out * 16 + (C - '0');
    else if (C >= 'a' && C <= 'f')
      Out = Out * 16 + (C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Out = Out * 16 + (C - 'A' + 10);
    else
      return fail("invalid hex digit in \\u escape");
    return true;
  }

  void appendUtf8(std::string &S, unsigned Cp) {
    if (Cp < 0x80) {
      S += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      S += static_cast<char>(0xC0 | (Cp >> 6));
      S += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      S += static_cast<char>(0xE0 | (Cp >> 12));
      S += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (Cp >> 18));
      S += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  /// Validates and copies one multi-byte UTF-8 sequence starting at
  /// Pos. JSON text must be valid UTF-8 (RFC 8259 §8.1); accepting
  /// arbitrary bytes would let invalid sequences round-trip into
  /// documents other tools then reject. Overlong encodings, lone or
  /// out-of-order continuation bytes, surrogate code points, and
  /// values above U+10FFFF all fail.
  bool consumeUtf8Sequence(std::string &Out) {
    unsigned char Lead = static_cast<unsigned char>(Text[Pos]);
    size_t Continuations;
    unsigned char LoMin = 0x80, LoMax = 0xBF; // First-continuation range.
    if (Lead >= 0xC2 && Lead <= 0xDF) {
      Continuations = 1;
    } else if (Lead == 0xE0) {
      Continuations = 2;
      LoMin = 0xA0; // Excludes overlong 2-byte forms.
    } else if (Lead >= 0xE1 && Lead <= 0xEC) {
      Continuations = 2;
    } else if (Lead == 0xED) {
      Continuations = 2;
      LoMax = 0x9F; // Excludes UTF-16 surrogates U+D800..U+DFFF.
    } else if (Lead >= 0xEE && Lead <= 0xEF) {
      Continuations = 2;
    } else if (Lead == 0xF0) {
      Continuations = 3;
      LoMin = 0x90; // Excludes overlong 3-byte forms.
    } else if (Lead >= 0xF1 && Lead <= 0xF3) {
      Continuations = 3;
    } else if (Lead == 0xF4) {
      Continuations = 3;
      LoMax = 0x8F; // Excludes code points above U+10FFFF.
    } else {
      // 0x80..0xC1 (stray continuation / overlong lead), 0xF5..0xFF.
      return fail("invalid UTF-8 byte in string");
    }
    if (Text.size() - Pos < Continuations + 1)
      return fail("truncated UTF-8 sequence in string");
    for (size_t I = 1; I <= Continuations; ++I) {
      unsigned char B = static_cast<unsigned char>(Text[Pos + I]);
      unsigned char Min = I == 1 ? LoMin : 0x80;
      unsigned char Max = I == 1 ? LoMax : 0xBF;
      if (B < Min || B > Max)
        return fail("invalid UTF-8 continuation byte in string");
    }
    Out.append(Text.substr(Pos, Continuations + 1));
    Pos += Continuations + 1;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (static_cast<unsigned char>(C) >= 0x80) {
        --Pos; // Re-read the lead byte.
        if (!consumeUtf8Sequence(Out))
          return false;
        continue;
      }
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp = 0;
        for (int I = 0; I != 4; ++I)
          if (!hexDigit(Cp))
            return false;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          // High surrogate: require a low surrogate.
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Lo = 0;
          for (int I = 0; I != 4; ++I)
            if (!hexDigit(Lo))
              return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail("invalid low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("invalid number");
    if (Text[Pos] == '0') {
      ++Pos;
    } else {
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    Out.K = Value::Kind::Number;
    Out.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    // Grammar-valid numbers can still overflow double ("1e999");
    // storing infinity would emit non-JSON on the way back out.
    if (!std::isfinite(Out.Num))
      return fail("number out of range");
    return true;
  }
};

bool parse(std::string_view Text, Value &Out, std::string &Error) {
  return Parser(Text, Error).run(Out);
}

} // namespace json
} // namespace dmm
