//===-- telemetry/Telemetry.cpp -------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include "support/ThreadPool.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/MemoryAccounting.h"

#include <algorithm>
#include <iomanip>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define DMM_HAVE_THREAD_CPU_CLOCK 1
#else
#define DMM_HAVE_THREAD_CPU_CLOCK 0
#endif

using namespace dmm;

Telemetry *Telemetry::Active = nullptr;
thread_local TelemetryShard *TelemetryShard::ActiveShard = nullptr;

namespace {

/// The calling thread's innermost open span. Worker threads get the
/// submitting thread's value installed for the duration of a
/// parallelFor via the pool context hooks below.
thread_local uint64_t CurrentSpanTL = 0;

uint64_t threadCpuNanos() {
#if DMM_HAVE_THREAD_CPU_CLOCK
  struct timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) != 0)
    return 0;
  return static_cast<uint64_t>(TS.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(TS.tv_nsec);
#else
  return 0;
#endif
}

/// Splits a dotted name into (namespace, key) for the documented
/// metrics sort order: the namespace is everything before the first
/// '.', the key the remainder.
std::pair<std::string_view, std::string_view>
splitNamespace(std::string_view Name) {
  size_t Dot = Name.find('.');
  if (Dot == std::string_view::npos)
    return {Name, std::string_view()};
  return {Name.substr(0, Dot), Name.substr(Dot + 1)};
}

bool namespaceKeyLess(std::string_view A, std::string_view B) {
  auto [NsA, KeyA] = splitNamespace(A);
  auto [NsB, KeyB] = splitNamespace(B);
  if (NsA != NsB)
    return NsA < NsB;
  return KeyA < KeyB;
}

} // namespace

Telemetry::Telemetry()
    : Epoch(std::chrono::steady_clock::now()), SpanLimit(size_t(1) << 18) {
  // A 0/1 gauge, present in every registry, so consumers can tell
  // "memory accounting reported zero" from "platform cannot measure".
  // merge() treats it as a gauge (max), not a sum.
  Counters["telemetry.memacct.enabled"] = memacct::available() ? 1 : 0;
  // Register the span-context propagation hooks with the thread pool
  // once per process: workers inherit the submitting thread's current
  // span for the duration of a parallel loop, so spans opened inside
  // worker tasks attach to the spawning span. With no registry ever
  // constructed the pool carries no hooks and no per-task cost.
  static std::once_flag Once;
  std::call_once(Once, [] {
    PoolTaskContext Hooks;
    Hooks.Capture = [] { return CurrentSpanTL; };
    Hooks.Install = [](uint64_t Ctx) {
      uint64_t Saved = CurrentSpanTL;
      CurrentSpanTL = Ctx;
      return Saved;
    };
    Hooks.Restore = [](uint64_t Saved) { CurrentSpanTL = Saved; };
    setPoolTaskContext(Hooks);
  });
}

uint64_t Telemetry::currentSpanId() { return CurrentSpanTL; }

uint64_t Telemetry::nowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void Telemetry::setSpanLimit(size_t Limit) {
  std::lock_guard<std::mutex> Lock(Mu);
  SpanLimit = Limit;
}

void Telemetry::count(const char *Name, uint64_t Delta) {
  Telemetry *T = Active;
  if (!T)
    return;
  if (TelemetryShard *S = TelemetryShard::ActiveShard; S && S->T == T) {
    S->Local[Name] += Delta;
    return;
  }
  T->addCounter(Name, Delta);
}

void Telemetry::addCounter(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

uint64_t Telemetry::beginSpan(const char *Name, uint64_t Parent,
                              uint64_t StartNanos, unsigned &DepthOut) {
  std::lock_guard<std::mutex> Lock(Mu);
  // A stale parent id (from a previous registry on this thread) cannot
  // resolve here; treat it as a root.
  if (Parent > Spans.size())
    Parent = 0;
  DepthOut = Parent ? Spans[Parent - 1].Depth + 1 : 0;

  // First-activation aggregate entry, so phases() order is stable.
  auto [It, Inserted] = PhaseIndex.try_emplace(Name, Phases.size());
  if (Inserted)
    Phases.push_back({Name, 0, 0, DepthOut});

  if (Spans.size() >= SpanLimit) {
    ++SpansDropped;
    Counters["telemetry.spans_dropped"] = SpansDropped;
    return 0;
  }
  SpanRecord R;
  R.Id = Spans.size() + 1;
  R.Parent = Parent;
  R.Name = Name;
  R.StartNanos = StartNanos;
  R.Depth = DepthOut;
  Spans.push_back(std::move(R));
  return Spans.back().Id;
}

void Telemetry::endSpan(uint64_t Id, const char *Name, uint64_t StartNanos,
                        uint64_t DurNanos, uint64_t CpuNanos,
                        int64_t MemNetBytes, int64_t MemPeakBytes,
                        unsigned Depth, std::vector<SpanArg> Args) {
  (void)StartNanos;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Id != 0 && Id <= Spans.size()) {
    SpanRecord &R = Spans[Id - 1];
    R.DurNanos = DurNanos;
    R.CpuNanos = CpuNanos;
    R.MemNetBytes = MemNetBytes;
    R.MemPeakBytes = MemPeakBytes;
    R.Closed = true;
    R.Args = std::move(Args);
  }
  auto It = PhaseIndex.find(Name);
  if (It == PhaseIndex.end()) // endSpan without beginSpan: tolerate.
    It = PhaseIndex.try_emplace(Name, Phases.size()).first;
  if (It->second == Phases.size())
    Phases.push_back({Name, 0, 0, Depth});
  PhaseStat &P = Phases[It->second];
  P.Nanos += DurNanos;
  ++P.Invocations;
  if (Depth < P.Depth)
    P.Depth = Depth;
}

void Telemetry::merge(const Telemetry &Other) {
  std::lock_guard<std::mutex> Lock(Mu);
  const uint64_t Offset = Spans.size();
  for (const SpanRecord &S : Other.Spans) {
    if (Spans.size() >= SpanLimit) {
      ++SpansDropped;
      Counters["telemetry.spans_dropped"] = SpansDropped;
      continue;
    }
    SpanRecord R = S;
    R.Id = S.Id + Offset;
    if (R.Parent)
      R.Parent += Offset;
    Spans.push_back(std::move(R));
  }
  for (const auto &[Name, Value] : Other.Counters) {
    // Gauges (currently only the memacct capability flag) take the max
    // instead of summing, so folding N registries stays 0/1.
    if (Name == "telemetry.memacct.enabled")
      Counters[Name] = std::max(Counters[Name], Value);
    else
      Counters[Name] += Value;
  }
  for (const PhaseStat &OP : Other.Phases) {
    auto [It, Inserted] = PhaseIndex.try_emplace(OP.Name, Phases.size());
    if (Inserted) {
      Phases.push_back(OP);
      continue;
    }
    PhaseStat &P = Phases[It->second];
    P.Nanos += OP.Nanos;
    P.Invocations += OP.Invocations;
    if (OP.Depth < P.Depth)
      P.Depth = OP.Depth;
  }
}

TelemetryShard::TelemetryShard(Telemetry *T)
    : T(T), Prev(ActiveShard) {
  ActiveShard = this;
}

TelemetryShard::~TelemetryShard() {
  ActiveShard = Prev;
  if (!T || Local.empty())
    return;
  std::lock_guard<std::mutex> Lock(T->Mu);
  for (const auto &[Name, Delta] : Local)
    T->Counters[Name] += Delta;
}

const PhaseStat *Telemetry::phase(const std::string &Name) const {
  auto It = PhaseIndex.find(Name);
  return It == PhaseIndex.end() ? nullptr : &Phases[It->second];
}

uint64_t Telemetry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

//===----------------------------------------------------------------------===//
// Span (RAII)
//===----------------------------------------------------------------------===//

Span::Span(const char *Name) : T(Telemetry::Active), Name(Name) {
  // The flight recorder (crash diagnostics) tracks spans even when no
  // Telemetry registry is installed, so a crash on a plain run still
  // reports where in the pipeline it happened.
  flightSpanBegin(Name);
  if (!T)
    return;
  StartNanos = T->nowNanos();
  Id = T->beginSpan(Name, CurrentSpanTL, StartNanos, Depth);
  SavedParent = CurrentSpanTL;
  if (Id)
    CurrentSpanTL = Id;
  MemPushed = memacct::push();
  CpuStart = threadCpuNanos();
}

Span::~Span() {
  flightSpanEnd();
  if (!T)
    return;
  memacct::Frame F;
  if (MemPushed)
    F = memacct::pop();
  const uint64_t End = T->nowNanos();
  uint64_t CpuEnd = threadCpuNanos();
  CurrentSpanTL = SavedParent;
  T->endSpan(Id, Name, StartNanos, End > StartNanos ? End - StartNanos : 0,
             CpuEnd > CpuStart ? CpuEnd - CpuStart : 0, F.NetBytes,
             F.PeakBytes, Depth, std::move(Args));
}

void Span::arg(const char *Key, uint64_t Value) {
  if (!T)
    return;
  SpanArg A;
  A.Key = Key;
  A.IntValue = Value;
  Args.push_back(std::move(A));
}

void Span::arg(const char *Key, std::string Value) {
  if (!T)
    return;
  SpanArg A;
  A.Key = Key;
  A.StrValue = std::move(Value);
  A.IsString = true;
  Args.push_back(std::move(A));
}

//===----------------------------------------------------------------------===//
// Emitters
//===----------------------------------------------------------------------===//

void Telemetry::printMetrics(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Flags = OS.flags();

  // Documented stable sort: (namespace, key), where the namespace is
  // the dotted prefix. First-activation order would vary with worker
  // interleaving at --jobs > 1.
  std::vector<const PhaseStat *> Sorted;
  Sorted.reserve(Phases.size());
  for (const PhaseStat &P : Phases)
    Sorted.push_back(&P);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const PhaseStat *A, const PhaseStat *B) {
                     return namespaceKeyLess(A->Name, B->Name);
                   });

  OS << "phase                                time (ms)      calls\n";
  for (const PhaseStat *P : Sorted) {
    std::string Label(2 + 2 * P->Depth, ' ');
    Label += P->Name;
    OS << std::left << std::setw(35) << Label << std::right
       << std::setw(12) << std::fixed << std::setprecision(3)
       << P->Nanos / 1e6 << std::setw(11) << P->Invocations << "\n";
  }
  if (!Counters.empty()) {
    std::vector<const std::pair<const std::string, uint64_t> *> Rows;
    Rows.reserve(Counters.size());
    for (const auto &KV : Counters)
      Rows.push_back(&KV);
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto *A, const auto *B) {
                       return namespaceKeyLess(A->first, B->first);
                     });
    OS << "counter                                               value\n";
    for (const auto *KV : Rows)
      OS << "  " << std::left << std::setw(42) << KV->first << std::right
         << std::setw(13) << KV->second << "\n";
  }
  OS.flags(Flags);
}

static void printJsonEscaped(std::ostream &OS, std::string_view S) {
  static const char *Hex = "0123456789abcdef";
  OS << '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (U < 0x20)
      OS << "\\u00" << Hex[U >> 4] << Hex[U & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

void Telemetry::printChromeTrace(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto Flags = OS.flags();
  OS << "{\"traceEvents\": [";
  bool First = true;
  OS << std::fixed << std::setprecision(3);
  for (const SpanRecord &S : Spans) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n  {\"name\": ";
    printJsonEscaped(OS, S.Name);
    OS << ", \"cat\": \"span\", \"ph\": \"X\", \"ts\": " << S.StartNanos / 1e3
       << ", \"dur\": " << S.DurNanos / 1e3
       << ", \"pid\": 1, \"tid\": 1, \"args\": {\"span_id\": " << S.Id
       << ", \"parent\": " << S.Parent
       << ", \"cpu_us\": " << S.CpuNanos / 1e3
       << ", \"mem_peak_bytes\": " << S.MemPeakBytes
       << ", \"mem_net_bytes\": " << S.MemNetBytes;
    for (const SpanArg &A : S.Args) {
      OS << ", ";
      printJsonEscaped(OS, A.Key);
      OS << ": ";
      if (A.IsString)
        printJsonEscaped(OS, A.StrValue);
      else
        OS << A.IntValue;
    }
    OS << "}}";
  }
  if (!Counters.empty()) {
    if (!First)
      OS << ",";
    OS << "\n  {\"name\": \"counters\", \"ph\": \"I\", \"ts\": "
       << nowNanos() / 1e3 << ", \"s\": \"g\", \"pid\": 1, \"tid\": 1, "
          "\"args\": {";
    bool FirstArg = true;
    for (const auto &[Name, Value] : Counters) {
      if (!FirstArg)
        OS << ", ";
      FirstArg = false;
      printJsonEscaped(OS, Name);
      OS << ": " << Value;
    }
    OS << "}}";
  }
  OS << "\n], \"displayTimeUnit\": \"ms\"}\n";
  OS.flags(Flags);
}
