//===-- telemetry/Telemetry.cpp -------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Telemetry.h"

#include <iomanip>

using namespace dmm;

Telemetry *Telemetry::Active = nullptr;
thread_local TelemetryShard *TelemetryShard::ActiveShard = nullptr;

Telemetry::Telemetry() : Epoch(std::chrono::steady_clock::now()) {}

unsigned &Telemetry::nestingDepth() {
  static thread_local unsigned Depth = 0;
  return Depth;
}

uint64_t Telemetry::nowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void Telemetry::count(const char *Name, uint64_t Delta) {
  Telemetry *T = Active;
  if (!T)
    return;
  if (TelemetryShard *S = TelemetryShard::ActiveShard; S && S->T == T) {
    S->Local[Name] += Delta;
    return;
  }
  T->addCounter(Name, Delta);
}

void Telemetry::addCounter(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

void Telemetry::recordInterval(const std::string &Name, uint64_t StartNanos,
                               uint64_t DurNanos, unsigned Depth) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = PhaseIndex.try_emplace(Name, Phases.size());
  if (Inserted) {
    Phases.push_back({Name, 0, 0, Depth});
  }
  PhaseStat &P = Phases[It->second];
  P.Nanos += DurNanos;
  ++P.Invocations;
  if (Depth < P.Depth)
    P.Depth = Depth;
  Events.push_back({Name, StartNanos, DurNanos, Depth});
}

TelemetryShard::TelemetryShard(Telemetry *T)
    : T(T), Prev(ActiveShard) {
  ActiveShard = this;
}

TelemetryShard::~TelemetryShard() {
  ActiveShard = Prev;
  if (!T || Local.empty())
    return;
  std::lock_guard<std::mutex> Lock(T->Mu);
  for (const auto &[Name, Delta] : Local)
    T->Counters[Name] += Delta;
}

const PhaseStat *Telemetry::phase(const std::string &Name) const {
  auto It = PhaseIndex.find(Name);
  return It == PhaseIndex.end() ? nullptr : &Phases[It->second];
}

uint64_t Telemetry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void Telemetry::printMetrics(std::ostream &OS) const {
  auto Flags = OS.flags();
  OS << "phase                                time (ms)      calls\n";
  for (const PhaseStat &P : Phases) {
    std::string Label(2 + 2 * P.Depth, ' ');
    Label += P.Name;
    OS << std::left << std::setw(35) << Label << std::right
       << std::setw(12) << std::fixed << std::setprecision(3)
       << P.Nanos / 1e6 << std::setw(11) << P.Invocations << "\n";
  }
  if (!Counters.empty()) {
    OS << "counter                                               value\n";
    for (const auto &[Name, Value] : Counters)
      OS << "  " << std::left << std::setw(42) << Name << std::right
         << std::setw(13) << Value << "\n";
  }
  OS.flags(Flags);
}

static void printJsonEscaped(std::ostream &OS, const std::string &S) {
  static const char *Hex = "0123456789abcdef";
  OS << '"';
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (U < 0x20)
      OS << "\\u00" << Hex[U >> 4] << Hex[U & 0xf];
    else
      OS << C;
  }
  OS << '"';
}

void Telemetry::printChromeTrace(std::ostream &OS) const {
  auto Flags = OS.flags();
  OS << "{\"traceEvents\": [";
  bool First = true;
  OS << std::fixed << std::setprecision(3);
  for (const TimelineEvent &E : Events) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n  {\"name\": ";
    printJsonEscaped(OS, E.Name);
    OS << ", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": "
       << E.StartNanos / 1e3 << ", \"dur\": " << E.DurNanos / 1e3
       << ", \"pid\": 1, \"tid\": 1}";
  }
  if (!Counters.empty()) {
    if (!First)
      OS << ",";
    OS << "\n  {\"name\": \"counters\", \"ph\": \"I\", \"ts\": "
       << nowNanos() / 1e3 << ", \"s\": \"g\", \"pid\": 1, \"tid\": 1, "
          "\"args\": {";
    bool FirstArg = true;
    for (const auto &[Name, Value] : Counters) {
      if (!FirstArg)
        OS << ", ";
      FirstArg = false;
      printJsonEscaped(OS, Name);
      OS << ": " << Value;
    }
    OS << "}}";
  }
  OS << "\n], \"displayTimeUnit\": \"ms\"}\n";
  OS.flags(Flags);
}
