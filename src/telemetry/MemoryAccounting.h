//===-- telemetry/MemoryAccounting.h - Per-span heap accounting -*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counting-allocator layer for per-span memory accounting: the
/// implementation file replaces the global operator new/delete with
/// versions that, when the calling thread has at least one accounting
/// frame open, charge each allocation's usable size to every open frame
/// on that thread. A Span (telemetry/Telemetry.h) pushes a frame while
/// it is open and reads back net and peak heap bytes when it closes.
///
/// Accounting is strictly per thread: an allocation is charged to the
/// frames of the thread that performed it. Frees are credited the same
/// way, so a frame's net can go negative when it frees memory allocated
/// before it opened — that is real information (the span released
/// memory), not an error. Frames nest up to a fixed depth; spans deeper
/// than that report zero memory.
///
/// The disabled-path cost (no frame open on the thread) is one
/// thread-local integer test per allocation. On platforms without
/// malloc_usable_size (non-glibc) — or when configured with
/// -DDMM_ENABLE_MEMACCT=OFF — the layer compiles to no-ops and every
/// span reports zero bytes. Check available(); it is also surfaced as
/// the "memory_accounting" stats field and the
/// "telemetry.memacct.enabled" counter (a 0/1 gauge, not a sum).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_MEMORYACCOUNTING_H
#define DMM_TELEMETRY_MEMORYACCOUNTING_H

#include <cstdint>

namespace dmm {
namespace memacct {

/// Net/peak heap movement observed by one accounting frame.
struct Frame {
  int64_t NetBytes = 0;
  int64_t PeakBytes = 0;
};

/// Maximum nesting of accounting frames per thread.
inline constexpr int kMaxDepth = 64;

/// Opens an accounting frame on the calling thread. Returns false (and
/// opens nothing) when the per-thread depth limit is reached; the
/// matching pop() must then be skipped.
bool push();

/// Closes the innermost frame and returns its totals.
Frame pop();

/// True when the platform supports usable-size accounting (glibc).
bool available();

} // namespace memacct
} // namespace dmm

#endif // DMM_TELEMETRY_MEMORYACCOUNTING_H
