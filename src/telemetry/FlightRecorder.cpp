//===-- telemetry/FlightRecorder.cpp --------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/FlightRecorder.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

using namespace dmm;

std::atomic<FlightRecorder *> FlightRecorder::Active{nullptr};

const char *dmm::flightEventKindName(FlightEventKind Kind) {
  switch (Kind) {
  case FlightEventKind::Log:
    return "log";
  case FlightEventKind::SpanBegin:
    return "span_begin";
  case FlightEventKind::SpanEnd:
    return "span_end";
  }
  return "log";
}

/// One thread's state: a single-writer event ring plus its open-span
/// stack. The owning thread is the only writer; Head's release store
/// publishes each completed entry.
struct FlightRecorder::Ring {
  std::atomic<uint64_t> Head{0};
  std::atomic<uint32_t> SpanDepth{0};
  FlightEvent *Entries = nullptr;
  const char *SpanNames[kMaxSpanDepth] = {};
};

namespace {

constexpr size_t MyThreadIndexNone = static_cast<size_t>(-1);

/// The calling thread's ring within the installed recorder. A thread
/// keeps its slot for the recorder's (= process's) lifetime.
thread_local FlightRecorder::Ring *MyRingTL = nullptr;
thread_local size_t MyThreadIndexTL = MyThreadIndexNone;

} // namespace

FlightRecorder::FlightRecorder(size_t Cap)
    : Capacity(Cap < 8 ? 8 : Cap),
      EpochNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count()) {
  Rings = new Ring[kMaxThreads];
  // One contiguous block for all rings, zero-initialized, allocated
  // before any signal handler could ever walk it.
  FlightEvent *Block = new FlightEvent[kMaxThreads * Capacity]();
  for (size_t I = 0; I < kMaxThreads; ++I)
    Rings[I].Entries = Block + I * Capacity;
}

void FlightRecorder::install(size_t Capacity) {
  static std::once_flag Once;
  std::call_once(Once, [Capacity] {
    // Leaked deliberately: the recorder must stay valid for signal
    // handlers until the very end of the process.
    Active.store(new FlightRecorder(Capacity), std::memory_order_release);
  });
}

uint64_t FlightRecorder::nowNanos() const {
  uint64_t Now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  return Now >= EpochNanos ? Now - EpochNanos : 0;
}

FlightRecorder::Ring *FlightRecorder::myRing() {
  if (MyRingTL)
    return MyRingTL;
  uint32_t Index = NextThread.fetch_add(1, std::memory_order_relaxed);
  if (Index >= kMaxThreads)
    return nullptr;
  MyRingTL = &Rings[Index];
  MyThreadIndexTL = Index;
  return MyRingTL;
}

void FlightRecorder::record(FlightEventKind Kind, uint8_t Level,
                            const char *Text) {
  Ring *R = myRing();
  uint64_t Seq = NextSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!R) {
    NoSlotDrops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t Head = R->Head.load(std::memory_order_relaxed);
  FlightEvent &E = R->Entries[Head % Capacity];
  E.Seq = Seq;
  E.TimeNanos = nowNanos();
  E.Thread = static_cast<uint32_t>(MyThreadIndexTL);
  E.Kind = Kind;
  E.Level = Level;
  if (!Text)
    Text = "";
  size_t Len = strnlen(Text, sizeof(E.Text) - 1);
  memcpy(E.Text, Text, Len);
  E.Text[Len] = '\0';
  R->Head.store(Head + 1, std::memory_order_release);
}

void FlightRecorder::spanBegin(const char *Name) {
  Ring *R = myRing();
  if (R) {
    uint32_t Depth = R->SpanDepth.load(std::memory_order_relaxed);
    if (Depth < kMaxSpanDepth)
      R->SpanNames[Depth] = Name;
    R->SpanDepth.store(Depth + 1, std::memory_order_release);
  }
  record(FlightEventKind::SpanBegin, 0, Name);
}

void FlightRecorder::spanEnd() {
  Ring *R = myRing();
  const char *Name = "";
  if (R) {
    uint32_t Depth = R->SpanDepth.load(std::memory_order_relaxed);
    if (Depth > 0) {
      R->SpanDepth.store(Depth - 1, std::memory_order_release);
      if (Depth - 1 < kMaxSpanDepth && R->SpanNames[Depth - 1])
        Name = R->SpanNames[Depth - 1];
    }
  }
  record(FlightEventKind::SpanEnd, 0, Name);
}

size_t FlightRecorder::currentSpanStack(const char **Names,
                                        size_t Max) const {
  const Ring *R = MyRingTL;
  if (!R)
    return 0;
  uint32_t Depth = R->SpanDepth.load(std::memory_order_relaxed);
  if (Depth > kMaxSpanDepth)
    Depth = kMaxSpanDepth;
  size_t N = 0;
  for (uint32_t I = 0; I < Depth && N < Max; ++I)
    if (R->SpanNames[I])
      Names[N++] = R->SpanNames[I];
  return N;
}

uint64_t FlightRecorder::eventsDropped() const {
  uint64_t Dropped = NoSlotDrops.load(std::memory_order_relaxed);
  size_t Threads = threadCount();
  for (size_t I = 0; I < Threads; ++I) {
    uint64_t Head = Rings[I].Head.load(std::memory_order_acquire);
    if (Head > Capacity)
      Dropped += Head - Capacity;
  }
  return Dropped;
}

size_t FlightRecorder::threadCount() const {
  uint32_t N = NextThread.load(std::memory_order_acquire);
  return N > kMaxThreads ? kMaxThreads : N;
}

uint64_t FlightRecorder::ringHead(size_t Thread) const {
  return Rings[Thread].Head.load(std::memory_order_acquire);
}

const FlightEvent *FlightRecorder::ringEntries(size_t Thread) const {
  return Rings[Thread].Entries;
}

size_t FlightRecorder::currentThreadIndex() const {
  return MyRingTL ? MyThreadIndexTL : MyThreadIndexNone;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> Out;
  size_t Threads = threadCount();
  for (size_t I = 0; I < Threads; ++I) {
    uint64_t Head = Rings[I].Head.load(std::memory_order_acquire);
    uint64_t Retained = Head < Capacity ? Head : Capacity;
    for (uint64_t J = Head - Retained; J < Head; ++J) {
      FlightEvent E = Rings[I].Entries[J % Capacity];
      E.Text[sizeof(E.Text) - 1] = '\0'; // Defensive against torn copies.
      Out.push_back(E);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const FlightEvent &A, const FlightEvent &B) {
              return A.Seq < B.Seq;
            });
  return Out;
}
