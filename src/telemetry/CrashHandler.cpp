//===-- telemetry/CrashHandler.cpp ----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "telemetry/CrashHandler.h"

#include "telemetry/FlightRecorder.h"
#include "telemetry/Log.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define DMM_HAVE_CRASH_SIGNALS 1
#else
#define DMM_HAVE_CRASH_SIGNALS 0
#endif

using namespace dmm;

namespace {

// All handler state is plain data captured at install() time; the
// handler itself reads only this, the logger's atomic counters, and
// the flight recorder's preallocated rings.
constexpr size_t kMaxPath = 512;
constexpr size_t kMaxName = 128;

int InstallArgc = 0;
const char *const *InstallArgv = nullptr;
char ToolName[kMaxName] = "dmm";
char ToolVersion[kMaxName] = "unknown";
char CrashDir[kMaxPath] = ".";
std::atomic<uint64_t> ReportsWritten{0};
std::atomic_flag DumpInProgress = ATOMIC_FLAG_INIT;
std::terminate_handler PrevTerminate = nullptr;

void copyBounded(char *Dst, const char *Src, size_t Cap) {
  if (!Src)
    Src = "";
  size_t Len = strnlen(Src, Cap - 1);
  memcpy(Dst, Src, Len);
  Dst[Len] = '\0';
}

#if DMM_HAVE_CRASH_SIGNALS

/// A fixed-buffer writer flushing to \p Fd via write(2). Everything it
/// calls is async-signal-safe.
class SafeWriter {
public:
  explicit SafeWriter(int Fd) : Fd(Fd) {}
  ~SafeWriter() { flush(); }

  void put(char C) {
    if (Len == sizeof(Buf))
      flush();
    Buf[Len++] = C;
  }

  void str(const char *S) {
    if (!S)
      S = "";
    while (*S)
      put(*S++);
  }

  void uint(uint64_t V) {
    char Digits[24];
    size_t N = 0;
    do {
      Digits[N++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V);
    while (N)
      put(Digits[--N]);
  }

  /// JSON string literal with conservative escaping.
  void quoted(const char *S) {
    static const char *Hex = "0123456789abcdef";
    put('"');
    if (!S)
      S = "";
    for (; *S; ++S) {
      unsigned char U = static_cast<unsigned char>(*S);
      if (*S == '"' || *S == '\\') {
        put('\\');
        put(*S);
      } else if (U < 0x20) {
        str("\\u00");
        put(Hex[U >> 4]);
        put(Hex[U & 0xf]);
      } else {
        put(*S);
      }
    }
    put('"');
  }

  void flush() {
    size_t Off = 0;
    while (Off < Len) {
      ssize_t N = ::write(Fd, Buf + Off, Len - Off);
      if (N <= 0)
        break;
      Off += static_cast<size_t>(N);
    }
    Len = 0;
  }

private:
  int Fd;
  char Buf[512];
  size_t Len = 0;
};

const char *levelNameForCrash(uint8_t Level) {
  return Level < kNumLogLevels
             ? logLevelName(static_cast<LogLevel>(Level))
             : "error";
}

#endif // DMM_HAVE_CRASH_SIGNALS

} // namespace

uint64_t dmm::crashReportsWritten() {
  return ReportsWritten.load(std::memory_order_relaxed);
}

#if DMM_HAVE_CRASH_SIGNALS

void dmm::writeCrashReport(int Fd, const char *Reason) {
  SafeWriter W(Fd);
  W.str("{\"schema\":\"");
  W.str(kCrashSchemaName);
  W.str("\",\"version\":");
  W.uint(kCrashSchemaVersion);
  W.str(",\"tool\":");
  W.quoted(ToolName);
  W.str(",\"tool_version\":");
  W.quoted(ToolVersion);
  W.str(",\"pid\":");
  W.uint(static_cast<uint64_t>(::getpid()));
  W.str(",\"reason\":");
  W.quoted(Reason);

  W.str(",\"argv\":[");
  for (int I = 0; I < InstallArgc; ++I) {
    if (I)
      W.put(',');
    W.quoted(InstallArgv[I]);
  }
  W.put(']');

  // The crashing thread's open spans, outermost first. The handler
  // runs on the faulting thread, so this is that thread's stack.
  W.str(",\"span_stack\":[");
  if (FlightRecorder *R = FlightRecorder::active()) {
    const char *Names[FlightRecorder::kMaxSpanDepth];
    size_t Depth = R->currentSpanStack(Names, FlightRecorder::kMaxSpanDepth);
    for (size_t I = 0; I < Depth; ++I) {
      if (I)
        W.put(',');
      W.quoted(Names[I]);
    }
  }
  W.put(']');

  // The tail of every thread's ring (newest kCrashTailEvents entries,
  // oldest first). Entries carry global sequence numbers so consumers
  // can interleave threads; rings of still-running threads may hold
  // a torn entry — texts are bounded and NUL-terminated regardless.
  W.str(",\"flight_recorder\":[");
  bool FirstEvent = true;
  if (FlightRecorder *R = FlightRecorder::active()) {
    size_t Threads = R->threadCount();
    for (size_t T = 0; T < Threads; ++T) {
      uint64_t Head = R->ringHead(T);
      uint64_t Retained = Head < R->capacity() ? Head : R->capacity();
      if (Retained > FlightRecorder::kCrashTailEvents)
        Retained = FlightRecorder::kCrashTailEvents;
      const FlightEvent *Entries = R->ringEntries(T);
      for (uint64_t I = Head - Retained; I < Head; ++I) {
        const FlightEvent &E = Entries[I % R->capacity()];
        char Text[sizeof(E.Text)];
        memcpy(Text, E.Text, sizeof(Text));
        Text[sizeof(Text) - 1] = '\0';
        if (!FirstEvent)
          W.put(',');
        FirstEvent = false;
        W.str("{\"seq\":");
        W.uint(E.Seq);
        W.str(",\"ts_ns\":");
        W.uint(E.TimeNanos);
        W.str(",\"thread\":");
        W.uint(E.Thread);
        W.str(",\"kind\":\"");
        W.str(flightEventKindName(E.Kind));
        W.str("\",\"level\":\"");
        // Span markers carry no level; an empty string keeps the field
        // present without implying severity.
        if (E.Kind == FlightEventKind::Log)
          W.str(levelNameForCrash(E.Level));
        W.str("\",\"text\":");
        W.quoted(Text);
        W.put('}');
      }
    }
  }
  W.put(']');

  // Counter snapshot: only the async-signal-safe diagnostic atomics.
  // The Telemetry registry's counter map is mutex-guarded and heap-
  // backed, so it is deliberately NOT read here.
  const std::atomic<uint64_t> *Counts = Logger::countsForCrash();
  W.str(",\"counters\":{");
  for (unsigned L = 0; L < kNumLogLevels; ++L) {
    if (L)
      W.put(',');
    W.str("\"log_");
    W.str(logLevelName(static_cast<LogLevel>(L)));
    W.str("\":");
    W.uint(Counts[L].load(std::memory_order_relaxed));
  }
  uint64_t Recorded = 0, Dropped = 0;
  if (FlightRecorder *R = FlightRecorder::active()) {
    Recorded = R->eventsRecorded();
    Dropped = R->eventsDropped();
  }
  W.str(",\"recorder_events\":");
  W.uint(Recorded);
  W.str(",\"recorder_dropped\":");
  W.uint(Dropped);
  W.put('}');

  W.str("}\n");
  W.flush();
}

namespace {

/// Builds "<dir>/dmm-crash-<pid>.json", opens it, writes the report,
/// and prints a one-line notice to stderr. Returns true if this call
/// performed the dump (false: another crash got there first).
bool dumpCrashReport(const char *Reason) {
  if (DumpInProgress.test_and_set())
    return false;

  char Path[kMaxPath + 64];
  size_t N = 0;
  for (const char *S = CrashDir; *S && N < kMaxPath; ++S)
    Path[N++] = *S;
  if (N && Path[N - 1] != '/')
    Path[N++] = '/';
  const char *Stem = "dmm-crash-";
  for (const char *S = Stem; *S; ++S)
    Path[N++] = *S;
  uint64_t Pid = static_cast<uint64_t>(::getpid());
  char Digits[24];
  size_t D = 0;
  do {
    Digits[D++] = static_cast<char>('0' + Pid % 10);
    Pid /= 10;
  } while (Pid);
  while (D)
    Path[N++] = Digits[--D];
  for (const char *S = ".json"; *S; ++S)
    Path[N++] = *S;
  Path[N] = '\0';

  int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd >= 0) {
    writeCrashReport(Fd, Reason);
    ::close(Fd);
    ReportsWritten.fetch_add(1, std::memory_order_relaxed);
  }

  SafeWriter Err(2);
  Err.str("error: fatal ");
  Err.str(Reason);
  if (Fd >= 0) {
    Err.str("; crash report written to ");
    Err.str(Path);
  } else {
    Err.str("; could not write crash report");
  }
  Err.put('\n');
  Err.flush();
  return true;
}

const char *signalName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGBUS:
    return "SIGBUS";
  case SIGABRT:
    return "SIGABRT";
  case SIGFPE:
    return "SIGFPE";
  case SIGILL:
    return "SIGILL";
  }
  return "signal";
}

void crashSignalHandler(int Sig) {
  dumpCrashReport(signalName(Sig));
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process still dies with the original signal's exit status.
  ::raise(Sig);
}

[[noreturn]] void crashTerminateHandler() {
  dumpCrashReport("terminate");
  if (PrevTerminate && PrevTerminate != crashTerminateHandler)
    PrevTerminate();
  ::abort();
}

} // namespace

void dmm::installCrashHandler(int Argc, const char *const *Argv,
                              const char *Tool, const char *Version) {
  static std::atomic_flag Installed = ATOMIC_FLAG_INIT;
  if (Installed.test_and_set())
    return;
  InstallArgc = Argc;
  InstallArgv = Argv;
  copyBounded(ToolName, Tool, sizeof(ToolName));
  copyBounded(ToolVersion, Version, sizeof(ToolVersion));
  if (const char *Dir = std::getenv("DMM_CRASH_DIR"))
    if (*Dir)
      copyBounded(CrashDir, Dir, sizeof(CrashDir));

  struct sigaction SA;
  memset(&SA, 0, sizeof(SA));
  SA.sa_handler = crashSignalHandler;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_RESETHAND;
  for (int Sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL})
    sigaction(Sig, &SA, nullptr);
  PrevTerminate = std::set_terminate(crashTerminateHandler);
}

#else // !DMM_HAVE_CRASH_SIGNALS

void dmm::writeCrashReport(int, const char *) {}

void dmm::installCrashHandler(int Argc, const char *const *Argv,
                              const char *Tool, const char *Version) {
  InstallArgc = Argc;
  InstallArgv = Argv;
  copyBounded(ToolName, Tool, sizeof(ToolName));
  copyBounded(ToolVersion, Version, sizeof(ToolVersion));
}

#endif // DMM_HAVE_CRASH_SIGNALS
