//===-- telemetry/Telemetry.h - Span registry and counters ------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead observability for the deadmember pipeline: a registry of
/// hierarchical spans (RAII, parent/child links, per-span wall/cpu time
/// and memory accounting) and named counters, with emitters for a
/// human-readable phase/counter table and Chrome trace-event JSON
/// (loadable in chrome://tracing or Perfetto). The versioned stats
/// schema and the HTML report renderer build on this registry — see
/// telemetry/Stats.h and docs/OBSERVABILITY.md.
///
/// Telemetry is off by default. Instrumentation sites test one global
/// pointer (`Telemetry::Active`); when no registry is installed via
/// TelemetryScope, a Span or Telemetry::count() call costs a load and a
/// branch.
///
/// Spans form a tree. Each thread tracks its innermost open span; a new
/// Span attaches to it as a child. The parent link survives
/// ThreadPool::parallelFor/parallelMap fan-out: the pool captures the
/// submitting thread's current span and installs it on workers for the
/// duration of the loop (see support/ThreadPool.h), so spans opened
/// inside worker tasks attach to the spawning span rather than
/// floating as orphans. While a span is open, allocations on its thread
/// are charged to it (telemetry/MemoryAccounting.h): completed spans
/// report net and peak heap bytes, inclusive of child spans on the same
/// thread.
///
/// The registry is thread-safe: the pipeline's parallel stages may open
/// spans and bump counters from worker threads. Central state is
/// mutex-guarded; hot worker loops should install a TelemetryShard,
/// which batches counter increments in thread-local storage and folds
/// them into the registry once when the shard scope ends — counter
/// totals are sums, so sharded aggregation is deterministic.
///
/// Span names are part of the tool's observable interface (benches and
/// tests grep for them): "lex", "parse", "sema", "callgraph",
/// "analysis", "eliminate", "interp", and the dotted sub-spans
/// ("analysis.scan", "summary.file", "cache.lookup", ...). Counter
/// names are dotted, prefixed by their namespace (e.g.
/// "analysis.exprs_visited").
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_TELEMETRY_H
#define DMM_TELEMETRY_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dmm {

class TelemetryShard;

/// Accumulated cost of one span name (the flat per-phase view kept for
/// the --metrics table and the benchmark counter exports).
struct PhaseStat {
  std::string Name;
  uint64_t Nanos = 0;       ///< Total inclusive wall time.
  uint64_t Invocations = 0; ///< Completed Span activations.
  unsigned Depth = 0;       ///< Minimum tree depth observed.
};

/// One key/value attribute attached to a span. Values are either
/// unsigned integers (counts, bytes, flags) or strings (file names).
struct SpanArg {
  std::string Key;
  uint64_t IntValue = 0;
  std::string StrValue;
  bool IsString = false;
};

/// One span: a named interval in the pipeline's execution tree.
/// Id 0 is reserved ("no span"); parents always have smaller ids than
/// their children because a parent begins before any child.
struct SpanRecord {
  uint64_t Id = 0;
  uint64_t Parent = 0; ///< 0 for roots.
  std::string Name;
  uint64_t StartNanos = 0; ///< Relative to the registry's epoch.
  uint64_t DurNanos = 0;
  uint64_t CpuNanos = 0;     ///< Thread CPU time (0 where unsupported).
  int64_t MemNetBytes = 0;   ///< Allocated minus freed while open.
  int64_t MemPeakBytes = 0;  ///< Peak net heap growth while open.
  unsigned Depth = 0;        ///< Tree depth (root = 0).
  bool Closed = false;       ///< False only for spans still open.
  std::vector<SpanArg> Args;
};

/// The span/counter registry. Install with TelemetryScope; instrument
/// with Span and Telemetry::count().
class Telemetry {
public:
  Telemetry();

  /// The installed process-wide sink, or null (telemetry off).
  static Telemetry *active() { return Active; }

  /// Adds \p Delta to counter \p Name on the active sink, if any. The
  /// null test is the entire disabled-path cost. Routes through the
  /// calling thread's TelemetryShard when one is installed.
  static void count(const char *Name, uint64_t Delta = 1);

  /// The calling thread's innermost open span id (0 if none). Worker
  /// threads inherit the submitting thread's span for the duration of a
  /// parallelFor (support/ThreadPool.h).
  static uint64_t currentSpanId();

  void addCounter(const std::string &Name, uint64_t Delta);

  /// \name Span recording (used by the Span RAII class)
  /// @{
  /// Opens a span; returns its id, or 0 when the registry's span limit
  /// was reached (aggregates still accumulate for dropped spans).
  /// \p DepthOut receives the span's tree depth (parent depth + 1).
  uint64_t beginSpan(const char *Name, uint64_t Parent, uint64_t StartNanos,
                     unsigned &DepthOut);
  /// Closes span \p Id with its measured costs and attributes, and
  /// folds the interval into the per-name aggregate. \p Id may be 0
  /// (dropped span): only the aggregate is updated then.
  void endSpan(uint64_t Id, const char *Name, uint64_t StartNanos,
               uint64_t DurNanos, uint64_t CpuNanos, int64_t MemNetBytes,
               int64_t MemPeakBytes, unsigned Depth,
               std::vector<SpanArg> Args);
  /// @}

  /// Nanoseconds since this registry was created (monotonic clock).
  uint64_t nowNanos() const;

  /// Caps the number of retained SpanRecords (aggregates and counters
  /// are unaffected). Spans beyond the limit are counted in the
  /// "telemetry.spans_dropped" counter. Default: 1<<18.
  void setSpanLimit(size_t Limit);

  /// Folds \p Other (which must be quiescent) into this registry:
  /// counters and phase aggregates add; spans append with ids remapped
  /// past this registry's, subject to the span limit. Used by the bench
  /// harnesses to fold per-benchmark registries into a whole-run one.
  void merge(const Telemetry &Other);

  /// \name Aggregate accessors
  /// Read the registry after parallel regions have completed (the
  /// returned references are not snapshots).
  /// @{
  /// Phase aggregates in first-activation order.
  const std::vector<PhaseStat> &phases() const { return Phases; }
  /// Null if no span named \p Name ever began.
  const PhaseStat *phase(const std::string &Name) const;

  const std::map<std::string, uint64_t> &counters() const {
    return Counters;
  }
  /// 0 if the counter was never touched.
  uint64_t counter(const std::string &Name) const;

  /// Completed (and still-open) spans, in begin order. Spans[I] has
  /// Id == I + 1.
  const std::vector<SpanRecord> &spans() const { return Spans; }
  /// @}

  /// Writes the human-readable phase/counter table. Rows are sorted by
  /// (namespace, key) — the namespace is the dotted prefix before the
  /// first '.' — so output is deterministic at any --jobs level.
  void printMetrics(std::ostream &OS) const;
  /// Writes Chrome trace-event JSON ({"traceEvents": [...]}) with span
  /// ids, parent links, and memory/attribute args.
  void printChromeTrace(std::ostream &OS) const;

private:
  friend class TelemetryScope;
  friend class TelemetryShard;
  friend class Span;
  static Telemetry *Active;

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu; ///< Guards all fields below.
  std::vector<PhaseStat> Phases;
  std::map<std::string, size_t> PhaseIndex;
  std::map<std::string, uint64_t> Counters;
  std::vector<SpanRecord> Spans;
  size_t SpanLimit;
  uint64_t SpansDropped = 0;
};

/// Installs a registry as the process-wide active sink for the current
/// scope. Scopes nest; the previous sink is restored on destruction.
class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry &T) : Saved(Telemetry::Active) {
    Telemetry::Active = &T;
  }
  ~TelemetryScope() { Telemetry::Active = Saved; }
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;

private:
  Telemetry *Saved;
};

/// Thread-local counter shard: while alive on a thread, counter
/// increments against \p T accumulate in a local map and merge into the
/// registry (one lock acquisition) at scope end. Install one per worker
/// task in parallel regions so hot counters don't contend on the
/// registry mutex. Shards nest; the inner shard wins.
class TelemetryShard {
public:
  /// \p T must be the active registry (or null, making the shard a
  /// no-op).
  explicit TelemetryShard(Telemetry *T);
  ~TelemetryShard();
  TelemetryShard(const TelemetryShard &) = delete;
  TelemetryShard &operator=(const TelemetryShard &) = delete;

private:
  friend class Telemetry;
  static thread_local TelemetryShard *ActiveShard;

  Telemetry *T;
  TelemetryShard *Prev;
  std::map<std::string, uint64_t> Local;
};

/// RAII span: records the enclosed interval (wall and thread-cpu time,
/// net/peak heap bytes) into the active registry under \p Name, as a
/// child of the thread's current span. \p Name must outlive the span
/// (string literals only). Attach attributes with arg() before the
/// span closes.
class Span {
public:
  explicit Span(const char *Name);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// This span's id (0 when telemetry is off or the span was dropped).
  uint64_t id() const { return Id; }
  bool active() const { return T != nullptr; }

  /// Attaches a numeric attribute (count, bytes, 0/1 flag).
  void arg(const char *Key, uint64_t Value);
  /// Attaches a string attribute (file name, mode).
  void arg(const char *Key, std::string Value);

private:
  Telemetry *T;
  const char *Name;
  uint64_t Id = 0;
  uint64_t SavedParent = 0;
  unsigned Depth = 0;
  bool MemPushed = false;
  uint64_t StartNanos = 0;
  uint64_t CpuStart = 0;
  std::vector<SpanArg> Args;
};

} // namespace dmm

#endif // DMM_TELEMETRY_TELEMETRY_H
