//===-- telemetry/Telemetry.h - Pipeline phase/counter registry -*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead observability for the deadmember pipeline: a registry of
/// scoped phase timers (RAII, monotonic clock) and named counters, with
/// two emitters — a human-readable phase/counter table and Chrome
/// trace-event JSON (loadable in chrome://tracing or Perfetto).
///
/// Telemetry is off by default. Instrumentation sites test one global
/// pointer (`Telemetry::Active`); when no registry is installed via
/// TelemetryScope, a PhaseTimer or Telemetry::count() call costs a load
/// and a branch.
///
/// The registry is thread-safe: the pipeline's parallel stages (see
/// support/ThreadPool.h) may time phases and bump counters from worker
/// threads. Central state is mutex-guarded; hot worker loops should
/// install a TelemetryShard, which batches counter increments in
/// thread-local storage and folds them into the registry once when the
/// shard scope ends — counter totals are sums, so sharded aggregation
/// is deterministic. Phase nesting depth is tracked per thread.
///
/// Phase names are part of the tool's observable interface (benches and
/// tests grep for them): "lex", "parse", "sema", "callgraph",
/// "analysis", "eliminate", "interp". Counter names are dotted,
/// prefixed by their phase (e.g. "analysis.exprs").
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_TELEMETRY_H
#define DMM_TELEMETRY_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace dmm {

class TelemetryShard;

/// Accumulated cost of one named pipeline phase.
struct PhaseStat {
  std::string Name;
  uint64_t Nanos = 0;       ///< Total inclusive wall time.
  uint64_t Invocations = 0; ///< Completed PhaseTimer activations.
  unsigned Depth = 0;       ///< Minimum nesting depth observed.
};

/// One completed timed interval — a Chrome trace-event "complete"
/// (ph:"X") event.
struct TimelineEvent {
  std::string Name;
  uint64_t StartNanos = 0; ///< Relative to the registry's epoch.
  uint64_t DurNanos = 0;
  unsigned Depth = 0;
};

/// The phase/counter registry. Install with TelemetryScope; instrument
/// with PhaseTimer and Telemetry::count().
class Telemetry {
public:
  Telemetry();

  /// The installed process-wide sink, or null (telemetry off).
  static Telemetry *active() { return Active; }

  /// Adds \p Delta to counter \p Name on the active sink, if any. The
  /// null test is the entire disabled-path cost. Routes through the
  /// calling thread's TelemetryShard when one is installed.
  static void count(const char *Name, uint64_t Delta = 1);

  void addCounter(const std::string &Name, uint64_t Delta);

  /// Folds one completed interval into the per-phase aggregate and
  /// appends it to the event timeline. Thread-safe.
  void recordInterval(const std::string &Name, uint64_t StartNanos,
                      uint64_t DurNanos, unsigned Depth);

  /// Nanoseconds since this registry was created (monotonic clock).
  uint64_t nowNanos() const;

  /// \name Aggregate accessors
  /// Read the registry after parallel regions have completed (the
  /// returned references are not snapshots).
  /// @{
  /// Phase aggregates in first-activation order.
  const std::vector<PhaseStat> &phases() const { return Phases; }
  /// Null if no phase named \p Name ever completed.
  const PhaseStat *phase(const std::string &Name) const;

  const std::map<std::string, uint64_t> &counters() const {
    return Counters;
  }
  /// 0 if the counter was never touched.
  uint64_t counter(const std::string &Name) const;

  const std::vector<TimelineEvent> &events() const { return Events; }
  /// @}

  /// Writes the human-readable phase/counter table.
  void printMetrics(std::ostream &OS) const;
  /// Writes Chrome trace-event JSON ({"traceEvents": [...]}).
  void printChromeTrace(std::ostream &OS) const;

private:
  friend class TelemetryScope;
  friend class TelemetryShard;
  friend class PhaseTimer;
  static Telemetry *Active;

  /// Per-thread PhaseTimer nesting depth (concurrent timers on
  /// different workers each have their own stack).
  static unsigned &nestingDepth();

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu; ///< Guards Phases/PhaseIndex/Counters/Events.
  std::vector<PhaseStat> Phases;
  std::map<std::string, size_t> PhaseIndex;
  std::map<std::string, uint64_t> Counters;
  std::vector<TimelineEvent> Events;
};

/// Installs a registry as the process-wide active sink for the current
/// scope. Scopes nest; the previous sink is restored on destruction.
class TelemetryScope {
public:
  explicit TelemetryScope(Telemetry &T) : Saved(Telemetry::Active) {
    Telemetry::Active = &T;
  }
  ~TelemetryScope() { Telemetry::Active = Saved; }
  TelemetryScope(const TelemetryScope &) = delete;
  TelemetryScope &operator=(const TelemetryScope &) = delete;

private:
  Telemetry *Saved;
};

/// Thread-local counter shard: while alive on a thread, counter
/// increments against \p T accumulate in a local map and merge into the
/// registry (one lock acquisition) at scope end. Install one per worker
/// task in parallel regions so hot counters don't contend on the
/// registry mutex. Shards nest; the inner shard wins.
class TelemetryShard {
public:
  /// \p T must be the active registry (or null, making the shard a
  /// no-op).
  explicit TelemetryShard(Telemetry *T);
  ~TelemetryShard();
  TelemetryShard(const TelemetryShard &) = delete;
  TelemetryShard &operator=(const TelemetryShard &) = delete;

private:
  friend class Telemetry;
  static thread_local TelemetryShard *ActiveShard;

  Telemetry *T;
  TelemetryShard *Prev;
  std::map<std::string, uint64_t> Local;
};

/// RAII phase timer: accumulates the enclosed interval into the active
/// registry under \p Name. \p Name must outlive the timer (string
/// literals only).
class PhaseTimer {
public:
  explicit PhaseTimer(const char *Name)
      : T(Telemetry::Active), Name(Name) {
    if (T) {
      Depth = Telemetry::nestingDepth()++;
      Start = std::chrono::steady_clock::now();
    }
  }
  ~PhaseTimer() {
    if (!T)
      return;
    auto End = std::chrono::steady_clock::now();
    --Telemetry::nestingDepth();
    T->recordInterval(
        Name,
        std::chrono::duration_cast<std::chrono::nanoseconds>(Start -
                                                             T->Epoch)
            .count(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count(),
        Depth);
  }
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  Telemetry *T;
  const char *Name;
  unsigned Depth = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace dmm

#endif // DMM_TELEMETRY_TELEMETRY_H
