//===-- telemetry/CrashHandler.h - Post-mortem crash reports ----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Async-signal-safe crash diagnostics: handlers for SIGSEGV, SIGBUS,
/// SIGABRT, SIGFPE, SIGILL and std::terminate that dump a
/// `dmm-crash-<pid>.json` report before the process dies. The report
/// carries everything a post-mortem needs and nothing that requires a
/// live process: the crashing thread's open-span stack, the tail of
/// every thread's flight-recorder ring (telemetry/FlightRecorder.h),
/// the async-signal-safe diagnostic counters (per-level log counts,
/// recorder totals), argv, and the tool version.
///
/// The handler allocates nothing, takes no locks, and uses only
/// async-signal-safe calls (open/write/close plus reads of plain
/// atomics and the preallocated ring memory); the JSON is emitted
/// through a small fixed-buffer writer. After the dump the original
/// signal is re-raised with default disposition so the exit status
/// still reports the crash.
///
/// The report lands in the current directory, or in $DMM_CRASH_DIR if
/// set at install time. `scripts/validate_stats.py check-crash FILE`
/// validates the schema ("dmm-crash", version 1); the driver's
/// `--inject-fault=crash` exists so CI can exercise this whole path on
/// every push (PR-3 fault-injection style).
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TELEMETRY_CRASHHANDLER_H
#define DMM_TELEMETRY_CRASHHANDLER_H

#include <cstdint>

namespace dmm {

inline constexpr const char kCrashSchemaName[] = "dmm-crash";
inline constexpr int kCrashSchemaVersion = 1;

/// Installs the signal and std::terminate handlers (idempotent; first
/// call wins). \p Argv must outlive the process (main's argv).
/// \p Tool/\p Version are copied.
void installCrashHandler(int Argc, const char *const *Argv, const char *Tool,
                         const char *Version);

/// Crash reports written by this process (0 in any healthy run; the
/// stats v3 diagnostics section reports it so a half-died batch run is
/// visible in its own telemetry).
uint64_t crashReportsWritten();

/// Emits a complete crash report for \p Reason (a signal name or
/// "terminate") to file descriptor \p Fd. Async-signal-safe. Exposed
/// separately so tests can validate the report format without dying.
void writeCrashReport(int Fd, const char *Reason);

} // namespace dmm

#endif // DMM_TELEMETRY_CRASHHANDLER_H
