//===-- lexer/Token.h - MiniC++ tokens --------------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the Lexer.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_LEXER_TOKEN_H
#define DMM_LEXER_TOKEN_H

#include "support/SourceLocation.h"

#include <string>
#include <string_view>

namespace dmm {

/// All token kinds of the MiniC++ subset.
enum class TokenKind {
  EndOfFile,
  Unknown,

  Identifier,
  IntLiteral,
  DoubleLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwClass,
  KwStruct,
  KwUnion,
  KwPublic,
  KwPrivate,
  KwProtected,
  KwVirtual,
  KwVolatile,
  KwConst,
  KwVoid,
  KwBool,
  KwChar,
  KwInt,
  KwDouble,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwBreak,
  KwContinue,
  KwReturn,
  KwNew,
  KwDelete,
  KwThis,
  KwSizeof,
  KwStaticCast,
  KwReinterpretCast,
  KwTrue,
  KwFalse,
  KwNullptr,

  // Punctuation and operators.
  LBrace,       // {
  RBrace,       // }
  LParen,       // (
  RParen,       // )
  LBracket,     // [
  RBracket,     // ]
  Semi,         // ;
  Comma,        // ,
  Colon,        // :
  ColonColon,   // ::
  Period,       // .
  Arrow,        // ->
  PeriodStar,   // .*
  ArrowStar,    // ->*
  Amp,          // &
  AmpAmp,       // &&
  Pipe,         // |
  PipePipe,     // ||
  Caret,        // ^
  Tilde,        // ~
  Exclaim,      // !
  Plus,         // +
  Minus,        // -
  Star,         // *
  Slash,        // /
  Percent,      // %
  Equal,        // =
  EqualEqual,   // ==
  ExclaimEqual, // !=
  Less,         // <
  Greater,      // >
  LessEqual,    // <=
  GreaterEqual, // >=
  LessLess,     // <<
  GreaterGreater, // >>
  PlusEqual,    // +=
  MinusEqual,   // -=
  StarEqual,    // *=
  SlashEqual,   // /=
  PercentEqual, // %=
  PlusPlus,     // ++
  MinusMinus,   // --
  Question,     // ?
};

/// Returns a stable display name for \p Kind (e.g. "'::'" or "identifier").
const char *tokenKindName(TokenKind Kind);

/// A lexed token. Text points into the SourceManager's buffer.
struct Token {
  TokenKind Kind = TokenKind::Unknown;
  SourceLocation Loc;
  std::string_view Text;

  /// Decoded literal payloads (valid per Kind).
  long long IntValue = 0;
  double DoubleValue = 0.0;
  std::string StringValue; ///< For string/char literals, after unescaping.

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  bool isOneOf(TokenKind K1, TokenKind K2) const { return is(K1) || is(K2); }
  template <typename... Ts>
  bool isOneOf(TokenKind K1, TokenKind K2, Ts... Ks) const {
    return is(K1) || isOneOf(K2, Ks...);
  }
};

} // namespace dmm

#endif // DMM_LEXER_TOKEN_H
