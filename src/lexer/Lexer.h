//===-- lexer/Lexer.h - MiniC++ lexer ---------------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the MiniC++ subset. Produces a stream of Tokens;
/// comments and whitespace are skipped. Malformed literals are reported via
/// the DiagnosticsEngine and yield Unknown tokens, which the parser treats
/// as hard errors.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_LEXER_LEXER_H
#define DMM_LEXER_LEXER_H

#include "lexer/Token.h"

#include <string_view>
#include <vector>

namespace dmm {

class DiagnosticsEngine;
class SourceManager;

/// Converts one source buffer into tokens.
class Lexer {
public:
  /// \param FileID buffer to lex, previously registered with \p SM.
  Lexer(const SourceManager &SM, uint32_t FileID, DiagnosticsEngine &Diags);

  /// Lexes and returns the next token; returns EndOfFile forever at the end.
  Token lex();

  /// Lexes the whole buffer (convenience for tests). The trailing
  /// EndOfFile token is included.
  std::vector<Token> lexAll();

private:
  char peek(unsigned LookAhead = 0) const;
  char advance();
  bool match(char Expected);
  SourceLocation curLoc() const;
  void skipTrivia();

  Token makeToken(TokenKind Kind, uint32_t Begin);
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();
  /// Decodes an escape sequence after the backslash; returns the character.
  char lexEscape();

  const SourceManager &SM;
  DiagnosticsEngine &Diags;
  std::string_view Text;
  uint32_t FileID;
  uint32_t Pos = 0;
};

} // namespace dmm

#endif // DMM_LEXER_LEXER_H
