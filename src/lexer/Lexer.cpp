//===-- lexer/Lexer.cpp ---------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace dmm;

const char *dmm::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile: return "end of file";
  case TokenKind::Unknown: return "unknown token";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::DoubleLiteral: return "floating literal";
  case TokenKind::CharLiteral: return "character literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::KwClass: return "'class'";
  case TokenKind::KwStruct: return "'struct'";
  case TokenKind::KwUnion: return "'union'";
  case TokenKind::KwPublic: return "'public'";
  case TokenKind::KwPrivate: return "'private'";
  case TokenKind::KwProtected: return "'protected'";
  case TokenKind::KwVirtual: return "'virtual'";
  case TokenKind::KwVolatile: return "'volatile'";
  case TokenKind::KwConst: return "'const'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwBool: return "'bool'";
  case TokenKind::KwChar: return "'char'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwDelete: return "'delete'";
  case TokenKind::KwThis: return "'this'";
  case TokenKind::KwSizeof: return "'sizeof'";
  case TokenKind::KwStaticCast: return "'static_cast'";
  case TokenKind::KwReinterpretCast: return "'reinterpret_cast'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwNullptr: return "'nullptr'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Colon: return "':'";
  case TokenKind::ColonColon: return "'::'";
  case TokenKind::Period: return "'.'";
  case TokenKind::Arrow: return "'->'";
  case TokenKind::PeriodStar: return "'.*'";
  case TokenKind::ArrowStar: return "'->*'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::Exclaim: return "'!'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Equal: return "'='";
  case TokenKind::EqualEqual: return "'=='";
  case TokenKind::ExclaimEqual: return "'!='";
  case TokenKind::Less: return "'<'";
  case TokenKind::Greater: return "'>'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::GreaterEqual: return "'>='";
  case TokenKind::LessLess: return "'<<'";
  case TokenKind::GreaterGreater: return "'>>'";
  case TokenKind::PlusEqual: return "'+='";
  case TokenKind::MinusEqual: return "'-='";
  case TokenKind::StarEqual: return "'*='";
  case TokenKind::SlashEqual: return "'/='";
  case TokenKind::PercentEqual: return "'%='";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Question: return "'?'";
  }
  return "unknown token";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"class", TokenKind::KwClass},
      {"struct", TokenKind::KwStruct},
      {"union", TokenKind::KwUnion},
      {"public", TokenKind::KwPublic},
      {"private", TokenKind::KwPrivate},
      {"protected", TokenKind::KwProtected},
      {"virtual", TokenKind::KwVirtual},
      {"volatile", TokenKind::KwVolatile},
      {"const", TokenKind::KwConst},
      {"void", TokenKind::KwVoid},
      {"bool", TokenKind::KwBool},
      {"char", TokenKind::KwChar},
      {"int", TokenKind::KwInt},
      {"double", TokenKind::KwDouble},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"return", TokenKind::KwReturn},
      {"new", TokenKind::KwNew},
      {"delete", TokenKind::KwDelete},
      {"this", TokenKind::KwThis},
      {"sizeof", TokenKind::KwSizeof},
      {"static_cast", TokenKind::KwStaticCast},
      {"reinterpret_cast", TokenKind::KwReinterpretCast},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"nullptr", TokenKind::KwNullptr},
  };
  return Table;
}

Lexer::Lexer(const SourceManager &SM, uint32_t FileID,
             DiagnosticsEngine &Diags)
    : SM(SM), Diags(Diags), Text(SM.bufferText(FileID)), FileID(FileID) {}

char Lexer::peek(unsigned LookAhead) const {
  size_t Index = Pos + LookAhead;
  return Index < Text.size() ? Text[Index] : '\0';
}

char Lexer::advance() {
  assert(Pos < Text.size() && "advancing past end of buffer");
  return Text[Pos++];
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  ++Pos;
  return true;
}

SourceLocation Lexer::curLoc() const { return SourceLocation(FileID, Pos); }

void Lexer::skipTrivia() {
  while (Pos < Text.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Text.size() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t Start = Pos;
      Pos += 2;
      while (Pos < Text.size() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (Pos >= Text.size()) {
        Diags.error(SourceLocation(FileID, Start), "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, uint32_t Begin) {
  Token T;
  T.Kind = Kind;
  T.Loc = SourceLocation(FileID, Begin);
  T.Text = Text.substr(Begin, Pos - Begin);
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  uint32_t Begin = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    ++Pos;
  Token T = makeToken(TokenKind::Identifier, Begin);
  auto It = keywordTable().find(T.Text);
  if (It != keywordTable().end())
    T.Kind = It->second;
  return T;
}

Token Lexer::lexNumber() {
  uint32_t Begin = Pos;
  bool IsDouble = false;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    ++Pos; // consume '.'
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
  }
  if (peek() == 'e' || peek() == 'E') {
    unsigned Ahead = 1;
    if (peek(1) == '+' || peek(1) == '-')
      Ahead = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(Ahead)))) {
      IsDouble = true;
      Pos += Ahead;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
  }
  Token T = makeToken(IsDouble ? TokenKind::DoubleLiteral
                               : TokenKind::IntLiteral,
                      Begin);
  std::string Spelling(T.Text);
  if (IsDouble)
    T.DoubleValue = std::strtod(Spelling.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Spelling.c_str(), nullptr, 10);
  return T;
}

char Lexer::lexEscape() {
  if (Pos >= Text.size()) {
    Diags.error(curLoc(), "unterminated escape sequence");
    return '\0';
  }
  char C = advance();
  switch (C) {
  case 'n': return '\n';
  case 't': return '\t';
  case 'r': return '\r';
  case '0': return '\0';
  case '\\': return '\\';
  case '\'': return '\'';
  case '"': return '"';
  default:
    Diags.error(SourceLocation(FileID, Pos - 1),
                std::string("unknown escape sequence '\\") + C + "'");
    return C;
  }
}

Token Lexer::lexCharLiteral() {
  uint32_t Begin = Pos;
  ++Pos; // consume opening quote
  char Value = '\0';
  if (peek() == '\\') {
    ++Pos;
    Value = lexEscape();
  } else if (Pos < Text.size() && peek() != '\'') {
    Value = advance();
  } else {
    Diags.error(SourceLocation(FileID, Begin), "empty character literal");
  }
  if (!match('\'')) {
    Diags.error(SourceLocation(FileID, Begin),
                "unterminated character literal");
    return makeToken(TokenKind::Unknown, Begin);
  }
  Token T = makeToken(TokenKind::CharLiteral, Begin);
  T.IntValue = Value;
  T.StringValue.assign(1, Value);
  return T;
}

Token Lexer::lexStringLiteral() {
  uint32_t Begin = Pos;
  ++Pos; // consume opening quote
  std::string Value;
  while (Pos < Text.size() && peek() != '"' && peek() != '\n') {
    char C = advance();
    if (C == '\\')
      C = lexEscape();
    Value.push_back(C);
  }
  if (!match('"')) {
    Diags.error(SourceLocation(FileID, Begin), "unterminated string literal");
    return makeToken(TokenKind::Unknown, Begin);
  }
  Token T = makeToken(TokenKind::StringLiteral, Begin);
  T.StringValue = std::move(Value);
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  if (Pos >= Text.size())
    return makeToken(TokenKind::EndOfFile, Pos);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '\'')
    return lexCharLiteral();
  if (C == '"')
    return lexStringLiteral();

  uint32_t Begin = Pos;
  ++Pos;
  switch (C) {
  case '{': return makeToken(TokenKind::LBrace, Begin);
  case '}': return makeToken(TokenKind::RBrace, Begin);
  case '(': return makeToken(TokenKind::LParen, Begin);
  case ')': return makeToken(TokenKind::RParen, Begin);
  case '[': return makeToken(TokenKind::LBracket, Begin);
  case ']': return makeToken(TokenKind::RBracket, Begin);
  case ';': return makeToken(TokenKind::Semi, Begin);
  case ',': return makeToken(TokenKind::Comma, Begin);
  case '?': return makeToken(TokenKind::Question, Begin);
  case '~': return makeToken(TokenKind::Tilde, Begin);
  case ':':
    return makeToken(match(':') ? TokenKind::ColonColon : TokenKind::Colon,
                     Begin);
  case '.':
    return makeToken(match('*') ? TokenKind::PeriodStar : TokenKind::Period,
                     Begin);
  case '&':
    return makeToken(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Begin);
  case '|':
    return makeToken(match('|') ? TokenKind::PipePipe : TokenKind::Pipe,
                     Begin);
  case '^':
    return makeToken(TokenKind::Caret, Begin);
  case '!':
    return makeToken(match('=') ? TokenKind::ExclaimEqual : TokenKind::Exclaim,
                     Begin);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Begin);
    return makeToken(match('=') ? TokenKind::PlusEqual : TokenKind::Plus,
                     Begin);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Begin);
    if (match('>'))
      return makeToken(match('*') ? TokenKind::ArrowStar : TokenKind::Arrow,
                       Begin);
    return makeToken(match('=') ? TokenKind::MinusEqual : TokenKind::Minus,
                     Begin);
  case '*':
    return makeToken(match('=') ? TokenKind::StarEqual : TokenKind::Star,
                     Begin);
  case '/':
    return makeToken(match('=') ? TokenKind::SlashEqual : TokenKind::Slash,
                     Begin);
  case '%':
    return makeToken(match('=') ? TokenKind::PercentEqual : TokenKind::Percent,
                     Begin);
  case '=':
    return makeToken(match('=') ? TokenKind::EqualEqual : TokenKind::Equal,
                     Begin);
  case '<':
    if (match('<'))
      return makeToken(TokenKind::LessLess, Begin);
    return makeToken(match('=') ? TokenKind::LessEqual : TokenKind::Less,
                     Begin);
  case '>':
    if (match('>'))
      return makeToken(TokenKind::GreaterGreater, Begin);
    return makeToken(match('=') ? TokenKind::GreaterEqual : TokenKind::Greater,
                     Begin);
  default:
    Diags.error(SourceLocation(FileID, Begin),
                std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Begin);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = lex();
    Tokens.push_back(T);
    if (T.is(TokenKind::EndOfFile))
      return Tokens;
  }
}
