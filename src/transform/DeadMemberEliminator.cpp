//===-- transform/DeadMemberEliminator.cpp --------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "transform/DeadMemberEliminator.h"

#include "ast/ASTWalker.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <map>

using namespace dmm;

namespace {

/// True when evaluating \p E has no side effects and cannot abort
/// (conservative: calls, allocation, assignment, increments, division,
/// and remainder are impure — the last two so that a division-by-zero
/// fault is never optimized away).
bool isPure(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::DoubleLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::CharLiteral:
  case Expr::Kind::StringLiteral:
  case Expr::Kind::NullptrLiteral:
  case Expr::Kind::DeclRef:
  case Expr::Kind::This:
  case Expr::Kind::MemberPointerConstant:
  case Expr::Kind::Sizeof:
    return true;
  case Expr::Kind::Call:
  case Expr::Kind::New:
  case Expr::Kind::Delete:
  case Expr::Kind::Assign:
    return false;
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->isIncDec())
      return false;
    return isPure(UE->sub());
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    if (BE->op() == BinaryOpKind::Div || BE->op() == BinaryOpKind::Rem)
      return false;
    return isPure(BE->lhs()) && isPure(BE->rhs());
  }
  default: {
    bool Pure = true;
    forEachChildExpr(E, [&](const Expr *Child) { Pure &= isPure(Child); });
    return Pure;
  }
  }
}

/// The dead field directly accessed by \p E (MemberExpr or implicit-this
/// DeclRef), if any.
const FieldDecl *fieldAccess(const Expr *E) {
  if (const auto *ME = dyn_cast<MemberExpr>(E))
    return dyn_cast_or_null<FieldDecl>(ME->member());
  if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
    return dyn_cast_or_null<FieldDecl>(DRE->referent());
  return nullptr;
}

const Expr *stripCasts(const Expr *E) {
  while (const auto *CE = dyn_cast<CastExpr>(E))
    E = CE->sub();
  return E;
}

/// Decides, for every statement in kept code, whether a dead-member
/// occurrence can be transformed away; fields with untransformable
/// occurrences are demoted to "kept".
class RemovalPlanner {
public:
  RemovalPlanner(const ASTContext &Ctx, const DeadMemberResult &Result,
                 const CallGraph &Graph, const EliminationFault &Fault)
      : Ctx(Ctx), Result(Result), Graph(Graph), Fault(Fault) {}

  void plan() {
    // Unreachable non-builtin function bodies are stripped (their
    // declarations remain, so nothing statically referenced dangles).
    for (const FunctionDecl *FD : Ctx.functions())
      if (!FD->isBuiltin() && FD->isDefined() && !Graph.isReachable(FD))
        RemovedFunctions.insert(FD);

    for (const FunctionDecl *FD : Ctx.functions()) {
      if (RemovedFunctions.count(FD) || FD->isBuiltin())
        continue;
      planFunction(FD);
    }
    for (const VarDecl *GV : Ctx.globals()) {
      if (const Expr *Init = GV->init())
        noteResidualOccurrences(Init);
      for (const Expr *Arg : GV->ctorArgs())
        noteResidualOccurrences(Arg);
    }

    // Demote: anything with a blocked occurrence stays; its planned
    // statement rewrites are cancelled at print time by checking
    // membership in Removed.
    for (const FieldDecl *F : Result.deadMembers())
      if (!Blocked.count(F))
        Removed.insert(F);
  }

  const std::set<const FieldDecl *> &removed() const { return Removed; }
  const std::set<const FieldDecl *> &blocked() const { return Blocked; }
  const std::set<const FunctionDecl *> &removedFunctions() const {
    return RemovedFunctions;
  }
  /// A planned statement rewrite. Unforced plans apply only when their
  /// field is actually removed; forced plans (fault injection) apply
  /// unconditionally.
  struct StmtPlan {
    const FieldDecl *Field = nullptr;
    SourcePrinter::StmtAction Action = SourcePrinter::StmtAction::Keep;
    bool Forced = false;
    bool Dealloc = false; ///< The dropped stmt is a delete/free.
  };

  const std::map<const Stmt *, StmtPlan> &stmtPlans() const {
    return StmtPlans;
  }
  /// Ctor initializers droppable when their field is removed.
  const std::set<const CtorInitializer *> &droppableInits() const {
    return DroppableInits;
  }

private:
  void planFunction(const FunctionDecl *FD) {
    if (const auto *Ctor = dyn_cast<ConstructorDecl>(FD)) {
      for (const CtorInitializer &Init : Ctor->initializers()) {
        if (Init.Field && Result.isDead(Init.Field)) {
          bool ArgsPure = true;
          for (const Expr *Arg : Init.Args)
            ArgsPure &= isPure(Arg);
          if (ArgsPure) {
            DroppableInits.insert(&Init);
            continue;
          }
          Blocked.insert(Init.Field);
        }
        for (const Expr *Arg : Init.Args)
          noteResidualOccurrences(Arg);
      }
    }
    if (!FD->body())
      return;
    forEachStmtPreorder(FD->body(),
                        [&](const Stmt *S) { planStmt(S); });
  }

  void planStmt(const Stmt *S) {
    const auto *ES = dyn_cast<ExprStmt>(S);
    if (!ES) {
      forEachDirectExpr(S, [&](const Expr *E) {
        noteResidualOccurrences(E);
      });
      return;
    }
    const Expr *E = ES->expr();

    // `target = rhs;` where target is a dead member (or, under fault
    // injection, any member at all).
    if (const auto *AE = dyn_cast<AssignExpr>(E)) {
      const FieldDecl *F = fieldAccess(AE->lhs());
      bool Forced = F && Fault.DropLiveMemberStores && !Result.isDead(F);
      if (F && (Result.isDead(F) || Forced) && !AE->isCompound()) {
        const Expr *Base =
            isa<MemberExpr>(AE->lhs()) ? cast<MemberExpr>(AE->lhs())->base()
                                       : nullptr;
        bool BasePure = !Base || isPure(Base);
        if (BasePure && isPure(AE->rhs())) {
          StmtPlans[S] = {F, SourcePrinter::StmtAction::Drop, Forced};
        } else if (BasePure) {
          StmtPlans[S] = {F, SourcePrinter::StmtAction::RhsOnly, Forced};
          noteResidualOccurrences(AE->rhs());
        } else if (Forced) {
          noteResidualOccurrences(E);
          return;
        } else {
          Blocked.insert(F);
          noteResidualOccurrences(E);
          return;
        }
        // The dropped side may still mention other dead members
        // (e.g. `a.dead1 = a.dead2 ... ` cannot happen for reads, but
        // the base chain may contain live members only). Scan the base
        // for residual occurrences of *other* dead members.
        if (Base)
          noteResidualOccurrencesExcept(Base, nullptr);
        return;
      }
    }

    // `delete m;` / `free(m);` where m is a dead member.
    const Expr *DeallocArg = nullptr;
    if (const auto *DE = dyn_cast<DeleteExpr>(E)) {
      DeallocArg = DE->sub();
    } else if (const auto *Call = dyn_cast<CallExpr>(E)) {
      if (Call->directCallee() &&
          Call->directCallee()->builtinKind() == BuiltinKind::Free &&
          Call->args().size() == 1)
        DeallocArg = Call->args()[0];
    }
    if (DeallocArg) {
      const Expr *Stripped = stripCasts(DeallocArg);
      const FieldDecl *F = fieldAccess(Stripped);
      if (F && Result.isDead(F)) {
        const Expr *Base = isa<MemberExpr>(Stripped)
                               ? cast<MemberExpr>(Stripped)->base()
                               : nullptr;
        if (!Base || isPure(Base)) {
          StmtPlans[S] = {F, SourcePrinter::StmtAction::Drop, false,
                          /*Dealloc=*/true};
          if (Base)
            noteResidualOccurrencesExcept(Base, nullptr);
          return;
        }
        Blocked.insert(F);
      }
    }

    noteResidualOccurrences(E);
  }

  /// Any remaining mention of a dead member outside an approved rewrite
  /// position blocks its removal.
  void noteResidualOccurrences(const Expr *Root) {
    noteResidualOccurrencesExcept(Root, nullptr);
  }

  void noteResidualOccurrencesExcept(const Expr *Root,
                                     const Expr *Skipped) {
    forEachExprPreorder(Root, [&](const Expr *E) {
      if (E == Skipped)
        return;
      if (const FieldDecl *F = fieldAccess(E))
        if (Result.isDead(F))
          Blocked.insert(F);
      if (const auto *MPC = dyn_cast<MemberPointerConstantExpr>(E))
        if (MPC->member() && Result.isDead(MPC->member()))
          Blocked.insert(MPC->member());
    });
  }

  const ASTContext &Ctx;
  const DeadMemberResult &Result;
  const CallGraph &Graph;
  const EliminationFault &Fault;

  std::set<const FieldDecl *> Removed;
  std::set<const FieldDecl *> Blocked;
  std::set<const FunctionDecl *> RemovedFunctions;
  std::map<const Stmt *, StmtPlan> StmtPlans;
  std::set<const CtorInitializer *> DroppableInits;
};

/// The printer that applies a removal plan.
class EliminatingPrinter : public SourcePrinter {
public:
  explicit EliminatingPrinter(const RemovalPlanner &Plan) : Plan(Plan) {}

protected:
  bool keepField(const FieldDecl *F) override {
    return !Plan.removed().count(F);
  }
  bool keepBody(const FunctionDecl *FD) override {
    // Unreachable bodies are stripped; declarations stay so that static
    // references (virtual dispatch heads, prototypes) still resolve.
    return !Plan.removedFunctions().count(FD);
  }
  bool keepCtorInit(const ConstructorDecl *Ctor,
                    const CtorInitializer &Init) override {
    (void)Ctor;
    if (!Plan.droppableInits().count(&Init))
      return true;
    return !Plan.removed().count(Init.Field);
  }
  StmtAction actOnStmt(const Stmt *S) override {
    auto It = Plan.stmtPlans().find(S);
    if (It == Plan.stmtPlans().end())
      return StmtAction::Keep;
    // The rewrite only applies when the member is actually removed —
    // unless the plan is a forced fault injection.
    if (!It->second.Forced && !Plan.removed().count(It->second.Field))
      return StmtAction::Keep;
    return It->second.Action;
  }

private:
  const RemovalPlanner &Plan;
};

} // namespace

EliminationResult dmm::eliminateDeadMembers(const ASTContext &Ctx,
                                            const DeadMemberResult &Result,
                                            const CallGraph &Graph,
                                            const EliminationFault &Fault) {
  Span Timer("eliminate");
  RemovalPlanner Planner(Ctx, Result, Graph, Fault);
  Planner.plan();

  EliminatingPrinter Printer(Planner);
  EliminationResult Out;
  Out.Source = Printer.print(Ctx);
  Out.Removed = Planner.removed();
  for (const FieldDecl *F : Result.deadMembers())
    if (!Out.Removed.count(F))
      Out.Kept.insert(F);
  Out.RemovedFunctions = Planner.removedFunctions();
  Telemetry::count("eliminate.removed_members", Out.Removed.size());
  Telemetry::count("eliminate.kept_members", Out.Kept.size());
  Telemetry::count("eliminate.removed_functions",
                   Out.RemovedFunctions.size());

  // Plan-kind tallies (the fuzzer's boundary-coverage map reads these;
  // fuzz/Coverage.h). Only plans that actually apply count — a plan
  // whose field stayed blocked is cancelled at print time. Emitted
  // only when nonzero so quiet runs keep their metrics tables stable.
  uint64_t DropStores = 0, RhsOnly = 0, DropDeallocs = 0;
  for (const auto &[S, Plan] : Planner.stmtPlans()) {
    if (!Plan.Forced && !Out.Removed.count(Plan.Field))
      continue;
    if (Plan.Action == SourcePrinter::StmtAction::Drop)
      ++(Plan.Dealloc ? DropDeallocs : DropStores);
    else if (Plan.Action == SourcePrinter::StmtAction::RhsOnly)
      ++RhsOnly;
  }
  uint64_t InitDrops = 0;
  for (const CtorInitializer *Init : Planner.droppableInits())
    InitDrops += Out.Removed.count(Init->Field) ? 1 : 0;
  if (DropStores)
    Telemetry::count("eliminate.plan.drop_store", DropStores);
  if (RhsOnly)
    Telemetry::count("eliminate.plan.rhs_only", RhsOnly);
  if (DropDeallocs)
    Telemetry::count("eliminate.plan.drop_dealloc", DropDeallocs);
  if (InitDrops)
    Telemetry::count("eliminate.plan.init_drop", InitDrops);
  if (!Planner.blocked().empty())
    Telemetry::count("eliminate.plan.blocked", Planner.blocked().size());
  logDebug("elimination plan applied",
           {kv("removed", Out.Removed.size()), kv("kept", Out.Kept.size()),
            kv("removed_functions", Out.RemovedFunctions.size()),
            kv("blocked", Planner.blocked().size())});
  return Out;
}
