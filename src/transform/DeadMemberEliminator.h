//===-- transform/DeadMemberEliminator.h - The space optimization -*- C++ -*-=//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimization the paper motivates ("Elimination of unused data
/// members ... reduces the amount of memory consumed by an application",
/// §1) realized as a source-to-source pass, in the spirit of the class
/// hierarchy slicing work the paper grew out of (§5, refs [22, 23]):
///
///  1. unreachable functions and methods are removed (the companion
///     "unused methods" optimization of refs [5, 19] — and a
///     prerequisite, since dead members may still be *read* inside
///     unreachable code);
///  2. constructor initializers of removable dead members are dropped;
///  3. assignment statements targeting removable dead members are
///     dropped when both sides are side-effect free, or reduced to
///     their right-hand side when only the target is pure;
///  4. `delete m;` / `free(m);` statements over removable dead members
///     are dropped (deallocation is unobservable; the pointee, if any,
///     leaks — exactly the trade the paper's footnote licenses);
///  5. finally the member declarations themselves are removed.
///
/// A dead member whose remaining occurrence cannot be proven removable
/// (e.g. a write whose evaluation has side effects that cannot be
/// preserved in statement position) is conservatively *kept*; the
/// transformation is behaviour-preserving by construction, which the
/// property tests verify by executing both programs and comparing
/// observable output.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_TRANSFORM_DEADMEMBERELIMINATOR_H
#define DMM_TRANSFORM_DEADMEMBERELIMINATOR_H

#include "analysis/DeadMemberAnalysis.h"
#include "ast/SourcePrinter.h"
#include "callgraph/CallGraph.h"

#include <set>
#include <string>

namespace dmm {

/// Result of the elimination pass.
struct EliminationResult {
  std::string Source; ///< The transformed program text.
  /// Dead members actually removed.
  std::set<const FieldDecl *> Removed;
  /// Dead members kept because an occurrence was not provably
  /// removable.
  std::set<const FieldDecl *> Kept;
  /// Unreachable functions removed.
  std::set<const FunctionDecl *> RemovedFunctions;
};

/// Deliberate defect injection for the fuzzing harness' self-validation
/// (src/fuzz, docs/TESTING.md): `dmm-fuzz --inject-fault=...` uses this
/// to confirm that the differential-semantics oracle detects a buggy
/// transformation and that the shrinker can minimize the witness.
/// Production callers never set these.
struct EliminationFault {
  /// Drop (or reduce to their RHS) assignment statements whose target
  /// is a *live* member, wherever the rewrite is syntactically
  /// possible — as if the analysis had classified every member dead.
  /// Observable behaviour changes for almost every program that reads
  /// a member it wrote.
  bool DropLiveMemberStores = false;
};

/// Produces a transformed copy of the program with dead members (per
/// \p Result) and unreachable functions (per \p Graph) removed.
EliminationResult eliminateDeadMembers(const ASTContext &Ctx,
                                       const DeadMemberResult &Result,
                                       const CallGraph &Graph,
                                       const EliminationFault &Fault = {});

} // namespace dmm

#endif // DMM_TRANSFORM_DEADMEMBERELIMINATOR_H
