//===-- interp/Interpreter.cpp --------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Error handling note: guest runtime errors (null dereference, step-limit
// exhaustion, division by zero, ...) unwind through the evaluator via a
// single internal exception type caught in run(). This keeps the ~40
// evaluation paths free of error plumbing; the exception never escapes
// this translation unit.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ast/Expr.h"
#include "ast/Stmt.h"
#include "profiler/ShadowProfiler.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

using namespace dmm;

struct Interpreter::RuntimeError {
  std::string Message;
};

struct Interpreter::Flow {
  enum class FK { Normal, Return, Break, Continue };
  FK Kind = FK::Normal;
  Value Ret;

  static Flow normal() { return Flow(); }
  static Flow ret(Value V) {
    Flow F;
    F.Kind = FK::Return;
    F.Ret = V;
    return F;
  }
};

struct Interpreter::Frame {
  const FunctionDecl *Fn = nullptr;
  Storage *This = nullptr;
  /// Non-null while running a constructor or destructor of this class:
  /// virtual dispatch on the object under construction resolves against
  /// it, as in C++.
  const ClassDecl *DispatchClass = nullptr;
  std::unordered_map<const VarDecl *, Storage *> Locals;
};

Interpreter::Interpreter(const ASTContext &Ctx, const ClassHierarchy &CH,
                         InterpOptions Options)
    : Ctx(Ctx), CH(CH), Options(Options), Layout(CH) {}

Interpreter::~Interpreter() = default;

void Interpreter::step() {
  if (++Steps > Options.MaxSteps)
    fail("step limit exceeded");
}

void Interpreter::fail(const std::string &Message) {
  throw RuntimeError{Message};
}

//===----------------------------------------------------------------------===//
// Storage construction
//===----------------------------------------------------------------------===//

/// The zero value of a declared type.
static Value zeroValue(const Type *Ty) {
  if (Ty->isPointer()) {
    if (isa<FunctionType>(cast<PointerType>(Ty)->pointee()))
      return Value::ofFn(nullptr);
    return Value::nullPtr();
  }
  if (Ty->isMemberPointer())
    return Value::ofMemberPtr(nullptr);
  if (const auto *BT = dyn_cast<BuiltinType>(Ty)) {
    switch (BT->builtinKind()) {
    case BuiltinType::BK::Double:
      return Value::ofDouble(0.0);
    case BuiltinType::BK::Bool:
      return Value::ofBool(false);
    case BuiltinType::BK::Char:
      return Value::ofChar(0);
    case BuiltinType::BK::NullPtr:
      return Value::nullPtr();
    default:
      return Value::ofInt(0);
    }
  }
  return Value::ofInt(0);
}

Storage *Interpreter::allocateFieldStorage(const FieldDecl *F,
                                           uint64_t ObjectID) {
  const Type *Ty = F->type();
  if (const ClassDecl *CD = Ty->asClassDecl()) {
    Storage *S = allocateObject(CD, F, ObjectID);
    return S;
  }
  if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
    Storage *Arr = Arena.createArray(AT->element(), F);
    Arr->ObjectID = ObjectID;
    for (uint64_t I = 0; I != AT->size(); ++I) {
      if (const ClassDecl *Elem = AT->element()->asClassDecl()) {
        Arr->Elems.push_back(allocateObject(Elem, F, ObjectID));
      } else {
        Storage *S = Arena.createScalar(F);
        S->V = zeroValue(AT->element());
        S->ObjectID = ObjectID;
        Arr->Elems.push_back(S);
      }
    }
    return Arr;
  }
  Storage *S = Arena.createScalar(F);
  S->V = zeroValue(Ty);
  S->ObjectID = ObjectID;
  return S;
}

Storage *Interpreter::allocateObject(const ClassDecl *CD,
                                     const FieldDecl *Owner,
                                     uint64_t ObjectID) {
  if (!CD->isComplete())
    fail("cannot create object of incomplete class '" + CD->name() + "'");
  if (!Owner)
    ++NumCompleteObjects;
  Storage *Obj = Arena.createObject(CD, Owner);
  Obj->ObjectID = ObjectID;
  for (const FieldSlot &Slot : Layout.layout(CD).AllFields) {
    if (Obj->Fields.count(Slot.Field))
      continue; // Repeated non-virtual base: share the first subobject.
    Obj->Fields[Slot.Field] = allocateFieldStorage(Slot.Field, ObjectID);
  }
  return Obj;
}

uint64_t Interpreter::traceAlloc(const ClassDecl *CD, uint64_t Count) {
  if (!Options.Trace)
    return 0;
  uint64_t Bytes = Count * Layout.layout(CD).CompleteSize;
  return Options.Trace->recordAlloc(CD, Count, Bytes);
}

void Interpreter::traceFree(Storage *Obj) {
  if (!Options.Trace)
    return;
  auto It = TraceIDs.find(Obj);
  if (It == TraceIDs.end())
    return;
  Options.Trace->recordFree(It->second);
  TraceIDs.erase(It);
}

//===----------------------------------------------------------------------===//
// Construction / destruction
//===----------------------------------------------------------------------===//

static ConstructorDecl *arityCtor(const ClassDecl *CD, size_t Arity) {
  for (ConstructorDecl *C : CD->constructors())
    if (C->params().size() == Arity)
      return C;
  return nullptr;
}

void Interpreter::defaultConstructBasesAndMembers(Storage *Obj,
                                                  const ClassDecl *CD,
                                                  bool MostDerived) {
  if (MostDerived)
    for (const ClassDecl *VB : CH.virtualBases(CD))
      construct(Obj, VB, arityCtor(VB, 0), {}, /*MostDerived=*/false);
  for (const BaseSpecifier &BS : CD->bases())
    if (!BS.IsVirtual)
      construct(Obj, BS.Base, arityCtor(BS.Base, 0), {},
                /*MostDerived=*/false);
  for (const FieldDecl *F : CD->fields()) {
    Storage *FS = Obj->Fields.at(F);
    if (const ClassDecl *Member = F->type()->asClassDecl()) {
      construct(FS, Member, arityCtor(Member, 0), {}, /*MostDerived=*/true);
      continue;
    }
    if (const auto *AT = dyn_cast<ArrayType>(F->type()))
      if (const ClassDecl *Elem = AT->element()->asClassDecl())
        for (Storage *ES : FS->Elems)
          construct(ES, Elem, arityCtor(Elem, 0), {}, /*MostDerived=*/true);
  }
}

void Interpreter::construct(Storage *Obj, const ClassDecl *CD,
                            const ConstructorDecl *Ctor,
                            std::vector<Value> Args, bool MostDerived) {
  step();
  if (!Ctor) {
    // Implicit default construction: bases and members only.
    defaultConstructBasesAndMembers(Obj, CD, MostDerived);
    return;
  }

  Frame F;
  F.Fn = Ctor;
  F.This = Obj;
  F.DispatchClass = CD;
  if (Args.size() != Ctor->params().size())
    fail("constructor argument count mismatch for '" + CD->name() + "'");
  for (size_t I = 0; I != Args.size(); ++I) {
    const ParamDecl *P = Ctor->params()[I];
    if (P->type()->isReference()) {
      if (Args[I].Kind != Value::VK::Ptr || Args[I].Ptr.isNull())
        fail("reference parameter bound to non-lvalue");
      F.Locals[P] = Args[I].Ptr.Pointee;
      continue;
    }
    Storage *PS = Arena.createScalar();
    PS->V = convertForStore(Args[I], P->type());
    F.Locals[P] = PS;
  }
  Stack.push_back(std::move(F));

  auto FindInit = [&](auto Pred) -> const CtorInitializer * {
    for (const CtorInitializer &Init : Ctor->initializers())
      if (Pred(Init))
        return &Init;
    return nullptr;
  };
  auto EvalArgs = [&](const CtorInitializer &Init) {
    std::vector<Value> Vals;
    const ConstructorDecl *Target = Init.TargetCtor;
    for (size_t I = 0; I != Init.Args.size(); ++I) {
      const Expr *Arg = Init.Args[I];
      bool ByRef = Target && I < Target->params().size() &&
                   Target->params()[I]->type()->isReference();
      if (ByRef)
        Vals.push_back(Value::ofPtr({evalLValue(Arg)}));
      else
        Vals.push_back(evalRValue(Arg));
    }
    return Vals;
  };

  // Virtual bases (most-derived object only), then direct non-virtual
  // bases, then members, as in C++.
  if (MostDerived) {
    for (const ClassDecl *VB : CH.virtualBases(CD)) {
      const CtorInitializer *Init = FindInit(
          [&](const CtorInitializer &I) { return I.Base == VB; });
      if (Init)
        construct(Obj, VB, Init->TargetCtor, EvalArgs(*Init), false);
      else
        construct(Obj, VB, arityCtor(VB, 0), {}, false);
    }
  }
  for (const BaseSpecifier &BS : CD->bases()) {
    if (BS.IsVirtual)
      continue;
    const CtorInitializer *Init = FindInit(
        [&](const CtorInitializer &I) { return I.Base == BS.Base; });
    if (Init)
      construct(Obj, BS.Base, Init->TargetCtor, EvalArgs(*Init), false);
    else
      construct(Obj, BS.Base, arityCtor(BS.Base, 0), {}, false);
  }
  for (const FieldDecl *Field : CD->fields()) {
    Storage *FS = Obj->Fields.at(Field);
    const CtorInitializer *Init = FindInit(
        [&](const CtorInitializer &I) { return I.Field == Field; });
    if (const ClassDecl *Member = Field->type()->asClassDecl()) {
      if (Init)
        construct(FS, Member, Init->TargetCtor, EvalArgs(*Init), true);
      else
        construct(FS, Member, arityCtor(Member, 0), {}, true);
      continue;
    }
    if (const auto *AT = dyn_cast<ArrayType>(Field->type())) {
      if (const ClassDecl *Elem = AT->element()->asClassDecl())
        for (Storage *ES : FS->Elems)
          construct(ES, Elem, arityCtor(Elem, 0), {}, true);
      continue;
    }
    if (Init && !Init->Args.empty())
      storeScalar(FS, evalRValue(Init->Args[0]), Field->type());
  }

  if (Ctor->body())
    execCompound(Ctor->body());
  Stack.pop_back();
}

void Interpreter::destroy(Storage *Obj, const ClassDecl *CD,
                          bool MostDerived) {
  step();
  if (DestructorDecl *Dtor = CD->destructor()) {
    if (Dtor->body()) {
      Frame F;
      F.Fn = Dtor;
      F.This = Obj;
      F.DispatchClass = CD;
      Stack.push_back(std::move(F));
      execCompound(Dtor->body());
      Stack.pop_back();
    }
  }
  // Members in reverse declaration order.
  const auto &Fields = CD->fields();
  for (auto It = Fields.rbegin(), E = Fields.rend(); It != E; ++It) {
    const FieldDecl *Field = *It;
    Storage *FS = Obj->Fields.at(Field);
    if (const ClassDecl *Member = Field->type()->asClassDecl()) {
      destroy(FS, Member, true);
      continue;
    }
    if (const auto *AT = dyn_cast<ArrayType>(Field->type()))
      if (const ClassDecl *Elem = AT->element()->asClassDecl())
        for (auto EIt = FS->Elems.rbegin(); EIt != FS->Elems.rend(); ++EIt)
          destroy(*EIt, Elem, true);
  }
  // Bases in reverse order.
  const auto &Bases = CD->bases();
  for (auto It = Bases.rbegin(), E = Bases.rend(); It != E; ++It)
    if (!It->IsVirtual)
      destroy(Obj, It->Base, false);
  if (MostDerived) {
    auto VBs = CH.virtualBases(CD);
    for (auto It = VBs.rbegin(), E = VBs.rend(); It != E; ++It)
      destroy(Obj, *It, false);
  }
}

/// Marks a storage tree dead so later reads/writes are diagnosed as
/// use-after-free.
static void markDeadRecursive(Storage *S) {
  S->Alive = false;
  for (auto &[Field, FS] : S->Fields)
    markDeadRecursive(FS);
  for (Storage *ES : S->Elems)
    markDeadRecursive(ES);
}

void Interpreter::destroyCompleteObject(Storage *Obj) {
  if (!Obj->Alive)
    fail("double destruction of object");
  if (Obj->Kind == Storage::SK::Object) {
    destroy(Obj, Obj->Class, /*MostDerived=*/true);
  } else if (Obj->Kind == Storage::SK::Array) {
    if (const ClassDecl *Elem = Obj->ElemType->asClassDecl())
      for (auto It = Obj->Elems.rbegin(); It != Obj->Elems.rend(); ++It)
        destroy(*It, Elem, /*MostDerived=*/true);
  }
  traceFree(Obj);
  if (Options.Profiler)
    Options.Profiler->recordFree(Obj->ObjectID);
  markDeadRecursive(Obj);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

Value Interpreter::callBuiltin(const FunctionDecl *FD,
                               std::vector<Value> &Args) {
  char Buf[64];
  switch (FD->builtinKind()) {
  case BuiltinKind::PrintInt:
    std::snprintf(Buf, sizeof(Buf), "%lld", Args[0].asInt());
    Output += Buf;
    Output += '\n';
    return Value::unit();
  case BuiltinKind::PrintChar:
    Output += static_cast<char>(Args[0].asInt());
    return Value::unit();
  case BuiltinKind::PrintDouble:
    std::snprintf(Buf, sizeof(Buf), "%g", Args[0].asDouble());
    Output += Buf;
    Output += '\n';
    return Value::unit();
  case BuiltinKind::PrintBool:
    Output += Args[0].asBool() ? "true" : "false";
    Output += '\n';
    return Value::unit();
  case BuiltinKind::PrintStr: {
    Pointer P = Args[0].Ptr;
    if (!P.Array) {
      if (P.Pointee && P.Pointee->Kind == Storage::SK::Scalar)
        Output += static_cast<char>(loadScalar(P.Pointee).asInt());
      return Value::unit();
    }
    for (size_t I = static_cast<size_t>(P.Index); I < P.Array->Elems.size();
         ++I) {
      char C = static_cast<char>(loadScalar(P.Array->Elems[I]).asInt());
      if (C == 0)
        break;
      Output += C;
    }
    return Value::unit();
  }
  case BuiltinKind::Free: {
    Pointer P = Args[0].Ptr;
    if (P.isNull())
      return Value::unit();
    Storage *S = P.Array ? P.Array : P.Pointee;
    traceFree(S);
    if (Options.Profiler)
      Options.Profiler->recordFree(S->ObjectID);
    markDeadRecursive(S); // No destructors run, as with C free().
    return Value::unit();
  }
  case BuiltinKind::None:
    break;
  }
  fail("call to undefined function '" + FD->name() + "'");
}

Value Interpreter::callFunction(const FunctionDecl *FD, Storage *This,
                                std::vector<Value> Args,
                                const ClassDecl *DispatchClass) {
  step();
  ++NumCalls;
  // Keep the guest stack well below the host stack even when host
  // frames are inflated (sanitizer builds).
  if (Stack.size() > 1024)
    fail("interpreter stack overflow (recursion too deep)");
  if (FD->isBuiltin())
    return callBuiltin(FD, Args);
  if (!FD->isDefined())
    fail("call to undefined function '" + FD->qualifiedName() + "'");

  Frame F;
  F.Fn = FD;
  F.This = This;
  F.DispatchClass = DispatchClass;
  if (Args.size() != FD->params().size())
    fail("argument count mismatch calling '" + FD->qualifiedName() + "'");
  for (size_t I = 0; I != Args.size(); ++I) {
    const ParamDecl *P = FD->params()[I];
    if (P->type()->isReference()) {
      if (Args[I].Kind != Value::VK::Ptr || Args[I].Ptr.isNull())
        fail("reference parameter bound to non-lvalue");
      F.Locals[P] = Args[I].Ptr.Pointee;
      continue;
    }
    if (P->type()->asClassDecl()) {
      // By-value class parameter: bind to the argument object directly
      // (memberwise copy semantics are approximated by sharing; MiniC++
      // programs intended for measurement pass classes by pointer or
      // reference).
      if (Args[I].Kind != Value::VK::Ptr || Args[I].Ptr.isNull())
        fail("class argument is not an object");
      F.Locals[P] = Args[I].Ptr.Pointee;
      continue;
    }
    Storage *PS = Arena.createScalar();
    PS->V = convertForStore(Args[I], P->type());
    F.Locals[P] = PS;
  }
  Stack.push_back(std::move(F));
  Flow Result = execCompound(FD->body());
  Stack.pop_back();
  if (Result.Kind == Flow::FK::Return)
    return Result.Ret;
  return Value::unit();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Interpreter::Flow Interpreter::execCompound(const CompoundStmt *CS) {
  std::vector<Storage *> BlockObjects;
  Flow Result = Flow::normal();
  for (const Stmt *S : CS->stmts()) {
    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *V : DS->vars())
        execVarDecl(V, BlockObjects);
      continue;
    }
    Result = execStmt(S);
    if (Result.Kind != Flow::FK::Normal)
      break;
  }
  for (auto It = BlockObjects.rbegin(); It != BlockObjects.rend(); ++It)
    destroyCompleteObject(*It);
  return Result;
}

void Interpreter::execVarDecl(const VarDecl *V,
                              std::vector<Storage *> &BlockObjects) {
  step();
  Frame &F = Stack.back();
  const Type *Ty = V->type();

  if (Ty->isReference()) {
    if (!V->init())
      fail("reference variable '" + V->name() + "' lacks an initializer");
    F.Locals[V] = evalLValue(V->init());
    return;
  }

  if (const ClassDecl *CD = Ty->asClassDecl()) {
    uint64_t ID = NextObjectID++;
    Storage *Obj = allocateObject(CD, nullptr, ID);
    if (Options.TraceStackObjects) {
      if (Options.Profiler)
        Options.Profiler->registerObjects(CD, 1, ID, V->location());
      if (uint64_t TID = traceAlloc(CD, 1))
        TraceIDs[Obj] = TID;
      if (Options.Profiler)
        Options.Profiler->recordAllocEvent(ID);
    }
    F.Locals[V] = Obj;
    if (V->init()) {
      // Copy-initialization: memberwise copy from the source object.
      Value Src = evalRValue(V->init());
      if (Src.Kind == Value::VK::Ptr && !Src.Ptr.isNull()) {
        struct Copier {
          Interpreter &I;
          void copy(Storage *Dst, Storage *SrcS) {
            if (Dst->Kind == Storage::SK::Scalar &&
                SrcS->Kind == Storage::SK::Scalar) {
              if (Dst->OwnerField && I.Options.Profiler)
                I.Options.Profiler->recordWrite(Dst->ObjectID,
                                                Dst->OwnerField);
              Dst->V = I.loadScalar(SrcS);
              return;
            }
            if (Dst->Kind == Storage::SK::Object)
              for (auto &[Field, FS] : Dst->Fields)
                if (SrcS->Fields.count(Field))
                  copy(FS, SrcS->Fields.at(Field));
            if (Dst->Kind == Storage::SK::Array)
              for (size_t E = 0;
                   E < Dst->Elems.size() && E < SrcS->Elems.size(); ++E)
                copy(Dst->Elems[E], SrcS->Elems[E]);
          }
        };
        Copier{*this}.copy(Obj, Src.Ptr.Pointee);
      }
    } else {
      std::vector<Value> Args;
      const ConstructorDecl *Ctor = V->ctor();
      for (size_t I = 0; I != V->ctorArgs().size(); ++I) {
        bool ByRef = Ctor && I < Ctor->params().size() &&
                     Ctor->params()[I]->type()->isReference();
        if (ByRef)
          Args.push_back(Value::ofPtr({evalLValue(V->ctorArgs()[I])}));
        else
          Args.push_back(evalRValue(V->ctorArgs()[I]));
      }
      construct(Obj, CD, Ctor, std::move(Args), /*MostDerived=*/true);
    }
    BlockObjects.push_back(Obj);
    return;
  }

  if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
    Storage *Arr = Arena.createArray(AT->element(), nullptr);
    // Each array element is a complete object of its own: reserve one
    // ID per element so the shadow profiler can track them separately.
    uint64_t ID = NextObjectID;
    NextObjectID += std::max<uint64_t>(AT->size(), 1);
    Arr->ObjectID = ID;
    const ClassDecl *Elem = AT->element()->asClassDecl();
    if (Elem && Options.TraceStackObjects && Options.Profiler)
      Options.Profiler->registerObjects(Elem, AT->size(), ID, V->location());
    for (uint64_t I = 0; I != AT->size(); ++I) {
      if (Elem) {
        Storage *ES = allocateObject(Elem, nullptr, ID + I);
        construct(ES, Elem, arityCtor(Elem, 0), {}, true);
        Arr->Elems.push_back(ES);
      } else {
        Storage *ES = Arena.createScalar();
        ES->V = zeroValue(AT->element());
        Arr->Elems.push_back(ES);
      }
    }
    if (Elem && Options.TraceStackObjects) {
      if (uint64_t TID = traceAlloc(Elem, AT->size()))
        TraceIDs[Arr] = TID;
      if (Options.Profiler)
        Options.Profiler->recordAllocEvent(ID);
    }
    F.Locals[V] = Arr;
    if (Elem)
      BlockObjects.push_back(Arr);
    return;
  }

  Storage *S = Arena.createScalar();
  S->V = V->init() ? convertForStore(evalRValue(V->init()), Ty)
                   : zeroValue(Ty);
  F.Locals[V] = S;
}

Interpreter::Flow Interpreter::execStmt(const Stmt *S) {
  step();
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    return execCompound(cast<CompoundStmt>(S));
  case Stmt::Kind::Decl: {
    // Reached only for DeclStmts outside a CompoundStmt (for-init is
    // handled in For); treat as a degenerate block.
    std::vector<Storage *> Objects;
    for (const VarDecl *V : cast<DeclStmt>(S)->vars())
      execVarDecl(V, Objects);
    for (auto It = Objects.rbegin(); It != Objects.rend(); ++It)
      destroyCompleteObject(*It);
    return Flow::normal();
  }
  case Stmt::Kind::Expr:
    evalRValue(cast<ExprStmt>(S)->expr());
    return Flow::normal();
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    if (evalRValue(IS->cond()).asBool())
      return execStmt(IS->thenStmt());
    if (IS->elseStmt())
      return execStmt(IS->elseStmt());
    return Flow::normal();
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    while (evalRValue(WS->cond()).asBool()) {
      step();
      Flow F = execStmt(WS->body());
      if (F.Kind == Flow::FK::Return)
        return F;
      if (F.Kind == Flow::FK::Break)
        break;
    }
    return Flow::normal();
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    std::vector<Storage *> InitObjects;
    if (FS->init()) {
      if (const auto *DS = dyn_cast<DeclStmt>(FS->init())) {
        for (const VarDecl *V : DS->vars())
          execVarDecl(V, InitObjects);
      } else {
        execStmt(FS->init());
      }
    }
    Flow Result = Flow::normal();
    while (!FS->cond() || evalRValue(FS->cond()).asBool()) {
      step();
      Flow F = execStmt(FS->body());
      if (F.Kind == Flow::FK::Return) {
        Result = F;
        break;
      }
      if (F.Kind == Flow::FK::Break)
        break;
      if (FS->step())
        evalRValue(FS->step());
    }
    for (auto It = InitObjects.rbegin(); It != InitObjects.rend(); ++It)
      destroyCompleteObject(*It);
    return Result;
  }
  case Stmt::Kind::Break: {
    Flow F;
    F.Kind = Flow::FK::Break;
    return F;
  }
  case Stmt::Kind::Continue: {
    Flow F;
    F.Kind = Flow::FK::Continue;
    return F;
  }
  case Stmt::Kind::Return: {
    const auto *RS = cast<ReturnStmt>(S);
    Value V = RS->value() ? evalRValue(RS->value()) : Value::unit();
    return Flow::ret(V);
  }
  case Stmt::Kind::Null:
    return Flow::normal();
  }
  return Flow::normal();
}

//===----------------------------------------------------------------------===//
// Scalar access
//===----------------------------------------------------------------------===//

Value Interpreter::loadScalar(Storage *S) {
  if (!S->Alive)
    fail("read from destroyed object");
  if (S->Kind != Storage::SK::Scalar)
    fail("scalar read from aggregate storage");
  if (S->OwnerField) {
    if (Options.ReadSet)
      Options.ReadSet->insert(S->OwnerField);
    if (Options.ReadTrace && TracedReads.insert(S->OwnerField).second)
      Options.ReadTrace->push_back(S->OwnerField);
    if (Options.Heat)
      ++Options.Heat->Reads[S->OwnerField];
    if (Options.Profiler)
      Options.Profiler->recordRead(S->ObjectID, S->OwnerField);
  }
  return S->V;
}

void Interpreter::storeScalar(Storage *S, const Value &V,
                              const Type *DeclaredTy) {
  if (!S->Alive)
    fail("write to destroyed object");
  if (S->Kind != Storage::SK::Scalar)
    fail("scalar write to aggregate storage");
  if (S->OwnerField) {
    if (Options.WriteSet)
      Options.WriteSet->insert(S->OwnerField);
    if (Options.Heat)
      ++Options.Heat->Writes[S->OwnerField];
    if (Options.Profiler)
      Options.Profiler->recordWrite(S->ObjectID, S->OwnerField);
  }
  S->V = convertForStore(V, DeclaredTy);
}

Value Interpreter::convertForStore(const Value &V, const Type *Ty) const {
  if (!Ty)
    return V;
  if (const auto *BT = dyn_cast<BuiltinType>(Ty)) {
    switch (BT->builtinKind()) {
    case BuiltinType::BK::Int:
      return Value::ofInt(V.asInt());
    case BuiltinType::BK::Double:
      return Value::ofDouble(V.asDouble());
    case BuiltinType::BK::Bool:
      return Value::ofBool(V.asBool());
    case BuiltinType::BK::Char:
      return Value::ofChar(static_cast<char>(V.asInt()));
    default:
      return V;
    }
  }
  return V;
}

//===----------------------------------------------------------------------===//
// Lvalue evaluation
//===----------------------------------------------------------------------===//

Storage *Interpreter::evalObjectBase(const Expr *Base, bool IsArrow) {
  if (IsArrow) {
    Value V = evalRValue(Base);
    if (V.Kind != Value::VK::Ptr || V.Ptr.isNull())
      fail("member access through null or non-pointer");
    Storage *S = V.Ptr.Pointee;
    if (S->Kind != Storage::SK::Object)
      fail("'->' on pointer to non-object");
    return S;
  }
  if (Base->isLValue())
    return evalLValue(Base);
  Value V = evalRValue(Base);
  if (V.Kind == Value::VK::Ptr && !V.Ptr.isNull())
    return V.Ptr.Pointee;
  fail("member access on non-object value");
}

Storage *Interpreter::evalLValue(const Expr *E) {
  step();
  switch (E->kind()) {
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    Decl *D = DRE->referent();
    if (auto *V = dyn_cast_or_null<VarDecl>(D)) {
      if (!Stack.empty()) {
        auto It = Stack.back().Locals.find(V);
        if (It != Stack.back().Locals.end())
          return It->second;
      }
      if (V->isGlobal())
        return globalStorage(V);
      fail("variable '" + V->name() + "' is not in scope at run time");
    }
    if (auto *Field = dyn_cast_or_null<FieldDecl>(D)) {
      Storage *This = Stack.empty() ? nullptr : Stack.back().This;
      if (!This)
        fail("member '" + Field->name() + "' used outside a method");
      auto It = This->Fields.find(Field);
      if (It == This->Fields.end())
        fail("object has no storage for member '" + Field->name() + "'");
      return It->second;
    }
    fail("cannot take the location of '" + DRE->declName() + "'");
  }
  case Expr::Kind::Member: {
    const auto *ME = cast<MemberExpr>(E);
    const auto *Field = dyn_cast_or_null<FieldDecl>(ME->member());
    if (!Field)
      fail("member expression does not name a data member");
    Storage *Obj = evalObjectBase(ME->base(), ME->isArrow());
    auto It = Obj->Fields.find(Field);
    if (It == Obj->Fields.end())
      fail("object has no storage for member '" + Field->name() + "'");
    return It->second;
  }
  case Expr::Kind::MemberPointerAccess: {
    const auto *MPA = cast<MemberPointerAccessExpr>(E);
    Storage *Obj = evalObjectBase(MPA->base(), MPA->isArrow());
    Value PM = evalRValue(MPA->pointer());
    if (PM.Kind != Value::VK::MemberPtr || !PM.Member)
      fail("'.*' through null pointer-to-member");
    auto It = Obj->Fields.find(PM.Member);
    if (It == Obj->Fields.end())
      fail("object has no member for pointer-to-member access");
    return It->second;
  }
  case Expr::Kind::Subscript: {
    const auto *SE = cast<SubscriptExpr>(E);
    long long Index = evalRValue(SE->index()).asInt();
    const Type *BaseTy = SE->base()->type();
    if (BaseTy && BaseTy->isArray()) {
      Storage *Arr = evalLValue(SE->base());
      if (Index < 0 || static_cast<size_t>(Index) >= Arr->Elems.size())
        fail("array index out of bounds");
      return Arr->Elems[static_cast<size_t>(Index)];
    }
    Value P = evalRValue(SE->base());
    if (P.Kind != Value::VK::Ptr || P.Ptr.isNull())
      fail("subscript of null pointer");
    if (!P.Ptr.Array) {
      if (Index == 0)
        return P.Ptr.Pointee;
      fail("pointer arithmetic on non-array pointer");
    }
    long long Absolute = P.Ptr.Index + Index;
    if (Absolute < 0 ||
        static_cast<size_t>(Absolute) >= P.Ptr.Array->Elems.size())
      fail("pointer subscript out of bounds");
    return P.Ptr.Array->Elems[static_cast<size_t>(Absolute)];
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    if (UE->op() == UnaryOpKind::Deref) {
      Value V = evalRValue(UE->sub());
      if (V.Kind != Value::VK::Ptr || V.Ptr.isNull())
        fail("dereference of null pointer");
      return V.Ptr.Pointee;
    }
    if (UE->op() == UnaryOpKind::PreInc || UE->op() == UnaryOpKind::PreDec) {
      evalRValue(E); // Perform the side effect.
      return evalLValue(UE->sub());
    }
    fail("expression is not an lvalue");
  }
  case Expr::Kind::Cast:
    // Pointer casts do not change the storage being referenced.
    return evalLValue(cast<CastExpr>(E)->sub());
  case Expr::Kind::This: {
    Storage *This = Stack.empty() ? nullptr : Stack.back().This;
    if (!This)
      fail("'this' used outside a method");
    return This;
  }
  default:
    fail("expression is not an lvalue");
  }
}

//===----------------------------------------------------------------------===//
// Rvalue evaluation
//===----------------------------------------------------------------------===//

Value Interpreter::evalRValue(const Expr *E) {
  step();
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return Value::ofInt(cast<IntLiteralExpr>(E)->value());
  case Expr::Kind::DoubleLiteral:
    return Value::ofDouble(cast<DoubleLiteralExpr>(E)->value());
  case Expr::Kind::BoolLiteral:
    return Value::ofBool(cast<BoolLiteralExpr>(E)->value());
  case Expr::Kind::CharLiteral:
    return Value::ofChar(cast<CharLiteralExpr>(E)->value());
  case Expr::Kind::NullptrLiteral:
    return Value::nullPtr();
  case Expr::Kind::StringLiteral: {
    Storage *Arr = stringStorage(cast<StringLiteralExpr>(E));
    Pointer P;
    P.Array = Arr;
    P.Index = 0;
    P.Pointee = Arr->Elems.empty() ? nullptr : Arr->Elems[0];
    return Value::ofPtr(P);
  }
  case Expr::Kind::This: {
    Storage *This = Stack.empty() ? nullptr : Stack.back().This;
    if (!This)
      fail("'this' used outside a method");
    return Value::ofPtr({This});
  }
  case Expr::Kind::DeclRef: {
    const auto *DRE = cast<DeclRefExpr>(E);
    if (auto *Fn = dyn_cast_or_null<FunctionDecl>(DRE->referent()))
      return Value::ofFn(Fn);
    Storage *S = evalLValue(E);
    return loadOrDecay(S);
  }
  case Expr::Kind::Member:
  case Expr::Kind::MemberPointerAccess:
  case Expr::Kind::Subscript:
    return loadOrDecay(evalLValue(E));
  case Expr::Kind::MemberPointerConstant:
    return Value::ofMemberPtr(
        cast<MemberPointerConstantExpr>(E)->member());
  case Expr::Kind::Unary:
    return evalUnary(cast<UnaryExpr>(E));
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Assign:
    return evalAssign(cast<AssignExpr>(E));
  case Expr::Kind::Conditional: {
    const auto *CE = cast<ConditionalExpr>(E);
    return evalRValue(CE->cond()).asBool() ? evalRValue(CE->thenExpr())
                                           : evalRValue(CE->elseExpr());
  }
  case Expr::Kind::Comma: {
    const auto *CE = cast<CommaExpr>(E);
    evalRValue(CE->lhs());
    return evalRValue(CE->rhs());
  }
  case Expr::Kind::Call:
    return evalCall(cast<CallExpr>(E));
  case Expr::Kind::New:
    return evalNew(cast<NewExpr>(E));
  case Expr::Kind::Delete:
    evalDelete(cast<DeleteExpr>(E));
    return Value::unit();
  case Expr::Kind::Cast: {
    const auto *CE = cast<CastExpr>(E);
    Value V = evalRValue(CE->sub());
    const Type *Ty = CE->targetType();
    if (Ty->isArithmetic())
      return convertForStore(V, Ty);
    if (Ty->isPointer()) {
      if (V.Kind == Value::VK::Ptr || V.Kind == Value::VK::FnPtr)
        return V;
      if (V.asInt() == 0)
        return Value::nullPtr();
      fail("cannot materialize a pointer from an integer");
    }
    return V;
  }
  case Expr::Kind::Sizeof: {
    const auto *SE = cast<SizeofExpr>(E);
    const Type *Ty =
        SE->typeOperand() ? SE->typeOperand() : SE->exprOperand()->type();
    return Value::ofInt(static_cast<long long>(Layout.sizeOf(Ty)));
  }
  }
  fail("unhandled expression kind in evaluator");
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

Value Interpreter::loadOrDecay(Storage *S) {
  switch (S->Kind) {
  case Storage::SK::Scalar:
    return loadScalar(S);
  case Storage::SK::Object:
    return Value::ofPtr({S});
  case Storage::SK::Array: {
    Pointer P;
    P.Array = S;
    P.Index = 0;
    P.Pointee = S->Elems.empty() ? nullptr : S->Elems[0];
    return Value::ofPtr(P);
  }
  }
  fail("corrupt storage node");
}

/// Adjusts an array-backed pointer by \p Delta elements, allowing the
/// one-past-the-end position.
static Pointer advancePointer(Pointer P, long long Delta) {
  if (!P.Array)
    return P; // Arithmetic on a non-array pointer: only +0 is meaningful.
  P.Index += Delta;
  P.Pointee = (P.Index >= 0 &&
               static_cast<size_t>(P.Index) < P.Array->Elems.size())
                  ? P.Array->Elems[static_cast<size_t>(P.Index)]
                  : nullptr;
  return P;
}

Value Interpreter::evalUnary(const UnaryExpr *E) {
  switch (E->op()) {
  case UnaryOpKind::Minus: {
    Value V = evalRValue(E->sub());
    if (V.Kind == Value::VK::Double)
      return Value::ofDouble(-V.asDouble());
    return Value::ofInt(-V.asInt());
  }
  case UnaryOpKind::Not:
    return Value::ofBool(!evalRValue(E->sub()).asBool());
  case UnaryOpKind::BitNot:
    return Value::ofInt(~evalRValue(E->sub()).asInt());
  case UnaryOpKind::Deref:
    return loadOrDecay(evalLValue(E));
  case UnaryOpKind::AddrOf: {
    const Expr *Sub = E->sub();
    if (const auto *DRE = dyn_cast<DeclRefExpr>(Sub))
      if (auto *Fn = dyn_cast_or_null<FunctionDecl>(DRE->referent()))
        return Value::ofFn(Fn);
    // Keep array provenance for `&arr[i]` so pointer arithmetic works.
    if (const auto *SE = dyn_cast<SubscriptExpr>(Sub)) {
      const Type *BaseTy = SE->base()->type();
      long long Index = 0;
      Pointer P;
      if (BaseTy && BaseTy->isArray()) {
        Storage *Arr = evalLValue(SE->base());
        Index = evalRValue(SE->index()).asInt();
        P.Array = Arr;
      } else {
        Value BaseV = evalRValue(SE->base());
        if (BaseV.Kind != Value::VK::Ptr)
          fail("subscript of non-pointer");
        Index = BaseV.Ptr.Index + evalRValue(SE->index()).asInt();
        P.Array = BaseV.Ptr.Array;
        if (!P.Array)
          return Value::ofPtr({BaseV.Ptr.Pointee});
      }
      P.Index = Index;
      P.Pointee = (Index >= 0 &&
                   static_cast<size_t>(Index) < P.Array->Elems.size())
                      ? P.Array->Elems[static_cast<size_t>(Index)]
                      : nullptr;
      if (Options.Profiler && P.Array->OwnerField)
        Options.Profiler->recordAddrTaken(P.Array->ObjectID,
                                          P.Array->OwnerField);
      return Value::ofPtr(P);
    }
    Storage *S = evalLValue(Sub);
    if (Options.Profiler && S->OwnerField)
      Options.Profiler->recordAddrTaken(S->ObjectID, S->OwnerField);
    return Value::ofPtr({S});
  }
  case UnaryOpKind::PreInc:
  case UnaryOpKind::PreDec:
  case UnaryOpKind::PostInc:
  case UnaryOpKind::PostDec: {
    Storage *S = evalLValue(E->sub());
    Value Old = loadScalar(S);
    long long Delta =
        (E->op() == UnaryOpKind::PreInc || E->op() == UnaryOpKind::PostInc)
            ? 1
            : -1;
    Value New;
    if (Old.Kind == Value::VK::Ptr)
      New = Value::ofPtr(advancePointer(Old.Ptr, Delta));
    else if (Old.Kind == Value::VK::Double)
      New = Value::ofDouble(Old.asDouble() + Delta);
    else
      New = Value::ofInt(Old.asInt() + Delta);
    storeScalar(S, New, E->sub()->type());
    bool IsPre = E->op() == UnaryOpKind::PreInc ||
                 E->op() == UnaryOpKind::PreDec;
    return IsPre ? New : Old;
  }
  }
  fail("unhandled unary operator");
}

Value Interpreter::evalBinary(const BinaryExpr *E) {
  // Short-circuit forms first.
  if (E->op() == BinaryOpKind::LAnd)
    return Value::ofBool(evalRValue(E->lhs()).asBool() &&
                         evalRValue(E->rhs()).asBool());
  if (E->op() == BinaryOpKind::LOr)
    return Value::ofBool(evalRValue(E->lhs()).asBool() ||
                         evalRValue(E->rhs()).asBool());

  Value L = evalRValue(E->lhs());
  Value R = evalRValue(E->rhs());

  // Pointer arithmetic and comparisons.
  if (L.Kind == Value::VK::Ptr || R.Kind == Value::VK::Ptr ||
      L.Kind == Value::VK::FnPtr || R.Kind == Value::VK::FnPtr) {
    switch (E->op()) {
    case BinaryOpKind::Add:
      if (L.Kind == Value::VK::Ptr)
        return Value::ofPtr(advancePointer(L.Ptr, R.asInt()));
      return Value::ofPtr(advancePointer(R.Ptr, L.asInt()));
    case BinaryOpKind::Sub:
      if (L.Kind == Value::VK::Ptr && R.Kind == Value::VK::Ptr) {
        if (L.Ptr.Array && L.Ptr.Array == R.Ptr.Array)
          return Value::ofInt(L.Ptr.Index - R.Ptr.Index);
        fail("difference of pointers into different arrays");
      }
      return Value::ofPtr(advancePointer(L.Ptr, -R.asInt()));
    case BinaryOpKind::EQ:
      if (L.Kind == Value::VK::FnPtr || R.Kind == Value::VK::FnPtr)
        return Value::ofBool(L.Fn == R.Fn);
      return Value::ofBool(L.Ptr.Pointee == R.Ptr.Pointee);
    case BinaryOpKind::NE:
      if (L.Kind == Value::VK::FnPtr || R.Kind == Value::VK::FnPtr)
        return Value::ofBool(L.Fn != R.Fn);
      return Value::ofBool(L.Ptr.Pointee != R.Ptr.Pointee);
    case BinaryOpKind::LT:
    case BinaryOpKind::GT:
    case BinaryOpKind::LE:
    case BinaryOpKind::GE: {
      if (L.Ptr.Array && L.Ptr.Array == R.Ptr.Array) {
        long long A = L.Ptr.Index, B = R.Ptr.Index;
        switch (E->op()) {
        case BinaryOpKind::LT: return Value::ofBool(A < B);
        case BinaryOpKind::GT: return Value::ofBool(A > B);
        case BinaryOpKind::LE: return Value::ofBool(A <= B);
        default: return Value::ofBool(A >= B);
        }
      }
      fail("relational comparison of unrelated pointers");
    }
    default:
      fail("invalid operator on pointers");
    }
  }

  bool UseDouble =
      L.Kind == Value::VK::Double || R.Kind == Value::VK::Double;
  switch (E->op()) {
  case BinaryOpKind::Add:
    return UseDouble ? Value::ofDouble(L.asDouble() + R.asDouble())
                     : Value::ofInt(L.asInt() + R.asInt());
  case BinaryOpKind::Sub:
    return UseDouble ? Value::ofDouble(L.asDouble() - R.asDouble())
                     : Value::ofInt(L.asInt() - R.asInt());
  case BinaryOpKind::Mul:
    return UseDouble ? Value::ofDouble(L.asDouble() * R.asDouble())
                     : Value::ofInt(L.asInt() * R.asInt());
  case BinaryOpKind::Div:
    if (UseDouble) {
      if (R.asDouble() == 0.0)
        fail("floating division by zero");
      return Value::ofDouble(L.asDouble() / R.asDouble());
    }
    if (R.asInt() == 0)
      fail("integer division by zero");
    return Value::ofInt(L.asInt() / R.asInt());
  case BinaryOpKind::Rem:
    if (R.asInt() == 0)
      fail("integer remainder by zero");
    return Value::ofInt(L.asInt() % R.asInt());
  case BinaryOpKind::Shl:
    return Value::ofInt(L.asInt() << (R.asInt() & 63));
  case BinaryOpKind::Shr:
    return Value::ofInt(L.asInt() >> (R.asInt() & 63));
  case BinaryOpKind::BitAnd:
    return Value::ofInt(L.asInt() & R.asInt());
  case BinaryOpKind::BitOr:
    return Value::ofInt(L.asInt() | R.asInt());
  case BinaryOpKind::BitXor:
    return Value::ofInt(L.asInt() ^ R.asInt());
  case BinaryOpKind::LT:
    return Value::ofBool(UseDouble ? L.asDouble() < R.asDouble()
                                   : L.asInt() < R.asInt());
  case BinaryOpKind::GT:
    return Value::ofBool(UseDouble ? L.asDouble() > R.asDouble()
                                   : L.asInt() > R.asInt());
  case BinaryOpKind::LE:
    return Value::ofBool(UseDouble ? L.asDouble() <= R.asDouble()
                                   : L.asInt() <= R.asInt());
  case BinaryOpKind::GE:
    return Value::ofBool(UseDouble ? L.asDouble() >= R.asDouble()
                                   : L.asInt() >= R.asInt());
  case BinaryOpKind::EQ: {
    if (L.Kind == Value::VK::MemberPtr || R.Kind == Value::VK::MemberPtr)
      return Value::ofBool(L.Member == R.Member);
    return Value::ofBool(UseDouble ? L.asDouble() == R.asDouble()
                                   : L.asInt() == R.asInt());
  }
  case BinaryOpKind::NE: {
    if (L.Kind == Value::VK::MemberPtr || R.Kind == Value::VK::MemberPtr)
      return Value::ofBool(L.Member != R.Member);
    return Value::ofBool(UseDouble ? L.asDouble() != R.asDouble()
                                   : L.asInt() != R.asInt());
  }
  case BinaryOpKind::LAnd:
  case BinaryOpKind::LOr:
    break; // Handled above.
  }
  fail("unhandled binary operator");
}

Value Interpreter::evalAssign(const AssignExpr *E) {
  // Class assignment: memberwise copy.
  const Type *LHSTy = E->lhs()->type();
  if (LHSTy && LHSTy->asClassDecl()) {
    Storage *Dst = evalLValue(E->lhs());
    Value Src = evalRValue(E->rhs());
    if (Src.Kind != Value::VK::Ptr || Src.Ptr.isNull())
      fail("class assignment from non-object");
    struct Copier {
      Interpreter &I;
      void copy(Storage *DstS, Storage *SrcS) {
        if (DstS->Kind == Storage::SK::Scalar &&
            SrcS->Kind == Storage::SK::Scalar) {
          if (DstS->OwnerField) {
            if (I.Options.WriteSet)
              I.Options.WriteSet->insert(DstS->OwnerField);
            if (I.Options.Heat)
              ++I.Options.Heat->Writes[DstS->OwnerField];
            if (I.Options.Profiler)
              I.Options.Profiler->recordWrite(DstS->ObjectID,
                                              DstS->OwnerField);
          }
          DstS->V = I.loadScalar(SrcS);
          return;
        }
        if (DstS->Kind == Storage::SK::Object)
          for (auto &[Field, FS] : DstS->Fields)
            if (SrcS->Fields.count(Field))
              copy(FS, SrcS->Fields.at(Field));
        if (DstS->Kind == Storage::SK::Array)
          for (size_t EI = 0;
               EI < DstS->Elems.size() && EI < SrcS->Elems.size(); ++EI)
            copy(DstS->Elems[EI], SrcS->Elems[EI]);
      }
    };
    Copier{*this}.copy(Dst, Src.Ptr.Pointee);
    return Src;
  }

  Storage *Dst = evalLValue(E->lhs());
  if (E->op() == AssignOpKind::Assign) {
    Value V = evalRValue(E->rhs());
    storeScalar(Dst, V, LHSTy);
    // Return the stored value without going through loadScalar: using the
    // assignment's result is not a read of the member.
    return Dst->V;
  }

  Value Old = loadScalar(Dst);
  Value R = evalRValue(E->rhs());
  Value New;
  if (Old.Kind == Value::VK::Ptr) {
    long long Delta = R.asInt();
    if (E->op() == AssignOpKind::SubAssign)
      Delta = -Delta;
    else if (E->op() != AssignOpKind::AddAssign)
      fail("invalid compound assignment on pointer");
    New = Value::ofPtr(advancePointer(Old.Ptr, Delta));
  } else {
    bool UseDouble =
        Old.Kind == Value::VK::Double || R.Kind == Value::VK::Double;
    switch (E->op()) {
    case AssignOpKind::AddAssign:
      New = UseDouble ? Value::ofDouble(Old.asDouble() + R.asDouble())
                      : Value::ofInt(Old.asInt() + R.asInt());
      break;
    case AssignOpKind::SubAssign:
      New = UseDouble ? Value::ofDouble(Old.asDouble() - R.asDouble())
                      : Value::ofInt(Old.asInt() - R.asInt());
      break;
    case AssignOpKind::MulAssign:
      New = UseDouble ? Value::ofDouble(Old.asDouble() * R.asDouble())
                      : Value::ofInt(Old.asInt() * R.asInt());
      break;
    case AssignOpKind::DivAssign:
      if (UseDouble) {
        if (R.asDouble() == 0.0)
          fail("floating division by zero");
        New = Value::ofDouble(Old.asDouble() / R.asDouble());
      } else {
        if (R.asInt() == 0)
          fail("integer division by zero");
        New = Value::ofInt(Old.asInt() / R.asInt());
      }
      break;
    case AssignOpKind::RemAssign:
      if (R.asInt() == 0)
        fail("integer remainder by zero");
      New = Value::ofInt(Old.asInt() % R.asInt());
      break;
    case AssignOpKind::Assign:
      fail("unreachable plain assignment");
    }
  }
  storeScalar(Dst, New, LHSTy);
  return New;
}

//===----------------------------------------------------------------------===//
// Calls, new, delete
//===----------------------------------------------------------------------===//

Value Interpreter::evalCall(const CallExpr *Call) {
  const FunctionDecl *Callee = Call->directCallee();
  Storage *This = nullptr;
  const ClassDecl *DispatchClass = nullptr;

  if (Callee) {
    if (const auto *M = dyn_cast<MethodDecl>(Callee)) {
      // Determine the receiver.
      if (const auto *ME = dyn_cast<MemberExpr>(Call->callee()))
        This = evalObjectBase(ME->base(), ME->isArrow());
      else
        This = Stack.empty() ? nullptr : Stack.back().This;
      if (!This)
        fail("method call without receiver object");

      if (Call->isVirtualCall()) {
        const ClassDecl *Dyn = This->Class;
        // Virtual dispatch on the object currently being constructed or
        // destroyed resolves against that class, as in C++.
        if (!Stack.empty() && Stack.back().DispatchClass &&
            Stack.back().This == This)
          Dyn = Stack.back().DispatchClass;
        MethodDecl *Target =
            CH.resolveVirtualCall(Dyn, cast<MethodDecl>(Callee));
        if (!Target)
          fail("virtual dispatch failed for '" + M->qualifiedName() + "'");
        Callee = Target;
      }
    }
  } else {
    // Indirect call through a function pointer.
    Value FnV = evalRValue(Call->callee());
    if (FnV.Kind != Value::VK::FnPtr || !FnV.Fn)
      fail("indirect call through null function pointer");
    Callee = FnV.Fn;
  }

  bool IsFree = Callee->builtinKind() == BuiltinKind::Free;
  std::vector<Value> Args;
  Args.reserve(Call->args().size());
  for (size_t I = 0; I != Call->args().size(); ++I) {
    const Expr *Arg = Call->args()[I];
    bool ByRef = I < Callee->params().size() &&
                 Callee->params()[I]->type()->isReference();
    if (ByRef)
      Args.push_back(Value::ofPtr({evalLValue(Arg)}));
    else if (IsFree)
      Args.push_back(evalDeallocArg(Arg));
    else
      Args.push_back(evalRValue(Arg));
  }
  return callFunction(Callee, This, std::move(Args), DispatchClass);
}

Value Interpreter::evalNew(const NewExpr *N) {
  const Type *Ty = N->allocType();

  if (N->isArrayNew()) {
    long long Count = evalRValue(N->arraySize()).asInt();
    if (Count < 0)
      fail("negative array-new extent");
    Storage *Arr = Arena.createArray(Ty, nullptr);
    // One ID per element (see execVarDecl's array case).
    uint64_t ID = NextObjectID;
    NextObjectID += std::max<uint64_t>(static_cast<uint64_t>(Count), 1);
    Arr->ObjectID = ID;
    const ClassDecl *Elem = Ty->asClassDecl();
    if (Elem) {
      if (Options.Profiler)
        Options.Profiler->registerObjects(
            Elem, static_cast<uint64_t>(Count), ID, N->location());
      if (uint64_t TID = traceAlloc(Elem, static_cast<uint64_t>(Count)))
        TraceIDs[Arr] = TID;
      if (Options.Profiler)
        Options.Profiler->recordAllocEvent(ID);
    }
    for (long long I = 0; I != Count; ++I) {
      if (Elem) {
        Storage *ES =
            allocateObject(Elem, nullptr, ID + static_cast<uint64_t>(I));
        construct(ES, Elem, arityCtor(Elem, 0), {}, true);
        Arr->Elems.push_back(ES);
      } else {
        Storage *ES = Arena.createScalar();
        ES->V = zeroValue(Ty);
        Arr->Elems.push_back(ES);
      }
    }
    Pointer P;
    P.Array = Arr;
    P.Index = 0;
    P.Pointee = Arr->Elems.empty() ? nullptr : Arr->Elems[0];
    return Value::ofPtr(P);
  }

  if (const ClassDecl *CD = Ty->asClassDecl()) {
    uint64_t ID = NextObjectID++;
    Storage *Obj = allocateObject(CD, nullptr, ID);
    if (Options.Profiler)
      Options.Profiler->registerObjects(CD, 1, ID, N->location());
    if (uint64_t TID = traceAlloc(CD, 1))
      TraceIDs[Obj] = TID;
    if (Options.Profiler)
      Options.Profiler->recordAllocEvent(ID);
    const ConstructorDecl *Ctor = N->constructor();
    std::vector<Value> Args;
    for (size_t I = 0; I != N->ctorArgs().size(); ++I) {
      bool ByRef = Ctor && I < Ctor->params().size() &&
                   Ctor->params()[I]->type()->isReference();
      if (ByRef)
        Args.push_back(Value::ofPtr({evalLValue(N->ctorArgs()[I])}));
      else
        Args.push_back(evalRValue(N->ctorArgs()[I]));
    }
    construct(Obj, CD, Ctor, std::move(Args), /*MostDerived=*/true);
    return Value::ofPtr({Obj});
  }

  // Scalar new.
  Storage *S = Arena.createScalar();
  S->V = N->ctorArgs().empty() ? zeroValue(Ty)
                               : convertForStore(evalRValue(N->ctorArgs()[0]),
                                                 Ty);
  return Value::ofPtr({S});
}

/// Strips explicit casts (value-preserving for pointers).
static const Expr *stripCastsForDealloc(const Expr *E) {
  while (const auto *CE = dyn_cast<CastExpr>(E))
    E = CE->sub();
  return E;
}

Value Interpreter::evalDeallocArg(const Expr *E) {
  if (Options.CountDeallocationReads)
    return evalRValue(E);
  const Expr *Stripped = stripCastsForDealloc(E);
  bool IsMember = false;
  if (const auto *ME = dyn_cast<MemberExpr>(Stripped))
    IsMember = dyn_cast_or_null<FieldDecl>(ME->member()) != nullptr;
  else if (const auto *DRE = dyn_cast<DeclRefExpr>(Stripped))
    IsMember = dyn_cast_or_null<FieldDecl>(DRE->referent()) != nullptr;
  if (!IsMember)
    return evalRValue(E);
  // Load without attributing a read: the value only feeds deallocation,
  // which cannot affect observable behaviour (paper footnote 3). The
  // base object expression is evaluated (and tracked) normally by
  // evalLValue.
  Storage *S = evalLValue(Stripped);
  if (!S->Alive)
    fail("read from destroyed object");
  if (S->Kind != Storage::SK::Scalar)
    fail("scalar read from aggregate storage");
  return S->V;
}

void Interpreter::evalDelete(const DeleteExpr *D) {
  Value V = evalDeallocArg(D->sub());
  if (V.Kind != Value::VK::Ptr)
    fail("delete of non-pointer");
  if (V.Ptr.isNull())
    return; // delete nullptr is a no-op.
  Storage *Target =
      (D->isArrayDelete() && V.Ptr.Array) ? V.Ptr.Array : V.Ptr.Pointee;
  if (Target->Kind == Storage::SK::Scalar) {
    if (!Target->Alive)
      fail("double delete");
    Target->Alive = false;
    return;
  }
  destroyCompleteObject(Target);
}

//===----------------------------------------------------------------------===//
// Globals, string literals, run
//===----------------------------------------------------------------------===//

Storage *Interpreter::stringStorage(const StringLiteralExpr *S) {
  auto It = StringLiterals.find(S);
  if (It != StringLiterals.end())
    return It->second;
  Storage *Arr = Arena.createArray(nullptr, nullptr);
  for (char C : S->value()) {
    Storage *CS = Arena.createScalar();
    CS->V = Value::ofChar(C);
    Arr->Elems.push_back(CS);
  }
  Storage *Nul = Arena.createScalar();
  Nul->V = Value::ofChar(0);
  Arr->Elems.push_back(Nul);
  StringLiterals[S] = Arr;
  return Arr;
}

Storage *Interpreter::globalStorage(const VarDecl *GV) {
  auto It = Globals.find(GV);
  if (It == Globals.end())
    fail("global '" + GV->name() + "' used before initialization");
  return It->second;
}

ExecResult Interpreter::run(const FunctionDecl *Main) {
  Span Timer("interp");
  ExecResult Result;
  std::vector<Storage *> GlobalObjects;
  try {
    // A frame for global initialization expressions.
    Frame GlobalFrame;
    GlobalFrame.Fn = Main;
    Stack.push_back(std::move(GlobalFrame));
    for (const VarDecl *GV : Ctx.globals()) {
      std::vector<Storage *> Objects;
      execVarDecl(GV, Objects);
      Globals[GV] = Stack.back().Locals.at(GV);
      for (Storage *Obj : Objects)
        GlobalObjects.push_back(Obj);
    }
    Stack.pop_back();

    Value Exit = callFunction(Main, nullptr, {}, nullptr);

    // Destroy globals in reverse construction order.
    Stack.push_back(Frame{});
    for (auto It = GlobalObjects.rbegin(); It != GlobalObjects.rend(); ++It)
      destroyCompleteObject(*It);
    Stack.pop_back();

    Result.Completed = true;
    Result.ExitCode = Exit.asInt();
  } catch (const RuntimeError &E) {
    Result.Completed = false;
    Result.Error = E.Message;
    logDebug("interpreter run failed",
             {kv("error", E.Message), kv("steps", Steps)});
  }
  Result.Output = std::move(Output);
  Result.Steps = Steps;
  Telemetry::count("interp.steps", Steps);
  Telemetry::count("interp.calls", NumCalls);
  Telemetry::count("interp.objects", NumCompleteObjects);
  return Result;
}
