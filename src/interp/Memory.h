//===-- interp/Memory.h - Interpreter storage model -------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage nodes for the interpreter: scalars, class instances, and
/// arrays. Scalar storages owned by a data member record that member, so
/// every dynamic read/write can be attributed to a FieldDecl — the hook
/// the soundness property tests and the dynamic dead-space measurements
/// rely on.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_INTERP_MEMORY_H
#define DMM_INTERP_MEMORY_H

#include "ast/Decl.h"
#include "interp/Value.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace dmm {

/// One storage node. A tagged union of scalar / object / array.
struct Storage {
  enum class SK { Scalar, Object, Array };

  SK Kind = SK::Scalar;

  /// The data member this storage (or aggregate) realizes, when it is a
  /// field subobject; null for locals, globals, temporaries, and array
  /// elements.
  const FieldDecl *OwnerField = nullptr;

  /// Scalar payload.
  Value V;

  /// Object payload.
  const ClassDecl *Class = nullptr;
  std::unordered_map<const FieldDecl *, Storage *> Fields;
  /// Dense field-slot vector used by the bytecode VM (src/vm): indexed
  /// by the module-wide slot color of a FieldDecl, holes null. The
  /// tree-walking interpreter populates Fields instead; the VM fills
  /// Slots eagerly and materializes Fields lazily only for memberwise
  /// copies (where hash-map iteration order is part of the observable
  /// event order both engines must share).
  std::vector<Storage *> Slots;
  /// Identity of the complete object this node belongs to (for trace
  /// attribution); 0 when not part of a traced object.
  uint64_t ObjectID = 0;

  /// Array payload.
  const Type *ElemType = nullptr;
  std::vector<Storage *> Elems;

  bool Alive = true; ///< Cleared on delete / scope exit (use-after-free
                     ///< detection).
};

/// Owns all Storage nodes of one execution; addresses are stable.
class MemoryArena {
public:
  Storage *createScalar(const FieldDecl *Owner = nullptr) {
    Storage &S = Nodes.emplace_back();
    S.Kind = Storage::SK::Scalar;
    S.OwnerField = Owner;
    return &S;
  }

  Storage *createObject(const ClassDecl *CD,
                        const FieldDecl *Owner = nullptr) {
    Storage &S = Nodes.emplace_back();
    S.Kind = Storage::SK::Object;
    S.Class = CD;
    S.OwnerField = Owner;
    return &S;
  }

  Storage *createArray(const Type *ElemType,
                       const FieldDecl *Owner = nullptr) {
    Storage &S = Nodes.emplace_back();
    S.Kind = Storage::SK::Array;
    S.ElemType = ElemType;
    S.OwnerField = Owner;
    return &S;
  }

  size_t numNodes() const { return Nodes.size(); }

private:
  std::deque<Storage> Nodes;
};

} // namespace dmm

#endif // DMM_INTERP_MEMORY_H
