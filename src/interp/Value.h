//===-- interp/Value.h - Runtime values -------------------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime value representation for the MiniC++ interpreter. Pointers
/// reference Storage nodes (see interp/Memory.h); pointers into arrays
/// additionally carry the owning array and an index so that pointer
/// arithmetic and subscripting work.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_INTERP_VALUE_H
#define DMM_INTERP_VALUE_H

#include <cstdint>

namespace dmm {

class FieldDecl;
class FunctionDecl;
struct Storage;

/// A (possibly null) pointer to interpreter storage.
struct Pointer {
  Storage *Pointee = nullptr;
  /// When pointing into an array: the array storage and element index,
  /// enabling pointer arithmetic.
  Storage *Array = nullptr;
  long long Index = 0;

  bool isNull() const { return Pointee == nullptr; }

  friend bool operator==(const Pointer &A, const Pointer &B) {
    return A.Pointee == B.Pointee;
  }
};

/// A runtime value.
struct Value {
  enum class VK {
    Unit, ///< No value (void).
    Int,
    Double,
    Bool,
    Char,
    Ptr,
    FnPtr,
    MemberPtr,
  };

  VK Kind = VK::Unit;
  long long IntVal = 0;
  double DoubleVal = 0.0;
  Pointer Ptr;
  const FunctionDecl *Fn = nullptr;
  const FieldDecl *Member = nullptr;

  static Value unit() { return Value(); }
  static Value ofInt(long long V) {
    Value R;
    R.Kind = VK::Int;
    R.IntVal = V;
    return R;
  }
  static Value ofDouble(double V) {
    Value R;
    R.Kind = VK::Double;
    R.DoubleVal = V;
    return R;
  }
  static Value ofBool(bool V) {
    Value R;
    R.Kind = VK::Bool;
    R.IntVal = V;
    return R;
  }
  static Value ofChar(char V) {
    Value R;
    R.Kind = VK::Char;
    R.IntVal = V;
    return R;
  }
  static Value ofPtr(Pointer P) {
    Value R;
    R.Kind = VK::Ptr;
    R.Ptr = P;
    return R;
  }
  static Value nullPtr() { return ofPtr(Pointer()); }
  static Value ofFn(const FunctionDecl *F) {
    Value R;
    R.Kind = VK::FnPtr;
    R.Fn = F;
    return R;
  }
  static Value ofMemberPtr(const FieldDecl *F) {
    Value R;
    R.Kind = VK::MemberPtr;
    R.Member = F;
    return R;
  }

  /// Numeric coercions (lenient, mirroring Sema's implicit conversions).
  long long asInt() const {
    return Kind == VK::Double ? static_cast<long long>(DoubleVal) : IntVal;
  }
  double asDouble() const {
    return Kind == VK::Double ? DoubleVal : static_cast<double>(IntVal);
  }
  bool asBool() const {
    if (Kind == VK::Ptr)
      return !Ptr.isNull();
    if (Kind == VK::FnPtr)
      return Fn != nullptr;
    if (Kind == VK::Double)
      return DoubleVal != 0.0;
    return IntVal != 0;
  }
};

} // namespace dmm

#endif // DMM_INTERP_VALUE_H
