//===-- interp/Interpreter.h - MiniC++ interpreter --------------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for MiniC++. It plays the role of the
/// paper's instrumented execution (§4.3): while running a program it can
/// record an allocation trace (for the dynamic measurements of Table 2 /
/// Figure 4) and the set of data members whose values are dynamically
/// read or written (the ground truth for the analysis-soundness property
/// tests).
///
/// Semantics notes:
///  - objects are modeled as storage graphs, not flat bytes; union
///    members therefore do not alias each other (reads of a member other
///    than the last one written return that member's own last value);
///  - virtual dispatch during construction/destruction uses the class of
///    the constructor/destructor being run, as in C++;
///  - scalars are zero-initialized for determinism;
///  - execution is bounded by a step budget so runaway guest programs
///    terminate with an error instead of hanging the host.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_INTERP_INTERPRETER_H
#define DMM_INTERP_INTERPRETER_H

#include "ast/ASTContext.h"
#include "ast/Expr.h"
#include "hierarchy/ClassHierarchy.h"
#include "hierarchy/ObjectLayout.h"
#include "interp/Memory.h"
#include "interp/Value.h"
#include "trace/AllocationTrace.h"

#include <deque>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace dmm {

class ShadowProfiler;

/// Per-member dynamic access counts, keyed by FieldDecl. Feeds the
/// --measure "heat" report (how often each member is actually read and
/// written at run time, aggregated per class by the driver).
struct FieldHeat {
  std::map<const FieldDecl *, uint64_t> Reads;
  std::map<const FieldDecl *, uint64_t> Writes;
};

/// Execution configuration and instrumentation sinks.
struct InterpOptions {
  /// Abort with an error after this many evaluation steps.
  uint64_t MaxSteps = 100'000'000;

  /// When set, object allocations/deallocations are recorded here.
  AllocationTrace *Trace = nullptr;

  /// Include stack-allocated and global objects in the trace (the
  /// paper's measurements cover all objects created during execution).
  bool TraceStackObjects = true;

  /// When set, receives every FieldDecl whose value is read at run time.
  /// Loads whose value feeds only a delete/free argument are not
  /// recorded (mirroring the analysis' deallocation exemption, paper
  /// footnote 3) unless CountDeallocationReads is set.
  std::set<const FieldDecl *> *ReadSet = nullptr;
  /// Record member loads that only feed delete/free (see ReadSet).
  bool CountDeallocationReads = false;
  /// When set, receives every distinct FieldDecl in order of *first*
  /// dynamic read (same deallocation exemption as ReadSet). The fuzzing
  /// harness (src/fuzz) cites this order in its failure records, so an
  /// unsound classification can be tied to the earliest offending read.
  std::vector<const FieldDecl *> *ReadTrace = nullptr;
  /// When set, receives every FieldDecl written at run time.
  std::set<const FieldDecl *> *WriteSet = nullptr;
  /// When set, receives per-member dynamic read/write counts. Reads
  /// feeding only delete/free follow the same exemption as ReadSet.
  FieldHeat *Heat = nullptr;
  /// When set, the shadow-memory profiler is driven on every object
  /// allocation/deallocation, member read/write, and address-take
  /// (profiler/ShadowProfiler.h). Allocation events follow the same
  /// TraceStackObjects gate as Trace so the profiler and the trace see
  /// identical event streams. Null costs one branch per event.
  ShadowProfiler *Profiler = nullptr;
};

/// The outcome of an execution.
struct ExecResult {
  bool Completed = false; ///< main returned (vs. runtime error).
  std::string Error;      ///< Error message when !Completed.
  long long ExitCode = 0; ///< main's return value.
  std::string Output;     ///< Everything written by print_* builtins.
  uint64_t Steps = 0;
};

/// Executes a resolved MiniC++ program.
class Interpreter {
public:
  Interpreter(const ASTContext &Ctx, const ClassHierarchy &CH,
              InterpOptions Options = {});
  ~Interpreter(); // Out of line: Frame is incomplete here.

  /// Runs the program: global initialization, \p Main, global teardown.
  ExecResult run(const FunctionDecl *Main);

private:
  struct Frame;
  struct Flow;
  struct RuntimeError;

  /// \name Object lifecycle
  /// @{
  Storage *allocateObject(const ClassDecl *CD, const FieldDecl *Owner,
                          uint64_t ObjectID);
  Storage *allocateFieldStorage(const FieldDecl *F, uint64_t ObjectID);
  uint64_t traceAlloc(const ClassDecl *CD, uint64_t Count);
  void traceFree(Storage *Obj);
  void construct(Storage *Obj, const ClassDecl *CD,
                 const ConstructorDecl *Ctor, std::vector<Value> Args,
                 bool MostDerived);
  void defaultConstructBasesAndMembers(Storage *Obj, const ClassDecl *CD,
                                       bool MostDerived);
  void destroy(Storage *Obj, const ClassDecl *CD, bool MostDerived);
  /// Runs the full destruction (dynamic dispatch from Obj->Class) and
  /// records the trace event.
  void destroyCompleteObject(Storage *Obj);
  /// @}

  /// \name Execution
  /// @{
  Value callFunction(const FunctionDecl *FD, Storage *This,
                     std::vector<Value> Args,
                     const ClassDecl *DispatchClass);
  Flow execStmt(const Stmt *S);
  Flow execCompound(const CompoundStmt *CS);
  void execVarDecl(const VarDecl *V, std::vector<Storage *> &BlockObjects);
  /// @}

  /// \name Expression evaluation
  /// @{
  Value evalRValue(const Expr *E);
  Storage *evalLValue(const Expr *E);
  /// Evaluates the object of a member access (handles `.` vs `->`).
  Storage *evalObjectBase(const Expr *Base, bool IsArrow);
  Value loadScalar(Storage *S);
  void storeScalar(Storage *S, const Value &V, const Type *DeclaredTy);
  Value callBuiltin(const FunctionDecl *FD, std::vector<Value> &Args);
  Value evalCall(const CallExpr *Call);
  Value evalNew(const NewExpr *N);
  void evalDelete(const DeleteExpr *D);
  /// Evaluates a delete/free argument: a (cast-stripped) direct member
  /// access is loaded without read attribution.
  Value evalDeallocArg(const Expr *E);
  Value evalUnary(const UnaryExpr *E);
  Value evalBinary(const BinaryExpr *E);
  Value evalAssign(const AssignExpr *E);
  /// Loads a scalar, or decays an object/array storage to a pointer.
  Value loadOrDecay(Storage *S);
  Value convertForStore(const Value &V, const Type *Ty) const;
  /// @}

  void step();
  [[noreturn]] void fail(const std::string &Message);

  Storage *stringStorage(const StringLiteralExpr *S);
  Storage *globalStorage(const VarDecl *GV);

  const ASTContext &Ctx;
  const ClassHierarchy &CH;
  InterpOptions Options;
  LayoutEngine Layout;

  MemoryArena Arena;
  /// A deque so references to a frame stay valid while nested calls
  /// push and pop deeper frames (vector reallocation would dangle).
  std::deque<Frame> Stack;
  std::unordered_map<const VarDecl *, Storage *> Globals;
  std::unordered_map<const Expr *, Storage *> StringLiterals;

  std::string Output;
  uint64_t Steps = 0;
  /// Fields already appended to Options.ReadTrace (first-read dedup).
  std::set<const FieldDecl *> TracedReads;
  /// Telemetry tallies (plain members so the per-event cost is an
  /// increment; flushed to the active Telemetry when run() finishes).
  uint64_t NumCalls = 0;
  uint64_t NumCompleteObjects = 0;
  uint64_t NextObjectID = 1;
  /// Maps traced complete objects to their trace IDs.
  std::unordered_map<const Storage *, uint64_t> TraceIDs;
};

} // namespace dmm

#endif // DMM_INTERP_INTERPRETER_H
