//===-- fuzz/Shrinker.h - Delta-debugging program minimizer -----*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-granular delta-debugging shrinker (ddmin over source lines):
/// given a failing program and a predicate that re-checks the failure,
/// it repeatedly deletes line windows — halving the window until single
/// lines — keeping every deletion under which the failure still
/// reproduces. Because generated programs put one statement or member
/// declaration per line and classes on contiguous line runs, the
/// windows naturally drop statements, then members, then whole classes,
/// and candidates that break the syntax are rejected by the predicate
/// itself (a non-compiling candidate no longer fails the *same*
/// oracle).
///
/// The predicate is arbitrary, so the shrinker also minimizes
/// non-fuzzing witnesses (e.g. "still contains this diagnostic").
///
//===----------------------------------------------------------------------===//

#ifndef DMM_FUZZ_SHRINKER_H
#define DMM_FUZZ_SHRINKER_H

#include <functional>
#include <string>

namespace dmm {
namespace fuzz {

/// Bookkeeping for one shrink run (reported in failure records).
struct ShrinkStats {
  unsigned Attempts = 0;    ///< Predicate evaluations.
  unsigned Accepted = 0;    ///< Deletions that kept the failure.
  unsigned LinesBefore = 0; ///< Line count of the input program.
  unsigned LinesAfter = 0;  ///< Line count of the reproducer.
};

/// Minimizes \p Source while \p StillFails holds. \p StillFails must
/// return true for \p Source itself (callers pass the already-observed
/// failure's re-check); the returned program is the smallest
/// intermediate for which it returned true. At most \p MaxAttempts
/// predicate evaluations are spent.
std::string shrinkProgram(
    const std::string &Source,
    const std::function<bool(const std::string &)> &StillFails,
    unsigned MaxAttempts = 4000, ShrinkStats *Stats = nullptr);

} // namespace fuzz
} // namespace dmm

#endif // DMM_FUZZ_SHRINKER_H
