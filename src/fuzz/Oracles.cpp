//===-- fuzz/Oracles.cpp --------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/Report.h"
#include "cache/IncrementalAnalysis.h"
#include "cache/SummaryCache.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "profiler/ShadowProfiler.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"
#include "trace/DynamicMetrics.h"

#include <atomic>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#define DMM_FUZZ_GETPID _getpid
#else
#include <unistd.h>
#define DMM_FUZZ_GETPID getpid
#endif

using namespace dmm;
using namespace dmm::fuzz;

namespace {

std::set<std::string> deadNames(const DeadMemberResult &R) {
  std::set<std::string> Names;
  for (const FieldDecl *F : R.deadMembers())
    Names.insert(F->qualifiedName());
  return Names;
}

/// Truncates program output for failure details.
std::string excerpt(const std::string &S, size_t Max = 160) {
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...[" + std::to_string(S.size()) +
         " bytes total]";
}

OracleOutcome fail(const char *Oracle, std::string Detail) {
  Telemetry::count("fuzz.oracle.failures");
  OracleOutcome Out;
  Out.Passed = false;
  Out.FailedOracle = Oracle;
  Out.Detail = std::move(Detail);
  return Out;
}

/// Compiles, analyzes (with provenance) and renders the JSON report —
/// the byte-compared unit of the jobs-invariance oracle.
bool renderReport(const std::string &Source, const AnalysisOptions &Base,
                  std::string &Report, std::string &Error) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    Error = "does not compile: " + Diag.str();
    return false;
  }
  AnalysisOptions Opts = Base;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
  DeadMemberResult R = A.run(C->mainFunction());
  std::ostringstream OS;
  printJsonReport(OS, C->context(), R, &C->SM);
  Report = OS.str();
  return true;
}

/// Like renderReport, but through the summary pipeline — optionally
/// backed by \p Cache. The cache oracle compares its output against the
/// monolithic rendering byte-for-byte.
bool renderSummaryReport(const std::string &Source,
                         const AnalysisOptions &Base, SummaryCache *Cache,
                         std::string &Report, std::string &Error) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    Error = "does not compile: " + Diag.str();
    return false;
  }
  AnalysisOptions Opts = Base;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
  std::string LinkError;
  std::optional<DeadMemberResult> R = runSummaryAnalysis(
      C->context(), C->SM, A, C->mainFunction(), Opts, Cache, &LinkError);
  if (!R) {
    Error = "summary link failed: " + LinkError;
    return false;
  }
  std::ostringstream OS;
  printJsonReport(OS, C->context(), *R, &C->SM);
  Report = OS.str();
  return true;
}

/// A fresh scratch directory for one cache-oracle trip; unique across
/// processes (pid) and within one (counter).
std::filesystem::path freshCacheDir() {
  static std::atomic<uint64_t> Counter{0};
  return std::filesystem::temp_directory_path() /
         ("dmm-fuzz-cache-" + std::to_string(DMM_FUZZ_GETPID()) + "-" +
          std::to_string(Counter.fetch_add(1)));
}

} // namespace

OracleOutcome fuzz::runOracles(const std::string &Source,
                               const OracleConfig &Config) {
  Telemetry::count("fuzz.oracle.checks");

  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success)
    return fail("frontend", "program does not compile: " + Diag.str());

  DeadMemberAnalysis Analysis(C->context(), C->hierarchy(),
                              Config.Analysis);
  DeadMemberResult Result = Analysis.run(C->mainFunction());

  std::set<const FieldDecl *> Reads;
  std::vector<const FieldDecl *> ReadOrder;
  AllocationTrace Trace;
  std::optional<ShadowProfiler> Prof;
  InterpOptions IO;
  IO.ReadSet = &Reads;
  IO.ReadTrace = &ReadOrder;
  IO.CountDeallocationReads = Config.CountDeallocationReads;
  if (Config.Profiler) {
    // The profiler oracle rides the same execution: trace and shadow
    // profiler observe the identical event stream.
    Prof.emplace(C->hierarchy(), Result.deadSet());
    IO.Trace = &Trace;
    IO.Profiler = &*Prof;
  }
  Interpreter Interp(C->context(), C->hierarchy(), IO);
  ExecResult Original = Interp.run(C->mainFunction());
  if (!Original.Completed)
    return fail("runtime", "original program aborted: " + Original.Error);

  // Oracle 5: profiler agreement. The shadow profiler's online
  // accounting and the trace replay compute the paper's dynamic
  // measurements by independent mechanisms; any divergence is a bug in
  // one of them.
  if (Config.Profiler) {
    Prof->finalize(&C->SM);
    LayoutEngine Layout(C->hierarchy());
    const DynamicMetrics Replayed =
        computeDynamicMetrics(Trace, Layout, Result.deadSet());
    const DynamicMetrics &Shadow = Prof->metrics();
    if (Shadow != Replayed) {
      std::ostringstream OS;
      OS << "shadow profiler diverges from the trace replay: "
         << "object_space " << Shadow.ObjectSpace << " vs "
         << Replayed.ObjectSpace << ", dead_member_space "
         << Shadow.DeadMemberSpace << " vs " << Replayed.DeadMemberSpace
         << ", high_water_mark " << Shadow.HighWaterMark << " vs "
         << Replayed.HighWaterMark << ", high_water_mark_no_dead "
         << Shadow.HighWaterMarkNoDead << " vs "
         << Replayed.HighWaterMarkNoDead << ", num_objects "
         << Shadow.NumObjects << " vs " << Replayed.NumObjects;
      return fail("profiler", OS.str());
    }
  }

  // Oracle 2: dynamic soundness. Checked in first-read order so the
  // detail names the earliest offending read.
  if (Config.Soundness) {
    for (size_t I = 0; I != ReadOrder.size(); ++I) {
      const FieldDecl *F = ReadOrder[I];
      if (Result.isDead(F))
        return fail("soundness",
                    F->qualifiedName() + " (dynamic read #" +
                        std::to_string(I + 1) +
                        ") was read at run time but classified dead");
    }
  }

  // Oracle 1: differential semantics of the eliminated program.
  if (Config.Semantics) {
    EliminationResult Elim = eliminateDeadMembers(
        C->context(), Result, Analysis.callGraph(), Config.Fault);
    std::ostringstream ElimDiag;
    auto CE = compileString(Elim.Source, &ElimDiag);
    if (!CE->Success)
      return fail("semantics", "eliminated program does not compile: " +
                                   ElimDiag.str());
    Interpreter ElimInterp(CE->context(), CE->hierarchy(), {});
    ExecResult Transformed = ElimInterp.run(CE->mainFunction());
    if (!Transformed.Completed)
      return fail("semantics",
                  "eliminated program aborted: " + Transformed.Error);
    if (Transformed.Output != Original.Output)
      return fail("semantics", "output mismatch: original \"" +
                                   excerpt(Original.Output) +
                                   "\" vs eliminated \"" +
                                   excerpt(Transformed.Output) + "\"");
    if (Transformed.ExitCode != Original.ExitCode)
      return fail("semantics",
                  "exit code mismatch: original " +
                      std::to_string(Original.ExitCode) + " vs eliminated " +
                      std::to_string(Transformed.ExitCode));
  }

  if (Config.Invariance) {
    // Jobs invariance: the JSON report (classification, reasons,
    // provenance, locations) must be byte-identical at every worker
    // count.
    if (Config.JobsLevels.size() > 1) {
      unsigned SavedJobs = globalThreadPool().jobs();
      std::string Reference, ReferenceError;
      bool JobsFailed = false;
      OracleOutcome JobsOutcome;
      for (size_t I = 0; I != Config.JobsLevels.size(); ++I) {
        setGlobalJobs(Config.JobsLevels[I]);
        std::string Report, Error;
        if (!renderReport(Source, Config.Analysis, Report, Error)) {
          JobsOutcome = fail("invariance-jobs",
                             "at --jobs=" +
                                 std::to_string(Config.JobsLevels[I]) +
                                 " the program " + Error);
          JobsFailed = true;
          break;
        }
        if (I == 0) {
          Reference = Report;
        } else if (Report != Reference) {
          JobsOutcome = fail(
              "invariance-jobs",
              "JSON report differs between --jobs=" +
                  std::to_string(Config.JobsLevels[0]) + " and --jobs=" +
                  std::to_string(Config.JobsLevels[I]));
          JobsFailed = true;
          break;
        }
      }
      setGlobalJobs(SavedJobs);
      if (JobsFailed)
        return JobsOutcome;
      (void)ReferenceError;
    }

    // Monotonic precision: a more precise call graph never loses a
    // dead member, and the write-as-live baseline never beats the
    // paper's algorithm.
    auto DeadWith = [&](CallGraphKind K, bool Baseline) {
      AnalysisOptions Opts = Config.Analysis;
      Opts.CallGraph = K;
      Opts.TreatWritesAsLive = Baseline;
      DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
      return deadNames(A.run(C->mainFunction()));
    };
    std::pair<const char *, std::set<std::string>> Chain[] = {
        {"trivial", DeadWith(CallGraphKind::Trivial, false)},
        {"cha", DeadWith(CallGraphKind::CHA, false)},
        {"rta", DeadWith(CallGraphKind::RTA, false)},
        {"pta", DeadWith(CallGraphKind::PTA, false)},
    };
    for (size_t I = 1; I != 4; ++I)
      for (const std::string &Name : Chain[I - 1].second)
        if (!Chain[I].second.count(Name))
          return fail("invariance-monotonic",
                      Name + " is dead under " + Chain[I - 1].first +
                          " but live under " + Chain[I].first);
    std::set<std::string> Baseline =
        DeadWith(Config.Analysis.CallGraph, true);
    std::set<std::string> Paper = deadNames(Result);
    for (const std::string &Name : Baseline)
      if (!Paper.count(Name))
        return fail("invariance-monotonic",
                    Name + " is dead under the write-as-live baseline "
                           "but live under the paper algorithm");
  }

  // Oracle 4: cache equivalence. Summary-linked, cold-cache, and
  // warm-cache reports must be byte-identical to the monolithic one,
  // and the warm pass must actually replay the stored summary.
  if (Config.Cache) {
    std::string Reference, Error;
    if (!renderReport(Source, Config.Analysis, Reference, Error))
      return fail("cache", "reference render failed: the program " + Error);
    std::string Linked;
    if (!renderSummaryReport(Source, Config.Analysis, nullptr, Linked,
                             Error))
      return fail("cache", Error);
    if (Linked != Reference)
      return fail("cache", "summary-linked report differs from the "
                           "monolithic report");

    const std::filesystem::path Dir = freshCacheDir();
    auto Cleanup = [&Dir] {
      std::error_code EC;
      std::filesystem::remove_all(Dir, EC);
    };
    {
      SummaryCache Cold(SummaryCache::Config{Dir.string()});
      std::string ColdReport;
      if (!renderSummaryReport(Source, Config.Analysis, &Cold, ColdReport,
                               Error)) {
        Cleanup();
        return fail("cache", "cold cache: " + Error);
      }
      if (ColdReport != Reference) {
        Cleanup();
        return fail("cache", "cold-cache report differs from the "
                             "monolithic report");
      }
    }
    {
      SummaryCache Warm(SummaryCache::Config{Dir.string()});
      std::string WarmReport;
      if (!renderSummaryReport(Source, Config.Analysis, &Warm, WarmReport,
                               Error)) {
        Cleanup();
        return fail("cache", "warm cache: " + Error);
      }
      const SummaryCache::Stats S = Warm.stats();
      if (WarmReport != Reference) {
        Cleanup();
        return fail("cache", "warm-cache report differs from the "
                             "monolithic report");
      }
      if (S.Hits == 0) {
        Cleanup();
        return fail("cache",
                    "warm run replayed nothing: " +
                        std::to_string(S.Lookups) + " lookups, " +
                        std::to_string(S.Misses) + " misses, 0 hits");
      }
    }
    Cleanup();
  }

  return {};
}
