//===-- fuzz/Oracles.cpp --------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/Report.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <set>
#include <sstream>

using namespace dmm;
using namespace dmm::fuzz;

namespace {

std::set<std::string> deadNames(const DeadMemberResult &R) {
  std::set<std::string> Names;
  for (const FieldDecl *F : R.deadMembers())
    Names.insert(F->qualifiedName());
  return Names;
}

/// Truncates program output for failure details.
std::string excerpt(const std::string &S, size_t Max = 160) {
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...[" + std::to_string(S.size()) +
         " bytes total]";
}

OracleOutcome fail(const char *Oracle, std::string Detail) {
  Telemetry::count("fuzz.oracle.failures");
  OracleOutcome Out;
  Out.Passed = false;
  Out.FailedOracle = Oracle;
  Out.Detail = std::move(Detail);
  return Out;
}

/// Compiles, analyzes (with provenance) and renders the JSON report —
/// the byte-compared unit of the jobs-invariance oracle.
bool renderReport(const std::string &Source, const AnalysisOptions &Base,
                  std::string &Report, std::string &Error) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    Error = "does not compile: " + Diag.str();
    return false;
  }
  AnalysisOptions Opts = Base;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
  DeadMemberResult R = A.run(C->mainFunction());
  std::ostringstream OS;
  printJsonReport(OS, C->context(), R, &C->SM);
  Report = OS.str();
  return true;
}

} // namespace

OracleOutcome fuzz::runOracles(const std::string &Source,
                               const OracleConfig &Config) {
  Telemetry::count("fuzz.oracle.checks");

  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success)
    return fail("frontend", "program does not compile: " + Diag.str());

  DeadMemberAnalysis Analysis(C->context(), C->hierarchy(),
                              Config.Analysis);
  DeadMemberResult Result = Analysis.run(C->mainFunction());

  std::set<const FieldDecl *> Reads;
  std::vector<const FieldDecl *> ReadOrder;
  InterpOptions IO;
  IO.ReadSet = &Reads;
  IO.ReadTrace = &ReadOrder;
  IO.CountDeallocationReads = Config.CountDeallocationReads;
  Interpreter Interp(C->context(), C->hierarchy(), IO);
  ExecResult Original = Interp.run(C->mainFunction());
  if (!Original.Completed)
    return fail("runtime", "original program aborted: " + Original.Error);

  // Oracle 2: dynamic soundness. Checked in first-read order so the
  // detail names the earliest offending read.
  if (Config.Soundness) {
    for (size_t I = 0; I != ReadOrder.size(); ++I) {
      const FieldDecl *F = ReadOrder[I];
      if (Result.isDead(F))
        return fail("soundness",
                    F->qualifiedName() + " (dynamic read #" +
                        std::to_string(I + 1) +
                        ") was read at run time but classified dead");
    }
  }

  // Oracle 1: differential semantics of the eliminated program.
  if (Config.Semantics) {
    EliminationResult Elim = eliminateDeadMembers(
        C->context(), Result, Analysis.callGraph(), Config.Fault);
    std::ostringstream ElimDiag;
    auto CE = compileString(Elim.Source, &ElimDiag);
    if (!CE->Success)
      return fail("semantics", "eliminated program does not compile: " +
                                   ElimDiag.str());
    Interpreter ElimInterp(CE->context(), CE->hierarchy(), {});
    ExecResult Transformed = ElimInterp.run(CE->mainFunction());
    if (!Transformed.Completed)
      return fail("semantics",
                  "eliminated program aborted: " + Transformed.Error);
    if (Transformed.Output != Original.Output)
      return fail("semantics", "output mismatch: original \"" +
                                   excerpt(Original.Output) +
                                   "\" vs eliminated \"" +
                                   excerpt(Transformed.Output) + "\"");
    if (Transformed.ExitCode != Original.ExitCode)
      return fail("semantics",
                  "exit code mismatch: original " +
                      std::to_string(Original.ExitCode) + " vs eliminated " +
                      std::to_string(Transformed.ExitCode));
  }

  if (Config.Invariance) {
    // Jobs invariance: the JSON report (classification, reasons,
    // provenance, locations) must be byte-identical at every worker
    // count.
    if (Config.JobsLevels.size() > 1) {
      unsigned SavedJobs = globalThreadPool().jobs();
      std::string Reference, ReferenceError;
      bool JobsFailed = false;
      OracleOutcome JobsOutcome;
      for (size_t I = 0; I != Config.JobsLevels.size(); ++I) {
        setGlobalJobs(Config.JobsLevels[I]);
        std::string Report, Error;
        if (!renderReport(Source, Config.Analysis, Report, Error)) {
          JobsOutcome = fail("invariance-jobs",
                             "at --jobs=" +
                                 std::to_string(Config.JobsLevels[I]) +
                                 " the program " + Error);
          JobsFailed = true;
          break;
        }
        if (I == 0) {
          Reference = Report;
        } else if (Report != Reference) {
          JobsOutcome = fail(
              "invariance-jobs",
              "JSON report differs between --jobs=" +
                  std::to_string(Config.JobsLevels[0]) + " and --jobs=" +
                  std::to_string(Config.JobsLevels[I]));
          JobsFailed = true;
          break;
        }
      }
      setGlobalJobs(SavedJobs);
      if (JobsFailed)
        return JobsOutcome;
      (void)ReferenceError;
    }

    // Monotonic precision: a more precise call graph never loses a
    // dead member, and the write-as-live baseline never beats the
    // paper's algorithm.
    auto DeadWith = [&](CallGraphKind K, bool Baseline) {
      AnalysisOptions Opts = Config.Analysis;
      Opts.CallGraph = K;
      Opts.TreatWritesAsLive = Baseline;
      DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
      return deadNames(A.run(C->mainFunction()));
    };
    std::pair<const char *, std::set<std::string>> Chain[] = {
        {"trivial", DeadWith(CallGraphKind::Trivial, false)},
        {"cha", DeadWith(CallGraphKind::CHA, false)},
        {"rta", DeadWith(CallGraphKind::RTA, false)},
        {"pta", DeadWith(CallGraphKind::PTA, false)},
    };
    for (size_t I = 1; I != 4; ++I)
      for (const std::string &Name : Chain[I - 1].second)
        if (!Chain[I].second.count(Name))
          return fail("invariance-monotonic",
                      Name + " is dead under " + Chain[I - 1].first +
                          " but live under " + Chain[I].first);
    std::set<std::string> Baseline =
        DeadWith(Config.Analysis.CallGraph, true);
    std::set<std::string> Paper = deadNames(Result);
    for (const std::string &Name : Baseline)
      if (!Paper.count(Name))
        return fail("invariance-monotonic",
                    Name + " is dead under the write-as-live baseline "
                           "but live under the paper algorithm");
  }

  return {};
}
