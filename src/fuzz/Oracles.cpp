//===-- fuzz/Oracles.cpp --------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/Report.h"
#include "cache/IncrementalAnalysis.h"
#include "cache/SummaryCache.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "profiler/ShadowProfiler.h"
#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"
#include "trace/DynamicMetrics.h"
#include "vm/VM.h"

#include <atomic>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#define DMM_FUZZ_GETPID _getpid
#else
#include <unistd.h>
#define DMM_FUZZ_GETPID getpid
#endif

using namespace dmm;
using namespace dmm::fuzz;

namespace {

std::set<std::string> deadNames(const DeadMemberResult &R) {
  std::set<std::string> Names;
  for (const FieldDecl *F : R.deadMembers())
    Names.insert(F->qualifiedName());
  return Names;
}

/// Truncates program output for failure details.
std::string excerpt(const std::string &S, size_t Max = 160) {
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...[" + std::to_string(S.size()) +
         " bytes total]";
}

OracleOutcome fail(const char *Oracle, std::string Detail) {
  Telemetry::count("fuzz.oracle.failures");
  OracleOutcome Out;
  Out.Passed = false;
  Out.FailedOracle = Oracle;
  Out.Detail = std::move(Detail);
  return Out;
}

/// Compiles, analyzes (with provenance) and renders the JSON report —
/// the byte-compared unit of the jobs-invariance oracle.
bool renderReport(const std::string &Source, const AnalysisOptions &Base,
                  std::string &Report, std::string &Error) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    Error = "does not compile: " + Diag.str();
    return false;
  }
  AnalysisOptions Opts = Base;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
  DeadMemberResult R = A.run(C->mainFunction());
  std::ostringstream OS;
  printJsonReport(OS, C->context(), R, &C->SM);
  Report = OS.str();
  return true;
}

/// Like renderReport, but through the summary pipeline — optionally
/// backed by \p Cache. The cache oracle compares its output against the
/// monolithic rendering byte-for-byte.
bool renderSummaryReport(const std::string &Source,
                         const AnalysisOptions &Base, SummaryCache *Cache,
                         std::string &Report, std::string &Error) {
  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    Error = "does not compile: " + Diag.str();
    return false;
  }
  AnalysisOptions Opts = Base;
  Opts.RecordProvenance = true;
  DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
  std::string LinkError;
  std::optional<DeadMemberResult> R = runSummaryAnalysis(
      C->context(), C->SM, A, C->mainFunction(), Opts, Cache, &LinkError);
  if (!R) {
    Error = "summary link failed: " + LinkError;
    return false;
  }
  std::ostringstream OS;
  printJsonReport(OS, C->context(), *R, &C->SM);
  Report = OS.str();
  return true;
}

/// Everything one engine exposes through the InterpOptions hook surface
/// on one execution — the comparison unit of the engine oracle.
/// ExecResult::Steps is deliberately absent: the engines count
/// different units (bytecode instructions vs AST visits).
struct EngineObservation {
  ExecResult R;
  std::set<const FieldDecl *> Reads;
  std::vector<const FieldDecl *> ReadOrder;
  std::set<const FieldDecl *> Writes;
  FieldHeat Heat;
  std::vector<TraceEvent> Events;
  ProfileSummary Prof;
};

/// Runs the program on one engine with the full hook surface armed.
EngineObservation runOnEngine(Compilation &C, bool UseVm,
                              const FieldSet &Dead,
                              const OracleConfig &Config) {
  EngineObservation Obs;
  AllocationTrace Trace;
  ShadowProfiler Prof(C.hierarchy(), Dead);
  InterpOptions IO;
  IO.ReadSet = &Obs.Reads;
  IO.ReadTrace = &Obs.ReadOrder;
  IO.WriteSet = &Obs.Writes;
  IO.Heat = &Obs.Heat;
  IO.Trace = &Trace;
  IO.TraceStackObjects = true;
  IO.Profiler = &Prof;
  IO.CountDeallocationReads = Config.CountDeallocationReads;
  if (UseVm) {
    vm::CompilerConfig CC;
    CC.FaultAddOffByOne = Config.VmMiscompile;
    vm::VM Machine(C.context(), C.hierarchy(), IO, CC);
    Obs.R = Machine.run(C.mainFunction());
  } else {
    Interpreter Interp(C.context(), C.hierarchy(), IO);
    Obs.R = Interp.run(C.mainFunction());
  }
  Obs.Events = Trace.events();
  Obs.Prof = Prof.finalize(&C.SM);
  return Obs;
}

/// First divergence between the tree-walker's and the VM's observations,
/// or std::nullopt when they agree byte for byte.
std::optional<std::string> firstEngineDivergence(const EngineObservation &T,
                                                 const EngineObservation &V) {
  auto Mismatch = [](const std::string &What, const std::string &Tree,
                     const std::string &Vm) {
    return What + ": tree " + Tree + " vs vm " + Vm;
  };
  if (T.R.Completed != V.R.Completed)
    return Mismatch("completion", T.R.Completed ? "completed" : "aborted",
                    V.R.Completed ? "completed" : "aborted");
  if (T.R.Error != V.R.Error)
    return Mismatch("error message", "\"" + T.R.Error + "\"",
                    "\"" + V.R.Error + "\"");
  if (T.R.Output != V.R.Output)
    return Mismatch("output", "\"" + excerpt(T.R.Output) + "\"",
                    "\"" + excerpt(V.R.Output) + "\"");
  if (T.R.ExitCode != V.R.ExitCode)
    return Mismatch("exit code", std::to_string(T.R.ExitCode),
                    std::to_string(V.R.ExitCode));
  if (T.ReadOrder.size() != V.ReadOrder.size())
    return Mismatch("first-read count", std::to_string(T.ReadOrder.size()),
                    std::to_string(V.ReadOrder.size()));
  for (size_t I = 0; I != T.ReadOrder.size(); ++I)
    if (T.ReadOrder[I] != V.ReadOrder[I])
      return Mismatch("first-read #" + std::string(std::to_string(I + 1)),
                      T.ReadOrder[I]->qualifiedName(),
                      V.ReadOrder[I]->qualifiedName());
  if (T.Reads != V.Reads)
    return Mismatch("read set size", std::to_string(T.Reads.size()),
                    std::to_string(V.Reads.size()));
  if (T.Writes != V.Writes)
    return Mismatch("write set size", std::to_string(T.Writes.size()),
                    std::to_string(V.Writes.size()));
  for (const auto &[F, N] : T.Heat.Reads) {
    auto It = V.Heat.Reads.find(F);
    uint64_t VN = It == V.Heat.Reads.end() ? 0 : It->second;
    if (VN != N)
      return Mismatch("read heat of " + F->qualifiedName(),
                      std::to_string(N), std::to_string(VN));
  }
  if (T.Heat.Reads.size() != V.Heat.Reads.size())
    return Mismatch("read-heat entries", std::to_string(T.Heat.Reads.size()),
                    std::to_string(V.Heat.Reads.size()));
  for (const auto &[F, N] : T.Heat.Writes) {
    auto It = V.Heat.Writes.find(F);
    uint64_t VN = It == V.Heat.Writes.end() ? 0 : It->second;
    if (VN != N)
      return Mismatch("write heat of " + F->qualifiedName(),
                      std::to_string(N), std::to_string(VN));
  }
  if (T.Heat.Writes.size() != V.Heat.Writes.size())
    return Mismatch("write-heat entries",
                    std::to_string(T.Heat.Writes.size()),
                    std::to_string(V.Heat.Writes.size()));
  if (T.Events.size() != V.Events.size())
    return Mismatch("trace length", std::to_string(T.Events.size()),
                    std::to_string(V.Events.size()));
  for (size_t I = 0; I != T.Events.size(); ++I) {
    const TraceEvent &A = T.Events[I], &B = V.Events[I];
    if (A.Kind != B.Kind || A.ObjectID != B.ObjectID ||
        A.Class != B.Class || A.Count != B.Count || A.Bytes != B.Bytes ||
        A.Time != B.Time)
      return "trace event #" + std::to_string(I + 1) + " differs";
  }
  const ProfileSummary &TP = T.Prof, &VP = V.Prof;
  if (TP.Metrics != VP.Metrics)
    return std::string("profiler metrics differ (high_water_mark ") +
           std::to_string(TP.Metrics.HighWaterMark) + " vs " +
           std::to_string(VP.Metrics.HighWaterMark) + ")";
  if (TP.AllocEvents != VP.AllocEvents || TP.FreeEvents != VP.FreeEvents ||
      TP.LeakedObjects != VP.LeakedObjects ||
      TP.PeakAllocEvent != VP.PeakAllocEvent ||
      TP.SnapshotStride != VP.SnapshotStride ||
      TP.ReadBytes != VP.ReadBytes || TP.WrittenBytes != VP.WrittenBytes ||
      TP.AddrTakenBytes != VP.AddrTakenBytes ||
      TP.NeverReadBytes != VP.NeverReadBytes)
    return std::string("profiler byte accounting differs (read ") +
           std::to_string(TP.ReadBytes) + " vs " +
           std::to_string(VP.ReadBytes) + ", written " +
           std::to_string(TP.WrittenBytes) + " vs " +
           std::to_string(VP.WrittenBytes) + ")";
  if (TP.Snapshots.size() != VP.Snapshots.size())
    return Mismatch("snapshot count", std::to_string(TP.Snapshots.size()),
                    std::to_string(VP.Snapshots.size()));
  for (size_t I = 0; I != TP.Snapshots.size(); ++I) {
    const ProfileSnapshot &A = TP.Snapshots[I], &B = VP.Snapshots[I];
    if (A.AllocEvent != B.AllocEvent || A.LiveBytes != B.LiveBytes ||
        A.LiveBytesNoDead != B.LiveBytesNoDead ||
        A.LiveObjects != B.LiveObjects)
      return "profiler snapshot #" + std::to_string(I + 1) + " differs";
  }
  if (TP.Sites.size() != VP.Sites.size())
    return Mismatch("site-table rows", std::to_string(TP.Sites.size()),
                    std::to_string(VP.Sites.size()));
  for (size_t I = 0; I != TP.Sites.size(); ++I) {
    const ProfileSiteRow &A = TP.Sites[I], &B = VP.Sites[I];
    if (A.File != B.File || A.Line != B.Line || A.Class != B.Class ||
        A.Member != B.Member || A.Objects != B.Objects ||
        A.AllocBytes != B.AllocBytes || A.WrittenBytes != B.WrittenBytes ||
        A.ReadBytes != B.ReadBytes || A.AddrTakenBytes != B.AddrTakenBytes ||
        A.NeverReadBytes != B.NeverReadBytes ||
        A.StaticDead != B.StaticDead)
      return "profiler site row " + A.File + ":" + std::to_string(A.Line) +
             " " + A.Class + "::" + A.Member + " differs";
  }
  return std::nullopt;
}

/// A fresh scratch directory for one cache-oracle trip; unique across
/// processes (pid) and within one (counter).
std::filesystem::path freshCacheDir() {
  static std::atomic<uint64_t> Counter{0};
  return std::filesystem::temp_directory_path() /
         ("dmm-fuzz-cache-" + std::to_string(DMM_FUZZ_GETPID()) + "-" +
          std::to_string(Counter.fetch_add(1)));
}

} // namespace

OracleOutcome fuzz::runOracles(const std::string &Source,
                               const OracleConfig &Config) {
  Telemetry::count("fuzz.oracle.checks");

  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success)
    return fail("frontend", "program does not compile: " + Diag.str());

  DeadMemberAnalysis Analysis(C->context(), C->hierarchy(),
                              Config.Analysis);
  DeadMemberResult Result = Analysis.run(C->mainFunction());

  std::set<const FieldDecl *> Reads;
  std::vector<const FieldDecl *> ReadOrder;
  AllocationTrace Trace;
  std::optional<ShadowProfiler> Prof;
  InterpOptions IO;
  IO.ReadSet = &Reads;
  IO.ReadTrace = &ReadOrder;
  IO.CountDeallocationReads = Config.CountDeallocationReads;
  if (Config.Profiler) {
    // The profiler oracle rides the same execution: trace and shadow
    // profiler observe the identical event stream.
    Prof.emplace(C->hierarchy(), Result.deadSet());
    IO.Trace = &Trace;
    IO.Profiler = &*Prof;
  }
  Interpreter Interp(C->context(), C->hierarchy(), IO);
  ExecResult Original = Interp.run(C->mainFunction());
  if (!Original.Completed)
    return fail("runtime", "original program aborted: " + Original.Error);

  // Oracle 5: profiler agreement. The shadow profiler's online
  // accounting and the trace replay compute the paper's dynamic
  // measurements by independent mechanisms; any divergence is a bug in
  // one of them.
  if (Config.Profiler) {
    Prof->finalize(&C->SM);
    LayoutEngine Layout(C->hierarchy());
    const DynamicMetrics Replayed =
        computeDynamicMetrics(Trace, Layout, Result.deadSet());
    const DynamicMetrics &Shadow = Prof->metrics();
    if (Shadow != Replayed) {
      std::ostringstream OS;
      OS << "shadow profiler diverges from the trace replay: "
         << "object_space " << Shadow.ObjectSpace << " vs "
         << Replayed.ObjectSpace << ", dead_member_space "
         << Shadow.DeadMemberSpace << " vs " << Replayed.DeadMemberSpace
         << ", high_water_mark " << Shadow.HighWaterMark << " vs "
         << Replayed.HighWaterMark << ", high_water_mark_no_dead "
         << Shadow.HighWaterMarkNoDead << " vs "
         << Replayed.HighWaterMarkNoDead << ", num_objects "
         << Shadow.NumObjects << " vs " << Replayed.NumObjects;
      return fail("profiler", OS.str());
    }
  }

  // Oracle 6: engine equivalence. The bytecode VM must reproduce the
  // tree-walker's full observable surface — output, exit code, error,
  // first-read order, read/write sets, heat, allocation trace, and
  // shadow-profiler summary — byte for byte. Steps is exempt (the
  // engines count different units), so a step-limit abort is compared
  // by error kind alone: the limit trips at engine-specific points.
  if (Config.Engine) {
    EngineObservation Tree =
        runOnEngine(*C, /*UseVm=*/false, Result.deadSet(), Config);
    EngineObservation Vm =
        runOnEngine(*C, /*UseVm=*/true, Result.deadSet(), Config);
    bool TreeLimited =
        Tree.R.Error.find("step limit exceeded") != std::string::npos;
    bool VmLimited =
        Vm.R.Error.find("step limit exceeded") != std::string::npos;
    if (TreeLimited || VmLimited) {
      if (TreeLimited != VmLimited)
        return fail("engine",
                    std::string("step limit hit on ") +
                        (TreeLimited ? "tree" : "vm") +
                        " only: tree \"" + Tree.R.Error + "\" vs vm \"" +
                        Vm.R.Error + "\"");
    } else if (std::optional<std::string> Div =
                   firstEngineDivergence(Tree, Vm)) {
      return fail("engine", "vm diverges from tree-walker: " + *Div);
    }
  }

  // Oracle 2: dynamic soundness. Checked in first-read order so the
  // detail names the earliest offending read.
  if (Config.Soundness) {
    for (size_t I = 0; I != ReadOrder.size(); ++I) {
      const FieldDecl *F = ReadOrder[I];
      if (Result.isDead(F))
        return fail("soundness",
                    F->qualifiedName() + " (dynamic read #" +
                        std::to_string(I + 1) +
                        ") was read at run time but classified dead");
    }
  }

  // Oracle 1: differential semantics of the eliminated program.
  if (Config.Semantics) {
    EliminationResult Elim = eliminateDeadMembers(
        C->context(), Result, Analysis.callGraph(), Config.Fault);
    std::ostringstream ElimDiag;
    auto CE = compileString(Elim.Source, &ElimDiag);
    if (!CE->Success)
      return fail("semantics", "eliminated program does not compile: " +
                                   ElimDiag.str());
    Interpreter ElimInterp(CE->context(), CE->hierarchy(), {});
    ExecResult Transformed = ElimInterp.run(CE->mainFunction());
    if (!Transformed.Completed)
      return fail("semantics",
                  "eliminated program aborted: " + Transformed.Error);
    if (Transformed.Output != Original.Output)
      return fail("semantics", "output mismatch: original \"" +
                                   excerpt(Original.Output) +
                                   "\" vs eliminated \"" +
                                   excerpt(Transformed.Output) + "\"");
    if (Transformed.ExitCode != Original.ExitCode)
      return fail("semantics",
                  "exit code mismatch: original " +
                      std::to_string(Original.ExitCode) + " vs eliminated " +
                      std::to_string(Transformed.ExitCode));
  }

  if (Config.Invariance) {
    // Jobs invariance: the JSON report (classification, reasons,
    // provenance, locations) must be byte-identical at every worker
    // count.
    if (Config.JobsLevels.size() > 1) {
      unsigned SavedJobs = globalThreadPool().jobs();
      std::string Reference, ReferenceError;
      bool JobsFailed = false;
      OracleOutcome JobsOutcome;
      for (size_t I = 0; I != Config.JobsLevels.size(); ++I) {
        setGlobalJobs(Config.JobsLevels[I]);
        std::string Report, Error;
        if (!renderReport(Source, Config.Analysis, Report, Error)) {
          JobsOutcome = fail("invariance-jobs",
                             "at --jobs=" +
                                 std::to_string(Config.JobsLevels[I]) +
                                 " the program " + Error);
          JobsFailed = true;
          break;
        }
        if (I == 0) {
          Reference = Report;
        } else if (Report != Reference) {
          JobsOutcome = fail(
              "invariance-jobs",
              "JSON report differs between --jobs=" +
                  std::to_string(Config.JobsLevels[0]) + " and --jobs=" +
                  std::to_string(Config.JobsLevels[I]));
          JobsFailed = true;
          break;
        }
      }
      setGlobalJobs(SavedJobs);
      if (JobsFailed)
        return JobsOutcome;
      (void)ReferenceError;
    }

    // Monotonic precision: a more precise call graph never loses a
    // dead member, and the write-as-live baseline never beats the
    // paper's algorithm.
    auto DeadWith = [&](CallGraphKind K, bool Baseline) {
      AnalysisOptions Opts = Config.Analysis;
      Opts.CallGraph = K;
      Opts.TreatWritesAsLive = Baseline;
      DeadMemberAnalysis A(C->context(), C->hierarchy(), Opts);
      return deadNames(A.run(C->mainFunction()));
    };
    std::pair<const char *, std::set<std::string>> Chain[] = {
        {"trivial", DeadWith(CallGraphKind::Trivial, false)},
        {"cha", DeadWith(CallGraphKind::CHA, false)},
        {"rta", DeadWith(CallGraphKind::RTA, false)},
        {"pta", DeadWith(CallGraphKind::PTA, false)},
    };
    for (size_t I = 1; I != 4; ++I)
      for (const std::string &Name : Chain[I - 1].second)
        if (!Chain[I].second.count(Name))
          return fail("invariance-monotonic",
                      Name + " is dead under " + Chain[I - 1].first +
                          " but live under " + Chain[I].first);
    std::set<std::string> Baseline =
        DeadWith(Config.Analysis.CallGraph, true);
    std::set<std::string> Paper = deadNames(Result);
    for (const std::string &Name : Baseline)
      if (!Paper.count(Name))
        return fail("invariance-monotonic",
                    Name + " is dead under the write-as-live baseline "
                           "but live under the paper algorithm");
  }

  // Oracle 4: cache equivalence. Summary-linked, cold-cache, and
  // warm-cache reports must be byte-identical to the monolithic one,
  // and the warm pass must actually replay the stored summary.
  if (Config.Cache) {
    std::string Reference, Error;
    if (!renderReport(Source, Config.Analysis, Reference, Error))
      return fail("cache", "reference render failed: the program " + Error);
    std::string Linked;
    if (!renderSummaryReport(Source, Config.Analysis, nullptr, Linked,
                             Error))
      return fail("cache", Error);
    if (Linked != Reference)
      return fail("cache", "summary-linked report differs from the "
                           "monolithic report");

    const std::filesystem::path Dir = freshCacheDir();
    auto Cleanup = [&Dir] {
      std::error_code EC;
      std::filesystem::remove_all(Dir, EC);
    };
    {
      SummaryCache Cold(SummaryCache::Config{Dir.string()});
      std::string ColdReport;
      if (!renderSummaryReport(Source, Config.Analysis, &Cold, ColdReport,
                               Error)) {
        Cleanup();
        return fail("cache", "cold cache: " + Error);
      }
      if (ColdReport != Reference) {
        Cleanup();
        return fail("cache", "cold-cache report differs from the "
                             "monolithic report");
      }
    }
    {
      SummaryCache Warm(SummaryCache::Config{Dir.string()});
      std::string WarmReport;
      if (!renderSummaryReport(Source, Config.Analysis, &Warm, WarmReport,
                               Error)) {
        Cleanup();
        return fail("cache", "warm cache: " + Error);
      }
      const SummaryCache::Stats S = Warm.stats();
      if (WarmReport != Reference) {
        Cleanup();
        return fail("cache", "warm-cache report differs from the "
                             "monolithic report");
      }
      if (S.Hits == 0) {
        Cleanup();
        return fail("cache",
                    "warm run replayed nothing: " +
                        std::to_string(S.Lookups) + " lookups, " +
                        std::to_string(S.Misses) + " misses, 0 hits");
      }
    }
    Cleanup();
  }

  return {};
}
