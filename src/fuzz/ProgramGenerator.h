//===-- fuzz/ProgramGenerator.h - Random MiniC++ programs -------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing subsystem's program generator: small, valid-by-
/// construction MiniC++ programs covering the paper's full feature
/// matrix — deep single-inheritance chains with virtual dispatch,
/// unions, pointer-to-member constants and dereferences, address-taken
/// members, members whose only use feeds `delete`/`free` (the
/// deallocation exemption), `volatile` written-only members, unsafe
/// (`reinterpret_cast`) casts, `sizeof`, qualified base-member access,
/// and safe down-casts. Every generated program type-checks, runs to
/// completion, and produces deterministic observable output, so it can
/// be pushed through the differential oracles (fuzz/Oracles.h).
///
/// Generation is a pure function of (seed, options): the same pair
/// always yields byte-identical source, which is what makes shrunk
/// reproducers and CI smoke seeds replayable.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_FUZZ_PROGRAMGENERATOR_H
#define DMM_FUZZ_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace dmm {
namespace fuzz {

/// Feature toggles for the generator. Every toggle gates *eligibility*;
/// whether a particular program uses an eligible feature is decided by
/// the seeded RNG, so a sweep over seeds covers the cross product.
struct GeneratorOptions {
  unsigned MinClasses = 2; ///< Inclusive; chain depth lower bound.
  unsigned MaxClasses = 6; ///< Inclusive; chain depth upper bound.
  unsigned MinFields = 2;  ///< Numeric data members per class, lower.
  unsigned MaxFields = 5;  ///< Numeric data members per class, upper.

  bool VirtualDispatch = true;  ///< `virtual` readers along the chain.
  bool Unions = true;           ///< A scalar union + closure traffic.
  bool PointerToMember = true;  ///< `int K::* pm = &K::m; o.*pm`.
  bool AddressTaken = true;     ///< `&o.m` passed to a helper.
  bool DeleteExemption = true;  ///< Members only passed to delete/free.
  bool VolatileMembers = true;  ///< Written-only volatile members.
  bool UnsafeCasts = true;      ///< reinterpret_cast sweeps (rare).
  bool Sizeof = true;           ///< Layout-independent sizeof uses.
  bool QualifiedAccess = true;  ///< `o.Base::m` reads.
  bool Downcasts = true;        ///< Provably-safe `(Derived*)base`.
};

/// Deterministic random MiniC++ program generator.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed, GeneratorOptions Options = {});

  /// Generates the program for this generator's seed. Idempotent: a
  /// second call returns the same text.
  std::string generate();

  const GeneratorOptions &options() const { return Opts; }

private:
  uint64_t next();
  uint64_t below(uint64_t N);
  bool chance(unsigned Percent);
  /// chance() that also requires the feature toggle.
  bool feature(bool Enabled, unsigned Percent);

  void emitClasses(std::string &Out);
  void emitHelpers(std::string &Out);
  void emitMain(std::string &Out);

  uint64_t State;
  uint64_t InitState; ///< generate() restarts from here (idempotence).
  GeneratorOptions Opts;

  /// \name Per-generation layout decisions
  /// @{
  unsigned NumClasses = 0;
  std::vector<unsigned> FieldsPer; ///< Numeric members per class.
  std::vector<bool> Derives;       ///< Ki derives from Ki-1.
  std::vector<bool> HasVolatile;   ///< Ki has `volatile int vI`.
  std::vector<bool> HasOwned;      ///< Ki has `Payload *ownI`.
  bool UseUnion = false;
  bool UseVirtual = false;
  bool UsePayload = false; ///< Any HasOwned => emit class Payload.
  /// @}
};

} // namespace fuzz
} // namespace dmm

#endif // DMM_FUZZ_PROGRAMGENERATOR_H
