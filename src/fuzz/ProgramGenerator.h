//===-- fuzz/ProgramGenerator.h - Random MiniC++ programs -------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing subsystem's program generator: small, valid-by-
/// construction MiniC++ programs covering the paper's full feature
/// matrix — deep single-inheritance chains with virtual dispatch,
/// unions, pointer-to-member constants and dereferences, address-taken
/// members, members whose only use feeds `delete`/`free` (the
/// deallocation exemption), `volatile` written-only members, unsafe
/// (`reinterpret_cast`) casts, `sizeof`, qualified base-member access,
/// and safe down-casts. Every generated program type-checks, runs to
/// completion, and produces deterministic observable output, so it can
/// be pushed through the differential oracles (fuzz/Oracles.h).
///
/// Generation is a pure function of (seed, options): the same pair
/// always yields byte-identical source, which is what makes shrunk
/// reproducers and CI smoke seeds replayable.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_FUZZ_PROGRAMGENERATOR_H
#define DMM_FUZZ_PROGRAMGENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace dmm {
namespace fuzz {

/// Per-decision percent weights for the generator's seeded coin flips.
/// The defaults equal the historical hard-coded literals, so a
/// default-constructed FeatureWeights reproduces every existing seed
/// byte for byte; the liveness-driven feedback loop (fuzz/Feedback.h)
/// steers these between batches.
struct FeatureWeights {
  unsigned Derive = 60;           ///< Ki derives from Ki-1.
  unsigned Volatile = 35;         ///< Class has a volatile member.
  unsigned Owned = 35;            ///< Class has a Payload *own member.
  unsigned Union = 50;            ///< Program declares the union.
  unsigned Virtual = 70;          ///< sum() is virtual.
  unsigned CtorInit = 70;         ///< Ctor writes a numeric field.
  unsigned CtorVolatileWrite = 70;///< Ctor writes the volatile member.
  unsigned SumRead = 60;          ///< sum() reads a numeric field.
  unsigned SumQualified = 40;     ///< sum() does a qualified base read.
  unsigned GhostRead = 30;        ///< ghost() reads a numeric field.
  unsigned MainSumCall = 80;      ///< main calls s_i.sum().
  unsigned MainWrite = 50;        ///< main writes a random field.
  unsigned MainRead = 40;         ///< main reads a random field.
  unsigned AddressTaken = 25;     ///< absorb(&s_i.m).
  unsigned PointerToMember = 25;  ///< &K::m; s_i.*pm.
  unsigned MainQualified = 30;    ///< main qualified base read.
  unsigned VolatileStore = 50;    ///< main writes the volatile member.
  unsigned DeleteVsFree = 50;     ///< delete vs free for owned members.
  unsigned Sizeof = 20;           ///< sizeof branch.
  unsigned UnsafeCast = 12;       ///< reinterpret_cast sweep.
  unsigned Dispatch = 60;         ///< Base-pointer virtual call.
  unsigned Downcast = 50;         ///< static_cast downcast.
  unsigned DeepDispatch = 50;     ///< Root-typed deep pointer call.
  unsigned DeepDowncast = 40;     ///< C-style downcast on the deep chain.
  unsigned UnionAltRead = 50;     ///< Read u.ub instead of u.ua.

  bool operator==(const FeatureWeights &) const = default;
};

/// Feature toggles for the generator. Every toggle gates *eligibility*;
/// whether a particular program uses an eligible feature is decided by
/// the seeded RNG, so a sweep over seeds covers the cross product.
struct GeneratorOptions {
  unsigned MinClasses = 2; ///< Inclusive; chain depth lower bound.
  unsigned MaxClasses = 6; ///< Inclusive; chain depth upper bound.
  unsigned MinFields = 2;  ///< Numeric data members per class, lower.
  unsigned MaxFields = 5;  ///< Numeric data members per class, upper.

  bool VirtualDispatch = true;  ///< `virtual` readers along the chain.
  bool Unions = true;           ///< A scalar union + closure traffic.
  bool PointerToMember = true;  ///< `int K::* pm = &K::m; o.*pm`.
  bool AddressTaken = true;     ///< `&o.m` passed to a helper.
  bool DeleteExemption = true;  ///< Members only passed to delete/free.
  bool VolatileMembers = true;  ///< Written-only volatile members.
  bool UnsafeCasts = true;      ///< reinterpret_cast sweeps (rare).
  bool Sizeof = true;           ///< Layout-independent sizeof uses.
  bool QualifiedAccess = true;  ///< `o.Base::m` reads.
  bool Downcasts = true;        ///< Provably-safe `(Derived*)base`.

  /// Per-decision percent weights; defaults are byte-identical to the
  /// historical generator.
  FeatureWeights Weights;

  /// Liveness-driven mode (docs/TESTING.md): a value in [0,1] makes the
  /// generator plan a per-member live/dead intent so the analysis'
  /// achieved dead-member ratio lands on the target — live-intent
  /// members get a guaranteed reachable read, dead-intent members get
  /// writes only, and liveness-creating constructs (address-taken,
  /// pointer-to-member, qualified reads, unsafe casts) are retargeted
  /// or suppressed so they never resurrect a dead-intent member.
  /// Negative (the default) disables planning entirely: the emission
  /// path and its randomness stream are byte-identical to the
  /// historical generator.
  double TargetDeadRatio = -1.0;
};

/// Deterministic random MiniC++ program generator.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed, GeneratorOptions Options = {});

  /// Generates the program for this generator's seed. Idempotent: a
  /// second call returns the same text.
  std::string generate();

  const GeneratorOptions &options() const { return Opts; }

  /// \name Liveness plan introspection
  /// Valid after generate() when TargetDeadRatio is set: the planned
  /// member counts behind the target (dead-intent / all classifiable
  /// members). The achieved static ratio equals plannedDeadMembers() /
  /// plannedTotalMembers() up to rounding.
  /// @{
  unsigned plannedTotalMembers() const { return PlanTotal; }
  unsigned plannedDeadMembers() const { return PlanDead; }
  /// @}

private:
  uint64_t next();
  uint64_t below(uint64_t N);
  bool chance(unsigned Percent);
  /// chance() that also requires the feature toggle.
  bool feature(bool Enabled, unsigned Percent);

  bool liveDriven() const { return Opts.TargetDeadRatio >= 0.0; }
  /// Assigns a live/dead intent to every member so the dead fraction
  /// hits TargetDeadRatio (consumes randomness for the slot shuffle and
  /// the keep-alive mechanism draws).
  void planLiveness();
  /// Picks per-class keep-alive mechanisms: live-intent members whose
  /// liveness comes from an address-taken site, a pointer-to-member
  /// constant, or an unsafe-cast sweep *instead of* a read, so those
  /// LivenessReasons stay reachable in liveness-driven mode (the
  /// analysis records the first cause it sees, and a member read in
  /// sum() is always found first).
  void planKeepAlive();
  /// Live intent of a numeric field; always true outside liveness-
  /// driven mode (the legacy coin flips decide there).
  bool fieldLiveIntent(unsigned Class, unsigned Field) const;
  /// Whether a read of the field may be emitted: live intent, and not
  /// reserved by a keep-alive mechanism (reading a reserved member
  /// would change its recorded liveness cause to plain `read`).
  bool fieldReadable(unsigned Class, unsigned Field) const;
  /// True when every member contained in class \p Class (its whole
  /// derivation chain) has live intent, so an unsafe-cast sweep does
  /// not contradict the plan.
  bool chainAllLive(unsigned Class) const;

  void emitClasses(std::string &Out);
  void emitHelpers(std::string &Out);
  void emitMain(std::string &Out);

  uint64_t State;
  uint64_t InitState; ///< generate() restarts from here (idempotence).
  GeneratorOptions Opts;

  /// \name Per-generation layout decisions
  /// @{
  unsigned NumClasses = 0;
  std::vector<unsigned> FieldsPer; ///< Numeric members per class.
  std::vector<bool> Derives;       ///< Ki derives from Ki-1.
  std::vector<bool> HasVolatile;   ///< Ki has `volatile int vI`.
  std::vector<bool> HasOwned;      ///< Ki has `Payload *ownI`.
  bool UseUnion = false;
  bool UseVirtual = false;
  bool UsePayload = false; ///< Any HasOwned => emit class Payload.

  /// \name Liveness-driven plan (valid when TargetDeadRatio >= 0)
  std::vector<std::vector<char>> FieldLive; ///< [class][field] intent.
  std::vector<char> VolLive;                ///< Volatile member intent.
  bool UnionLive = true;                    ///< Union members intent.
  unsigned PlanTotal = 0;                   ///< Classifiable members.
  unsigned PlanDead = 0;                    ///< Dead-intent members.
  /// Keep-alive designations (planKeepAlive): field index per class, or
  /// -1. A designated field is live via its mechanism only — no reads.
  std::vector<int> AltAddr;  ///< Kept live by absorb(&o.m).
  std::vector<int> AltPtm;   ///< Kept live by &K::m.
  std::vector<int> CastHide; ///< Kept live by the unsafe-cast sweep.
  std::vector<char> CastKeep; ///< Class emits the reinterpret_cast.
  /// @}
};

} // namespace fuzz
} // namespace dmm

#endif // DMM_FUZZ_PROGRAMGENERATOR_H
