//===-- fuzz/Shrinker.cpp -------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "telemetry/Telemetry.h"

#include <vector>

using namespace dmm;
using namespace dmm::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t NL = Source.find('\n', Pos);
    if (NL == std::string::npos) {
      Lines.push_back(Source.substr(Pos));
      break;
    }
    Lines.push_back(Source.substr(Pos, NL - Pos));
    Pos = NL + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// Counts lines that carry anything beyond whitespace.
unsigned nonBlankCount(const std::vector<std::string> &Lines) {
  unsigned N = 0;
  for (const std::string &L : Lines)
    if (L.find_first_not_of(" \t\r") != std::string::npos)
      ++N;
  return N;
}

} // namespace

std::string fuzz::shrinkProgram(
    const std::string &Source,
    const std::function<bool(const std::string &)> &StillFails,
    unsigned MaxAttempts, ShrinkStats *Stats) {
  std::vector<std::string> Lines = splitLines(Source);
  ShrinkStats S;
  S.LinesBefore = nonBlankCount(Lines);

  // ddmin over line windows: window size halves from |Lines|/2 down to
  // 1; every pass that deletes something re-arms another full sweep,
  // until a sweep makes no progress or the attempt budget runs out.
  bool Progress = true;
  while (Progress && S.Attempts < MaxAttempts) {
    Progress = false;
    for (size_t Window = Lines.size() / 2; Window >= 1; Window /= 2) {
      size_t Start = 0;
      while (Start < Lines.size() && S.Attempts < MaxAttempts) {
        size_t Len = Window < Lines.size() - Start ? Window
                                                   : Lines.size() - Start;
        std::vector<std::string> Candidate;
        Candidate.reserve(Lines.size() - Len);
        Candidate.insert(Candidate.end(), Lines.begin(),
                         Lines.begin() + Start);
        Candidate.insert(Candidate.end(), Lines.begin() + Start + Len,
                         Lines.end());
        ++S.Attempts;
        if (StillFails(joinLines(Candidate))) {
          Lines = std::move(Candidate);
          ++S.Accepted;
          Progress = true;
          // Retry the same offset: the next window slid into place.
        } else {
          Start += Len;
        }
      }
      if (Window == 1)
        break;
    }
  }

  // Strip blank lines the deletions left behind (free wins; no
  // predicate cost — blank lines cannot affect compilation).
  std::vector<std::string> Packed;
  for (const std::string &L : Lines)
    if (L.find_first_not_of(" \t\r") != std::string::npos)
      Packed.push_back(L);
  std::string Result = joinLines(Packed);
  if (Packed.size() != Lines.size() && !StillFails(Result)) {
    ++S.Attempts;
    Result = joinLines(Lines); // Paranoia: keep the verified version.
  }

  S.LinesAfter = nonBlankCount(splitLines(Result));
  Telemetry::count("fuzz.shrink.attempts", S.Attempts);
  Telemetry::count("fuzz.shrink.accepted", S.Accepted);
  if (Stats)
    *Stats = S;
  return Result;
}
