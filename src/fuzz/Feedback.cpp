//===-- fuzz/Feedback.cpp -------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Feedback.h"

#include <algorithm>

using namespace dmm;
using namespace dmm::fuzz;

const char *fuzz::steeringName(Steering S) {
  switch (S) {
  case Steering::Closed:
    return "closed";
  case Steering::Neutral:
    return "neutral";
  case Steering::Inverted:
    return "inverted";
  }
  return "closed";
}

bool fuzz::parseSteering(const std::string &Name, Steering &Out) {
  if (Name == "closed")
    Out = Steering::Closed;
  else if (Name == "neutral")
    Out = Steering::Neutral;
  else if (Name == "inverted")
    Out = Steering::Inverted;
  else
    return false;
  return true;
}

namespace {

/// The steerable features: each weight knob paired with the coverage
/// keys that prove the boundary behind it was exercised.
struct FeatureLink {
  unsigned FeatureWeights::*Weight;
  std::vector<const char *> Keys;
};

const std::vector<FeatureLink> &featureLinks() {
  static const std::vector<FeatureLink> Links = {
      {&FeatureWeights::Union,
       {"boundary.union_closure", "union.all_dead", "union.closure_live"}},
      {&FeatureWeights::Volatile,
       {"cause.volatile_write", "dead_adjacent.volatile_write"}},
      {&FeatureWeights::Owned,
       {"boundary.dealloc_exemption", "elim.drop_dealloc"}},
      {&FeatureWeights::UnsafeCast,
       {"cause.unsafe_cast", "dead_adjacent.unsafe_cast"}},
      {&FeatureWeights::AddressTaken,
       {"cause.address_taken", "dead_adjacent.address_taken"}},
      {&FeatureWeights::PointerToMember,
       {"cause.pointer_to_member", "dead_adjacent.pointer_to_member"}},
      {&FeatureWeights::Sizeof, {"boundary.sizeof"}},
  };
  return Links;
}

} // namespace

FeedbackLoop::FeedbackLoop(GeneratorOptions Base, Steering Mode,
                           double FixedTarget, bool Sweep)
    : Base(Base), Current(Base), Mode(Mode), FixedTarget(FixedTarget),
      Sweep(Sweep) {
  if (FixedTarget >= 0)
    Current.TargetDeadRatio = std::min(1.0, FixedTarget);
  else if (Sweep)
    Current.TargetDeadRatio = ratioBucketCenter(kRatioBuckets / 2);
}

void FeedbackLoop::observe(const ProgramMeasurement &M) {
  if (!M.Valid)
    return;
  for (const std::string &K : M.Keys)
    Coverage.add(K);
  ++BucketHits[ratioBucket(M.AchievedDeadRatio)];
  BatchRatioSum += M.AchievedDeadRatio;
  ++BatchPrograms;
  TotalRatioSum += M.AchievedDeadRatio;
  ++TotalPrograms;
  RatioMin = std::min(RatioMin, M.AchievedDeadRatio);
  RatioMax = std::max(RatioMax, M.AchievedDeadRatio);
}

void FeedbackLoop::endBatch() {
  if (!BatchPrograms)
    return;
  BatchRecord Rec;
  Rec.Target = Current.TargetDeadRatio;
  Rec.AchievedMean = BatchRatioSum / BatchPrograms;
  Rec.Programs = BatchPrograms;
  Rec.NewEntries = Coverage.entries() - EntriesAtBatchStart;
  History.push_back(Rec);

  if (Sweep)
    steerSweep();
  else if (FixedTarget >= 0)
    steerFixed();

  BatchRatioSum = 0.0;
  BatchPrograms = 0;
  EntriesAtBatchStart = Coverage.entries();
}

void FeedbackLoop::setFeatureWeights(unsigned MissingWeight) {
  for (const FeatureLink &Link : featureLinks()) {
    bool Missing = true;
    for (const char *Key : Link.Keys)
      if (Coverage.covered(Key)) {
        Missing = false;
        break;
      }
    Current.Weights.*Link.Weight =
        Missing ? MissingWeight : Base.Weights.*Link.Weight;
  }
}

void FeedbackLoop::steerSweep() {
  switch (Mode) {
  case Steering::Closed: {
    // Chase the first uncovered ratio bucket (round-robin so every
    // batch moves on even when coverage saturates), and raise the
    // weight of every feature whose boundary keys are still missing.
    unsigned Pick = kRatioBuckets;
    for (unsigned K = 0; K != kRatioBuckets; ++K) {
      unsigned B = (Cursor + K) % kRatioBuckets;
      if (!Coverage.covered("ratio.b" + std::to_string(B))) {
        Pick = B;
        break;
      }
    }
    if (Pick == kRatioBuckets)
      Pick = Cursor % kRatioBuckets;
    Cursor = (Pick + 1) % kRatioBuckets;
    Current.TargetDeadRatio = ratioBucketCenter(Pick);
    setFeatureWeights(/*MissingWeight=*/90);
    break;
  }
  case Steering::Neutral:
    // Uniform target cycle, stock weights: the coverage signal is
    // ignored entirely (the control arm of the self-validation test).
    Current.TargetDeadRatio =
        ratioBucketCenter(Cursor % kRatioBuckets);
    Cursor = (Cursor + 1) % kRatioBuckets;
    Current.Weights = Base.Weights;
    break;
  case Steering::Inverted: {
    // Anti-steering: re-target the already-most-covered bucket and
    // starve exactly the features whose keys are missing. A live loop
    // must make this measurably worse than neutral.
    unsigned Pick = 0;
    for (unsigned B = 1; B != kRatioBuckets; ++B)
      if (BucketHits[B] > BucketHits[Pick])
        Pick = B;
    Current.TargetDeadRatio = ratioBucketCenter(Pick);
    setFeatureWeights(/*MissingWeight=*/2);
    break;
  }
  }
}

void FeedbackLoop::steerFixed() {
  const BatchRecord &Last = History.back();
  double Err = FixedTarget - Last.AchievedMean;
  switch (Mode) {
  case Steering::Closed:
    Bias += 0.5 * Err;
    break;
  case Steering::Neutral:
    Bias = 0.0;
    break;
  case Steering::Inverted:
    Bias -= 0.5 * Err;
    break;
  }
  Current.TargetDeadRatio =
      std::min(1.0, std::max(0.0, FixedTarget + Bias));
}
