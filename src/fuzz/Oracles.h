//===-- fuzz/Oracles.h - Differential fuzzing oracles -----------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six correctness oracles the fuzzing harness runs every
/// generated (or replayed) program through:
///
///  1. *Differential semantics* — the dead-member-eliminated program
///     must recompile and produce byte-identical observable output and
///     the same exit code as the original (the transformation's
///     behaviour-preservation contract, DeadMemberEliminator.h).
///  2. *Dynamic soundness* — every member whose value is read during
///     interpretation must be classified live by the analysis
///     (DESIGN.md §6; the paper's central invariant).
///  3. *Configuration invariance* — the JSON classification report must
///     be byte-identical at every `--jobs` level (the parallel
///     pipeline's determinism guarantee), and the dead set must grow
///     monotonically with call-graph precision
///     (baseline ⊆ paper, Trivial ⊆ CHA ⊆ RTA ⊆ PTA).
///  4. *Cache equivalence* — the summary-linked pipeline, a cold
///     on-disk cache, and a warm on-disk cache (cache/SummaryCache.h)
///     must each reproduce the monolithic JSON report byte-for-byte,
///     and the warm run must actually hit the cache (docs/CACHING.md).
///  5. *Profiler agreement* — the shadow-memory profiler's online
///     dynamic measurements (profiler/ShadowProfiler.h) must equal the
///     allocation-trace replay (trace/DynamicMetrics.h) exactly on the
///     same execution; the two compute the paper's Table 2 numbers by
///     independent mechanisms.
///  6. *Engine equivalence* — the bytecode VM (vm/VM.h) must reproduce
///     the tree-walking interpreter exactly on the same program:
///     byte-identical output, exit code, error message, ReadTrace
///     first-read order, read/write sets, heat counts, allocation
///     trace, and shadow-profiler summary. Only ExecResult::Steps is
///     exempt (the engines count different units); step-limit aborts
///     are therefore compared by error kind alone.
///
/// An oracle failure carries a machine-readable kind plus a
/// human-readable detail; the harness (FuzzMain.cpp) feeds failures to
/// the shrinker (fuzz/Shrinker.h) and records them as artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_FUZZ_ORACLES_H
#define DMM_FUZZ_ORACLES_H

#include "analysis/DeadMemberAnalysis.h"
#include "transform/DeadMemberEliminator.h"

#include <string>
#include <vector>

namespace dmm {
namespace fuzz {

/// Which oracles to run and under which base analysis configuration.
struct OracleConfig {
  bool Semantics = true;
  bool Soundness = true;
  bool Invariance = true;
  bool Cache = true;
  bool Profiler = true;
  bool Engine = true;

  /// Base analysis configuration (defaults reproduce the paper's:
  /// RTA call graph, deallocation exemption, union closure).
  AnalysisOptions Analysis;

  /// Worker counts the invariance oracle compares; reports must be
  /// byte-identical across all of them.
  std::vector<unsigned> JobsLevels = {1, 4};

  /// \name Fault injection (harness self-validation; docs/TESTING.md)
  /// @{
  /// Forwarded to the eliminator: a deliberately buggy transformation
  /// the semantics oracle must catch.
  EliminationFault Fault;
  /// Interpreter-side fault: count reads that only feed delete/free,
  /// breaking the two-sided deallocation exemption the soundness
  /// oracle relies on.
  bool CountDeallocationReads = false;
  /// Bytecode-compiler fault: integer additions compile to an
  /// off-by-one AddII, a deliberate miscompile the engine oracle must
  /// catch (vm/BytecodeCompiler.h, CompilerConfig::FaultAddOffByOne).
  bool VmMiscompile = false;
  /// @}
};

/// The verdict of one program's trip through the oracles.
struct OracleOutcome {
  bool Passed = true;
  /// Empty when Passed; otherwise one of "frontend", "runtime",
  /// "semantics", "soundness", "invariance-jobs",
  /// "invariance-monotonic", "cache", "profiler", "engine".
  std::string FailedOracle;
  /// Human-readable failure description (first violation wins).
  std::string Detail;
};

/// Runs \p Source through every enabled oracle, stopping at the first
/// failure. A program that fails to compile or aborts at run time is
/// itself an oracle failure ("frontend" / "runtime"): the generator
/// promises valid programs, so either indicates a generator or
/// pipeline bug worth shrinking.
OracleOutcome runOracles(const std::string &Source,
                         const OracleConfig &Config = {});

} // namespace fuzz
} // namespace dmm

#endif // DMM_FUZZ_ORACLES_H
