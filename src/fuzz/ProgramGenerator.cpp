//===-- fuzz/ProgramGenerator.cpp -----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"

using namespace dmm;
using namespace dmm::fuzz;

namespace {

std::string num(unsigned I) { return std::to_string(I); }

/// The numeric field name grid: gI_F on class KI.
std::string fieldName(unsigned Class, unsigned Field) {
  return "g" + num(Class) + "_" + num(Field);
}

const char *fieldType(unsigned F) {
  // Cycle so every class mixes widths; g*_0 is always int (the
  // pointer-to-member and address-taken sites rely on that).
  switch (F % 4) {
  case 1:
    return "double";
  case 2:
    return "char";
  default:
    return "int";
  }
}

} // namespace

ProgramGenerator::ProgramGenerator(uint64_t Seed, GeneratorOptions Options)
    : State(Seed * 2654435761u + 1), InitState(State), Opts(Options) {}

uint64_t ProgramGenerator::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1DULL;
}

uint64_t ProgramGenerator::below(uint64_t N) { return N ? next() % N : 0; }

bool ProgramGenerator::chance(unsigned Percent) {
  return next() % 100 < Percent;
}

bool ProgramGenerator::feature(bool Enabled, unsigned Percent) {
  // Always consume randomness so toggling one feature off does not
  // reshuffle every later decision for the same seed.
  bool Hit = chance(Percent);
  return Enabled && Hit;
}

std::string ProgramGenerator::generate() {
  State = InitState;

  unsigned ClassSpan = Opts.MaxClasses - Opts.MinClasses + 1;
  NumClasses = Opts.MinClasses + static_cast<unsigned>(below(ClassSpan));
  unsigned FieldSpan = Opts.MaxFields - Opts.MinFields + 1;
  FieldsPer.assign(NumClasses, 0);
  Derives.assign(NumClasses, false);
  HasVolatile.assign(NumClasses, false);
  HasOwned.assign(NumClasses, false);
  for (unsigned I = 0; I != NumClasses; ++I) {
    FieldsPer[I] = Opts.MinFields + static_cast<unsigned>(below(FieldSpan));
    if (I > 0)
      Derives[I] = chance(60);
    HasVolatile[I] = feature(Opts.VolatileMembers, 35);
    HasOwned[I] = feature(Opts.DeleteExemption, 35);
  }
  UseUnion = feature(Opts.Unions, 50);
  UseVirtual = feature(Opts.VirtualDispatch, 70);
  UsePayload = false;
  for (unsigned I = 0; I != NumClasses; ++I)
    UsePayload |= HasOwned[I];

  std::string Out;
  emitClasses(Out);
  emitHelpers(Out);
  emitMain(Out);
  return Out;
}

void ProgramGenerator::emitClasses(std::string &Out) {
  auto L = [&](const std::string &S) { Out += S + "\n"; };

  if (UsePayload) {
    // A leaf class whose instances exist only to be deallocated: its
    // owner members exercise the paper's delete/free exemption.
    L("class Payload {");
    L("public:");
    L("  int pv;");
    L("  Payload() { pv = 5; }");
    L("};");
    L("");
  }

  for (unsigned I = 0; I != NumClasses; ++I) {
    std::string Name = "K" + num(I);
    std::string Head = "class " + Name;
    if (Derives[I])
      Head += " : public K" + num(I - 1);
    L(Head + " {");
    L("public:");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      L("  " + std::string(fieldType(F)) + " " + fieldName(I, F) + ";");
    if (HasVolatile[I])
      L("  volatile int v" + num(I) + ";");
    if (HasOwned[I])
      L("  Payload *own" + num(I) + ";");

    // Constructor: initializes a random subset (writes only) plus the
    // special members.
    L("  " + Name + "() {");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      if (chance(70))
        L("    " + fieldName(I, F) + " = " + num(F + 1) + ";");
    if (HasVolatile[I] && chance(70))
      L("    v" + num(I) + " = " + num(I + 1) + ";");
    if (HasOwned[I])
      L("    own" + num(I) + " = new Payload();");
    L("  }");

    // A reader method over a random subset; the chain call is
    // qualified, so it never virtual-dispatches back down.
    L(std::string("  ") + (UseVirtual ? "virtual " : "") + "int sum() {");
    L("    int acc = 0;");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      if (chance(60))
        L("    acc = acc + (int)" + fieldName(I, F) + ";");
    if (Derives[I]) {
      L("    acc = acc + this->K" + num(I - 1) + "::sum();");
      if (feature(Opts.QualifiedAccess, 40))
        L("    acc = acc + (int)this->K" + num(I - 1) +
          "::" + fieldName(I - 1, 0) + ";");
    }
    L("    return acc;");
    L("  }");

    // A never-called method reading other fields: its reads must not
    // create liveness under any reachability-aware call graph.
    L("  int ghost() {");
    L("    int acc = 0;");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      if (chance(30))
        L("    acc = acc + (int)" + fieldName(I, F) + ";");
    L("    return acc;");
    L("  }");
    L("};");
    L("");
  }

  if (UseUnion) {
    L("union UU {");
    L("public:");
    L("  int ua;");
    L("  int ub;");
    L("  double uc;");
    L("};");
    L("");
  }
}

void ProgramGenerator::emitHelpers(std::string &Out) {
  Out += "int absorb(int *p) { return (*p); }\n\n";
}

void ProgramGenerator::emitMain(std::string &Out) {
  auto L = [&](const std::string &S) { Out += S + "\n"; };

  L("int main() {");
  L("  int acc = 0;");
  // Stack object per class, heap object for the last class.
  for (unsigned I = 0; I != NumClasses; ++I)
    L("  K" + num(I) + " s" + num(I) + ";");
  std::string Last = num(NumClasses - 1);
  L("  K" + Last + " *h = new K" + Last + "();");

  // Random per-class action mix.
  for (unsigned I = 0; I != NumClasses; ++I) {
    std::string V = "s" + num(I);
    if (chance(80))
      L("  acc = acc + " + V + ".sum();");
    unsigned F = static_cast<unsigned>(below(FieldsPer[I]));
    std::string Field = fieldName(I, F);
    if (chance(50))
      L("  " + V + "." + Field + " = " + num(I + 7) + ";");
    if (chance(40))
      L("  acc = acc + (int)" + V + "." + Field + ";");
    if (feature(Opts.AddressTaken, 25)) {
      // Address-taken read through a helper (g*_0 is int by
      // construction).
      L("  acc = acc + absorb(&" + V + "." + fieldName(I, 0) + ");");
    }
    if (feature(Opts.PointerToMember, 25)) {
      L("  int K" + num(I) + "::* pm" + num(I) + " = &K" + num(I) +
        "::" + fieldName(I, 0) + ";");
      L("  acc = acc + " + V + ".*pm" + num(I) + ";");
    }
    if (Derives[I] && feature(Opts.QualifiedAccess, 30))
      L("  acc = acc + (int)" + V + ".K" + num(I - 1) +
        "::" + fieldName(I - 1, 0) + ";");
    if (HasVolatile[I] && chance(50))
      L("  " + V + ".v" + num(I) + " = 7;");
    if (HasOwned[I]) {
      // The member's only use: feeding a deallocation (paper fn. 3).
      if (chance(50))
        L("  delete " + V + ".own" + num(I) + ";");
      else
        L("  free(" + V + ".own" + num(I) + ");");
    }
    if (feature(Opts.Sizeof, 20)) {
      // sizeof is exercised but its value must not reach the output:
      // the eliminated program has a different layout, and the default
      // IgnoreAll policy asserts sizes only feed allocation.
      L("  int z" + num(I) + " = (int)sizeof(" + V + ");");
      L("  if (z" + num(I) + " > 0) { acc = acc + 1; }");
    }
    if (feature(Opts.UnsafeCasts, 12)) {
      // An unrelated cast: sweeps the source class' contained members
      // live. The raw pointer is never dereferenced (the interpreter
      // models objects as storage graphs, not flat bytes).
      L("  char *raw" + num(I) + " = reinterpret_cast<char*>(&" + V +
        ");");
    }
  }

  // Virtual dispatch / safe down-casts along the chain.
  for (unsigned I = 1; I != NumClasses; ++I) {
    if (!Derives[I])
      continue;
    std::string BaseName = "K" + num(I - 1);
    std::string DerName = "K" + num(I);
    std::string V = "s" + num(I);
    if (chance(60)) {
      L("  " + BaseName + " *bp" + num(I) + " = &" + V + ";");
      L("  acc = acc + bp" + num(I) + "->sum();");
      if (feature(Opts.Downcasts, 50)) {
        // A safe down-cast: the pointer provably targets a DerName.
        // (static_cast here, C-style on the deep chain below — both
        // spellings reach Sema's down-cast classification.)
        L("  " + DerName + " *dp" + num(I) + " = static_cast<" + DerName +
          "*>(bp" + num(I) + ");");
        L("  acc = acc + dp" + num(I) + "->sum();");
      }
    }
  }

  // Deep dispatch: a root-typed pointer to the deepest object on an
  // unbroken derivation chain.
  unsigned Deepest = 0;
  while (Deepest + 1 < NumClasses && Derives[Deepest + 1])
    ++Deepest;
  if (Deepest >= 2 && chance(50)) {
    L("  K0 *deep = &s" + num(Deepest) + ";");
    L("  acc = acc + deep->sum();");
    if (feature(Opts.Downcasts, 40)) {
      L("  K" + num(Deepest) + " *mdp = (K" + num(Deepest) + "*)deep;");
      L("  acc = acc + mdp->sum();");
    }
  }

  if (UseUnion) {
    L("  UU u;");
    L("  u.ua = 3;");
    if (chance(50))
      L("  acc = acc + u.ub;");
    else
      L("  acc = acc + u.ua;");
  }

  L("  acc = acc + h->sum();");
  L("  delete h;");
  L("  print_int(acc);");
  L("  return 0;");
  L("}");
}
