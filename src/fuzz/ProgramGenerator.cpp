//===-- fuzz/ProgramGenerator.cpp -----------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"

#include <algorithm>
#include <cmath>

using namespace dmm;
using namespace dmm::fuzz;

namespace {

std::string num(unsigned I) { return std::to_string(I); }

/// Numeric fields cycle int/double/char; int fields can be
/// address-taken (see fieldType below).
bool isIntField(unsigned F) { return F % 4 != 1 && F % 4 != 2; }

/// The numeric field name grid: gI_F on class KI.
std::string fieldName(unsigned Class, unsigned Field) {
  return "g" + num(Class) + "_" + num(Field);
}

const char *fieldType(unsigned F) {
  // Cycle so every class mixes widths; g*_0 is always int (the
  // pointer-to-member and address-taken sites rely on that).
  switch (F % 4) {
  case 1:
    return "double";
  case 2:
    return "char";
  default:
    return "int";
  }
}

} // namespace

ProgramGenerator::ProgramGenerator(uint64_t Seed, GeneratorOptions Options)
    : State(Seed * 2654435761u + 1), InitState(State), Opts(Options) {}

uint64_t ProgramGenerator::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1DULL;
}

uint64_t ProgramGenerator::below(uint64_t N) { return N ? next() % N : 0; }

bool ProgramGenerator::chance(unsigned Percent) {
  return next() % 100 < Percent;
}

bool ProgramGenerator::feature(bool Enabled, unsigned Percent) {
  // Always consume randomness so toggling one feature off does not
  // reshuffle every later decision for the same seed.
  bool Hit = chance(Percent);
  return Enabled && Hit;
}

std::string ProgramGenerator::generate() {
  State = InitState;
  const FeatureWeights &W = Opts.Weights;

  unsigned ClassSpan = Opts.MaxClasses - Opts.MinClasses + 1;
  NumClasses = Opts.MinClasses + static_cast<unsigned>(below(ClassSpan));
  unsigned FieldSpan = Opts.MaxFields - Opts.MinFields + 1;
  FieldsPer.assign(NumClasses, 0);
  Derives.assign(NumClasses, false);
  HasVolatile.assign(NumClasses, false);
  HasOwned.assign(NumClasses, false);
  for (unsigned I = 0; I != NumClasses; ++I) {
    FieldsPer[I] = Opts.MinFields + static_cast<unsigned>(below(FieldSpan));
    if (I > 0)
      Derives[I] = chance(W.Derive);
    HasVolatile[I] = feature(Opts.VolatileMembers, W.Volatile);
    HasOwned[I] = feature(Opts.DeleteExemption, W.Owned);
  }
  UseUnion = feature(Opts.Unions, W.Union);
  UseVirtual = feature(Opts.VirtualDispatch, W.Virtual);
  UsePayload = false;
  for (unsigned I = 0; I != NumClasses; ++I)
    UsePayload |= HasOwned[I];

  PlanTotal = PlanDead = 0;
  if (liveDriven())
    planLiveness();

  std::string Out;
  emitClasses(Out);
  emitHelpers(Out);
  emitMain(Out);
  return Out;
}

void ProgramGenerator::planLiveness() {
  double R = std::min(1.0, std::max(0.0, Opts.TargetDeadRatio));

  // Owned members (and Payload::pv behind them) are dead by
  // construction: their only use feeds delete/free, which the analysis
  // exempts. Count that forced-dead mass first.
  auto forcedDead = [&] {
    unsigned N = 0;
    for (unsigned I = 0; I != NumClasses; ++I)
      N += HasOwned[I] ? 1 : 0;
    return N ? N + 1 : 0; // + Payload::pv
  };
  auto totalMembers = [&] {
    unsigned M = 0;
    for (unsigned I = 0; I != NumClasses; ++I) {
      M += FieldsPer[I];
      M += HasVolatile[I] ? 1 : 0;
      M += HasOwned[I] ? 1 : 0;
    }
    M += UsePayload ? 1 : 0;
    M += UseUnion ? 3 : 0;
    return M;
  };

  // Low targets: shed owners (highest class first) until the forced-
  // dead mass fits under the target.
  while (forcedDead() >
         static_cast<unsigned>(std::llround(R * totalMembers()))) {
    unsigned Last = NumClasses;
    for (unsigned I = 0; I != NumClasses; ++I)
      if (HasOwned[I])
        Last = I;
    if (Last == NumClasses)
      break;
    HasOwned[Last] = false;
    UsePayload = false;
    for (unsigned I = 0; I != NumClasses; ++I)
      UsePayload |= HasOwned[I];
  }

  PlanTotal = totalMembers();
  unsigned WantDead =
      static_cast<unsigned>(std::llround(R * PlanTotal));
  PlanDead = std::min(WantDead, forcedDead());
  unsigned Deficit = WantDead - PlanDead;

  FieldLive.assign(NumClasses, {});
  VolLive.assign(NumClasses, 1);
  for (unsigned I = 0; I != NumClasses; ++I)
    FieldLive[I].assign(FieldsPer[I], 1);
  UnionLive = true;

  // Controllable slots: numeric fields and volatiles weigh one member;
  // the union weighs three (the closure rule makes its members live or
  // dead together). A seeded shuffle spreads dead intent across the
  // program so different seeds hit different member mixes.
  struct Slot {
    unsigned Class;
    int Field; ///< >=0 numeric field, -1 volatile, -2 union.
    unsigned Weight;
  };
  std::vector<Slot> Slots;
  for (unsigned I = 0; I != NumClasses; ++I) {
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      Slots.push_back({I, static_cast<int>(F), 1});
    if (HasVolatile[I])
      Slots.push_back({I, -1, 1});
  }
  if (UseUnion)
    Slots.push_back({0, -2, 3});
  for (size_t I = Slots.size(); I > 1; --I)
    std::swap(Slots[I - 1], Slots[below(I)]);

  for (const Slot &S : Slots) {
    if (Deficit < S.Weight)
      continue;
    Deficit -= S.Weight;
    PlanDead += S.Weight;
    if (S.Field >= 0)
      FieldLive[S.Class][S.Field] = 0;
    else if (S.Field == -1)
      VolLive[S.Class] = 0;
    else
      UnionLive = false;
  }
  // A residual deficit of 2 happens when only the 3-weight union slot
  // is left; overshooting by one beats undershooting by two.
  if (Deficit >= 2 && UseUnion && UnionLive) {
    UnionLive = false;
    PlanDead += 3;
  }

  planKeepAlive();
}

void ProgramGenerator::planKeepAlive() {
  const FeatureWeights &W = Opts.Weights;
  AltAddr.assign(NumClasses, -1);
  AltPtm.assign(NumClasses, -1);
  CastHide.assign(NumClasses, -1);
  CastKeep.assign(NumClasses, 0);

  for (unsigned I = 0; I != NumClasses; ++I) {
    // Address-taken and pointer-to-member need int-typed live fields;
    // each mechanism reserves its own field.
    std::vector<int> LiveInts;
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      if (isIntField(F) && FieldLive[I][F])
        LiveInts.push_back(static_cast<int>(F));
    size_t Next = 0;
    if (feature(Opts.AddressTaken, W.AddressTaken) &&
        Next < LiveInts.size())
      AltAddr[I] = LiveInts[Next++];
    if (feature(Opts.PointerToMember, W.PointerToMember) &&
        Next < LiveInts.size())
      AltPtm[I] = LiveInts[Next++];

    // The cast sweeps the whole derivation chain live, so it is only
    // planned when the chain is all live-intent anyway; it then carries
    // one spare live field of this class (any type) so that field's
    // recorded cause is the sweep, not a read.
    if (feature(Opts.UnsafeCasts, W.UnsafeCast) && chainAllLive(I)) {
      CastKeep[I] = 1;
      for (unsigned F = 0; F != FieldsPer[I]; ++F)
        if (FieldLive[I][F] && static_cast<int>(F) != AltAddr[I] &&
            static_cast<int>(F) != AltPtm[I]) {
          CastHide[I] = static_cast<int>(F);
          break;
        }
    }
  }
}

bool ProgramGenerator::fieldLiveIntent(unsigned Class,
                                       unsigned Field) const {
  return !liveDriven() || FieldLive[Class][Field];
}

bool ProgramGenerator::fieldReadable(unsigned Class, unsigned Field) const {
  if (!liveDriven())
    return true;
  if (!FieldLive[Class][Field])
    return false;
  int F = static_cast<int>(Field);
  return F != AltAddr[Class] && F != AltPtm[Class] &&
         F != CastHide[Class];
}

bool ProgramGenerator::chainAllLive(unsigned Class) const {
  for (unsigned J = Class;; --J) {
    for (unsigned F = 0; F != FieldsPer[J]; ++F)
      if (!FieldLive[J][F])
        return false;
    if (HasVolatile[J] && !VolLive[J])
      return false;
    if (HasOwned[J])
      return false; // Owned members are dead by construction.
    if (J == 0 || !Derives[J])
      return true;
  }
}

void ProgramGenerator::emitClasses(std::string &Out) {
  auto L = [&](const std::string &S) { Out += S + "\n"; };
  const FeatureWeights &W = Opts.Weights;

  if (UsePayload) {
    // A leaf class whose instances exist only to be deallocated: its
    // owner members exercise the paper's delete/free exemption.
    L("class Payload {");
    L("public:");
    L("  int pv;");
    L("  Payload() { pv = 5; }");
    L("};");
    L("");
  }

  for (unsigned I = 0; I != NumClasses; ++I) {
    std::string Name = "K" + num(I);
    std::string Head = "class " + Name;
    if (Derives[I])
      Head += " : public K" + num(I - 1);
    L(Head + " {");
    L("public:");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      L("  " + std::string(fieldType(F)) + " " + fieldName(I, F) + ";");
    if (HasVolatile[I])
      L("  volatile int v" + num(I) + ";");
    if (HasOwned[I])
      L("  Payload *own" + num(I) + ";");

    // Constructor: initializes a random subset (writes only) plus the
    // special members. A live-intent volatile is written here
    // unconditionally (volatile writes are its only liveness source);
    // a dead-intent one must never be written.
    L("  " + Name + "() {");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      if (chance(W.CtorInit))
        L("    " + fieldName(I, F) + " = " + num(F + 1) + ";");
    if (HasVolatile[I]) {
      bool WriteVol =
          liveDriven() ? VolLive[I] != 0 : chance(W.CtorVolatileWrite);
      if (WriteVol)
        L("    v" + num(I) + " = " + num(I + 1) + ";");
    }
    if (HasOwned[I])
      L("    own" + num(I) + " = new Payload();");
    L("  }");

    // A reader method over a random subset; the chain call is
    // qualified, so it never virtual-dispatches back down. In
    // liveness-driven mode the subset is exactly the live-intent
    // fields: every live member gets its guaranteed read here, every
    // dead one none.
    L(std::string("  ") + (UseVirtual ? "virtual " : "") + "int sum() {");
    L("    int acc = 0;");
    for (unsigned F = 0; F != FieldsPer[I]; ++F) {
      bool Read =
          liveDriven() ? fieldReadable(I, F) : chance(W.SumRead);
      if (Read)
        L("    acc = acc + (int)" + fieldName(I, F) + ";");
    }
    if (Derives[I]) {
      L("    acc = acc + this->K" + num(I - 1) + "::sum();");
      if (feature(Opts.QualifiedAccess, W.SumQualified) &&
          fieldReadable(I - 1, 0))
        L("    acc = acc + (int)this->K" + num(I - 1) +
          "::" + fieldName(I - 1, 0) + ";");
    }
    L("    return acc;");
    L("  }");

    // A never-called method reading other fields: its reads must not
    // create liveness under any reachability-aware call graph.
    L("  int ghost() {");
    L("    int acc = 0;");
    for (unsigned F = 0; F != FieldsPer[I]; ++F)
      if (chance(W.GhostRead))
        L("    acc = acc + (int)" + fieldName(I, F) + ";");
    L("    return acc;");
    L("  }");
    L("};");
    L("");
  }

  if (UseUnion) {
    L("union UU {");
    L("public:");
    L("  int ua;");
    L("  int ub;");
    L("  double uc;");
    L("};");
    L("");
  }
}

void ProgramGenerator::emitHelpers(std::string &Out) {
  Out += "int absorb(int *p) { return (*p); }\n\n";
}

void ProgramGenerator::emitMain(std::string &Out) {
  auto L = [&](const std::string &S) { Out += S + "\n"; };
  const FeatureWeights &W = Opts.Weights;

  L("int main() {");
  L("  int acc = 0;");
  // Stack object per class, heap object for the last class.
  for (unsigned I = 0; I != NumClasses; ++I)
    L("  K" + num(I) + " s" + num(I) + ";");
  std::string Last = num(NumClasses - 1);
  L("  K" + Last + " *h = new K" + Last + "();");

  // Random per-class action mix. In liveness-driven mode every sum()
  // is called (so the guaranteed reads inside it are reachable) and
  // every liveness-creating site is gated or retargeted onto
  // live-intent members.
  for (unsigned I = 0; I != NumClasses; ++I) {
    std::string V = "s" + num(I);
    if (liveDriven() || chance(W.MainSumCall))
      L("  acc = acc + " + V + ".sum();");
    unsigned F = static_cast<unsigned>(below(FieldsPer[I]));
    std::string Field = fieldName(I, F);
    if (chance(W.MainWrite))
      L("  " + V + "." + Field + " = " + num(I + 7) + ";");
    if (chance(W.MainRead) && fieldReadable(I, F))
      L("  acc = acc + (int)" + V + "." + Field + ";");
    // Address-taken read through a helper (g*_0 is int by
    // construction). Liveness-driven mode emits these exactly for the
    // fields planKeepAlive reserved: the designated field is read
    // nowhere else, so its recorded liveness cause is the mechanism
    // itself rather than a plain read.
    if (liveDriven() ? AltAddr[I] >= 0
                     : feature(Opts.AddressTaken, W.AddressTaken)) {
      unsigned T = liveDriven() ? static_cast<unsigned>(AltAddr[I]) : 0;
      L("  acc = acc + absorb(&" + V + "." + fieldName(I, T) + ");");
    }
    if (liveDriven() ? AltPtm[I] >= 0
                     : feature(Opts.PointerToMember, W.PointerToMember)) {
      unsigned T = liveDriven() ? static_cast<unsigned>(AltPtm[I]) : 0;
      L("  int K" + num(I) + "::* pm" + num(I) + " = &K" + num(I) +
        "::" + fieldName(I, T) + ";");
      L("  acc = acc + " + V + ".*pm" + num(I) + ";");
    }
    if (Derives[I] && feature(Opts.QualifiedAccess, W.MainQualified) &&
        fieldReadable(I - 1, 0))
      L("  acc = acc + (int)" + V + ".K" + num(I - 1) +
        "::" + fieldName(I - 1, 0) + ";");
    if (HasVolatile[I] && chance(W.VolatileStore) &&
        (!liveDriven() || VolLive[I]))
      L("  " + V + ".v" + num(I) + " = 7;");
    if (HasOwned[I]) {
      // The member's only use: feeding a deallocation (paper fn. 3).
      if (chance(W.DeleteVsFree))
        L("  delete " + V + ".own" + num(I) + ";");
      else
        L("  free(" + V + ".own" + num(I) + ");");
    }
    if (feature(Opts.Sizeof, W.Sizeof)) {
      // sizeof is exercised but its value must not reach the output:
      // the eliminated program has a different layout, and the default
      // IgnoreAll policy asserts sizes only feed allocation.
      L("  int z" + num(I) + " = (int)sizeof(" + V + ");");
      L("  if (z" + num(I) + " > 0) { acc = acc + 1; }");
    }
    if (liveDriven() ? CastKeep[I] != 0
                     : feature(Opts.UnsafeCasts, W.UnsafeCast)) {
      // An unrelated cast: sweeps the source class' contained members
      // live. The raw pointer is never dereferenced (the interpreter
      // models objects as storage graphs, not flat bytes). In
      // liveness-driven mode planKeepAlive only schedules the cast on
      // an all-live chain — the sweep would resurrect planned-dead
      // members — and parks one unread live field on it so the sweep
      // shows up as that field's liveness cause.
      L("  char *raw" + num(I) + " = reinterpret_cast<char*>(&" + V +
        ");");
    }
  }

  // Virtual dispatch / safe down-casts along the chain.
  for (unsigned I = 1; I != NumClasses; ++I) {
    if (!Derives[I])
      continue;
    std::string BaseName = "K" + num(I - 1);
    std::string DerName = "K" + num(I);
    std::string V = "s" + num(I);
    if (chance(W.Dispatch)) {
      L("  " + BaseName + " *bp" + num(I) + " = &" + V + ";");
      L("  acc = acc + bp" + num(I) + "->sum();");
      if (feature(Opts.Downcasts, W.Downcast)) {
        // A safe down-cast: the pointer provably targets a DerName.
        // (static_cast here, C-style on the deep chain below — both
        // spellings reach Sema's down-cast classification.)
        L("  " + DerName + " *dp" + num(I) + " = static_cast<" + DerName +
          "*>(bp" + num(I) + ");");
        L("  acc = acc + dp" + num(I) + "->sum();");
      }
    }
  }

  // Deep dispatch: a root-typed pointer to the deepest object on an
  // unbroken derivation chain.
  unsigned Deepest = 0;
  while (Deepest + 1 < NumClasses && Derives[Deepest + 1])
    ++Deepest;
  if (Deepest >= 2 && chance(W.DeepDispatch)) {
    L("  K0 *deep = &s" + num(Deepest) + ";");
    L("  acc = acc + deep->sum();");
    if (feature(Opts.Downcasts, W.DeepDowncast)) {
      L("  K" + num(Deepest) + " *mdp = (K" + num(Deepest) + "*)deep;");
      L("  acc = acc + mdp->sum();");
    }
  }

  if (UseUnion) {
    L("  UU u;");
    L("  u.ua = 3;");
    if (!liveDriven() || UnionLive) {
      if (chance(W.UnionAltRead))
        L("  acc = acc + u.ub;");
      else
        L("  acc = acc + u.ua;");
    }
  }

  L("  acc = acc + h->sum();");
  L("  delete h;");
  L("  print_int(acc);");
  L("  return 0;");
  L("}");
}
