//===-- fuzz/Feedback.h - Liveness-driven steering loop ---------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed feedback loop that turns dmm-fuzz from an open-loop
/// sampler into a liveness-driven generator (Barany, "Liveness-Driven
/// Random Program Generation"; docs/TESTING.md). Programs are generated
/// in batches; after each batch the loop looks at what the pipeline
/// actually measured — the achieved dead-member ratio distribution and
/// the boundary-coverage map (fuzz/Coverage.h) — and steers the next
/// batch's GeneratorOptions:
///
///  - *sweep* mode targets the first uncovered achieved-ratio bucket
///    and bumps the per-feature weights whose boundary keys are still
///    missing (union closure, volatile writes, the dealloc exemption,
///    unsafe casts, address-taken, pointer-to-member, sizeof);
///  - *fixed-target* mode holds TargetDeadRatio on the requested value
///    and trims a bias term against the achieved mean.
///
/// Three steering polarities exist for harness self-validation
/// (mirroring the fault-injection pattern of PR 3): `closed` steers
/// toward uncovered territory, `neutral` cycles targets uniformly with
/// stock weights and ignores the signal, and `inverted` deliberately
/// chases the most-covered bucket while starving exactly the features
/// whose keys are missing. A live loop must separate them: inverted
/// coverage measurably below neutral, closed at or above it
/// (tests/FuzzTest.cpp).
///
/// Everything is deterministic: the loop's state is a pure function of
/// the observed measurements.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_FUZZ_FEEDBACK_H
#define DMM_FUZZ_FEEDBACK_H

#include "fuzz/Coverage.h"
#include "fuzz/ProgramGenerator.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dmm {
namespace fuzz {

/// Steering polarity (see file comment).
enum class Steering { Closed, Neutral, Inverted };

const char *steeringName(Steering S);
/// Parses "closed" / "neutral" / "inverted"; false on anything else.
bool parseSteering(const std::string &Name, Steering &Out);

/// One batch's record, for the coverage-json report.
struct BatchRecord {
  double Target = -1.0;      ///< TargetDeadRatio the batch ran under.
  double AchievedMean = 0.0; ///< Mean achieved dead ratio.
  unsigned Programs = 0;     ///< Measured programs in the batch.
  uint64_t NewEntries = 0;   ///< Coverage entries the batch added.
};

/// The batch-based steering loop. Construct once per run; ask
/// batchOptions() for the current generator configuration, observe()
/// every measurement, endBatch() at batch boundaries.
class FeedbackLoop {
public:
  /// \p FixedTarget >= 0 pins the dead-ratio target (--target-dead-
  /// ratio); \p Sweep explores ratio buckets and feature weights
  /// (--coverage-sweep). With neither, the loop only accounts coverage
  /// and batchOptions() stays \p Base (the blind generator).
  FeedbackLoop(GeneratorOptions Base, Steering Mode, double FixedTarget,
               bool Sweep);

  const GeneratorOptions &batchOptions() const { return Current; }
  bool steering() const { return Sweep || FixedTarget >= 0; }

  void observe(const ProgramMeasurement &M);
  /// Closes the current batch: records it and steers the next one.
  /// No-op on an empty batch.
  void endBatch();

  const CoverageMap &coverage() const { return Coverage; }
  const std::vector<BatchRecord> &batches() const { return History; }
  unsigned measuredPrograms() const { return TotalPrograms; }
  double achievedMean() const {
    return TotalPrograms ? TotalRatioSum / TotalPrograms : 0.0;
  }
  double achievedMin() const { return TotalPrograms ? RatioMin : 0.0; }
  double achievedMax() const { return TotalPrograms ? RatioMax : 0.0; }

private:
  void steerSweep();
  void steerFixed();
  /// Rebases every steerable weight: missing-key features move to
  /// \p MissingWeight, covered ones return to the base weight.
  void setFeatureWeights(unsigned MissingWeight);

  GeneratorOptions Base, Current;
  Steering Mode;
  double FixedTarget;
  bool Sweep;

  CoverageMap Coverage;
  std::array<uint64_t, kRatioBuckets> BucketHits{};

  double BatchRatioSum = 0.0;
  unsigned BatchPrograms = 0;
  size_t EntriesAtBatchStart = 0;

  double TotalRatioSum = 0.0;
  unsigned TotalPrograms = 0;
  double RatioMin = 1.0, RatioMax = 0.0;

  double Bias = 0.0;   ///< Fixed-target correction term.
  unsigned Cursor = 0; ///< Ratio-bucket round-robin position.
  std::vector<BatchRecord> History;
};

} // namespace fuzz
} // namespace dmm

#endif // DMM_FUZZ_FEEDBACK_H
