//===-- fuzz/Coverage.h - Boundary-coverage accounting ----------*- C++ -*-==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary-coverage accounting for the liveness-driven fuzzer
/// (docs/TESTING.md §liveness-driven generation). One generated program
/// is *measured* by running it through the full pipeline — analysis
/// with provenance, three ablation analyses probing the decision
/// boundaries the paper's §3 special cases create, the eliminator, and
/// a profiled execution — and distilled into a set of string coverage
/// keys:
///
///   cause.<reason>            a live classifiable member with that
///                             LivenessReason;
///   dead_adjacent.<reason>    a class holding both a dead member and a
///                             live member with that reason — the
///                             analysis drew a line inside one class;
///   ratio.b<k>                the achieved dead-member ratio bucket
///                             (kRatioBuckets equal-width buckets);
///   boundary.dealloc_exemption  a member dead only because of the
///                             delete/free exemption (flips live when
///                             ExemptDeallocationArgs is off);
///   boundary.union_closure    a member live only because of the union
///                             closure (flips dead when it is off);
///   boundary.sizeof           a member dead under SizeofPolicy::
///                             IgnoreAll but live under Conservative;
///   union.closure_live / union.all_dead   both sides of the closure;
///   elim.*                    eliminator plan kinds actually applied
///                             (drop_store, rhs_only, drop_dealloc,
///                             init_drop, blocked, removed_members,
///                             removed_functions);
///   profiler.never_read / profiler.all_read / profiler.dead_space
///                             the shadow profiler's dynamic verdict;
///   <key>.sparse              any of the above observed in a program
///                             whose achieved dead ratio is >= 0.85 —
///                             the analysis' extreme operating point,
///                             counted separately per behavior.
///
/// The union of keys over a run is the *boundary-coverage map*; its
/// entry count is the fuzzer's coverage score, reported by
/// `dmm-fuzz --coverage-json` and maximized by the corpus distiller.
///
//===----------------------------------------------------------------------===//

#ifndef DMM_FUZZ_COVERAGE_H
#define DMM_FUZZ_COVERAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dmm {
namespace fuzz {

/// Number of equal-width achieved-dead-ratio buckets ([0,1] split into
/// kRatioBuckets; bucket k covers [k/N, (k+1)/N)).
constexpr unsigned kRatioBuckets = 25;

/// The bucket index of an achieved ratio, clamped to the last bucket.
unsigned ratioBucket(double Ratio);

/// The center ratio of bucket \p Bucket (the feedback loop's targets).
double ratioBucketCenter(unsigned Bucket);

/// The aggregated boundary-coverage map: key -> number of programs
/// that exercised it.
class CoverageMap {
public:
  void add(const std::string &Key, uint64_t Delta = 1) {
    Keys[Key] += Delta;
  }
  void merge(const CoverageMap &Other) {
    for (const auto &[K, N] : Other.Keys)
      Keys[K] += N;
  }
  bool covered(const std::string &Key) const { return Keys.count(Key); }
  size_t entries() const { return Keys.size(); }
  const std::map<std::string, uint64_t> &keys() const { return Keys; }

  /// How many of \p Candidate's keys are not yet covered here (the
  /// distiller's greedy gain function).
  size_t newEntries(const std::vector<std::string> &Candidate) const;

private:
  std::map<std::string, uint64_t> Keys;
};

/// One program's measurement: its achieved dead ratio and the boundary
/// keys it exercised.
struct ProgramMeasurement {
  bool Valid = false; ///< Compiled and ran to completion.
  std::string Error;  ///< Set when !Valid.
  unsigned DeadMembers = 0;
  unsigned ClassifiableMembers = 0;
  double AchievedDeadRatio = 0.0; ///< Dead / classifiable (0 if none).
  std::vector<std::string> Keys;  ///< Sorted, deduplicated.
};

/// Compiles, analyzes (the default configuration plus the three
/// boundary ablations), eliminates, and executes \p Source under a
/// local telemetry scope, returning its measurement. Never throws; a
/// program that does not compile or aborts comes back !Valid.
ProgramMeasurement measureProgram(const std::string &Source);

/// A distillation candidate: one measured program and where it came
/// from.
struct DistillCandidate {
  uint64_t Seed = 0;
  double TargetDeadRatio = -1.0; ///< Generator target; negative=blind.
  std::string Source;
  double AchievedDeadRatio = 0.0;
  std::vector<std::string> Keys;
};

/// Greedy set cover over the candidates' coverage keys: repeatedly
/// picks the candidate adding the most uncovered keys (ties break to
/// the earliest candidate), until nothing adds coverage or
/// \p MaxPrograms are selected. Returns indices into \p Candidates in
/// selection order. Deterministic.
std::vector<size_t>
distillCorpus(const std::vector<DistillCandidate> &Candidates,
              size_t MaxPrograms);

} // namespace fuzz
} // namespace dmm

#endif // DMM_FUZZ_COVERAGE_H
