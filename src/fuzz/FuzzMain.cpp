//===-- fuzz/FuzzMain.cpp - The dmm-fuzz differential fuzzer --------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dmm-fuzz`: generate deterministic random MiniC++ programs and push
/// each through the semantic/soundness/invariance/cache oracles
/// (fuzz/Oracles.h). On a failure, a delta-debugging shrinker minimizes
/// the program while the same oracle keeps failing, and a self-contained
/// reproducer (.mcc) plus a JSON failure record land in the artifacts
/// directory. Exit status: 0 when every seed passed, 1 otherwise.
///
/// See docs/TESTING.md for the artifacts layout, replay workflow, and
/// the fault-injection self-validation modes.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Coverage.h"
#include "fuzz/Feedback.h"
#include "fuzz/Oracles.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Shrinker.h"

#include "cache/IncrementalAnalysis.h"
#include "support/ThreadPool.h"
#include "telemetry/CrashHandler.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Json.h"
#include "telemetry/Log.h"
#include "telemetry/Telemetry.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace dmm;
using namespace dmm::fuzz;

namespace {

struct FuzzOptions {
  uint64_t SeedBegin = 1;
  uint64_t SeedEnd = 100; ///< Inclusive.
  OracleConfig Oracles;
  std::string OracleName = "all";
  bool OracleExplicit = false; ///< --oracle given (beats replay records).
  bool FaultExplicit = false;  ///< --inject-fault given.
  std::string ArtifactsDir = "fuzz-artifacts";
  std::string ReplayFile; ///< Run oracles on a file instead.
  bool Shrink = true;
  unsigned MaxShrinkAttempts = 4000;
  bool Metrics = false;
  bool Verbose = false;
  std::optional<LogLevel> LogLevelFlag; ///< --log-level.
  std::string LogJsonFile;              ///< --log-json.

  /// \name Liveness-driven generation (docs/TESTING.md)
  /// @{
  double TargetDeadRatio = -1.0; ///< --target-dead-ratio; negative=off.
  bool CoverageSweep = false;    ///< --coverage-sweep.
  Steering Steer = Steering::Closed;
  unsigned BatchSize = 20;     ///< --batch.
  std::string CoverageJson;    ///< --coverage-json report path.
  std::string DistillDir;      ///< --distill output directory.
  unsigned DistillMax = 16;    ///< --distill-max.
  /// @}

  /// Any flag that needs per-program measurement.
  bool coverageActive() const {
    return TargetDeadRatio >= 0 || CoverageSweep ||
           !CoverageJson.empty() || !DistillDir.empty();
  }
};

/// Applies an --oracle selection ("all", "none", or one family) to the
/// config; false on an unknown name.
bool applyOracleSelection(const std::string &Kind, FuzzOptions &Opts) {
  Opts.OracleName = Kind;
  Opts.Oracles.Semantics = Kind == "all" || Kind == "semantics";
  Opts.Oracles.Soundness = Kind == "all" || Kind == "soundness";
  Opts.Oracles.Invariance = Kind == "all" || Kind == "invariance";
  Opts.Oracles.Cache = Kind == "all" || Kind == "cache";
  Opts.Oracles.Profiler = Kind == "all" || Kind == "profiler";
  Opts.Oracles.Engine = Kind == "all" || Kind == "engine";
  if (Kind == "none")
    return true;
  return Opts.Oracles.Semantics || Opts.Oracles.Soundness ||
         Opts.Oracles.Invariance || Opts.Oracles.Cache ||
         Opts.Oracles.Profiler || Opts.Oracles.Engine;
}

int usage() {
  std::cerr
      << "usage: dmm-fuzz [options]\n"
         "\n"
         "Differential fuzzing for the dead-member pipeline: random\n"
         "MiniC++ programs are run through six oracles (differential\n"
         "semantics of the eliminated program, dynamic soundness of the\n"
         "analysis, configuration invariance across --jobs levels and\n"
         "call-graph precision, cache equivalence, shadow-profiler\n"
         "agreement with the trace replay, and bytecode-VM equivalence\n"
         "with the tree-walking interpreter). Failures are shrunk to\n"
         "minimal reproducers. Everything is deterministic in the seed.\n"
         "\n"
         "options:\n"
         "  --seeds <N>|<A>..<B>     seed range, inclusive (default "
         "1..100)\n"
         "  --oracle <all|none|semantics|soundness|invariance|cache"
         "|profiler|engine>\n"
         "                           which oracle family to run "
         "(default all)\n"
         "  --artifacts <dir>        where reproducers and JSON failure\n"
         "                           records go (default fuzz-artifacts;\n"
         "                           created on first failure)\n"
         "  --replay <file>          run the oracles on a program file\n"
         "                           (e.g. a shrunk reproducer), or on a\n"
         "                           .json failure record — the record's\n"
         "                           oracle selection and injected\n"
         "                           faults are restored unless given\n"
         "                           explicitly on the command line\n"
         "  --target-dead-ratio=<r>  liveness-driven generation: plan\n"
         "                           programs whose dead-member ratio\n"
         "                           lands on r in [0,1]\n"
         "  --coverage-sweep         feedback-driven exploration of\n"
         "                           ratio buckets and feature weights\n"
         "  --steering=<closed|neutral|inverted>\n"
         "                           feedback polarity (default closed;\n"
         "                           neutral/inverted validate the loop)\n"
         "  --batch=<N>              programs per feedback batch "
         "(default 20)\n"
         "  --coverage-json=<file>   write the boundary-coverage report\n"
         "  --distill=<dir>          greedily select a minimal seed set\n"
         "                           maximizing boundary coverage and\n"
         "                           write it as a corpus into <dir>\n"
         "  --distill-max=<N>        distilled corpus size cap "
         "(default 16)\n"
         "  --no-shrink              keep failing programs unminimized\n"
         "  --max-shrink-attempts=<N>  shrinker predicate budget "
         "(default 4000)\n"
         "  --inject-fault=<drop-live-stores|count-dealloc-reads"
         "|vm-miscompile>\n"
         "                           deliberately break the eliminator /\n"
         "                           the read exemption / the bytecode\n"
         "                           compiler to validate that the\n"
         "                           oracles catch it\n"
         "  --jobs=<N>               base worker threads (the invariance\n"
         "                           oracle still sweeps its own levels)\n"
         "  --metrics                print the fuzz counter table at "
         "exit\n"
         "  --verbose                log every seed, not just failures\n"
         "  --log-level=<error|warn|info|debug|trace>\n"
         "                           structured-log verbosity (default\n"
         "                           warn; DMM_LOG_LEVEL also works)\n"
         "  --log-json=<file>        also write log events as JSONL\n";
  return 2;
}

bool parseSeeds(const std::string &Value, FuzzOptions &Opts) {
  size_t Dots = Value.find("..");
  char *End = nullptr;
  if (Dots == std::string::npos) {
    unsigned long long N = std::strtoull(Value.c_str(), &End, 10);
    if (Value.empty() || *End || N == 0)
      return false;
    Opts.SeedBegin = 1;
    Opts.SeedEnd = N;
    return true;
  }
  std::string A = Value.substr(0, Dots), B = Value.substr(Dots + 2);
  unsigned long long Begin = std::strtoull(A.c_str(), &End, 10);
  if (A.empty() || *End)
    return false;
  unsigned long long Last = std::strtoull(B.c_str(), &End, 10);
  if (B.empty() || *End || Last < Begin)
    return false;
  Opts.SeedBegin = Begin;
  Opts.SeedEnd = Last;
  return true;
}

bool parseArgs(int Argc, char **Argv, FuzzOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (++I >= Argc) {
        std::cerr << "error: " << Flag << " requires a value\n";
        return nullptr;
      }
      return Argv[I];
    };
    if (Arg == "--seeds") {
      const char *V = needValue("--seeds");
      if (!V || !parseSeeds(V, Opts)) {
        std::cerr << "error: --seeds expects <N> or <A>..<B> with "
                     "positive integers\n";
        return false;
      }
    } else if (Arg == "--oracle") {
      const char *V = needValue("--oracle");
      if (!V)
        return false;
      if (!applyOracleSelection(V, Opts)) {
        std::cerr << "error: invalid --oracle value '" << V
                  << "' (valid choices: all, none, semantics, soundness, "
                     "invariance, cache, profiler, engine)\n";
        return false;
      }
      Opts.OracleExplicit = true;
    } else if (Arg == "--artifacts") {
      const char *V = needValue("--artifacts");
      if (!V)
        return false;
      Opts.ArtifactsDir = V;
    } else if (Arg == "--replay") {
      const char *V = needValue("--replay");
      if (!V)
        return false;
      Opts.ReplayFile = V;
    } else if (Arg == "--no-shrink") {
      Opts.Shrink = false;
    } else if (Arg.rfind("--max-shrink-attempts=", 0) == 0) {
      std::string V = Arg.substr(22);
      char *End = nullptr;
      unsigned long N = std::strtoul(V.c_str(), &End, 10);
      if (V.empty() || *End || N == 0) {
        std::cerr << "error: --max-shrink-attempts expects a positive "
                     "integer\n";
        return false;
      }
      Opts.MaxShrinkAttempts = static_cast<unsigned>(N);
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      std::string Fault = Arg.substr(15);
      Opts.FaultExplicit = true;
      if (Fault == "drop-live-stores")
        Opts.Oracles.Fault.DropLiveMemberStores = true;
      else if (Fault == "count-dealloc-reads")
        Opts.Oracles.CountDeallocationReads = true;
      else if (Fault == "vm-miscompile")
        Opts.Oracles.VmMiscompile = true;
      else {
        std::cerr << "error: invalid --inject-fault value '" << Fault
                  << "' (valid choices: drop-live-stores, "
                     "count-dealloc-reads, vm-miscompile)\n";
        return false;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string V = Arg.substr(7);
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(V.c_str(), &End, 10);
      if (V.empty() || *End || Jobs == 0) {
        std::cerr << "error: --jobs expects a positive integer, got '"
                  << V << "'\n";
        return false;
      }
      setGlobalJobs(static_cast<unsigned>(Jobs));
    } else if (Arg.rfind("--target-dead-ratio=", 0) == 0) {
      std::string V = Arg.substr(20);
      char *End = nullptr;
      double R = std::strtod(V.c_str(), &End);
      if (V.empty() || *End || R < 0.0 || R > 1.0) {
        std::cerr << "error: --target-dead-ratio expects a number in "
                     "[0,1], got '"
                  << V << "'\n";
        return false;
      }
      Opts.TargetDeadRatio = R;
    } else if (Arg == "--coverage-sweep") {
      Opts.CoverageSweep = true;
    } else if (Arg.rfind("--steering=", 0) == 0) {
      std::string V = Arg.substr(11);
      if (!parseSteering(V, Opts.Steer)) {
        std::cerr << "error: invalid --steering value '" << V
                  << "' (valid choices: closed, neutral, inverted)\n";
        return false;
      }
    } else if (Arg.rfind("--batch=", 0) == 0) {
      std::string V = Arg.substr(8);
      char *End = nullptr;
      unsigned long N = std::strtoul(V.c_str(), &End, 10);
      if (V.empty() || *End || N == 0) {
        std::cerr << "error: --batch expects a positive integer\n";
        return false;
      }
      Opts.BatchSize = static_cast<unsigned>(N);
    } else if (Arg.rfind("--coverage-json=", 0) == 0) {
      Opts.CoverageJson = Arg.substr(16);
      if (Opts.CoverageJson.empty()) {
        std::cerr << "error: --coverage-json expects a file path\n";
        return false;
      }
    } else if (Arg.rfind("--distill=", 0) == 0) {
      Opts.DistillDir = Arg.substr(10);
      if (Opts.DistillDir.empty()) {
        std::cerr << "error: --distill expects a directory path\n";
        return false;
      }
    } else if (Arg.rfind("--distill-max=", 0) == 0) {
      std::string V = Arg.substr(14);
      char *End = nullptr;
      unsigned long N = std::strtoul(V.c_str(), &End, 10);
      if (V.empty() || *End || N == 0) {
        std::cerr << "error: --distill-max expects a positive integer\n";
        return false;
      }
      Opts.DistillMax = static_cast<unsigned>(N);
    } else if (Arg == "--metrics") {
      Opts.Metrics = true;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg.rfind("--log-level=", 0) == 0) {
      std::string V = Arg.substr(12);
      LogLevel L;
      if (!parseLogLevel(V, L)) {
        std::cerr << "error: invalid --log-level value '" << V
                  << "' (valid choices: error, warn, info, debug, "
                     "trace)\n";
        return false;
      }
      Opts.LogLevelFlag = L;
    } else if (Arg.rfind("--log-json=", 0) == 0) {
      Opts.LogJsonFile = Arg.substr(11);
      if (Opts.LogJsonFile.empty()) {
        std::cerr << "error: --log-json expects a file path\n";
        return false;
      }
    } else {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      return false;
    }
  }
  if (Opts.TargetDeadRatio >= 0 && Opts.CoverageSweep) {
    std::cerr << "error: --target-dead-ratio and --coverage-sweep are "
                 "mutually exclusive (a sweep picks its own targets)\n";
    return false;
  }
  return true;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// One failure's on-disk record set.
struct FailureArtifacts {
  std::string Stem; ///< e.g. "fuzz-artifacts/seed000017"
};

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out) {
    logError("cannot write output file", {kv("path", Path)});
    return false;
  }
  Out << Text;
  return true;
}

std::optional<FailureArtifacts>
writeArtifacts(const FuzzOptions &Opts, const std::string &Stem,
               uint64_t Seed, double TargetDeadRatio,
               const std::string &Original, const std::string &Reproducer,
               const OracleOutcome &Outcome, const ShrinkStats &Shrink) {
  std::error_code EC;
  std::filesystem::create_directories(Opts.ArtifactsDir, EC);
  if (EC) {
    logError("cannot create artifacts directory",
             {kv("dir", Opts.ArtifactsDir), kv("error", EC.message())});
    return std::nullopt;
  }
  FailureArtifacts Art;
  Art.Stem = Opts.ArtifactsDir + "/" + Stem;

  if (!writeFile(Art.Stem + ".original.mcc", Original) ||
      !writeFile(Art.Stem + ".reproducer.mcc", Reproducer))
    return std::nullopt;

  // Schema 2: the record names its reproducer and the replay command
  // targets the record itself, so `--replay <record>.json` restores the
  // oracle selection and injected faults the failure was produced
  // under (replaying a record from a fault-injection run under default
  // toggles used to report a spurious pass).
  std::ostringstream J;
  J << "{\n"
    << "  \"schema\": 2,\n"
    << "  \"seed\": " << Seed << ",\n"
    << "  \"oracle\": \"" << jsonEscape(Outcome.FailedOracle) << "\",\n"
    << "  \"detail\": \"" << jsonEscape(Outcome.Detail) << "\",\n"
    << "  \"oracle_selection\": \"" << jsonEscape(Opts.OracleName)
    << "\",\n"
    << "  \"injected_faults\": {\"drop_live_stores\": "
    << (Opts.Oracles.Fault.DropLiveMemberStores ? "true" : "false")
    << ", \"count_dealloc_reads\": "
    << (Opts.Oracles.CountDeallocationReads ? "true" : "false")
    << ", \"vm_miscompile\": "
    << (Opts.Oracles.VmMiscompile ? "true" : "false") << "},\n"
    << "  \"generator\": {\"target_dead_ratio\": " << TargetDeadRatio
    << "},\n"
    << "  \"reproducer\": \"" << jsonEscape(Art.Stem)
    << ".reproducer.mcc\",\n"
    << "  \"shrink\": {\"lines_before\": " << Shrink.LinesBefore
    << ", \"lines_after\": " << Shrink.LinesAfter
    << ", \"attempts\": " << Shrink.Attempts
    << ", \"accepted\": " << Shrink.Accepted << "},\n"
    << "  \"replay\": \"dmm-fuzz --replay " << jsonEscape(Art.Stem)
    << ".json\"\n"
    << "}\n";
  if (!writeFile(Art.Stem + ".json", J.str()))
    return std::nullopt;
  return Art;
}

/// Runs one program through the oracles; on failure, shrinks and
/// records. Returns true when the program passed.
/// \p Label is the human-readable progress prefix; \p Stem names the
/// artifact files (filesystem-safe, no separators).
bool checkProgram(const FuzzOptions &Opts, const std::string &Label,
                  const std::string &Stem, uint64_t Seed,
                  double TargetDeadRatio, const std::string &Source) {
  Telemetry::count("fuzz.iterations");
  OracleOutcome Outcome = runOracles(Source, Opts.Oracles);
  if (Outcome.Passed) {
    if (Opts.Verbose)
      std::cout << Label << ": ok\n";
    return true;
  }

  std::string Reproducer = Source;
  ShrinkStats Shrink;
  if (Opts.Shrink) {
    const std::string FailedKind = Outcome.FailedOracle;
    Reproducer = shrinkProgram(
        Source,
        [&](const std::string &Candidate) {
          return runOracles(Candidate, Opts.Oracles).FailedOracle ==
                 FailedKind;
        },
        Opts.MaxShrinkAttempts, &Shrink);
  }

  auto Art = writeArtifacts(Opts, Stem, Seed, TargetDeadRatio, Source,
                            Reproducer, Outcome, Shrink);
  std::cout << Label << ": FAIL " << Outcome.FailedOracle << " — "
            << Outcome.Detail;
  if (Opts.Shrink)
    std::cout << " (shrunk " << Shrink.LinesBefore << " -> "
              << Shrink.LinesAfter << " lines in " << Shrink.Attempts
              << " attempts)";
  if (Art)
    std::cout << "\n  artifacts: " << Art->Stem << ".{reproducer.mcc,"
              << "original.mcc,json}";
  std::cout << "\n";
  return false;
}

/// Loads a .json failure record for --replay: restores the recorded
/// oracle selection and injected faults (unless the user overrode them
/// on the command line) and redirects the replay to the recorded
/// reproducer program. Returns false on a malformed record.
bool loadReplayRecord(FuzzOptions &Opts) {
  std::ifstream In(Opts.ReplayFile);
  if (!In) {
    logError("cannot open replay file", {kv("path", Opts.ReplayFile)});
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  json::Value Record;
  std::string Error;
  if (!json::parse(SS.str(), Record, Error) || !Record.isObject()) {
    logError("replay file is not a valid failure record",
             {kv("path", Opts.ReplayFile), kv("error", Error)});
    return false;
  }

  if (!Opts.OracleExplicit) {
    std::string Selection = Record.getString("oracle_selection", "all");
    if (!applyOracleSelection(Selection, Opts)) {
      logError("replay record carries unknown oracle selection",
               {kv("selection", Selection)});
      return false;
    }
  }
  if (!Opts.FaultExplicit) {
    if (const json::Value *Faults = Record.get("injected_faults")) {
      auto FaultOn = [&](const char *Key) {
        const json::Value *V = Faults->get(Key);
        return V && V->isBool() && V->boolean();
      };
      Opts.Oracles.Fault.DropLiveMemberStores = FaultOn("drop_live_stores");
      Opts.Oracles.CountDeallocationReads = FaultOn("count_dealloc_reads");
      Opts.Oracles.VmMiscompile = FaultOn("vm_miscompile");
    }
  }

  // Schema 2 records name their reproducer; older records sit next to
  // it by the artifact naming convention.
  std::string Reproducer = Record.getString("reproducer");
  if (Reproducer.empty())
    Reproducer =
        Opts.ReplayFile.substr(0, Opts.ReplayFile.size() - 5) +
        ".reproducer.mcc";
  std::cout << "replaying record " << Opts.ReplayFile << " (oracle: "
            << Opts.OracleName << ", faults:"
            << (Opts.Oracles.Fault.DropLiveMemberStores
                    ? " drop-live-stores"
                    : "")
            << (Opts.Oracles.CountDeallocationReads ? " count-dealloc-reads"
                                                    : "")
            << (Opts.Oracles.VmMiscompile ? " vm-miscompile" : "")
            << ((Opts.Oracles.Fault.DropLiveMemberStores ||
                 Opts.Oracles.CountDeallocationReads ||
                 Opts.Oracles.VmMiscompile)
                    ? ""
                    : " none")
            << ")\n";
  Opts.ReplayFile = Reproducer;
  return true;
}

std::string formatRatio(double R) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", R);
  return Buf;
}

/// Writes the --coverage-json report.
bool writeCoverageJson(const FuzzOptions &Opts, const FeedbackLoop &Loop,
                       uint64_t Total) {
  std::ostringstream J;
  J << "{\n"
    << "  \"schema\": 1,\n"
    << "  \"programs\": " << Total << ",\n"
    << "  \"measured\": " << Loop.measuredPrograms() << ",\n"
    << "  \"mode\": \""
    << (Opts.CoverageSweep
            ? "sweep"
            : (Opts.TargetDeadRatio >= 0 ? "ratio" : "blind"))
    << "\",\n"
    << "  \"steering\": \"" << steeringName(Opts.Steer) << "\",\n"
    << "  \"target_dead_ratio\": ";
  if (Opts.TargetDeadRatio >= 0)
    J << formatRatio(Opts.TargetDeadRatio);
  else
    J << "null";
  J << ",\n"
    << "  \"achieved_dead_ratio\": {\"mean\": "
    << formatRatio(Loop.achievedMean())
    << ", \"min\": " << formatRatio(Loop.achievedMin())
    << ", \"max\": " << formatRatio(Loop.achievedMax()) << "},\n"
    << "  \"coverage_entries\": " << Loop.coverage().entries() << ",\n"
    << "  \"coverage\": {";
  bool First = true;
  for (const auto &[Key, N] : Loop.coverage().keys()) {
    J << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Key)
      << "\": " << N;
    First = false;
  }
  J << "\n  },\n"
    << "  \"batches\": [";
  First = true;
  for (const BatchRecord &B : Loop.batches()) {
    J << (First ? "\n" : ",\n") << "    {\"target\": "
      << (B.Target >= 0 ? formatRatio(B.Target) : std::string("null"))
      << ", \"achieved_mean\": " << formatRatio(B.AchievedMean)
      << ", \"programs\": " << B.Programs
      << ", \"new_entries\": " << B.NewEntries << "}";
    First = false;
  }
  J << "\n  ]\n}\n";
  return writeFile(Opts.CoverageJson, J.str());
}

/// Runs the greedy distiller and writes the corpus + manifest.
bool writeDistilledCorpus(const FuzzOptions &Opts,
                          const std::vector<DistillCandidate> &Candidates) {
  std::vector<size_t> Picks = distillCorpus(Candidates, Opts.DistillMax);
  std::error_code EC;
  std::filesystem::create_directories(Opts.DistillDir, EC);
  if (EC) {
    logError("cannot create distill directory",
             {kv("dir", Opts.DistillDir), kv("error", EC.message())});
    return false;
  }

  CoverageMap Covered;
  std::ostringstream Manifest;
  Manifest << "{\n  \"schema\": 1,\n  \"programs\": [";
  for (size_t P = 0; P != Picks.size(); ++P) {
    const DistillCandidate &C = Candidates[Picks[P]];
    char Name[64];
    std::snprintf(Name, sizeof(Name), "fz%02u_seed%llu.mcc",
                  static_cast<unsigned>(P),
                  static_cast<unsigned long long>(C.Seed));
    if (!writeFile(Opts.DistillDir + "/" + Name, C.Source))
      return false;
    Manifest << (P ? ",\n" : "\n") << "    {\"file\": \"" << Name
             << "\", \"seed\": " << C.Seed << ", \"target_dead_ratio\": "
             << (C.TargetDeadRatio >= 0 ? formatRatio(C.TargetDeadRatio)
                                        : std::string("null"))
             << ", \"achieved_dead_ratio\": "
             << formatRatio(C.AchievedDeadRatio) << ", \"keys\": [";
    for (size_t K = 0; K != C.Keys.size(); ++K) {
      Manifest << (K ? ", " : "") << "\"" << jsonEscape(C.Keys[K]) << "\"";
      Covered.add(C.Keys[K]);
    }
    Manifest << "]}";
  }
  Manifest << "\n  ],\n  \"coverage_entries\": " << Covered.entries()
           << "\n}\n";
  if (!writeFile(Opts.DistillDir + "/manifest.json", Manifest.str()))
    return false;
  std::cout << "distilled: " << Picks.size() << " programs -> "
            << Opts.DistillDir << " (" << Covered.entries()
            << " coverage entries)\n";
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  installCrashHandler(Argc, Argv, "dmm-fuzz", kToolVersion);
  FlightRecorder::install();

  FuzzOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  if (Opts.LogLevelFlag)
    Logger::instance().setLevel(*Opts.LogLevelFlag);
  if (!Opts.LogJsonFile.empty()) {
    std::string Error;
    if (!Logger::instance().openJsonSink(Opts.LogJsonFile, Error)) {
      std::cerr << "error: cannot open --log-json file '"
                << Opts.LogJsonFile << "': " << Error << "\n";
      return 2;
    }
  }

  const char *MetricsEnv = std::getenv("DMM_METRICS");
  bool MetricsToStderr = MetricsEnv && *MetricsEnv &&
                         std::strcmp(MetricsEnv, "0") != 0 && !Opts.Metrics;
  Telemetry Tel;
  std::optional<TelemetryScope> TelScope;
  if (Opts.Metrics || MetricsToStderr)
    TelScope.emplace(Tel);

  uint64_t Failures = 0, Total = 0;
  FeedbackLoop Loop(GeneratorOptions{}, Opts.Steer, Opts.TargetDeadRatio,
                    Opts.CoverageSweep);
  std::vector<DistillCandidate> Candidates;
  {
    Span Timer("fuzz");
    if (!Opts.ReplayFile.empty()) {
      // A .json replay target is a failure record: restore its recorded
      // oracle selection and injected faults, then replay its
      // reproducer.
      if (Opts.ReplayFile.size() > 5 &&
          Opts.ReplayFile.rfind(".json") == Opts.ReplayFile.size() - 5 &&
          !loadReplayRecord(Opts))
        return 2;
      std::ifstream In(Opts.ReplayFile);
      if (!In) {
        logError("cannot open replay file", {kv("path", Opts.ReplayFile)});
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Total = 1;
      if (!checkProgram(Opts, "replay " + Opts.ReplayFile, "replay", 0,
                        /*TargetDeadRatio=*/-1.0, SS.str()))
        ++Failures;
    } else {
      const bool RunOracles = Opts.OracleName != "none";
      unsigned InBatch = 0;
      for (uint64_t Seed = Opts.SeedBegin; Seed <= Opts.SeedEnd; ++Seed) {
        ++Total;
        const GeneratorOptions &GenOpts =
            Opts.coverageActive() ? Loop.batchOptions() : GeneratorOptions{};
        double Target = GenOpts.TargetDeadRatio;
        ProgramGenerator Gen(Seed, GenOpts);
        std::string Source = Gen.generate();
        char Label[32];
        std::snprintf(Label, sizeof(Label), "seed%06llu",
                      static_cast<unsigned long long>(Seed));
        if (RunOracles &&
            !checkProgram(Opts, Label, Label, Seed, Target, Source))
          ++Failures;
        if (Opts.coverageActive()) {
          ProgramMeasurement M = measureProgram(Source);
          if (!M.Valid && Opts.Verbose)
            std::cout << Label << ": unmeasured (" << M.Error << ")\n";
          Loop.observe(M);
          if (M.Valid && !Opts.DistillDir.empty()) {
            DistillCandidate C;
            C.Seed = Seed;
            C.TargetDeadRatio = Target;
            C.Source = std::move(Source);
            C.AchievedDeadRatio = M.AchievedDeadRatio;
            C.Keys = std::move(M.Keys);
            Candidates.push_back(std::move(C));
          }
          if (++InBatch == Opts.BatchSize) {
            Loop.endBatch();
            InBatch = 0;
          }
        }
      }
      Loop.endBatch();
    }
  }

  std::cout << "dmm-fuzz: " << Total
            << (Total == 1 ? " program, " : " programs, ") << Failures
            << (Failures == 1 ? " failure" : " failures") << " (oracle: "
            << Opts.OracleName << ")\n";
  if (Opts.coverageActive() && Opts.ReplayFile.empty()) {
    std::cout << "coverage: " << Loop.coverage().entries()
              << " boundary entries over " << Loop.measuredPrograms()
              << " measured programs (steering: "
              << steeringName(Opts.Steer) << ")\n";
    std::cout << "achieved dead ratio: mean "
              << formatRatio(Loop.achievedMean()) << ", min "
              << formatRatio(Loop.achievedMin()) << ", max "
              << formatRatio(Loop.achievedMax()) << "\n";
    if (!Opts.CoverageJson.empty() &&
        !writeCoverageJson(Opts, Loop, Total))
      return 2;
    if (!Opts.DistillDir.empty() &&
        !writeDistilledCorpus(Opts, Candidates))
      return 2;
  }
  if (Opts.Metrics)
    Tel.printMetrics(std::cout);
  if (MetricsToStderr)
    Tel.printMetrics(std::cerr);
  return Failures ? 1 : 0;
}
