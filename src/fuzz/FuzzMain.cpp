//===-- fuzz/FuzzMain.cpp - The dmm-fuzz differential fuzzer --------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `dmm-fuzz`: generate deterministic random MiniC++ programs and push
/// each through the semantic/soundness/invariance/cache oracles
/// (fuzz/Oracles.h). On a failure, a delta-debugging shrinker minimizes
/// the program while the same oracle keeps failing, and a self-contained
/// reproducer (.mcc) plus a JSON failure record land in the artifacts
/// directory. Exit status: 0 when every seed passed, 1 otherwise.
///
/// See docs/TESTING.md for the artifacts layout, replay workflow, and
/// the fault-injection self-validation modes.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Shrinker.h"

#include "support/ThreadPool.h"
#include "telemetry/Telemetry.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

using namespace dmm;
using namespace dmm::fuzz;

namespace {

struct FuzzOptions {
  uint64_t SeedBegin = 1;
  uint64_t SeedEnd = 100; ///< Inclusive.
  OracleConfig Oracles;
  std::string OracleName = "all";
  std::string ArtifactsDir = "fuzz-artifacts";
  std::string ReplayFile; ///< Run oracles on a file instead.
  bool Shrink = true;
  unsigned MaxShrinkAttempts = 4000;
  bool Metrics = false;
  bool Verbose = false;
};

int usage() {
  std::cerr
      << "usage: dmm-fuzz [options]\n"
         "\n"
         "Differential fuzzing for the dead-member pipeline: random\n"
         "MiniC++ programs are run through six oracles (differential\n"
         "semantics of the eliminated program, dynamic soundness of the\n"
         "analysis, configuration invariance across --jobs levels and\n"
         "call-graph precision, cache equivalence, shadow-profiler\n"
         "agreement with the trace replay, and bytecode-VM equivalence\n"
         "with the tree-walking interpreter). Failures are shrunk to\n"
         "minimal reproducers. Everything is deterministic in the seed.\n"
         "\n"
         "options:\n"
         "  --seeds <N>|<A>..<B>     seed range, inclusive (default "
         "1..100)\n"
         "  --oracle <all|semantics|soundness|invariance|cache|profiler"
         "|engine>\n"
         "                           which oracle family to run "
         "(default all)\n"
         "  --artifacts <dir>        where reproducers and JSON failure\n"
         "                           records go (default fuzz-artifacts;\n"
         "                           created on first failure)\n"
         "  --replay <file.mcc>      run the oracles on a program file\n"
         "                           (e.g. a shrunk reproducer) instead\n"
         "                           of generating\n"
         "  --no-shrink              keep failing programs unminimized\n"
         "  --max-shrink-attempts=<N>  shrinker predicate budget "
         "(default 4000)\n"
         "  --inject-fault=<drop-live-stores|count-dealloc-reads"
         "|vm-miscompile>\n"
         "                           deliberately break the eliminator /\n"
         "                           the read exemption / the bytecode\n"
         "                           compiler to validate that the\n"
         "                           oracles catch it\n"
         "  --jobs=<N>               base worker threads (the invariance\n"
         "                           oracle still sweeps its own levels)\n"
         "  --metrics                print the fuzz counter table at "
         "exit\n"
         "  --verbose                log every seed, not just failures\n";
  return 2;
}

bool parseSeeds(const std::string &Value, FuzzOptions &Opts) {
  size_t Dots = Value.find("..");
  char *End = nullptr;
  if (Dots == std::string::npos) {
    unsigned long long N = std::strtoull(Value.c_str(), &End, 10);
    if (Value.empty() || *End || N == 0)
      return false;
    Opts.SeedBegin = 1;
    Opts.SeedEnd = N;
    return true;
  }
  std::string A = Value.substr(0, Dots), B = Value.substr(Dots + 2);
  unsigned long long Begin = std::strtoull(A.c_str(), &End, 10);
  if (A.empty() || *End)
    return false;
  unsigned long long Last = std::strtoull(B.c_str(), &End, 10);
  if (B.empty() || *End || Last < Begin)
    return false;
  Opts.SeedBegin = Begin;
  Opts.SeedEnd = Last;
  return true;
}

bool parseArgs(int Argc, char **Argv, FuzzOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (++I >= Argc) {
        std::cerr << "error: " << Flag << " requires a value\n";
        return nullptr;
      }
      return Argv[I];
    };
    if (Arg == "--seeds") {
      const char *V = needValue("--seeds");
      if (!V || !parseSeeds(V, Opts)) {
        std::cerr << "error: --seeds expects <N> or <A>..<B> with "
                     "positive integers\n";
        return false;
      }
    } else if (Arg == "--oracle") {
      const char *V = needValue("--oracle");
      if (!V)
        return false;
      std::string Kind = V;
      Opts.OracleName = Kind;
      Opts.Oracles.Semantics = Kind == "all" || Kind == "semantics";
      Opts.Oracles.Soundness = Kind == "all" || Kind == "soundness";
      Opts.Oracles.Invariance = Kind == "all" || Kind == "invariance";
      Opts.Oracles.Cache = Kind == "all" || Kind == "cache";
      Opts.Oracles.Profiler = Kind == "all" || Kind == "profiler";
      Opts.Oracles.Engine = Kind == "all" || Kind == "engine";
      if (!Opts.Oracles.Semantics && !Opts.Oracles.Soundness &&
          !Opts.Oracles.Invariance && !Opts.Oracles.Cache &&
          !Opts.Oracles.Profiler && !Opts.Oracles.Engine) {
        std::cerr << "error: invalid --oracle value '" << Kind
                  << "' (valid choices: all, semantics, soundness, "
                     "invariance, cache, profiler, engine)\n";
        return false;
      }
    } else if (Arg == "--artifacts") {
      const char *V = needValue("--artifacts");
      if (!V)
        return false;
      Opts.ArtifactsDir = V;
    } else if (Arg == "--replay") {
      const char *V = needValue("--replay");
      if (!V)
        return false;
      Opts.ReplayFile = V;
    } else if (Arg == "--no-shrink") {
      Opts.Shrink = false;
    } else if (Arg.rfind("--max-shrink-attempts=", 0) == 0) {
      std::string V = Arg.substr(22);
      char *End = nullptr;
      unsigned long N = std::strtoul(V.c_str(), &End, 10);
      if (V.empty() || *End || N == 0) {
        std::cerr << "error: --max-shrink-attempts expects a positive "
                     "integer\n";
        return false;
      }
      Opts.MaxShrinkAttempts = static_cast<unsigned>(N);
    } else if (Arg.rfind("--inject-fault=", 0) == 0) {
      std::string Fault = Arg.substr(15);
      if (Fault == "drop-live-stores")
        Opts.Oracles.Fault.DropLiveMemberStores = true;
      else if (Fault == "count-dealloc-reads")
        Opts.Oracles.CountDeallocationReads = true;
      else if (Fault == "vm-miscompile")
        Opts.Oracles.VmMiscompile = true;
      else {
        std::cerr << "error: invalid --inject-fault value '" << Fault
                  << "' (valid choices: drop-live-stores, "
                     "count-dealloc-reads, vm-miscompile)\n";
        return false;
      }
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      std::string V = Arg.substr(7);
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(V.c_str(), &End, 10);
      if (V.empty() || *End || Jobs == 0) {
        std::cerr << "error: --jobs expects a positive integer, got '"
                  << V << "'\n";
        return false;
      }
      setGlobalJobs(static_cast<unsigned>(Jobs));
    } else if (Arg == "--metrics") {
      Opts.Metrics = true;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      return false;
    }
  }
  return true;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// One failure's on-disk record set.
struct FailureArtifacts {
  std::string Stem; ///< e.g. "fuzz-artifacts/seed000017"
};

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "error: cannot write '" << Path << "'\n";
    return false;
  }
  Out << Text;
  return true;
}

std::optional<FailureArtifacts>
writeArtifacts(const FuzzOptions &Opts, const std::string &Stem,
               uint64_t Seed, const std::string &Original,
               const std::string &Reproducer, const OracleOutcome &Outcome,
               const ShrinkStats &Shrink) {
  std::error_code EC;
  std::filesystem::create_directories(Opts.ArtifactsDir, EC);
  if (EC) {
    std::cerr << "error: cannot create artifacts directory '"
              << Opts.ArtifactsDir << "': " << EC.message() << "\n";
    return std::nullopt;
  }
  FailureArtifacts Art;
  Art.Stem = Opts.ArtifactsDir + "/" + Stem;

  if (!writeFile(Art.Stem + ".original.mcc", Original) ||
      !writeFile(Art.Stem + ".reproducer.mcc", Reproducer))
    return std::nullopt;

  std::ostringstream J;
  J << "{\n"
    << "  \"schema\": 1,\n"
    << "  \"seed\": " << Seed << ",\n"
    << "  \"oracle\": \"" << jsonEscape(Outcome.FailedOracle) << "\",\n"
    << "  \"detail\": \"" << jsonEscape(Outcome.Detail) << "\",\n"
    << "  \"oracle_selection\": \"" << jsonEscape(Opts.OracleName)
    << "\",\n"
    << "  \"injected_faults\": {\"drop_live_stores\": "
    << (Opts.Oracles.Fault.DropLiveMemberStores ? "true" : "false")
    << ", \"count_dealloc_reads\": "
    << (Opts.Oracles.CountDeallocationReads ? "true" : "false")
    << ", \"vm_miscompile\": "
    << (Opts.Oracles.VmMiscompile ? "true" : "false") << "},\n"
    << "  \"shrink\": {\"lines_before\": " << Shrink.LinesBefore
    << ", \"lines_after\": " << Shrink.LinesAfter
    << ", \"attempts\": " << Shrink.Attempts
    << ", \"accepted\": " << Shrink.Accepted << "},\n"
    << "  \"replay\": \"dmm-fuzz --replay " << jsonEscape(Art.Stem)
    << ".reproducer.mcc --oracle " << jsonEscape(Opts.OracleName)
    << "\"\n"
    << "}\n";
  if (!writeFile(Art.Stem + ".json", J.str()))
    return std::nullopt;
  return Art;
}

/// Runs one program through the oracles; on failure, shrinks and
/// records. Returns true when the program passed.
/// \p Label is the human-readable progress prefix; \p Stem names the
/// artifact files (filesystem-safe, no separators).
bool checkProgram(const FuzzOptions &Opts, const std::string &Label,
                  const std::string &Stem, uint64_t Seed,
                  const std::string &Source) {
  Telemetry::count("fuzz.iterations");
  OracleOutcome Outcome = runOracles(Source, Opts.Oracles);
  if (Outcome.Passed) {
    if (Opts.Verbose)
      std::cout << Label << ": ok\n";
    return true;
  }

  std::string Reproducer = Source;
  ShrinkStats Shrink;
  if (Opts.Shrink) {
    const std::string FailedKind = Outcome.FailedOracle;
    Reproducer = shrinkProgram(
        Source,
        [&](const std::string &Candidate) {
          return runOracles(Candidate, Opts.Oracles).FailedOracle ==
                 FailedKind;
        },
        Opts.MaxShrinkAttempts, &Shrink);
  }

  auto Art = writeArtifacts(Opts, Stem, Seed, Source, Reproducer,
                            Outcome, Shrink);
  std::cout << Label << ": FAIL " << Outcome.FailedOracle << " — "
            << Outcome.Detail;
  if (Opts.Shrink)
    std::cout << " (shrunk " << Shrink.LinesBefore << " -> "
              << Shrink.LinesAfter << " lines in " << Shrink.Attempts
              << " attempts)";
  if (Art)
    std::cout << "\n  artifacts: " << Art->Stem << ".{reproducer.mcc,"
              << "original.mcc,json}";
  std::cout << "\n";
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  const char *MetricsEnv = std::getenv("DMM_METRICS");
  bool MetricsToStderr = MetricsEnv && *MetricsEnv &&
                         std::strcmp(MetricsEnv, "0") != 0 && !Opts.Metrics;
  Telemetry Tel;
  std::optional<TelemetryScope> TelScope;
  if (Opts.Metrics || MetricsToStderr)
    TelScope.emplace(Tel);

  uint64_t Failures = 0, Total = 0;
  {
    Span Timer("fuzz");
    if (!Opts.ReplayFile.empty()) {
      std::ifstream In(Opts.ReplayFile);
      if (!In) {
        std::cerr << "error: cannot open '" << Opts.ReplayFile << "'\n";
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Total = 1;
      if (!checkProgram(Opts, "replay " + Opts.ReplayFile, "replay", 0,
                        SS.str()))
        ++Failures;
    } else {
      for (uint64_t Seed = Opts.SeedBegin; Seed <= Opts.SeedEnd; ++Seed) {
        ++Total;
        ProgramGenerator Gen(Seed);
        char Label[32];
        std::snprintf(Label, sizeof(Label), "seed%06llu",
                      static_cast<unsigned long long>(Seed));
        if (!checkProgram(Opts, Label, Label, Seed, Gen.generate()))
          ++Failures;
      }
    }
  }

  std::cout << "dmm-fuzz: " << Total
            << (Total == 1 ? " program, " : " programs, ") << Failures
            << (Failures == 1 ? " failure" : " failures") << " (oracle: "
            << Opts.OracleName << ")\n";
  if (Opts.Metrics)
    Tel.printMetrics(std::cout);
  if (MetricsToStderr)
    Tel.printMetrics(std::cerr);
  return Failures ? 1 : 0;
}
