//===-- fuzz/Coverage.cpp -------------------------------------------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Coverage.h"

#include "analysis/DeadMemberAnalysis.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "profiler/ShadowProfiler.h"
#include "telemetry/Telemetry.h"
#include "transform/DeadMemberEliminator.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace dmm;
using namespace dmm::fuzz;

unsigned fuzz::ratioBucket(double Ratio) {
  if (Ratio < 0)
    Ratio = 0;
  unsigned B = static_cast<unsigned>(Ratio * kRatioBuckets);
  return std::min(B, kRatioBuckets - 1);
}

double fuzz::ratioBucketCenter(unsigned Bucket) {
  return (Bucket + 0.5) / kRatioBuckets;
}

size_t CoverageMap::newEntries(
    const std::vector<std::string> &Candidate) const {
  size_t N = 0;
  for (const std::string &K : Candidate)
    N += Keys.count(K) ? 0 : 1;
  return N;
}

namespace {

/// The dead classifiable members under \p Opts, by qualified name.
std::set<std::string> deadUnder(Compilation &C, AnalysisOptions Opts) {
  DeadMemberAnalysis A(C.context(), C.hierarchy(), Opts);
  DeadMemberResult R = A.run(C.mainFunction());
  std::set<std::string> Names;
  for (const FieldDecl *F : R.deadMembers())
    Names.insert(F->qualifiedName());
  return Names;
}

} // namespace

ProgramMeasurement fuzz::measureProgram(const std::string &Source) {
  ProgramMeasurement M;

  // Local scope: the eliminator's plan counters and the analysis tallies
  // land here instead of polluting the harness-wide registry.
  Telemetry Local;
  TelemetryScope Scope(Local);

  std::ostringstream Diag;
  auto C = compileString(Source, &Diag);
  if (!C->Success) {
    M.Error = "does not compile: " + Diag.str();
    return M;
  }

  AnalysisOptions Base;
  Base.RecordProvenance = true;
  DeadMemberAnalysis Analysis(C->context(), C->hierarchy(), Base);
  DeadMemberResult Result = Analysis.run(C->mainFunction());

  std::set<std::string> Keys;

  // Static classification: causes, per-class adjacency, the ratio.
  struct ClassBins {
    bool HasDead = false;
    std::set<LivenessReason> LiveReasons;
    bool IsUnion = false;
    unsigned Members = 0, Dead = 0;
  };
  std::map<const ClassDecl *, ClassBins> PerClass;
  unsigned Dead = 0;
  for (const FieldDecl *F : Result.classifiableMembers()) {
    ClassBins &B = PerClass[F->parent()];
    B.IsUnion = F->parent()->isUnion();
    ++B.Members;
    if (Result.isDead(F)) {
      ++Dead;
      ++B.Dead;
      B.HasDead = true;
    } else {
      B.LiveReasons.insert(Result.reason(F));
    }
  }
  M.DeadMembers = Dead;
  M.ClassifiableMembers =
      static_cast<unsigned>(Result.classifiableMembers().size());
  M.AchievedDeadRatio =
      M.ClassifiableMembers
          ? static_cast<double>(Dead) / M.ClassifiableMembers
          : 0.0;
  Keys.insert("ratio.b" + std::to_string(ratioBucket(M.AchievedDeadRatio)));

  for (const auto &[CD, B] : PerClass) {
    for (LivenessReason R : B.LiveReasons) {
      std::string Slug = livenessReasonSlug(R);
      Keys.insert("cause." + Slug);
      if (B.HasDead)
        Keys.insert("dead_adjacent." + Slug);
    }
    if (B.IsUnion) {
      if (B.Dead == B.Members)
        Keys.insert("union.all_dead");
      else if (B.Dead == 0)
        Keys.insert("union.closure_live");
    }
  }

  // Differential boundary probes: flip one analysis policy and see
  // which members change classification. Each hit means the program
  // actually exercised that §3 special case, not merely contained the
  // syntax for it.
  const std::set<std::string> DeadDefault = deadUnder(*C, AnalysisOptions{});
  {
    AnalysisOptions NoExempt;
    NoExempt.ExemptDeallocationArgs = false;
    std::set<std::string> DeadNoExempt = deadUnder(*C, NoExempt);
    for (const std::string &Name : DeadDefault)
      if (!DeadNoExempt.count(Name)) {
        Keys.insert("boundary.dealloc_exemption");
        break;
      }
  }
  {
    AnalysisOptions NoClosure;
    NoClosure.UnionClosure = false;
    std::set<std::string> DeadNoClosure = deadUnder(*C, NoClosure);
    for (const std::string &Name : DeadNoClosure)
      if (!DeadDefault.count(Name)) {
        Keys.insert("boundary.union_closure");
        break;
      }
  }
  {
    AnalysisOptions Conservative;
    Conservative.Sizeof = SizeofPolicy::Conservative;
    std::set<std::string> DeadConservative = deadUnder(*C, Conservative);
    for (const std::string &Name : DeadDefault)
      if (!DeadConservative.count(Name)) {
        Keys.insert("boundary.sizeof");
        break;
      }
  }

  // Eliminator plan kinds, via the counters it emits into our scope.
  eliminateDeadMembers(C->context(), Result, Analysis.callGraph());
  static const char *const ElimKeys[][2] = {
      {"eliminate.plan.drop_store", "elim.drop_store"},
      {"eliminate.plan.rhs_only", "elim.rhs_only"},
      {"eliminate.plan.drop_dealloc", "elim.drop_dealloc"},
      {"eliminate.plan.init_drop", "elim.init_drop"},
      {"eliminate.plan.blocked", "elim.blocked"},
      {"eliminate.removed_members", "elim.removed_members"},
      {"eliminate.removed_functions", "elim.removed_functions"},
  };
  for (const auto &[Counter, Key] : ElimKeys)
    if (Local.counter(Counter))
      Keys.insert(Key);

  // Dynamic verdict from a profiled run.
  ShadowProfiler Prof(C->hierarchy(), Result.deadSet());
  InterpOptions IO;
  IO.Profiler = &Prof;
  Interpreter Interp(C->context(), C->hierarchy(), IO);
  ExecResult R = Interp.run(C->mainFunction());
  if (!R.Completed) {
    M.Error = "aborted: " + R.Error;
    return M;
  }
  const ProfileSummary &P = Prof.finalize(&C->SM);
  if (P.NeverReadBytes > 0)
    Keys.insert("profiler.never_read");
  else if (P.Metrics.ObjectSpace > 0)
    Keys.insert("profiler.all_read");
  if (P.Metrics.DeadMemberSpace > 0)
    Keys.insert("profiler.dead_space");

  // The sparse regime: a program dominated by dead members is the
  // analysis' extreme operating point (every special case fires next
  // to overwhelmingly removable state), so each behavior observed
  // there is a coverage point of its own. Blind generation essentially
  // never reaches this regime; the liveness-driven planner hits it on
  // request.
  if (M.AchievedDeadRatio >= 0.85) {
    std::set<std::string> SparseKeys;
    for (const std::string &K : Keys)
      if (K.rfind("ratio.", 0) != 0)
        SparseKeys.insert(K + ".sparse");
    Keys.insert(SparseKeys.begin(), SparseKeys.end());
  }

  M.Valid = true;
  M.Keys.assign(Keys.begin(), Keys.end());
  return M;
}

std::vector<size_t>
fuzz::distillCorpus(const std::vector<DistillCandidate> &Candidates,
                    size_t MaxPrograms) {
  std::vector<size_t> Picks;
  CoverageMap Covered;
  std::vector<bool> Used(Candidates.size(), false);
  while (Picks.size() < MaxPrograms) {
    size_t Best = Candidates.size(), BestGain = 0;
    for (size_t I = 0; I != Candidates.size(); ++I) {
      if (Used[I])
        continue;
      size_t Gain = Covered.newEntries(Candidates[I].Keys);
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = I;
      }
    }
    if (Best == Candidates.size())
      break; // Nothing adds coverage.
    Used[Best] = true;
    Picks.push_back(Best);
    for (const std::string &K : Candidates[Best].Keys)
      Covered.add(K);
  }
  return Picks;
}
