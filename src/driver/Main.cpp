//===-- driver/Main.cpp - The deadmember command-line tool ----------------==//
//
// Part of the deadmember project (Sweeney & Tip, PLDI 1998 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `deadmember`: parse MiniC++ sources, run the dead-data-member
/// analysis, and report. Mirrors the paper's tool: static detection plus
/// the dynamic measurement pipeline (instrumented execution over the
/// interpreter).
///
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "driver/Frontend.h"
#include "interp/Interpreter.h"
#include "trace/DynamicMetrics.h"
#include "transform/DeadMemberEliminator.h"

#include <cstring>
#include <set>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace dmm;

namespace {

struct DriverOptions {
  std::vector<SourceFile> Files;
  AnalysisOptions Analysis;
  ReportOptions Report;
  bool ShowStats = false;
  bool RunProgram = false;
  bool Measure = false;
  bool DumpCallGraph = false;
  bool Eliminate = false;
  bool Json = false;
  bool DumpLayout = false;
  bool Check = false;
  bool DeadFunctions = false;
};

int usage() {
  std::cerr
      << "usage: deadmember [options] <file.mcc>...\n"
         "\n"
         "Detects dead data members in MiniC++ programs (Sweeney & Tip,\n"
         "PLDI 1998).\n"
         "\n"
         "options:\n"
         "  --library <file>        parse <file> as a library (its classes\n"
         "                           are not classified; paper sec. 3.3)\n"
         "  --callgraph=<pta|rta|cha|trivial>  call-graph algorithm "
         "(default rta)\n"
         "  --baseline               'accessed = live' linter baseline\n"
         "  --no-dealloc-exempt      delete/free arguments create liveness\n"
         "  --no-union-closure       disable the union soundness closure\n"
         "  --sizeof=<ignore|conservative>  sizeof policy (default "
         "ignore)\n"
         "  --downcasts=<safe|conservative> down-cast policy (default "
         "safe)\n"
         "  --show-live              list live members with their reasons\n"
         "  --stats                  print Table 1-style characteristics\n"
         "  --run                    interpret the program\n"
         "  --measure                interpret and print the dynamic\n"
         "                           measurements (Table 2 columns)\n"
         "  --dump-callgraph         list reachable functions\n"
         "  --eliminate              print the transformed program with\n"
         "                           dead members and unreachable code\n"
         "                           removed (to stdout)\n"
         "  --inert=<name>           assert that function <name> does not\n"
         "                           observe its arguments (paper fn. 3)\n"
         "  --json                   emit the classification as JSON\n"
         "  --dump-layout            print object layouts with offsets\n"
         "  --check                  execute the program and verify the\n"
         "                           soundness invariant (every member\n"
         "                           read at run time is classified "
         "live)\n"
         "  --dead-functions         also list unreachable functions\n";
  return 2;
}

bool readFile(const char *Path, bool IsLibrary, DriverOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open '" << Path << "'\n";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Opts.Files.push_back({Path, SS.str(), IsLibrary});
  return true;
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--library") {
      if (++I >= Argc) {
        std::cerr << "error: --library requires a file\n";
        return false;
      }
      if (!readFile(Argv[I], /*IsLibrary=*/true, Opts))
        return false;
    } else if (Arg.rfind("--callgraph=", 0) == 0) {
      std::string Kind = Arg.substr(12);
      if (Kind == "rta")
        Opts.Analysis.CallGraph = CallGraphKind::RTA;
      else if (Kind == "pta")
        Opts.Analysis.CallGraph = CallGraphKind::PTA;
      else if (Kind == "cha")
        Opts.Analysis.CallGraph = CallGraphKind::CHA;
      else if (Kind == "trivial")
        Opts.Analysis.CallGraph = CallGraphKind::Trivial;
      else {
        std::cerr << "error: unknown call graph kind '" << Kind << "'\n";
        return false;
      }
    } else if (Arg == "--baseline") {
      Opts.Analysis.TreatWritesAsLive = true;
    } else if (Arg == "--no-dealloc-exempt") {
      Opts.Analysis.ExemptDeallocationArgs = false;
    } else if (Arg == "--no-union-closure") {
      Opts.Analysis.UnionClosure = false;
    } else if (Arg == "--sizeof=ignore") {
      Opts.Analysis.Sizeof = SizeofPolicy::IgnoreAll;
    } else if (Arg == "--sizeof=conservative") {
      Opts.Analysis.Sizeof = SizeofPolicy::Conservative;
    } else if (Arg == "--downcasts=safe") {
      Opts.Analysis.AssumeDowncastsSafe = true;
    } else if (Arg == "--downcasts=conservative") {
      Opts.Analysis.AssumeDowncastsSafe = false;
    } else if (Arg == "--show-live") {
      Opts.Report.ShowLiveMembers = true;
    } else if (Arg == "--stats") {
      Opts.ShowStats = true;
    } else if (Arg == "--run") {
      Opts.RunProgram = true;
    } else if (Arg == "--measure") {
      Opts.Measure = true;
    } else if (Arg == "--dump-callgraph") {
      Opts.DumpCallGraph = true;
    } else if (Arg == "--eliminate") {
      Opts.Eliminate = true;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--dump-layout") {
      Opts.DumpLayout = true;
    } else if (Arg == "--check") {
      Opts.Check = true;
    } else if (Arg == "--dead-functions") {
      Opts.DeadFunctions = true;
    } else if (Arg.rfind("--inert=", 0) == 0) {
      Opts.Analysis.InertFunctions.insert(Arg.substr(8));
    } else if (Arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      return false;
    } else if (!readFile(Argv[I], /*IsLibrary=*/false, Opts)) {
      return false;
    }
  }
  return !Opts.Files.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  auto C = compileProgram(std::move(Opts.Files), &std::cerr);
  if (!C->Success)
    return 1;

  DeadMemberAnalysis Analysis(C->context(), C->hierarchy(), Opts.Analysis);
  DeadMemberResult Result = Analysis.run(C->mainFunction());

  if (Opts.Eliminate) {
    EliminationResult Elim = eliminateDeadMembers(C->context(), Result,
                                                  Analysis.callGraph());
    std::cerr << "removed " << Elim.Removed.size() << " dead members ("
              << Elim.Kept.size() << " kept), stripped "
              << Elim.RemovedFunctions.size()
              << " unreachable function bodies\n";
    std::cout << Elim.Source;
    return 0;
  }

  if (Opts.Json)
    printJsonReport(std::cout, C->context(), Result, &C->SM);
  else
    printMemberReport(std::cout, C->context(), Result, &C->SM, Opts.Report);

  if (Opts.DumpLayout) {
    std::cout << "\n";
    printLayoutReport(std::cout, C->context(), C->hierarchy(), Result);
  }

  if (Opts.ShowStats) {
    ProgramStats Stats = computeProgramStats(C->context(), Result, &C->SM,
                                             C->UserFileIDs);
    std::cout << "\n";
    printStatsReport(std::cout, Stats);
  }

  if (Opts.DeadFunctions) {
    std::cout << "\n";
    printDeadFunctionReport(std::cout, C->context(), Analysis.callGraph(),
                            &C->SM);
  }

  if (Opts.DumpCallGraph) {
    std::cout << "\nreachable functions ("
              << callGraphKindName(Opts.Analysis.CallGraph) << "):\n";
    for (const FunctionDecl *FD : Analysis.callGraph().reachableFunctions())
      std::cout << "  " << FD->qualifiedName() << "\n";
  }

  if (Opts.Check) {
    std::set<const FieldDecl *> Reads;
    InterpOptions IO;
    IO.ReadSet = &Reads;
    Interpreter Interp(C->context(), C->hierarchy(), IO);
    ExecResult Exec = Interp.run(C->mainFunction());
    if (!Exec.Completed) {
      std::cerr << "runtime error: " << Exec.Error << "\n";
      return 1;
    }
    unsigned Violations = 0;
    for (const FieldDecl *F : Reads)
      if (Result.isDead(F)) {
        ++Violations;
        std::cout << "UNSOUND: " << F->qualifiedName()
                  << " was read at run time but classified dead\n";
      }
    std::cout << "soundness check: " << Reads.size()
              << " members dynamically read, " << Violations
              << " violations"
              << (Violations == 0 ? " (OK)" : " (FAILED)") << "\n";
    if (Violations)
      return 1;
  }

  if (Opts.RunProgram || Opts.Measure) {
    AllocationTrace Trace;
    InterpOptions IO;
    IO.Trace = &Trace;
    Interpreter Interp(C->context(), C->hierarchy(), IO);
    ExecResult Exec = Interp.run(C->mainFunction());
    if (!Exec.Completed) {
      std::cerr << "runtime error: " << Exec.Error << "\n";
      return 1;
    }
    if (Opts.RunProgram) {
      std::cout << "\n--- program output ---\n"
                << Exec.Output << "--- exit code " << Exec.ExitCode
                << " ---\n";
    }
    if (Opts.Measure) {
      LayoutEngine Layout(C->hierarchy());
      DynamicMetrics M =
          computeDynamicMetrics(Trace, Layout, Result.deadSet());
      std::cout << "\ndynamic measurements:\n"
                << "  object space:           " << M.ObjectSpace
                << " bytes (" << M.NumObjects << " objects)\n"
                << "  dead data member space: " << M.DeadMemberSpace
                << " bytes (" << M.deadSpacePercent() << "%)\n"
                << "  high water mark:        " << M.HighWaterMark
                << " bytes\n"
                << "  high water mark w/o dead members: "
                << M.HighWaterMarkNoDead << " bytes ("
                << M.highWaterMarkReductionPercent() << "% reduction)\n";
    }
  }
  return 0;
}
